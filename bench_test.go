// Package repro's root test file hosts the benchmark harness: one benchmark
// per experiment (E1..E28, excluding E18 which was not implemented — see
// docs/EXPERIMENTS.md).  Each benchmark recomputes its experiment's
// table on every iteration, so `go test -bench=. -benchmem` both times the
// reproduction and regenerates the numbers; run `go run ./cmd/nwbench` to
// print the tables themselves.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// printOnce prints each experiment table a single time per test binary run,
// so benchmark output stays readable while the rows remain available in the
// log.
var printOnce sync.Map

func report(b *testing.B, t experiments.Table) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(t.Name, true); !loaded {
		fmt.Printf("\n%s\n", t)
	}
}

func BenchmarkE01_Encodings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E01Encodings())
	}
}

func BenchmarkE02_WeakConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E02WeakConversion())
	}
}

func BenchmarkE03_FlatEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E03FlatEquivalence())
	}
}

func BenchmarkE04_NWAvsDFA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E04NWAvsDFA(10))
	}
}

func BenchmarkE05_BottomUpConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E05BottomUpConversion())
	}
}

func BenchmarkE06_FlatVsBottomUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E06FlatVsBottomUp(8))
	}
}

func BenchmarkE07_JoinlessSeparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E07JoinlessSeparation())
	}
}

func BenchmarkE08_JoinlessConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E08JoinlessConversion())
	}
}

func BenchmarkE09_PathSuccinctness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E09PathSuccinctness(10))
	}
}

func BenchmarkE10_LinearOrderQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E10LinearOrderQuery(8))
	}
}

func BenchmarkE11_TreeAutomataEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E11TreeAutomataEmbedding())
	}
}

func BenchmarkE12_PDAEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E12PDAEmbedding())
	}
}

func BenchmarkE13_PTAEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E13PTAEmbedding())
	}
}

func BenchmarkE14_CountingSeparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E14CountingSeparation(6))
	}
}

func BenchmarkE15_MembershipNPReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E15MembershipNPReduction())
	}
}

func BenchmarkE16_PNWAEmptiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E16PNWAEmptiness())
	}
}

func BenchmarkE17_Determinization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E17Determinization())
	}
}

func BenchmarkE19_DecisionProcedures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E19DecisionProcedures())
	}
}

func BenchmarkE20_Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E20Streaming())
	}
}

func BenchmarkE21_MultiQueryStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E21MultiQueryStreaming(200000, 32))
	}
}

func BenchmarkE22_CompiledVsMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E22CompiledVsMap(200000, 32))
	}
}

func BenchmarkE23_ShardedServing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E23ShardedServing(100, 2000))
	}
}

func BenchmarkE24_BitsetRunner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E24BitsetRunner(256))
	}
}

func BenchmarkE25_ColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E25ColdStart(64))
	}
}

func BenchmarkE26_HTTPServing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E26HTTPServing(150, 2000))
	}
}

func BenchmarkE27_AdapterThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E27AdapterThroughput(100000))
	}
}

func BenchmarkE28_ProductCompilation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E28ProductCompilation(150000))
	}
}

// TestExperimentsSanity runs the smaller experiments once and checks the
// headline facts the paper claims: exponential gaps where promised,
// agreement columns at 100%, and claimed automaton properties.  It is the
// integration test gluing every package together.
func TestExperimentsSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite takes a few seconds")
	}
	e4 := experiments.E04NWAvsDFA(8)
	for _, row := range e4.Rows {
		var s, nwaStates, dfaStates, pow int
		fmt.Sscanf(row[0], "%d", &s)
		fmt.Sscanf(row[1], "%d", &nwaStates)
		fmt.Sscanf(row[2], "%d", &dfaStates)
		fmt.Sscanf(row[3], "%d", &pow)
		if dfaStates < pow {
			t.Errorf("E4 s=%d: minimal DFA %d below the 2^s bound %d", s, dfaStates, pow)
		}
		if nwaStates > 3*s+10 {
			t.Errorf("E4 s=%d: NWA has %d states, not O(s)", s, nwaStates)
		}
	}
	e6 := experiments.E06FlatVsBottomUp(6)
	for _, row := range e6.Rows {
		if row[2] != row[3] {
			t.Errorf("E6: expected %s congruence classes, measured %s", row[3], row[2])
		}
	}
	e9 := experiments.E09PathSuccinctness(8)
	for _, row := range e9.Rows {
		var s, nwaStates, topDown, bottomUp, pow int
		fmt.Sscanf(row[0], "%d", &s)
		fmt.Sscanf(row[1], "%d", &nwaStates)
		fmt.Sscanf(row[2], "%d", &topDown)
		fmt.Sscanf(row[3], "%d", &bottomUp)
		fmt.Sscanf(row[4], "%d", &pow)
		if topDown < pow && bottomUp < pow {
			t.Errorf("E9 s=%d: neither tree-automaton view reaches the 2^s bound (%d, %d)", s, topDown, bottomUp)
		}
		if nwaStates > 3*s+12 {
			t.Errorf("E9 s=%d: NWA has %d states, not O(s)", s, nwaStates)
		}
	}
	for _, tbl := range []experiments.Table{
		experiments.E02WeakConversion(),
		experiments.E05BottomUpConversion(),
		experiments.E08JoinlessConversion(),
		experiments.E17Determinization(),
	} {
		for _, row := range tbl.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("%s: agreement column is %q for row %v", tbl.Name, row[len(row)-1], row)
			}
		}
	}
	e15 := experiments.E15MembershipNPReduction()
	for _, row := range e15.Rows {
		if row[1] != row[3] {
			t.Errorf("E15: reduction disagreed with DPLL on row %v", row)
		}
	}
	e13 := experiments.E13PTAEmbedding()
	for _, row := range e13.Rows {
		if row[1] != row[2] || row[1] != row[3] {
			t.Errorf("E13: PTA/PNWA verdicts diverge from the language on row %v", row)
		}
	}
	e14 := experiments.E14CountingSeparation(5)
	for _, row := range e14.Rows {
		if row[3] != row[4] {
			t.Errorf("E14: PNWA verdict differs from the counting predicate on row %v", row)
		}
	}
	e21 := experiments.E21MultiQueryStreaming(100000, 32)
	for _, row := range e21.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E21: engine verdicts diverge from serial re-scans on row %v", row)
		}
	}
	e22 := experiments.E22CompiledVsMap(100000, 32)
	for _, row := range e22.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E22: compiled verdicts diverge from map-backed runners on row %v", row)
		}
	}
	e23 := experiments.E23ShardedServing(60, 1000)
	for _, row := range e23.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E23: pool or naive fan-out verdicts diverge from serial on row %v", row)
		}
	}
	e24 := experiments.E24BitsetRunner(64)
	if len(e24.Rows) == 0 {
		t.Error("E24 produced no rows")
	}
	for _, row := range e24.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E24: bitset runner verdicts diverge from the matrix runner on row %v", row)
		}
	}
	e25 := experiments.E25ColdStart(16)
	if len(e25.Rows) == 0 {
		t.Error("E25 produced no rows")
	}
	for _, row := range e25.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E25: bundle-loaded verdicts diverge from freshly compiled queries on row %v", row)
		}
	}
	e26 := experiments.E26HTTPServing(60, 800)
	if len(e26.Rows) == 0 {
		t.Error("E26 produced no rows")
	}
	for _, row := range e26.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E26: HTTP or pool verdicts diverge from serial evaluation on row %v", row)
		}
	}
	e27 := experiments.E27AdapterThroughput(20000)
	if len(e27.Rows) != 4 {
		t.Errorf("E27 produced %d rows, want native + one per adapter format", len(e27.Rows))
	}
	for _, row := range e27.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E27: adapter stream diverges from its render+retokenize image on row %v", row)
		}
	}
	e28 := experiments.E28ProductCompilation(60000)
	if len(e28.Rows) != 4 {
		t.Errorf("E28 produced %d rows, want one per query count", len(e28.Rows))
	}
	for _, row := range e28.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E28: product or planner verdicts diverge from the serial oracle on row %v", row)
		}
	}
	if len(e28.Rows) == 4 {
		last := e28.Rows[3]
		if last[1] != "0" {
			t.Errorf("E28: the forced 16-query product compiled %s states; the default budget should reject it", last[1])
		}
		if last[2] == "0" {
			t.Error("E28: the planner formed no product groups at 16 queries")
		}
	}
}
