// Command nwbench regenerates every experiment table of docs/EXPERIMENTS.md
// — one per theorem, lemma, or figure of "Marrying Words and Trees", plus
// the engineering experiments of the serving stack — and prints them with
// wall-clock timings.  The same computations are exposed as Go benchmarks in
// the repository root (go test -bench=.).  Run with -list to print the
// one-line summary of each experiment instead of computing anything, and
// with -json DIR to additionally write one machine-readable BENCH_<ID>.json
// file per serving-stack experiment (experiments.ArtifactIDs(), E21–E28) —
// the per-PR perf trajectory CI uploads as a workflow artifact and guards
// with the scripts/benchcmp regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// benchRecord is the schema of one BENCH_<ID>.json file: the experiment's
// identity, the environment, the wall-clock of the regeneration, and the
// full table both raw (header + rows) and as one object per row keyed by
// the header — so ns/op columns, alloc columns, and shard/query counts are
// addressable by name without re-parsing the fixed-width text table.
type benchRecord struct {
	ID         string              `json:"id"`
	Name       string              `json:"name"`
	Summary    string              `json:"summary"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	UnixTime   int64               `json:"unix_time"`
	WallNS     int64               `json:"wall_ns"`
	Header     []string            `json:"header"`
	Rows       [][]string          `json:"rows"`
	Metrics    []map[string]string `json:"metrics"`
}

// jsonIDs selects the experiments whose tables are benchmark trajectories
// worth recording per PR — experiments.ArtifactIDs(), the same list
// scripts/nwvet and scripts/benchcmp key on.
var jsonIDs = func() map[string]bool {
	ids := map[string]bool{}
	for _, id := range experiments.ArtifactIDs() {
		ids[id] = true
	}
	return ids
}()

func writeBenchJSON(dir, id string, table experiments.Table, wall time.Duration) error {
	summary := ""
	for _, info := range experiments.Index() {
		if info.ID == id {
			summary = info.Summary
		}
	}
	rec := benchRecord{
		ID:         id,
		Name:       table.Name,
		Summary:    summary,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		UnixTime:   time.Now().Unix(),
		WallNS:     wall.Nanoseconds(),
		Header:     table.Header,
		Rows:       table.Rows,
	}
	for _, row := range table.Rows {
		m := map[string]string{}
		for i, cell := range row {
			if i < len(table.Header) {
				m[table.Header[i]] = cell
			}
		}
		rec.Metrics = append(rec.Metrics, m)
	}
	body, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), append(body, '\n'), 0o644)
}

func main() {
	quick := flag.Bool("quick", false, "use smaller parameter ranges for a fast smoke run")
	list := flag.Bool("list", false, "print one line per experiment (the docs/EXPERIMENTS.md summaries) and exit")
	jsonDir := flag.String("json", "", "write BENCH_<ID>.json files for the serving-stack experiments (E21–E28) into this directory")
	flag.Parse()

	if *list {
		for _, info := range experiments.Index() {
			fmt.Printf("%-5s %s\n", info.ID, info.Summary)
		}
		return
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "nwbench:", err)
			os.Exit(1)
		}
	}

	type entry struct {
		name string
		run  func() experiments.Table
	}
	full := []entry{
		{"E1", experiments.E01Encodings},
		{"E2", experiments.E02WeakConversion},
		{"E3", experiments.E03FlatEquivalence},
		{"E4", func() experiments.Table { return experiments.E04NWAvsDFA(10) }},
		{"E5", experiments.E05BottomUpConversion},
		{"E6", func() experiments.Table { return experiments.E06FlatVsBottomUp(8) }},
		{"E7", experiments.E07JoinlessSeparation},
		{"E8", experiments.E08JoinlessConversion},
		{"E9", func() experiments.Table { return experiments.E09PathSuccinctness(10) }},
		{"E10", func() experiments.Table { return experiments.E10LinearOrderQuery(8) }},
		{"E11", experiments.E11TreeAutomataEmbedding},
		{"E12", experiments.E12PDAEmbedding},
		{"E13", experiments.E13PTAEmbedding},
		{"E14", func() experiments.Table { return experiments.E14CountingSeparation(6) }},
		{"E15", experiments.E15MembershipNPReduction},
		{"E16", experiments.E16PNWAEmptiness},
		{"E17", experiments.E17Determinization},
		{"E19", experiments.E19DecisionProcedures},
		{"E20", experiments.E20Streaming},
		{"E21", func() experiments.Table { return experiments.E21MultiQueryStreaming(1000000, 32) }},
		{"E22", func() experiments.Table { return experiments.E22CompiledVsMap(1000000, 32) }},
		{"E23", func() experiments.Table { return experiments.E23ShardedServing(200, 5000) }},
		{"E24", func() experiments.Table { return experiments.E24BitsetRunner(256) }},
		{"E25", func() experiments.Table { return experiments.E25ColdStart(64) }},
		{"E26", func() experiments.Table { return experiments.E26HTTPServing(400, 4000) }},
		{"E27", func() experiments.Table { return experiments.E27AdapterThroughput(200000) }},
		{"E28", func() experiments.Table { return experiments.E28ProductCompilation(300000) }},
	}
	entries := full
	if *quick {
		entries = []entry{
			{"E1", experiments.E01Encodings},
			{"E4", func() experiments.Table { return experiments.E04NWAvsDFA(6) }},
			{"E6", func() experiments.Table { return experiments.E06FlatVsBottomUp(5) }},
			{"E9", func() experiments.Table { return experiments.E09PathSuccinctness(6) }},
			{"E10", func() experiments.Table { return experiments.E10LinearOrderQuery(5) }},
			{"E15", experiments.E15MembershipNPReduction},
			{"E21", func() experiments.Table { return experiments.E21MultiQueryStreaming(100000, 24) }},
			{"E22", func() experiments.Table { return experiments.E22CompiledVsMap(100000, 24) }},
			{"E23", func() experiments.Table { return experiments.E23ShardedServing(50, 1000) }},
			{"E24", func() experiments.Table { return experiments.E24BitsetRunner(256) }},
			{"E25", func() experiments.Table { return experiments.E25ColdStart(64) }},
			{"E26", func() experiments.Table { return experiments.E26HTTPServing(100, 1000) }},
			{"E27", func() experiments.Table { return experiments.E27AdapterThroughput(50000) }},
			{"E28", func() experiments.Table { return experiments.E28ProductCompilation(60000) }},
		}
	}

	start := time.Now()
	for _, e := range entries {
		t0 := time.Now()
		table := e.run()
		wall := time.Since(t0)
		fmt.Println(table)
		fmt.Printf("(%s regenerated in %v)\n\n", e.name, wall.Round(time.Millisecond))
		if *jsonDir != "" && jsonIDs[e.name] {
			if err := writeBenchJSON(*jsonDir, e.name, table, wall); err != nil {
				fmt.Fprintln(os.Stderr, "nwbench:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
