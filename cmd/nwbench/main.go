// Command nwbench regenerates every experiment table of docs/EXPERIMENTS.md
// — one per theorem, lemma, or figure of "Marrying Words and Trees", plus
// the engineering experiments of the serving stack — and prints them with
// wall-clock timings.  The same computations are exposed as Go benchmarks in
// the repository root (go test -bench=.).  Run with -list to print the
// one-line summary of each experiment instead of computing anything.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use smaller parameter ranges for a fast smoke run")
	list := flag.Bool("list", false, "print one line per experiment (the docs/EXPERIMENTS.md summaries) and exit")
	flag.Parse()

	if *list {
		for _, info := range experiments.Index() {
			fmt.Printf("%-5s %s\n", info.ID, info.Summary)
		}
		return
	}

	type entry struct {
		name string
		run  func() experiments.Table
	}
	full := []entry{
		{"E1", experiments.E01Encodings},
		{"E2", experiments.E02WeakConversion},
		{"E3", experiments.E03FlatEquivalence},
		{"E4", func() experiments.Table { return experiments.E04NWAvsDFA(10) }},
		{"E5", experiments.E05BottomUpConversion},
		{"E6", func() experiments.Table { return experiments.E06FlatVsBottomUp(8) }},
		{"E7", experiments.E07JoinlessSeparation},
		{"E8", experiments.E08JoinlessConversion},
		{"E9", func() experiments.Table { return experiments.E09PathSuccinctness(10) }},
		{"E10", func() experiments.Table { return experiments.E10LinearOrderQuery(8) }},
		{"E11", experiments.E11TreeAutomataEmbedding},
		{"E12", experiments.E12PDAEmbedding},
		{"E13", experiments.E13PTAEmbedding},
		{"E14", func() experiments.Table { return experiments.E14CountingSeparation(6) }},
		{"E15", experiments.E15MembershipNPReduction},
		{"E16", experiments.E16PNWAEmptiness},
		{"E17", experiments.E17Determinization},
		{"E19", experiments.E19DecisionProcedures},
		{"E20", experiments.E20Streaming},
		{"E21", func() experiments.Table { return experiments.E21MultiQueryStreaming(1000000, 32) }},
		{"E22", func() experiments.Table { return experiments.E22CompiledVsMap(1000000, 32) }},
		{"E23", func() experiments.Table { return experiments.E23ShardedServing(200, 5000) }},
	}
	entries := full
	if *quick {
		entries = []entry{
			{"E1", experiments.E01Encodings},
			{"E4", func() experiments.Table { return experiments.E04NWAvsDFA(6) }},
			{"E6", func() experiments.Table { return experiments.E06FlatVsBottomUp(5) }},
			{"E9", func() experiments.Table { return experiments.E09PathSuccinctness(6) }},
			{"E10", func() experiments.Table { return experiments.E10LinearOrderQuery(5) }},
			{"E15", experiments.E15MembershipNPReduction},
			{"E21", func() experiments.Table { return experiments.E21MultiQueryStreaming(100000, 24) }},
			{"E22", func() experiments.Table { return experiments.E22CompiledVsMap(100000, 24) }},
			{"E23", func() experiments.Table { return experiments.E23ShardedServing(50, 1000) }},
		}
	}

	start := time.Now()
	for _, e := range entries {
		t0 := time.Now()
		table := e.run()
		fmt.Println(table)
		fmt.Printf("(%s regenerated in %v)\n\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
