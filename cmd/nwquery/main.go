// Command nwquery streams an XML-like document from a file (or standard
// input) through compiled nested-word-automaton queries, all evaluated by
// the engine package in one left-to-right pass with memory bounded by the
// document depth times the number of queries (Section 3.2 of the paper).
//
// Usage:
//
//	nwquery [-file doc.xml] [-labels l1,l2,...] [-order l1,l2,...] [-path l1,l2,...]
//
// The query automata need the document's tag/text alphabet up front.  Pass
// it with -labels to stay fully streaming; without -labels the document is
// buffered once to discover the alphabet before the engine pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/query"
)

func main() {
	file := flag.String("file", "", "document file (default: standard input)")
	labelsFlag := flag.String("labels", "", "comma-separated document alphabet (enables the fully streaming path)")
	order := flag.String("order", "", "comma-separated labels for a linear-order query")
	path := flag.String("path", "", "comma-separated labels for a hierarchical path query")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nwquery:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	labels := splitLabels(*labelsFlag)
	labels = append(labels, splitLabels(*order)...)
	labels = append(labels, splitLabels(*path)...)

	// Without -labels the alphabet must be discovered first, which costs one
	// buffered tokenization; with -labels the engine consumes the reader
	// directly and nothing proportional to the document is ever stored.
	var buffered []docstream.Event
	if *labelsFlag == "" {
		events, err := docstream.Tokenize(readAll(in))
		if err != nil {
			fmt.Fprintln(os.Stderr, "nwquery:", err)
			os.Exit(1)
		}
		buffered = events
		seen := map[string]bool{}
		for _, e := range events {
			if !seen[e.Label] {
				seen[e.Label] = true
				labels = append(labels, e.Label)
			}
		}
	}
	alpha := alphabet.New(labels...)

	eng := engine.New()
	eng.Register("well-formed", query.WellFormed(alpha))
	if *order != "" {
		eng.Register("order "+*order, query.LinearOrder(alpha, splitLabels(*order)...))
	}
	if *path != "" {
		eng.Register("path //"+strings.ReplaceAll(*path, ",", "//"), query.PathQuery(alpha, splitLabels(*path)...))
	}

	var res *engine.Result
	var err error
	var unknown *unknownLabelSource
	if buffered != nil {
		res, err = eng.RunEvents(buffered)
	} else {
		// In streaming mode an event label missing from -labels silently
		// drives every automaton to its dead state, so track unknown labels
		// and warn: a false verdict caused by an incomplete -labels list
		// looks exactly like a query rejection otherwise.
		unknown = &unknownLabelSource{src: docstream.NewTokenizer(in), alpha: alpha}
		res, err = eng.Run(unknown)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwquery:", err)
		os.Exit(1)
	}

	fmt.Printf("document: %d events, max open elements %d\n", res.Events, res.MaxDepth)
	for i, name := range eng.Names() {
		fmt.Printf("%-30s : %v\n", name, res.Verdicts[i])
	}
	if unknown != nil && unknown.count > 0 {
		fmt.Fprintf(os.Stderr,
			"nwquery: warning: %d events carried labels missing from -labels (e.g. %q); queries reject such events\n",
			unknown.count, unknown.example)
	}
}

// unknownLabelSource passes events through while counting labels outside the
// declared alphabet.
type unknownLabelSource struct {
	src     engine.EventSource
	alpha   *alphabet.Alphabet
	count   int
	example string
}

func (u *unknownLabelSource) Next() (docstream.Event, error) {
	e, err := u.src.Next()
	if err == nil && !u.alpha.Contains(e.Label) {
		if u.count == 0 {
			u.example = e.Label
		}
		u.count++
	}
	return e, err
}

func readAll(r io.Reader) string {
	data, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwquery:", err)
		os.Exit(1)
	}
	return string(data)
}

func splitLabels(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
