// Command nwquery streams an XML-like document from a file (or standard
// input) through compiled nested-word-automaton queries, all evaluated by
// the engine package in one left-to-right pass with memory bounded by the
// document depth times the number of queries (Section 3.2 of the paper).
//
// Usage:
//
//	nwquery [-file doc.xml] [-format xml|json|trace] [-labels l1,l2,...]
//	        [-order l1,l2,...] [-path l1,l2,...] [-dsl QUERIES]
//	nwquery [-file doc.xml] [-format ...] -queryset queries.nwq
//
// The query automata need the document's tag/text alphabet up front.  Pass
// it with -labels to stay fully streaming; without -labels the document is
// buffered once to discover the alphabet before the engine pass.  With
// -queryset the compile step is skipped entirely: the serialized bundle
// written by `nwtool compile` is loaded (mmap'd read-only where available)
// and its alphabet and query set are used as-is, which both stays fully
// streaming and makes cold starts independent of query complexity.
//
// -format routes the input through one of the internal/adapter event
// sources — real XML via encoding/xml, JSON, or an enter/exit program trace
// — instead of the native XML-like tokenizer; everything downstream (the
// engine pass, the queries, the verdicts) is unchanged.  -dsl adds textual
// queries (see internal/query/dsl), semicolon-separated, to the compiled
// set; their labels join the alphabet like -order/-path labels do.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/adapter"
	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/query/dsl"
)

func main() {
	file := flag.String("file", "", "document file (default: standard input)")
	format := flag.String("format", "", "input format: xml, json, or trace (default: the native XML-like token syntax)")
	labelsFlag := flag.String("labels", "", "comma-separated document alphabet: labels are interned to compiled symbol IDs at the tokenizer and the engine streams the input directly (labels not listed map to the out-of-alphabet ID and are uniformly rejected); without -labels the document is buffered once to discover the alphabet")
	order := flag.String("order", "", "comma-separated labels for a linear-order query")
	path := flag.String("path", "", "comma-separated labels for a hierarchical path query")
	dslFlag := flag.String("dsl", "", "semicolon-separated DSL queries (e.g. 'within book: title before author'); their labels join the alphabet")
	queryset := flag.String("queryset", "", "serialized query bundle from `nwtool compile`: boot from it instead of compiling (-labels/-order/-path/-dsl must not be given; the bundle fixes the alphabet and the queries)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	eng := engine.New()
	var alpha *alphabet.Alphabet
	var buffered []docstream.Event
	if *queryset != "" {
		// Bundle boot: the serialized tables are loaded (zero-copy over the
		// mapped file) and registered as-is; no automaton is compiled and the
		// pass is always fully streaming.
		if *labelsFlag != "" || *order != "" || *path != "" || *dslFlag != "" {
			fatal(fmt.Errorf("-queryset carries its own alphabet and queries; drop -labels/-order/-path/-dsl"))
		}
		bundle, err := query.OpenBundle(*queryset)
		if err != nil {
			fatal(err)
		}
		defer bundle.Close()
		if _, err := eng.RegisterBundle(bundle); err != nil {
			fatal(err)
		}
		alpha = bundle.Alphabet()
	} else {
		exprs, err := dsl.ParseList(*dslFlag)
		if err != nil {
			fatal(err)
		}
		labels := query.SplitLabels(*labelsFlag)
		labels = append(labels, query.SplitLabels(*order)...)
		labels = append(labels, query.SplitLabels(*path)...)
		labels = append(labels, dsl.Labels(exprs...)...)

		// Without -labels the alphabet must be discovered first, which costs
		// one buffered pass over the input; with -labels the engine consumes
		// the reader directly and nothing proportional to the document is
		// ever stored.
		if *labelsFlag == "" {
			events, err := readEvents(*format, in)
			if err != nil {
				fatal(err)
			}
			buffered = events
			seen := map[string]bool{}
			for _, e := range events {
				if !seen[e.Label] {
					seen[e.Label] = true
					labels = append(labels, e.Label)
				}
			}
		}
		alpha = alphabet.New(labels...)
		names, queries := query.StandardSet(alpha, query.SplitLabels(*order), query.SplitLabels(*path))
		dslNames, dslQueries, err := dsl.Queries(alpha, exprs)
		if err != nil {
			fatal(err)
		}
		names = append(names, dslNames...)
		queries = append(queries, dslQueries...)
		for i, q := range queries {
			if _, err := eng.RegisterQuery(names[i], q); err != nil {
				fatal(err)
			}
		}
	}

	var res *engine.Result
	var err error
	var unknown *unknownLabelSource
	if buffered != nil {
		res, err = eng.RunEvents(buffered)
	} else {
		// In streaming mode a label missing from -labels maps to the
		// dedicated out-of-alphabet symbol ID, which drives every automaton
		// to its dead state.  That is uniform and correct, but a false
		// verdict caused by an incomplete -labels list looks exactly like a
		// query rejection, so track the out-of-alphabet labels — the
		// event source has already interned each event, making the check one
		// integer compare — and summarize them once at exit.
		var src engine.EventSource = docstream.NewInterningTokenizer(in, alpha)
		if *format != "" {
			src, err = adapter.New(*format, in, alpha)
			if err != nil {
				fatal(err)
			}
		}
		unknown = &unknownLabelSource{
			src:    src,
			alpha:  alpha,
			counts: map[string]int{},
		}
		res, err = eng.Run(unknown)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("document: %d events, max open elements %d\n", res.Events, res.MaxDepth)
	for i, name := range eng.Names() {
		fmt.Printf("%-30s : %v\n", name, res.Verdicts[i])
	}
	unknown.report(os.Stderr)
}

// unknownLabelSource passes pre-interned events through while tallying, per
// distinct label, the events that carry the out-of-alphabet symbol ID.
type unknownLabelSource struct {
	src    engine.EventSource
	alpha  *alphabet.Alphabet
	counts map[string]int
	total  int
}

func (u *unknownLabelSource) Next() (docstream.Event, error) {
	e, err := u.src.Next()
	if err == nil && e.OutOfAlphabet(u.alpha) {
		u.counts[e.Label]++
		u.total++
	}
	return e, err
}

// report prints one deduplicated summary of the out-of-alphabet traffic: the
// event total, the distinct labels (most frequent first), and a reminder
// that such events are uniformly rejected.
func (u *unknownLabelSource) report(w io.Writer) {
	if u == nil || u.total == 0 {
		return
	}
	labels := make([]string, 0, len(u.counts))
	for l := range u.counts {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if u.counts[labels[i]] != u.counts[labels[j]] {
			return u.counts[labels[i]] > u.counts[labels[j]]
		}
		return labels[i] < labels[j]
	})
	const maxListed = 8
	listed := labels
	if len(listed) > maxListed {
		listed = listed[:maxListed]
	}
	parts := make([]string, len(listed))
	for i, l := range listed {
		parts[i] = fmt.Sprintf("%q×%d", l, u.counts[l])
	}
	suffix := ""
	if len(labels) > maxListed {
		suffix = fmt.Sprintf(", … %d more", len(labels)-maxListed)
	}
	fmt.Fprintf(w,
		"nwquery: warning: %d events carried %d distinct labels missing from -labels (%s%s); queries treat them as out-of-alphabet and reject\n",
		u.total, len(labels), strings.Join(parts, ", "), suffix)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nwquery:", err)
	os.Exit(1)
}

func readAll(r io.Reader) string {
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	return string(data)
}

// readEvents buffers the whole input as uninterned events — through the
// named adapter, or the native tokenizer when format is empty — for the
// alphabet-discovery path.
func readEvents(format string, in io.Reader) ([]docstream.Event, error) {
	if format == "" {
		return docstream.Tokenize(readAll(in))
	}
	src, err := adapter.New(format, in, nil)
	if err != nil {
		return nil, err
	}
	var events []docstream.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
}
