// Command nwquery streams an XML-like document from a file (or standard
// input) through compiled nested-word-automaton queries in a single pass,
// reporting the verdicts and the maximum number of simultaneously open
// elements (the streaming memory bound of Section 3.2 of the paper).
//
// Usage:
//
//	nwquery [-file doc.xml] [-order l1,l2,...] [-path l1,l2,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nwa"
	"repro/internal/query"
)

func main() {
	file := flag.String("file", "", "document file (default: standard input)")
	order := flag.String("order", "", "comma-separated labels for a linear-order query")
	path := flag.String("path", "", "comma-separated labels for a hierarchical path query")
	flag.Parse()

	var data []byte
	var err error
	if *file == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwquery:", err)
		os.Exit(1)
	}
	events, err := docstream.Tokenize(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwquery:", err)
		os.Exit(1)
	}
	doc := docstream.ToNestedWord(events)
	stats := docstream.Summarize(doc)
	fmt.Printf("document: %d positions, %d elements, depth %d, well-formed %v\n",
		stats.Positions, stats.Elements, stats.Depth, stats.WellFormed)

	labels := doc.Alphabet()
	if *order != "" {
		labels = append(labels, splitLabels(*order)...)
	}
	if *path != "" {
		labels = append(labels, splitLabels(*path)...)
	}
	alpha := alphabet.New(labels...)

	type namedQuery struct {
		name string
		q    *nwa.DNWA
	}
	queries := []namedQuery{{name: "well-formed", q: query.WellFormed(alpha)}}
	if *order != "" {
		queries = append(queries, namedQuery{
			name: "order " + *order,
			q:    query.LinearOrder(alpha, splitLabels(*order)...),
		})
	}
	if *path != "" {
		queries = append(queries, namedQuery{
			name: "path //" + strings.ReplaceAll(*path, ",", "//"),
			q:    query.PathQuery(alpha, splitLabels(*path)...),
		})
	}

	for _, nq := range queries {
		runner := docstream.NewStreamingRunner(nq.q)
		maxDepth := 0
		for _, e := range events {
			runner.Feed(e)
			if runner.Depth() > maxDepth {
				maxDepth = runner.Depth()
			}
		}
		fmt.Printf("%-30s : %v (max open elements %d)\n", nq.name, runner.Accepting(), maxDepth)
	}
}

func splitLabels(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
