// Command nwserve serves many XML-like documents through a sharded
// serve.Pool against one compiled query set, and reports aggregate verdicts
// and throughput — the multi-document counterpart of cmd/nwquery's
// single-document pass.  (For the long-running HTTP daemon over the same
// pool — network clients, zero-downtime bundle reloads, metrics — see
// cmd/nwserved.)
//
// Usage:
//
//	nwserve [-labels l1,l2,...] [-order l1,l2,...] [-path l1,l2,...]
//	        [-dsl QUERIES] [-format xml|json|trace]
//	        [-queryset queries.nwq]
//	        [-shards n] [-queue n] [-affinity hash|none]
//	        [-dir directory] [file ...]
//
// Documents come from the positional file arguments and every regular file
// under -dir; with neither, standard input is read as a stream of documents
// separated by lines containing only "---".  Each document is hashed by its
// name (file path, or stdin ordinal) to a shard — use -affinity none to
// round-robin instead — and evaluated against the registered queries in one
// pass: well-formedness always, plus the -order and -path queries and the
// semicolon-separated -dsl queries (see internal/query/dsl) when given.
// With -format the documents are real XML, JSON, or enter/exit program
// traces, decoded on the shard workers through the matching
// internal/adapter event source instead of the native tokenizer.
//
// The query automata need the document alphabet up front.  Pass it with
// -labels (labels are interned to compiled symbol IDs at the tokenizer;
// labels not listed map to the dedicated out-of-alphabet ID and are
// uniformly rejected); without -labels every document is tokenized once
// before serving to discover the alphabet.  With -queryset no automaton is
// compiled at all: the serialized bundle written by `nwtool compile` is
// mapped read-only and served as-is — the fleet cold-start path where many
// front-end processes share one compiled query set on disk.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/adapter"
	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/query/dsl"
	"repro/internal/serve"
)

func main() {
	labelsFlag := flag.String("labels", "", "comma-separated document alphabet; without it, documents are tokenized once up front to discover the labels")
	order := flag.String("order", "", "comma-separated labels for a linear-order query")
	path := flag.String("path", "", "comma-separated labels for a hierarchical path query")
	dslFlag := flag.String("dsl", "", "semicolon-separated DSL queries (e.g. 'within book: title before author'); their labels join the alphabet")
	format := flag.String("format", "", "document format: xml, json, or trace (default: the native XML-like token syntax)")
	queryset := flag.String("queryset", "", "serialized query bundle from `nwtool compile`: boot from it instead of compiling (-labels/-order/-path/-dsl must not be given)")
	dir := flag.String("dir", "", "serve every regular file under this directory")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "number of pool shards (worker sessions)")
	queue := flag.Int("queue", 64, "bounded queue depth per shard (backpressure)")
	affinityFlag := flag.String("affinity", "hash", "document-to-shard routing: hash (by document name) or none (round-robin)")
	flag.Parse()

	affinity, err := serve.ParseAffinity(*affinityFlag)
	if err != nil {
		fatal(err)
	}

	docs, err := collectDocuments(*dir, flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(docs) == 0 {
		fatal(fmt.Errorf("no documents to serve"))
	}

	eng := engine.New()
	if *queryset != "" {
		// Bundle boot: no compilation; the bundle's tables (zero-copy over
		// the mapped file) and alphabet serve as-is.
		if *labelsFlag != "" || *order != "" || *path != "" || *dslFlag != "" {
			fatal(fmt.Errorf("-queryset carries its own alphabet and queries; drop -labels/-order/-path/-dsl"))
		}
		bundle, err := query.OpenBundle(*queryset)
		if err != nil {
			fatal(err)
		}
		defer bundle.Close()
		if _, err := eng.RegisterBundle(bundle); err != nil {
			fatal(err)
		}
	} else {
		exprs, err := dsl.ParseList(*dslFlag)
		if err != nil {
			fatal(err)
		}
		labels := query.SplitLabels(*labelsFlag)
		labels = append(labels, query.SplitLabels(*order)...)
		labels = append(labels, query.SplitLabels(*path)...)
		labels = append(labels, dsl.Labels(exprs...)...)
		if *labelsFlag == "" {
			// Discovery pass: decode every document once, collecting labels.
			seen := map[string]bool{}
			for _, l := range labels {
				seen[l] = true
			}
			for _, d := range docs {
				events, err := decodeEvents(*format, d.body)
				if err != nil {
					fatal(fmt.Errorf("%s: %w", d.name, err))
				}
				for _, e := range events {
					if !seen[e.Label] {
						seen[e.Label] = true
						labels = append(labels, e.Label)
					}
				}
			}
		}
		alpha := alphabet.New(labels...)
		names, queries := query.StandardSet(alpha, query.SplitLabels(*order), query.SplitLabels(*path))
		dslNames, dslQueries, err := dsl.Queries(alpha, exprs)
		if err != nil {
			fatal(err)
		}
		names = append(names, dslNames...)
		queries = append(queries, dslQueries...)
		for i, q := range queries {
			if _, err := eng.RegisterQuery(names[i], q); err != nil {
				fatal(err)
			}
		}
	}

	// Aggregate on the shard workers through the callback, so no future
	// bookkeeping grows with the corpus.
	var mu sync.Mutex
	accepted := make([]int, eng.Len())
	var failures []string
	pool, err := serve.NewPool(eng,
		serve.WithShards(*shards),
		serve.WithQueueDepth(*queue),
		serve.WithAffinity(affinity),
		serve.WithOnResult(func(r serve.Result) {
			mu.Lock()
			defer mu.Unlock()
			if r.Err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", r.ID, r.Err))
				return
			}
			for i, v := range r.Engine.Verdicts {
				if v {
					accepted[i]++
				}
			}
		}))
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	for _, d := range docs {
		if *format != "" {
			// Adapter formats: the shard worker drives the adapter (one per
			// document) interned against the serving alphabet.
			src, err := adapter.New(*format, bytes.NewReader(d.body), pool.Engine().Alphabet())
			if err != nil {
				fatal(err)
			}
			if _, err := pool.SubmitSource(context.Background(), d.name, src); err != nil {
				fatal(err)
			}
			continue
		}
		if _, err := pool.Submit(context.Background(), d.name, bytes.NewReader(d.body)); err != nil {
			fatal(err)
		}
	}
	if err := pool.Close(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	st := pool.Stats()
	fmt.Printf("served %d documents (%d events) on %d shards (affinity %s) in %v\n",
		st.Served, st.Events, pool.Shards(), affinity, elapsed.Round(time.Microsecond))
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("throughput: %.0f docs/s, %.2f Mev/s\n",
			float64(st.Served)/secs, float64(st.Events)/secs/1e6)
	}
	for i, name := range eng.Names() {
		fmt.Printf("%-30s : %d/%d documents\n", name, accepted[i], st.Served-st.Failed)
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		fmt.Fprintf(os.Stderr, "nwserve: %d documents failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
}

// document is one unit of work: a display name (the routing key under hash
// affinity) and the raw bytes.
type document struct {
	name string
	body []byte
}

// collectDocuments gathers documents from explicit file arguments, a
// directory, or — when neither is given — standard input split on "---"
// separator lines.
func collectDocuments(dir string, files []string) ([]document, error) {
	var docs []document
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		docs = append(docs, document{name: f, body: body})
	}
	if dir != "" {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			body, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			docs = append(docs, document{name: path, body: body})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(docs) > 0 {
		return docs, nil
	}
	// Standard input: documents separated by lines containing only "---".
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var cur bytes.Buffer
	n := 0
	emit := func() {
		if strings.TrimSpace(cur.String()) != "" {
			docs = append(docs, document{name: fmt.Sprintf("stdin-%d", n), body: append([]byte(nil), cur.Bytes()...)})
			n++
		}
		cur.Reset()
	}
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "---" {
			emit()
			continue
		}
		cur.Write(sc.Bytes())
		cur.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	emit()
	return docs, nil
}

// decodeEvents buffers one document as uninterned events — through the
// named adapter, or the native tokenizer when format is empty — for the
// alphabet-discovery pass.
func decodeEvents(format string, body []byte) ([]docstream.Event, error) {
	if format == "" {
		return docstream.Tokenize(string(body))
	}
	src, err := adapter.New(format, bytes.NewReader(body), nil)
	if err != nil {
		return nil, err
	}
	var events []docstream.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nwserve:", err)
	os.Exit(1)
}
