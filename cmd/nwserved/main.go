// Command nwserved is the long-running HTTP serving daemon: it boots a
// sharded serve.Pool from a serialized query bundle and answers per-query
// verdicts over HTTP — the network-facing counterpart of cmd/nwserve's
// batch run.
//
// Usage:
//
//	nwserved -queryset queries.nwq | -queryset-url http://peer:8417/v1/bundle
//	         [-addr :8417] [-cache-dir DIR] [-pubkey NAME.pub]
//	         [-shards n] [-queue n] [-affinity hash|none]
//	         [-max-body bytes]
//
// Exactly one of -queryset (a local bundle file) and -queryset-url (a
// peer's GET /v1/bundle endpoint) must be given.  With -queryset-url the
// daemon self-provisions: every boot and reload fetches the peer's
// current bundle through a content-hash-keyed on-disk cache (-cache-dir,
// default nwq-cache), so a restart with a warm cache boots even when the
// peer is down, and an unchanged bundle is one conditional request
// answered 304.  With -pubkey every loaded bundle — local file or fetched
// — must carry a valid detached ed25519 signature (nwtool sign); a bad
// hash or signature fails the reload and the old generation keeps
// serving.  See docs/DISTRIBUTION.md for the fleet flow.
//
// Endpoints:
//
//	POST /v1/documents[?id=ID]  one document per request (body = document
//	                            text in the XML-like syntax, or real XML,
//	                            JSON, or an enter/exit trace when
//	                            ?format=xml|json|trace routes the body
//	                            through internal/adapter); the response is
//	                            the per-query verdict set as JSON.  A full
//	                            shard queue answers 429, a shutting-down
//	                            server 503, both with Retry-After.
//	POST /v1/batch              NDJSON stream, one {"id","doc"} per line
//	                            (an optional "format" field decodes that
//	                            line's doc through the named adapter); one
//	                            verdict line per input line, in input
//	                            order, under the pool's backpressure.
//	POST /v1/reload             reload the bundle file (or re-fetch the
//	                            -queryset-url) and swap pools with zero
//	                            downtime (SIGHUP does the same); the swap
//	                            happens only after the new bundle's hash
//	                            and signature verify.
//	GET  /v1/bundle             the active bundle's raw bytes (ETag =
//	                            content hash; If-None-Match → 304) — what
//	                            peers point -queryset-url at.
//	GET  /v1/bundle.sig         its detached signature (404 if unsigned).
//	GET  /v1/status             active bundle identity (the schema `nwtool
//	                            bundle -json` prints), pool shape, counters.
//	GET  /metrics               Prometheus text exposition.
//	GET  /debug/vars            expvar JSON (includes the "nwserved" var).
//
// The bundle is re-opened from the same -queryset path on every reload, so
// a deploy is: write the new bundle (atomically, e.g. rename into place),
// then `kill -HUP` or POST /v1/reload.  In-flight documents finish on the
// old pool; the old bundle is unmapped only after the last of them is done.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bundlecache"
	"repro/internal/serve"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8417", "listen address")
	queryset := flag.String("queryset", "", "serialized query bundle from `nwtool compile`")
	querysetURL := flag.String("queryset-url", "", "peer GET /v1/bundle endpoint to self-provision the bundle from (instead of -queryset)")
	cacheDir := flag.String("cache-dir", "nwq-cache", "with -queryset-url: content-hash-keyed on-disk bundle cache directory")
	pubkeyPath := flag.String("pubkey", "", "NWP1 public key file (nwtool keygen); when set, every loaded bundle must carry a valid detached signature")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "number of pool shards (worker sessions)")
	queue := flag.Int("queue", 64, "bounded queue depth per shard (backpressure)")
	affinityFlag := flag.String("affinity", "hash", "document-to-shard routing: hash (by document id) or none (round-robin)")
	maxBody := flag.Int64("max-body", 8<<20, "maximum single-document body size in bytes")
	flag.Parse()

	if (*queryset == "") == (*querysetURL == "") {
		fatal(errors.New("exactly one of -queryset (compile one with `nwtool compile`) and -queryset-url is required"))
	}
	affinity, err := serve.ParseAffinity(*affinityFlag)
	if err != nil {
		fatal(err)
	}
	var pubkey []byte
	if *pubkeyPath != "" {
		if pubkey, err = os.ReadFile(*pubkeyPath); err != nil {
			fatal(err)
		}
	}
	cfg := server.Config{
		BundlePath:   *queryset,
		PublicKey:    pubkey,
		Shards:       *shards,
		QueueDepth:   *queue,
		Affinity:     affinity,
		MaxBodyBytes: *maxBody,
	}
	if *querysetURL != "" {
		cache, err := bundlecache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		src := bundlecache.NewSource(*querysetURL, cache, bundlecache.Options{PublicKey: pubkey})
		cfg.Source = src.Fetch
	}

	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv.PublishExpvar("nwserved")

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGHUP reloads the bundle in place; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if info, err := srv.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "nwserved: reload failed, keeping current bundle:", err)
			} else {
				fmt.Fprintf(os.Stderr, "nwserved: reloaded %s (generation %d, %d queries)\n",
					info.Path, info.Generation, len(info.Bundle.Queries))
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	info, err := srv.BundleInfo()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nwserved: serving %s (%d queries over %d symbols) on %s, %d shards (affinity %s)\n",
		info.Path, len(info.Bundle.Queries), info.Bundle.AlphabetSize, *addr, *shards, affinity)

	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nwserved:", err)
	os.Exit(1)
}
