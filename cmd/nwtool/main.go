// Command nwtool inspects nested words given in the tagged notation of the
// paper ("<a" call, "a" internal, "a>" return) or in the XML-like document
// syntax, and reports their structural properties.
//
// Usage:
//
//	nwtool word  '<a <b b> a>'      inspect a tagged nested word
//	nwtool doc   '<a> text </a>'    inspect an XML-like document
//	nwtool tree  'a(b(),c(d()))'    encode an ordered tree as a tree word
//	nwtool query '<doc> ... </doc>' LABEL...
//	                                run the //LABEL1//LABEL2... path query
package main

import (
	"fmt"
	"os"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/query"
	"repro/internal/tree"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "word":
		n, err := nestedword.Parse(os.Args[2])
		exitOn(err)
		describe(n)
	case "doc":
		n, err := docstream.Parse(os.Args[2])
		exitOn(err)
		describe(n)
	case "tree":
		t, err := tree.ParseTerm(os.Args[2])
		exitOn(err)
		n := tree.ToNestedWord(t)
		fmt.Printf("tree      : %v\n", t)
		fmt.Printf("tree word : %v\n", n)
		describe(n)
	case "query":
		if len(os.Args) < 4 {
			usage()
		}
		n, err := docstream.Parse(os.Args[2])
		exitOn(err)
		labels := os.Args[3:]
		alpha := alphabet.New(append(n.Alphabet(), labels...)...)
		q := query.PathQuery(alpha, labels...)
		fmt.Printf("document : %v\n", n)
		fmt.Printf("query    : //%v\n", labels)
		fmt.Printf("matches  : %v\n", q.Accepts(n))
	default:
		usage()
	}
}

func describe(n *nestedword.NestedWord) {
	calls, internals, returns := n.Counts()
	fmt.Printf("nested word : %v\n", n)
	fmt.Printf("length      : %d (%d calls, %d internals, %d returns)\n", n.Len(), calls, internals, returns)
	fmt.Printf("depth       : %d\n", n.Depth())
	fmt.Printf("well-matched: %v   rooted: %v   tree word: %v\n", n.IsWellMatched(), n.IsRooted(), n.IsTreeWord())
	fmt.Printf("pending     : %d calls, %d returns\n", len(n.PendingCalls()), len(n.PendingReturns()))
	fmt.Printf("alphabet    : %v\n", n.Alphabet())
	if n.IsTreeWord() {
		if t, err := tree.FromNestedWord(n); err == nil {
			fmt.Printf("as tree     : %v\n", t)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nwtool word|doc|tree|query ARG [LABEL...]")
	os.Exit(2)
}
