// Command nwtool inspects nested words given in the tagged notation of the
// paper ("<a" call, "a" internal, "a>" return) or in the XML-like document
// syntax, reports their structural properties, and compiles query sets to
// serialized bundles.
//
// Usage:
//
//	nwtool word  '<a <b b> a>'      inspect a tagged nested word
//	nwtool doc   '<a> text </a>'    inspect an XML-like document
//	nwtool tree  'a(b(),c(d()))'    encode an ordered tree as a tree word
//	nwtool query '<doc> ... </doc>' LABEL...
//	                                run the //LABEL1//LABEL2... path query
//	nwtool compile -labels l1,l2 [-order ...] [-path ...] [-dsl QUERIES] [-plan] -o FILE
//	                                compile the query set once and write a
//	                                serialized bundle; nwquery and nwserve
//	                                boot from it with -queryset FILE; -dsl
//	                                adds textual queries (see
//	                                internal/query/dsl) to the set; -plan
//	                                product-compiles clusters of similar
//	                                queries into shared automata (see
//	                                internal/query/plan and
//	                                docs/COMPILATION.md)
//	nwtool bundle [-json] FILE      describe a serialized bundle (with -json,
//	                                the machine-readable schema /v1/status of
//	                                nwserved shares), product groups included
//	nwtool vet [-pubkey FILE [-sig FILE]] FILE
//	                                statically verify a compiled artifact
//	                                (bundle, standalone query, or product);
//	                                with -pubkey, also require a valid
//	                                detached signature (FILE.sig by default)
//	nwtool keygen -o NAME           write an ed25519 keypair: NAME.key
//	                                (private, keep on the compile host) and
//	                                NAME.pub (public, ship to the fleet)
//	nwtool sign -key FILE BUNDLE    write BUNDLE.sig, a detached NWS1
//	                                envelope over the bundle's content hash
//	nwtool verify -pubkey FILE [-sig FILE] BUNDLE
//	                                check a bundle's content hash and
//	                                detached signature; exits 1 on any
//	                                mismatch
//
// keygen/sign/verify implement the distribution flow of
// docs/DISTRIBUTION.md: sign once on the compile host, verify on every
// worker (and automatically in nwserved -pubkey) before a bundle is
// mapped.
//
// The compile subcommand builds exactly the query set nwquery and nwserve
// build from the same -labels/-order/-path flags (well-formedness always,
// the order and path queries when given) over the alphabet the flags
// determine, so a bundle-booted server answers with verdicts identical to
// in-process compilation.
//
// The vet subcommand checks a serialized bundle (or standalone compiled
// query) before any process maps it: table shapes, target ranges, the
// CSR/bitmask cross-representation agreement, per-query alphabet agreement,
// and a reachability/coaccessibility analysis reporting unreachable states
// and dead transitions.  Structural violations exit 1; dead-weight findings
// are warnings and exit 0 (see docs/ANALYZERS.md for the report format).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/query"
	"repro/internal/query/dsl"
	"repro/internal/query/format"
	"repro/internal/query/plan"
	"repro/internal/tree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "word", "doc", "tree", "query", "vet", "sign", "verify":
		if len(os.Args) < 3 {
			usage()
		}
	}
	switch os.Args[1] {
	case "word":
		n, err := nestedword.Parse(os.Args[2])
		exitOn(err)
		describe(n)
	case "doc":
		n, err := docstream.Parse(os.Args[2])
		exitOn(err)
		describe(n)
	case "tree":
		t, err := tree.ParseTerm(os.Args[2])
		exitOn(err)
		n := tree.ToNestedWord(t)
		fmt.Printf("tree      : %v\n", t)
		fmt.Printf("tree word : %v\n", n)
		describe(n)
	case "query":
		if len(os.Args) < 4 {
			usage()
		}
		n, err := docstream.Parse(os.Args[2])
		exitOn(err)
		labels := os.Args[3:]
		alpha := alphabet.New(append(n.Alphabet(), labels...)...)
		q := query.PathQuery(alpha, labels...)
		fmt.Printf("document : %v\n", n)
		fmt.Printf("query    : //%v\n", labels)
		fmt.Printf("matches  : %v\n", q.Accepts(n))
	case "compile":
		compileBundle(os.Args[2:])
	case "bundle":
		describeBundle(os.Args[2:])
	case "vet":
		vetArtifact(os.Args[2:])
	case "keygen":
		keygen(os.Args[2:])
	case "sign":
		signBundle(os.Args[2:])
	case "verify":
		verifyBundle(os.Args[2:])
	default:
		usage()
	}
}

// compileBundle compiles the standard CLI query set — plus any DSL-authored
// queries — once and writes it as a serialized bundle that nwquery/nwserve
// boot from with -queryset.
func compileBundle(args []string) {
	fs := flag.NewFlagSet("nwtool compile", flag.ExitOnError)
	labelsFlag := fs.String("labels", "", "comma-separated document alphabet (labels outside it map to the out-of-alphabet ID at serving time)")
	order := fs.String("order", "", "comma-separated labels for a linear-order query")
	path := fs.String("path", "", "comma-separated labels for a hierarchical path query")
	dslFlag := fs.String("dsl", "", "semicolon-separated DSL queries (e.g. 'within book: title before author; no write after close'); their labels join the alphabet")
	planFlag := fs.Bool("plan", false, "product-compile clusters of structurally similar queries into shared automata before writing")
	planBudget := fs.Int("plan-budget", 0, "with -plan: per-product state budget (0 = the planner default; over-budget clusters fan out)")
	planCluster := fs.Int("plan-cluster", 0, "with -plan: maximum queries per product cluster (0 = the planner default)")
	out := fs.String("o", "queries.nwq", "output bundle file")
	fs.Parse(args)

	exprs, err := dsl.ParseList(*dslFlag)
	exitOn(err)
	labels := query.SplitLabels(*labelsFlag)
	labels = append(labels, query.SplitLabels(*order)...)
	labels = append(labels, query.SplitLabels(*path)...)
	labels = append(labels, dsl.Labels(exprs...)...)
	if len(labels) == 0 {
		exitOn(fmt.Errorf("compile: no alphabet — give -labels (and/or -order, -path, -dsl)"))
	}
	alpha := alphabet.New(labels...)
	names, queries := query.StandardSet(alpha, query.SplitLabels(*order), query.SplitLabels(*path))
	dslNames, dslQueries, err := dsl.Queries(alpha, exprs)
	exitOn(err)
	names = append(names, dslNames...)
	queries = append(queries, dslQueries...)
	bundle := query.NewBundle(alpha)
	for i, q := range queries {
		exitOn(bundle.Add(names[i], q))
	}
	if *planFlag {
		planned, dec, err := plan.Bundle(bundle, plan.Options{
			StateBudget: *planBudget,
			ClusterSize: *planCluster,
		})
		exitOn(err)
		bundle = planned
		fmt.Printf("plan: %d product groups (%d states total), %d queries fanned out\n",
			len(dec.Groups), dec.States, len(dec.Solo))
	}
	data := bundle.Marshal()
	exitOn(os.WriteFile(*out, data, 0o644))
	fmt.Printf("wrote %s: %d queries over alphabet %v, %d bytes\n", *out, bundle.Len(), alpha, len(data))
	for _, name := range bundle.Names() {
		fmt.Printf("  %s\n", name)
	}
}

// describeBundle loads a serialized bundle and summarizes its contents —
// human-readable by default, or with -json as the machine-readable
// query.BundleDesc schema shared with the serving front-end's /v1/status
// endpoint, so ops tooling can diff what is on disk against what a server
// actually loaded.
func describeBundle(args []string) {
	fs := flag.NewFlagSet("nwtool bundle", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the machine-readable bundle description (the schema /v1/status shares)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	b, err := query.OpenBundle(path)
	exitOn(err)
	defer b.Close()
	desc := query.Describe(b)
	if *asJSON {
		body, err := json.MarshalIndent(desc, "", "  ")
		exitOn(err)
		fmt.Printf("%s\n", body)
		return
	}
	fmt.Printf("bundle   : %s\n", path)
	fmt.Printf("alphabet : %v (%d symbols)\n", b.Alphabet(), desc.AlphabetSize)
	fmt.Printf("queries  : %d\n", len(desc.Queries))
	for _, q := range desc.Queries {
		if q.Group > 0 {
			fmt.Printf("  %-30s %s (group %d)\n", q.Name, q.Kind, q.Group)
			continue
		}
		fmt.Printf("  %-30s %s, %d states\n", q.Name, q.Kind, q.States)
	}
	if len(desc.Groups) > 0 {
		fmt.Printf("groups   : %d\n", len(desc.Groups))
		for i, g := range desc.Groups {
			fmt.Printf("  group %d: %s, %d states, %d mask words, demuxes %v\n",
				i+1, g.Kind, g.States, g.MaskWords, g.Queries)
		}
	}
}

// vetArtifact runs the automaton-level verifier over a serialized artifact.
// The file is read (not mapped) so that a hostile artifact is vetted from a
// private copy, and decode failures reject it before any table is indexed.
// With -pubkey the artifact must additionally carry a valid detached
// signature (its sibling .sig file unless -sig names one).
func vetArtifact(args []string) {
	fs := flag.NewFlagSet("nwtool vet", flag.ExitOnError)
	pubkey := fs.String("pubkey", "", "NWP1 public key file; when set, the artifact's detached signature must verify")
	sigPath := fs.String("sig", "", "detached signature file (default: ARTIFACT.sig)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	exitOn(err)
	rep, err := query.VetBytes(data)
	exitOn(err)
	fmt.Print(rep)
	if *pubkey != "" {
		pub, err := os.ReadFile(*pubkey)
		exitOn(err)
		sig, err := os.ReadFile(sigFile(*sigPath, path))
		exitOn(err)
		if err := format.Verify(pub, sig, data); err != nil {
			exitOn(err)
		}
		fmt.Println("signature: ok")
	}
	if rep.Errors() > 0 {
		os.Exit(1)
	}
}

// sigFile resolves the detached-signature path: an explicit -sig value, or
// the artifact's sibling .sig file.
func sigFile(explicit, artifact string) string {
	if explicit != "" {
		return explicit
	}
	return artifact + ".sig"
}

// keygen writes a fresh ed25519 keypair as NAME.key (NWK1 private seed)
// and NAME.pub (NWP1 public key).
func keygen(args []string) {
	fs := flag.NewFlagSet("nwtool keygen", flag.ExitOnError)
	out := fs.String("o", "bundle-signing", "output name: NAME.key and NAME.pub are written")
	fs.Parse(args)
	priv, pub, err := format.GenerateKey()
	exitOn(err)
	exitOn(os.WriteFile(*out+".key", priv, 0o600))
	exitOn(os.WriteFile(*out+".pub", pub, 0o644))
	fmt.Printf("wrote %s.key (private — keep on the compile host) and %s.pub (ship to the fleet)\n", *out, *out)
}

// signBundle writes BUNDLE.sig, the detached NWS1 envelope over the
// artifact's content hash.  The artifact must be a hashed (version 2)
// container — everything Marshal emits since the hash was introduced.
func signBundle(args []string) {
	fs := flag.NewFlagSet("nwtool sign", flag.ExitOnError)
	keyPath := fs.String("key", "", "NWK1 private key file (from nwtool keygen)")
	sigPath := fs.String("o", "", "output signature file (default: BUNDLE.sig)")
	fs.Parse(args)
	if fs.NArg() != 1 || *keyPath == "" {
		usage()
	}
	path := fs.Arg(0)
	keyFile, err := os.ReadFile(*keyPath)
	exitOn(err)
	priv, err := format.ParsePrivateKey(keyFile)
	exitOn(err)
	data, err := os.ReadFile(path)
	exitOn(err)
	sig, err := format.Sign(priv, data)
	exitOn(err)
	out := sigFile(*sigPath, path)
	exitOn(os.WriteFile(out, sig, 0o644))
	sum, _, err := format.ContentHash(data)
	exitOn(err)
	fmt.Printf("wrote %s: ed25519 over content hash %x\n", out, sum)
}

// verifyBundle checks an artifact's content hash and detached signature,
// exiting 1 on any mismatch — the worker-side half of the sign/verify
// round trip.
func verifyBundle(args []string) {
	fs := flag.NewFlagSet("nwtool verify", flag.ExitOnError)
	pubkey := fs.String("pubkey", "", "NWP1 public key file (from nwtool keygen)")
	sigPath := fs.String("sig", "", "detached signature file (default: BUNDLE.sig)")
	fs.Parse(args)
	if fs.NArg() != 1 || *pubkey == "" {
		usage()
	}
	path := fs.Arg(0)
	pub, err := os.ReadFile(*pubkey)
	exitOn(err)
	sig, err := os.ReadFile(sigFile(*sigPath, path))
	exitOn(err)
	data, err := os.ReadFile(path)
	exitOn(err)
	exitOn(format.Verify(pub, sig, data))
	sum, _, err := format.ContentHash(data)
	exitOn(err)
	fmt.Printf("ok: %s verifies (content hash %x)\n", path, sum)
}

func describe(n *nestedword.NestedWord) {
	calls, internals, returns := n.Counts()
	fmt.Printf("nested word : %v\n", n)
	fmt.Printf("length      : %d (%d calls, %d internals, %d returns)\n", n.Len(), calls, internals, returns)
	fmt.Printf("depth       : %d\n", n.Depth())
	fmt.Printf("well-matched: %v   rooted: %v   tree word: %v\n", n.IsWellMatched(), n.IsRooted(), n.IsTreeWord())
	fmt.Printf("pending     : %d calls, %d returns\n", len(n.PendingCalls()), len(n.PendingReturns()))
	fmt.Printf("alphabet    : %v\n", n.Alphabet())
	if n.IsTreeWord() {
		if t, err := tree.FromNestedWord(n); err == nil {
			fmt.Printf("as tree     : %v\n", t)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nwtool word|doc|tree|query|compile|bundle|vet|keygen|sign|verify ARG [LABEL...]")
	fmt.Fprintln(os.Stderr, "       nwtool compile -labels l1,l2 [-order ...] [-path ...] [-dsl QUERIES] -o FILE")
	fmt.Fprintln(os.Stderr, "       nwtool keygen -o NAME")
	fmt.Fprintln(os.Stderr, "       nwtool sign -key NAME.key BUNDLE")
	fmt.Fprintln(os.Stderr, "       nwtool verify -pubkey NAME.pub [-sig FILE] BUNDLE")
	os.Exit(2)
}
