// Command linguistics models annotated linguistic data, the paper's first
// motivating domain: a sentence is a linear sequence of words, and the parse
// into syntactic categories imparts hierarchical structure on top of it.
// Nested words capture both at once, and nested word automata answer queries
// that mix the two orders — e.g. "a noun phrase precedes a verb phrase in
// the sentence" (linear) and "the verb phrase contains a prepositional
// phrase" (hierarchical) — with one machine each.
package main

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/query"
	"repro/internal/tree"
)

func main() {
	// "the automaton reads the word with a stack" annotated with a toy
	// constituent parse: S( NP(the automaton) VP(reads NP(the word) PP(with
	// NP(a stack))) ).
	parse := tree.New("S",
		tree.New("NP", tree.Leaf("the"), tree.Leaf("automaton")),
		tree.New("VP",
			tree.Leaf("reads"),
			tree.New("NP", tree.Leaf("the"), tree.Leaf("word")),
			tree.New("PP",
				tree.Leaf("with"),
				tree.New("NP", tree.Leaf("a"), tree.Leaf("stack")))))

	sentence := tree.ToNestedWord(parse)
	fmt.Printf("parse tree    : %v\n", parse)
	fmt.Printf("as nested word: %v\n", sentence)
	fmt.Printf("length %d, depth %d\n\n", sentence.Len(), sentence.Depth())

	alpha := alphabet.New(sentence.Alphabet()...)

	// Hierarchical query: the verb phrase contains a prepositional phrase
	// which contains a noun phrase (VP//PP//NP).
	vpPPnp := query.PathQuery(alpha, "VP", "PP", "NP")
	// Linear query: the word "automaton" occurs before the word "stack" in
	// the sentence order, regardless of the constituent structure.
	automatonBeforeStack := query.LinearOrder(alpha, "automaton", "stack")
	// Mixed query by boolean combination (closure under intersection).
	both := query.And(vpPPnp, automatonBeforeStack)

	fmt.Printf("VP//PP//NP                        : %v\n", vpPPnp.Accepts(sentence))
	fmt.Printf("'automaton' before 'stack'        : %v\n", automatonBeforeStack.Accepts(sentence))
	fmt.Printf("both at once (product automaton)  : %v\n", both.Accepts(sentence))

	// The same queries on a different parse of a scrambled sentence show the
	// linear and hierarchical parts reacting independently.
	scrambled := tree.New("S",
		tree.New("NP", tree.Leaf("a"), tree.Leaf("stack")),
		tree.New("VP", tree.Leaf("reads"),
			tree.New("NP", tree.Leaf("the"), tree.Leaf("automaton"))))
	scrambledWord := tree.ToNestedWord(scrambled)
	fmt.Printf("\nscrambled sentence: %v\n", scrambledWord)
	fmt.Printf("VP//PP//NP                        : %v\n", vpPPnp.Accepts(scrambledWord))
	fmt.Printf("'automaton' before 'stack'        : %v\n", automatonBeforeStack.Accepts(scrambledWord))

	// Prefixes of nested words are nested words: a parser that has consumed
	// only half the sentence still has a queryable object (with pending
	// calls), something ordered trees cannot represent.
	prefix := sentence.Prefix(sentence.Len()/2 - 1)
	fmt.Printf("\nhalf-read sentence: %v\n", prefix)
	fmt.Printf("pending constituents: %d\n", len(prefix.PendingCalls()))
	fmt.Printf("'automaton' before 'stack' so far : %v\n", automatonBeforeStack.Accepts(prefix))
	fmt.Printf("well-formed so far                : %v\n", nestedword.Concat(prefix).IsWellMatched())
}
