// Command programtrace models executions of structured programs, the domain
// in which nested words were originally proposed: calls and returns of
// procedures are the hierarchical edges, and individual statements are
// internal positions.  Nested word automata check properties that relate a
// procedure's call to its matching return (pre/post-conditions) and
// pushdown nested word automata check quantitative properties (here: the
// trace acquires and releases a lock equally often).
package main

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/pnwa"
)

// A trace over the procedure alphabet {main, io, log} and the statement
// alphabet {acq, rel, work}: calls/returns are procedure boundaries.
const goodTrace = "<main work <io acq work rel io> <log work log> work main>"
const badPostTrace = "<main work <io acq work io> work main>" // io returns without releasing
const pendingTrace = "<main work <io acq work"                // the program crashed mid-io

func main() {
	alpha := alphabet.New("main", "io", "log", "acq", "rel", "work")

	// Property 1 (finite-state, uses the hierarchical edges): every call to
	// `io` that acquires the lock releases it before returning.  The
	// automaton remembers on the linear state whether the lock is held and
	// verifies at the matching return of io that it is free again; the
	// hierarchical edge carries what was known at call time.
	ioReleases := ioReleasesLock(alpha)

	// Property 2 (pushdown): across the whole trace, acquisitions and
	// releases are balanced (acq/rel may also appear outside io).
	balanced := balancedLock()

	for name, trace := range map[string]string{
		"good":      goodTrace,
		"bad-post":  badPostTrace,
		"crash-mid": pendingTrace,
	} {
		n := nestedword.MustParse(trace)
		fmt.Printf("%-9s trace: %v\n", name, n)
		fmt.Printf("          depth %d, well-matched %v, pending calls %d\n",
			n.Depth(), n.IsWellMatched(), len(n.PendingCalls()))
		fmt.Printf("          io releases lock before returning : %v\n", ioReleases.Accepts(n))
		fmt.Printf("          acquisitions and releases balanced : %v\n\n", balancedAccepts(balanced, n))
	}
}

// ioReleasesLock builds a DNWA over the trace alphabet that rejects traces
// in which some io call returns while the lock is held.
func ioReleasesLock(alpha *alphabet.Alphabet) *nwa.DNWA {
	// Linear states: 0 = lock free, 1 = lock held, 2 = violation (absorbing,
	// non-accepting).  Hierarchical markers: 3 = pushed at an io call, 4 =
	// pushed at any other call.
	const free, held, bad, markIO, markOther = 0, 1, 2, 3, 4
	b := nwa.NewDNWABuilder(alpha, 5)
	b.SetStart(free).SetAccept(free, held)
	for _, sym := range alpha.Symbols() {
		for _, q := range []int{free, held} {
			next := q
			switch sym {
			case "acq":
				next = held
			case "rel":
				next = free
			}
			b.Internal(q, sym, next)
			marker := markOther
			if sym == "io" {
				marker = markIO
			}
			b.Call(q, sym, q, marker)
			// Returning from io with the lock held is the violation.
			if sym == "io" {
				b.Return(held, markIO, sym, bad)
				b.Return(free, markIO, sym, free)
			} else {
				b.Return(q, markOther, sym, q)
				b.Return(q, markIO, sym, q)
			}
		}
		b.Internal(bad, sym, bad)
		b.Call(bad, sym, bad, markOther)
		for _, m := range []int{markIO, markOther} {
			b.Return(bad, m, sym, bad)
		}
	}
	return b.Build()
}

// balancedLock builds a pushdown NWA counting acq vs rel over the trace,
// regardless of the procedure structure.
func balancedLock() *pnwa.PNWA {
	alpha := alphabet.New("main", "io", "log", "acq", "rel", "work")
	p := pnwa.New(alpha, 4)
	const ready, afterAcq, afterRel, done = 0, 1, 2, 3
	p.AddStart(ready)
	for _, sym := range alpha.Symbols() {
		target := ready
		switch sym {
		case "acq":
			target = afterAcq
		case "rel":
			target = afterRel
		}
		p.AddInternal(ready, sym, target)
		p.AddCall(ready, sym, target, ready)
		p.AddReturn(ready, sym, target)
	}
	p.AddPush(afterAcq, ready, "L")
	p.AddPop(afterRel, "L", ready)
	p.AddPopBottom(ready, done)
	return p
}

func balancedAccepts(p *pnwa.PNWA, n *nestedword.NestedWord) bool { return p.Accepts(n) }
