// Command quickstart is the smallest end-to-end tour of the library: it
// builds the three nested words of Figure 1 of "Marrying Words and Trees",
// converts a tree to its tree word and back, builds a small deterministic
// nested word automaton, and runs it.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tree"
)

func main() {
	// The three nested words of Figure 1.
	n1 := core.MustParseNestedWord("a b <a a <b a b> a> <a b a a>")
	n2 := core.MustParseNestedWord("a a> <b a a> <a <a")
	n3 := core.MustParseNestedWord("<a <a a> <b b> a>")
	for name, n := range map[string]*core.NestedWord{"n1": n1, "n2": n2, "n3": n3} {
		fmt.Printf("%s = %v  (length %d, depth %d, well-matched %v, tree word %v)\n",
			name, n, n.Len(), n.Depth(), n.IsWellMatched(), n.IsTreeWord())
	}

	// Trees are nested words: a(a(),b()) encodes to n3 and decodes back.
	t := tree.New("a", tree.Leaf("a"), tree.Leaf("b"))
	encoded := core.TreeToNestedWord(t)
	decoded, _ := core.TreeFromNestedWord(encoded)
	fmt.Printf("\nt_nw(%v) = %v, nw_t back = %v\n", t, encoded, decoded)

	// Word and tree operations on nested words.
	fmt.Printf("path(a,b,a)      = %v\n", core.Path("a", "b", "a"))
	fmt.Printf("concat(n2, n2)   = %v\n", core.Concat(n2, n2))
	fmt.Printf("insert ⟨b b⟩ after every a of n3 = %v\n",
		core.Insert(n3, "a", core.MustParseNestedWord("<b b>")))

	// A deterministic NWA over {a, b} accepting the well-matched words whose
	// matched calls and returns carry the same symbol: the call pushes its
	// symbol along the hierarchical edge, the return checks it.
	alpha := core.NewAlphabet("a", "b")
	b := core.NewDNWABuilder(alpha, 6)
	const topOK, insideOK, pushTopA, pushTopB, pushInA, pushInB = 0, 1, 2, 3, 4, 5
	b.SetStart(topOK).SetAccept(topOK)
	for _, sym := range []string{"a", "b"} {
		b.Internal(topOK, sym, topOK)
		b.Internal(insideOK, sym, insideOK)
	}
	b.Call(topOK, "a", insideOK, pushTopA).Call(topOK, "b", insideOK, pushTopB)
	b.Call(insideOK, "a", insideOK, pushInA).Call(insideOK, "b", insideOK, pushInB)
	b.Return(insideOK, pushTopA, "a", topOK).Return(insideOK, pushTopB, "b", topOK)
	b.Return(insideOK, pushInA, "a", insideOK).Return(insideOK, pushInB, "b", insideOK)
	matched := b.Build()

	fmt.Println("\nmatched-symbols automaton verdicts:")
	for _, in := range []string{"<a <b b> a>", "<a b>", "a b a", "<a <b a> b>", "<a"} {
		n := core.MustParseNestedWord(in)
		fmt.Printf("  %-14s -> %v\n", in, matched.Accepts(n))
	}

	// Boolean combination and a decision procedure (Section 3.2).
	wellFormed := core.WellFormedQuery(alpha)
	fmt.Printf("\nmatched ⊆ well-formed over {a,b}: equivalent automata? %v\n",
		core.EquivalentNWA(matched, wellFormed))
	inter := core.IntersectNWA(matched, wellFormed)
	if w, ok := inter.SomeWord(); ok {
		fmt.Printf("a witness in the intersection: %v\n", w)
	}
}
