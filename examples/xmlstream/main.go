// Command xmlstream demonstrates the paper's main application argument:
// the SAX event stream of an XML-like document is already a nested word, so
// validation and querying run in a single streaming pass with memory bounded
// by the document depth — no tree needs to be built.  The engine package
// extends the argument from one query to many, and — through the compiled
// query API — from deterministic automata to nondeterministic ones: every
// registered query.Query is answered by the same single pass over compiled
// transition tables, with each label interned to a symbol ID once at the
// tokenizer.
//
// Run with -many N to continue into the multi-document serving layer: the
// same engine, wrapped in a sharded serve.Pool, answers the same query set
// over N generated documents concurrently.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nwa"
	"repro/internal/query"
	"repro/internal/serve"
)

const document = `
<catalog>
  <book> <title> marrying words and trees </title> <year> 2007 </year> </book>
  <book> <title> visibly pushdown languages </title> <year> 2004 </year> </book>
  <report> <title> tree automata techniques </title> </report>
</catalog>`

const brokenDocument = `<catalog> <book> <title> dangling </book> </catalog>`

// containsNNWA builds a deliberately nondeterministic automaton for "some
// position carries the given label": it guesses the witnessing position.
// The engine runs its compiled state-set runner next to the deterministic
// ones through the same query.Runner interface.
func containsNNWA(alpha *alphabet.Alphabet, label string) *nwa.NNWA {
	a := nwa.NewNNWA(alpha, 2)
	const searching, found = 0, 1
	a.AddStart(searching)
	a.AddAccept(found)
	both := []int{searching, found}
	for _, sym := range alpha.Symbols() {
		// searching keeps looking at every position kind...
		a.AddInternal(searching, sym, searching)
		a.AddCall(searching, sym, searching, searching)
		for _, hier := range both {
			a.AddReturn(searching, hier, sym, searching)
		}
		// ...and may guess this position as the witness.
		if sym == label {
			a.AddInternal(searching, sym, found)
			a.AddCall(searching, sym, found, searching)
			for _, hier := range both {
				a.AddReturn(searching, hier, sym, found)
			}
		}
		// found is absorbing.
		a.AddInternal(found, sym, found)
		a.AddCall(found, sym, found, found)
		for _, hier := range both {
			a.AddReturn(found, hier, sym, found)
		}
	}
	return a
}

func main() {
	many := flag.Int("many", 0, "also serve this many generated documents through a sharded serve.Pool")
	flag.Parse()

	doc, err := docstream.Parse(document)
	if err != nil {
		panic(err)
	}
	stats := docstream.Summarize(doc)
	fmt.Printf("document: %d positions, %d elements, %d text tokens, depth %d, well-formed %v\n",
		stats.Positions, stats.Elements, stats.TextTokens, stats.Depth, stats.WellFormed)

	alpha := alphabet.New(append(doc.Alphabet(), "missing")...)

	// One engine, five queries — four deterministic, one nondeterministic —
	// one pass: the interning tokenizer resolves each label to a symbol ID
	// once, and the compiled runners index their transition tables with it,
	// so the memory in play is the five runner stacks — never the document.
	eng := engine.New()
	eng.MustRegister("well-formed", query.WellFormed(alpha))
	eng.MustRegister("//book//title", query.PathQuery(alpha, "book", "title"))
	eng.MustRegister("//report//year", query.PathQuery(alpha, "report", "year"))
	eng.MustRegister("'words' before '2007'", query.LinearOrder(alpha, "words", "2007"))
	eng.MustRegisterQuery("contains 'pushdown' (NNWA)", query.CompileN(containsNNWA(alpha, "pushdown")))

	res, err := eng.RunReader(strings.NewReader(document))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsingle-pass engine evaluation (%d events, max open elements %d):\n",
		res.Events, res.MaxDepth)
	for i, name := range eng.Names() {
		fmt.Printf("  %-26s : %v\n", name, res.Verdicts[i])
	}

	// The compiled verdicts coincide with the reference implementation:
	// batch evaluation of the map-keyed source automaton over the parsed
	// word.  The engine pass above never touches these maps — E22 measures
	// the difference.
	fmt.Println("\nreference batch evaluation over the parsed word:")
	fmt.Printf("  //book//title              : %v\n",
		query.PathQuery(alpha, "book", "title").Accepts(doc))

	// Documents that do not parse into a tree are still nested words.
	broken, err := docstream.Parse(brokenDocument)
	if err != nil {
		panic(err)
	}
	bs := docstream.Summarize(broken)
	fmt.Printf("\nbroken document: well-formed %v, pending opens %d, pending closes %d\n",
		bs.WellFormed, bs.PendingOpens, bs.PendingCloses)
	fmt.Printf("it can still be queried: //book//title = %v\n",
		query.PathQuery(alphabet.New(broken.Alphabet()...), "book", "title").Accepts(broken))

	if *many > 0 {
		serveMany(eng, *many)
	}
}

// serveMany is the many-documents mode: the engine built above — same query
// set, same compiled tables — is wrapped in a sharded serve.Pool and fed
// generated documents over the same alphabet.  Each shard owns one engine
// session and one reusable interning tokenizer; verdicts are aggregated on
// the shard workers through the pool's result callback.
func serveMany(eng *engine.Engine, docs int) {
	var mu sync.Mutex
	accepted := make([]int, eng.Len())
	pool, err := serve.NewPool(eng,
		serve.WithShards(runtime.GOMAXPROCS(0)),
		serve.WithOnResult(func(r serve.Result) {
			if r.Err != nil {
				panic(r.Err)
			}
			mu.Lock()
			defer mu.Unlock()
			for i, v := range r.Engine.Verdicts {
				if v {
					accepted[i]++
				}
			}
		}))
	if err != nil {
		panic(err)
	}
	labels := []string{"catalog", "book", "report", "title", "year", "words", "2007", "pushdown"}
	start := time.Now()
	for d := 0; d < docs; d++ {
		doc := strings.NewReader(docstream.Render(
			generator.RandomDocument(rand.New(rand.NewSource(int64(d))), 60, 8, labels)))
		if _, err := pool.Submit(context.Background(), fmt.Sprintf("doc-%d", d), doc); err != nil {
			panic(err)
		}
	}
	if err := pool.Close(); err != nil {
		panic(err)
	}
	st := pool.Stats()
	fmt.Printf("\nserved %d generated documents (%d events) on %d shards in %v:\n",
		st.Served, st.Events, pool.Shards(), time.Since(start).Round(time.Microsecond))
	for i, name := range eng.Names() {
		fmt.Printf("  %-26s : accepted by %d/%d documents\n", name, accepted[i], docs)
	}
}
