// Command xmlstream demonstrates the paper's main application argument:
// the SAX event stream of an XML-like document is already a nested word, so
// validation and querying run in a single streaming pass with memory bounded
// by the document depth — no tree needs to be built.
package main

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/query"
)

const document = `
<catalog>
  <book> <title> marrying words and trees </title> <year> 2007 </year> </book>
  <book> <title> visibly pushdown languages </title> <year> 2004 </year> </book>
  <report> <title> tree automata techniques </title> </report>
</catalog>`

const brokenDocument = `<catalog> <book> <title> dangling </book> </catalog>`

func main() {
	events, err := docstream.Tokenize(document)
	if err != nil {
		panic(err)
	}
	doc := docstream.ToNestedWord(events)
	stats := docstream.Summarize(doc)
	fmt.Printf("document: %d positions, %d elements, %d text tokens, depth %d, well-formed %v\n",
		stats.Positions, stats.Elements, stats.TextTokens, stats.Depth, stats.WellFormed)

	alpha := alphabet.New(append(doc.Alphabet(), "missing")...)
	wellFormed := query.WellFormed(alpha)
	hasBookTitle := query.PathQuery(alpha, "book", "title")
	hasReportYear := query.PathQuery(alpha, "report", "year")
	wordsBeforeYear := query.LinearOrder(alpha, "words", "2007")

	fmt.Println("\nbatch evaluation over the whole document:")
	fmt.Printf("  well-formed                : %v\n", wellFormed.Accepts(doc))
	fmt.Printf("  //book//title              : %v\n", hasBookTitle.Accepts(doc))
	fmt.Printf("  //report//year             : %v\n", hasReportYear.Accepts(doc))
	fmt.Printf("  'words' before '2007'      : %v\n", wordsBeforeYear.Accepts(doc))

	// Streaming evaluation: one pass, memory proportional to the depth.
	runner := docstream.NewStreamingRunner(hasBookTitle)
	maxDepth := 0
	for _, e := range events {
		runner.Feed(e)
		if runner.Depth() > maxDepth {
			maxDepth = runner.Depth()
		}
	}
	fmt.Printf("\nstreaming //book//title: verdict %v, max open elements %d\n",
		runner.Accepting(), maxDepth)

	// Documents that do not parse into a tree are still nested words.
	broken, err := docstream.Parse(brokenDocument)
	if err != nil {
		panic(err)
	}
	bs := docstream.Summarize(broken)
	fmt.Printf("\nbroken document: well-formed %v, pending opens %d, pending closes %d\n",
		bs.WellFormed, bs.PendingOpens, bs.PendingCloses)
	fmt.Printf("it can still be queried: //book//title = %v\n",
		query.PathQuery(alphabet.New(broken.Alphabet()...), "book", "title").Accepts(broken))
}
