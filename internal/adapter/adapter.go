// Package adapter turns real-world hierarchical inputs — XML documents,
// JSON values, program call/return traces — into the docstream.Event stream
// the rest of the system already speaks.  This is the paper's founding
// observation made operational: the SAX view of an XML document, the
// open/close structure of JSON objects and arrays, and the enter/exit
// structure of an execution trace are all the *same thing*, a nested word,
// so one query stack serves all three once each input is adapted to the
// common event stream.
//
// Every adapter satisfies engine.EventSource structurally (Next() (Event,
// error) ending in io.EOF), interns labels against a query alphabet through
// the same docstream.NewEvent mapping the tokenizer uses — so out-of-alphabet
// labels get the identical dedicated symbol ID no matter which source
// produced them — and sanitizes labels into the tokenizer's token syntax, so
// that rendering the adapted stream as an XML-like document and re-tokenizing
// it reproduces the stream event for event.  That round-trip is the
// differential contract pinned by this package's tests: the adapters extend
// the oracle chain to real inputs instead of forking it.
package adapter

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// Source is the event-stream interface every adapter implements: one event
// per call, io.EOF at the clean end of the input, any other error sticky.
// It is structurally identical to engine.EventSource, so adapters plug into
// engine.RunEvents-style consumers and serve.Pool.SubmitSource without this
// package importing the engine.
type Source interface {
	Next() (docstream.Event, error)
}

// Formats lists the supported adapter format names accepted by New, in
// display order.
func Formats() []string { return []string{"xml", "json", "trace"} }

// New returns an adapter for the named format reading from r, interning
// labels against alpha (pass nil for uninterned events).  The names are the
// ones the CLI -format flags and the HTTP ?format= parameter accept.
func New(format string, r io.Reader, alpha *alphabet.Alphabet) (Source, error) {
	switch format {
	case "xml":
		return NewXML(r, alpha), nil
	case "json":
		return NewJSON(r, alpha), nil
	case "trace":
		return NewTrace(r, alpha), nil
	}
	return nil, fmt.Errorf("adapter: unknown format %q (want one of %s)", format, strings.Join(Formats(), ", "))
}

// Sanitize maps an arbitrary label into the tokenizer's token syntax: every
// whitespace rune (the tokenizer's token separator) and every '<' or '>'
// (its tag delimiters) becomes '_', a leading '/' (which would turn a
// rendered opening tag into a closing one) becomes '_', invalid UTF-8 bytes
// become U+FFFD (matching the tokenizer's own normalization), and the empty
// label becomes "_".  Labels already in token syntax — the overwhelmingly
// common case for element names, object keys, and procedure names — are
// returned unchanged, without allocating.  The mapping is what makes the
// differential contract hold: Render(adapted stream) re-tokenizes to the
// same events.
func Sanitize(label string) string {
	clean := utf8.ValidString(label)
	for _, c := range label {
		if !clean {
			break
		}
		if c == '<' || c == '>' || unicode.IsSpace(c) {
			clean = false
		}
	}
	if clean && label != "" && label[0] != '/' {
		return label
	}
	if label == "" {
		return "_"
	}
	out := make([]rune, 0, len(label))
	for _, c := range label {
		if c == '<' || c == '>' || unicode.IsSpace(c) {
			c = '_'
		}
		out = append(out, c)
	}
	if out[0] == '/' {
		out[0] = '_'
	}
	return string(out)
}

// source is the state shared by every adapter: the interning alphabet, the
// queue of decoded-but-undelivered events, and the sticky error.  Adapter
// Next methods only pop the queue (allocation-free); all decoding and
// allocation happens in each adapter's refill step.
type source struct {
	alpha *alphabet.Alphabet
	q     []docstream.Event
	qi    int
	err   error
}

// push queues one event, sanitizing and interning the label through the
// shared docstream.NewEvent mapping.
func (s *source) push(kind nestedword.Kind, label string) {
	s.q = append(s.q, docstream.NewEvent(kind, Sanitize(label), s.alpha))
}

// reset recycles the queue's backing array once it has been fully delivered,
// so steady-state refills append into already-allocated capacity.
func (s *source) reset() {
	if s.qi >= len(s.q) {
		s.q = s.q[:0]
		s.qi = 0
	}
}

// pop delivers the next queued event; ok is false when the queue is empty.
func (s *source) pop() (docstream.Event, bool) {
	if s.qi < len(s.q) {
		e := s.q[s.qi]
		s.qi++
		return e, true
	}
	return docstream.Event{}, false
}
