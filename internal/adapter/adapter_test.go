package adapter

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// decodeAll drains a source into its event slice, failing the test on any
// error other than the clean io.EOF.
func decodeAll(t *testing.T, src Source) []docstream.Event {
	t.Helper()
	var events []docstream.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return events
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		events = append(events, e)
	}
}

// ev is the kind/label shorthand the golden tables compare against.
type ev struct {
	kind  nestedword.Kind
	label string
}

func checkEvents(t *testing.T, got []docstream.Event, want []ev) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d\ngot: %v", len(got), len(want), got)
	}
	for i, e := range got {
		if e.Kind != want[i].kind || e.Label != want[i].label {
			t.Errorf("event %d: got %v %q, want %v %q", i, e.Kind, e.Label, want[i].kind, want[i].label)
		}
	}
}

func TestNew(t *testing.T) {
	for _, f := range Formats() {
		if _, err := New(f, strings.NewReader(""), nil); err != nil {
			t.Errorf("New(%q): %v", f, err)
		}
	}
	if _, err := New("yaml", strings.NewReader(""), nil); err == nil {
		t.Error("New(yaml): want error")
	}
}

func TestXMLGolden(t *testing.T) {
	const doc = `<?xml version="1.0"?><!-- c --><library><book id="1" lang="en">Nested &amp; Words<ns:x/></book></library>`
	got := decodeAll(t, NewXML(strings.NewReader(doc), nil))
	checkEvents(t, got, []ev{
		{nestedword.Call, "library"},
		{nestedword.Call, "book"},
		{nestedword.Internal, "Nested"},
		{nestedword.Internal, "&"},
		{nestedword.Internal, "Words"},
		{nestedword.Call, "x"},
		{nestedword.Return, "x"},
		{nestedword.Return, "book"},
		{nestedword.Return, "library"},
	})
}

func TestXMLAttributes(t *testing.T) {
	const doc = `<book id="1" lang="en or so"/>`
	got := decodeAll(t, NewXMLOptions(strings.NewReader(doc), nil, XMLOptions{Attributes: true}))
	checkEvents(t, got, []ev{
		{nestedword.Call, "book"},
		{nestedword.Internal, "id=1"},
		{nestedword.Internal, "lang=en_or_so"},
		{nestedword.Return, "book"},
	})
}

func TestXMLError(t *testing.T) {
	a := NewXML(strings.NewReader("<a><b></a>"), nil)
	var err error
	for err == nil {
		_, err = a.Next()
	}
	if err == io.EOF {
		t.Fatal("mismatched tags: want a decoder error, got clean EOF")
	}
	// The error is sticky.
	if _, err2 := a.Next(); err2 != err {
		t.Fatalf("error not sticky: %v then %v", err, err2)
	}
}

func TestJSONGolden(t *testing.T) {
	const doc = `{"lib": [{"t": "nested words", "n": 2007, "ok": true, "x": null}, [1.5]]} "tail"`
	got := decodeAll(t, NewJSON(strings.NewReader(doc), nil))
	checkEvents(t, got, []ev{
		{nestedword.Call, "object"},
		{nestedword.Internal, "lib"},
		{nestedword.Call, "array"},
		{nestedword.Call, "object"},
		{nestedword.Internal, "t"},
		{nestedword.Internal, "nested_words"},
		{nestedword.Internal, "n"},
		{nestedword.Internal, "2007"},
		{nestedword.Internal, "ok"},
		{nestedword.Internal, "true"},
		{nestedword.Internal, "x"},
		{nestedword.Internal, "null"},
		{nestedword.Return, "object"},
		{nestedword.Call, "array"},
		{nestedword.Internal, "1.5"},
		{nestedword.Return, "array"},
		{nestedword.Return, "array"},
		{nestedword.Return, "object"},
		{nestedword.Internal, "tail"}, // a second top-level value
	})
}

func TestJSONError(t *testing.T) {
	a := NewJSON(strings.NewReader(`{"a": [1, }`), nil)
	var err error
	for err == nil {
		_, err = a.Next()
	}
	if err == io.EOF {
		t.Fatal("malformed JSON: want a decoder error, got clean EOF")
	}
}

func TestTraceGolden(t *testing.T) {
	const doc = "# comment\nenter main\nenter open 0x11\nread 4096\n\nexit\nexit wrong\nexit\ncheck ok\n"
	got := decodeAll(t, NewTrace(strings.NewReader(doc), nil))
	checkEvents(t, got, []ev{
		{nestedword.Call, "main"},
		{nestedword.Call, "open"},
		{nestedword.Internal, "read"},
		{nestedword.Internal, "4096"},
		{nestedword.Return, "open"},  // bare exit: innermost open call
		{nestedword.Return, "wrong"}, // explicit label wins, still pops
		{nestedword.Return, "_"},     // nothing open: unmatched return
		{nestedword.Internal, "check"},
		{nestedword.Internal, "ok"},
	})
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"book":      "book",
		"":          "_",
		"a b":       "a_b",
		"a\tb\nc":   "a_b_c",
		"<a>":       "_a_",
		"/close":    "_close",
		"a/b":       "a/b",
		"π∈Σ":       "π∈Σ",
		"x<y":       "x_y",
		" leading":  "_leading",
		"trailing ": "trailing_",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
	// The clean fast path must return the identical string without copying.
	s := "already-clean"
	if got := Sanitize(s); got != s {
		t.Errorf("Sanitize(%q) = %q", s, got)
	}
}

// fixturePaths lists the committed fixtures: one file per format, named by
// extension (the go fuzz corpus under testdata/fuzz is not a fixture).
func fixturePaths(t *testing.T) []string {
	t.Helper()
	var paths []string
	for _, format := range Formats() {
		matches, err := filepath.Glob("testdata/*." + format)
		if err != nil || len(matches) == 0 {
			t.Fatalf("no .%s fixture: %v", format, err)
		}
		paths = append(paths, matches...)
	}
	return paths
}

// fixtureAlphabet is deliberately partial: it covers the structural labels
// of every fixture but none of the text tokens, so each fixture exercises
// both in-alphabet and out-of-alphabet interning.
func fixtureAlphabet() *alphabet.Alphabet {
	return alphabet.New("library", "book", "title", "author", "keywords",
		"object", "array", "main", "open", "close")
}

// TestFixturesDifferential is the adapter half of the differential contract:
// for every committed fixture, rendering the adapted stream as an XML-like
// document and re-tokenizing it through the interning tokenizer reproduces
// the stream exactly — kind, label, and interned symbol ID per event.  The
// tokenizer chain is the repo's original oracle, so agreement here extends
// that oracle to the real input formats.
func TestFixturesDifferential(t *testing.T) {
	paths := fixturePaths(t)
	alpha := fixtureAlphabet()
	for _, path := range paths {
		format := strings.TrimPrefix(filepath.Ext(path), ".")
		t.Run(filepath.Base(path), func(t *testing.T) {
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src, err := New(format, strings.NewReader(string(body)), alpha)
			if err != nil {
				t.Fatal(err)
			}
			events := decodeAll(t, src)
			if len(events) == 0 {
				t.Fatal("fixture produced no events")
			}

			rendered := docstream.Render(docstream.ToNestedWord(events))
			retok := docstream.NewInterningTokenizer(strings.NewReader(rendered), alpha)
			inAlpha, outAlpha := 0, 0
			for i, e := range events {
				g, err := retok.Next()
				if err != nil {
					t.Fatalf("retokenize event %d: %v", i, err)
				}
				if g != e {
					t.Fatalf("event %d: adapter %+v, retokenized %+v", i, e, g)
				}
				if e.OutOfAlphabet(alpha) {
					outAlpha++
				} else {
					inAlpha++
				}
			}
			if _, err := retok.Next(); err != io.EOF {
				t.Fatalf("retokenized stream longer than adapter stream: %v", err)
			}
			// The partial alphabet must be exercised from both sides, or the
			// symbol-ID comparison above proves nothing about interning.
			if inAlpha == 0 || outAlpha == 0 {
				t.Fatalf("fixture not differential: %d in-alphabet, %d out-of-alphabet events", inAlpha, outAlpha)
			}
		})
	}
}

// TestUninternedDifferential runs the same round-trip with a nil alphabet:
// adapters must leave Sym zero exactly like the plain tokenizer does.
func TestUninternedDifferential(t *testing.T) {
	for _, path := range fixturePaths(t) {
		format := strings.TrimPrefix(filepath.Ext(path), ".")
		body, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src, err := New(format, strings.NewReader(string(body)), nil)
		if err != nil {
			t.Fatal(err)
		}
		events := decodeAll(t, src)
		rendered := docstream.Render(docstream.ToNestedWord(events))
		retok, err := docstream.Tokenize(rendered)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(retok) != len(events) {
			t.Fatalf("%s: %d events, retokenized %d", path, len(events), len(retok))
		}
		for i := range events {
			if events[i] != retok[i] {
				t.Fatalf("%s event %d: adapter %+v, retokenized %+v", path, i, events[i], retok[i])
			}
		}
	}
}
