package adapter

import (
	"io"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// fuzzEventCap bounds the drained stream so a pathological input (for
// example megabytes of one-character tokens) cannot stall a fuzz exec.
const fuzzEventCap = 1 << 14

// drain pulls at most fuzzEventCap events and reports whether the stream
// ended in a clean io.EOF within the cap.
func drain(src Source) ([]docstream.Event, bool) {
	var events []docstream.Event
	for len(events) < fuzzEventCap {
		e, err := src.Next()
		if err == io.EOF {
			return events, true
		}
		if err != nil {
			return events, false
		}
		events = append(events, e)
	}
	return events, false
}

// checkStream is the shared fuzz property: every label is in token syntax
// (so the stream renders and re-tokenizes losslessly) and the re-tokenized
// stream matches event for event.  balanced asserts returns never outnumber
// calls (both decoders enforce closer matching); closed additionally asserts
// a clean EOF closes every call — true only for XML, since json.Decoder's
// Token reports io.EOF even inside an open container (a pending call, which
// nested words represent fine), and traces allow anything.
func checkStream(t *testing.T, alpha *alphabet.Alphabet, events []docstream.Event, clean, balanced, closed bool) {
	t.Helper()
	depth := 0
	for i, e := range events {
		if s := Sanitize(e.Label); s != e.Label {
			t.Fatalf("event %d: label %q not in token syntax (Sanitize → %q)", i, e.Label, s)
		}
		switch e.Kind {
		case nestedword.Call:
			depth++
		case nestedword.Return:
			depth--
			if balanced && depth < 0 {
				t.Fatalf("event %d: unmatched return in a decoder-enforced format", i)
			}
		}
	}
	if clean && closed && depth != 0 {
		t.Fatalf("clean EOF with %d unclosed calls", depth)
	}
	if !clean {
		return
	}
	rendered := docstream.Render(docstream.ToNestedWord(events))
	retok := docstream.NewInterningTokenizer(strings.NewReader(rendered), alpha)
	for i := range events {
		g, err := retok.Next()
		if err != nil {
			t.Fatalf("re-tokenize event %d: %v", i, err)
		}
		if events[i] != g {
			t.Fatalf("round trip event %d: %+v vs %+v", i, events[i], g)
		}
	}
	if _, err := retok.Next(); err != io.EOF {
		t.Fatalf("re-tokenized stream too long: %v", err)
	}
}

// fuzzAlpha exercises the interned path on a partial alphabet; the adapters
// must never panic regardless of what the decoders hand them.
var fuzzAlpha = alphabet.New("object", "array", "a", "b")

func FuzzXMLAdapter(f *testing.F) {
	f.Add(`<a x="1">text <b/></a>`)
	f.Add(`<?xml version="1.0"?><a>&amp;</a>`)
	f.Add(`<a><b></a>`)
	f.Add(`plain text, no elements`)
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<12 {
			return
		}
		events, clean := drain(NewXML(strings.NewReader(doc), fuzzAlpha))
		checkStream(t, fuzzAlpha, events, clean, true, true)
		attrEvents, attrClean := drain(NewXMLOptions(strings.NewReader(doc), nil, XMLOptions{Attributes: true}))
		checkStream(t, nil, attrEvents, attrClean, true, true)
	})
}

func FuzzJSONAdapter(f *testing.F) {
	f.Add(`{"a": [1, true, null, "x"]}`)
	f.Add(`[[[]]] "two" 3`)
	f.Add(`{"a": }`)
	f.Add(`12e999`)
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<12 {
			return
		}
		events, clean := drain(NewJSON(strings.NewReader(doc), fuzzAlpha))
		checkStream(t, fuzzAlpha, events, clean, true, false)
	})
}

func FuzzTraceAdapter(f *testing.F) {
	f.Add("enter main\nexit\n")
	f.Add("exit\nexit close\n# c\nread 1 2 3\n")
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<12 {
			return
		}
		// Traces represent unmatched returns on purpose, so only the no-panic
		// and round-trip properties apply.
		events, clean := drain(NewTrace(strings.NewReader(doc), fuzzAlpha))
		checkStream(t, fuzzAlpha, events, clean, false, false)
	})
}
