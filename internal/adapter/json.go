// The JSON adapter: objects and arrays nest exactly like elements, so a
// JSON value is a nested word too — the second real workload the paper's
// model covers without modification.
package adapter

import (
	"encoding/json"
	"io"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// JSON adapts a stream of JSON values read from r into docstream events:
// '{' / '}' become call/return events labeled "object", '[' / ']'
// call/return events labeled "array", and every key and scalar value one
// internal event carrying its (sanitized) text — numbers keep their literal
// spelling, booleans become "true"/"false", null becomes "null".  Multiple
// top-level values are allowed, matching encoding/json's token stream.
type JSON struct {
	source
	dec   *json.Decoder
	stack []byte // 'o' for object, 'a' for array
	key   bool   // inside an object, whether the next string is a key
}

// objectLabel and arrayLabel are the call/return labels for the two JSON
// container kinds.
const (
	objectLabel = "object"
	arrayLabel  = "array"
)

// NewJSON returns a JSON adapter interning labels against alpha (nil for
// uninterned events).
func NewJSON(r io.Reader, alpha *alphabet.Alphabet) *JSON {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	return &JSON{source: source{alpha: alpha}, dec: dec}
}

// Next returns the next event, io.EOF at the end of the input.  Malformed
// JSON surfaces as the decoder's error; the error is sticky.
//
//nwvet:hotpath
func (a *JSON) Next() (docstream.Event, error) {
	for {
		if e, ok := a.pop(); ok {
			return e, nil
		}
		if a.err != nil {
			return docstream.Event{}, a.err
		}
		a.refill()
	}
}

// refill decodes one JSON token into a queued event, or sets the sticky
// error.  The decoder enforces delimiter matching, so the container stack
// here only tracks key-vs-value position inside objects.
func (a *JSON) refill() {
	a.reset()
	tok, err := a.dec.Token()
	if err != nil {
		a.err = err
		return
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			a.push(nestedword.Call, objectLabel)
			a.stack = append(a.stack, 'o')
			a.key = true
		case '[':
			a.push(nestedword.Call, arrayLabel)
			a.stack = append(a.stack, 'a')
		case '}':
			a.push(nestedword.Return, objectLabel)
			a.stack = a.stack[:len(a.stack)-1]
			a.afterValue()
		case ']':
			a.push(nestedword.Return, arrayLabel)
			a.stack = a.stack[:len(a.stack)-1]
			a.afterValue()
		}
	case string:
		a.push(nestedword.Internal, t)
		if a.inObject() && a.key {
			a.key = false // the value for this key comes next
		} else {
			a.afterValue()
		}
	case json.Number:
		a.push(nestedword.Internal, t.String())
		a.afterValue()
	case bool:
		if t {
			a.push(nestedword.Internal, "true")
		} else {
			a.push(nestedword.Internal, "false")
		}
		a.afterValue()
	case nil:
		a.push(nestedword.Internal, "null")
		a.afterValue()
	}
}

// inObject reports whether the innermost open container is an object.
func (a *JSON) inObject() bool {
	return len(a.stack) > 0 && a.stack[len(a.stack)-1] == 'o'
}

// afterValue restores key position after a complete value inside an object.
func (a *JSON) afterValue() {
	if a.inObject() {
		a.key = true
	}
}
