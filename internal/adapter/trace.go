// The trace adapter: program-execution logs with explicit enter/exit lines,
// the paper's third motivating workload — pre/post-condition queries over
// call/return traces.
package adapter

import (
	"bufio"
	"io"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// Trace adapts a line-oriented call/return trace read from r into docstream
// events.  Per line:
//
//	enter NAME   → a call event labeled NAME
//	exit NAME    → a return event labeled NAME
//	exit         → a return event labeled with the innermost open call
//	               ("_" when nothing is open — an unmatched return, which
//	               nested words represent fine)
//	# comment    → skipped (the '#' must be the first non-blank character)
//	anything     → one internal event per whitespace-separated token
//
// Blank lines are skipped; tokens after NAME on enter/exit lines are
// ignored (timestamps, arguments).  Labels are sanitized like every other
// adapter's.
type Trace struct {
	source
	sc   *bufio.Scanner
	open []string // sanitized labels of currently open calls
	done bool
}

// NewTrace returns a trace adapter interning labels against alpha (nil for
// uninterned events).
func NewTrace(r io.Reader, alpha *alphabet.Alphabet) *Trace {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Trace{source: source{alpha: alpha}, sc: sc}
}

// Next returns the next event, io.EOF at the end of the trace.  A scanner
// error (for example a line over the 1 MiB limit) is sticky.
//
//nwvet:hotpath
func (a *Trace) Next() (docstream.Event, error) {
	for {
		if e, ok := a.pop(); ok {
			return e, nil
		}
		if a.err != nil {
			return docstream.Event{}, a.err
		}
		a.refill()
	}
}

// refill consumes one trace line into zero or more queued events, or sets
// the sticky error.
func (a *Trace) refill() {
	a.reset()
	if a.done || !a.sc.Scan() {
		a.done = true
		if err := a.sc.Err(); err != nil {
			a.err = err
		} else {
			a.err = io.EOF
		}
		return
	}
	line := a.sc.Text()
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return
	}
	switch fields[0] {
	case "enter":
		if len(fields) >= 2 {
			label := Sanitize(fields[1])
			a.push(nestedword.Call, label)
			a.open = append(a.open, label)
			return
		}
	case "exit":
		label := "_"
		if len(fields) >= 2 {
			label = Sanitize(fields[1])
		} else if len(a.open) > 0 {
			label = a.open[len(a.open)-1]
		}
		if len(a.open) > 0 {
			a.open = a.open[:len(a.open)-1]
		}
		a.push(nestedword.Return, label)
		return
	}
	for _, f := range fields {
		a.push(nestedword.Internal, f)
	}
}
