// The XML adapter: real XML via encoding/xml, mapped onto the nested-word
// event stream exactly as the paper's introduction describes — start
// elements are calls, end elements returns, character data internal
// positions.
package adapter

import (
	"encoding/xml"
	"io"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// XMLOptions tunes the XML event mapping.
type XMLOptions struct {
	// Attributes folds each attribute of a start element into the label
	// space as one internal event "name=value" (sanitized), emitted
	// immediately after the element's call event.  Off by default: queries
	// over element structure usually don't want attribute noise in the
	// alphabet.
	Attributes bool
}

// XML adapts a real XML document read from r into docstream events:
// start element → call, end element → return, each whitespace-separated
// character-data token → internal.  Comments, processing instructions, and
// directives are skipped.  Element names use the local name (namespace
// prefixes and URLs are dropped); entity references are decoded by
// encoding/xml before the label is sanitized.
type XML struct {
	source
	dec  *xml.Decoder
	opts XMLOptions
}

// NewXML returns an XML adapter with default options, interning labels
// against alpha (nil for uninterned events).
func NewXML(r io.Reader, alpha *alphabet.Alphabet) *XML {
	return NewXMLOptions(r, alpha, XMLOptions{})
}

// NewXMLOptions is NewXML with explicit options.
func NewXMLOptions(r io.Reader, alpha *alphabet.Alphabet, opts XMLOptions) *XML {
	return &XML{source: source{alpha: alpha}, dec: xml.NewDecoder(r), opts: opts}
}

// Next returns the next event, io.EOF at the end of the document.  Malformed
// XML (mismatched tags, bad entities, truncated input) surfaces as the
// decoder's error; like the tokenizer, the error is sticky.
//
//nwvet:hotpath
func (a *XML) Next() (docstream.Event, error) {
	for {
		if e, ok := a.pop(); ok {
			return e, nil
		}
		if a.err != nil {
			return docstream.Event{}, a.err
		}
		a.refill()
	}
}

// refill decodes one XML token into zero or more queued events, or sets the
// sticky error.  All allocation happens here, off the annotated hot path.
func (a *XML) refill() {
	a.reset()
	tok, err := a.dec.Token()
	if err != nil {
		a.err = err
		return
	}
	switch t := tok.(type) {
	case xml.StartElement:
		a.push(nestedword.Call, t.Name.Local)
		if a.opts.Attributes {
			for _, attr := range t.Attr {
				a.push(nestedword.Internal, attr.Name.Local+"="+attr.Value)
			}
		}
	case xml.EndElement:
		a.push(nestedword.Return, t.Name.Local)
	case xml.CharData:
		for _, f := range strings.Fields(string(t)) {
			a.push(nestedword.Internal, f)
		}
	}
}
