// Package alphabet provides symbol interning shared by every automaton
// package in this repository.
//
// All automata (word, tree, nested-word, and their pushdown variants) are
// defined over a finite alphabet Σ of symbols.  The experiments of the paper
// measure automaton sizes (numbers of states), so the automaton packages use
// dense integer-indexed transition tables; this package maps symbol strings
// to dense indices and back.
package alphabet

import (
	"fmt"
	"strings"
)

// Alphabet is an immutable, ordered finite set of symbols.  The zero value
// is the empty alphabet.
type Alphabet struct {
	symbols []string
	index   map[string]int
}

// New builds an alphabet from the given symbols.  Duplicates are collapsed
// (keeping the first occurrence's position); the order of first occurrence
// is the index order.
func New(symbols ...string) *Alphabet {
	a := &Alphabet{index: make(map[string]int, len(symbols))}
	for _, s := range symbols {
		if _, ok := a.index[s]; ok {
			continue
		}
		a.index[s] = len(a.symbols)
		a.symbols = append(a.symbols, s)
	}
	return a
}

// Size returns |Σ|.
func (a *Alphabet) Size() int { return len(a.symbols) }

// Symbols returns the symbols in index order (a copy).
func (a *Alphabet) Symbols() []string { return append([]string(nil), a.symbols...) }

// Symbol returns the symbol with the given index.  It panics if the index is
// out of range, mirroring slice indexing.
func (a *Alphabet) Symbol(i int) string { return a.symbols[i] }

// Index returns the index of the symbol and whether it belongs to the
// alphabet.
func (a *Alphabet) Index(sym string) (int, bool) {
	i, ok := a.index[sym]
	return i, ok
}

// IndexBytes returns the index of the symbol spelled by b and whether it
// belongs to the alphabet.  The map lookup is keyed by string(b) in the
// form the compiler compiles without materializing the string, so hot
// tokenizing loops can intern a scratch buffer allocation-free; pair a hit
// with Symbol(i) to obtain a canonical string for the label.
func (a *Alphabet) IndexBytes(b []byte) (int, bool) {
	i, ok := a.index[string(b)]
	return i, ok
}

// MustIndex returns the index of the symbol and panics when the symbol is
// not part of the alphabet.  It is intended for code paths where membership
// has already been validated.
func (a *Alphabet) MustIndex(sym string) int {
	i, ok := a.index[sym]
	if !ok {
		panic(fmt.Sprintf("alphabet: symbol %q not in alphabet {%s}", sym, strings.Join(a.symbols, ",")))
	}
	return i
}

// Contains reports whether the symbol belongs to the alphabet.
func (a *Alphabet) Contains(sym string) bool {
	_, ok := a.index[sym]
	return ok
}

// Equal reports whether two alphabets contain the same symbols in the same
// order.
func (a *Alphabet) Equal(b *Alphabet) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i, s := range a.symbols {
		if b.symbols[i] != s {
			return false
		}
	}
	return true
}

// Union returns the alphabet containing the symbols of a followed by the
// symbols of b not already present.
func (a *Alphabet) Union(b *Alphabet) *Alphabet {
	return New(append(a.Symbols(), b.Symbols()...)...)
}

// String renders the alphabet as {s1,s2,...}.
func (a *Alphabet) String() string {
	return "{" + strings.Join(a.symbols, ",") + "}"
}
