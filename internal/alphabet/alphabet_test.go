package alphabet

import (
	"reflect"
	"testing"
)

func TestNewDeduplicates(t *testing.T) {
	a := New("a", "b", "a", "c", "b")
	if a.Size() != 3 {
		t.Fatalf("Size = %d, want 3", a.Size())
	}
	if got, want := a.Symbols(), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Symbols = %v, want %v", got, want)
	}
}

func TestIndexAndSymbol(t *testing.T) {
	a := New("x", "y")
	if i, ok := a.Index("y"); !ok || i != 1 {
		t.Errorf("Index(y) = (%d,%v), want (1,true)", i, ok)
	}
	if _, ok := a.Index("z"); ok {
		t.Errorf("Index(z) should not be found")
	}
	if a.Symbol(0) != "x" {
		t.Errorf("Symbol(0) = %q, want x", a.Symbol(0))
	}
	if !a.Contains("x") || a.Contains("q") {
		t.Errorf("Contains broken")
	}
	if a.MustIndex("x") != 0 {
		t.Errorf("MustIndex(x) != 0")
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustIndex of an unknown symbol should panic")
		}
	}()
	New("a").MustIndex("b")
}

func TestEqualAndUnion(t *testing.T) {
	a := New("a", "b")
	b := New("a", "b")
	c := New("b", "a")
	if !a.Equal(b) {
		t.Errorf("identical alphabets should be Equal")
	}
	if a.Equal(c) {
		t.Errorf("order matters for Equal")
	}
	u := a.Union(New("b", "c"))
	if got, want := u.Symbols(), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestStringAndEmpty(t *testing.T) {
	if got := New("a", "b").String(); got != "{a,b}" {
		t.Errorf("String = %q", got)
	}
	e := New()
	if e.Size() != 0 || e.String() != "{}" {
		t.Errorf("empty alphabet broken")
	}
	if !e.Equal(New()) {
		t.Errorf("empty alphabets should be equal")
	}
}

func TestSymbolsCopy(t *testing.T) {
	a := New("a", "b")
	s := a.Symbols()
	s[0] = "mutated"
	if a.Symbol(0) != "a" {
		t.Errorf("Symbols must return a copy")
	}
}
