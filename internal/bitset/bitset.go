// Package bitset provides fixed-width bit rows packed into uint64 words —
// the representation behind the query package's nondeterministic state-set
// runner.  A Row stands for a subset of states 0..n-1; unions, intersection
// tests, and "OR a table row for every set bit" sweeps all run word-wise
// (64 states per machine operation), which is what turns the per-event
// inner loops of the subset-of-pairs simulation from per-state branches
// into a handful of AND/OR instructions.
//
// Rows are plain slices, so a matrix of rows can live in one flat []uint64
// allocation and be re-sliced without copying; no operation here allocates.
package bitset

import "math/bits"

// Words returns the number of 64-bit words needed to hold n bits.
func Words(n int) int { return (n + 63) >> 6 }

// Row is a fixed-width set of small non-negative integers, bit i of word
// i/64 standing for element i.  All binary operations require equal widths;
// they iterate min(len) words, so the caller is responsible for slicing
// rows of one width from a shared backing array.
type Row []uint64

// New returns a zeroed row wide enough for elements 0..n-1.
func New(n int) Row { return make(Row, Words(n)) }

// Set adds element i to the row.
func (r Row) Set(i int) { r[i>>6] |= 1 << (uint(i) & 63) }

// Unset removes element i from the row.
func (r Row) Unset(i int) { r[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether element i is in the row.
func (r Row) Has(i int) bool { return r[i>>6]&(1<<(uint(i)&63)) != 0 }

// Zero clears every element, keeping the width.
func (r Row) Zero() {
	for i := range r {
		r[i] = 0
	}
}

// Fill sets elements 0..n-1, leaving higher bits of the row clear; n must
// not exceed the row's capacity in bits.
func (r Row) Fill(n int) {
	r.Zero()
	for i := 0; i < n>>6; i++ {
		r[i] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		r[n>>6] = (1 << rem) - 1
	}
}

// Or adds every element of other to r (r |= other).
//
//nwvet:hotpath
func (r Row) Or(other Row) {
	for i, w := range other {
		r[i] |= w
	}
}

// And keeps only the elements shared with other (r &= other).
func (r Row) And(other Row) {
	for i, w := range other {
		r[i] &= w
	}
}

// Intersects reports whether the rows share an element.  The test is a
// word-wise AND sweep — no per-bit shifting — which is how the runner asks
// "is any reachable state accepting" in ⌈n/64⌉ operations.
//
//nwvet:hotpath
func (r Row) Intersects(other Row) bool {
	for i, w := range other {
		if r[i]&w != 0 {
			return true
		}
	}
	return false
}

// Any reports whether the row is non-empty.
func (r Row) Any() bool {
	for _, w := range r {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements in the row.
func (r Row) Count() int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether the rows hold exactly the same elements.
func (r Row) Equal(other Row) bool {
	if len(r) != len(other) {
		return false
	}
	for i, w := range other {
		if r[i] != w {
			return false
		}
	}
	return true
}

// NextSet returns the smallest element ≥ i, or -1 when no such element
// exists.  It is the closure-free iteration form for hot loops:
//
//	for i := r.NextSet(0); i >= 0; i = r.NextSet(i + 1) { ... }
func (r Row) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	if wi >= len(r) {
		return -1
	}
	if w := r[wi] >> (uint(i) & 63); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(r); wi++ {
		if r[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(r[wi])
		}
	}
	return -1
}

// ForEach calls f for every element in ascending order.
func (r Row) ForEach(f func(i int)) {
	for wi, w := range r {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Slab returns row i of a flat table of equal-width rows (w words each)
// without copying: table[i*w : (i+1)*w].  A "word slab" — one []uint64
// backing many rows — is how compiled automata store their per-symbol
// successor masks, and because a Row is a plain slice the same view works
// whether the slab was built in memory or points into a serialized query
// set mapped read-only from disk (see internal/query/qset.go).
func Slab(table []uint64, i, w int) Row {
	return Row(table[i*w : i*w+w : i*w+w])
}

// Gather ORs into dst the w-word row table[i*w:(i+1)*w] for every element i
// of sel: dst |= ⋃_{i∈sel} table[i].  It is the word-parallel composition
// step of the state-set runner — advancing a set through precomputed
// per-symbol successor masks costs one w-word OR per set bit instead of one
// branch per (state, successor) pair.
//
//nwvet:hotpath
func Gather(dst, sel Row, table []uint64, w int) {
	for wi, word := range sel {
		base := wi << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			row := table[i*w : i*w+w]
			for k, v := range row {
				dst[k] |= v
			}
		}
	}
}
