package bitset

import (
	"math/rand"
	"testing"
)

// edgeWidths are the widths the ISSUE calls out: both sides of every word
// boundary plus the single-bit and two-word cases.
var edgeWidths = []int{1, 63, 64, 65, 128}

func TestWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3, 256: 4}
	for n, want := range cases {
		if got := Words(n); got != want {
			t.Errorf("Words(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSetHasUnset(t *testing.T) {
	for _, n := range edgeWidths {
		r := New(n)
		if r.Any() {
			t.Fatalf("width %d: fresh row is not empty", n)
		}
		for i := 0; i < n; i++ {
			if r.Has(i) {
				t.Fatalf("width %d: empty row has element %d", n, i)
			}
			r.Set(i)
			if !r.Has(i) {
				t.Fatalf("width %d: Set(%d) did not stick", n, i)
			}
		}
		if r.Count() != n {
			t.Fatalf("width %d: full row counts %d", n, r.Count())
		}
		for i := 0; i < n; i++ {
			r.Unset(i)
			if r.Has(i) {
				t.Fatalf("width %d: Unset(%d) did not stick", n, i)
			}
		}
		if r.Any() {
			t.Fatalf("width %d: row not empty after unsetting everything", n)
		}
	}
}

func TestFillMatchesFullRow(t *testing.T) {
	for _, n := range edgeWidths {
		filled := New(n)
		filled.Fill(n)
		manual := New(n)
		for i := 0; i < n; i++ {
			manual.Set(i)
		}
		if !filled.Equal(manual) {
			t.Fatalf("width %d: Fill disagrees with element-wise Set", n)
		}
		if filled.Count() != n {
			t.Fatalf("width %d: Fill(%d) counts %d", n, n, filled.Count())
		}
		// Partial fill leaves the tail clear.
		filled.Fill(n / 2)
		for i := n / 2; i < n; i++ {
			if filled.Has(i) {
				t.Fatalf("width %d: Fill(%d) set element %d", n, n/2, i)
			}
		}
	}
}

func TestZeroKeepsWidth(t *testing.T) {
	r := New(65)
	r.Fill(65)
	r.Zero()
	if len(r) != Words(65) {
		t.Fatalf("Zero changed the width: %d words", len(r))
	}
	if r.Any() || r.Count() != 0 {
		t.Fatal("Zero left elements behind")
	}
}

// TestSetOperations cross-checks Or/And/Intersects against a map-based
// reference on random rows at every edge width.
func TestSetOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range edgeWidths {
		for trial := 0; trial < 50; trial++ {
			a, b := New(n), New(n)
			inA, inB := map[int]bool{}, map[int]bool{}
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					a.Set(i)
					inA[i] = true
				}
				if rng.Intn(3) == 0 {
					b.Set(i)
					inB[i] = true
				}
			}
			wantIntersects := false
			for i := range inA {
				if inB[i] {
					wantIntersects = true
				}
			}
			if got := a.Intersects(b); got != wantIntersects {
				t.Fatalf("width %d: Intersects = %v, want %v", n, got, wantIntersects)
			}
			union := New(n)
			union.Or(a)
			union.Or(b)
			both := New(n)
			both.Or(a)
			both.And(b)
			for i := 0; i < n; i++ {
				if union.Has(i) != (inA[i] || inB[i]) {
					t.Fatalf("width %d: union wrong at %d", n, i)
				}
				if both.Has(i) != (inA[i] && inB[i]) {
					t.Fatalf("width %d: intersection wrong at %d", n, i)
				}
			}
		}
	}
}

// TestForEachOrder checks that iteration visits exactly the set elements in
// ascending order, including across word boundaries.
func TestForEachOrder(t *testing.T) {
	for _, n := range edgeWidths {
		want := []int{}
		r := New(n)
		for i := 0; i < n; i += 3 {
			r.Set(i)
			want = append(want, i)
		}
		// Always include the boundary bits when they exist.
		for _, i := range []int{0, 62, 63, 64, n - 1} {
			if i >= 0 && i < n && !r.Has(i) {
				r.Set(i)
			}
		}
		got := []int{}
		r.ForEach(func(i int) { got = append(got, i) })
		last := -1
		for _, i := range got {
			if i <= last {
				t.Fatalf("width %d: ForEach out of order: %v", n, got)
			}
			last = i
			if !r.Has(i) {
				t.Fatalf("width %d: ForEach visited unset element %d", n, i)
			}
		}
		if len(got) != r.Count() {
			t.Fatalf("width %d: ForEach visited %d elements, Count says %d", n, len(got), r.Count())
		}
	}
}

// TestNextSet checks the closure-free iterator against ForEach at every
// edge width, including starts inside words, at boundaries, and past the
// end.
func TestNextSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range edgeWidths {
		r := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				r.Set(i)
			}
		}
		want := []int{}
		r.ForEach(func(i int) { want = append(want, i) })
		got := []int{}
		for i := r.NextSet(0); i >= 0; i = r.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("width %d: NextSet walked %v, ForEach %v", n, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("width %d: NextSet walked %v, ForEach %v", n, got, want)
			}
		}
		if r.NextSet(n) != -1 || r.NextSet(n+100) != -1 {
			t.Fatalf("width %d: NextSet past the end should be -1", n)
		}
		if r.NextSet(-5) != r.NextSet(0) {
			t.Fatalf("width %d: negative start should clamp to 0", n)
		}
	}
}

func TestForEachEmptyAndFull(t *testing.T) {
	for _, n := range edgeWidths {
		empty := New(n)
		calls := 0
		empty.ForEach(func(int) { calls++ })
		if calls != 0 {
			t.Fatalf("width %d: ForEach on empty row made %d calls", n, calls)
		}
		full := New(n)
		full.Fill(n)
		next := 0
		full.ForEach(func(i int) {
			if i != next {
				t.Fatalf("width %d: full row iteration hit %d, want %d", n, i, next)
			}
			next++
		})
		if next != n {
			t.Fatalf("width %d: full row iterated %d elements", n, next)
		}
	}
}

// TestGather checks the table-OR sweep against an element-wise reference.
func TestGather(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range edgeWidths {
		w := Words(n)
		table := make([]uint64, n*w)
		for i := 0; i < n; i++ {
			row := Row(table[i*w : (i+1)*w])
			for j := 0; j < n; j++ {
				if rng.Intn(4) == 0 {
					row.Set(j)
				}
			}
		}
		sel := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sel.Set(i)
			}
		}
		got := New(n)
		Gather(got, sel, table, w)
		want := New(n)
		sel.ForEach(func(i int) { want.Or(table[i*w : (i+1)*w]) })
		if !got.Equal(want) {
			t.Fatalf("width %d: Gather disagrees with element-wise ORs", n)
		}
	}
}

func TestZeroWidthRow(t *testing.T) {
	r := New(0)
	if len(r) != 0 || r.Any() || r.Count() != 0 {
		t.Fatal("zero-width row should be empty")
	}
	r.Zero()
	r.Fill(0)
	r.ForEach(func(int) { t.Fatal("zero-width row iterated") })
	Gather(r, r, nil, 0)
}
