// Package bundlecache is the self-provisioning side of fleet bundle
// distribution (docs/DISTRIBUTION.md): a content-hash-keyed on-disk cache
// of NWQ1 containers plus an HTTP fetcher over a peer's GET /v1/bundle.
//
// The cache directory holds one file per artifact, named by its hex
// content hash (<hash>.nwq, with an optional sibling <hash>.nwq.sig for
// the detached signature), so entries are immutable: a file either holds
// exactly the bytes its name hashes to or it is corrupt, and every open
// re-verifies before handing the path out.  Writes go through a temp file
// in the same directory and an atomic rename into place, so a crashed or
// racing writer can never leave a half-written entry under a valid name —
// concurrent writers of the same hash simply rename identical bytes over
// each other.  A small "latest" state file records the most recently
// fetched hash, which is what lets a restarted worker boot from its warm
// cache before the network is up.
//
// Source ties the two together for internal/server: its Fetch method is
// shaped to drop into server.Config.Source, fetching the peer's current
// bundle (a conditional request when the cache already holds one),
// verifying hash — and signature, when a public key is pinned — before
// anything lands in the cache, and falling back to the cached copy only
// on network failure, never on verification failure: a peer serving
// tampered bytes is an error a reload must surface, not silently paper
// over with stale data (the server's verify-before-swap then keeps the
// old generation live).
package bundlecache

import (
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/query/format"
)

// Cache is a content-hash-keyed store of verified NWQ1 containers on
// disk.  Safe for concurrent use by multiple goroutines (and, thanks to
// atomic renames of immutable content, by multiple processes sharing the
// directory).
type Cache struct {
	dir string

	mu sync.Mutex // serializes latest-file updates within this process
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bundlecache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// entryPath returns the on-disk path of a hash's entry.
func (c *Cache) entryPath(sum [format.HashSize]byte) string {
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".nwq")
}

// latestPath is the state file recording the most recently stored hash.
func (c *Cache) latestPath() string { return filepath.Join(c.dir, "latest") }

// Put stores a container under its own content hash and records it as the
// latest entry.  The bytes must parse as a container (VersionHashed bytes
// are verified against their header hash by the parse); the entry file
// appears atomically or not at all.  Returns the entry path and the hash
// it was stored under.
func (c *Cache) Put(data []byte) (string, [format.HashSize]byte, error) {
	sum, _, err := format.ContentHash(data)
	if err != nil {
		return "", sum, fmt.Errorf("bundlecache: refusing to store: %w", err)
	}
	path := c.entryPath(sum)
	if err := writeAtomic(path, data); err != nil {
		return "", sum, fmt.Errorf("bundlecache: %w", err)
	}
	c.mu.Lock()
	err = writeAtomic(c.latestPath(), []byte(hex.EncodeToString(sum[:])))
	c.mu.Unlock()
	if err != nil {
		return "", sum, fmt.Errorf("bundlecache: record latest: %w", err)
	}
	return path, sum, nil
}

// PutSignature stores a detached signature envelope next to an existing
// entry, after checking it actually verifies that entry's hash under pub.
func (c *Cache) PutSignature(sum [format.HashSize]byte, pub, envelope []byte) error {
	if err := format.VerifyHash(pub, envelope, sum); err != nil {
		return fmt.Errorf("bundlecache: refusing to store signature: %w", err)
	}
	if err := writeAtomic(c.entryPath(sum)+".sig", envelope); err != nil {
		return fmt.Errorf("bundlecache: %w", err)
	}
	return nil
}

// Get returns the path of the entry for sum after re-reading and
// re-verifying its bytes — a cache hit is never trusted blind, so a
// corrupted entry (flipped bit, truncation, wrong-name file) is reported
// (wrapping format.ErrHashMismatch for content damage) instead of handed
// to mmap.  os.IsNotExist distinguishes a miss from damage.
func (c *Cache) Get(sum [format.HashSize]byte) (string, error) {
	path := c.entryPath(sum)
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	got, _, err := format.ContentHash(data)
	if err != nil {
		return "", fmt.Errorf("bundlecache: entry %s: %w", filepath.Base(path), err)
	}
	if got != sum {
		return "", fmt.Errorf("bundlecache: entry %s holds bytes hashing to %x: %w",
			filepath.Base(path), got, format.ErrHashMismatch)
	}
	return path, nil
}

// Latest returns the hash recorded by the most recent Put, or ok=false
// when the cache has never stored anything (or the state file is
// damaged — a warm boot then just falls through to a cold fetch).
func (c *Cache) Latest() (sum [format.HashSize]byte, ok bool) {
	b, err := os.ReadFile(c.latestPath())
	if err != nil {
		return sum, false
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(b)))
	if err != nil || len(raw) != format.HashSize {
		return sum, false
	}
	copy(sum[:], raw)
	return sum, true
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, so path never holds a partial write.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Options configures a Source.
type Options struct {
	// PublicKey, when set, pins the publisher: every fetched bundle must
	// come with a valid detached signature (GET /v1/bundle.sig) by this
	// ed25519 key, checked before the bytes enter the cache.
	PublicKey []byte
	// Client is the HTTP client to fetch with; nil means a client with a
	// 30-second timeout.
	Client *http.Client
	// MaxBytes caps a fetched bundle; 0 means 1 GiB.
	MaxBytes int64
}

const defaultMaxFetch = 1 << 30

// Source fetches a peer's current bundle into a Cache.  Its Fetch method
// has exactly the shape of server.Config.Source, so an nwserved booted
// with -queryset-url resolves every (re)load through it.
type Source struct {
	url   string
	cache *Cache
	opts  Options

	mu     sync.Mutex
	flight *flight // in-progress fetch, nil when idle
}

// flight is one in-progress fetch shared by every concurrent caller —
// a hand-rolled singleflight, so a thundering herd of reloads costs one
// network round-trip.
type flight struct {
	done chan struct{}
	path string
	err  error
}

// NewSource creates a Source fetching url (the peer's GET /v1/bundle
// endpoint) into cache.
func NewSource(url string, cache *Cache, opts Options) *Source {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = defaultMaxFetch
	}
	return &Source{url: url, cache: cache, opts: opts}
}

// Fetch returns the path of a verified cache entry holding the peer's
// current bundle.  Concurrent calls coalesce into one network fetch.  On
// network failure the warm cache's latest verified entry is returned
// instead (a restarted worker boots offline); verification failures —
// hash mismatch, missing or bad signature — are returned as errors, never
// masked by the fallback.
func (s *Source) Fetch() (string, error) {
	s.mu.Lock()
	if f := s.flight; f != nil {
		s.mu.Unlock()
		<-f.done
		return f.path, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flight = f
	s.mu.Unlock()

	f.path, f.err = s.fetch()
	close(f.done)

	s.mu.Lock()
	s.flight = nil
	s.mu.Unlock()
	return f.path, f.err
}

// fetch runs one fetch: conditional GET against the cached latest entry,
// verify, store, return the entry path.
func (s *Source) fetch() (string, error) {
	req, err := http.NewRequest(http.MethodGet, s.url, nil)
	if err != nil {
		return "", fmt.Errorf("bundlecache: %w", err)
	}
	var cached string
	var cacheErr error // why the warm cache is unusable, for diagnosis
	if latest, ok := s.cache.Latest(); ok {
		// Only offer an ETag we can actually serve from: a damaged entry
		// must not produce a 304 pointing at bytes we cannot verify.
		if path, err := s.cache.Get(latest); err == nil {
			cached = path
			req.Header.Set("If-None-Match", `"`+hex.EncodeToString(latest[:])+`"`)
		} else if !os.IsNotExist(err) {
			cacheErr = err
		}
	}
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		if cached != "" {
			return cached, nil // offline with a warm cache: keep serving it
		}
		if cacheErr != nil {
			// Offline AND the cached entry is damaged: report the damage —
			// it is the actionable half of the failure.
			return "", fmt.Errorf("bundlecache: fetch %s failed (%v) and the warm cache is unusable: %w", s.url, err, cacheErr)
		}
		return "", fmt.Errorf("bundlecache: fetch %s: %w", s.url, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return cached, nil
	case http.StatusOK:
	default:
		if cached != "" && resp.StatusCode >= 500 {
			return cached, nil // peer is unhealthy, not lying: warm cache is fine
		}
		return "", fmt.Errorf("bundlecache: fetch %s: %s", s.url, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.opts.MaxBytes+1))
	if err != nil {
		if cached != "" {
			return cached, nil
		}
		return "", fmt.Errorf("bundlecache: read %s: %w", s.url, err)
	}
	if int64(len(data)) > s.opts.MaxBytes {
		return "", fmt.Errorf("bundlecache: bundle from %s exceeds %d bytes", s.url, s.opts.MaxBytes)
	}

	// From here on errors are the peer's content failing verification:
	// no warm-cache fallback, the caller must see them.
	sum, verified, err := format.ContentHash(data)
	if err != nil {
		return "", fmt.Errorf("bundlecache: bundle from %s: %w", s.url, err)
	}
	if etag := strings.Trim(resp.Header.Get("ETag"), `"`); etag != "" && etag != hex.EncodeToString(sum[:]) {
		return "", fmt.Errorf("bundlecache: bundle from %s hashes to %x, ETag declares %s",
			s.url, sum, etag)
	}
	var sig []byte
	if len(s.opts.PublicKey) > 0 {
		if !verified {
			return "", fmt.Errorf("bundlecache: bundle from %s is unhashed version 1 and cannot be signature-verified", s.url)
		}
		if sig, err = s.fetchSignature(); err != nil {
			return "", err
		}
		if err := format.VerifyHash(s.opts.PublicKey, sig, sum); err != nil {
			return "", fmt.Errorf("bundlecache: bundle from %s: %w", s.url, err)
		}
	}
	path, _, err := s.cache.Put(data)
	if err != nil {
		return "", err
	}
	if sig != nil {
		if err := s.cache.PutSignature(sum, s.opts.PublicKey, sig); err != nil {
			return "", err
		}
	}
	return path, nil
}

// fetchSignature fetches the detached envelope from the sibling
// /v1/bundle.sig endpoint of the bundle URL.
func (s *Source) fetchSignature() ([]byte, error) {
	url := s.url + ".sig"
	resp, err := s.opts.Client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("bundlecache: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bundlecache: fetch %s: %s (a public key is pinned, the peer must serve a signature)", url, resp.Status)
	}
	sig, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return nil, fmt.Errorf("bundlecache: read %s: %w", url, err)
	}
	return sig, nil
}
