package bundlecache

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query/format"
)

// container builds a small VersionHashed container whose payload makes
// its content hash unique per call site.
func container(t testing.TB, payload string) []byte {
	t.Helper()
	w := format.NewWriter(format.KindBundle)
	w.SetVersion(format.VersionHashed)
	w.Bytes(1, []byte(payload))
	return w.Finish()
}

// TestPutGetLatest pins the basic cache contract: Put stores under the
// content hash, Get re-verifies and returns the path, Latest survives a
// re-open of the same directory (the warm-boot case).
func TestPutGetLatest(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := container(t, "one")
	path, sum, err := c.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(sum)
	if err != nil || got != path {
		t.Fatalf("Get = %q, %v; want %q", got, err, path)
	}
	onDisk, err := os.ReadFile(got)
	if err != nil || string(onDisk) != string(data) {
		t.Fatalf("entry bytes differ from what was Put")
	}
	if latest, ok := c.Latest(); !ok || latest != sum {
		t.Fatalf("Latest = %x, %v; want %x", latest, ok, sum)
	}

	// A second artifact becomes latest; the first stays retrievable.
	data2 := container(t, "two")
	_, sum2, err := c.Put(data2)
	if err != nil {
		t.Fatal(err)
	}
	if latest, _ := c.Latest(); latest != sum2 {
		t.Fatal("Put did not advance latest")
	}
	if _, err := c.Get(sum); err != nil {
		t.Fatalf("older entry lost after a newer Put: %v", err)
	}

	// Re-open: the state file on disk is the whole warm cache.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest, ok := c2.Latest(); !ok || latest != sum2 {
		t.Fatal("warm re-open lost the latest entry")
	}
	if _, err := c2.Get(sum2); err != nil {
		t.Fatalf("warm re-open cannot Get the latest entry: %v", err)
	}
}

// TestGetRejectsTamperedEntry: a cache hit is never trusted blind — a
// flipped bit in the entry file surfaces as ErrHashMismatch, and a miss
// stays distinguishable via os.IsNotExist.
func TestGetRejectsTamperedEntry(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := container(t, "tamper me")
	path, sum, err := c.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= 1
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(sum); !errors.Is(err, format.ErrHashMismatch) {
		t.Fatalf("tampered entry: Get = %v, want ErrHashMismatch", err)
	}
	var missing [format.HashSize]byte
	if _, err := c.Get(missing); !os.IsNotExist(err) {
		t.Fatalf("missing entry: Get = %v, want IsNotExist", err)
	}
}

// TestPutRejectsGarbage: bytes that do not parse as a container never
// enter the cache.
func TestPutRejectsGarbage(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{nil, []byte("not a container"), container(t, "x")[:10]} {
		if _, _, err := c.Put(bad); err == nil {
			t.Fatalf("Put accepted %d bytes of garbage", len(bad))
		}
	}
	// A tampered hashed container is garbage too.
	mut := container(t, "y")
	mut[len(mut)-1] ^= 1
	if _, _, err := c.Put(mut); !errors.Is(err, format.ErrHashMismatch) {
		t.Fatalf("Put on tampered container = %v, want ErrHashMismatch", err)
	}
}

// TestPutSignature: only envelopes that actually verify the entry's hash
// under the given key are stored.
func TestPutSignature(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	privFile, pubFile, err := format.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := format.ParsePrivateKey(privFile)
	data := container(t, "signed")
	path, sum, err := c.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := format.Sign(priv, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutSignature(sum, pubFile, sig); err != nil {
		t.Fatalf("PutSignature: %v", err)
	}
	if _, err := os.Stat(path + ".sig"); err != nil {
		t.Fatalf("signature sibling not written: %v", err)
	}

	_, otherPub, err := format.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutSignature(sum, otherPub, sig); !errors.Is(err, format.ErrBadSignature) {
		t.Fatalf("PutSignature under the wrong key = %v, want ErrBadSignature", err)
	}
	mut := append([]byte(nil), sig...)
	mut[len(mut)-1] ^= 1
	if err := c.PutSignature(sum, pubFile, mut); err == nil {
		t.Fatal("PutSignature accepted a corrupted envelope")
	}
}

// bundlePeer is an httptest server speaking the GET /v1/bundle protocol:
// serves data with its content hash as ETag, honors If-None-Match, and
// counts full-body responses.
type bundlePeer struct {
	srv   *httptest.Server
	mu    sync.Mutex
	data  []byte
	sig   []byte
	etag  string
	full  atomic.Int64  // 200 responses served
	total atomic.Int64  // all /v1/bundle requests
	gate  chan struct{} // when non-nil, handler blocks on it before replying
}

func newBundlePeer(t *testing.T, data, sig []byte) *bundlePeer {
	t.Helper()
	p := &bundlePeer{}
	p.set(data, sig)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/bundle", func(w http.ResponseWriter, r *http.Request) {
		p.total.Add(1)
		p.mu.Lock()
		data, etag, gate := p.data, p.etag, p.gate
		p.mu.Unlock()
		if gate != nil {
			<-gate
		}
		w.Header().Set("ETag", etag)
		if strings.Contains(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		p.full.Add(1)
		w.Write(data)
	})
	mux.HandleFunc("/v1/bundle.sig", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		sig := p.sig
		p.mu.Unlock()
		if sig == nil {
			http.Error(w, "unsigned", http.StatusNotFound)
			return
		}
		w.Write(sig)
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *bundlePeer) set(data, sig []byte) {
	sum, _, _ := format.ContentHash(data)
	p.mu.Lock()
	p.data, p.sig = data, sig
	p.etag = `"` + hexSum(sum) + `"`
	p.mu.Unlock()
}

func hexSum(sum [format.HashSize]byte) string {
	const hextable = "0123456789abcdef"
	out := make([]byte, 0, 2*len(sum))
	for _, b := range sum {
		out = append(out, hextable[b>>4], hextable[b&0xf])
	}
	return string(out)
}

func (p *bundlePeer) url() string { return p.srv.URL + "/v1/bundle" }

// TestSourceFetchConditional: a cold Fetch downloads and stores; a warm
// Fetch sends If-None-Match, gets a 304, and serves the cached entry
// without a second body transfer; a changed peer bundle is re-fetched.
func TestSourceFetchConditional(t *testing.T) {
	data := container(t, "v1 of the bundle")
	peer := newBundlePeer(t, data, nil)
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(peer.url(), cache, Options{})

	path1, err := src.Fetch()
	if err != nil {
		t.Fatalf("cold Fetch: %v", err)
	}
	if got := peer.full.Load(); got != 1 {
		t.Fatalf("cold Fetch made %d full transfers, want 1", got)
	}
	path2, err := src.Fetch()
	if err != nil {
		t.Fatalf("warm Fetch: %v", err)
	}
	if path2 != path1 {
		t.Fatalf("warm Fetch path %q differs from cold %q", path2, path1)
	}
	if got := peer.full.Load(); got != 1 {
		t.Fatalf("warm Fetch re-transferred the body (%d full responses)", got)
	}

	// Peer publishes a new bundle: the next Fetch sees through the ETag.
	peer.set(container(t, "v2 of the bundle"), nil)
	path3, err := src.Fetch()
	if err != nil {
		t.Fatalf("Fetch after publish: %v", err)
	}
	if path3 == path1 {
		t.Fatal("Fetch did not pick up the republished bundle")
	}
	if got := peer.full.Load(); got != 2 {
		t.Fatalf("republished bundle fetched %d times, want exactly once more", got-1)
	}
}

// TestSourceOfflineWarmCache: once the cache is warm, a dead peer is a
// soft failure — Fetch keeps returning the verified cached entry.
// A cold cache with a dead peer is a hard failure.
func TestSourceOfflineWarmCache(t *testing.T) {
	data := container(t, "survives restarts")
	peer := newBundlePeer(t, data, nil)
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(peer.url(), cache, Options{})
	path, err := src.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	peer.srv.Close()

	got, err := src.Fetch()
	if err != nil || got != path {
		t.Fatalf("offline Fetch = %q, %v; want warm cache %q", got, err, path)
	}

	// A fresh process, same directory: warm boot straight from disk.
	cache2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src2 := NewSource(peer.url(), cache2, Options{})
	if got, err := src2.Fetch(); err != nil || got != path {
		t.Fatalf("warm-boot offline Fetch = %q, %v; want %q", got, err, path)
	}

	// Cold cache, dead peer: nothing to fall back to.
	cold, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSource(peer.url(), cold, Options{}).Fetch(); err == nil {
		t.Fatal("cold Fetch against a dead peer succeeded")
	}
}

// TestSourceVerificationNeverFallsBack: verification failures — tampered
// bytes, a lying ETag, a bad signature, an unsigned peer under a pinned
// key — are hard errors even with a perfectly good warm cache.
func TestSourceVerificationNeverFallsBack(t *testing.T) {
	privFile, pubFile, err := format.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := format.ParsePrivateKey(privFile)
	good := container(t, "the real bundle")
	goodSig, err := format.Sign(priv, good)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tampered body", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[len(mut)-1] ^= 1
		peer := newBundlePeer(t, good, nil)
		cache, _ := Open(t.TempDir())
		src := NewSource(peer.url(), cache, Options{})
		if _, err := src.Fetch(); err != nil {
			t.Fatal(err) // warm the cache with the good bundle first
		}
		peer.mu.Lock()
		peer.data = mut           // body no longer matches its own header hash
		peer.etag = `"republish"` // miss the If-None-Match so the body is sent
		peer.mu.Unlock()
		if _, err := src.Fetch(); !errors.Is(err, format.ErrHashMismatch) {
			t.Fatalf("tampered peer body: Fetch = %v, want ErrHashMismatch (no fallback)", err)
		}
	})

	t.Run("lying etag", func(t *testing.T) {
		peer := newBundlePeer(t, good, nil)
		peer.mu.Lock()
		peer.etag = `"deadbeef"`
		peer.mu.Unlock()
		cache, _ := Open(t.TempDir())
		if _, err := NewSource(peer.url(), cache, Options{}).Fetch(); err == nil {
			t.Fatal("Fetch accepted a bundle whose ETag does not match its bytes")
		}
	})

	t.Run("bad signature", func(t *testing.T) {
		otherPriv, _, err := format.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		op, _ := format.ParsePrivateKey(otherPriv)
		wrongSig, err := format.Sign(op, good)
		if err != nil {
			t.Fatal(err)
		}
		peer := newBundlePeer(t, good, wrongSig)
		cache, _ := Open(t.TempDir())
		// Warm the cache out of band so a fallback, if wrongly taken,
		// would have something to return.
		if _, _, err := cache.Put(good); err != nil {
			t.Fatal(err)
		}
		src := NewSource(peer.url(), cache, Options{PublicKey: pubFile})
		// Defeat the conditional path: the peer ignores If-None-Match for
		// a fresh hash, so republish under a different payload.
		fresh := container(t, "freshly published, wrongly signed")
		freshSig, _ := format.Sign(op, fresh)
		peer.set(fresh, freshSig)
		if _, err := src.Fetch(); !errors.Is(err, format.ErrBadSignature) {
			t.Fatalf("wrong-key signature: Fetch = %v, want ErrBadSignature (no fallback)", err)
		}
	})

	t.Run("unsigned peer with pinned key", func(t *testing.T) {
		peer := newBundlePeer(t, good, nil) // no .sig served
		cache, _ := Open(t.TempDir())
		src := NewSource(peer.url(), cache, Options{PublicKey: pubFile})
		if _, err := src.Fetch(); err == nil {
			t.Fatal("Fetch accepted an unsigned bundle under a pinned key")
		}
	})

	t.Run("good signature verifies and lands in cache", func(t *testing.T) {
		peer := newBundlePeer(t, good, goodSig)
		cache, _ := Open(t.TempDir())
		src := NewSource(peer.url(), cache, Options{PublicKey: pubFile})
		path, err := src.Fetch()
		if err != nil {
			t.Fatalf("signed Fetch: %v", err)
		}
		if _, err := os.Stat(path + ".sig"); err != nil {
			t.Fatalf("verified signature not cached alongside the entry: %v", err)
		}
	})
}

// TestSourceSingleflight: concurrent Fetch calls coalesce into one
// network round-trip, and every caller gets the same verified path.
func TestSourceSingleflight(t *testing.T) {
	data := container(t, "herd target")
	peer := newBundlePeer(t, data, nil)
	gate := make(chan struct{})
	peer.mu.Lock()
	peer.gate = gate // hold the first request open while the herd piles up
	peer.mu.Unlock()

	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(peer.url(), cache, Options{})

	const herd = 8
	var wg sync.WaitGroup
	var ready atomic.Int64
	paths := make([]string, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ready.Add(1)
			paths[i], errs[i] = src.Fetch()
		}(i)
	}
	// The gate holds the first request open at the peer, so the flight
	// stays in progress while the rest of the herd calls Fetch and joins
	// it.  Wait until that request has arrived and every goroutine is at
	// its Fetch call, give the scheduler a beat, then release.
	for peer.total.Load() == 0 || ready.Load() < herd {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if paths[i] != paths[0] {
			t.Fatalf("caller %d got path %q, caller 0 got %q", i, paths[i], paths[0])
		}
	}
	if got := peer.total.Load(); got != 1 {
		t.Fatalf("herd of %d made %d requests, want 1", herd, got)
	}
}
