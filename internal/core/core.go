// Package core is the façade of the library: it re-exports the types and
// constructors that make up the public API of the reproduction of
// "Marrying Words and Trees" (Alur, PODS 2007), so that applications built
// inside this module (the examples and the command-line tools) can reach the
// primary contribution through a single import.
//
// The underlying packages remain importable directly; this façade only
// aliases them:
//
//   - nested words and their operations        → internal/nestedword
//   - ordered trees and the tree-word encoding → internal/tree
//   - nested word automata (the contribution)  → internal/nwa
//   - pushdown nested word automata            → internal/pnwa
//   - document streaming and query compilation → internal/docstream, internal/query
package core

import (
	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/pnwa"
	"repro/internal/query"
	"repro/internal/tree"
)

// Nested-word model.
type (
	// NestedWord is a linear sequence of positions with a matching relation.
	NestedWord = nestedword.NestedWord
	// Position is one labelled position of a nested word.
	Position = nestedword.Position
	// Kind classifies a position as call, internal, or return.
	Kind = nestedword.Kind
	// Tree is an ordered unranked tree.
	Tree = tree.Tree
	// Alphabet is an interned finite symbol set.
	Alphabet = alphabet.Alphabet
)

// Position kinds.
const (
	Internal = nestedword.Internal
	Call     = nestedword.Call
	Return   = nestedword.Return
)

// Automata.
type (
	// DNWA is a deterministic nested word automaton.
	DNWA = nwa.DNWA
	// NNWA is a nondeterministic nested word automaton.
	NNWA = nwa.NNWA
	// JNWA is a joinless nested word automaton.
	JNWA = nwa.JNWA
	// PNWA is a pushdown nested word automaton.
	PNWA = pnwa.PNWA
)

// Constructors and conversions re-exported from the model packages.
var (
	// NewAlphabet builds an interned alphabet.
	NewAlphabet = alphabet.New
	// ParseNestedWord parses the ⟨a a a⟩ tagged notation.
	ParseNestedWord = nestedword.Parse
	// MustParseNestedWord is ParseNestedWord that panics on error.
	MustParseNestedWord = nestedword.MustParse
	// Path builds path(w), the nested word of a unary tree.
	Path = nestedword.Path
	// Concat concatenates nested words.
	Concat = nestedword.Concat
	// Insert inserts a well-matched word after every occurrence of a symbol.
	Insert = nestedword.Insert
	// TreeToNestedWord encodes an ordered tree as a tree word (t_nw).
	TreeToNestedWord = tree.ToNestedWord
	// TreeFromNestedWord decodes a tree word back to a tree (nw_t).
	TreeFromNestedWord = tree.FromNestedWord
	// NewDNWABuilder starts building a deterministic NWA.
	NewDNWABuilder = nwa.NewDNWABuilder
	// NewNNWA creates an empty nondeterministic NWA.
	NewNNWA = nwa.NewNNWA
	// IntersectNWA, UnionNWA and EquivalentNWA are the boolean operations and
	// the decision procedure of Section 3.2.
	IntersectNWA  = nwa.Intersect
	UnionNWA      = nwa.Union
	EquivalentNWA = nwa.Equivalent
	// ParseDocument parses an XML-like document into a nested word.
	ParseDocument = docstream.Parse
	// NewStreamingRunner evaluates an automaton over a document stream.
	NewStreamingRunner = docstream.NewStreamingRunner
	// LinearOrderQuery, PathQuery and WellFormedQuery compile document
	// queries to deterministic NWAs.
	LinearOrderQuery = query.LinearOrder
	PathQuery        = query.PathQuery
	WellFormedQuery  = query.WellFormed
)
