package docstream

import (
	"io"
	"strings"
	"testing"

	"repro/internal/alphabet"
)

// TestTokenizerRetokenizeZeroAlloc pins the claim the //nwvet:hotpath
// annotation on the tokenizer loop makes: an interning tokenizer whose
// labels all belong to the alphabet retokenizes document after document —
// Reset plus a full drain — without allocating, because tokens are spelled
// into the reused scratch buffer, interned via alphabet.IndexBytes, and
// labelled with the alphabet's canonical strings.
func TestTokenizerRetokenizeZeroAlloc(t *testing.T) {
	alpha := alphabet.New("a", "b", "c")
	doc := strings.Repeat("<a> b <c> b b </c> <b></b> c </a> ", 16)
	rd := strings.NewReader(doc)
	tk := NewInterningTokenizer(rd, alpha)

	var tokErr error
	run := func() {
		rd.Reset(doc)
		tk.Reset(rd)
		for {
			_, err := tk.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				tokErr = err
				return
			}
		}
	}
	run() // grow the scratch buffer
	if tokErr != nil {
		t.Fatal(tokErr)
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("Tokenizer.Reset+retokenize: %v allocs/op, want 0", allocs)
	}
	if tokErr != nil {
		t.Fatal(tokErr)
	}
}
