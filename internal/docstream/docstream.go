// Package docstream connects documents to nested words the way the paper's
// introduction motivates: the SAX representation of an XML document already
// carries open-tag / close-tag / text events, so it can be interpreted as a
// nested word without any preprocessing, and nested word automata can then
// query it in a single left-to-right pass whose memory is bounded by the
// document depth.
package docstream

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// Event is a single SAX-style event: an element opening, an element closing,
// or a text token.  It corresponds to one position of the nested word.
//
// Sym optionally carries the label already interned against a query
// alphabet, so that N fanned-out compiled queries pay one symbol lookup per
// event in total — at the edge, in the tokenizer — instead of one per event
// per query.  The encoding leaves the zero value meaningful: Sym == 0 means
// "not interned" (the state of every event built without an alphabet), and
// otherwise Sym-1 is the compiled symbol ID — the alphabet index for known
// labels, or the dedicated out-of-alphabet ID alphabet.Size() for labels the
// queries have never heard of (see the query package).  Use SymID and
// Interned rather than decoding Sym by hand, and never mix events interned
// against different alphabets in one stream: a consumer trusts Sym relative
// to its own alphabet (compiled symbol IDs are only meaningful there).
type Event struct {
	Kind  nestedword.Kind
	Label string
	Sym   int
}

// SymID returns the 0-based compiled symbol ID of the event against alpha:
// the alphabet index when the label is known, alpha.Size() — the dedicated
// out-of-alphabet ID — when it is not.  Events already interned (Sym != 0)
// answer without touching the alphabet.
func (e Event) SymID(alpha *alphabet.Alphabet) int {
	if e.Sym != 0 {
		return e.Sym - 1
	}
	if i, ok := alpha.Index(e.Label); ok {
		return i
	}
	return alpha.Size()
}

// Interned returns a copy of the event with Sym resolved against alpha.
func (e Event) Interned(alpha *alphabet.Alphabet) Event {
	e.Sym = e.SymID(alpha) + 1
	return e
}

// OutOfAlphabet reports whether the event's label lies outside alpha.
func (e Event) OutOfAlphabet(alpha *alphabet.Alphabet) bool {
	return e.SymID(alpha) == alpha.Size()
}

// NewEvent builds an event for a label, interned against alpha when one is
// given: in-alphabet labels get their alphabet index, anything else the
// dedicated out-of-alphabet ID alpha.Size().  With a nil alpha the event is
// uninterned (Sym stays 0).  This is THE out-of-alphabet mapping — the
// tokenizer and every adapter route through here (or InternBytes), so a
// label the queries have never heard of gets the same compiled symbol ID no
// matter which event source produced it.
func NewEvent(kind nestedword.Kind, label string, alpha *alphabet.Alphabet) Event {
	if alpha != nil {
		if i, ok := alpha.Index(label); ok {
			return Event{Kind: kind, Label: alpha.Symbol(i), Sym: i + 1}
		}
		return Event{Kind: kind, Label: label, Sym: alpha.Size() + 1}
	}
	return Event{Kind: kind, Label: label}
}

// InternBytes is NewEvent for a label spelled in a reusable byte buffer: the
// in-alphabet fast path looks the name up allocation-free
// (alphabet.IndexBytes) and reuses the alphabet's canonical string, so a
// caller that recycles its scratch buffer pays zero allocations per
// in-alphabet event; out-of-alphabet and uninterned labels materialize one
// fresh string each.
func InternBytes(kind nestedword.Kind, name []byte, alpha *alphabet.Alphabet) Event {
	if alpha != nil {
		if i, ok := alpha.IndexBytes(name); ok {
			return Event{Kind: kind, Label: alpha.Symbol(i), Sym: i + 1}
		}
		return Event{Kind: kind, Label: string(name), Sym: alpha.Size() + 1}
	}
	return Event{Kind: kind, Label: string(name)}
}

// Tokenizer reads the lightweight XML-like syntax incrementally from an
// io.Reader and emits one Event at a time: "<name>" opens an element,
// "</name>" closes one, and any other whitespace-separated token is text.
// Attributes, comments, and character escaping are intentionally out of scope
// — the point is the event stream, not XML conformance.
//
// The tokenizer never buffers more than one token, so a document of any
// length streams through it in constant memory; combined with a streaming
// runner or the engine package this realizes the paper's single-pass,
// depth-bounded evaluation claim end to end.  An interning tokenizer goes
// further: tokens are spelled into a reused scratch buffer and looked up
// allocation-free (alphabet.IndexBytes), and in-alphabet labels reuse the
// alphabet's canonical strings, so retokenizing documents whose labels the
// queries know costs zero allocations per token after the first document
// (the claim pinned by the hotpath-alloc analyzer and the AllocsPerRun
// regression tests; labels outside the alphabet still materialize one
// string each).
type Tokenizer struct {
	r     *bufio.Reader
	tok   []byte // scratch for the token currently being read, reused across tokens
	err   error  // sticky error (io.EOF after the last token)
	alpha *alphabet.Alphabet
}

// NewTokenizer returns a tokenizer reading from r.  Its events are not
// interned (Event.Sym stays 0); use NewInterningTokenizer when the query
// alphabet is known up front.
func NewTokenizer(r io.Reader) *Tokenizer {
	return &Tokenizer{r: bufio.NewReader(r)}
}

// NewInterningTokenizer returns a tokenizer that additionally resolves every
// event's label against alpha at tokenize time, setting Event.Sym to the
// compiled symbol ID (labels outside alpha get the dedicated out-of-alphabet
// ID).  This pushes symbol interning to the edge of the pipeline: downstream
// compiled runners index their transition tables directly and never look a
// string up again.
func NewInterningTokenizer(r io.Reader, alpha *alphabet.Alphabet) *Tokenizer {
	return &Tokenizer{r: bufio.NewReader(r), alpha: alpha}
}

// Reset repoints the tokenizer at a new input, clearing any sticky error
// while keeping its buffered-reader allocation and alphabet binding.  A
// long-lived consumer serving one document after another — a serve.Pool
// shard worker holds exactly one interning tokenizer — tokenizes every
// document allocation-free after the first.
func (t *Tokenizer) Reset(r io.Reader) {
	if t.r == nil {
		t.r = bufio.NewReader(r)
	} else {
		t.r.Reset(r)
	}
	t.err = nil
	t.tok = t.tok[:0]
}

// Next returns the next event.  At the end of the input it returns io.EOF;
// any other error is a syntax or read error.  After a non-nil error every
// subsequent call returns the same error.
//
//nwvet:hotpath
func (t *Tokenizer) Next() (Event, error) {
	if t.err != nil {
		return Event{}, t.err
	}
	e, err := t.next()
	if err != nil {
		t.err = err
		return Event{}, err
	}
	return e, nil
}

// emit builds the event for a token spelled in name (a view into the scratch
// buffer) via the shared InternBytes mapping, so tokenizer and adapter
// streams agree symbol-for-symbol on out-of-alphabet labels.
func (t *Tokenizer) emit(kind nestedword.Kind, name []byte) Event {
	return InternBytes(kind, name, t.alpha)
}

//nwvet:hotpath
func (t *Tokenizer) next() (Event, error) {
	// Skip inter-token whitespace, decoding full runes so multi-byte
	// whitespace such as U+00A0 is recognized instead of being misread
	// byte by byte.
	var c rune
	for {
		var err error
		c, _, err = t.r.ReadRune()
		if err != nil {
			return Event{}, err // io.EOF here is the clean end of the stream
		}
		if !unicode.IsSpace(c) {
			break
		}
	}
	if c == '<' {
		return t.readTag()
	}
	// Text token: runs until whitespace, '<', or the end of the input.
	t.tok = utf8.AppendRune(t.tok[:0], c)
	for {
		c, _, err := t.r.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Event{}, err
		}
		if c == '<' {
			if err := t.r.UnreadRune(); err != nil {
				return Event{}, err
			}
			break
		}
		if unicode.IsSpace(c) {
			break
		}
		t.tok = utf8.AppendRune(t.tok, c)
	}
	return t.emit(nestedword.Internal, t.tok), nil
}

// readTag consumes a tag whose '<' has already been read.
func (t *Tokenizer) readTag() (Event, error) {
	t.tok = t.tok[:0]
	for {
		c, _, err := t.r.ReadRune()
		if err == io.EOF {
			return Event{}, fmt.Errorf("docstream: unterminated tag in %q", truncate("<"+string(t.tok)))
		}
		if err != nil {
			return Event{}, err
		}
		if c == '>' {
			break
		}
		t.tok = utf8.AppendRune(t.tok, c)
	}
	tag := t.tok
	if len(tag) > 0 && tag[0] == '/' {
		name := bytes.TrimSpace(tag[1:])
		if len(name) == 0 {
			return Event{}, fmt.Errorf("docstream: empty closing tag")
		}
		return t.emit(nestedword.Return, name), nil
	}
	name := bytes.TrimSpace(tag)
	if len(name) == 0 {
		return Event{}, fmt.Errorf("docstream: empty opening tag")
	}
	return t.emit(nestedword.Call, name), nil
}

// Tokenize parses a whole document into its event slice.  It is a thin
// wrapper over the incremental Tokenizer for callers that already hold the
// document in memory.
func Tokenize(doc string) ([]Event, error) {
	tk := NewTokenizer(strings.NewReader(doc))
	var events []Event
	for {
		e, err := tk.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
}

// truncate shortens error context to at most 20 bytes without splitting a
// UTF-8 rune.
func truncate(s string) string {
	const max = 20
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "..."
}

// ToNestedWord converts an event stream to the nested word it denotes.
// Mismatched or missing tags simply become pending calls and returns — one
// of the paper's arguments for nested words over trees is precisely that
// documents that do not parse into a tree can still be represented and
// processed.
func ToNestedWord(events []Event) *nestedword.NestedWord {
	ps := make([]nestedword.Position, len(events))
	for i, e := range events {
		ps[i] = nestedword.Position{Symbol: e.Label, Kind: e.Kind}
	}
	return nestedword.New(ps...)
}

// Parse tokenizes a document and returns its nested word.
func Parse(doc string) (*nestedword.NestedWord, error) {
	events, err := Tokenize(doc)
	if err != nil {
		return nil, err
	}
	return ToNestedWord(events), nil
}

// Render writes a nested word back in the XML-like syntax accepted by
// Tokenize (calls become opening tags, returns closing tags, internals
// text).
func Render(n *nestedword.NestedWord) string {
	var b strings.Builder
	for i := 0; i < n.Len(); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch n.KindAt(i) {
		case nestedword.Call:
			b.WriteString("<" + n.SymbolAt(i) + ">")
		case nestedword.Return:
			b.WriteString("</" + n.SymbolAt(i) + ">")
		default:
			b.WriteString(n.SymbolAt(i))
		}
	}
	return b.String()
}

// Stats summarizes a document stream.
type Stats struct {
	Positions      int
	Elements       int
	TextTokens     int
	Depth          int
	WellFormed     bool
	PendingOpens   int
	PendingCloses  int
	DistinctLabels int
}

// Summarize computes document statistics in a single pass.
func Summarize(n *nestedword.NestedWord) Stats {
	calls, internals, _ := n.Counts()
	st := Stats{
		Positions:      n.Len(),
		Elements:       calls,
		TextTokens:     internals,
		Depth:          n.Depth(),
		WellFormed:     n.IsWellMatched(),
		PendingOpens:   len(n.PendingCalls()),
		PendingCloses:  len(n.PendingReturns()),
		DistinctLabels: len(n.Alphabet()),
	}
	return st
}

// StreamingRunner evaluates a deterministic NWA over an event stream one
// event at a time.  Its memory is the automaton state plus one hierarchical
// state per currently open element, i.e. proportional to the document depth
// — the streaming bound highlighted in Section 3.2.
type StreamingRunner struct {
	automaton *nwa.DNWA
	state     int
	stack     []int
}

// NewStreamingRunner creates a runner positioned at the start of a document.
func NewStreamingRunner(a *nwa.DNWA) *StreamingRunner {
	return &StreamingRunner{automaton: a, state: a.Start()}
}

// Feed consumes one event.
func (r *StreamingRunner) Feed(e Event) {
	switch e.Kind {
	case nestedword.Internal:
		r.state = r.automaton.StepInternal(r.state, e.Label)
	case nestedword.Call:
		lin, hier := r.automaton.StepCall(r.state, e.Label)
		r.stack = append(r.stack, hier)
		r.state = lin
	case nestedword.Return:
		hier := r.automaton.Start()
		if len(r.stack) > 0 {
			hier = r.stack[len(r.stack)-1]
			r.stack = r.stack[:len(r.stack)-1]
		}
		r.state = r.automaton.StepReturn(r.state, hier, e.Label)
	}
}

// FeedAll consumes a whole event stream.
func (r *StreamingRunner) FeedAll(events []Event) {
	for _, e := range events {
		r.Feed(e)
	}
}

// Accepting reports whether the automaton accepts the stream consumed so
// far (viewed as a complete nested word).
func (r *StreamingRunner) Accepting() bool { return r.automaton.IsAccepting(r.state) }

// Depth returns the number of currently open elements.
func (r *StreamingRunner) Depth() int { return len(r.stack) }

// Reset returns the runner to the start of a new document.
func (r *StreamingRunner) Reset() {
	r.state = r.automaton.Start()
	r.stack = r.stack[:0]
}
