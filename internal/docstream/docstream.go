// Package docstream connects documents to nested words the way the paper's
// introduction motivates: the SAX representation of an XML document already
// carries open-tag / close-tag / text events, so it can be interpreted as a
// nested word without any preprocessing, and nested word automata can then
// query it in a single left-to-right pass whose memory is bounded by the
// document depth.
package docstream

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// Event is a single SAX-style event: an element opening, an element closing,
// or a text token.  It corresponds to one position of the nested word.
type Event struct {
	Kind  nestedword.Kind
	Label string
}

// Tokenize parses a lightweight XML-like syntax into a stream of events:
// "<name>" opens an element, "</name>" closes one, and any other
// whitespace-separated token is text.  Attributes, comments, and character
// escaping are intentionally out of scope — the point is the event stream,
// not XML conformance.
func Tokenize(doc string) ([]Event, error) {
	var events []Event
	rest := doc
	for len(rest) > 0 {
		switch {
		case rest[0] == '<':
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, fmt.Errorf("docstream: unterminated tag in %q", truncate(rest))
			}
			tag := rest[1:end]
			rest = rest[end+1:]
			if strings.HasPrefix(tag, "/") {
				name := strings.TrimSpace(tag[1:])
				if name == "" {
					return nil, fmt.Errorf("docstream: empty closing tag")
				}
				events = append(events, Event{Kind: nestedword.Return, Label: name})
			} else {
				name := strings.TrimSpace(tag)
				if name == "" {
					return nil, fmt.Errorf("docstream: empty opening tag")
				}
				events = append(events, Event{Kind: nestedword.Call, Label: name})
			}
		case unicode.IsSpace(rune(rest[0])):
			rest = rest[1:]
		default:
			end := strings.IndexAny(rest, "< \t\n\r")
			if end < 0 {
				end = len(rest)
			}
			events = append(events, Event{Kind: nestedword.Internal, Label: rest[:end]})
			rest = rest[end:]
		}
	}
	return events, nil
}

func truncate(s string) string {
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}

// ToNestedWord converts an event stream to the nested word it denotes.
// Mismatched or missing tags simply become pending calls and returns — one
// of the paper's arguments for nested words over trees is precisely that
// documents that do not parse into a tree can still be represented and
// processed.
func ToNestedWord(events []Event) *nestedword.NestedWord {
	ps := make([]nestedword.Position, len(events))
	for i, e := range events {
		ps[i] = nestedword.Position{Symbol: e.Label, Kind: e.Kind}
	}
	return nestedword.New(ps...)
}

// Parse tokenizes a document and returns its nested word.
func Parse(doc string) (*nestedword.NestedWord, error) {
	events, err := Tokenize(doc)
	if err != nil {
		return nil, err
	}
	return ToNestedWord(events), nil
}

// Render writes a nested word back in the XML-like syntax accepted by
// Tokenize (calls become opening tags, returns closing tags, internals
// text).
func Render(n *nestedword.NestedWord) string {
	var b strings.Builder
	for i := 0; i < n.Len(); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch n.KindAt(i) {
		case nestedword.Call:
			b.WriteString("<" + n.SymbolAt(i) + ">")
		case nestedword.Return:
			b.WriteString("</" + n.SymbolAt(i) + ">")
		default:
			b.WriteString(n.SymbolAt(i))
		}
	}
	return b.String()
}

// Stats summarizes a document stream.
type Stats struct {
	Positions      int
	Elements       int
	TextTokens     int
	Depth          int
	WellFormed     bool
	PendingOpens   int
	PendingCloses  int
	DistinctLabels int
}

// Summarize computes document statistics in a single pass.
func Summarize(n *nestedword.NestedWord) Stats {
	calls, internals, _ := n.Counts()
	st := Stats{
		Positions:      n.Len(),
		Elements:       calls,
		TextTokens:     internals,
		Depth:          n.Depth(),
		WellFormed:     n.IsWellMatched(),
		PendingOpens:   len(n.PendingCalls()),
		PendingCloses:  len(n.PendingReturns()),
		DistinctLabels: len(n.Alphabet()),
	}
	return st
}

// StreamingRunner evaluates a deterministic NWA over an event stream one
// event at a time.  Its memory is the automaton state plus one hierarchical
// state per currently open element, i.e. proportional to the document depth
// — the streaming bound highlighted in Section 3.2.
type StreamingRunner struct {
	automaton *nwa.DNWA
	state     int
	stack     []int
}

// NewStreamingRunner creates a runner positioned at the start of a document.
func NewStreamingRunner(a *nwa.DNWA) *StreamingRunner {
	return &StreamingRunner{automaton: a, state: a.Start()}
}

// Feed consumes one event.
func (r *StreamingRunner) Feed(e Event) {
	switch e.Kind {
	case nestedword.Internal:
		r.state = r.automaton.StepInternal(r.state, e.Label)
	case nestedword.Call:
		lin, hier := r.automaton.StepCall(r.state, e.Label)
		r.stack = append(r.stack, hier)
		r.state = lin
	case nestedword.Return:
		hier := r.automaton.Start()
		if len(r.stack) > 0 {
			hier = r.stack[len(r.stack)-1]
			r.stack = r.stack[:len(r.stack)-1]
		}
		r.state = r.automaton.StepReturn(r.state, hier, e.Label)
	}
}

// FeedAll consumes a whole event stream.
func (r *StreamingRunner) FeedAll(events []Event) {
	for _, e := range events {
		r.Feed(e)
	}
}

// Accepting reports whether the automaton accepts the stream consumed so
// far (viewed as a complete nested word).
func (r *StreamingRunner) Accepting() bool { return r.automaton.IsAccepting(r.state) }

// Depth returns the number of currently open elements.
func (r *StreamingRunner) Depth() int { return len(r.stack) }

// Reset returns the runner to the start of a new document.
func (r *StreamingRunner) Reset() {
	r.state = r.automaton.Start()
	r.stack = r.stack[:0]
}
