package docstream

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/query"
)

const sampleDoc = `<library> <book> <title> nested words </title> <year> 2007 </year> </book> <book> <title> tree automata </title> </book> </library>`

func TestTokenizeAndParse(t *testing.T) {
	n, err := Parse(sampleDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !n.IsWellMatched() {
		t.Errorf("the sample document is well formed")
	}
	if n.Depth() != 3 {
		t.Errorf("depth = %d, want 3", n.Depth())
	}
	st := Summarize(n)
	if st.Elements != 6 {
		t.Errorf("elements = %d, want 6", st.Elements)
	}
	if st.TextTokens != 5 {
		t.Errorf("text tokens = %d, want 5", st.TextTokens)
	}
	if !st.WellFormed || st.PendingOpens != 0 || st.PendingCloses != 0 {
		t.Errorf("summary flags wrong: %+v", st)
	}
	if st.Positions != n.Len() || st.Depth != 3 {
		t.Errorf("summary counts wrong: %+v", st)
	}
}

func TestTokenizeErrorsAndPending(t *testing.T) {
	if _, err := Parse("<unterminated"); err == nil {
		t.Errorf("unterminated tags should fail")
	}
	if _, err := Parse("<>"); err == nil {
		t.Errorf("empty opening tags should fail")
	}
	if _, err := Parse("</ >"); err == nil {
		t.Errorf("empty closing tags should fail")
	}
	// Documents that do not parse into a tree are still representable.
	n, err := Parse("</p> <a> text <b>")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.IsWellMatched() {
		t.Errorf("this fragment has pending tags")
	}
	st := Summarize(n)
	if st.PendingOpens != 2 || st.PendingCloses != 1 {
		t.Errorf("pending counts wrong: %+v", st)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	n, err := Parse(sampleDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	back, err := Parse(Render(n))
	if err != nil {
		t.Fatalf("Parse(Render): %v", err)
	}
	if !n.Equal(back) {
		t.Errorf("render/parse round trip failed")
	}
}

func TestStreamingRunnerMatchesBatch(t *testing.T) {
	n, err := Parse(sampleDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	alpha := docAlphabet(n)
	q := query.WellFormed(alpha)
	events, _ := Tokenize(sampleDoc)
	r := NewStreamingRunner(q)
	r.FeedAll(events)
	if r.Accepting() != q.Accepts(n) {
		t.Errorf("streaming and batch evaluation disagree")
	}
	if r.Depth() != 0 {
		t.Errorf("all elements are closed at the end of the document")
	}
	r.Reset()
	r.Feed(Event{Kind: nestedword.Call, Label: "library"})
	if r.Depth() != 1 {
		t.Errorf("depth after one open tag should be 1")
	}
}

func TestStreamingRunnerOnRandomDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		doc := generator.RandomDocument(rng, 80, 6, labels)
		q := query.WellFormed(docAlphabet(doc))
		r := NewStreamingRunner(q)
		for i := 0; i < doc.Len(); i++ {
			r.Feed(Event{Kind: doc.KindAt(i), Label: doc.SymbolAt(i)})
		}
		if r.Accepting() != q.Accepts(doc) {
			t.Fatalf("streaming disagrees with batch on %v", doc)
		}
	}
}

// docAlphabet builds the alphabet of labels occurring in the document.
func docAlphabet(n *nestedword.NestedWord) *alphabet.Alphabet {
	return alphabet.New(n.Alphabet()...)
}
