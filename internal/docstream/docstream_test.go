package docstream_test

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/iotest"
	"unicode/utf8"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/query"
)

const sampleDoc = `<library> <book> <title> nested words </title> <year> 2007 </year> </book> <book> <title> tree automata </title> </book> </library>`

func TestTokenizeAndParse(t *testing.T) {
	n, err := docstream.Parse(sampleDoc)
	if err != nil {
		t.Fatalf("docstream.Parse: %v", err)
	}
	if !n.IsWellMatched() {
		t.Errorf("the sample document is well formed")
	}
	if n.Depth() != 3 {
		t.Errorf("depth = %d, want 3", n.Depth())
	}
	st := docstream.Summarize(n)
	if st.Elements != 6 {
		t.Errorf("elements = %d, want 6", st.Elements)
	}
	if st.TextTokens != 5 {
		t.Errorf("text tokens = %d, want 5", st.TextTokens)
	}
	if !st.WellFormed || st.PendingOpens != 0 || st.PendingCloses != 0 {
		t.Errorf("summary flags wrong: %+v", st)
	}
	if st.Positions != n.Len() || st.Depth != 3 {
		t.Errorf("summary counts wrong: %+v", st)
	}
}

func TestTokenizeErrorsAndPending(t *testing.T) {
	if _, err := docstream.Parse("<unterminated"); err == nil {
		t.Errorf("unterminated tags should fail")
	}
	if _, err := docstream.Parse("<>"); err == nil {
		t.Errorf("empty opening tags should fail")
	}
	if _, err := docstream.Parse("</ >"); err == nil {
		t.Errorf("empty closing tags should fail")
	}
	// Documents that do not parse into a tree are still representable.
	n, err := docstream.Parse("</p> <a> text <b>")
	if err != nil {
		t.Fatalf("docstream.Parse: %v", err)
	}
	if n.IsWellMatched() {
		t.Errorf("this fragment has pending tags")
	}
	st := docstream.Summarize(n)
	if st.PendingOpens != 2 || st.PendingCloses != 1 {
		t.Errorf("pending counts wrong: %+v", st)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	n, err := docstream.Parse(sampleDoc)
	if err != nil {
		t.Fatalf("docstream.Parse: %v", err)
	}
	back, err := docstream.Parse(docstream.Render(n))
	if err != nil {
		t.Fatalf("docstream.Parse(docstream.Render): %v", err)
	}
	if !n.Equal(back) {
		t.Errorf("render/parse round trip failed")
	}
}

func TestStreamingRunnerMatchesBatch(t *testing.T) {
	n, err := docstream.Parse(sampleDoc)
	if err != nil {
		t.Fatalf("docstream.Parse: %v", err)
	}
	alpha := docAlphabet(n)
	q := query.WellFormed(alpha)
	events, _ := docstream.Tokenize(sampleDoc)
	r := docstream.NewStreamingRunner(q)
	r.FeedAll(events)
	if r.Accepting() != q.Accepts(n) {
		t.Errorf("streaming and batch evaluation disagree")
	}
	if r.Depth() != 0 {
		t.Errorf("all elements are closed at the end of the document")
	}
	r.Reset()
	r.Feed(docstream.Event{Kind: nestedword.Call, Label: "library"})
	if r.Depth() != 1 {
		t.Errorf("depth after one open tag should be 1")
	}
}

func TestStreamingRunnerOnRandomDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		doc := generator.RandomDocument(rng, 80, 6, labels)
		q := query.WellFormed(docAlphabet(doc))
		r := docstream.NewStreamingRunner(q)
		for i := 0; i < doc.Len(); i++ {
			r.Feed(docstream.Event{Kind: doc.KindAt(i), Label: doc.SymbolAt(i)})
		}
		if r.Accepting() != q.Accepts(doc) {
			t.Fatalf("streaming disagrees with batch on %v", doc)
		}
	}
}

// docAlphabet builds the alphabet of labels occurring in the document.
func docAlphabet(n *nestedword.NestedWord) *alphabet.Alphabet {
	return alphabet.New(n.Alphabet()...)
}

// TestTokenizeUnicodeWhitespace checks the rune-decoding fix: multi-byte
// whitespace such as U+00A0 (NBSP) and U+2003 (em space) must separate
// tokens instead of being misread byte by byte into spurious text tokens.
func TestTokenizeUnicodeWhitespace(t *testing.T) {
	events, err := docstream.Tokenize("<p> héllo wörld </p>")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []docstream.Event{
		{Kind: nestedword.Call, Label: "p"},
		{Kind: nestedword.Internal, Label: "héllo"},
		{Kind: nestedword.Internal, Label: "wörld"},
		{Kind: nestedword.Return, Label: "p"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

// TestIncrementalTokenizerMatchesTokenize streams a document rune by rune
// through the incremental tokenizer (via a one-byte-at-a-time reader) and
// checks it yields exactly what the whole-document wrapper yields.
func TestIncrementalTokenizerMatchesTokenize(t *testing.T) {
	doc := sampleDoc + " trailing text <extra> ök </extra>"
	want, err := docstream.Tokenize(doc)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	tk := docstream.NewTokenizer(iotest.OneByteReader(strings.NewReader(doc)))
	var got []docstream.Event
	for {
		e, err := tk.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, e)
	}
	if len(got) != len(want) {
		t.Fatalf("incremental yields %d events, wrapper %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: incremental %+v, wrapper %+v", i, got[i], want[i])
		}
	}
	// The error is sticky after EOF.
	if _, err := tk.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v, want io.EOF", err)
	}
}

// TestTruncateRuneBoundary checks that error context is cut on a rune
// boundary: an unterminated tag full of multi-byte runes must produce a
// valid UTF-8 error message.
func TestTruncateRuneBoundary(t *testing.T) {
	_, err := docstream.Tokenize("<ééééééééééééééé")
	if err == nil {
		t.Fatalf("unterminated tag should fail")
	}
	if !utf8.ValidString(err.Error()) {
		t.Errorf("error message %q contains a split rune", err.Error())
	}
}

// TestRandomRenderRoundTrip is the satellite round-trip test: for random
// well-formed documents, Parse(Render(n)) reproduces n exactly.
func TestRandomRenderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "c", "wörd"}
	for trial := 0; trial < 200; trial++ {
		n := generator.RandomDocument(rng, 2+rng.Intn(120), 8, labels)
		back, err := docstream.Parse(docstream.Render(n))
		if err != nil {
			t.Fatalf("trial %d: Parse(Render): %v", trial, err)
		}
		if !n.Equal(back) {
			t.Fatalf("trial %d: round trip lost positions:\n  in  %v\n  out %v", trial, n, back)
		}
	}
}

// TestInterningTokenizer checks edge interning: every event of an interning
// tokenizer carries the compiled symbol ID of its label, with labels outside
// the alphabet mapped to the dedicated out-of-alphabet ID.
func TestInterningTokenizer(t *testing.T) {
	alpha := alphabet.New("a", "b")
	tk := docstream.NewInterningTokenizer(strings.NewReader("<a> b stray </a> x"), alpha)
	type want struct {
		kind nestedword.Kind
		sym  int
		ooa  bool
	}
	wants := []want{
		{nestedword.Call, 0, false},
		{nestedword.Internal, 1, false},
		{nestedword.Internal, 2, true},
		{nestedword.Return, 0, false},
		{nestedword.Internal, 2, true},
	}
	for i, w := range wants {
		e, err := tk.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Sym == 0 {
			t.Fatalf("event %d (%q): not interned", i, e.Label)
		}
		if got := e.SymID(alpha); got != w.sym {
			t.Errorf("event %d (%q): SymID = %d, want %d", i, e.Label, got, w.sym)
		}
		if e.Kind != w.kind {
			t.Errorf("event %d (%q): kind = %v, want %v", i, e.Label, e.Kind, w.kind)
		}
		if got := e.OutOfAlphabet(alpha); got != w.ooa {
			t.Errorf("event %d (%q): OutOfAlphabet = %v, want %v", i, e.Label, got, w.ooa)
		}
	}
	if _, err := tk.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF at the end, got %v", err)
	}
}

// TestSymIDWithoutInterning checks the uninterned (zero-value) fallback: a
// plain-constructed event resolves through the alphabet map on demand.
func TestSymIDWithoutInterning(t *testing.T) {
	alpha := alphabet.New("a", "b")
	e := docstream.Event{Kind: nestedword.Internal, Label: "b"}
	if e.Sym != 0 {
		t.Fatalf("zero-value event claims to be interned")
	}
	if got := e.SymID(alpha); got != 1 {
		t.Fatalf("SymID = %d, want 1", got)
	}
	if got := (docstream.Event{Label: "zzz"}).SymID(alpha); got != alpha.Size() {
		t.Fatalf("unknown label SymID = %d, want out-of-alphabet %d", got, alpha.Size())
	}
	interned := e.Interned(alpha)
	if interned.Sym == 0 || interned.SymID(alpha) != 1 {
		t.Fatalf("Interned did not resolve the symbol: %+v", interned)
	}
}
