package docstream

import (
	"io"
	"strings"
	"testing"

	"repro/internal/alphabet"
)

// FuzzTokenizer feeds arbitrary bytes through both tokenizer flavours and
// checks the invariants the serving stack relies on: no panics, the plain
// and interning tokenizers agree event for event (the interning one only
// adds Sym, and Sym must decode to SymID of the label), and documents whose
// labels use the plain identifier charset survive a Render/Parse round
// trip.
func FuzzTokenizer(f *testing.F) {
	f.Add("<a> hello <b> x </b> </a>")
	f.Add("<a><a></a>")
	f.Add("</b> stray <c>")
	f.Add("   ")
	f.Add("<>< a <<b>> </>")
	f.Add("héllo <wörld> π </wörld>")
	alpha := alphabet.New("a", "b")
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<16 {
			doc = doc[:1<<16]
		}
		plain := NewTokenizer(strings.NewReader(doc))
		interning := NewInterningTokenizer(strings.NewReader(doc), alpha)
		for {
			pe, perr := plain.Next()
			ie, ierr := interning.Next()
			if (perr == nil) != (ierr == nil) {
				t.Fatalf("tokenizers diverge on errors: plain %v, interning %v", perr, ierr)
			}
			if perr != nil {
				if perr != io.EOF && ierr.Error() != perr.Error() {
					t.Fatalf("tokenizers report different errors: plain %v, interning %v", perr, ierr)
				}
				break
			}
			if pe.Kind != ie.Kind || pe.Label != ie.Label {
				t.Fatalf("tokenizers diverge: plain %+v, interning %+v", pe, ie)
			}
			if pe.Sym != 0 {
				t.Fatalf("plain tokenizer interned event %+v", pe)
			}
			if got, want := ie.Sym-1, pe.SymID(alpha); got != want {
				t.Fatalf("interned Sym %d decodes to %d, SymID says %d", ie.Sym, got, want)
			}
		}

		// Round trip: a parse that succeeds with plain identifier labels must
		// render back to an equal word.
		n, err := Parse(doc)
		if err != nil {
			return
		}
		for i := 0; i < n.Len(); i++ {
			for _, r := range n.SymbolAt(i) {
				if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
					return
				}
			}
		}
		back, err := Parse(Render(n))
		if err != nil {
			t.Fatalf("Render produced an unparseable document: %v", err)
		}
		if !back.Equal(n) {
			t.Fatalf("Render/Parse round trip changed the word: %v vs %v", n, back)
		}
	})
}
