package engine

import (
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/query"
)

// TestSessionStepLoopZeroAlloc pins the claim the //nwvet:hotpath annotation
// on Session.Feed makes: once a session's runners and batch buffer have
// grown to the working depth, streaming a document of pre-interned events
// through compiled DNWA runners allocates nothing.  Result() is deliberately
// not called inside the measurement — it returns a fresh verdict slice by
// contract.
func TestSessionStepLoopZeroAlloc(t *testing.T) {
	alpha := alphabet.New("a", "b")
	e := New(WithBatchSize(64))
	e.MustRegisterQuery("wf", query.Compile(query.WellFormed(alpha)))
	e.MustRegisterQuery("path", query.Compile(query.PathQuery(alpha, "a", "b")))

	// A nested document, interned against the engine's alphabet up front —
	// the state a serve shard is in after its interning tokenizer.
	var events []docstream.Event
	intern := func(kind nestedword.Kind, label string) docstream.Event {
		return docstream.Event{Kind: kind, Label: label}.Interned(alpha)
	}
	for i := 0; i < 32; i++ {
		events = append(events, intern(nestedword.Call, "a"))
		events = append(events, intern(nestedword.Internal, "b"))
		events = append(events, intern(nestedword.Call, "b"))
		events = append(events, intern(nestedword.Internal, "a"))
	}
	for i := 0; i < 32; i++ {
		events = append(events, intern(nestedword.Return, "b"))
		events = append(events, intern(nestedword.Return, "a"))
	}

	s := e.Acquire()
	defer e.Release(s)
	run := func() {
		s.Reset()
		for _, ev := range events {
			s.Feed(ev)
		}
		s.flush()
	}
	run() // grow runner stacks and the batch buffer to the working depth
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("compiled-DNWA session step loop: %v allocs/op, want 0", allocs)
	}
}
