package engine

import (
	"testing"

	"repro/internal/alphabet"
	"repro/internal/query"
)

// TestRegisterBundle pins the bundle registration contract: queries land
// under their bundle names in order, and re-registering the same bundle
// fails on the duplicate names.
func TestRegisterBundle(t *testing.T) {
	alpha := alphabet.New("a", "b")
	b := query.NewBundle(alpha)
	if err := b.Add("well-formed", query.Compile(query.WellFormed(alpha))); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("//a//b", query.Compile(query.PathQuery(alpha, "a", "b"))); err != nil {
		t.Fatal(err)
	}
	loaded, err := query.UnmarshalBundle(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	e := New()
	indices, err := e.RegisterBundle(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(indices) != 2 || indices[0] != 0 || indices[1] != 1 {
		t.Fatalf("indices = %v, want [0 1]", indices)
	}
	if names := e.Names(); names[0] != "well-formed" || names[1] != "//a//b" {
		t.Fatalf("names = %v", names)
	}
	if !e.Alphabet().Equal(alpha) {
		t.Fatalf("engine alphabet %v, want %v", e.Alphabet(), alpha)
	}
	if _, err := e.RegisterBundle(loaded); err == nil {
		t.Error("re-registering the same bundle succeeded")
	}
}
