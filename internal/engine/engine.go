// Package engine evaluates many compiled queries over one shared event
// stream in a single left-to-right pass.
//
// The paper's headline systems claim (Section 3.2) is that a deterministic
// NWA answers a document query in one streaming pass with memory bounded by
// the document depth.  This package lifts that claim from one query to N,
// and from deterministic automata to nondeterministic ones: an Engine holds
// N registered query.Query values — compiled DNWAs (query.Compile) and
// compiled NNWAs (query.CompileN) side by side — and a Session holds one
// query.Runner per query.  Events read from the source are interned once
// against the engine's shared alphabet and fanned out to every runner in
// fixed-size batches, so each query observes the same single pass, no runner
// ever hashes a label, and the stream is never materialized; total memory is
// O(depth · N) plus one constant-size batch buffer, independent of the
// document length.
//
// Sessions are pooled: serving many documents against the same query set
// reuses the runner state and batch buffer allocation-free, which is what a
// production front-end answering repeated requests needs.  All registered
// queries must share one alphabet — that is what makes edge interning sound
// — and Register reports duplicate names and alphabet mismatches as errors.
package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/alphabet"
	"repro/internal/bitset"
	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/query"
)

// EventSource yields a document's SAX-style events one at a time.  Next
// returns io.EOF at the clean end of the stream; any other error aborts the
// pass.  *docstream.Tokenizer satisfies this interface directly.
type EventSource interface {
	Next() (docstream.Event, error)
}

// Engine is an immutable set of registered queries.  Build it once with
// Register / RegisterQuery / RegisterBundle, then call Run (safe for
// concurrent use) for each document.
//
// Registering a planned bundle (see internal/query/plan) dispatches each
// product-compiled cluster to one shared ProductRunner whose verdict
// bitmask is demuxed back to the member names — Result.Verdicts, Names,
// and name lookup are indistinguishable from per-query fan-out.
type Engine struct {
	names   []string
	byName  map[string]int
	queries []query.Query // parallel to names; nil where a product group answers
	solo    []int         // verdict indices with their own runner, in order
	groups  []engineGroup
	alpha   *alphabet.Alphabet // shared by every registered query

	batchSize int
	workers   int

	pool sync.Pool // *Session
}

// engineGroup is one registered product cluster: the shared automaton plus
// the verdict slots its mask bits demux to.
type engineGroup struct {
	indices []int // verdict slots, mask-bit order
	product *query.CompiledProduct
}

// Option configures an Engine.
type Option func(*Engine)

// WithBatchSize sets how many events are read from the source before being
// fanned out to the runners (default 1024).  Larger batches amortize the
// per-batch bookkeeping; the buffer stays constant-size either way.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithWorkers sets how many goroutines share the runners during fan-out
// (default 1, i.e. sequential).  Runners are independent, so each batch can
// be applied to disjoint runner subsets in parallel; this pays off once the
// per-event automaton work dominates the per-batch synchronization, e.g.
// for many queries with large automata or nondeterministic runners.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// New creates an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{batchSize: 1024, workers: 1, byName: make(map[string]int)}
	for _, o := range opts {
		o(e)
	}
	e.pool.New = func() any { return e.newSession() }
	return e
}

// RegisterQuery adds any compiled query — deterministic or nondeterministic
// — under a display name and returns its index into Result.Verdicts.  The
// name must be new and the query's alphabet must equal the alphabet of every
// previously registered query (the first registration fixes it).
// RegisterQuery must not be called concurrently with Run.
func (e *Engine) RegisterQuery(name string, q query.Query) (int, error) {
	if _, dup := e.byName[name]; dup {
		return 0, fmt.Errorf("engine: query %q already registered", name)
	}
	if e.alpha == nil {
		e.alpha = q.Alphabet()
	} else if !e.alpha.Equal(q.Alphabet()) {
		return 0, fmt.Errorf("engine: query %q uses alphabet %v, engine interns against %v",
			name, q.Alphabet(), e.alpha)
	}
	idx := len(e.names)
	e.byName[name] = idx
	e.names = append(e.names, name)
	e.queries = append(e.queries, q)
	e.solo = append(e.solo, idx)
	// Sessions created for the old query set are stale; drop them.
	e.pool = sync.Pool{New: func() any { return e.newSession() }}
	return idx, nil
}

// Register compiles a deterministic NWA and registers it — the thin wrapper
// keeping the pre-compile API working.
func (e *Engine) Register(name string, d *nwa.DNWA) (int, error) {
	return e.RegisterQuery(name, query.Compile(d))
}

// MustRegister is Register for statically known-good query sets; it panics
// on duplicate names or alphabet mismatches.
func (e *Engine) MustRegister(name string, d *nwa.DNWA) int {
	i, err := e.Register(name, d)
	if err != nil {
		panic(err)
	}
	return i
}

// MustRegisterQuery is RegisterQuery for statically known-good query sets.
func (e *Engine) MustRegisterQuery(name string, q query.Query) int {
	i, err := e.RegisterQuery(name, q)
	if err != nil {
		panic(err)
	}
	return i
}

// RegisterBundle registers every query of a loaded bundle under its bundle
// name, in bundle order, and returns their verdict indices.  This is how a
// front-end boots from a serialized query set (query.OpenBundle) instead of
// compiling per process: the bundle's tables — possibly aliasing an mmap'd
// read-only region — are used as-is.  A planned bundle's product groups are
// registered as shared runners with their verdicts demuxed to the same
// indices per-query registration would have used.  On error the engine may
// be left with a prefix of the bundle registered; treat it as unusable.
func (e *Engine) RegisterBundle(b *query.Bundle) ([]int, error) {
	if b.Len() > 0 {
		if e.alpha == nil {
			e.alpha = b.Alphabet()
		} else if !e.alpha.Equal(b.Alphabet()) {
			return nil, fmt.Errorf("engine: bundle uses alphabet %v, engine interns against %v",
				b.Alphabet(), e.alpha)
		}
	}
	base := len(e.names)
	indices := make([]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		name := b.Name(i)
		if _, dup := e.byName[name]; dup {
			return nil, fmt.Errorf("engine: bundle query %q: already registered", name)
		}
		e.byName[name] = base + i
		e.names = append(e.names, name)
		e.queries = append(e.queries, b.Query(i))
		if b.Query(i) != nil {
			e.solo = append(e.solo, base+i)
		}
		indices[i] = base + i
	}
	for _, g := range b.Groups() {
		eg := engineGroup{indices: make([]int, len(g.Indices)), product: g.Product}
		for j, bi := range g.Indices {
			eg.indices[j] = base + int(bi)
		}
		e.groups = append(e.groups, eg)
	}
	// Sessions created for the old query set are stale; drop them.
	e.pool = sync.Pool{New: func() any { return e.newSession() }}
	return indices, nil
}

// Len returns the number of registered queries (product-grouped ones
// included).
func (e *Engine) Len() int { return len(e.names) }

// Names returns the registered query names in index order.
func (e *Engine) Names() []string { return append([]string(nil), e.names...) }

// Alphabet returns the shared alphabet of the registered queries (nil before
// the first registration).  Tokenizers built with it — see RunReader — emit
// events pre-interned for the engine.
func (e *Engine) Alphabet() *alphabet.Alphabet { return e.alpha }

// Result reports one document pass: the per-query verdicts (indexed as
// returned by Register), the number of events consumed, and the maximum
// number of simultaneously open elements — the streaming memory bound.
type Result struct {
	Verdicts []bool
	Events   int
	MaxDepth int
}

// stepper is the event-consuming face shared by per-query runners and
// product runners: what the fan-out loop needs, acceptance excluded.
type stepper interface {
	StepCall(sym int)
	StepInternal(sym int)
	StepReturn(sym int)
	Reset()
}

// Session is the reusable per-pass state: one runner per solo query, one
// shared product runner per registered cluster, plus the shared batch
// buffer.  Obtain one with Acquire for manual event feeding, or let Run
// manage it.
type Session struct {
	engine  *Engine
	runners []query.Runner        // parallel to engine.solo
	prods   []query.ProductRunner // parallel to engine.groups
	feed    []stepper             // runners then prods: the fan-out list
	vrow    bitset.Row            // scratch: verdict demux row, widest group
	batch   []docstream.Event
	events  int
	depth   int // shared: all runners see the same calls/returns
	max     int
}

func (e *Engine) newSession() *Session {
	s := &Session{
		engine:  e,
		runners: make([]query.Runner, len(e.solo)),
		batch:   make([]docstream.Event, 0, e.batchSize),
	}
	s.feed = make([]stepper, 0, len(e.solo)+len(e.groups))
	for i, qi := range e.solo {
		s.runners[i] = e.queries[qi].NewRunner()
		s.feed = append(s.feed, s.runners[i])
	}
	maxNq := 0
	for _, g := range e.groups {
		pr := g.product.NewProductRunner()
		s.prods = append(s.prods, pr)
		s.feed = append(s.feed, pr)
		if nq := g.product.QueryCount(); nq > maxNq {
			maxNq = nq
		}
	}
	if maxNq > 0 {
		s.vrow = bitset.New(maxNq)
	}
	return s
}

// Acquire checks a reset session out of the pool.  Call Release when done to
// make its allocations available to the next pass.  A long-lived owner — a
// serve.Pool shard worker, say — may instead keep the session checked out
// across many documents, calling Reset between them, and Release only at
// shutdown.
func (e *Engine) Acquire() *Session {
	s := e.pool.Get().(*Session)
	s.Reset()
	return s
}

// Release returns a session to the pool.
func (e *Engine) Release(s *Session) { e.pool.Put(s) }

// Reset returns the session to the start of a new document, keeping every
// runner and buffer allocation.  Sessions from Acquire are already reset.
func (s *Session) Reset() {
	for _, r := range s.feed {
		r.Reset()
	}
	s.batch = s.batch[:0]
	s.events, s.depth, s.max = 0, 0, 0
}

// Feed buffers one event, fanning the batch out to the runners once it
// fills.  Result flushes any buffered tail, so intermediate Result calls
// see every event fed so far.
//
// Uninterned events (Sym == 0) are interned against the engine's shared
// alphabet at flush time.  Pre-interned events are trusted as-is: they must
// have been interned against Engine.Alphabet() (an interning tokenizer bound
// to any other alphabet yields in-range but wrong symbol IDs, and silently
// wrong verdicts).
//
//nwvet:hotpath
func (s *Session) Feed(e docstream.Event) {
	s.batch = append(s.batch, e)
	if len(s.batch) >= cap(s.batch) {
		s.flush()
	}
}

// feedRunner replays the interned batch into one runner — per-query or
// product, the dispatch is identical.
//
//nwvet:hotpath
func feedRunner(r stepper, batch []docstream.Event) {
	for _, e := range batch {
		sym := e.Sym - 1
		switch e.Kind {
		case nestedword.Call:
			r.StepCall(sym)
		case nestedword.Return:
			r.StepReturn(sym)
		default:
			r.StepInternal(sym)
		}
	}
}

// flush interns the buffered batch against the shared alphabet, applies it
// to every runner, updates the shared depth tracking, and empties the
// buffer.
func (s *Session) flush() {
	if len(s.batch) == 0 {
		return
	}
	// Intern once per event; sources that pre-intern (the engine's own
	// tokenizers, generators bound to the alphabet) skip even this lookup.
	if alpha := s.engine.alpha; alpha != nil {
		for i := range s.batch {
			if s.batch[i].Sym == 0 {
				s.batch[i] = s.batch[i].Interned(alpha)
			}
		}
	}
	w := s.engine.workers
	if w > len(s.feed) {
		w = len(s.feed)
	}
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	if w <= 1 {
		for _, r := range s.feed {
			feedRunner(r, s.batch)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(s.feed) + w - 1) / w
		for lo := 0; lo < len(s.feed); lo += chunk {
			hi := lo + chunk
			if hi > len(s.feed) {
				hi = len(s.feed)
			}
			wg.Add(1)
			go func(rs []stepper) {
				defer wg.Done()
				for _, r := range rs {
					feedRunner(r, s.batch)
				}
			}(s.feed[lo:hi])
		}
		wg.Wait()
	}
	// Depth depends only on the event kinds, so it is tracked once for the
	// whole session rather than per runner.
	for _, e := range s.batch {
		switch e.Kind {
		case nestedword.Call:
			s.depth++
			if s.depth > s.max {
				s.max = s.depth
			}
		case nestedword.Return:
			if s.depth > 0 {
				s.depth--
			}
		}
	}
	s.events += len(s.batch)
	s.batch = s.batch[:0]
}

// Result snapshots the verdicts for the events consumed so far, viewed as a
// complete nested word.
func (s *Session) Result() *Result {
	s.flush()
	e := s.engine
	res := &Result{
		Verdicts: make([]bool, len(e.names)),
		Events:   s.events,
		MaxDepth: s.max,
	}
	for i, r := range s.runners {
		res.Verdicts[e.solo[i]] = r.Accepting()
	}
	for gi, pr := range s.prods {
		pr.Verdicts(s.vrow)
		for j, idx := range e.groups[gi].indices {
			res.Verdicts[idx] = s.vrow.Has(j)
		}
	}
	return res
}

// Run streams the whole source through this session: every registered query
// is evaluated in the same single pass, and the event stream is never
// stored.  The session must be at the start of a document (fresh from
// Acquire, or Reset by its owner); on error the session is left mid-stream
// and must be Reset before reuse.
//
//nwvet:hotpath
func (s *Session) Run(src EventSource) (*Result, error) {
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.batch = append(s.batch, ev)
		if len(s.batch) == cap(s.batch) {
			s.flush()
		}
	}
	s.flush()
	return s.Result(), nil
}

// Run streams the whole source through a pooled session: every registered
// query is evaluated in the same single pass, and the event stream is never
// stored.  It is safe to call concurrently; each call uses its own session.
func (e *Engine) Run(src EventSource) (*Result, error) {
	s := e.Acquire()
	defer e.Release(s)
	return s.Run(src)
}

// RunReader tokenizes the reader — interning every label against the
// engine's shared alphabet at the edge — and runs the pass: the end-to-end
// streaming path from raw bytes to verdicts.
func (e *Engine) RunReader(r io.Reader) (*Result, error) {
	if e.alpha == nil {
		return e.Run(docstream.NewTokenizer(r))
	}
	return e.Run(docstream.NewInterningTokenizer(r, e.alpha))
}

// RunEvents runs the pass over an in-memory event slice.  Events carrying a
// pre-interned Sym must have been interned against Engine.Alphabet(); see
// Session.Feed.
func (e *Engine) RunEvents(events []docstream.Event) (*Result, error) {
	return e.Run(&sliceSource{events: events})
}

// Verdict looks up a query's verdict by name through the engine's name
// index.
func (r *Result) Verdict(e *Engine, name string) (bool, error) {
	i, ok := e.byName[name]
	if !ok {
		return false, fmt.Errorf("engine: no query named %q", name)
	}
	return r.Verdicts[i], nil
}
