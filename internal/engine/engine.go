// Package engine evaluates many compiled nested-word-automaton queries over
// one shared event stream in a single left-to-right pass.
//
// The paper's headline systems claim (Section 3.2) is that a deterministic
// NWA answers a document query in one streaming pass with memory bounded by
// the document depth.  This package lifts that claim from one query to N:
// an Engine holds N compiled DNWAs (typically built by internal/query) and a
// Session holds one lightweight runner per query — a linear state plus a
// stack of hierarchical states.  Events read from the source are fanned out
// to every runner in fixed-size batches, so each query observes the same
// single pass and the stream is never materialized; total memory is
// O(depth · N) plus one constant-size batch buffer, independent of the
// document length.
//
// Sessions are pooled: serving many documents against the same query set
// reuses the runner state and batch buffer allocation-free, which is what a
// production front-end answering repeated requests needs.
package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// EventSource yields a document's SAX-style events one at a time.  Next
// returns io.EOF at the clean end of the stream; any other error aborts the
// pass.  *docstream.Tokenizer satisfies this interface directly.
type EventSource interface {
	Next() (docstream.Event, error)
}

// Engine is an immutable set of registered queries.  Build it once with
// Register, then call Run (safe for concurrent use) for each document.
type Engine struct {
	names   []string
	queries []*nwa.DNWA

	batchSize int
	workers   int

	pool sync.Pool // *Session
}

// Option configures an Engine.
type Option func(*Engine)

// WithBatchSize sets how many events are read from the source before being
// fanned out to the runners (default 1024).  Larger batches amortize the
// per-batch bookkeeping; the buffer stays constant-size either way.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithWorkers sets how many goroutines share the runners during fan-out
// (default 1, i.e. sequential).  Runners are independent, so each batch can
// be applied to disjoint runner subsets in parallel; this pays off once the
// per-event automaton work dominates the per-batch synchronization, e.g.
// for many queries with large product automata.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// New creates an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{batchSize: 1024, workers: 1}
	for _, o := range opts {
		o(e)
	}
	e.pool.New = func() any { return e.newSession() }
	return e
}

// Register adds a compiled query under a display name and returns its index
// into Result.Verdicts.  Register must not be called concurrently with Run.
func (e *Engine) Register(name string, q *nwa.DNWA) int {
	e.names = append(e.names, name)
	e.queries = append(e.queries, q)
	// Sessions created for the old query set are stale; drop them.
	e.pool = sync.Pool{New: func() any { return e.newSession() }}
	return len(e.queries) - 1
}

// Len returns the number of registered queries.
func (e *Engine) Len() int { return len(e.queries) }

// Names returns the registered query names in index order.
func (e *Engine) Names() []string { return append([]string(nil), e.names...) }

// Result reports one document pass: the per-query verdicts (indexed as
// returned by Register), the number of events consumed, and the maximum
// number of simultaneously open elements — the streaming memory bound.
type Result struct {
	Verdicts []bool
	Events   int
	MaxDepth int
}

// runner is the per-query streaming state: the current linear state and the
// hierarchical states of the currently open elements.  It mirrors
// docstream.StreamingRunner but lives inside a pooled session.
type runner struct {
	a     *nwa.DNWA
	state int
	stack []int
}

func (r *runner) feed(e docstream.Event) {
	switch e.Kind {
	case nestedword.Call:
		lin, hier := r.a.StepCall(r.state, e.Label)
		r.stack = append(r.stack, hier)
		r.state = lin
	case nestedword.Return:
		hier := r.a.Start()
		if n := len(r.stack); n > 0 {
			hier = r.stack[n-1]
			r.stack = r.stack[:n-1]
		}
		r.state = r.a.StepReturn(r.state, hier, e.Label)
	default:
		r.state = r.a.StepInternal(r.state, e.Label)
	}
}

// Session is the reusable per-pass state: one runner per query plus the
// shared batch buffer.  Obtain one with Acquire for manual event feeding, or
// let Run manage it.
type Session struct {
	engine  *Engine
	runners []runner
	batch   []docstream.Event
	events  int
	depth   int // shared: all runners see the same calls/returns
	max     int
}

func (e *Engine) newSession() *Session {
	s := &Session{
		engine:  e,
		runners: make([]runner, len(e.queries)),
		batch:   make([]docstream.Event, 0, e.batchSize),
	}
	for i, q := range e.queries {
		s.runners[i] = runner{a: q, state: q.Start()}
	}
	return s
}

// Acquire takes a reset session from the pool.  Call Release when done to
// make its allocations available to the next pass.
func (e *Engine) Acquire() *Session {
	s := e.pool.Get().(*Session)
	s.reset()
	return s
}

// Release returns a session to the pool.
func (e *Engine) Release(s *Session) { e.pool.Put(s) }

func (s *Session) reset() {
	for i := range s.runners {
		s.runners[i].state = s.runners[i].a.Start()
		s.runners[i].stack = s.runners[i].stack[:0]
	}
	s.batch = s.batch[:0]
	s.events, s.depth, s.max = 0, 0, 0
}

// Feed buffers one event, fanning the batch out to the runners once it
// fills.  Result flushes any buffered tail, so intermediate Result calls
// see every event fed so far.
func (s *Session) Feed(e docstream.Event) {
	s.batch = append(s.batch, e)
	if len(s.batch) >= cap(s.batch) {
		s.flush()
	}
}

// flush applies the buffered batch to every runner and updates the shared
// depth tracking, then empties the buffer.
func (s *Session) flush() {
	if len(s.batch) == 0 {
		return
	}
	w := s.engine.workers
	if w > len(s.runners) {
		w = len(s.runners)
	}
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	if w <= 1 {
		for i := range s.runners {
			r := &s.runners[i]
			for _, e := range s.batch {
				r.feed(e)
			}
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(s.runners) + w - 1) / w
		for lo := 0; lo < len(s.runners); lo += chunk {
			hi := lo + chunk
			if hi > len(s.runners) {
				hi = len(s.runners)
			}
			wg.Add(1)
			go func(rs []runner) {
				defer wg.Done()
				for i := range rs {
					r := &rs[i]
					for _, e := range s.batch {
						r.feed(e)
					}
				}
			}(s.runners[lo:hi])
		}
		wg.Wait()
	}
	// Depth depends only on the event kinds, so it is tracked once for the
	// whole session rather than per runner.
	for _, e := range s.batch {
		switch e.Kind {
		case nestedword.Call:
			s.depth++
			if s.depth > s.max {
				s.max = s.depth
			}
		case nestedword.Return:
			if s.depth > 0 {
				s.depth--
			}
		}
	}
	s.events += len(s.batch)
	s.batch = s.batch[:0]
}

// Result snapshots the verdicts for the events consumed so far, viewed as a
// complete nested word.
func (s *Session) Result() *Result {
	s.flush()
	res := &Result{
		Verdicts: make([]bool, len(s.runners)),
		Events:   s.events,
		MaxDepth: s.max,
	}
	for i := range s.runners {
		res.Verdicts[i] = s.runners[i].a.IsAccepting(s.runners[i].state)
	}
	return res
}

// Run streams the whole source through a pooled session: every registered
// query is evaluated in the same single pass, and the event stream is never
// stored.  It is safe to call concurrently; each call uses its own session.
func (e *Engine) Run(src EventSource) (*Result, error) {
	s := e.Acquire()
	defer e.Release(s)
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.batch = append(s.batch, ev)
		if len(s.batch) == cap(s.batch) {
			s.flush()
		}
	}
	s.flush()
	return s.Result(), nil
}

// RunReader tokenizes the reader and runs the pass — the end-to-end
// streaming path from raw bytes to verdicts.
func (e *Engine) RunReader(r io.Reader) (*Result, error) {
	return e.Run(docstream.NewTokenizer(r))
}

// RunEvents runs the pass over an in-memory event slice.
func (e *Engine) RunEvents(events []docstream.Event) (*Result, error) {
	return e.Run(&sliceSource{events: events})
}

// Verdict looks up a query's verdict by name.
func (r *Result) Verdict(e *Engine, name string) (bool, error) {
	for i, n := range e.names {
		if n == name {
			return r.Verdicts[i], nil
		}
	}
	return false, fmt.Errorf("engine: no query named %q", name)
}
