package engine_test

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nwa"
	"repro/internal/query"
)

// testQueries builds a small mixed query set over {a, b, c}.
func testQueries(alpha *alphabet.Alphabet) (names []string, queries []*nwa.DNWA) {
	names = []string{"well-formed", "//a//b", "order a,c", "contains b"}
	queries = []*nwa.DNWA{
		query.WellFormed(alpha),
		query.PathQuery(alpha, "a", "b"),
		query.LinearOrder(alpha, "a", "c"),
		query.ContainsLabel(alpha, "b"),
	}
	return names, queries
}

// TestDifferentialAgainstAccepts checks the ISSUE's differential criterion:
// on ≥ 1000 random nested words — including words with pending calls and
// returns — the engine's verdicts and a StreamingRunner's verdicts are
// identical to DNWA.Accepts for every query.
func TestDifferentialAgainstAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New(engine.WithBatchSize(16)) // small batches exercise flushing
	for i, q := range queries {
		eng.Register(names[i], q)
	}
	labels := []string{"a", "b", "c"}
	const trials = 1200
	pending := 0
	for trial := 0; trial < trials; trial++ {
		var n = generator.RandomNestedWord(rng, rng.Intn(60), labels)
		if trial%3 == 0 {
			// Well-matched documents as well, so both shapes are covered.
			n = generator.RandomDocument(rng, 2+rng.Intn(60), 6, labels)
		}
		if !n.IsWellMatched() {
			pending++
		}
		res, err := eng.Run(engine.Word(n))
		if err != nil {
			t.Fatalf("trial %d: engine.Run: %v", trial, err)
		}
		if res.Events != n.Len() {
			t.Fatalf("trial %d: consumed %d events, want %d", trial, res.Events, n.Len())
		}
		for i, q := range queries {
			want := q.Accepts(n)
			if res.Verdicts[i] != want {
				t.Fatalf("trial %d: engine verdict for %s = %v, Accepts = %v on %v",
					trial, names[i], res.Verdicts[i], want, n)
			}
			r := docstream.NewStreamingRunner(q)
			for j := 0; j < n.Len(); j++ {
				r.Feed(docstream.Event{Kind: n.KindAt(j), Label: n.SymbolAt(j)})
			}
			if r.Accepting() != want {
				t.Fatalf("trial %d: StreamingRunner verdict for %s = %v, Accepts = %v on %v",
					trial, names[i], r.Accepting(), want, n)
			}
		}
	}
	if pending == 0 {
		t.Fatalf("no words with pending calls/returns were generated")
	}
}

// TestParallelWorkersMatchSequential checks that the goroutine fan-out path
// computes the same verdicts as the sequential path.
func TestParallelWorkersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	seq := engine.New()
	par := engine.New(engine.WithWorkers(4), engine.WithBatchSize(64))
	for i, q := range queries {
		seq.Register(names[i], q)
		par.Register(names[i], q)
	}
	for trial := 0; trial < 50; trial++ {
		n := generator.RandomDocument(rng, 200, 8, []string{"a", "b", "c"})
		a, err := seq.Run(engine.Word(n))
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Run(engine.Word(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Verdicts {
			if a.Verdicts[i] != b.Verdicts[i] {
				t.Fatalf("trial %d: worker fan-out disagrees on %s", trial, names[i])
			}
		}
	}
}

// TestMillionEventSinglePass is the acceptance run: ≥ 4 simultaneous queries
// over a ≥ 1M-event generated document, streamed in one pass.  The document
// is produced incrementally, so nothing proportional to its length is ever
// held in memory; the pooled second pass allocates (next to) nothing.
func TestMillionEventSinglePass(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a million events")
	}
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New()
	for i, q := range queries {
		eng.Register(names[i], q)
	}
	labels := []string{"a", "b", "c"}
	const size = 1_000_000
	res, err := eng.Run(generator.NewDocumentStream(99, size, 40, labels))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < size {
		t.Fatalf("streamed %d events, want ≥ %d", res.Events, size)
	}
	if res.MaxDepth > 40 {
		t.Fatalf("depth %d exceeds the generator bound", res.MaxDepth)
	}
	// The pooled re-run must not allocate per event: everything it needs —
	// runners, stacks, batch buffer — is reused from the first pass.
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := eng.Run(generator.NewDocumentStream(99, size, 40, labels)); err != nil {
			t.Fatal(err)
		}
	})
	// The generator itself allocates its RNG and stack; allow a small
	// constant budget, far below one allocation per event.
	if allocs > 100 {
		t.Fatalf("pooled pass allocates %v objects; the event stream is being buffered somewhere", allocs)
	}
	// Cross-check the verdicts against the serial runners on the same seed.
	for i, q := range queries {
		r := docstream.NewStreamingRunner(q)
		src := generator.NewDocumentStream(99, size, 40, labels)
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			r.Feed(e)
		}
		if r.Accepting() != res.Verdicts[i] {
			t.Fatalf("query %s: engine %v, serial %v", names[i], res.Verdicts[i], r.Accepting())
		}
	}
}

// TestRunReader drives the full pipeline: raw bytes → incremental tokenizer
// → engine, with no intermediate event slice.
func TestRunReader(t *testing.T) {
	doc := `<catalog> <book> <title> nested words </title> </book> <misc> stray </misc> </catalog>`
	alpha := alphabet.New("catalog", "book", "title", "misc", "nested", "words", "stray")
	eng := engine.New()
	eng.Register("well-formed", query.WellFormed(alpha))
	eng.Register("//book//title", query.PathQuery(alpha, "book", "title"))
	eng.Register("//misc//title", query.PathQuery(alpha, "misc", "title"))
	res, err := eng.RunReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts[0] || !res.Verdicts[1] || res.Verdicts[2] {
		t.Fatalf("verdicts = %v, want [true true false]", res.Verdicts)
	}
	if res.MaxDepth != 3 {
		t.Fatalf("max depth = %d, want 3", res.MaxDepth)
	}
	if v, err := res.Verdict(eng, "//book//title"); err != nil || !v {
		t.Fatalf("Verdict lookup = %v, %v", v, err)
	}
	if _, err := res.Verdict(eng, "nope"); err == nil {
		t.Fatalf("Verdict of an unknown name should fail")
	}
}

// TestSessionFeed exercises the manual session API used by cmd/nwquery.
func TestSessionFeed(t *testing.T) {
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New()
	for i, q := range queries {
		eng.Register(names[i], q)
	}
	n := generator.RandomDocument(rand.New(rand.NewSource(3)), 120, 6, []string{"a", "b", "c"})
	s := eng.Acquire()
	defer eng.Release(s)
	for i := 0; i < n.Len(); i++ {
		s.Feed(docstream.Event{Kind: n.KindAt(i), Label: n.SymbolAt(i)})
	}
	res := s.Result()
	for i, q := range queries {
		if res.Verdicts[i] != q.Accepts(n) {
			t.Fatalf("session verdict for %s diverges from Accepts", names[i])
		}
	}
}
