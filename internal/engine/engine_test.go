package engine_test

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nwa"
	"repro/internal/query"
)

// testQueries builds a small mixed query set over {a, b, c}.
func testQueries(alpha *alphabet.Alphabet) (names []string, queries []*nwa.DNWA) {
	names = []string{"well-formed", "//a//b", "order a,c", "contains b"}
	queries = []*nwa.DNWA{
		query.WellFormed(alpha),
		query.PathQuery(alpha, "a", "b"),
		query.LinearOrder(alpha, "a", "c"),
		query.ContainsLabel(alpha, "b"),
	}
	return names, queries
}

// TestDifferentialAgainstAccepts checks the ISSUE's differential criterion:
// on ≥ 1000 random nested words — including words with pending calls and
// returns — the engine's verdicts and a StreamingRunner's verdicts are
// identical to DNWA.Accepts for every query.
func TestDifferentialAgainstAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New(engine.WithBatchSize(16)) // small batches exercise flushing
	for i, q := range queries {
		eng.Register(names[i], q)
	}
	labels := []string{"a", "b", "c"}
	const trials = 1200
	pending := 0
	for trial := 0; trial < trials; trial++ {
		var n = generator.RandomNestedWord(rng, rng.Intn(60), labels)
		if trial%3 == 0 {
			// Well-matched documents as well, so both shapes are covered.
			n = generator.RandomDocument(rng, 2+rng.Intn(60), 6, labels)
		}
		if !n.IsWellMatched() {
			pending++
		}
		res, err := eng.Run(engine.Word(n))
		if err != nil {
			t.Fatalf("trial %d: engine.Run: %v", trial, err)
		}
		if res.Events != n.Len() {
			t.Fatalf("trial %d: consumed %d events, want %d", trial, res.Events, n.Len())
		}
		for i, q := range queries {
			want := q.Accepts(n)
			if res.Verdicts[i] != want {
				t.Fatalf("trial %d: engine verdict for %s = %v, Accepts = %v on %v",
					trial, names[i], res.Verdicts[i], want, n)
			}
			r := docstream.NewStreamingRunner(q)
			for j := 0; j < n.Len(); j++ {
				r.Feed(docstream.Event{Kind: n.KindAt(j), Label: n.SymbolAt(j)})
			}
			if r.Accepting() != want {
				t.Fatalf("trial %d: StreamingRunner verdict for %s = %v, Accepts = %v on %v",
					trial, names[i], r.Accepting(), want, n)
			}
		}
	}
	if pending == 0 {
		t.Fatalf("no words with pending calls/returns were generated")
	}
}

// TestParallelWorkersMatchSequential checks that the goroutine fan-out path
// computes the same verdicts as the sequential path.
func TestParallelWorkersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	seq := engine.New()
	par := engine.New(engine.WithWorkers(4), engine.WithBatchSize(64))
	for i, q := range queries {
		seq.Register(names[i], q)
		par.Register(names[i], q)
	}
	for trial := 0; trial < 50; trial++ {
		n := generator.RandomDocument(rng, 200, 8, []string{"a", "b", "c"})
		a, err := seq.Run(engine.Word(n))
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Run(engine.Word(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Verdicts {
			if a.Verdicts[i] != b.Verdicts[i] {
				t.Fatalf("trial %d: worker fan-out disagrees on %s", trial, names[i])
			}
		}
	}
}

// TestMillionEventSinglePass is the acceptance run: ≥ 4 simultaneous queries
// over a ≥ 1M-event generated document, streamed in one pass.  The document
// is produced incrementally, so nothing proportional to its length is ever
// held in memory; the pooled second pass allocates (next to) nothing.
func TestMillionEventSinglePass(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a million events")
	}
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New()
	for i, q := range queries {
		eng.Register(names[i], q)
	}
	labels := []string{"a", "b", "c"}
	const size = 1_000_000
	res, err := eng.Run(generator.NewDocumentStream(99, size, 40, labels))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < size {
		t.Fatalf("streamed %d events, want ≥ %d", res.Events, size)
	}
	if res.MaxDepth > 40 {
		t.Fatalf("depth %d exceeds the generator bound", res.MaxDepth)
	}
	// The pooled re-run must not allocate per event: everything it needs —
	// runners, stacks, batch buffer — is reused from the first pass.
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := eng.Run(generator.NewDocumentStream(99, size, 40, labels)); err != nil {
			t.Fatal(err)
		}
	})
	// The generator itself allocates its RNG and stack; allow a small
	// constant budget, far below one allocation per event.
	if allocs > 100 {
		t.Fatalf("pooled pass allocates %v objects; the event stream is being buffered somewhere", allocs)
	}
	// Cross-check the verdicts against the serial runners on the same seed.
	for i, q := range queries {
		r := docstream.NewStreamingRunner(q)
		src := generator.NewDocumentStream(99, size, 40, labels)
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			r.Feed(e)
		}
		if r.Accepting() != res.Verdicts[i] {
			t.Fatalf("query %s: engine %v, serial %v", names[i], res.Verdicts[i], r.Accepting())
		}
	}
}

// TestRunReader drives the full pipeline: raw bytes → incremental tokenizer
// → engine, with no intermediate event slice.
func TestRunReader(t *testing.T) {
	doc := `<catalog> <book> <title> nested words </title> </book> <misc> stray </misc> </catalog>`
	alpha := alphabet.New("catalog", "book", "title", "misc", "nested", "words", "stray")
	eng := engine.New()
	eng.Register("well-formed", query.WellFormed(alpha))
	eng.Register("//book//title", query.PathQuery(alpha, "book", "title"))
	eng.Register("//misc//title", query.PathQuery(alpha, "misc", "title"))
	res, err := eng.RunReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts[0] || !res.Verdicts[1] || res.Verdicts[2] {
		t.Fatalf("verdicts = %v, want [true true false]", res.Verdicts)
	}
	if res.MaxDepth != 3 {
		t.Fatalf("max depth = %d, want 3", res.MaxDepth)
	}
	if v, err := res.Verdict(eng, "//book//title"); err != nil || !v {
		t.Fatalf("Verdict lookup = %v, %v", v, err)
	}
	if _, err := res.Verdict(eng, "nope"); err == nil {
		t.Fatalf("Verdict of an unknown name should fail")
	}
}

// TestRegisterErrors checks the registration invariants: duplicate names and
// alphabet mismatches are rejected, and a rejected registration leaves the
// engine unchanged.
func TestRegisterErrors(t *testing.T) {
	alpha := alphabet.New("a", "b")
	other := alphabet.New("a", "b", "c")
	eng := engine.New()
	if _, err := eng.Register("well-formed", query.WellFormed(alpha)); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if _, err := eng.Register("well-formed", query.ContainsLabel(alpha, "a")); err == nil {
		t.Fatal("duplicate query name was accepted")
	}
	if _, err := eng.Register("other-alphabet", query.WellFormed(other)); err == nil {
		t.Fatal("query over a different alphabet was accepted")
	}
	if _, err := eng.RegisterQuery("nnwa-other-alphabet",
		query.CompileN(query.WellFormed(other).ToNondeterministic())); err == nil {
		t.Fatal("NNWA query over a different alphabet was accepted")
	}
	if eng.Len() != 1 {
		t.Fatalf("failed registrations changed the engine: Len = %d, want 1", eng.Len())
	}
	if !eng.Alphabet().Equal(alpha) {
		t.Fatalf("engine alphabet = %v, want %v", eng.Alphabet(), alpha)
	}
}

// randomNNWA builds a small random nondeterministic NWA over alpha.
func randomNNWA(rng *rand.Rand, alpha *alphabet.Alphabet, states int) *nwa.NNWA {
	a := nwa.NewNNWA(alpha, states)
	a.AddStart(rng.Intn(states))
	a.AddAccept(rng.Intn(states))
	syms := alpha.Symbols()
	edges := 4 + rng.Intn(6*states)
	for i := 0; i < edges; i++ {
		sym := syms[rng.Intn(len(syms))]
		switch rng.Intn(3) {
		case 0:
			a.AddInternal(rng.Intn(states), sym, rng.Intn(states))
		case 1:
			a.AddCall(rng.Intn(states), sym, rng.Intn(states), rng.Intn(states))
		default:
			a.AddReturn(rng.Intn(states), rng.Intn(states), sym, rng.Intn(states))
		}
	}
	return a
}

// TestNNWAQueriesInEngine is the ISSUE's NNWA-in-engine differential: each
// nondeterministic query is registered twice — as a compiled NNWA state-set
// runner and as its determinization compiled to a DNWA runner — and ≥1000
// random nested words (including words with pending calls and returns) must
// get identical verdicts from both, in the same fan-out pass.
func TestNNWAQueriesInEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alpha := alphabet.New("a", "b")
	eng := engine.New(engine.WithBatchSize(32))
	const automata = 4
	for i := 0; i < automata; i++ {
		a := randomNNWA(rng, alpha, 2+rng.Intn(3))
		eng.MustRegisterQuery(fmt.Sprintf("nnwa-%d", i), query.CompileN(a))
		eng.MustRegister(fmt.Sprintf("det-%d", i), a.Determinize())
	}
	labels := []string{"a", "b"}
	const trials = 1100
	pending := 0
	for trial := 0; trial < trials; trial++ {
		n := generator.RandomNestedWord(rng, rng.Intn(40), labels)
		if trial%3 == 0 {
			n = generator.RandomDocument(rng, 2+rng.Intn(40), 5, labels)
		}
		if !n.IsWellMatched() {
			pending++
		}
		res, err := eng.Run(engine.Word(n))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < automata; i++ {
			nv, _ := res.Verdict(eng, fmt.Sprintf("nnwa-%d", i))
			dv, _ := res.Verdict(eng, fmt.Sprintf("det-%d", i))
			if nv != dv {
				t.Fatalf("trial %d, automaton %d: NNWA runner %v, Determinize+DNWA %v on %v",
					trial, i, nv, dv, n)
			}
		}
	}
	if pending == 0 {
		t.Fatal("no words with pending calls/returns were generated")
	}
}

// TestCompiledSessionAllocationFree is the ISSUE's bounded-allocation check:
// once warm, a compiled-DNWA session processes events without allocating —
// the only allocations in a pass are the constant-size Result snapshot.
func TestCompiledSessionAllocationFree(t *testing.T) {
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New()
	for i, q := range queries {
		eng.MustRegister(names[i], q)
	}
	// Pre-interned in-memory events, as an edge tokenizer would hand over.
	const size = 20000
	src := generator.NewDocumentStream(5, size, 16, []string{"a", "b", "c"})
	var events []docstream.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e.Interned(alpha))
	}
	s := eng.Acquire()
	defer eng.Release(s)
	feed := func() {
		for _, e := range events {
			s.Feed(e)
		}
		if s.Result() == nil {
			t.Fatal("nil result")
		}
	}
	feed() // warm-up: grows the runner stacks and the batch buffer
	allocs := testing.AllocsPerRun(5, feed)
	// Result() allocates its snapshot (a Result and a Verdicts slice); the
	// per-event path must contribute nothing on top of that.
	if allocs > 4 {
		t.Fatalf("warm compiled session allocates %v objects per %d-event pass, want ≤ 4", allocs, len(events))
	}
}

// TestSessionFeed exercises the manual session API used by cmd/nwquery.
func TestSessionFeed(t *testing.T) {
	alpha := alphabet.New("a", "b", "c")
	names, queries := testQueries(alpha)
	eng := engine.New()
	for i, q := range queries {
		eng.Register(names[i], q)
	}
	n := generator.RandomDocument(rand.New(rand.NewSource(3)), 120, 6, []string{"a", "b", "c"})
	s := eng.Acquire()
	defer eng.Release(s)
	for i := 0; i < n.Len(); i++ {
		s.Feed(docstream.Event{Kind: n.KindAt(i), Label: n.SymbolAt(i)})
	}
	res := s.Result()
	for i, q := range queries {
		if res.Verdicts[i] != q.Accepts(n) {
			t.Fatalf("session verdict for %s diverges from Accepts", names[i])
		}
	}
}
