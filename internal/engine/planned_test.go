package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/query"
	"repro/internal/query/plan"
)

// plannedTestBundle builds an unplanned bundle of 6 deterministic and 3
// nondeterministic queries over {a, b, c}.
func plannedTestBundle(t *testing.T) *query.Bundle {
	t.Helper()
	alpha := alphabet.New("a", "b", "c")
	b := query.NewBundle(alpha)
	add := func(name string, q query.Query) {
		t.Helper()
		if err := b.Add(name, q); err != nil {
			t.Fatal(err)
		}
	}
	labels := []string{"a", "b", "c"}
	add("well-formed", query.Compile(query.WellFormed(alpha)))
	add("//a//b", query.Compile(query.PathQuery(alpha, "a", "b")))
	add("order a,c", query.Compile(query.LinearOrder(alpha, "a", "c")))
	for _, l := range labels {
		add("contains "+l, query.Compile(query.ContainsLabel(alpha, l)))
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("nnwa-%d", i), query.CompileN(randomNNWA(rng, alpha, 2+rng.Intn(3))))
	}
	return b
}

// TestPlannedBundleDemux is the tentpole differential at the engine layer: a
// planner-produced bundle registered via RegisterBundle — product runners
// demuxing verdicts through their accept bitmasks — must agree with the same
// queries fanned out one runner each, on random words including pending
// calls/returns and out-of-alphabet labels.
func TestPlannedBundleDemux(t *testing.T) {
	src := plannedTestBundle(t)
	planned, dec, err := plan.Bundle(src, plan.Options{ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Groups) == 0 {
		t.Fatal("planner produced no product groups; the demux path is untested")
	}

	// Round-trip through the serialized form so the engine sees exactly what
	// a served bundle would load.
	loaded, err := query.UnmarshalBundle(planned.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	prod := engine.New(engine.WithBatchSize(16))
	if _, err := prod.RegisterBundle(loaded); err != nil {
		t.Fatal(err)
	}
	fan := engine.New(engine.WithBatchSize(16))
	if _, err := fan.RegisterBundle(src); err != nil {
		t.Fatal(err)
	}
	par := engine.New(engine.WithWorkers(4), engine.WithBatchSize(32))
	if _, err := par.RegisterBundle(loaded); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	labels := []string{"a", "b", "c", "zz"} // zz exercises the OOA column
	const trials = 1200
	pending := 0
	for trial := 0; trial < trials; trial++ {
		n := generator.RandomNestedWord(rng, rng.Intn(50), labels)
		if trial%3 == 0 {
			n = generator.RandomDocument(rng, 2+rng.Intn(50), 6, labels[:3])
		}
		if !n.IsWellMatched() {
			pending++
		}
		pv, err := prod.Run(engine.Word(n))
		if err != nil {
			t.Fatalf("trial %d: product engine: %v", trial, err)
		}
		fv, err := fan.Run(engine.Word(n))
		if err != nil {
			t.Fatalf("trial %d: fan-out engine: %v", trial, err)
		}
		wv, err := par.Run(engine.Word(n))
		if err != nil {
			t.Fatalf("trial %d: worker engine: %v", trial, err)
		}
		for i, name := range prod.Names() {
			want := query.RunWord(src.Query(i).NewRunner(), src.Alphabet(), n)
			if pv.Verdicts[i] != want {
				t.Fatalf("trial %d, query %q: product demux %v, serial %v on %v",
					trial, name, pv.Verdicts[i], want, n)
			}
			if fv.Verdicts[i] != want {
				t.Fatalf("trial %d, query %q: fan-out %v, serial %v", trial, name, fv.Verdicts[i], want)
			}
			if wv.Verdicts[i] != want {
				t.Fatalf("trial %d, query %q: worker fan-out %v, serial %v", trial, name, wv.Verdicts[i], want)
			}
		}
	}
	if pending == 0 {
		t.Fatal("no words with pending calls/returns were generated")
	}
}

// TestPlannedSessionAllocationFree extends the bounded-allocation contract to
// product runners: a warm session over a planned bundle must not allocate on
// the per-event path.
func TestPlannedSessionAllocationFree(t *testing.T) {
	src := plannedTestBundle(t)
	planned, _, err := plan.Bundle(src, plan.Options{ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	if _, err := eng.RegisterBundle(planned); err != nil {
		t.Fatal(err)
	}
	n := generator.RandomDocument(rand.New(rand.NewSource(8)), 5000, 12, []string{"a", "b", "c"})
	events := make([]docstream.Event, n.Len())
	for i := range events {
		events[i] = docstream.Event{Kind: n.KindAt(i), Label: n.SymbolAt(i)}.Interned(src.Alphabet())
	}
	s := eng.Acquire()
	defer eng.Release(s)
	feed := func() {
		for _, e := range events {
			s.Feed(e)
		}
		if s.Result() == nil {
			t.Fatal("nil result")
		}
	}
	feed() // warm-up
	allocs := testing.AllocsPerRun(5, feed)
	if allocs > 4 {
		t.Fatalf("warm planned session allocates %v objects per pass, want ≤ 4", allocs)
	}
}
