package engine

import (
	"io"

	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// sliceSource streams an in-memory event slice.
type sliceSource struct {
	events []docstream.Event
	pos    int
}

func (s *sliceSource) Next() (docstream.Event, error) {
	if s.pos >= len(s.events) {
		return docstream.Event{}, io.EOF
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// Events wraps an in-memory event slice as an EventSource.
func Events(events []docstream.Event) EventSource {
	return &sliceSource{events: events}
}

// wordSource streams a nested word position by position.
type wordSource struct {
	n   *nestedword.NestedWord
	pos int
}

func (s *wordSource) Next() (docstream.Event, error) {
	if s.pos >= s.n.Len() {
		return docstream.Event{}, io.EOF
	}
	e := docstream.Event{Kind: s.n.KindAt(s.pos), Label: s.n.SymbolAt(s.pos)}
	s.pos++
	return e, nil
}

// Word wraps a nested word as an EventSource; its positions stream through
// the engine exactly as the equivalent document would.
func Word(n *nestedword.NestedWord) EventSource {
	return &wordSource{n: n}
}
