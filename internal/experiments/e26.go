package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/server"
)

// E26HTTPServing measures the HTTP front-end under open-loop load: the same
// document corpus arrives on a fixed schedule — one submission every
// interval, fired whether or not earlier documents finished, the way real
// traffic arrives — twice per shard count: once as POST /v1/documents
// requests against an internal/server instance, once as direct serve.Pool
// submissions with no HTTP in the path.  The arrival interval is calibrated
// from the measured serial per-document service time so that one shard is
// oversaturated (offered load ≈ 1.5× one worker's capacity) and additional
// shards must drain the queue; the p50/p99 columns are exact percentiles
// over per-document latencies measured from the scheduled arrival instant
// (coordinated omission counted, not hidden).  The gap between the http and
// pool columns is the network front-end's tax — connection handling, JSON
// encoding, verdict-map construction; the fall of p99 as shards rise is the
// sharded pool absorbing the same offered load with real parallelism.
// Every response must carry verdicts identical to serial evaluation.
func E26HTTPServing(docs, size int) Table {
	alpha := alphabet.New(e21Labels...)

	// Compile the 8-query E21 mix into a bundle file, the artifact a real
	// deployment would serve from.
	names, queries := E21Queries(alpha, 8)
	bundle := query.NewBundle(alpha)
	for i, d := range queries {
		if err := bundle.Add(names[i], query.Compile(d)); err != nil {
			panic(err)
		}
	}
	dir, err := os.MkdirTemp("", "e26-bundle-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	bundlePath := filepath.Join(dir, "queries.nwq")
	if err := os.WriteFile(bundlePath, bundle.Marshal(), 0o644); err != nil {
		panic(err)
	}

	// Render the corpus as document text so the identical bytes travel over
	// HTTP, into pool readers, and through the serial baseline.
	rng := rand.New(rand.NewSource(e21Seed))
	corpus := make([]string, docs)
	for i := range corpus {
		corpus[i] = docstream.Render(generator.RandomDocument(rng, size, 16, e21Labels))
	}

	// Serial baseline: ground-truth verdicts and the per-document service
	// time that calibrates the open-loop arrival rate.
	serialEng := engine.New()
	{
		b, err := query.OpenBundle(bundlePath)
		if err != nil {
			panic(err)
		}
		defer b.Close()
		if _, err := serialEng.RegisterBundle(b); err != nil {
			panic(err)
		}
	}
	serialVerdicts := make([][]bool, docs)
	t0 := time.Now()
	for i, doc := range corpus {
		r, err := serialEng.RunReader(strings.NewReader(doc))
		if err != nil {
			panic(err)
		}
		serialVerdicts[i] = r.Verdicts
	}
	perDoc := time.Since(t0) / time.Duration(docs)

	// Offered load ≈ 1.5× one worker's throughput, floored so HTTP
	// connection handling on loopback is not itself the bottleneck.
	interval := perDoc * 2 / 3
	if interval < 50*time.Microsecond {
		interval = 50 * time.Microsecond
	}
	offered := 1e9 / float64(interval.Nanoseconds())

	us := func(d time.Duration) string { return ftoa(float64(d.Nanoseconds()) / 1e3) }
	rows := [][]string{}
	for _, shards := range []int{1, 2, 4, 8} {
		httpLat, httpAgree := e26HTTPRun(bundlePath, corpus, serialVerdicts, names, shards, interval)
		poolLat, poolAgree := e26PoolRun(bundlePath, corpus, serialVerdicts, shards, interval)
		rows = append(rows, []string{
			itoa(shards), ftoa(offered),
			us(percentile(httpLat, 0.50)), us(percentile(httpLat, 0.99)),
			us(percentile(poolLat, 0.50)), us(percentile(poolLat, 0.99)),
			ftoa(float64(percentile(httpLat, 0.99)) / float64(percentile(poolLat, 0.99))),
			btoa(httpAgree && poolAgree),
		})
	}
	return Table{
		Name:   "E26 (server): open-loop HTTP serving vs direct pool submission, latency vs shard count",
		Header: []string{"shards", "offered docs/s", "http p50 µs", "http p99 µs", "pool p50 µs", "pool p99 µs", "http/pool p99", "agree"},
		Rows:   rows,
	}
}

// e26Schedule fires one call per corpus document on the open-loop arrival
// schedule and returns per-document latencies measured from each document's
// scheduled arrival instant.
func e26Schedule(n int, interval time.Duration, submit func(i int) bool) ([]time.Duration, bool) {
	lat := make([]time.Duration, n)
	ok := make([]bool, n)
	start := time.Now().Add(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			due := start.Add(time.Duration(i) * interval)
			time.Sleep(time.Until(due))
			ok[i] = submit(i)
			lat[i] = time.Since(due)
		}(i)
	}
	wg.Wait()
	agree := true
	for _, o := range ok {
		agree = agree && o
	}
	return lat, agree
}

// e26HTTPRun serves the corpus over POST /v1/documents against a fresh
// server at the given shard count, on the open-loop schedule.  The queue
// depth is sized to the corpus so saturation shows up as latency, not as
// 429 rejections.
func e26HTTPRun(bundlePath string, corpus []string, want [][]bool, names []string, shards int, interval time.Duration) ([]time.Duration, bool) {
	srv, err := server.New(server.Config{
		BundlePath: bundlePath,
		Shards:     shards,
		QueueDepth: len(corpus),
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	return e26Schedule(len(corpus), interval, func(i int) bool {
		resp, err := client.Post(fmt.Sprintf("%s/v1/documents?id=doc-%d", ts.URL, i), "text/plain", strings.NewReader(corpus[i]))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return false
		}
		var res server.DocumentResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return false
		}
		for q, name := range names {
			if res.Verdicts[name] != want[i][q] {
				return false
			}
		}
		return true
	})
}

// e26PoolRun serves the corpus by direct pool submission — the same shard
// count, queue depth, and document bytes, with no HTTP in the path.
func e26PoolRun(bundlePath string, corpus []string, want [][]bool, shards int, interval time.Duration) ([]time.Duration, bool) {
	b, err := query.OpenBundle(bundlePath)
	if err != nil {
		panic(err)
	}
	defer b.Close()
	pool, err := serve.NewPoolFromBundle(b,
		serve.WithShards(shards),
		serve.WithQueueDepth(len(corpus)))
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	return e26Schedule(len(corpus), interval, func(i int) bool {
		fut, err := pool.Submit(context.Background(), fmt.Sprintf("doc-%d", i), strings.NewReader(corpus[i]))
		if err != nil {
			return false
		}
		res, err := fut.Wait(context.Background())
		if err != nil {
			return false
		}
		for q := range want[i] {
			if res.Engine.Verdicts[q] != want[i][q] {
				return false
			}
		}
		return true
	})
}

// percentile returns the exact q-quantile of the samples (nearest-rank).
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
