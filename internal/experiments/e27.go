package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/adapter"
	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/query/dsl"
)

// e27Alphabet covers the structural labels of the synthetic corpora but not
// their text tokens, so every decode exercises both the in-alphabet and the
// out-of-alphabet interning paths.
func e27Alphabet() *alphabet.Alphabet {
	return alphabet.New("library", "book", "title", "author",
		"object", "array", "main", "open", "close", "read", "write")
}

// e27Corpus synthesizes one document per adapter format, each a repetition of
// a small record shape scaled so the three bodies decode to roughly the same
// number of events — the decode work is comparable even though the byte
// syntaxes are not.
func e27Corpus(events int) map[string]string {
	// Events per record: XML 10 (2 calls, 2 returns, 6 internals), JSON 8
	// (object braces plus three key/value pairs), trace 6 (enter/exit plus
	// two two-token internal lines).
	var xml, json, trace strings.Builder
	xml.WriteString("<library>")
	for i := 0; i < events/10; i++ {
		fmt.Fprintf(&xml, "<book><title>nested words %d</title><author>alur m</author></book>", i)
	}
	xml.WriteString("</library>")
	json.WriteString("[")
	for i := 0; i < events/8; i++ {
		if i > 0 {
			json.WriteString(",")
		}
		fmt.Fprintf(&json, `{"title": "nested-words", "year": %d, "open": true}`, 2007+i%7)
	}
	json.WriteString("]")
	trace.WriteString("enter main\n")
	for i := 0; i < events/6; i++ {
		fmt.Fprintf(&trace, "enter open\nread %d\nwrite %d\nexit\n", i, i)
	}
	trace.WriteString("exit main\n")
	return map[string]string{
		"xml":   xml.String(),
		"json":  json.String(),
		"trace": trace.String(),
	}
}

// e27Engine registers the standard query mix plus a DSL-compiled set over the
// corpus labels — the compile step runs here, once, outside the measured
// decode loops, which is exactly the deployment shape the DSL is pinned to.
func e27Engine(alpha *alphabet.Alphabet) *engine.Engine {
	eng := engine.New()
	exprs, err := dsl.ParseList(
		"within book: title before author; contains title; no write after close; //library//book; well-formed")
	if err != nil {
		panic(err)
	}
	names, queries, err := dsl.Queries(alpha, exprs)
	if err != nil {
		panic(err)
	}
	for i, q := range queries {
		if _, err := eng.RegisterQuery(names[i], q); err != nil {
			panic(err)
		}
	}
	return eng
}

// e27Drain counts the events of one full decode, discarding them.
func e27Drain(src adapter.Source) (int, error) {
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// e27Measure repeats open→drain decodes of one body until enough wall time
// has accumulated to report a stable events/second figure.
func e27Measure(open func() adapter.Source) (eventsPerSec float64, events int) {
	const minWall = 25 * time.Millisecond
	total, reps := 0, 0
	t0 := time.Now()
	for time.Since(t0) < minWall || reps < 3 {
		n, err := e27Drain(open())
		if err != nil {
			panic(err)
		}
		total, events, reps = total+n, n, reps+1
	}
	return float64(total) / time.Since(t0).Seconds(), events
}

// E27AdapterThroughput measures the real-input adapters — XML, JSON, and
// enter/exit traces — against the native tokenizer they are pinned to.  Each
// format decodes a synthetic corpus of about `events` events through its
// adapter with interning against a partial alphabet, the hot configuration
// the serving paths use; the native row re-tokenizes the rendered form of the
// XML stream, so its figure is the ceiling the adapters are compared to
// (vs native = adapter rate / tokenizer rate).  The agree column re-checks
// the differential contract at experiment time: the adapted stream must equal
// its own Render+retokenize image event for event, and a DSL-compiled query
// engine must reach identical verdicts on both — false anywhere invalidates
// the row.
func E27AdapterThroughput(events int) Table {
	alpha := e27Alphabet()
	corpus := e27Corpus(events)
	eng := e27Engine(alpha)

	// Native ceiling: the tokenizer decoding the rendered XML stream.
	xmlSrc, err := adapter.New("xml", strings.NewReader(corpus["xml"]), alpha)
	if err != nil {
		panic(err)
	}
	xmlEvents := []docstream.Event{}
	for {
		e, err := xmlSrc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		xmlEvents = append(xmlEvents, e)
	}
	nativeText := docstream.Render(docstream.ToNestedWord(xmlEvents))
	nativeRate, nativeN := e27Measure(func() adapter.Source {
		return docstream.NewInterningTokenizer(strings.NewReader(nativeText), alpha)
	})

	rows := [][]string{{
		"native", itoa(len(nativeText)), itoa(nativeN),
		ftoa(nativeRate / 1e6), ftoa(1.0), btoa(true),
	}}
	for _, format := range adapter.Formats() {
		body := corpus[format]
		rate, n := e27Measure(func() adapter.Source {
			src, err := adapter.New(format, strings.NewReader(body), alpha)
			if err != nil {
				panic(err)
			}
			return src
		})
		rows = append(rows, []string{
			format, itoa(len(body)), itoa(n),
			ftoa(rate / 1e6), ftoa(rate / nativeRate),
			btoa(e27Agree(eng, alpha, format, body)),
		})
	}
	return Table{
		Name:   "E27 (adapter): XML/JSON/trace decode throughput vs the native tokenizer, differential contract re-checked",
		Header: []string{"format", "input bytes", "events", "Mevents/s", "vs native", "agree"},
		Rows:   rows,
	}
}

// e27Agree re-runs the differential contract for one body: adapter events
// must equal the Render+retokenize image exactly (kind, label, and interned
// symbol), and the engine's verdicts over the adapted stream must equal its
// verdicts over the rendered text.
func e27Agree(eng *engine.Engine, alpha *alphabet.Alphabet, format, body string) bool {
	src, err := adapter.New(format, strings.NewReader(body), alpha)
	if err != nil {
		return false
	}
	var events []docstream.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return false
		}
		events = append(events, e)
	}
	rendered := docstream.Render(docstream.ToNestedWord(events))
	retok := docstream.NewInterningTokenizer(strings.NewReader(rendered), alpha)
	for _, e := range events {
		g, err := retok.Next()
		if err != nil || g != e {
			return false
		}
	}
	if _, err := retok.Next(); err != io.EOF {
		return false
	}

	adapted, err := eng.RunEvents(events)
	if err != nil {
		return false
	}
	renderedRun, err := eng.RunReader(strings.NewReader(rendered))
	if err != nil {
		return false
	}
	for q := range adapted.Verdicts {
		if adapted.Verdicts[q] != renderedRun.Verdicts[q] {
			return false
		}
	}
	return true
}
