package experiments

import (
	"math/rand"
	"time"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/query"
	"repro/internal/query/plan"
)

// e28Labels is the 16-label document alphabet of the product-compilation
// experiment — wide enough that a 16-member ContainsLabel family exists with
// every member watching a different label.
var e28Labels = []string{
	"a", "b", "c", "d", "e", "f", "g", "h",
	"i", "j", "k", "l", "m", "n", "o", "p",
}

const e28Seed = 28

// e28Bundle builds the unplanned n-query bundle: ContainsLabel(l) for the
// first n labels.  Each member compiles to ~3 states, and the members are
// structurally similar (same shape, different watched label), so the
// n-member product has ~2^n+1 states — the multiplicative Section 3.2 cost
// the planner's budget exists to catch.
func e28Bundle(n int) *query.Bundle {
	alpha := alphabet.New(e28Labels...)
	b := query.NewBundle(alpha)
	for i := 0; i < n; i++ {
		if err := b.Add("contains "+e28Labels[i], query.Compile(query.ContainsLabel(alpha, e28Labels[i]))); err != nil {
			panic(err)
		}
	}
	return b
}

// e28Engine registers a bundle into a fresh engine.
func e28Engine(b *query.Bundle) *engine.Engine {
	eng := engine.New()
	if _, err := eng.RegisterBundle(b); err != nil {
		panic(err)
	}
	return eng
}

// e28Time runs one engine over the generated document stream, best of three
// passes after a pooled warm-up, and returns the fastest duration with its
// result.
func e28Time(eng *engine.Engine, size int) (*engine.Result, time.Duration) {
	stream := func() *generator.DocumentStream {
		return generator.NewDocumentStream(e28Seed, size, 24, e28Labels)
	}
	if _, err := eng.Run(stream()); err != nil {
		panic(err)
	}
	const reps = 3
	var res *engine.Result
	var best time.Duration
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		r, err := eng.Run(stream())
		d := time.Since(t0)
		if err != nil {
			panic(err)
		}
		if rep == 0 || d < best {
			res, best = r, d
		}
	}
	return res, best
}

// e28Agree checks all three engines against the per-query serial oracle on
// random documents and nested words — including pending calls/returns and an
// out-of-alphabet label — plus the verdicts of the timed runs against each
// other.
func e28Agree(src *query.Bundle, engines []*engine.Engine, timed []*engine.Result) bool {
	for _, r := range timed[1:] {
		for q := range timed[0].Verdicts {
			if r.Verdicts[q] != timed[0].Verdicts[q] {
				return false
			}
		}
	}
	rng := rand.New(rand.NewSource(e28Seed))
	labels := append(append([]string(nil), e28Labels[:4]...), "zz")
	alpha := src.Alphabet()
	for trial := 0; trial < 150; trial++ {
		var n *nestedword.NestedWord
		if trial%3 == 0 {
			n = generator.RandomNestedWord(rng, rng.Intn(60), labels)
		} else {
			n = generator.RandomDocument(rng, 2+rng.Intn(60), 6, labels)
		}
		events := make([]docstream.Event, n.Len())
		for i := range events {
			events[i] = docstream.Event{Kind: n.KindAt(i), Label: n.SymbolAt(i)}
		}
		for _, eng := range engines {
			res, err := eng.RunEvents(events)
			if err != nil {
				panic(err)
			}
			for q := 0; q < src.Len(); q++ {
				if res.Verdicts[q] != query.RunWord(src.Query(q).NewRunner(), alpha, n) {
					return false
				}
			}
		}
	}
	return true
}

// E28ProductCompilation measures the query planner's product compilation
// against per-query fan-out: for n structurally similar queries, one pass
// over the same generated document drives either n per-query runners
// (fan-out), one forced whole-set product (plan with ClusterSize = n — at
// n = 16 the ~2^16-state product blows the default budget and the planner
// degrades it back to fan-out, which is the crossover the state budget
// exists for), or the planner's defaults (clusters of ≤ 8, each a ~2^8-state
// product that stays within budget at every n).  The prod/plan states
// columns make the fallback visible: the forced product reports 0 states at
// n = 16.  Every mode must agree with the per-query serial oracle on random
// words with pending calls/returns and out-of-alphabet labels.
func E28ProductCompilation(size int) Table {
	rows := [][]string{}
	for _, n := range []int{2, 4, 8, 16} {
		src := e28Bundle(n)

		forced, forcedDec, err := plan.Bundle(src, plan.Options{ClusterSize: n})
		if err != nil {
			panic(err)
		}
		auto, autoDec, err := plan.Bundle(src, plan.Options{})
		if err != nil {
			panic(err)
		}

		fanEng := e28Engine(src)
		prodEng := e28Engine(forced)
		planEng := e28Engine(auto)

		fanRes, fanout := e28Time(fanEng, size)
		prodRes, product := e28Time(prodEng, size)
		planRes, planner := e28Time(planEng, size)

		agree := e28Agree(src, []*engine.Engine{fanEng, prodEng, planEng},
			[]*engine.Result{fanRes, prodRes, planRes})

		best := product
		if planner < best {
			best = planner
		}
		perEvent := func(d time.Duration) string {
			return ftoa(float64(d.Nanoseconds()) / float64(fanRes.Events))
		}
		rows = append(rows, []string{
			itoa(n), itoa(forcedDec.States), itoa(len(autoDec.Groups)), itoa(autoDec.States),
			perEvent(fanout), perEvent(product), perEvent(planner),
			ftoa(float64(fanout) / float64(best)), btoa(agree),
		})
	}
	return Table{
		Name:   "E28 (plan): product-compiled clusters vs per-query fan-out, state-budget fallback at 16 queries",
		Header: []string{"queries", "prod states", "plan groups", "plan states", "fanout ns/ev", "product ns/ev", "planner ns/ev", "speedup", "agree"},
		Rows:   rows,
	}
}
