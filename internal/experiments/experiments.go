// Package experiments computes the rows of every experiment listed in
// docs/EXPERIMENTS.md: each function reproduces one theorem, lemma, or
// figure of "Marrying Words and Trees" — or one engineering claim of the
// serving stack built on top of the reproduction — on the concrete instance
// families from the internal/generator package and returns a printable
// table.  The root bench_test.go times these computations and cmd/nwbench
// prints them; Index carries the one-line summary of each experiment shared
// by `nwbench -list` and the documentation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/pda"
	"repro/internal/pnwa"
	"repro/internal/pta"
	"repro/internal/query"
	"repro/internal/sat"
	"repro/internal/serve"
	"repro/internal/tree"
	"repro/internal/treeauto"
	"repro/internal/word"
)

// Table is one experiment's result: a title, a header, and data rows.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// String renders the table in a fixed-width layout.
func (t Table) String() string {
	out := t.Name + "\n"
	out += formatRow(t.Header)
	for _, r := range t.Rows {
		out += formatRow(r)
	}
	return out
}

func formatRow(cells []string) string {
	out := ""
	for _, c := range cells {
		out += fmt.Sprintf("%-22s", c)
	}
	return out + "\n"
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func btoa(v bool) string    { return fmt.Sprintf("%v", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.3g", v) }

// E01Encodings checks the Figure 1 examples and random round trips through
// the nw_w / w_nw and t_nw / nw_t encodings.
func E01Encodings() Table {
	rng := rand.New(rand.NewSource(1))
	figure1 := []string{"a b <a a <b a b> a> <a b a a>", "a a> <b a a> <a <a", "<a <a a> <b b> a>"}
	okFig := 0
	for _, s := range figure1 {
		n := nestedword.MustParse(s)
		if nestedword.FromTagged(n.ToTagged()).Equal(n) {
			okFig++
		}
	}
	trials, okTree := 500, 0
	for i := 0; i < trials; i++ {
		tr := generator.RandomTree(rng, 1+rng.Intn(30), []string{"a", "b"})
		back, err := tree.FromNestedWord(tree.ToNestedWord(tr))
		if err == nil && tr.Equal(back) {
			okTree++
		}
	}
	return Table{
		Name:   "E1 (Figure 1): nested-word and tree-word encodings round-trip",
		Header: []string{"check", "instances", "round-trips"},
		Rows: [][]string{
			{"figure-1 words", itoa(len(figure1)), itoa(okFig)},
			{"random trees", itoa(trials), itoa(okTree)},
		},
	}
}

// E02WeakConversion measures Theorem 1: weak NWAs with s·(|Σ|+1) states.
func E02WeakConversion() Table {
	rng := rand.New(rand.NewSource(2))
	rows := [][]string{}
	for _, s := range []int{2, 3, 4, 6} {
		d := randomDNWA(rng, s)
		w := d.ToWeak()
		equivalent := nwa.Equivalent(d, w)
		rows = append(rows, []string{
			itoa(s), itoa(d.NumStates()), itoa(w.NumStates()),
			itoa(d.NumStates() * 3), btoa(w.IsWeak()), btoa(equivalent),
		})
	}
	return Table{
		Name:   "E2 (Theorem 1): every NWA has an equivalent weak NWA with s(|Σ|+1) states",
		Header: []string{"s", "states", "weak states", "bound", "is weak", "equivalent"},
		Rows:   rows,
	}
}

// E03FlatEquivalence measures Theorem 2: flat NWAs ≡ word DFAs over Σ̂.
func E03FlatEquivalence() Table {
	rng := rand.New(rand.NewSource(3))
	rows := [][]string{}
	tagged := nwa.TaggedAlphabet(generator.AB)
	for _, s := range []int{4, 8, 16, 32} {
		b := word.NewDFABuilder(tagged, s)
		b.SetStart(0)
		for q := 0; q < s; q++ {
			if rng.Intn(2) == 0 {
				b.SetAccept(q)
			}
			for _, sym := range tagged.Symbols() {
				b.AddTransition(q, sym, rng.Intn(s))
			}
		}
		dfa := b.Build()
		flat := nwa.FlatFromDFA(dfa, generator.AB)
		back := nwa.FlatToDFA(flat)
		rows = append(rows, []string{
			itoa(s), itoa(flat.NumStates()), btoa(flat.IsFlat()), btoa(word.Equivalent(dfa, back)),
		})
	}
	return Table{
		Name:   "E3 (Theorem 2): flat NWAs are word DFAs over the tagged alphabet",
		Header: []string{"DFA states", "flat NWA states", "is flat", "round-trip equivalent"},
		Rows:   rows,
	}
}

// E04NWAvsDFA measures Theorem 3: L_s = path(Σ^s) needs 2^s DFA states but
// O(s) NWA states.
func E04NWAvsDFA(maxS int) Table {
	rows := [][]string{}
	for s := 2; s <= maxS; s++ {
		a := generator.Theorem3NWA(s)
		dfaStates := generator.Theorem3TaggedNFA(s).MinimalDFASize()
		rows = append(rows, []string{
			itoa(s), itoa(a.NumStates()), itoa(dfaStates), itoa(1 << s),
			ftoa(float64(dfaStates) / float64(a.NumStates())),
		})
	}
	return Table{
		Name:   "E4 (Theorem 3): NWA O(s) states vs minimal word DFA ≥ 2^s states",
		Header: []string{"s", "NWA states", "min DFA states", "2^s", "ratio"},
		Rows:   rows,
	}
}

// E05BottomUpConversion measures Theorem 4: bottom-up NWAs with ≤ s^s·|Σ|
// states equivalent on well-matched words.
func E05BottomUpConversion() Table {
	rng := rand.New(rand.NewSource(5))
	rows := [][]string{}
	for _, s := range []int{2, 3, 4} {
		d := randomDNWA(rng, s)
		bu := d.ToBottomUp()
		agree := true
		for i := 0; i < 200; i++ {
			n := generator.RandomDocument(rng, 12, 4, []string{"a", "b"})
			if d.Accepts(n) != bu.Accepts(n) {
				agree = false
			}
		}
		rows = append(rows, []string{
			itoa(s), itoa(d.NumStates()), itoa(bu.NumStates()),
			ftoa(nwa.BottomUpStateBound(d.NumStates(), 2)), btoa(bu.IsBottomUp()), btoa(agree),
		})
	}
	return Table{
		Name:   "E5 (Theorem 4): bottom-up conversion, reachable states vs the s^s|Σ| bound",
		Header: []string{"s", "states", "bottom-up states", "bound", "is bottom-up", "agree on WNW"},
		Rows:   rows,
	}
}

// E06FlatVsBottomUp measures Theorem 5: the flat automaton has O(s²) states
// while every bottom-up NWA needs 2^s states (measured as the number of
// pairwise-inequivalent well-matched block words).
func E06FlatVsBottomUp(maxS int) Table {
	rows := [][]string{}
	for s := 2; s <= maxS; s++ {
		dfa := generator.Theorem5FlatDFA(s)
		flat := nwa.FlatFromDFA(dfa, generator.AB)
		signatures := map[string]bool{}
		for mask := 0; mask < 1<<s; mask++ {
			blocks := generator.Theorem5BlockWord(s, mask)
			sig := make([]byte, s)
			for i := 1; i <= s; i++ {
				if flat.Accepts(generator.Theorem5Context(i, blocks)) {
					sig[i-1] = '1'
				} else {
					sig[i-1] = '0'
				}
			}
			signatures[string(sig)] = true
		}
		rows = append(rows, []string{
			itoa(s), itoa(dfa.NumStates()), itoa(len(signatures)), itoa(1 << s),
		})
	}
	return Table{
		Name:   "E6 (Theorem 5): flat NWA O(s²) states vs ≥ 2^s congruence classes for bottom-up NWAs",
		Header: []string{"s", "flat states", "distinct classes", "2^s"},
		Rows:   rows,
	}
}

// E07JoinlessSeparation demonstrates Theorem 6's ingredients: the language
// "tree word AND contains an a-labelled position" is accepted by an NWA; its
// two conjuncts are each accepted by one of the deterministic joinless
// subclasses (flat / top-down) but the conjunction requires joining.
func E07JoinlessSeparation() Table {
	rng := rand.New(rand.NewSource(7))
	alpha := generator.AB
	treeWord := query.WellFormed(alpha) // matched tags: the tree-word shape check
	containsA := query.ContainsLabel(alpha, "a")
	conj := nwa.Intersect(treeWord, containsA)
	agree := 0
	trials := 400
	for i := 0; i < trials; i++ {
		n := generator.RandomNestedWord(rng, 10, []string{"a", "b"})
		want := containsAPredicate(n) && wellFormedPredicate(n)
		if conj.Accepts(n) == want {
			agree++
		}
	}
	return Table{
		Name:   "E7 (Theorem 6): the conjunction needs a join; an NWA product handles it",
		Header: []string{"automaton", "states", "checked", "agree"},
		Rows: [][]string{
			{"matched tags (det joinless: flat side fails)", itoa(treeWord.NumStates()), "-", "-"},
			{"contains a (det joinless: top-down side fails)", itoa(containsA.NumStates()), "-", "-"},
			{"conjunction as NWA product", itoa(conj.NumStates()), itoa(trials), itoa(agree)},
		},
	}
}

// E08JoinlessConversion measures Theorem 7: nondeterministic joinless NWAs
// with O(s²|Σ|) states.
func E08JoinlessConversion() Table {
	rng := rand.New(rand.NewSource(8))
	rows := [][]string{}
	for _, s := range []int{2, 3, 4, 6} {
		a := randomNNWA(rng, s)
		j := a.ToJoinless()
		agree := true
		for i := 0; i < 150; i++ {
			n := generator.RandomDocument(rng, 10, 4, []string{"a", "b"})
			if a.Accepts(n) != j.Accepts(n) {
				agree = false
			}
		}
		rows = append(rows, []string{
			itoa(s), itoa(j.NumStates()), itoa(nwa.JoinlessStateBound(s, 2)), btoa(agree),
		})
	}
	return Table{
		Name:   "E8 (Theorem 7): nondeterministic joinless NWAs with O(s²|Σ|) states",
		Header: []string{"s", "joinless states", "bound", "agree on WNW"},
		Rows:   rows,
	}
}

// E09PathSuccinctness measures Theorem 8 on the family L_s = Σ^s a Σ* a Σ^s.
func E09PathSuccinctness(maxS int) Table {
	rows := [][]string{}
	for s := 2; s <= maxS; s++ {
		a := generator.Theorem8NWA(s)
		dfa := word.CompileRegexDFA(generator.Theorem8Regex(s), generator.AB)
		topDown := treeauto.MinimalTopDownPathStates(dfa)
		bottomUp := treeauto.MinimalBottomUpPathStates(dfa)
		rows = append(rows, []string{
			itoa(s), itoa(a.NumStates()), itoa(topDown), itoa(bottomUp), itoa(1 << s),
		})
	}
	return Table{
		Name:   "E9 (Theorem 8): path family — NWA O(s) vs deterministic top-down/bottom-up ≥ 2^s",
		Header: []string{"s", "NWA states", "top-down states", "bottom-up states", "2^s"},
		Rows:   rows,
	}
}

// E10LinearOrderQuery measures the introduction's query Σ*p1Σ*...pnΣ*.
func E10LinearOrderQuery(maxN int) Table {
	rows := [][]string{}
	for n := 2; n <= maxN; n++ {
		alpha := generator.LinearOrderAlphabet(n)
		patterns := make([]string, n)
		for i := range patterns {
			patterns[i] = "p" + itoa(i+1)
		}
		dfa := word.CompileRegexDFA(word.LinearOrderQuery(patterns...), alpha)
		flat := query.LinearOrder(alpha, patterns...)
		// Congruence classes of well-matched fragments for the bottom-up view:
		// the 2^n subsets of patterns, distinguished by contexts that provide
		// the other patterns in order.
		signatures := map[string]bool{}
		for mask := 0; mask < 1<<n; mask++ {
			doc := generator.LinearOrderDocument(n, mask)
			sig := make([]byte, n)
			for i := 0; i < n; i++ {
				before := generator.LinearOrderDocument(n, (1<<i)-1)
				after := generator.LinearOrderDocument(n, ((1<<n)-1)&^((1<<(i+1))-1))
				assembled := nestedword.Concat(before, doc, after)
				if flat.Accepts(assembled) {
					sig[i] = '1'
				} else {
					sig[i] = '0'
				}
			}
			signatures[string(sig)] = true
		}
		rows = append(rows, []string{
			itoa(n), itoa(dfa.NumStates()), itoa(flat.NumStates()), itoa(len(signatures)), itoa(1 << n),
		})
	}
	return Table{
		Name:   "E10 (introduction): linear-order query — linear-size DFA/flat NWA vs ≥ 2^n bottom-up classes",
		Header: []string{"n", "min DFA states", "flat NWA states", "distinct classes", "2^n"},
		Rows:   rows,
	}
}

// E11TreeAutomataEmbedding measures Lemmas 1–3: tree automata embed into the
// corresponding NWA subclasses.
func E11TreeAutomataEmbedding() Table {
	rng := rand.New(rand.NewSource(11))
	// Lemma 1: stepwise bottom-up automaton for "even number of a-nodes".
	b := treeauto.NewStepwiseBuilder(generator.AB, 2)
	b.Init("a", 1).Init("b", 0)
	b.Step(0, 0, 0).Step(0, 1, 1).Step(1, 0, 1).Step(1, 1, 0)
	b.Accept(0)
	stepwise := b.Build()
	embedded := stepwise.ToBottomUpNWA()
	agree1, trials := 0, 300
	for i := 0; i < trials; i++ {
		tr := generator.RandomTree(rng, 1+rng.Intn(20), []string{"a", "b"})
		if stepwise.Accepts(tr) == embedded.Accepts(tree.ToNestedWord(tr)) {
			agree1++
		}
	}
	// Lemma 3: top-down path automaton from a DFA.
	dfa := word.CompileRegexDFA(word.Concat(word.SigmaStar(), word.Symbol("a")), generator.AB)
	pathAuto := treeauto.TopDownPathJNWA(dfa, generator.AB)
	agree2 := 0
	for i := 0; i < trials; i++ {
		l := rng.Intn(8)
		w := make([]string, l)
		for j := range w {
			w[j] = []string{"a", "b"}[rng.Intn(2)]
		}
		if pathAuto.Accepts(nestedword.Path(w...)) == dfa.Accepts(w) {
			agree2++
		}
	}
	return Table{
		Name:   "E11 (Lemmas 1–3): tree automata embed into bottom-up / top-down NWAs",
		Header: []string{"embedding", "states", "checked", "agree"},
		Rows: [][]string{
			{"stepwise → bottom-up NWA", itoa(embedded.NumStates()), itoa(trials), itoa(agree1)},
			{"DFA → top-down path NWA", itoa(pathAuto.NumStates()), itoa(trials), itoa(agree2)},
		},
	}
}

// E12PDAEmbedding measures Lemma 4: context-free word languages over Σ̂ are
// pushdown-NWA languages.
func E12PDAEmbedding() Table {
	rng := rand.New(rand.NewSource(12))
	machine := balancedTagPDA()
	alphaA := alphabet.New("a")
	p := pnwa.FromPDA(machine, alphaA)
	agree, trials := 0, 200
	for i := 0; i < trials; i++ {
		n := generator.RandomNestedWord(rng, 10, []string{"a"})
		tagged := taggedStrings(n)
		if machine.Accepts(tagged) == p.Accepts(n) {
			agree++
		}
	}
	return Table{
		Name:   "E12 (Lemma 4): pushdown word automata embed into pushdown NWAs",
		Header: []string{"PDA states", "PNWA states", "checked", "agree"},
		Rows:   [][]string{{itoa(machine.NumStates()), itoa(p.NumStates()), itoa(trials), itoa(agree)}},
	}
}

// E13PTAEmbedding measures Lemma 5 on the context-free tree language
// { c^n(d^n(e)) }: the pushdown tree automaton and the pushdown NWA over the
// corresponding tree words agree.
func E13PTAEmbedding() Table {
	machine := stemCounterPTA()
	pnwaMachine := stemCounterPNWA()
	rows := [][]string{}
	for n := 0; n <= 6; n++ {
		for _, m := range []int{n, n + 1} {
			tr := stemTree(n, m)
			treeVerdict := machine.Accepts(tr)
			wordVerdict := pnwaMachine.Accepts(tree.ToNestedWord(tr))
			rows = append(rows, []string{
				fmt.Sprintf("c^%d d^%d e", n, m), btoa(n == m), btoa(treeVerdict), btoa(wordVerdict),
			})
		}
	}
	return Table{
		Name:   "E13 (Lemma 5): a context-free tree language as a PTA and as a pushdown NWA",
		Header: []string{"tree", "in language", "PTA verdict", "PNWA verdict"},
		Rows:   rows,
	}
}

// E14CountingSeparation measures Theorem 9: "equal numbers of a's and b's"
// as a pushdown NWA on the stem-plus-full-binary-tree family of Figure 2.
func E14CountingSeparation(maxS int) Table {
	p := pnwa.EqualCounts()
	rows := [][]string{}
	addRow := func(label string, tr *tree.Tree) {
		n := tree.ToNestedWord(tr)
		as := 2 * tr.CountLabel("a")
		bs := 2 * tr.CountLabel("b")
		rows = append(rows, []string{
			label, itoa(as), itoa(bs), btoa(as == bs), btoa(p.Accepts(n)),
		})
	}
	for s := 1; s <= maxS; s++ {
		// The Figure 2 shape: a stem of 2s a-nodes over a full binary tree of
		// depth s — the counts never balance, which is what the pumping
		// argument exploits.
		addRow(fmt.Sprintf("stem 2·%d + binary depth %d", s, s), generator.Figure2Tree(s))
		// A balanced variant: a stem of 2^s−1 a-nodes balances the binary
		// part exactly, giving positive instances as well.
		balanced := tree.Stem("a", (1<<s)-1, tree.FullBinary("b", s))
		addRow(fmt.Sprintf("stem %d + binary depth %d", (1<<s)-1, s), balanced)
	}
	return Table{
		Name:   "E14 (Theorem 9, Figure 2): equal-count language on stem + full binary tree families",
		Header: []string{"tree", "a-positions", "b-positions", "in language", "PNWA verdict"},
		Rows:   rows,
	}
}

// E15MembershipNPReduction measures Theorem 10: CNF satisfiability reduces
// to pushdown-NWA membership and agrees with DPLL.
func E15MembershipNPReduction() Table {
	rng := rand.New(rand.NewSource(15))
	rows := [][]string{}
	for _, size := range [][2]int{{4, 8}, {6, 12}, {8, 16}, {10, 24}} {
		v, s := size[0], size[1]
		agreements, satCount := 0, 0
		trials := 10
		for i := 0; i < trials; i++ {
			f := sat.Random3CNF(rng, v, s)
			inst := pnwa.NewCNFMembershipInstance(f)
			bySolver := f.Satisfiable()
			byMembership := inst.Satisfiable()
			if bySolver == byMembership {
				agreements++
			}
			if bySolver {
				satCount++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("v=%d s=%d", v, s), itoa(trials), itoa(satCount), itoa(agreements),
		})
	}
	return Table{
		Name:   "E15 (Theorem 10): CNF satisfiability via pushdown-NWA membership vs DPLL",
		Header: []string{"instance size", "formulas", "satisfiable", "reduction agrees"},
		Rows:   rows,
	}
}

// E16PNWAEmptiness measures Theorem 11: emptiness by R(q,U,q') saturation on
// the automata of the other pushdown experiments.
func E16PNWAEmptiness() Table {
	equal := pnwa.EqualCounts()
	embedded := pnwa.FromPDA(balancedTagPDA(), alphabet.New("a"))
	emptyAutomaton := pnwa.New(alphabet.New("a"), 2)
	emptyAutomaton.AddStart(0)
	emptyAutomaton.AddInternal(0, "a", 1) // no state can pop ⊥
	unsat := pnwa.NewCNFMembershipInstance(sat.New(1, sat.Clause{1}, sat.Clause{-1}))
	satisfiable := pnwa.NewCNFMembershipInstance(sat.New(2, sat.Clause{1, -2}, sat.Clause{2}))
	rows := [][]string{
		{"equal-counts (Thm 9)", btoa(equal.IsEmpty()), itoa(equal.SummaryCount())},
		{"embedded Dyck PDA (Lemma 4)", btoa(embedded.IsEmpty()), itoa(embedded.SummaryCount())},
		{"no state pops the bottom symbol", btoa(emptyAutomaton.IsEmpty()), itoa(emptyAutomaton.SummaryCount())},
		{"CNF automaton, unsatisfiable formula", btoa(unsat.Automaton.IsEmpty()), itoa(unsat.Automaton.SummaryCount())},
		{"CNF automaton, satisfiable formula", btoa(satisfiable.Automaton.IsEmpty()), itoa(satisfiable.Automaton.SummaryCount())},
	}
	return Table{
		Name:   "E16 (Theorem 11): pushdown-NWA emptiness by summary saturation",
		Header: []string{"automaton", "empty", "summaries"},
		Rows:   rows,
	}
}

// E17Determinization measures the 2^(s²) determinization bound.
func E17Determinization() Table {
	rng := rand.New(rand.NewSource(17))
	rows := [][]string{}
	for _, s := range []int{2, 3, 4} {
		a := randomNNWA(rng, s)
		d := a.Determinize()
		agree := true
		for i := 0; i < 200; i++ {
			n := generator.RandomNestedWord(rng, 10, []string{"a", "b"})
			if a.Accepts(n) != d.Accepts(n) {
				agree = false
			}
		}
		rows = append(rows, []string{
			itoa(s), itoa(d.NumStates()), fmt.Sprintf("2^%d", s*s), btoa(agree),
		})
	}
	return Table{
		Name:   "E17 (Section 3.2): determinization — reachable deterministic states vs the 2^(s²) bound",
		Header: []string{"s", "det states (reachable)", "bound", "language preserved"},
		Rows:   rows,
	}
}

// E19DecisionProcedures measures the linear-time membership and cubic
// emptiness claims on growing inputs.
func E19DecisionProcedures() Table {
	rng := rand.New(rand.NewSource(19))
	q := query.WellFormed(generator.AB)
	rows := [][]string{}
	for _, size := range []int{1000, 10000, 100000} {
		doc := generator.RandomDocument(rng, size, 32, []string{"a", "b"})
		verdict := q.Accepts(doc)
		rows = append(rows, []string{
			itoa(size), itoa(doc.Depth()), btoa(verdict), btoa(!q.IsEmpty()),
		})
	}
	return Table{
		Name:   "E19 (Section 3.2): membership is single-pass with stack bounded by depth; emptiness decidable",
		Header: []string{"document positions", "depth", "accepted", "automaton non-empty"},
		Rows:   rows,
	}
}

// E20Streaming measures the streaming evaluation of documents.
func E20Streaming() Table {
	rng := rand.New(rand.NewSource(20))
	alpha := alphabet.New("a", "b", "c")
	q := query.PathQuery(alpha, "a", "b")
	rows := [][]string{}
	for _, size := range []int{1000, 10000, 100000} {
		doc := generator.RandomDocument(rng, size, 24, []string{"a", "b", "c"})
		runner := docstream.NewStreamingRunner(q)
		maxDepth := 0
		for i := 0; i < doc.Len(); i++ {
			runner.Feed(docstream.Event{Kind: doc.KindAt(i), Label: doc.SymbolAt(i)})
			if runner.Depth() > maxDepth {
				maxDepth = runner.Depth()
			}
		}
		rows = append(rows, []string{
			itoa(doc.Len()), itoa(maxDepth), btoa(runner.Accepting()),
		})
	}
	return Table{
		Name:   "E20 (Section 1): streaming documents as nested words, memory bounded by depth",
		Header: []string{"positions", "max open elements", "query verdict"},
		Rows:   rows,
	}
}

// E21Queries builds the named query mix used by the multi-query streaming
// experiment: path, linear-order, label, and well-formedness queries over
// the three-letter document alphabet, in a fixed order so "the first n
// queries" is a stable workload.
func E21Queries(alpha *alphabet.Alphabet, n int) (names []string, queries []*nwa.DNWA) {
	type nq struct {
		name string
		q    *nwa.DNWA
	}
	all := []nq{
		{"well-formed", query.WellFormed(alpha)},
		{"//a//b", query.PathQuery(alpha, "a", "b")},
		{"order a,b,c", query.LinearOrder(alpha, "a", "b", "c")},
		{"//b//c", query.PathQuery(alpha, "b", "c")},
		{"contains c", query.ContainsLabel(alpha, "c")},
		{"//a//b//c", query.PathQuery(alpha, "a", "b", "c")},
		{"order c,a", query.LinearOrder(alpha, "c", "a")},
		{"//c//a", query.PathQuery(alpha, "c", "a")},
		{"order b,b", query.LinearOrder(alpha, "b", "b")},
		{"//b//a", query.PathQuery(alpha, "b", "a")},
		{"contains a", query.ContainsLabel(alpha, "a")},
		{"//c//b//a", query.PathQuery(alpha, "c", "b", "a")},
		{"order a,c,b", query.LinearOrder(alpha, "a", "c", "b")},
		{"//a//c", query.PathQuery(alpha, "a", "c")},
		{"order c,c,c", query.LinearOrder(alpha, "c", "c", "c")},
		{"//b//c//a", query.PathQuery(alpha, "b", "c", "a")},
	}
	if n > len(all) {
		n = len(all)
	}
	for _, e := range all[:n] {
		names = append(names, e.name)
		queries = append(queries, e.q)
	}
	return names, queries
}

// e21Labels is the document alphabet of the streaming experiment.
var e21Labels = []string{"a", "b", "c"}

const e21Seed = 21

// E21MultiQueryStreaming measures the engine package's extension of the
// Section 3.2 streaming claim to N simultaneous queries: a single pass fans
// every event out to N per-query runners, versus re-scanning (re-generating)
// the document once per query with one StreamingRunner each.  The document
// is produced by a streaming generator and never materialized, so the
// engine's memory is the batch buffer plus one depth-bounded stack per
// query; the alloc column reports the bytes allocated during the timed
// pooled pass.
func E21MultiQueryStreaming(size, maxDepth int) Table {
	alpha := alphabet.New(e21Labels...)
	rows := [][]string{}
	for _, n := range []int{1, 2, 4, 8, 16} {
		names, queries := E21Queries(alpha, n)
		eng := engine.New()
		for i, q := range queries {
			eng.MustRegister(names[i], q)
		}
		stream := func() *generator.DocumentStream {
			return generator.NewDocumentStream(e21Seed, size, maxDepth, e21Labels)
		}
		// Warm-up pass so the timed passes reuse a pooled session.
		if _, err := eng.Run(stream()); err != nil {
			panic(err)
		}
		// Each side is timed over a few passes and the fastest is kept, so a
		// scheduling hiccup on one pass does not decide the comparison.
		const reps = 3
		var res *engine.Result
		var fanout time.Duration
		var allocKB float64
		for rep := 0; rep < reps; rep++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			r, err := eng.Run(stream())
			d := time.Since(t0)
			runtime.ReadMemStats(&after)
			if err != nil {
				panic(err)
			}
			if rep == 0 || d < fanout {
				res, fanout = r, d
				allocKB = float64(after.TotalAlloc-before.TotalAlloc) / 1024
			}
		}

		// Serial baseline: one full re-scan of the document per query.
		var serial time.Duration
		serialVerdicts := make([]bool, len(queries))
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			for i, q := range queries {
				r := docstream.NewStreamingRunner(q)
				src := stream()
				for {
					e, err := src.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						panic(err)
					}
					r.Feed(e)
				}
				serialVerdicts[i] = r.Accepting()
			}
			if d := time.Since(t0); rep == 0 || d < serial {
				serial = d
			}
		}

		agree := true
		for i := range serialVerdicts {
			if serialVerdicts[i] != res.Verdicts[i] {
				agree = false
			}
		}
		perEvent := func(d time.Duration) string {
			return ftoa(float64(d.Nanoseconds()) / float64(res.Events))
		}
		rows = append(rows, []string{
			itoa(n), itoa(res.Events), itoa(res.MaxDepth),
			perEvent(fanout), perEvent(serial),
			ftoa(float64(serial) / float64(fanout)),
			ftoa(allocKB), btoa(agree),
		})
	}
	return Table{
		Name:   "E21 (engine): N simultaneous queries, single-pass fan-out vs one re-scan per query",
		Header: []string{"queries", "events", "depth", "fanout ns/ev", "serial ns/ev", "speedup", "alloc KB", "agree"},
		Rows:   rows,
	}
}

// E22CompiledVsMap measures the compiled query API against the map-backed
// automaton representation on multi-query fan-out: the same single pass over
// the same generated document drives N queries either as compiled runners
// inside the engine (dense transition tables indexed by interned symbol IDs,
// one label→ID lookup per event in total) or as N map-keyed
// docstream.StreamingRunner instances (one map lookup per event per query,
// the pre-compile hot path E21 showed dominating throughput).  Both sides
// must agree on every verdict; the speedup column is the reproduction's
// evidence that the compile step pays for itself.
func E22CompiledVsMap(size, maxDepth int) Table {
	alpha := alphabet.New(e21Labels...)
	rows := [][]string{}
	for _, n := range []int{1, 2, 4, 8, 16} {
		names, queries := E21Queries(alpha, n)
		eng := engine.New()
		for i, q := range queries {
			eng.MustRegister(names[i], q)
		}
		stream := func() *generator.DocumentStream {
			return generator.NewDocumentStream(e21Seed, size, maxDepth, e21Labels)
		}
		// Warm-up pass so the timed passes reuse a pooled session.
		if _, err := eng.Run(stream()); err != nil {
			panic(err)
		}
		const reps = 3
		var res *engine.Result
		var compiled time.Duration
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			r, err := eng.Run(stream())
			d := time.Since(t0)
			if err != nil {
				panic(err)
			}
			if rep == 0 || d < compiled {
				res, compiled = r, d
			}
		}

		// Map-backed baseline: the identical single pass, but every query
		// steps its source DNWA through the (state, label-string) maps.
		var mapped time.Duration
		mapVerdicts := make([]bool, len(queries))
		for rep := 0; rep < reps; rep++ {
			runners := make([]*docstream.StreamingRunner, len(queries))
			for i, q := range queries {
				runners[i] = docstream.NewStreamingRunner(q)
			}
			src := stream()
			t0 := time.Now()
			for {
				e, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					panic(err)
				}
				for _, r := range runners {
					r.Feed(e)
				}
			}
			if d := time.Since(t0); rep == 0 || d < mapped {
				mapped = d
				for i, r := range runners {
					mapVerdicts[i] = r.Accepting()
				}
			}
		}

		agree := true
		for i := range mapVerdicts {
			if mapVerdicts[i] != res.Verdicts[i] {
				agree = false
			}
		}
		perEvent := func(d time.Duration) string {
			return ftoa(float64(d.Nanoseconds()) / float64(res.Events))
		}
		rows = append(rows, []string{
			itoa(n), itoa(res.Events),
			perEvent(compiled), perEvent(mapped),
			ftoa(float64(mapped) / float64(compiled)), btoa(agree),
		})
	}
	return Table{
		Name:   "E22 (query API): compiled dense tables + interned symbols vs map-keyed Step*, same single pass",
		Header: []string{"queries", "events", "compiled ns/ev", "map ns/ev", "speedup", "agree"},
		Rows:   rows,
	}
}

// E23ShardedServing measures the serve package's multi-document layer: a
// corpus of generated documents, pre-interned against the engine alphabet,
// is answered by the same 8-query engine three ways — serially (one
// engine.Run per document on one goroutine), by a naive goroutine-per-
// document fan-out (unbounded concurrency, sessions from the engine pool),
// and through a serve.Pool at 1–16 shards (bounded queues, one checked-out
// session and one reusable tokenizer per shard).  Every mode must produce
// identical verdict sets; the speedup columns report corpus wall-clock
// against the serial baseline.  Throughput scales with GOMAXPROCS — on a
// single-core machine all three modes collapse to the same automaton
// work, which is exactly the point: the pool adds sharding without adding
// per-document overhead.
func E23ShardedServing(docs, size int) Table {
	alpha := alphabet.New(e21Labels...)
	names, queries := E21Queries(alpha, 8)
	eng := engine.New()
	for i, q := range queries {
		eng.MustRegister(names[i], q)
	}
	// Materialize and intern the corpus once, so every serving mode measures
	// automaton work rather than document generation.
	corpus := make([][]docstream.Event, docs)
	totalEvents := 0
	for d := range corpus {
		stream := generator.NewDocumentStream(int64(e21Seed+d), size, 24, e21Labels)
		for {
			e, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				panic(err)
			}
			corpus[d] = append(corpus[d], e.Interned(alpha))
		}
		totalEvents += len(corpus[d])
	}
	const reps = 3

	// Serial baseline: one pass per document, one goroutine.
	serialVerdicts := make([][]bool, docs)
	var serial time.Duration
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		for d := range corpus {
			r, err := eng.RunEvents(corpus[d])
			if err != nil {
				panic(err)
			}
			if rep == 0 {
				serialVerdicts[d] = r.Verdicts
			}
		}
		if dd := time.Since(t0); rep == 0 || dd < serial {
			serial = dd
		}
	}

	// Naive fan-out: one goroutine per document, concurrency unbounded.
	var naive time.Duration
	naiveAgree := true
	for rep := 0; rep < reps; rep++ {
		verdicts := make([][]bool, docs)
		var wg sync.WaitGroup
		t0 := time.Now()
		for d := range corpus {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				r, err := eng.RunEvents(corpus[d])
				if err != nil {
					panic(err)
				}
				verdicts[d] = r.Verdicts
			}(d)
		}
		wg.Wait()
		if dd := time.Since(t0); rep == 0 || dd < naive {
			naive = dd
		}
		if rep == 0 {
			for d := range verdicts {
				for q := range verdicts[d] {
					if verdicts[d][q] != serialVerdicts[d][q] {
						naiveAgree = false
					}
				}
			}
		}
	}

	perEvent := func(d time.Duration) string {
		return ftoa(float64(d.Nanoseconds()) / float64(totalEvents))
	}
	rows := [][]string{}
	for _, shards := range []int{1, 2, 4, 8, 16} {
		pool, err := serve.NewPool(eng, serve.WithShards(shards))
		if err != nil {
			panic(err)
		}
		agree := naiveAgree
		var pooled time.Duration
		for rep := 0; rep < reps; rep++ {
			futures := make([]*serve.Future, docs)
			t0 := time.Now()
			for d := range corpus {
				futures[d], err = pool.SubmitEvents(context.Background(), fmt.Sprintf("doc-%d", d), corpus[d])
				if err != nil {
					panic(err)
				}
			}
			for d, f := range futures {
				res, err := f.Wait(context.Background())
				if err != nil {
					panic(err)
				}
				if rep == 0 {
					for q, v := range res.Engine.Verdicts {
						if v != serialVerdicts[d][q] {
							agree = false
						}
					}
				}
			}
			if dd := time.Since(t0); rep == 0 || dd < pooled {
				pooled = dd
			}
		}
		if err := pool.Close(); err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			itoa(shards), itoa(docs), itoa(totalEvents),
			perEvent(serial), perEvent(naive), perEvent(pooled),
			ftoa(float64(serial) / float64(pooled)),
			ftoa(float64(serial) / float64(naive)),
			btoa(agree),
		})
	}
	return Table{
		Name:   "E23 (serve): sharded pool vs serial vs goroutine-per-document, same 8-query engine",
		Header: []string{"shards", "docs", "events", "serial ns/ev", "naive ns/ev", "pool ns/ev", "pool speedup", "naive speedup", "agree"},
		Rows:   rows,
	}
}

// e24Sizes pairs each NNWA size with a document length scaled down as the
// size grows, because the matrix baseline's per-event cost is Θ(states²)
// regardless of how many states are live — exactly the cost the bitset rows
// remove.
var e24Sizes = []struct{ states, events int }{
	{4, 60000},
	{16, 30000},
	{64, 12000},
	{128, 6000},
	{256, 3000},
}

// e24RandomNNWA builds a random nondeterministic automaton dense enough
// that the summary and reachable sets stay non-trivially populated at every
// size: one or two internal successors and one call successor per (state,
// symbol), several starts and accepts, and ~4·states return transitions per
// symbol.
func e24RandomNNWA(rng *rand.Rand, states int) *nwa.NNWA {
	a := nwa.NewNNWA(generator.AB, states)
	a.AddStart(0)
	a.AddStart(rng.Intn(states))
	for i := 0; i < 1+states/8; i++ {
		a.AddAccept(rng.Intn(states))
	}
	for q := 0; q < states; q++ {
		for _, sym := range []string{"a", "b"} {
			a.AddInternal(q, sym, rng.Intn(states))
			if rng.Intn(2) == 0 {
				a.AddInternal(q, sym, rng.Intn(states))
			}
			a.AddCall(q, sym, rng.Intn(states), rng.Intn(states))
		}
	}
	for _, sym := range []string{"a", "b"} {
		for i := 0; i < 4*states; i++ {
			a.AddReturn(rng.Intn(states), rng.Intn(states), sym, rng.Intn(states))
		}
	}
	return a
}

// e24RunEvents drives one runner over a pre-interned event stream and
// reports the final verdict.
func e24RunEvents(r query.Runner, alpha *alphabet.Alphabet, events []docstream.Event) bool {
	r.Reset()
	for _, e := range events {
		sym := e.SymID(alpha)
		switch e.Kind {
		case nestedword.Call:
			r.StepCall(sym)
		case nestedword.Return:
			r.StepReturn(sym)
		default:
			r.StepInternal(sym)
		}
	}
	return r.Accepting()
}

// E24BitsetRunner measures the bitset NNWA state-set runner against the
// []bool matrix reference implementation on random nondeterministic
// automata of 4 up to maxStates states.  Both runners consume the same
// pre-interned generated document; the table reports per-event times and
// the speedup, and every row additionally replays 100 short random nested
// words (with pending calls and returns) through both runners — any verdict
// disagreement, on the document or on the words, fails the row's agree
// column.
func E24BitsetRunner(maxStates int) Table {
	rng := rand.New(rand.NewSource(24))
	rows := [][]string{}
	for _, size := range e24Sizes {
		if size.states > maxStates {
			continue
		}
		a := e24RandomNNWA(rng, size.states)
		c := query.CompileN(a)
		alpha := c.Alphabet()
		events := make([]docstream.Event, 0, size.events)
		stream := generator.NewDocumentStream(24, size.events, 16, e21Labels[:2])
		for {
			e, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				panic(err)
			}
			events = append(events, e.Interned(alpha))
		}

		bit := c.NewRunner()
		matrix := c.NewReferenceRunner()
		const reps = 3
		var bitTime, matrixTime time.Duration
		var bitVerdict, matrixVerdict bool
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			bitVerdict = e24RunEvents(bit, alpha, events)
			if d := time.Since(t0); rep == 0 || d < bitTime {
				bitTime = d
			}
			t0 = time.Now()
			matrixVerdict = e24RunEvents(matrix, alpha, events)
			if d := time.Since(t0); rep == 0 || d < matrixTime {
				matrixTime = d
			}
		}
		agree := bitVerdict == matrixVerdict
		for i := 0; i < 100; i++ {
			var w *nestedword.NestedWord
			if i%3 == 0 {
				w = generator.RandomNestedWord(rng, 2+rng.Intn(40), []string{"a", "b"})
			} else {
				w = generator.RandomDocument(rng, 2+rng.Intn(40), 6, []string{"a", "b"})
			}
			if query.RunWord(bit, alpha, w) != query.RunWord(matrix, alpha, w) {
				agree = false
			}
		}
		perEvent := func(d time.Duration) string {
			return ftoa(float64(d.Nanoseconds()) / float64(len(events)))
		}
		rows = append(rows, []string{
			itoa(size.states), itoa(len(events)),
			perEvent(bitTime), perEvent(matrixTime),
			ftoa(float64(matrixTime) / float64(bitTime)), btoa(agree),
		})
	}
	return Table{
		Name:   "E24 (bitset): packed uint64 summary rows vs []bool matrix state-set runner",
		Header: []string{"states", "events", "bitset ns/ev", "matrix ns/ev", "speedup", "agree"},
		Rows:   rows,
	}
}

// e25QuerySpecs builds a deterministic family of n distinct deterministic
// queries over the three-letter alphabet — path, linear-order, longer path,
// and well-formedness variants cycling through label combinations — large
// enough for the 1–64-query cold-start sweep.
func e25QuerySpecs(alpha *alphabet.Alphabet, n int) (names []string, queries []*nwa.DNWA) {
	ls := e21Labels
	for i := 0; i < n; i++ {
		a, b, c := ls[i%3], ls[(i/3)%3], ls[(i/9)%3]
		var name string
		var d *nwa.DNWA
		switch i % 4 {
		case 0:
			name, d = fmt.Sprintf("#%d //%s//%s", i, a, b), query.PathQuery(alpha, a, b)
		case 1:
			name, d = fmt.Sprintf("#%d order %s,%s,%s", i, a, b, c), query.LinearOrder(alpha, a, b, c)
		case 2:
			name, d = fmt.Sprintf("#%d //%s//%s//%s", i, a, b, c), query.PathQuery(alpha, a, b, c)
		default:
			name, d = fmt.Sprintf("#%d well-formed", i), query.WellFormed(alpha)
		}
		names = append(names, name)
		queries = append(queries, d)
	}
	return names, queries
}

// e25Boot times one cold boot repeatedly — build an engine ready to serve —
// and returns the fastest attempt's engine and duration.
func e25Boot(boot func() *engine.Engine) (*engine.Engine, time.Duration) {
	const reps = 3
	var best time.Duration
	var eng *engine.Engine
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		e := boot()
		if d := time.Since(t0); rep == 0 || d < best {
			best, eng = d, e
		}
	}
	return eng, best
}

// E25ColdStart measures the serialized query-set cold-start path against
// per-process compilation: for 1–maxQueries queries, the time to construct
// and compile the automata into a ready engine versus the time to decode a
// bundle artifact from memory (query.UnmarshalBundle, copying the tables)
// or to open the artifact file end to end (query.OpenBundle: open, mmap
// where available, zero-copy validation with the tables aliasing the
// mapped pages — exactly what `nwserve -queryset` pays, page faults
// included).  The bundle is built and written once outside the timed
// region, as `nwtool compile` writes it once for a whole fleet.  Every
// booted engine must answer a generated document with identical verdicts;
// the speedup column is the mmap open vs parse+compile.
func E25ColdStart(maxQueries int) Table {
	alpha := alphabet.New(e21Labels...)
	dir, err := os.MkdirTemp("", "e25-bundles-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	rows := [][]string{}
	for _, n := range []int{1, 4, 16, 64} {
		if n > maxQueries {
			continue
		}
		compiledEng, compile := e25Boot(func() *engine.Engine {
			eng := engine.New()
			names, ds := e25QuerySpecs(alpha, n)
			for i, d := range ds {
				eng.MustRegisterQuery(names[i], query.Compile(d))
			}
			return eng
		})

		names, ds := e25QuerySpecs(alpha, n)
		bundle := query.NewBundle(alpha)
		for i, d := range ds {
			if err := bundle.Add(names[i], query.Compile(d)); err != nil {
				panic(err)
			}
		}
		data := bundle.Marshal()
		path := filepath.Join(dir, fmt.Sprintf("bundle-%d.nwq", n))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			panic(err)
		}

		loadedEng, load := e25Boot(func() *engine.Engine {
			b, err := query.UnmarshalBundle(data)
			if err != nil {
				panic(err)
			}
			eng := engine.New()
			if _, err := eng.RegisterBundle(b); err != nil {
				panic(err)
			}
			return eng
		})
		// The mmap side times the whole OpenBundle file path; the mappings
		// stay open until the verdict check below has run against their
		// tables.
		var openBundles []*query.Bundle
		mappedEng, mapped := e25Boot(func() *engine.Engine {
			b, err := query.OpenBundle(path)
			if err != nil {
				panic(err)
			}
			openBundles = append(openBundles, b)
			eng := engine.New()
			if _, err := eng.RegisterBundle(b); err != nil {
				panic(err)
			}
			return eng
		})

		agree := true
		stream := func() *generator.DocumentStream {
			return generator.NewDocumentStream(e21Seed, 20000, 16, e21Labels)
		}
		want, err := compiledEng.Run(stream())
		if err != nil {
			panic(err)
		}
		for _, eng := range []*engine.Engine{loadedEng, mappedEng} {
			got, err := eng.Run(stream())
			if err != nil {
				panic(err)
			}
			for q := range want.Verdicts {
				if got.Verdicts[q] != want.Verdicts[q] {
					agree = false
				}
			}
		}
		for _, b := range openBundles {
			if err := b.Close(); err != nil {
				panic(err)
			}
		}

		us := func(d time.Duration) string { return ftoa(float64(d.Nanoseconds()) / 1e3) }
		rows = append(rows, []string{
			itoa(n), ftoa(float64(len(data)) / 1024),
			us(compile), us(load), us(mapped),
			ftoa(float64(compile) / float64(mapped)), btoa(agree),
		})
	}
	return Table{
		Name:   "E25 (qset): bundle load / mmap cold start vs parse+compile, same ready-to-serve engine",
		Header: []string{"queries", "bundle KB", "compile µs", "load µs", "mmap µs", "speedup", "agree"},
		Rows:   rows,
	}
}

// Info is one entry of the experiment index: the ID accepted by cmd/nwbench
// and a one-line summary.  `nwbench -list` prints these lines, and
// docs/EXPERIMENTS.md repeats them, so the index is the single source of
// truth for what each experiment measures.
type Info struct {
	ID      string
	Summary string
}

// Index lists every experiment in ID order with its one-line summary.
func Index() []Info {
	return []Info{
		{"E1", "nested-word and tree-word encodings round-trip (Figure 1)"},
		{"E2", "weak NWA conversion hits the s(|Σ|+1) state bound (Theorem 1)"},
		{"E3", "flat NWAs coincide with word DFAs over the tagged alphabet (Theorem 2)"},
		{"E4", "NWAs with O(s) states vs minimal word DFAs with ≥2^s states (Theorem 3)"},
		{"E5", "bottom-up conversion: reachable states vs the s^s·|Σ| bound (Theorem 4)"},
		{"E6", "flat NWAs O(s²) vs ≥2^s congruence classes for bottom-up NWAs (Theorem 5)"},
		{"E7", "a conjunction query needs a join; an NWA product answers it (Theorem 6)"},
		{"E8", "nondeterministic joinless NWAs with O(s²|Σ|) states (Theorem 7)"},
		{"E9", "path family: NWA O(s) vs deterministic tree automata ≥2^s (Theorem 8)"},
		{"E10", "linear-order query: linear DFA/flat NWA vs ≥2^n bottom-up classes (introduction)"},
		{"E11", "tree automata embed into bottom-up / top-down NWAs (Lemmas 1–3)"},
		{"E12", "pushdown word automata embed into pushdown NWAs (Lemma 4)"},
		{"E13", "a context-free tree language as a PTA and as a pushdown NWA (Lemma 5)"},
		{"E14", "equal-count language on stem and full-binary-tree families (Theorem 9)"},
		{"E15", "CNF satisfiability via pushdown-NWA membership vs DPLL (Theorem 10)"},
		{"E16", "pushdown-NWA emptiness by summary saturation (Theorem 11)"},
		{"E17", "determinization: reachable states vs the 2^(s²) bound (Section 3.2)"},
		{"E19", "membership is single-pass with stack bounded by depth (Section 3.2)"},
		{"E20", "streaming documents as nested words, memory bounded by depth (Section 1)"},
		{"E21", "engine: N simultaneous queries in one pass vs one re-scan per query"},
		{"E22", "query API: compiled dense tables + interned symbols vs map-keyed stepping"},
		{"E23", "serve: sharded multi-document pool vs serial and goroutine-per-document"},
		{"E24", "bitset: packed uint64 summary rows vs []bool matrix NNWA runner, 4–256 states"},
		{"E25", "qset: serialized bundle load / mmap cold start vs parse+compile, 1–64 queries"},
		{"E26", "server: open-loop HTTP serving vs direct pool submission, latency vs shard count"},
		{"E27", "adapter: XML/JSON/trace decode throughput vs the native tokenizer"},
		{"E28", "plan: product-compiled query clusters vs fan-out, state-budget fallback at 16 queries"},
	}
}

// ArtifactIDs lists the experiments whose tables cmd/nwbench -json records
// as BENCH_<ID>.json benchmark artifacts — the serving-stack experiments
// with timing columns.  scripts/nwvet cross-checks the committed
// BENCH_E*.json files at the repository root against this list, and
// scripts/benchcmp compares fresh artifacts against previous ones, so the
// list is the single source of truth for what the perf trajectory tracks.
func ArtifactIDs() []string {
	return []string{"E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28"}
}

// All returns every experiment table with moderate default parameters.
func All() []Table {
	return []Table{
		E01Encodings(),
		E02WeakConversion(),
		E03FlatEquivalence(),
		E04NWAvsDFA(10),
		E05BottomUpConversion(),
		E06FlatVsBottomUp(8),
		E07JoinlessSeparation(),
		E08JoinlessConversion(),
		E09PathSuccinctness(10),
		E10LinearOrderQuery(8),
		E11TreeAutomataEmbedding(),
		E12PDAEmbedding(),
		E13PTAEmbedding(),
		E14CountingSeparation(6),
		E15MembershipNPReduction(),
		E16PNWAEmptiness(),
		E17Determinization(),
		E19DecisionProcedures(),
		E20Streaming(),
		E21MultiQueryStreaming(200000, 32),
		E22CompiledVsMap(200000, 32),
		E23ShardedServing(100, 2000),
		E24BitsetRunner(256),
		E25ColdStart(64),
		E26HTTPServing(150, 2000),
		E27AdapterThroughput(100000),
		E28ProductCompilation(150000),
	}
}

// --- helpers -----------------------------------------------------------

func randomDNWA(rng *rand.Rand, n int) *nwa.DNWA {
	b := nwa.NewDNWABuilder(generator.AB, n)
	b.SetStart(rng.Intn(n))
	for q := 0; q < n; q++ {
		if rng.Intn(2) == 0 {
			b.SetAccept(q)
		}
		for _, sym := range []string{"a", "b"} {
			b.Internal(q, sym, rng.Intn(n))
			b.Call(q, sym, rng.Intn(n), rng.Intn(n))
		}
	}
	for lin := 0; lin < n; lin++ {
		for hier := 0; hier < n; hier++ {
			for _, sym := range []string{"a", "b"} {
				b.Return(lin, hier, sym, rng.Intn(n))
			}
		}
	}
	return b.Build()
}

func randomNNWA(rng *rand.Rand, n int) *nwa.NNWA {
	a := nwa.NewNNWA(generator.AB, n)
	a.AddStart(rng.Intn(n))
	a.AddAccept(rng.Intn(n))
	edges := 2 + rng.Intn(4*n)
	for i := 0; i < edges; i++ {
		sym := []string{"a", "b"}[rng.Intn(2)]
		switch rng.Intn(3) {
		case 0:
			a.AddInternal(rng.Intn(n), sym, rng.Intn(n))
		case 1:
			a.AddCall(rng.Intn(n), sym, rng.Intn(n), rng.Intn(n))
		default:
			a.AddReturn(rng.Intn(n), rng.Intn(n), sym, rng.Intn(n))
		}
	}
	return a
}

func containsAPredicate(n *nestedword.NestedWord) bool {
	for i := 0; i < n.Len(); i++ {
		if n.SymbolAt(i) == "a" {
			return true
		}
	}
	return false
}

func wellFormedPredicate(n *nestedword.NestedWord) bool {
	if !n.IsWellMatched() {
		return false
	}
	for i := 0; i < n.Len(); i++ {
		if n.KindAt(i) == nestedword.Call {
			j, _ := n.ReturnSuccessor(i)
			if n.SymbolAt(j) != n.SymbolAt(i) {
				return false
			}
		}
	}
	return true
}

// balancedTagPDA accepts tagged words over {<a, a, a>} with balanced calls
// and returns (internals anywhere).
func balancedTagPDA() *pda.PDA {
	tagged := alphabet.New("<a", "a", "a>")
	p := pda.New(tagged, 4)
	const ready, afterOpen, afterShut, done = 0, 1, 2, 3
	p.AddStart(ready)
	p.AddRead(ready, "<a", afterOpen)
	p.AddPush(afterOpen, ready, "X")
	p.AddRead(ready, "a", ready)
	p.AddRead(ready, "a>", afterShut)
	p.AddPop(afterShut, "X", ready)
	p.AddPopBottom(ready, done)
	return p
}

func taggedStrings(n *nestedword.NestedWord) []string {
	out := make([]string, n.Len())
	for i := 0; i < n.Len(); i++ {
		switch n.KindAt(i) {
		case nestedword.Call:
			out[i] = "<" + n.SymbolAt(i)
		case nestedword.Return:
			out[i] = n.SymbolAt(i) + ">"
		default:
			out[i] = n.SymbolAt(i)
		}
	}
	return out
}

// stemCounterPTA accepts the trees c^n(d^n(e)).
func stemCounterPTA() *pta.PTA {
	alpha := alphabet.New("c", "d", "e")
	p := pta.New(alpha, 5)
	const readC, pushed, readD, popped, leaf = 0, 1, 2, 3, 4
	p.AddStart(readC)
	p.AddUnary(readC, "c", pushed)
	p.AddPush(pushed, readC, "X")
	p.AddUnary(readC, "d", popped)
	p.AddUnary(readD, "d", popped)
	p.AddPop(popped, "X", readD)
	p.AddLeaf(readC, "e", leaf)
	p.AddLeaf(readD, "e", leaf)
	p.AddPopBottom(leaf, leaf)
	return p
}

// stemCounterPNWA accepts the tree words of c^n(d^n(e)) by running the
// corresponding pushdown word automaton over the tagged encoding (the
// Lemma 4/5 route to a pushdown NWA for this context-free tree language).
func stemCounterPNWA() *pnwa.PNWA {
	alpha := alphabet.New("c", "d", "e")
	tagged := alphabet.New("<c", "c", "c>", "<d", "d", "d>", "<e", "e", "e>")
	p := pda.New(tagged, 7)
	const downC, pushed, downD, popped, leafIn, up, done = 0, 1, 2, 3, 4, 5, 6
	p.AddStart(downC)
	// One X per opening c; each opening d pops one X, so the counts must
	// match for the stack to reach ⊥ exactly when the leaf is read.
	p.AddRead(downC, "<c", pushed)
	p.AddPush(pushed, downC, "X")
	p.AddRead(downC, "<d", popped)
	p.AddRead(downD, "<d", popped)
	p.AddPop(popped, "X", downD)
	p.AddRead(downC, "<e", leafIn)
	p.AddRead(downD, "<e", leafIn)
	p.AddRead(leafIn, "e>", up)
	p.AddRead(up, "d>", up)
	p.AddRead(up, "c>", up)
	p.AddPopBottom(up, done)
	return pnwa.FromPDA(p, alpha)
}

// stemTree builds c^n(d^m(e)).
func stemTree(n, m int) *tree.Tree {
	t := tree.Leaf("e")
	for i := 0; i < m; i++ {
		t = tree.New("d", t)
	}
	for i := 0; i < n; i++ {
		t = tree.New("c", t)
	}
	return t
}
