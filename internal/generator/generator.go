// Package generator builds the workload families used by the experiments:
// the witness families from the succinctness theorems of "Marrying Words and
// Trees" (Theorems 3, 5, and 8), the linear-order query documents from the
// introduction, the stem-plus-full-binary-tree family of Figure 2
// (Theorem 9), and random nested words, trees, and XML-like documents.
package generator

import (
	"math/rand"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/tree"
	"repro/internal/word"
)

// AB is the two-letter alphabet {a, b} used by every family in the paper.
var AB = alphabet.New("a", "b")

// RandomNestedWord builds a random nested word of exactly the given length
// over the labels, with arbitrary (possibly pending) hierarchical structure.
func RandomNestedWord(rng *rand.Rand, length int, labels []string) *nestedword.NestedWord {
	kinds := []nestedword.Kind{nestedword.Internal, nestedword.Call, nestedword.Return}
	ps := make([]nestedword.Position, length)
	for i := range ps {
		ps[i] = nestedword.Position{
			Symbol: labels[rng.Intn(len(labels))],
			Kind:   kinds[rng.Intn(len(kinds))],
		}
	}
	return nestedword.New(ps...)
}

// RandomDocument builds a random well-matched nested word ("document") with
// approximately the given number of positions and bounded nesting depth,
// mimicking the shape of an XML document streamed through SAX: elements are
// matched call/return pairs and text is internal positions.
func RandomDocument(rng *rand.Rand, size, maxDepth int, labels []string) *nestedword.NestedWord {
	var ps []nestedword.Position
	var build func(budget, depth int) int
	build = func(budget, depth int) int {
		used := 0
		for used < budget {
			switch {
			case depth < maxDepth && budget-used >= 2 && rng.Intn(3) == 0:
				sym := labels[rng.Intn(len(labels))]
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Call})
				inner := build(rng.Intn(budget-used-1), depth+1)
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Return})
				used += inner + 2
			default:
				ps = append(ps, nestedword.Position{Symbol: labels[rng.Intn(len(labels))], Kind: nestedword.Internal})
				used++
			}
		}
		return used
	}
	build(size, 0)
	return nestedword.New(ps...)
}

// RandomTree builds a random non-empty ordered tree with the given
// approximate size over the labels.
func RandomTree(rng *rand.Rand, size int, labels []string) *tree.Tree {
	if size <= 1 {
		return tree.Leaf(labels[rng.Intn(len(labels))])
	}
	remaining := size - 1
	var children []*tree.Tree
	for remaining > 0 {
		chunk := 1 + rng.Intn(remaining)
		children = append(children, RandomTree(rng, chunk, labels))
		remaining -= chunk
	}
	return tree.New(labels[rng.Intn(len(labels))], children...)
}

// ---------------------------------------------------------------------------
// Theorem 3: L_s = { path(w) : w ∈ Σ^s }.
// ---------------------------------------------------------------------------

// Theorem3Member returns path(w) for a word w ∈ {a,b}^s given as a bitmask
// (bit i set means the i-th letter is "b").
func Theorem3Member(s int, mask int) *nestedword.NestedWord {
	w := make([]string, s)
	for i := 0; i < s; i++ {
		if mask&(1<<i) != 0 {
			w[i] = "b"
		} else {
			w[i] = "a"
		}
	}
	return nestedword.Path(w...)
}

// Theorem3NWA builds a deterministic NWA with O(s) states accepting
// L_s = { path(w) : w ∈ {a,b}^s }: a depth counter on the way down, with the
// call symbol passed along the hierarchical edge and checked at the matching
// return (the automaton sketched in the proof of Theorem 3).
func Theorem3NWA(s int) *nwa.DNWA {
	// States: down(0..s), up, acc, and four hierarchical markers
	// distinguishing the outermost call and the call symbol.
	down := func(i int) int { return i }
	up := s + 1
	acc := s + 2
	mInnerA, mInnerB, mOuterA, mOuterB := s+3, s+4, s+5, s+6
	b := nwa.NewDNWABuilder(AB, s+7)
	b.SetStart(down(0))
	b.SetAccept(acc)
	marker := func(depth int, sym string) int {
		if depth == 0 {
			if sym == "a" {
				return mOuterA
			}
			return mOuterB
		}
		if sym == "a" {
			return mInnerA
		}
		return mInnerB
	}
	for i := 0; i < s; i++ {
		for _, sym := range []string{"a", "b"} {
			b.Call(down(i), sym, down(i+1), marker(i, sym))
		}
	}
	// Returns are only legal once depth s has been reached; the symbol must
	// match the marker, and the outermost marker leads to acceptance.
	for _, lin := range []int{down(s), up} {
		b.Return(lin, mInnerA, "a", up)
		b.Return(lin, mInnerB, "b", up)
		b.Return(lin, mOuterA, "a", acc)
		b.Return(lin, mOuterB, "b", acc)
	}
	return b.Build()
}

// Theorem3TaggedNFA builds a nondeterministic word automaton over the tagged
// alphabet accepting nw_w(L_s) as a trie of the 2^s members; determinizing
// and minimizing it measures the exponential lower bound of Theorem 3 for
// word automata.
func Theorem3TaggedNFA(s int) *word.NFA {
	tagged := nwa.TaggedAlphabet(AB)
	nfa := word.NewNFA(tagged, 1)
	nfa.AddStart(0)
	for mask := 0; mask < 1<<s; mask++ {
		member := Theorem3Member(s, mask)
		cur := 0
		for _, t := range nwa.TaggedWord(member) {
			next := nfa.AddState()
			nfa.AddTransition(cur, t, next)
			cur = next
		}
		nfa.AddAccept(cur)
	}
	return nfa
}

// ---------------------------------------------------------------------------
// Theorem 5: the flat-vs-bottom-up family of tree words.
// ---------------------------------------------------------------------------

// Theorem5Block returns the j-th leaf block ⟨a⟩ or ⟨b⟩ of the Theorem 5
// family, selected by a bit.
func theorem5Block(isB bool) []nestedword.Position {
	sym := "a"
	if isB {
		sym = "b"
	}
	return []nestedword.Position{
		{Symbol: sym, Kind: nestedword.Call},
		{Symbol: sym, Kind: nestedword.Return},
	}
}

// Theorem5BlockWord returns the concatenation B_1 ... B_s ∈ L^s encoded by
// the bitmask (bit j set means B_{j+1} = ⟨b⟩).
func Theorem5BlockWord(s int, mask int) *nestedword.NestedWord {
	var ps []nestedword.Position
	for j := 0; j < s; j++ {
		ps = append(ps, theorem5Block(mask&(1<<j) != 0)...)
	}
	return nestedword.New(ps...)
}

// Theorem5Word builds the full member ⟨a ⟨b⟩^m ⟨a B_1...B_s a⟩ a⟩ of the
// Theorem 5 family from the repeat count m and the block word; whether it
// belongs to L_s depends on block (m mod s)+1 being ⟨a⟩.
func Theorem5Word(m int, blocks *nestedword.NestedWord) *nestedword.NestedWord {
	var ps []nestedword.Position
	ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Call})
	for i := 0; i < m; i++ {
		ps = append(ps, theorem5Block(true)...)
	}
	ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Call})
	ps = append(ps, blocks.Positions()...)
	ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Return})
	ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Return})
	return nestedword.New(ps...)
}

// Theorem5Predicate reports membership in the Theorem 5 language L_s:
// tree words of the form ⟨a ⟨b⟩^m ⟨a L^{i-1} ⟨a⟩ L^{s-i} a⟩ a⟩ with
// i = (m mod s) + 1.
func Theorem5Predicate(s int, n *nestedword.NestedWord) bool {
	ps := n.Positions()
	idx := 0
	expect := func(sym string, kind nestedword.Kind) bool {
		if idx >= len(ps) || ps[idx].Symbol != sym || ps[idx].Kind != kind {
			return false
		}
		idx++
		return true
	}
	if !expect("a", nestedword.Call) {
		return false
	}
	m := 0
	for idx+1 < len(ps) && ps[idx].Symbol == "b" && ps[idx].Kind == nestedword.Call &&
		ps[idx+1].Symbol == "b" && ps[idx+1].Kind == nestedword.Return {
		idx += 2
		m++
	}
	if !expect("a", nestedword.Call) {
		return false
	}
	forced := (m % s) + 1
	for j := 1; j <= s; j++ {
		if idx+1 >= len(ps) || ps[idx].Kind != nestedword.Call || ps[idx+1].Kind != nestedword.Return {
			return false
		}
		sym := ps[idx].Symbol
		if ps[idx+1].Symbol != sym || (sym != "a" && sym != "b") {
			return false
		}
		if j == forced && sym != "a" {
			return false
		}
		idx += 2
	}
	if !expect("a", nestedword.Return) {
		return false
	}
	if !expect("a", nestedword.Return) {
		return false
	}
	return idx == len(ps)
}

// Theorem5FlatDFA builds a deterministic word automaton over the tagged
// alphabet with O(s²) states accepting nw_w(L_s); interpreting it as a flat
// NWA (Theorem 2) gives the flat automaton whose existence Theorem 5 claims.
func Theorem5FlatDFA(s int) *word.DFA {
	tagged := nwa.TaggedAlphabet(AB)
	// States:
	//   0                      : expect the outer ⟨a
	//   cnt(r), bmid(r)        : counting ⟨b⟩ repetitions mod s
	//   blk(i, j), blkIn(i, j) : reading the j-th leaf block, forced index i
	//   tail1, tail2, accept   : the closing a⟩ a⟩
	cnt := func(r int) int { return 1 + r }
	bmid := func(r int) int { return 1 + s + r }
	blkBase := 1 + 2*s
	blk := func(i, j int) int { return blkBase + ((i-1)*(s+1)+(j-1))*3 }
	blkInA := func(i, j int) int { return blk(i, j) + 1 }
	blkInB := func(i, j int) int { return blk(i, j) + 2 }
	tail1 := blkBase + s*(s+1)*3
	accept := tail1 + 1
	total := accept + 1

	b := word.NewDFABuilder(tagged, total)
	b.SetStart(0).SetAccept(accept)
	b.AddTransition(0, "<a", cnt(0))
	for r := 0; r < s; r++ {
		b.AddTransition(cnt(r), "<b", bmid(r))
		b.AddTransition(bmid(r), "b>", cnt((r+1)%s))
		// Leaving the counting phase fixes the forced index i = r+1.
		b.AddTransition(cnt(r), "<a", blk(r+1, 1))
	}
	for i := 1; i <= s; i++ {
		for j := 1; j <= s; j++ {
			// Block j may be ⟨a⟩ always, and ⟨b⟩ only when j ≠ i.
			b.AddTransition(blk(i, j), "<a", blkInA(i, j))
			b.AddTransition(blkInA(i, j), "a>", blk(i, j+1))
			if j != i {
				b.AddTransition(blk(i, j), "<b", blkInB(i, j))
				b.AddTransition(blkInB(i, j), "b>", blk(i, j+1))
			}
		}
		b.AddTransition(blk(i, s+1), "a>", tail1)
	}
	b.AddTransition(tail1, "a>", accept)
	return b.Build()
}

// Theorem5Context wraps a block word into the distinguishing context
// ⟨a ⟨b⟩^m ⟨a [·] a⟩ a⟩ with m = i-1, which forces the i-th block to be ⟨a⟩.
func Theorem5Context(i int, blocks *nestedword.NestedWord) *nestedword.NestedWord {
	return Theorem5Word(i-1, blocks)
}

// ---------------------------------------------------------------------------
// Theorem 8: the path family L_s = Σ^s a Σ* a Σ^s.
// ---------------------------------------------------------------------------

// Theorem8Regex returns the word language L_s = Σ^s a Σ* a Σ^s as a regular
// expression over {a, b}.
func Theorem8Regex(s int) word.Regex {
	parts := make([]word.Regex, 0, 2*s+3)
	for i := 0; i < s; i++ {
		parts = append(parts, word.AnySymbol())
	}
	parts = append(parts, word.Symbol("a"), word.SigmaStar(), word.Symbol("a"))
	for i := 0; i < s; i++ {
		parts = append(parts, word.AnySymbol())
	}
	return word.Concat(parts...)
}

// Theorem8NWA builds a deterministic NWA with O(s) states accepting
// { path(w) : w ∈ L_s }: it counts s+1 calls going down (checking that the
// (s+1)-th symbol is an a), counts s+1 returns coming back up (checking that
// the (s+1)-th-from-the-end symbol is an a), and verifies that the input is
// a path word by passing each call symbol along the hierarchical edge.
func Theorem8NWA(s int) *nwa.DNWA {
	down := func(i int) int { return i } // 0..s
	downFree := s + 1
	upBase := s + 2 // up(1..s)
	up := func(j int) int { return upBase + j - 1 }
	upFree := upBase + s
	mEarlyA, mEarlyB, mLateA, mLateB := upFree+1, upFree+2, upFree+3, upFree+4
	b := nwa.NewDNWABuilder(AB, upFree+5)
	b.SetStart(down(0))
	b.SetAccept(upFree)

	earlyMarker := func(sym string) int {
		if sym == "a" {
			return mEarlyA
		}
		return mEarlyB
	}
	lateMarker := func(sym string) int {
		if sym == "a" {
			return mLateA
		}
		return mLateB
	}
	// Down phase: the first s calls are free, the (s+1)-th must be an a, and
	// everything after that is free; the first s+1 calls push "early"
	// markers, later calls push "late" markers.
	for i := 0; i < s; i++ {
		for _, sym := range []string{"a", "b"} {
			b.Call(down(i), sym, down(i+1), earlyMarker(sym))
		}
	}
	b.Call(down(s), "a", downFree, earlyMarker("a"))
	for _, sym := range []string{"a", "b"} {
		b.Call(downFree, sym, downFree, lateMarker(sym))
	}
	// Up phase: the first return can only arrive in the free zone; the j-th
	// return moves the counter; the (s+1)-th return must read an a pushed by
	// a late call (so that the word is long enough); afterwards the symbols
	// only need to match their markers.
	match := func(lin int, target int) {
		b.Return(lin, mEarlyA, "a", target)
		b.Return(lin, mEarlyB, "b", target)
		b.Return(lin, mLateA, "a", target)
		b.Return(lin, mLateB, "b", target)
	}
	if s == 0 {
		// L_0 = a Σ* a; the first return must already check the late-a rule.
		b.Return(downFree, mLateA, "a", upFree)
		match(upFree, upFree)
	} else {
		match(downFree, up(1))
		for j := 1; j < s; j++ {
			match(up(j), up(j+1))
		}
		b.Return(up(s), mLateA, "a", upFree)
		match(upFree, upFree)
	}
	return b.Build()
}

// Theorem8PathWord returns path(w) for a word over {a, b}.
func Theorem8PathWord(w []string) *nestedword.NestedWord { return nestedword.Path(w...) }

// ---------------------------------------------------------------------------
// Introduction / E10: linear-order query documents.
// ---------------------------------------------------------------------------

// LinearOrderDocument builds a well-matched document whose leaves spell out
// the given pattern subset: for each index i < n, if the bit is set the
// document contains a leaf labelled pi ("p" is the common prefix only
// conceptually — labels are "a" for present markers and "b" for padding).
// It is used to exhibit 2^n pairwise-inequivalent well-matched words for the
// bottom-up lower bound of the introduction's query.
func LinearOrderDocument(n int, mask int) *nestedword.NestedWord {
	var ps []nestedword.Position
	ps = append(ps, nestedword.Position{Symbol: "r", Kind: nestedword.Call})
	for i := 0; i < n; i++ {
		sym := "b"
		if mask&(1<<i) != 0 {
			sym = "p" + itoa(i+1)
		}
		ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Call})
		ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Return})
	}
	ps = append(ps, nestedword.Position{Symbol: "r", Kind: nestedword.Return})
	return nestedword.New(ps...)
}

// LinearOrderAlphabet returns the alphabet used by LinearOrderDocument for n
// patterns.
func LinearOrderAlphabet(n int) *alphabet.Alphabet {
	syms := []string{"r", "b"}
	for i := 1; i <= n; i++ {
		syms = append(syms, "p"+itoa(i))
	}
	return alphabet.New(syms...)
}

// Figure2Tree builds the tree of Figure 2 (Theorem 9): a stem of 2s
// a-labelled unary nodes followed by a full binary tree of depth s with
// b-labelled nodes.
func Figure2Tree(s int) *tree.Tree {
	return tree.Stem("a", 2*s, tree.FullBinary("b", s))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
