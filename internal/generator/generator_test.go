package generator

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/docstream"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/word"
)

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := []string{"a", "b"}
	nw := RandomNestedWord(rng, 20, labels)
	if nw.Len() != 20 {
		t.Errorf("RandomNestedWord length = %d, want 20", nw.Len())
	}
	doc := RandomDocument(rng, 60, 5, labels)
	if !doc.IsWellMatched() {
		t.Errorf("RandomDocument must be well matched")
	}
	if doc.Depth() > 5 {
		t.Errorf("RandomDocument depth %d exceeds the bound 5", doc.Depth())
	}
	tr := RandomTree(rng, 15, labels)
	if tr.Size() < 1 {
		t.Errorf("RandomTree must be non-empty")
	}
}

func TestTheorem3Family(t *testing.T) {
	for s := 1; s <= 5; s++ {
		a := Theorem3NWA(s)
		// Every member is accepted.
		for mask := 0; mask < 1<<s; mask++ {
			if !a.Accepts(Theorem3Member(s, mask)) {
				t.Fatalf("s=%d: member %d rejected", s, mask)
			}
		}
		// Paths of the wrong length are rejected.
		if a.Accepts(Theorem3Member(s+1, 0)) || a.Accepts(Theorem3Member(s-1, 0)) {
			t.Errorf("s=%d: wrong-length paths accepted", s)
		}
		// Non-path tree words are rejected.
		if a.Accepts(nestedword.MustParse("<a <a a> <a a> a>")) {
			t.Errorf("s=%d: non-path word accepted", s)
		}
		// Mismatched call/return labels are rejected.
		if a.Accepts(nestedword.MustParse("<a <b a> b>")) {
			t.Errorf("s=%d: mismatched path accepted", s)
		}
	}
}

func TestTheorem3TaggedNFA(t *testing.T) {
	s := 4
	nfa := Theorem3TaggedNFA(s)
	a := Theorem3NWA(s)
	rng := rand.New(rand.NewSource(3))
	// The NFA over tagged words agrees with the NWA on members and random
	// words.
	for mask := 0; mask < 1<<s; mask++ {
		member := Theorem3Member(s, mask)
		if !nfa.Accepts(nwa.TaggedWord(member)) {
			t.Fatalf("member %d rejected by the tagged NFA", mask)
		}
	}
	for i := 0; i < 100; i++ {
		n := RandomNestedWord(rng, 2*s, []string{"a", "b"})
		if nfa.Accepts(nwa.TaggedWord(n)) != a.Accepts(n) {
			t.Fatalf("tagged NFA and NWA disagree on %v", n)
		}
	}
	// The minimal DFA is exponential (Theorem 3): at least 2^s states.
	if size := nfa.MinimalDFASize(); size < 1<<s {
		t.Errorf("minimal DFA has %d states, expected at least %d", size, 1<<s)
	}
}

func TestTheorem5Family(t *testing.T) {
	s := 3
	dfa := Theorem5FlatDFA(s)
	flat := nwa.FlatFromDFA(dfa, AB)
	// Members and non-members according to the predicate.
	for m := 0; m <= 2*s; m++ {
		for mask := 0; mask < 1<<s; mask++ {
			w := Theorem5Word(m, Theorem5BlockWord(s, mask))
			want := Theorem5Predicate(s, w)
			forced := (m % s) // block index forced to ⟨a⟩, 0-based: (m mod s)+1 → bit m%s
			if (mask&(1<<forced) == 0) != want {
				t.Fatalf("predicate inconsistent with the family definition at m=%d mask=%d", m, mask)
			}
			if got := flat.Accepts(w); got != want {
				t.Fatalf("flat automaton wrong at m=%d mask=%d: got %v want %v", m, mask, got, want)
			}
		}
	}
	// Junk is rejected.
	for _, junk := range []string{"", "<a a>", "<a <b b> a>", "a b", "<a <b b> <a <a a> a> a> a>"} {
		if flat.Accepts(nestedword.MustParse(junk)) {
			t.Errorf("junk word %q accepted", junk)
		}
	}
	// The upper bound: O(s²) states.
	if dfa.NumStates() > 3*s*s+4*s+10 {
		t.Errorf("flat DFA has %d states, larger than the O(s²) bound", dfa.NumStates())
	}
}

func TestTheorem5Signatures(t *testing.T) {
	// The 2^s block words have pairwise distinct membership signatures under
	// the s distinguishing contexts — the measured form of the 2^s lower
	// bound for bottom-up automata.
	s := 4
	dfa := Theorem5FlatDFA(s)
	flat := nwa.FlatFromDFA(dfa, AB)
	seen := map[string]bool{}
	for mask := 0; mask < 1<<s; mask++ {
		blocks := Theorem5BlockWord(s, mask)
		sig := make([]byte, s)
		for i := 1; i <= s; i++ {
			if flat.Accepts(Theorem5Context(i, blocks)) {
				sig[i-1] = '1'
			} else {
				sig[i-1] = '0'
			}
		}
		if seen[string(sig)] {
			t.Fatalf("duplicate signature %s", sig)
		}
		seen[string(sig)] = true
	}
	if len(seen) != 1<<s {
		t.Errorf("expected %d distinct signatures, got %d", 1<<s, len(seen))
	}
}

func TestTheorem8Family(t *testing.T) {
	for s := 0; s <= 3; s++ {
		a := Theorem8NWA(s)
		dfa := word.CompileRegexDFA(Theorem8Regex(s), AB)
		rng := rand.New(rand.NewSource(int64(s) + 7))
		// Agreement with the word-language definition on random path words.
		for i := 0; i < 300; i++ {
			l := rng.Intn(3*s + 6)
			w := make([]string, l)
			for j := range w {
				w[j] = []string{"a", "b"}[rng.Intn(2)]
			}
			if got, want := a.Accepts(Theorem8PathWord(w)), dfa.Accepts(w); got != want {
				t.Fatalf("s=%d: NWA and word DFA disagree on %v: got %v want %v", s, w, got, want)
			}
		}
		// Non-path words are rejected.
		if a.Accepts(nestedword.MustParse("<a <a a> <a a> a>")) {
			t.Errorf("s=%d: non-path word accepted", s)
		}
		if a.Accepts(nestedword.MustParse("<a <b a> b>")) {
			t.Errorf("s=%d: mismatched path accepted", s)
		}
	}
}

func TestLinearOrderDocumentAndFigure2(t *testing.T) {
	n := 4
	seen := map[string]bool{}
	for mask := 0; mask < 1<<n; mask++ {
		doc := LinearOrderDocument(n, mask)
		if !doc.IsWellMatched() {
			t.Fatalf("documents must be well matched")
		}
		seen[doc.String()] = true
	}
	if len(seen) != 1<<n {
		t.Errorf("expected %d distinct documents", 1<<n)
	}
	if LinearOrderAlphabet(n).Size() != n+2 {
		t.Errorf("alphabet size = %d, want %d", LinearOrderAlphabet(n).Size(), n+2)
	}
	f2 := Figure2Tree(3)
	if f2.Size() != 2*3+(1<<3)-1 {
		t.Errorf("Figure2Tree(3) size = %d, want %d", f2.Size(), 2*3+(1<<3)-1)
	}
	if f2.CountLabel("a") != 6 || f2.CountLabel("b") != 7 {
		t.Errorf("Figure2Tree(3) label counts wrong: %d a's, %d b's", f2.CountLabel("a"), f2.CountLabel("b"))
	}
}

// TestDocumentStream checks the streaming generator: deterministic per seed,
// well-matched with matching labels, depth-bounded, and at least the
// requested number of events.
func TestDocumentStream(t *testing.T) {
	const size, maxDepth = 5000, 8
	collect := func() []docstream.Event {
		src := NewDocumentStream(77, size, maxDepth, []string{"a", "b"})
		var out []docstream.Event
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, e)
		}
		if src.Emitted() != len(out) {
			t.Fatalf("Emitted() = %d, want %d", src.Emitted(), len(out))
		}
		return out
	}
	first, second := collect(), collect()
	if len(first) < size {
		t.Fatalf("stream yielded %d events, want ≥ %d", len(first), size)
	}
	if len(first) != len(second) {
		t.Fatalf("same seed yielded %d then %d events", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	depth, maxSeen := 0, 0
	var stack []string
	for i, e := range first {
		switch e.Kind {
		case nestedword.Call:
			stack = append(stack, e.Label)
			depth++
			if depth > maxSeen {
				maxSeen = depth
			}
		case nestedword.Return:
			if len(stack) == 0 {
				t.Fatalf("event %d: unmatched return", i)
			}
			if top := stack[len(stack)-1]; top != e.Label {
				t.Fatalf("event %d: closing %q while %q is open", i, e.Label, top)
			}
			stack = stack[:len(stack)-1]
			depth--
		}
	}
	if len(stack) != 0 {
		t.Fatalf("%d elements left open at the end of the stream", len(stack))
	}
	if maxSeen > maxDepth {
		t.Fatalf("depth reached %d, bound is %d", maxSeen, maxDepth)
	}
}
