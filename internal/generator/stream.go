package generator

import (
	"io"
	"math/rand"

	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// DocumentStream generates a random well-formed document as a stream of
// SAX-style events, one call to Next at a time, without ever materializing
// the document: its only state is the RNG and the stack of currently open
// element labels, so memory is proportional to the nesting depth.  It is the
// workload source for the multi-query streaming experiment (E21), where the
// engine must process millions of events in one pass.
//
// The same seed always yields the same event sequence, so several passes
// over "the same document" are made by creating several streams with equal
// parameters.
type DocumentStream struct {
	rng       *rand.Rand
	remaining int
	maxDepth  int
	labels    []string
	stack     []string
	emitted   int
}

// NewDocumentStream returns a stream of approximately size events (every
// opened element is closed, so a few events beyond size may be emitted) with
// nesting depth at most maxDepth over the given element/text labels.
func NewDocumentStream(seed int64, size, maxDepth int, labels []string) *DocumentStream {
	return &DocumentStream{
		rng:       rand.New(rand.NewSource(seed)),
		remaining: size,
		maxDepth:  maxDepth,
		labels:    labels,
	}
}

// Emitted returns the number of events produced so far.
func (s *DocumentStream) Emitted() int { return s.emitted }

// Next returns the next event, or io.EOF once the document is complete.
func (s *DocumentStream) Next() (docstream.Event, error) {
	if s.remaining <= 0 {
		// Close any elements still open so the document is well matched.
		if n := len(s.stack); n > 0 {
			label := s.stack[n-1]
			s.stack = s.stack[:n-1]
			s.emitted++
			return docstream.Event{Kind: nestedword.Return, Label: label}, nil
		}
		return docstream.Event{}, io.EOF
	}
	s.remaining--
	s.emitted++
	// Reserve enough of the budget to close what is already open.
	if n := len(s.stack); n > 0 && s.remaining < n {
		label := s.stack[n-1]
		s.stack = s.stack[:n-1]
		return docstream.Event{Kind: nestedword.Return, Label: label}, nil
	}
	switch r := s.rng.Intn(6); {
	case r == 0 && len(s.stack) < s.maxDepth && s.remaining > 0:
		label := s.labels[s.rng.Intn(len(s.labels))]
		s.stack = append(s.stack, label)
		return docstream.Event{Kind: nestedword.Call, Label: label}, nil
	case r == 1 && len(s.stack) > 0:
		n := len(s.stack)
		label := s.stack[n-1]
		s.stack = s.stack[:n-1]
		return docstream.Event{Kind: nestedword.Return, Label: label}, nil
	default:
		return docstream.Event{Kind: nestedword.Internal, Label: s.labels[s.rng.Intn(len(s.labels))]}, nil
	}
}
