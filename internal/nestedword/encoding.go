package nestedword

import (
	"fmt"
	"strings"
)

// This file implements the tagged-word encoding of Section 2.2: the bijection
// nw_w : NW(Σ) → Σ̂* and its inverse w_nw, plus the path encoding
// path : Σ* → NW(Σ) and a textual parser/printer for tagged words.

// TaggedSymbol is a single letter of the tagged alphabet Σ̂: a plain symbol
// together with the tag saying whether it is a call ⟨a, an internal a, or a
// return a⟩.
type TaggedSymbol struct {
	Symbol string
	Kind   Kind
}

// String renders the tagged symbol in the notation of Figure 1.
func (t TaggedSymbol) String() string {
	switch t.Kind {
	case Call:
		return "<" + t.Symbol
	case Return:
		return t.Symbol + ">"
	default:
		return t.Symbol
	}
}

// ToTagged implements nw_w: it encodes the nested word as a word over the
// tagged alphabet Σ̂.
func (n *NestedWord) ToTagged() []TaggedSymbol {
	out := make([]TaggedSymbol, len(n.positions))
	for i, p := range n.positions {
		out[i] = TaggedSymbol{Symbol: p.Symbol, Kind: p.Kind}
	}
	return out
}

// FromTagged implements w_nw: it decodes a word over the tagged alphabet Σ̂
// into the unique nested word it represents.
func FromTagged(word []TaggedSymbol) *NestedWord {
	ps := make([]Position, len(word))
	for i, t := range word {
		ps[i] = Position{Symbol: t.Symbol, Kind: t.Kind}
	}
	return New(ps...)
}

// Path implements the path encoding of Section 2.2:
// path(a1...aℓ) = w_nw(⟨a1 ... ⟨aℓ aℓ⟩ ... a1⟩), the rooted nested word of
// depth ℓ whose hierarchical structure is a single downward path labelled by
// the word.
func Path(symbols ...string) *NestedWord {
	ps := make([]Position, 0, 2*len(symbols))
	for _, s := range symbols {
		ps = append(ps, Position{Symbol: s, Kind: Call})
	}
	for i := len(symbols) - 1; i >= 0; i-- {
		ps = append(ps, Position{Symbol: symbols[i], Kind: Return})
	}
	return New(ps...)
}

// PathWord inverts Path for nested words in its image: if n = path(w) for
// some word w it returns (w, true), otherwise (nil, false).
func PathWord(n *NestedWord) ([]string, bool) {
	l := n.Len()
	if l%2 != 0 {
		return nil, false
	}
	if l == 0 {
		return []string{}, true
	}
	half := l / 2
	word := make([]string, half)
	for i := 0; i < half; i++ {
		call := n.positions[i]
		ret := n.positions[l-1-i]
		if call.Kind != Call || ret.Kind != Return || call.Symbol != ret.Symbol {
			return nil, false
		}
		word[i] = call.Symbol
	}
	return word, true
}

// Parse parses the textual tagged notation used throughout this library and
// in Figure 1 of the paper: whitespace-separated tokens where "<a" is an
// a-labelled call, "a>" an a-labelled return, and "a" an a-labelled internal.
// Symbols may be arbitrary non-empty strings not containing '<', '>' or
// whitespace.  As a convenience, "<a>" abbreviates the leaf "<a a>"
// (Section 2.3).
func Parse(s string) (*NestedWord, error) {
	fields := strings.Fields(s)
	var ps []Position
	for _, tok := range fields {
		switch {
		case len(tok) >= 3 && strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">"):
			sym := tok[1 : len(tok)-1]
			if err := validateSymbol(sym, tok); err != nil {
				return nil, err
			}
			ps = append(ps, Position{Symbol: sym, Kind: Call}, Position{Symbol: sym, Kind: Return})
		case strings.HasPrefix(tok, "<"):
			sym := tok[1:]
			if err := validateSymbol(sym, tok); err != nil {
				return nil, err
			}
			ps = append(ps, Position{Symbol: sym, Kind: Call})
		case strings.HasSuffix(tok, ">"):
			sym := tok[:len(tok)-1]
			if err := validateSymbol(sym, tok); err != nil {
				return nil, err
			}
			ps = append(ps, Position{Symbol: sym, Kind: Return})
		default:
			if err := validateSymbol(tok, tok); err != nil {
				return nil, err
			}
			ps = append(ps, Position{Symbol: tok, Kind: Internal})
		}
	}
	return New(ps...), nil
}

// MustParse is Parse that panics on error; it is intended for tests,
// examples, and literals in benchmarks.
func MustParse(s string) *NestedWord {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func validateSymbol(sym, tok string) error {
	if sym == "" {
		return fmt.Errorf("nestedword: empty symbol in token %q", tok)
	}
	if strings.ContainsAny(sym, "<>") {
		return fmt.Errorf("nestedword: symbol %q in token %q contains a reserved tag character", sym, tok)
	}
	return nil
}
