package nestedword

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTaggedRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a b c", "<a a>", "a a> <b a a> <a <a", "<a <a a> <b b> a>"} {
		n := MustParse(s)
		back := FromTagged(n.ToTagged())
		if !n.Equal(back) {
			t.Errorf("tagged round trip failed for %q", s)
		}
	}
}

func TestQuickTaggedBijection(t *testing.T) {
	// nw_w and w_nw are mutually inverse bijections (Section 2.2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 50)
		return n.Equal(FromTagged(n.ToTagged()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTaggedSymbolString(t *testing.T) {
	cases := []struct {
		ts   TaggedSymbol
		want string
	}{
		{TaggedSymbol{"a", Call}, "<a"},
		{TaggedSymbol{"a", Return}, "a>"},
		{TaggedSymbol{"a", Internal}, "a"},
	}
	for _, c := range cases {
		if got := c.ts.String(); got != c.want {
			t.Errorf("TaggedSymbol%v.String() = %q, want %q", c.ts, got, c.want)
		}
	}
}

func TestPath(t *testing.T) {
	p := Path("a", "b", "c")
	want := MustParse("<a <b <c c> b> a>")
	if !p.Equal(want) {
		t.Errorf("Path(a,b,c) = %v, want %v", p, want)
	}
	if !p.IsRooted() {
		t.Errorf("path words must be rooted")
	}
	if p.Depth() != 3 {
		t.Errorf("path(abc) depth = %d, want 3", p.Depth())
	}
	if !p.IsTreeWord() {
		t.Errorf("path words are tree words (unary trees)")
	}
	empty := Path()
	if empty.Len() != 0 {
		t.Errorf("Path() should be empty, got %v", empty)
	}
}

func TestPathWordInverse(t *testing.T) {
	w := []string{"a", "b", "a", "a"}
	back, ok := PathWord(Path(w...))
	if !ok || !reflect.DeepEqual(back, w) {
		t.Errorf("PathWord(Path(w)) = (%v,%v), want (%v,true)", back, ok, w)
	}
	if _, ok := PathWord(MustParse("<a <b a> b>")); ok {
		t.Errorf("mismatched labels should not be in the image of Path")
	}
	if _, ok := PathWord(MustParse("<a a> <b b>")); ok {
		t.Errorf("non-path shape should not be in the image of Path")
	}
	if _, ok := PathWord(MustParse("a")); ok {
		t.Errorf("odd length word cannot be a path word")
	}
	if got, ok := PathWord(Empty()); !ok || len(got) != 0 {
		t.Errorf("PathWord(ε) = (%v,%v), want ([] ,true)", got, ok)
	}
}

func TestQuickPathRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(20)
		syms := []string{"a", "b"}
		w := make([]string, l)
		for i := range w {
			w[i] = syms[rng.Intn(2)]
		}
		back, ok := PathWord(Path(w...))
		if !ok || len(back) != len(w) {
			return false
		}
		for i := range w {
			if back[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"<", ">", "a<b", "<a> >", "< >"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseLeafAbbreviation(t *testing.T) {
	n := MustParse("<a>")
	want := MustParse("<a a>")
	if !n.Equal(want) {
		t.Errorf("leaf abbreviation <a> should parse as <a a>, got %v", n)
	}
}

func TestParseWhitespace(t *testing.T) {
	n := MustParse("  <a \t b   a>  ")
	if n.Len() != 3 {
		t.Errorf("whitespace handling broken: %v", n)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse of invalid input should panic")
		}
	}()
	MustParse("<")
}
