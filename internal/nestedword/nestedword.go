// Package nestedword implements nested words as defined in Section 2 of
// "Marrying Words and Trees" (Alur, PODS 2007).
//
// A nested word over an alphabet Σ is a linear sequence of labelled
// positions together with a matching relation of hierarchical edges
// connecting calls to returns.  Edges never cross, but they may be pending:
// a call without a matching return (i ; +∞) or a return without a matching
// call (−∞ ; j).  Every word over the tagged alphabet
// Σ̂ = {⟨a, a, a⟩ : a ∈ Σ} corresponds to exactly one nested word, so this
// package represents a nested word as a sequence of (symbol, kind) pairs and
// recovers the matching relation with a single stack scan.
//
// Positions are 0-based throughout the Go API.  The paper uses 1-based
// positions; conversion is a matter of adding one.
package nestedword

import (
	"fmt"
	"strings"
)

// Kind classifies a position of a nested word as a call, an internal
// position, or a return (Section 2.1).
type Kind uint8

const (
	// Internal positions carry no hierarchical edge.
	Internal Kind = iota
	// Call positions are the sources of hierarchical edges.
	Call
	// Return positions are the targets of hierarchical edges.
	Return
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Internal:
		return "internal"
	case Call:
		return "call"
	case Return:
		return "return"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Pending is the sentinel used in the matching relation for pending edges:
// a pending call has return-successor Pending (the paper's +∞) and a pending
// return has call-predecessor Pending (the paper's −∞).
const Pending = -1

// Position is a single labelled position of a nested word.
type Position struct {
	// Symbol is the label drawn from the alphabet Σ.
	Symbol string
	// Kind says whether the position is a call, internal, or return.
	Kind Kind
}

// NestedWord is a nested word n = (a1...aℓ, ;): a sequence of labelled
// positions whose kinds induce the matching relation.  The zero value is the
// empty nested word.  NestedWord values are immutable once built; all
// operations return fresh words.
type NestedWord struct {
	positions []Position

	// matching caches the result of computeMatching: for every position i,
	// match[i] is the matched position (return-successor for calls,
	// call-predecessor for returns), Pending for pending edges, and -2 for
	// internals.  Built lazily.
	match []int
	// depth caches the nesting depth.
	depth int
	// matched reports whether match/depth have been computed.
	matched bool
}

const unmatchedInternal = -2

// New builds a nested word from a sequence of positions.  The kinds alone
// determine the matching relation, so any sequence is a valid nested word
// (possibly with pending calls and returns).
func New(positions ...Position) *NestedWord {
	nw := &NestedWord{positions: append([]Position(nil), positions...)}
	return nw
}

// FromWord builds the nested word with the empty matching relation
// corresponding to a plain word: every position is internal (Section 2.2,
// w_nw restricted to untagged words).
func FromWord(symbols ...string) *NestedWord {
	ps := make([]Position, len(symbols))
	for i, s := range symbols {
		ps[i] = Position{Symbol: s, Kind: Internal}
	}
	return New(ps...)
}

// Empty returns the empty nested word.
func Empty() *NestedWord { return New() }

// Len returns the length ℓ of the nested word (its linear complexity).
func (n *NestedWord) Len() int { return len(n.positions) }

// At returns the position at 0-based index i.  It panics if i is out of
// range, mirroring slice indexing.
func (n *NestedWord) At(i int) Position { return n.positions[i] }

// SymbolAt returns the symbol labelling position i.
func (n *NestedWord) SymbolAt(i int) string { return n.positions[i].Symbol }

// KindAt returns the kind of position i.
func (n *NestedWord) KindAt(i int) Kind { return n.positions[i].Kind }

// Positions returns a copy of the underlying position sequence.
func (n *NestedWord) Positions() []Position {
	return append([]Position(nil), n.positions...)
}

// ensureMatching computes the matching relation if it has not been computed
// yet.  The computation is the standard single left-to-right stack scan:
// calls are pushed, returns pop the most recent unmatched call (or become
// pending returns when the stack is empty).
func (n *NestedWord) ensureMatching() {
	if n.matched {
		return
	}
	match := make([]int, len(n.positions))
	var stack []int
	depth, maxDepth := 0, 0
	for i, p := range n.positions {
		switch p.Kind {
		case Internal:
			match[i] = unmatchedInternal
		case Call:
			match[i] = Pending
			stack = append(stack, i)
			depth = len(stack)
			if depth > maxDepth {
				maxDepth = depth
			}
		case Return:
			if len(stack) == 0 {
				match[i] = Pending
			} else {
				j := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				match[i] = j
				match[j] = i
			}
		}
	}
	n.match = match
	n.depth = maxDepth
	n.matched = true
}

// ReturnSuccessor returns the return-successor of call position i, i.e. the
// unique j with i ; j.  If i is a pending call it returns Pending, and ok
// is false when i is not a call at all.
func (n *NestedWord) ReturnSuccessor(i int) (j int, ok bool) {
	if i < 0 || i >= len(n.positions) || n.positions[i].Kind != Call {
		return 0, false
	}
	n.ensureMatching()
	return n.match[i], true
}

// CallPredecessor returns the call-predecessor of return position j, i.e.
// the unique i with i ; j.  If j is a pending return it returns Pending,
// and ok is false when j is not a return at all.
func (n *NestedWord) CallPredecessor(j int) (i int, ok bool) {
	if j < 0 || j >= len(n.positions) || n.positions[j].Kind != Return {
		return 0, false
	}
	n.ensureMatching()
	return n.match[j], true
}

// Matching returns the matching relation as a list of (call, return) pairs
// for matched edges, using Pending for the missing endpoint of pending
// edges.  Pairs are ordered by their defined endpoint.
func (n *NestedWord) Matching() []Edge {
	n.ensureMatching()
	var edges []Edge
	for i, p := range n.positions {
		switch p.Kind {
		case Call:
			edges = append(edges, Edge{Call: i, Return: n.match[i]})
		case Return:
			if n.match[i] == Pending {
				edges = append(edges, Edge{Call: Pending, Return: i})
			}
		}
	}
	return edges
}

// Edge is a single hierarchical edge i ; j of the matching relation.
// Pending endpoints are represented by the Pending constant (−∞ for Call,
// +∞ for Return).
type Edge struct {
	Call   int
	Return int
}

// Depth returns the nesting depth of the word (Section 2.1): the maximum
// number of hierarchical edges that are simultaneously "open".
func (n *NestedWord) Depth() int {
	n.ensureMatching()
	return n.depth
}

// CallParent returns the call-parent of position i as defined in Section
// 2.1, translated to 0-based indexing: the call-parent of a top-level
// position is -1 (the paper's 0), otherwise it is the smallest call position
// whose return-successor lies strictly after i.
func (n *NestedWord) CallParent(i int) int {
	if i < 0 || i >= len(n.positions) {
		return -1
	}
	n.ensureMatching()
	// parent[k] for position k computed incrementally following the paper's
	// inductive definition: parent(0) = -1; if k is a call, parent(k+1) = k;
	// if k is internal, parent(k+1) = parent(k); if k is a return matched to
	// j, parent(k+1) = parent(j) (or -1 when the return is pending).
	parent := -1
	parents := make([]int, i+1)
	for k := 0; k <= i; k++ {
		parents[k] = parent
		switch n.positions[k].Kind {
		case Call:
			parent = k
		case Return:
			j := n.match[k]
			if j == Pending {
				parent = -1
			} else {
				parent = parents[j]
			}
		}
	}
	return parents[i]
}

// IsWellMatched reports whether every call has a return-successor and every
// return has a call-predecessor (the set WNW(Σ) of Section 2.1).
func (n *NestedWord) IsWellMatched() bool {
	n.ensureMatching()
	for i, p := range n.positions {
		if p.Kind != Internal && n.match[i] == Pending {
			return false
		}
	}
	return true
}

// IsRooted reports whether the word is rooted, i.e. position 1 and position
// ℓ are matched with each other (1 ; ℓ in the paper's 1-based indexing).
// Rooted words are necessarily well-matched.
func (n *NestedWord) IsRooted() bool {
	if len(n.positions) == 0 {
		return false
	}
	n.ensureMatching()
	return n.positions[0].Kind == Call && n.match[0] == len(n.positions)-1
}

// IsTreeWord reports whether the nested word is a tree word (Section 2.3):
// rooted, no internal positions, and matching calls and returns carry the
// same symbol.  Tree words are exactly the images of ordered trees under
// t_nw.
func (n *NestedWord) IsTreeWord() bool {
	if !n.IsRooted() {
		return false
	}
	for i, p := range n.positions {
		switch p.Kind {
		case Internal:
			return false
		case Call:
			j := n.match[i]
			if j == Pending || n.positions[j].Symbol != p.Symbol {
				return false
			}
		}
	}
	return true
}

// IsHedgeWord reports whether the nested word is a concatenation of zero or
// more tree words: well-matched, no internals, no pending edges, and matched
// positions agree on their symbol.  Hedge words are the images of forests.
func (n *NestedWord) IsHedgeWord() bool {
	if !n.IsWellMatched() {
		return false
	}
	for i, p := range n.positions {
		switch p.Kind {
		case Internal:
			return false
		case Call:
			j := n.match[i]
			if n.positions[j].Symbol != p.Symbol {
				return false
			}
		}
	}
	return true
}

// PendingCalls returns the positions of calls without a matching return, in
// increasing order.
func (n *NestedWord) PendingCalls() []int {
	n.ensureMatching()
	var out []int
	for i, p := range n.positions {
		if p.Kind == Call && n.match[i] == Pending {
			out = append(out, i)
		}
	}
	return out
}

// PendingReturns returns the positions of returns without a matching call,
// in increasing order.
func (n *NestedWord) PendingReturns() []int {
	n.ensureMatching()
	var out []int
	for i, p := range n.positions {
		if p.Kind == Return && n.match[i] == Pending {
			out = append(out, i)
		}
	}
	return out
}

// Alphabet returns the set of symbols occurring in the word, sorted.
func (n *NestedWord) Alphabet() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range n.positions {
		if !seen[p.Symbol] {
			seen[p.Symbol] = true
			out = append(out, p.Symbol)
		}
	}
	sortStrings(out)
	return out
}

// Equal reports whether two nested words are identical (same length, same
// symbols, same kinds — and therefore the same matching relation).
func (n *NestedWord) Equal(m *NestedWord) bool {
	if n.Len() != m.Len() {
		return false
	}
	for i := range n.positions {
		if n.positions[i] != m.positions[i] {
			return false
		}
	}
	return true
}

// String renders the nested word in the tagged notation of Figure 1:
// ⟨a for calls, a for internals, a⟩ for returns, separated by spaces.
func (n *NestedWord) String() string {
	if len(n.positions) == 0 {
		return "ε"
	}
	parts := make([]string, len(n.positions))
	for i, p := range n.positions {
		switch p.Kind {
		case Call:
			parts[i] = "<" + p.Symbol
		case Return:
			parts[i] = p.Symbol + ">"
		default:
			parts[i] = p.Symbol
		}
	}
	return strings.Join(parts, " ")
}

// Counts returns the number of calls, internals, and returns in the word.
func (n *NestedWord) Counts() (calls, internals, returns int) {
	for _, p := range n.positions {
		switch p.Kind {
		case Call:
			calls++
		case Internal:
			internals++
		case Return:
			returns++
		}
	}
	return
}

// sortStrings is a tiny insertion sort to avoid importing sort for a
// handful of symbols on hot paths; alphabets are small.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
