package nestedword

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// figure1N1 is the nested word n1 of Figure 1:
// a b <a a <b a b> a> <a b a a>
// (length 12, depth 2, well-matched).
func figure1N1() *NestedWord {
	return MustParse("a b <a a <b a b> a> <a b a a>")
}

// figure1N2 is the nested word n2 of Figure 1:
// a a> <b a a> <a <a  (one unmatched return, two unmatched calls).
func figure1N2() *NestedWord {
	return MustParse("a a> <b a a> <a <a")
}

// figure1N3 is the nested word n3 of Figure 1:
// <a <a a> <b b> a>  — the tree word of the tree a(a(), b()).
func figure1N3() *NestedWord {
	return MustParse("<a <a a> <b b> a>")
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Internal: "internal", Call: "call", Return: "return", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEmptyWord(t *testing.T) {
	e := Empty()
	if e.Len() != 0 {
		t.Fatalf("Empty().Len() = %d, want 0", e.Len())
	}
	if e.Depth() != 0 {
		t.Errorf("Empty().Depth() = %d, want 0", e.Depth())
	}
	if !e.IsWellMatched() {
		t.Errorf("empty word should be well-matched")
	}
	if e.IsRooted() {
		t.Errorf("empty word should not be rooted")
	}
	if e.String() != "ε" {
		t.Errorf("Empty().String() = %q, want ε", e.String())
	}
}

func TestFigure1N1Properties(t *testing.T) {
	n1 := figure1N1()
	if n1.Len() != 12 {
		t.Fatalf("n1 length = %d, want 12", n1.Len())
	}
	if n1.Depth() != 2 {
		t.Errorf("n1 depth = %d, want 2", n1.Depth())
	}
	if !n1.IsWellMatched() {
		t.Errorf("n1 should be well-matched")
	}
	if n1.IsRooted() {
		t.Errorf("n1 should not be rooted")
	}
	if n1.IsTreeWord() {
		t.Errorf("n1 should not be a tree word")
	}
	calls, internals, returns := n1.Counts()
	if calls != 3 || returns != 3 || internals != 6 {
		t.Errorf("n1 counts = (%d,%d,%d), want (3,6,3)", calls, internals, returns)
	}
}

func TestFigure1N2Pending(t *testing.T) {
	n2 := figure1N2()
	if n2.IsWellMatched() {
		t.Errorf("n2 should not be well-matched")
	}
	if got := n2.PendingReturns(); len(got) != 1 || got[0] != 1 {
		t.Errorf("n2 pending returns = %v, want [1]", got)
	}
	pc := n2.PendingCalls()
	if len(pc) != 2 {
		t.Fatalf("n2 pending calls = %v, want two entries", pc)
	}
	// <b at position 2 is matched with a> at position 4; the two pending
	// calls are the trailing <a <a at positions 5 and 6.
	if pc[0] != 5 || pc[1] != 6 {
		t.Errorf("n2 pending calls = %v, want [5 6]", pc)
	}
	if j, ok := n2.ReturnSuccessor(2); !ok || j != 4 {
		t.Errorf("ReturnSuccessor(2) = (%d,%v), want (4,true)", j, ok)
	}
	if i, ok := n2.CallPredecessor(1); !ok || i != Pending {
		t.Errorf("CallPredecessor(1) = (%d,%v), want (Pending,true)", i, ok)
	}
}

func TestFigure1N3TreeWord(t *testing.T) {
	n3 := figure1N3()
	if !n3.IsRooted() {
		t.Errorf("n3 should be rooted")
	}
	if !n3.IsWellMatched() {
		t.Errorf("n3 should be well-matched")
	}
	if !n3.IsTreeWord() {
		t.Errorf("n3 should be a tree word")
	}
	if n3.Depth() != 2 {
		t.Errorf("n3 depth = %d, want 2", n3.Depth())
	}
}

func TestMatchingRelationBasics(t *testing.T) {
	n := MustParse("<a b c> d")
	if j, ok := n.ReturnSuccessor(0); !ok || j != 2 {
		t.Errorf("ReturnSuccessor(0) = (%d,%v), want (2,true)", j, ok)
	}
	if i, ok := n.CallPredecessor(2); !ok || i != 0 {
		t.Errorf("CallPredecessor(2) = (%d,%v), want (0,true)", i, ok)
	}
	if _, ok := n.ReturnSuccessor(1); ok {
		t.Errorf("ReturnSuccessor of an internal should report ok=false")
	}
	if _, ok := n.CallPredecessor(3); ok {
		t.Errorf("CallPredecessor of an internal should report ok=false")
	}
	if _, ok := n.ReturnSuccessor(-1); ok {
		t.Errorf("ReturnSuccessor out of range should report ok=false")
	}
	edges := n.Matching()
	want := []Edge{{Call: 0, Return: 2}}
	if !reflect.DeepEqual(edges, want) {
		t.Errorf("Matching() = %v, want %v", edges, want)
	}
}

func TestMatchingWithPendingEdges(t *testing.T) {
	n := MustParse("a> <b")
	edges := n.Matching()
	want := []Edge{{Call: Pending, Return: 0}, {Call: 1, Return: Pending}}
	if !reflect.DeepEqual(edges, want) {
		t.Errorf("Matching() = %v, want %v", edges, want)
	}
}

func TestNoCrossingEdges(t *testing.T) {
	// Property: the matching relation computed by the stack scan never
	// produces crossing edges (condition 3 of the definition).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := randomNested(rng, 40)
		var matched []Edge
		for _, e := range n.Matching() {
			if e.Call != Pending && e.Return != Pending {
				matched = append(matched, e)
			}
		}
		for _, e1 := range matched {
			for _, e2 := range matched {
				if e1.Call < e2.Call && e2.Call <= e1.Return && e1.Return < e2.Return {
					t.Fatalf("crossing edges %v and %v in %v", e1, e2, n)
				}
			}
		}
	}
}

func TestCallParent(t *testing.T) {
	n := MustParse("<a b <b c c> b a> d")
	wantParents := []int{-1, 0, 0, 2, 2, 0, 0, -1}
	// position: 0:<a 1:b 2:<b 3:c 4:c> 5:b 6:a> 7:d
	for i, want := range wantParents {
		if got := n.CallParent(i); got != want {
			t.Errorf("CallParent(%d) = %d, want %d", i, got, want)
		}
	}
	if got := n.CallParent(99); got != -1 {
		t.Errorf("CallParent out of range = %d, want -1", got)
	}
}

func TestCallParentAfterPendingReturn(t *testing.T) {
	// a> b : after a pending return, the call-parent resets to top level.
	n := MustParse("<a a> b> b")
	// 0:<a 1:a> 2:b> 3:b
	if got := n.CallParent(2); got != -1 {
		t.Errorf("CallParent(2) = %d, want -1", got)
	}
	if got := n.CallParent(3); got != -1 {
		t.Errorf("CallParent(3) = %d, want -1", got)
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		in    string
		depth int
	}{
		{"a b c", 0},
		{"<a a>", 1},
		{"<a <b b> a>", 2},
		{"<a a> <b b>", 1},
		{"<a <b <c c> b> a>", 3},
		{"<a <b", 2},
		{"a> a>", 0},
	}
	for _, c := range cases {
		n := MustParse(c.in)
		if got := n.Depth(); got != c.depth {
			t.Errorf("Depth(%q) = %d, want %d", c.in, got, c.depth)
		}
	}
}

func TestFromWord(t *testing.T) {
	n := FromWord("a", "b", "a")
	if n.Len() != 3 {
		t.Fatalf("len = %d, want 3", n.Len())
	}
	for i := 0; i < n.Len(); i++ {
		if n.KindAt(i) != Internal {
			t.Errorf("position %d kind = %v, want internal", i, n.KindAt(i))
		}
	}
	if n.Depth() != 0 {
		t.Errorf("plain word depth = %d, want 0", n.Depth())
	}
}

func TestAlphabet(t *testing.T) {
	n := MustParse("<b a <c c> b>")
	got := n.Alphabet()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Alphabet() = %v, want %v", got, want)
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("<a b a>")
	b := MustParse("<a b a>")
	c := MustParse("<a b b>")
	d := MustParse("<a b")
	if !a.Equal(b) {
		t.Errorf("identical words should be Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Errorf("different words should not be Equal")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"a b <a a <b a b> a> <a b a a>", "a a> <b a a> <a <a", "<a <a a> <b b> a>"} {
		n := MustParse(s)
		back := MustParse(n.String())
		if !n.Equal(back) {
			t.Errorf("String round trip failed for %q: got %q", s, n.String())
		}
	}
}

func TestIsHedgeWord(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"<a a> <b b>", true},
		{"<a <b b> a>", true},
		{"", true},
		{"<a a> b", false},
		{"<a b>", false},
		{"<a a> <b", false},
	}
	for _, c := range cases {
		if got := MustParse(c.in).IsHedgeWord(); got != c.want {
			t.Errorf("IsHedgeWord(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPositionsCopy(t *testing.T) {
	n := MustParse("<a a>")
	ps := n.Positions()
	ps[0].Symbol = "mutated"
	if n.SymbolAt(0) != "a" {
		t.Errorf("Positions() must return a copy; original was mutated")
	}
}

// randomNested builds a random nested word of length up to maxLen over the
// alphabet {a, b, c}.
func randomNested(rng *rand.Rand, maxLen int) *NestedWord {
	l := rng.Intn(maxLen + 1)
	syms := []string{"a", "b", "c"}
	kinds := []Kind{Internal, Call, Return}
	ps := make([]Position, l)
	for i := range ps {
		ps[i] = Position{Symbol: syms[rng.Intn(len(syms))], Kind: kinds[rng.Intn(len(kinds))]}
	}
	return New(ps...)
}

func TestQuickPendingCountsConsistent(t *testing.T) {
	// Property: #pending calls = #calls - #matched edges and symmetrically
	// for returns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 60)
		calls, _, returns := n.Counts()
		matched := 0
		for _, e := range n.Matching() {
			if e.Call != Pending && e.Return != Pending {
				matched++
			}
		}
		return len(n.PendingCalls()) == calls-matched && len(n.PendingReturns()) == returns-matched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickWellMatchedMeansNoPending(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 60)
		wm := n.IsWellMatched()
		noPending := len(n.PendingCalls()) == 0 && len(n.PendingReturns()) == 0
		return wm == noPending
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDepthAtMostCalls(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 60)
		calls, _, _ := n.Counts()
		return n.Depth() <= calls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
