package nestedword

// This file implements the word and tree operations on nested words of
// Section 2.4: concatenation, subwords/prefixes/suffixes, reverse, and
// insertion, plus the subtree deletion and substitution operations the paper
// mentions can be defined similarly.

// Concat returns the concatenation of the nested words, defined (Section
// 2.4) as w_nw(nw_w(n) nw_w(n')): the tagged encodings are concatenated and
// re-interpreted, so unmatched calls of earlier words may become matched
// with unmatched returns of later words.
func Concat(words ...*NestedWord) *NestedWord {
	total := 0
	for _, w := range words {
		total += w.Len()
	}
	ps := make([]Position, 0, total)
	for _, w := range words {
		ps = append(ps, w.positions...)
	}
	return New(ps...)
}

// Subword returns the subword n[i, j] from 0-based position i to position j
// inclusive (the paper's n[i+1, j+1]).  Following Section 2.4, out-of-range
// or empty ranges yield the empty nested word.  Hierarchical edges with only
// one endpoint inside the range become pending in the subword.
func (n *NestedWord) Subword(i, j int) *NestedWord {
	if i < 0 || j >= n.Len() || i > j {
		return Empty()
	}
	return New(n.positions[i : j+1]...)
}

// Prefix returns the prefix n[0, j] (empty when j < 0).
func (n *NestedWord) Prefix(j int) *NestedWord { return n.Subword(0, j) }

// Suffix returns the suffix n[i, ℓ-1] (empty when i ≥ ℓ).
func (n *NestedWord) Suffix(i int) *NestedWord { return n.Subword(i, n.Len()-1) }

// Reverse returns the reverse of the nested word (Section 2.4): the
// underlying word is reversed and every hierarchical edge is reversed, which
// amounts to reversing the sequence while swapping calls and returns.
func (n *NestedWord) Reverse() *NestedWord {
	l := n.Len()
	ps := make([]Position, l)
	for i, p := range n.positions {
		q := p
		switch p.Kind {
		case Call:
			q.Kind = Return
		case Return:
			q.Kind = Call
		}
		ps[l-1-i] = q
	}
	return New(ps...)
}

// Insert implements Insert(n, a, n') of Section 2.4: the well-matched nested
// word ins is inserted after every a-labelled position of n.  The paper's
// recursive definition is equivalent to the single pass implemented here.
// If ins is not well-matched the insertion is still performed literally on
// the tagged encodings (callers that need the paper's precondition should
// check IsWellMatched first).
func Insert(n *NestedWord, symbol string, ins *NestedWord) *NestedWord {
	if n.Len() == 0 {
		return New()
	}
	occurrences := 0
	for _, p := range n.positions {
		if p.Symbol == symbol {
			occurrences++
		}
	}
	ps := make([]Position, 0, n.Len()+occurrences*ins.Len())
	for _, p := range n.positions {
		ps = append(ps, p)
		if p.Symbol == symbol {
			ps = append(ps, ins.positions...)
		}
	}
	return New(ps...)
}

// InsertAt inserts the nested word ins after 0-based position i of n
// (or before position 0 when i == -1).  It is the primitive from which
// Insert and tree substitution are built.
func InsertAt(n *NestedWord, i int, ins *NestedWord) *NestedWord {
	if i < -1 || i >= n.Len() {
		return New(n.positions...)
	}
	ps := make([]Position, 0, n.Len()+ins.Len())
	ps = append(ps, n.positions[:i+1]...)
	ps = append(ps, ins.positions...)
	ps = append(ps, n.positions[i+1:]...)
	return New(ps...)
}

// DeleteSubtree removes the rooted subword headed by the call at position i
// (the call, its return-successor, and everything in between).  It returns
// the original word unchanged when i is not a matched call.  This is the
// nested-word form of subtree deletion mentioned in Section 2.4.
func DeleteSubtree(n *NestedWord, i int) *NestedWord {
	j, ok := n.ReturnSuccessor(i)
	if !ok || j == Pending {
		return New(n.positions...)
	}
	ps := make([]Position, 0, n.Len()-(j-i+1))
	ps = append(ps, n.positions[:i]...)
	ps = append(ps, n.positions[j+1:]...)
	return New(ps...)
}

// SubstituteSubtree replaces the rooted subword headed by the call at
// position i with the nested word repl.  It returns the original word
// unchanged when i is not a matched call.  This is the nested-word form of
// subtree substitution mentioned in Section 2.4.
func SubstituteSubtree(n *NestedWord, i int, repl *NestedWord) *NestedWord {
	j, ok := n.ReturnSuccessor(i)
	if !ok || j == Pending {
		return New(n.positions...)
	}
	ps := make([]Position, 0, n.Len()-(j-i+1)+repl.Len())
	ps = append(ps, n.positions[:i]...)
	ps = append(ps, repl.positions...)
	ps = append(ps, n.positions[j+1:]...)
	return New(ps...)
}

// RootedSubword returns the rooted subword n[i, j] headed by the matched
// call at position i with return-successor j, together with ok reporting
// whether i is indeed a matched call.
func (n *NestedWord) RootedSubword(i int) (*NestedWord, bool) {
	j, ok := n.ReturnSuccessor(i)
	if !ok || j == Pending {
		return nil, false
	}
	return n.Subword(i, j), true
}

// Repeat returns the k-fold concatenation of n with itself (the building
// block of Kleene-star witnesses and of several experiment families).
// Repeat(n, 0) is the empty nested word.
func Repeat(n *NestedWord, k int) *NestedWord {
	if k <= 0 {
		return Empty()
	}
	ps := make([]Position, 0, k*n.Len())
	for i := 0; i < k; i++ {
		ps = append(ps, n.positions...)
	}
	return New(ps...)
}
