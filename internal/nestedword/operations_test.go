package nestedword

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConcat(t *testing.T) {
	a := MustParse("<a b")
	b := MustParse("c a>")
	c := Concat(a, b)
	want := MustParse("<a b c a>")
	if !c.Equal(want) {
		t.Errorf("Concat = %v, want %v", c, want)
	}
	// The pending call of a is matched with the pending return of b in the
	// concatenation (Section 2.4).
	if !c.IsWellMatched() {
		t.Errorf("concatenation should have matched the pending edges")
	}
	if Concat().Len() != 0 {
		t.Errorf("Concat() should be empty")
	}
	if !Concat(a).Equal(a) {
		t.Errorf("Concat of a single word should equal that word")
	}
}

func TestSubwordPendingEdges(t *testing.T) {
	n := MustParse("<a b c a> d")
	// Subword containing only the call: the edge becomes a pending call.
	pre := n.Subword(0, 1)
	if pre.IsWellMatched() {
		t.Errorf("prefix cutting an edge should have a pending call")
	}
	if len(pre.PendingCalls()) != 1 {
		t.Errorf("prefix should have exactly one pending call, got %v", pre.PendingCalls())
	}
	// Subword containing only the return: the edge becomes a pending return.
	suf := n.Subword(2, 4)
	if len(suf.PendingReturns()) != 1 {
		t.Errorf("suffix should have exactly one pending return, got %v", suf.PendingReturns())
	}
}

func TestSubwordOutOfRange(t *testing.T) {
	n := MustParse("a b c")
	for _, c := range []struct{ i, j int }{{-1, 1}, {0, 3}, {2, 1}, {5, 9}} {
		if got := n.Subword(c.i, c.j); got.Len() != 0 {
			t.Errorf("Subword(%d,%d) = %v, want empty", c.i, c.j, got)
		}
	}
}

func TestPrefixSuffixConcatenation(t *testing.T) {
	// Section 2.4: concatenating the prefix n[1,i] and the suffix n[i+1,ℓ]
	// gives back n.
	n := figure1N1()
	for i := -1; i < n.Len(); i++ {
		back := Concat(n.Prefix(i), n.Suffix(i+1))
		if !back.Equal(n) {
			t.Errorf("prefix(%d) + suffix(%d) != n", i, i+1)
		}
	}
}

func TestQuickPrefixSuffixConcatenation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 40)
		if n.Len() == 0 {
			return true
		}
		i := rng.Intn(n.Len())
		return Concat(n.Prefix(i), n.Suffix(i+1)).Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	n := MustParse("<a b a>")
	r := n.Reverse()
	want := MustParse("<a b a>")
	if !r.Equal(want) {
		t.Errorf("Reverse(%v) = %v, want %v", n, r, want)
	}
	n2 := MustParse("<a b c> d")
	r2 := n2.Reverse()
	want2 := MustParse("d <c b a>")
	if !r2.Equal(want2) {
		t.Errorf("Reverse(%v) = %v, want %v", n2, r2, want2)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 50)
		return n.Reverse().Reverse().Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReversePreservesDepthAndMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNested(rng, 50)
		r := n.Reverse()
		if n.Len() != r.Len() {
			return false
		}
		// Well-matchedness is preserved by reversal.
		return n.IsWellMatched() == r.IsWellMatched()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInsert(t *testing.T) {
	n := MustParse("a b a")
	ins := MustParse("<c c>")
	got := Insert(n, "a", ins)
	want := MustParse("a <c c> b a <c c>")
	if !got.Equal(want) {
		t.Errorf("Insert = %v, want %v", got, want)
	}
	// Inserting after a symbol that does not occur returns the word itself.
	same := Insert(n, "z", ins)
	if !same.Equal(n) {
		t.Errorf("Insert with absent symbol = %v, want %v", same, n)
	}
	// Inserting into the empty word returns the empty word.
	if Insert(Empty(), "a", ins).Len() != 0 {
		t.Errorf("Insert into empty word should stay empty")
	}
}

func TestInsertTreeInsertion(t *testing.T) {
	// Insertion of a tree word into another tree word is tree insertion
	// (Section 2.4): the result is still well matched.
	host := MustParse("<a <b b> a>")
	ins := MustParse("<c c>")
	got := Insert(host, "b", ins)
	if !got.IsWellMatched() {
		t.Errorf("tree insertion should stay well matched: %v", got)
	}
	want := MustParse("<a <b <c c> b> <c c> a>")
	if !got.Equal(want) {
		t.Errorf("Insert = %v, want %v", got, want)
	}
}

func TestInsertAt(t *testing.T) {
	n := MustParse("a b")
	ins := MustParse("x")
	if got, want := InsertAt(n, -1, ins), MustParse("x a b"); !got.Equal(want) {
		t.Errorf("InsertAt(-1) = %v, want %v", got, want)
	}
	if got, want := InsertAt(n, 0, ins), MustParse("a x b"); !got.Equal(want) {
		t.Errorf("InsertAt(0) = %v, want %v", got, want)
	}
	if got, want := InsertAt(n, 1, ins), MustParse("a b x"); !got.Equal(want) {
		t.Errorf("InsertAt(1) = %v, want %v", got, want)
	}
	if got := InsertAt(n, 5, ins); !got.Equal(n) {
		t.Errorf("InsertAt out of range should return an unchanged copy")
	}
}

func TestDeleteSubtree(t *testing.T) {
	n := MustParse("<a <b c b> d a>")
	got := DeleteSubtree(n, 1)
	want := MustParse("<a d a>")
	if !got.Equal(want) {
		t.Errorf("DeleteSubtree = %v, want %v", got, want)
	}
	// Deleting at a non-call or pending call is a no-op copy.
	if got := DeleteSubtree(n, 2); !got.Equal(n) {
		t.Errorf("DeleteSubtree at internal should be a no-op")
	}
	pend := MustParse("<a b")
	if got := DeleteSubtree(pend, 0); !got.Equal(pend) {
		t.Errorf("DeleteSubtree at pending call should be a no-op")
	}
}

func TestSubstituteSubtree(t *testing.T) {
	n := MustParse("<a <b c b> d a>")
	repl := MustParse("<e e>")
	got := SubstituteSubtree(n, 1, repl)
	want := MustParse("<a <e e> d a>")
	if !got.Equal(want) {
		t.Errorf("SubstituteSubtree = %v, want %v", got, want)
	}
	if got := SubstituteSubtree(n, 2, repl); !got.Equal(n) {
		t.Errorf("SubstituteSubtree at internal should be a no-op")
	}
}

func TestRootedSubword(t *testing.T) {
	n := MustParse("<a <b c b> d a>")
	sub, ok := n.RootedSubword(1)
	if !ok {
		t.Fatalf("RootedSubword(1) should succeed")
	}
	if want := MustParse("<b c b>"); !sub.Equal(want) {
		t.Errorf("RootedSubword(1) = %v, want %v", sub, want)
	}
	if _, ok := n.RootedSubword(2); ok {
		t.Errorf("RootedSubword at internal should fail")
	}
}

func TestRepeat(t *testing.T) {
	n := MustParse("<a a>")
	if got, want := Repeat(n, 3), MustParse("<a a> <a a> <a a>"); !got.Equal(want) {
		t.Errorf("Repeat = %v, want %v", got, want)
	}
	if Repeat(n, 0).Len() != 0 {
		t.Errorf("Repeat(n, 0) should be empty")
	}
	if Repeat(n, -1).Len() != 0 {
		t.Errorf("Repeat(n, -1) should be empty")
	}
}

func TestQuickConcatLengthAdds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomNested(rng, 30)
		b := randomNested(rng, 30)
		return Concat(a, b).Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomNested(rng, 20)
		b := randomNested(rng, 20)
		c := randomNested(rng, 20)
		return Concat(Concat(a, b), c).Equal(Concat(a, Concat(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseAntiHomomorphism(t *testing.T) {
	// reverse(ab) = reverse(b) reverse(a)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomNested(rng, 25)
		b := randomNested(rng, 25)
		return Concat(a, b).Reverse().Equal(Concat(b.Reverse(), a.Reverse()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
