package nwa

import (
	"strconv"

	"repro/internal/alphabet"
)

// This file exports the reachability half of the emptiness machinery
// (emptiness.go, Section 3.2) to other packages, most notably the compiled-
// artifact verifier in internal/query: `nwtool vet` runs the same
// summary-closure analysis over the flat tables of a serialized bundle that
// the emptiness check runs over map-backed automata, so a bundle's dead
// states are found by the paper's own algorithm rather than a second
// implementation.
//
// The exported view works over integer symbol IDs instead of symbol strings
// because compiled automata carry one extra column — the out-of-alphabet ID —
// that no alphabet string maps to; a synthesized alphabet of the right width
// bridges the two worlds internally.

// StateGraph is the integer-symbol automaton view accepted by the exported
// analysis entry points.  Symbols are dense IDs 0..NumSymbols()-1 (a compiled
// automaton includes its out-of-alphabet column), and edges are enumerated
// through callbacks so implementations over CSR or dense tables need not
// materialize successor slices.
type StateGraph interface {
	// NumStates returns the number of states.
	NumStates() int
	// NumSymbols returns the number of symbol columns, including any
	// out-of-alphabet column.
	NumSymbols() int
	// StartStates returns the initial states.
	StartStates() []int
	// IsAccepting reports whether q is a final state.
	IsAccepting(q int) bool
	// EachCallEdge calls f for every call transition of (q, sym).
	EachCallEdge(q, sym int, f func(linear, hier int))
	// EachInternalEdge calls f for every internal transition of (q, sym).
	EachInternalEdge(q, sym int, f func(to int))
	// EachReturnEdge calls f for every return transition of (lin, hier, sym).
	EachReturnEdge(lin, hier, sym int, f func(to int))
}

// graphAutom adapts a StateGraph to the unexported autom interface the
// emptiness analysis consumes: it synthesizes one placeholder symbol string
// per column and maps the strings back to column IDs on every successor
// query.  Witness words built over the placeholder alphabet are meaningless
// and never surface through the exported entry points.
type graphAutom struct {
	g      StateGraph
	alpha  *alphabet.Alphabet
	starts []int
}

func wrapGraph(g StateGraph, starts []int) *graphAutom {
	syms := make([]string, g.NumSymbols())
	for i := range syms {
		syms[i] = "#" + strconv.Itoa(i)
	}
	return &graphAutom{g: g, alpha: alphabet.New(syms...), starts: starts}
}

func (ga *graphAutom) Alphabet() *alphabet.Alphabet { return ga.alpha }
func (ga *graphAutom) NumStates() int               { return ga.g.NumStates() }
func (ga *graphAutom) StartStates() []int           { return ga.starts }
func (ga *graphAutom) IsAccepting(q int) bool       { return ga.g.IsAccepting(q) }

func (ga *graphAutom) CallSuccessors(q int, sym string) []callTarget {
	var out []callTarget
	ga.g.EachCallEdge(q, ga.alpha.MustIndex(sym), func(linear, hier int) {
		out = append(out, callTarget{Linear: linear, Hier: hier})
	})
	return out
}

func (ga *graphAutom) InternalSuccessors(q int, sym string) []int {
	var out []int
	ga.g.EachInternalEdge(q, ga.alpha.MustIndex(sym), func(to int) {
		out = append(out, to)
	})
	return out
}

func (ga *graphAutom) ReturnSuccessors(lin, hier int, sym string) []int {
	var out []int
	ga.g.EachReturnEdge(lin, hier, ga.alpha.MustIndex(sym), func(to int) {
		out = append(out, to)
	})
	return out
}

// ReachableStates runs the summary/reachability closure of the emptiness
// analysis over the graph and reports, per state, whether some nested word
// (pending calls and returns included) takes the automaton from an initial
// state to it as a linear state.  States used only as hierarchical targets
// are not linearly reachable; see HierarchicalTargets.
func ReachableStates(g StateGraph) []bool {
	an := analyze(wrapGraph(g, g.StartStates()))
	reach := make([]bool, g.NumStates())
	for q := range an.reachB {
		if q >= 0 && q < len(reach) {
			reach[q] = true
		}
	}
	return reach
}

// HierarchicalTargets reports, per state, whether some call transition out of
// a state marked true in from uses it as the hierarchical target.  Combined
// with ReachableStates it separates truly unreachable states from states that
// only ever travel along hierarchical edges (the markers of compiled path
// queries, say).
func HierarchicalTargets(g StateGraph, from []bool) []bool {
	used := make([]bool, g.NumStates())
	for q := 0; q < g.NumStates(); q++ {
		if !from[q] {
			continue
		}
		for sym := 0; sym < g.NumSymbols(); sym++ {
			g.EachCallEdge(q, sym, func(linear, hier int) {
				if hier >= 0 && hier < len(used) {
					used[hier] = true
				}
			})
		}
	}
	return used
}

// CoaccessibleStates reports, per state q, whether an accepting state is
// reachable from q in the projected transition digraph: call edges move to
// their linear target, internal edges to their target, and a return edge
// (lin, hier, sym) → to is usable from lin when hierAvail[hier] is true
// (pass the HierarchicalTargets of the reachable set, plus the start states
// for pending returns; nil allows every hierarchical component).  Dropping
// the stack discipline makes this an over-approximation of true
// coaccessibility — the safe polarity for dead-state warnings, since a
// state it calls dead really cannot reach acceptance by any run whose stack
// holds only supplied hierarchical states.
func CoaccessibleStates(g StateGraph, hierAvail []bool) []bool {
	num := g.NumStates()
	co := make([]bool, num)
	queue := make([]int, 0, num)
	for q := 0; q < num; q++ {
		if g.IsAccepting(q) {
			co[q] = true
			queue = append(queue, q)
		}
	}
	// Reverse adjacency of the projected digraph, built once.
	preds := make([][]int32, num)
	addEdge := func(from, to int) {
		if to >= 0 && to < num && from >= 0 && from < num {
			preds[to] = append(preds[to], int32(from))
		}
	}
	for q := 0; q < num; q++ {
		for sym := 0; sym < g.NumSymbols(); sym++ {
			g.EachCallEdge(q, sym, func(linear, _ int) { addEdge(q, linear) })
			g.EachInternalEdge(q, sym, func(to int) { addEdge(q, to) })
		}
	}
	for lin := 0; lin < num; lin++ {
		for hier := 0; hier < num; hier++ {
			if hierAvail != nil && !hierAvail[hier] {
				continue
			}
			for sym := 0; sym < g.NumSymbols(); sym++ {
				g.EachReturnEdge(lin, hier, sym, func(to int) { addEdge(lin, to) })
			}
		}
	}
	for len(queue) > 0 {
		q := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range preds[q] {
			if !co[p] {
				co[p] = true
				queue = append(queue, int(p))
			}
		}
	}
	return co
}
