package nwa

import (
	"testing"

	"repro/internal/alphabet"
)

// nnwaGraph adapts an NNWA to the StateGraph interface for testing the
// exported reachability analysis against a hand-built automaton.
type nnwaGraph struct{ n *NNWA }

func (g nnwaGraph) NumStates() int     { return g.n.NumStates() }
func (g nnwaGraph) NumSymbols() int    { return g.n.Alphabet().Size() }
func (g nnwaGraph) StartStates() []int { return g.n.StartStates() }
func (g nnwaGraph) IsAccepting(q int) bool {
	return g.n.IsAccepting(q)
}

func (g nnwaGraph) EachCallEdge(q, sym int, f func(linear, hier int)) {
	for _, t := range g.n.CallSuccessors(q, g.n.Alphabet().Symbol(sym)) {
		f(t.Linear, t.Hier)
	}
}

func (g nnwaGraph) EachInternalEdge(q, sym int, f func(to int)) {
	for _, to := range g.n.InternalSuccessors(q, g.n.Alphabet().Symbol(sym)) {
		f(to)
	}
}

func (g nnwaGraph) EachReturnEdge(lin, hier, sym int, f func(to int)) {
	for _, to := range g.n.ReturnSuccessors(lin, hier, g.n.Alphabet().Symbol(sym)) {
		f(to)
	}
}

func TestReachableStates(t *testing.T) {
	alpha := alphabet.New("a", "b")
	// 0 -a-> 1 (internal); 1 -a-> (2, hier 3) (call); 2 -b/3-> 4 (return);
	// 5 is unreachable; 3 is hierarchical-only.
	n := NewNNWA(alpha, 6)
	n.AddStart(0).AddAccept(4)
	n.AddInternal(0, "a", 1)
	n.AddCall(1, "a", 2, 3)
	n.AddReturn(2, 3, "b", 4)
	n.AddInternal(5, "b", 5)

	reach := ReachableStates(nnwaGraph{n})
	want := []bool{true, true, true, false, true, false}
	for q, w := range want {
		if reach[q] != w {
			t.Errorf("ReachableStates[%d] = %v, want %v", q, reach[q], w)
		}
	}

	hier := HierarchicalTargets(nnwaGraph{n}, reach)
	if !hier[3] {
		t.Errorf("HierarchicalTargets[3] = false, want true (call edge from reachable state 1)")
	}
	if hier[5] {
		t.Errorf("HierarchicalTargets[5] = true, want false")
	}
}

func TestCoaccessibleStates(t *testing.T) {
	alpha := alphabet.New("a", "b")
	n := NewNNWA(alpha, 6)
	n.AddStart(0).AddAccept(4)
	n.AddInternal(0, "a", 1)
	n.AddCall(1, "a", 2, 3)
	n.AddReturn(2, 3, "b", 4)
	n.AddInternal(5, "b", 5)

	reach := ReachableStates(nnwaGraph{n})
	hierOK := HierarchicalTargets(nnwaGraph{n}, reach)
	hierOK[0] = true // start state, for pending returns
	co := CoaccessibleStates(nnwaGraph{n}, hierOK)
	// 4 is accepting (trivially coaccessible); 0 and 1 reach it; 2 reaches
	// it over the return edge gated on hierarchical state 3, which a call
	// from reachable state 1 supplies; 5 loops on itself and never reaches
	// 4.
	if !co[0] || !co[1] || !co[2] || !co[4] {
		t.Errorf("CoaccessibleStates = %v; want 0,1,2,4 coaccessible", co)
	}
	if co[5] {
		t.Errorf("CoaccessibleStates[5] = true, want false (isolated self-loop)")
	}

	// With the return's hierarchical component unavailable, state 2 loses
	// its only path to acceptance.
	none := make([]bool, n.NumStates())
	co = CoaccessibleStates(nnwaGraph{n}, none)
	if co[2] {
		t.Errorf("CoaccessibleStates[2] = true with no hierarchical states available, want false")
	}
}
