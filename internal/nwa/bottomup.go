package nwa

// Bottom-up nested word automata (Section 3.4, Theorem 4): an NWA is
// bottom-up if the linear component of its call-transition function does not
// depend on the current state, δ^l_c(q, a) = δ^l_c(q', a) for all q, q'.
// A bottom-up automaton therefore processes every rooted subword without
// using the prefix before it, exactly like a bottom-up tree automaton.
//
// Theorem 4: any NWA with s states over Σ has a weak bottom-up NWA with at
// most s^s·|Σ| states that agrees with it on all well-matched nested words.
// The construction below builds the automaton whose states are pairs
// (f, a) of a function f : Q → Q and the symbol a labelling the call-parent
// of the current position (with an extra "top level" marker, as in ToWeak):
// f records, for every state q of A, the state A reaches from q over the
// subword starting at the call-parent of the current position.  Only
// reachable (f, a) pairs are materialized.

// IsBottomUp reports whether the deterministic automaton is bottom-up.  The
// implicit dead state added by the builder is ignored.
func (d *DNWA) IsBottomUp() bool {
	for s := 0; s < d.alpha.Size(); s++ {
		sym := d.alpha.Symbol(s)
		ref, haveRef := -1, false
		for q := 0; q < d.num; q++ {
			if q == d.dead {
				continue
			}
			lin, _ := d.StepCall(q, sym)
			if !haveRef {
				ref, haveRef = lin, true
				continue
			}
			if lin != ref {
				return false
			}
		}
	}
	return true
}

// ToBottomUp implements the construction of Theorem 4.  The result is a weak
// bottom-up NWA B with L(B) ∩ WNW(Σ) = L(A) ∩ WNW(Σ); as the paper notes,
// bottom-up automata cannot track unmatched calls, so no equivalence is
// promised on words with pending calls.
func (d *DNWA) ToBottomUp() *DNWA {
	n := d.num
	syms := d.alpha.Symbols()
	top := len(syms) // call-parent marker for top-level positions

	// A state of B is (f, parent) with f : Q → Q represented as a slice.
	type buState struct {
		f      []int
		parent int
	}
	encode := func(st buState) string {
		buf := make([]byte, 0, 4*len(st.f)+4)
		put := func(v int) { buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
		put(st.parent)
		for _, v := range st.f {
			put(v)
		}
		return string(buf)
	}
	var states []buState
	index := make(map[string]int)
	intern := func(st buState) int {
		k := encode(st)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(states)
		index[k] = id
		states = append(states, st)
		return id
	}

	identity := make([]int, n)
	for q := range identity {
		identity[q] = q
	}
	start := intern(buState{f: identity, parent: top})

	// afterCall[s] is the state reached after an s-labelled call; it does
	// not depend on the state before the call, which makes B bottom-up.
	afterCall := make([]int, len(syms))
	for s, sym := range syms {
		f := make([]int, n)
		for q := 0; q < n; q++ {
			lin, _ := d.StepCall(q, sym)
			f[q] = lin
		}
		afterCall[s] = intern(buState{f: f, parent: s})
	}

	type ckey struct{ from, sym int }
	type rkey struct{ lin, hier, sym int }
	internalT := make(map[ckey]int)
	callT := make(map[ckey]callTarget)
	returnT := make(map[rkey]int)

	// Iterate to a fixpoint: internal and call rows depend only on the
	// current state, return rows combine the current state with any state
	// that can label a hierarchical edge (B is weak, so that is any
	// reachable state).
	for {
		before := len(states)
		for i := 0; i < len(states); i++ {
			st := states[i]
			for s, sym := range syms {
				key := ckey{i, s}
				if _, ok := internalT[key]; !ok {
					g := make([]int, n)
					for q := 0; q < n; q++ {
						g[q] = d.StepInternal(st.f[q], sym)
					}
					internalT[key] = intern(buState{f: g, parent: st.parent})
				}
				if _, ok := callT[key]; !ok {
					callT[key] = callTarget{Linear: afterCall[s], Hier: i}
				}
			}
		}
		for lin := 0; lin < len(states); lin++ {
			for hier := 0; hier < len(states); hier++ {
				for s, sym := range syms {
					key := rkey{lin, hier, s}
					if _, ok := returnT[key]; ok {
						continue
					}
					cur, below := states[lin], states[hier]
					g := make([]int, n)
					if cur.parent == top {
						// Pending return: A's hierarchical state is q0 and the
						// call-parent stays at top level.
						for q := 0; q < n; q++ {
							g[q] = d.StepReturn(cur.f[q], d.start, sym)
						}
						returnT[key] = intern(buState{f: g, parent: top})
					} else {
						// Matched return: the call-parent's symbol is
						// cur.parent and A's state just before that call,
						// starting from q, is p = below.f[q]; the
						// hierarchical state A pushed there is δ^h_c(p) and
						// A's state just before the return is cur.f[p].
						callSym := syms[cur.parent]
						for q := 0; q < n; q++ {
							p := below.f[q]
							_, h := d.StepCall(p, callSym)
							g[q] = d.StepReturn(cur.f[p], h, sym)
						}
						returnT[key] = intern(buState{f: g, parent: below.parent})
					}
				}
			}
		}
		if len(states) == before {
			break
		}
	}

	b := NewDNWABuilder(d.alpha, len(states))
	b.SetStart(start)
	for id, st := range states {
		if d.IsAccepting(st.f[d.start]) {
			b.SetAccept(id)
		}
	}
	for k, v := range internalT {
		b.Internal(k.from, syms[k.sym], v)
	}
	for k, v := range callT {
		b.Call(k.from, syms[k.sym], v.Linear, v.Hier)
	}
	for k, v := range returnT {
		b.Return(k.lin, k.hier, syms[k.sym], v)
	}
	return b.Build()
}

// BottomUpStateBound returns the state bound s^s·|Σ| of Theorem 4 for an
// automaton with s states over an alphabet of the given size; it is reported
// alongside the measured reachable-state counts in experiment E5.
func BottomUpStateBound(s, sigma int) float64 {
	bound := float64(sigma)
	for i := 0; i < s; i++ {
		bound *= float64(s)
	}
	return bound
}
