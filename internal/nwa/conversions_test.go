package nwa

import (
	"math/rand"
	"testing"

	"repro/internal/nestedword"
	"repro/internal/word"
)

func TestToWeakIsWeakAndEquivalent(t *testing.T) {
	d := matchedSymbols()
	w := d.ToWeak()
	if !w.IsWeak() {
		t.Fatalf("ToWeak must produce a weak automaton")
	}
	if d.IsWeak() {
		t.Errorf("matchedSymbols is not weak (it propagates symbols on hierarchical edges)")
	}
	if !Equivalent(d, w) {
		t.Fatalf("ToWeak must preserve the language")
	}
	// State bound of Theorem 1 (with the top-level marker): s·(|Σ|+1) + 1.
	want := d.NumStates()*(testAlpha.Size()+1) + 1
	if w.NumStates() != want {
		t.Errorf("weak automaton has %d states, want %d", w.NumStates(), want)
	}
}

func TestToWeakRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 12; trial++ {
		d := randomDNWA(rng, 2+rng.Intn(3))
		w := d.ToWeak()
		if !w.IsWeak() {
			t.Fatalf("trial %d: result not weak", trial)
		}
		for i := 0; i < 60; i++ {
			n := randomNestedWord(rng, 12)
			if d.Accepts(n) != w.Accepts(n) {
				t.Fatalf("trial %d: weak conversion differs on %v", trial, n)
			}
		}
	}
}

func TestFlatConversionsTheorem2(t *testing.T) {
	// Build a random DFA over the tagged alphabet, view it as a flat NWA,
	// and check Theorem 2's correspondence on random nested words: the flat
	// NWA accepts n iff the DFA accepts nw_w(n).
	rng := rand.New(rand.NewSource(53))
	tagged := TaggedAlphabet(testAlpha)
	for trial := 0; trial < 10; trial++ {
		numStates := 2 + rng.Intn(5)
		b := word.NewDFABuilder(tagged, numStates)
		b.SetStart(rng.Intn(numStates))
		for q := 0; q < numStates; q++ {
			if rng.Intn(2) == 0 {
				b.SetAccept(q)
			}
			for _, sym := range tagged.Symbols() {
				b.AddTransition(q, sym, rng.Intn(numStates))
			}
		}
		dfa := b.Build()
		flat := FlatFromDFA(dfa, testAlpha)
		if !flat.IsFlat() {
			t.Fatalf("FlatFromDFA must produce a flat automaton")
		}
		for i := 0; i < 80; i++ {
			n := randomNestedWord(rng, 12)
			if flat.Accepts(n) != dfa.Accepts(TaggedWord(n)) {
				t.Fatalf("trial %d: flat NWA and DFA disagree on %v", trial, n)
			}
		}
		// Converting back gives an equivalent DFA.
		back := FlatToDFA(flat)
		for i := 0; i < 80; i++ {
			n := randomNestedWord(rng, 12)
			if back.Accepts(TaggedWord(n)) != dfa.Accepts(TaggedWord(n)) {
				t.Fatalf("trial %d: FlatToDFA round trip differs on %v", trial, n)
			}
		}
	}
}

func TestTaggedWordHelpers(t *testing.T) {
	n := nestedword.MustParse("<a b a> c")
	tw := TaggedWord(n)
	want := []string{"<a", "b", "a>", "c"}
	for i := range want {
		if tw[i] != want[i] {
			t.Fatalf("TaggedWord = %v, want %v", tw, want)
		}
	}
	back := NestedFromTagged(tw)
	if !back.Equal(n) {
		t.Errorf("NestedFromTagged(TaggedWord(n)) = %v, want %v", back, n)
	}
	if TaggedCall("a") != "<a" || TaggedInternal("a") != "a" || TaggedReturn("a") != "a>" {
		t.Errorf("tagged symbol helpers broken")
	}
	if TaggedAlphabet(testAlpha).Size() != 6 {
		t.Errorf("tagged alphabet of Σ={a,b} must have 6 symbols")
	}
}

func TestFlatFromWordDFAOverPlainAlphabet(t *testing.T) {
	// The linear-order query "a before b" as a DFA over Σ, lifted to a flat
	// NWA: it must ignore the call/return structure entirely.
	dfa := word.CompileRegexDFA(word.LinearOrderQuery("a", "b"), testAlpha)
	flat := FlatFromWordDFAOverPlainAlphabet(dfa, testAlpha)
	if !flat.IsFlat() {
		t.Fatalf("lifted automaton must be flat")
	}
	cases := map[string]bool{
		"a b":         true,
		"<a <b b> a>": true,
		"b a":         false,
		"<b a>":       false,
		"b> <a b":     true,
	}
	for in, want := range cases {
		if got := flat.Accepts(nestedword.MustParse(in)); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestToBottomUpOnWellMatchedWords(t *testing.T) {
	d := matchedSymbols()
	bu := d.ToBottomUp()
	if !bu.IsBottomUp() {
		t.Fatalf("ToBottomUp must produce a bottom-up automaton")
	}
	if !bu.IsWeak() {
		t.Fatalf("ToBottomUp must produce a weak automaton")
	}
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 300; i++ {
		n := randomWellMatched(rng, 16)
		if d.Accepts(n) != bu.Accepts(n) {
			t.Fatalf("bottom-up conversion differs on well-matched word %v", n)
		}
	}
}

func TestToBottomUpRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		d := randomDNWA(rng, 2+rng.Intn(2))
		bu := d.ToBottomUp()
		if !bu.IsBottomUp() {
			t.Fatalf("trial %d: result not bottom-up", trial)
		}
		for i := 0; i < 60; i++ {
			n := randomWellMatched(rng, 12)
			if d.Accepts(n) != bu.Accepts(n) {
				t.Fatalf("trial %d: differs on %v", trial, n)
			}
		}
	}
}

func TestBottomUpCannotSeePrefixOfPendingCall(t *testing.T) {
	// Section 3.4: the language {a⟨a} is accepted by a flat NWA but not by
	// any bottom-up NWA.  We build the flat automaton and verify that its
	// bottom-up conversion (which is only guaranteed on well-matched words)
	// indeed behaves identically on well-matched words while the pending
	// call example is out of scope.
	b := NewDNWABuilder(testAlpha, 3)
	b.SetStart(0).SetAccept(2)
	b.Internal(0, "a", 1)
	b.Call(1, "a", 2, 0)
	flat := b.Build()
	target := nestedword.MustParse("a <a")
	if !flat.Accepts(target) {
		t.Fatalf("flat automaton should accept a⟨a")
	}
	bu := flat.ToBottomUp()
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 200; i++ {
		n := randomWellMatched(rng, 10)
		if flat.Accepts(n) != bu.Accepts(n) {
			t.Fatalf("bottom-up conversion must agree on well-matched words, differs on %v", n)
		}
	}
	// A bottom-up automaton accepting a⟨a would also accept n⟨a for any n;
	// check the defining property of bottom-up automata on the converted
	// machine: the linear successor of a call does not depend on the state.
	if !bu.IsBottomUp() {
		t.Errorf("conversion must be bottom-up")
	}
}

func TestBottomUpStateBound(t *testing.T) {
	if got := BottomUpStateBound(2, 2); got != 8 {
		t.Errorf("BottomUpStateBound(2,2) = %v, want 8", got)
	}
	if got := BottomUpStateBound(3, 1); got != 27 {
		t.Errorf("BottomUpStateBound(3,1) = %v, want 27", got)
	}
}

func TestToJoinlessPreservesLanguage(t *testing.T) {
	a := someCallSomeReturnMismatch()
	j := a.ToJoinless()
	if j.NumStates() != JoinlessStateBound(a.NumStates(), testAlpha.Size()) {
		t.Errorf("joinless automaton size %d does not match the reported bound %d",
			j.NumStates(), JoinlessStateBound(a.NumStates(), testAlpha.Size()))
	}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 200; i++ {
		n := randomNoPendingCalls(rng, 12)
		if got, want := j.Accepts(n), a.Accepts(n); got != want {
			t.Fatalf("joinless conversion differs on %v: got %v want %v", n, got, want)
		}
	}
}

func TestToJoinlessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		a := randomNNWA(rng, 2+rng.Intn(3))
		j := a.ToJoinless()
		for i := 0; i < 40; i++ {
			n := randomNoPendingCalls(rng, 10)
			if got, want := j.Accepts(n), a.Accepts(n); got != want {
				t.Fatalf("trial %d: joinless differs on %v: got %v want %v", trial, n, got, want)
			}
		}
		// On arbitrary words the conversion may only over-approximate
		// (L(A) ⊆ L(B)); verify the inclusion direction.
		for i := 0; i < 40; i++ {
			n := randomNestedWord(rng, 10)
			if a.Accepts(n) && !j.Accepts(n) {
				t.Fatalf("trial %d: joinless conversion lost the word %v", trial, n)
			}
		}
	}
}

func TestJoinlessTypingPanics(t *testing.T) {
	j := NewJNWA(testAlpha, 2)
	j.MarkHierarchical(0)
	defer func() {
		if recover() == nil {
			t.Errorf("a joinless call from a hierarchical state to a linear state should panic")
		}
	}()
	j.AddCall(0, "a", 1, 1)
}

func TestJNWADirectConstruction(t *testing.T) {
	// A joinless automaton accepting exactly the single pending call "<a":
	// state 0 (linear, initial), state 1 (linear, accepting), state 2
	// (hierarchical dead marker pushed at the call).
	j := NewJNWA(testAlpha, 3)
	j.MarkHierarchical(2)
	j.AddStart(0)
	j.AddAccept(1)
	j.AddCall(0, "a", 1, 2)
	cases := map[string]bool{
		"<a":    true,
		"":      false,
		"<a a>": false,
		"<a <a": false,
		"a":     false,
		"<b":    false,
	}
	for in, want := range cases {
		if got := j.Accepts(nestedword.MustParse(in)); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
	if j.IsEmpty() {
		t.Errorf("the language {<a} is not empty")
	}
	if !j.IsDeterministic() {
		t.Errorf("this automaton is deterministic")
	}
	if j.IsTopDown() || j.IsFlatJoinless() {
		t.Errorf("mode predicates wrong: automaton mixes linear and hierarchical states")
	}
}

func TestJNWAStateHelpers(t *testing.T) {
	j := NewJNWA(testAlpha, 0)
	lin := j.AddState()
	hier := j.AddHierarchicalState()
	if j.IsHierarchical(lin) || !j.IsHierarchical(hier) {
		t.Errorf("state kind bookkeeping broken")
	}
	j.AddStart(lin)
	j.AddAccept(hier)
	if got := j.StartStates(); len(got) != 1 || got[0] != lin {
		t.Errorf("StartStates = %v", got)
	}
	if !j.IsAccepting(hier) || j.IsAccepting(lin) {
		t.Errorf("IsAccepting broken")
	}
	if j.Alphabet() != testAlpha || j.NumStates() != 2 {
		t.Errorf("accessors broken")
	}
	// Nondeterminism check.
	j.AddInternal(lin, "a", lin)
	j.AddInternal(lin, "a", hier)
	if j.IsDeterministic() {
		t.Errorf("two internal successors should make the automaton nondeterministic")
	}
}

func TestFlatAutomatonAsJoinless(t *testing.T) {
	// A flat automaton is a joinless automaton with Ql = Q (Section 3.5).
	// Build the "even number of a's" automaton directly as a joinless
	// automaton with only linear states and check it against the flat DNWA.
	j := NewJNWA(testAlpha, 2)
	j.AddStart(0)
	j.AddAccept(0)
	j.AddInternal(0, "a", 1).AddInternal(1, "a", 0)
	j.AddInternal(0, "b", 0).AddInternal(1, "b", 1)
	j.AddCall(0, "a", 1, 0).AddCall(1, "a", 0, 0)
	j.AddCall(0, "b", 0, 0).AddCall(1, "b", 1, 0)
	j.AddReturn(0, "a", 1).AddReturn(1, "a", 0)
	j.AddReturn(0, "b", 0).AddReturn(1, "b", 1)
	if !j.IsFlatJoinless() {
		t.Fatalf("all states are linear")
	}
	d := evenAs()
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		n := randomNestedWord(rng, 12)
		if j.Accepts(n) != d.Accepts(n) {
			t.Fatalf("joinless flat automaton differs from the flat DNWA on %v", n)
		}
	}
}

func TestDeterminizationOfWeakStaysEquivalent(t *testing.T) {
	// Determinize(ToNondeterministic(weak automaton)) stays equivalent;
	// exercises the full pipeline on a non-trivial automaton.
	d := matchedSymbols().ToWeak()
	nd := d.ToNondeterministic().Determinize()
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 150; i++ {
		n := randomNestedWord(rng, 10)
		if d.Accepts(n) != nd.Accepts(n) {
			t.Fatalf("pipeline changed the language on %v", n)
		}
	}
}
