package nwa

import (
	"sort"
)

// Determinization of nondeterministic nested word automata (Section 3.2):
// given a nondeterministic automaton with s states, an equivalent
// deterministic NWA with at most 2^(s²) summary components is constructed.
//
// The deterministic states are pairs (S, R) where
//
//   - S ⊆ Q×Q is the set of summary pairs (q, q') such that the automaton
//     has a run from q to q' over the portion of the input read since the
//     position following the last pending call (or since the beginning of
//     the word when no call is pending), and
//   - R ⊆ Q is the set of states reachable from an initial state over the
//     entire prefix read so far.
//
// At a call the automaton propagates the current pair together with the call
// symbol along the hierarchical edge, resets S to the identity and advances
// R through the linear component of the call relation.  At a matched return
// the stored pair is combined with the current pair through the call and
// return relations; at a pending return (hierarchical state = initial state
// of the deterministic automaton) the return relation is applied with the
// nondeterministic automaton's initial states as hierarchical states.

// detKey is the canonical encoding of a deterministic state: the sorted
// summary pairs, the sorted reachable set, and the call symbol index for
// hierarchical marker states (-1 for linear states and the initial state).
type detKey string

func encodeSimulation(sim simulationState, symIdx int) detKey {
	pairs := make([]statePair, 0, len(sim.S))
	for p := range sim.S {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	reach := make([]int, 0, len(sim.R))
	for q := range sim.R {
		reach = append(reach, q)
	}
	sort.Ints(reach)
	buf := make([]byte, 0, 8*len(pairs)+4*len(reach)+8)
	put := func(v int) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	put(symIdx)
	put(len(pairs))
	for _, p := range pairs {
		put(p.from)
		put(p.to)
	}
	for _, q := range reach {
		put(q)
	}
	return detKey(buf)
}

// Determinize builds an equivalent deterministic NWA by the subset-of-pairs
// construction.  Only states reachable in the exploration are created; the
// return transitions are filled in for every (discovered linear state,
// discovered hierarchical state) combination, which over-approximates the
// reachable combinations but never changes the language.
func (n *NNWA) Determinize() *DNWA {
	type detState struct {
		sim simulationState
		sym int // call symbol index for hierarchical markers, -1 otherwise
	}
	index := make(map[detKey]int)
	var states []detState

	intern := func(sim simulationState, sym int) int {
		key := encodeSimulation(sim, sym)
		if id, ok := index[key]; ok {
			return id
		}
		id := len(states)
		index[key] = id
		states = append(states, detState{sim: sim, sym: sym})
		return id
	}

	start := intern(n.initialSimulation(), -1)

	// Deterministic transitions, keyed like the DNWA maps but with local
	// state numbering; converted to a DNWA at the end.
	type pendingCall struct {
		from int
		sym  int
	}
	callT := make(map[pendingCall]callTarget)
	internT := make(map[pendingCall]int)
	type pendingReturn struct {
		lin, hier, sym int
	}
	returnT := make(map[pendingReturn]int)

	// Exploration: linear states and hierarchical marker states are both
	// discovered; return transitions combine every linear state with every
	// hierarchical marker (plus the initial state for pending returns).
	linearSeen := map[int]bool{start: true}
	hierSeen := map[int]bool{start: true}
	linearList := []int{start}
	hierList := []int{start}
	processedReturn := make(map[[2]int]bool)

	for iLin := 0; iLin < len(linearList); iLin++ {
		lin := linearList[iLin]
		sim := states[lin].sim
		for s := 0; s < n.alpha.Size(); s++ {
			sym := n.alpha.Symbol(s)
			// Internal.
			next := intern(n.stepInternal(sim, sym), -1)
			internT[pendingCall{lin, s}] = next
			if !linearSeen[next] {
				linearSeen[next] = true
				linearList = append(linearList, next)
			}
			// Call: linear successor plus hierarchical marker.
			linNext := intern(n.stepCall(sim, sym), -1)
			hierNext := intern(sim, s)
			callT[pendingCall{lin, s}] = callTarget{Linear: linNext, Hier: hierNext}
			if !linearSeen[linNext] {
				linearSeen[linNext] = true
				linearList = append(linearList, linNext)
			}
			if !hierSeen[hierNext] {
				hierSeen[hierNext] = true
				hierList = append(hierList, hierNext)
			}
		}
		// Return transitions for this linear state against every known
		// hierarchical state (including combinations discovered later: the
		// outer loop below re-scans, so iterate hierList via index and
		// re-visit when it grows).
		for iH := 0; iH < len(hierList); iH++ {
			hier := hierList[iH]
			if processedReturn[[2]int{lin, hier}] {
				continue
			}
			processedReturn[[2]int{lin, hier}] = true
			for s := 0; s < n.alpha.Size(); s++ {
				sym := n.alpha.Symbol(s)
				var nextSim simulationState
				if states[hier].sym < 0 {
					// Hierarchical state without a call marker: this is the
					// initial state, i.e. a pending return.
					nextSim = n.stepReturnPending(sim, sym)
				} else {
					nextSim = n.stepReturnMatched(sim, states[hier].sim, n.alpha.Symbol(states[hier].sym), sym)
				}
				next := intern(nextSim, -1)
				returnT[pendingReturn{lin, hier, s}] = next
				if !linearSeen[next] {
					linearSeen[next] = true
					linearList = append(linearList, next)
				}
			}
		}
		// If new hierarchical states were discovered after this linear state
		// was processed, the pairs are picked up when those hierarchical
		// states cause new linear states, or on the final completion pass
		// below.
	}

	// Completion pass: make sure every (linear, hier) combination has its
	// return transitions (the main loop may have missed pairs whose
	// hierarchical state was discovered after the linear state was
	// processed).
	for changed := true; changed; {
		changed = false
		for iLin := 0; iLin < len(linearList); iLin++ {
			lin := linearList[iLin]
			sim := states[lin].sim
			for iH := 0; iH < len(hierList); iH++ {
				hier := hierList[iH]
				if processedReturn[[2]int{lin, hier}] {
					continue
				}
				processedReturn[[2]int{lin, hier}] = true
				changed = true
				for s := 0; s < n.alpha.Size(); s++ {
					sym := n.alpha.Symbol(s)
					var nextSim simulationState
					if states[hier].sym < 0 {
						nextSim = n.stepReturnPending(sim, sym)
					} else {
						nextSim = n.stepReturnMatched(sim, states[hier].sim, n.alpha.Symbol(states[hier].sym), sym)
					}
					next := intern(nextSim, -1)
					returnT[pendingReturn{lin, hier, s}] = next
					if !linearSeen[next] {
						linearSeen[next] = true
						linearList = append(linearList, next)
						// New linear states need their call/internal rows too;
						// simplest is to restart the outer pass.
					}
				}
			}
			for s := 0; s < n.alpha.Size(); s++ {
				if _, ok := internT[pendingCall{lin, s}]; ok {
					continue
				}
				changed = true
				sym := n.alpha.Symbol(s)
				next := intern(n.stepInternal(sim, sym), -1)
				internT[pendingCall{lin, s}] = next
				if !linearSeen[next] {
					linearSeen[next] = true
					linearList = append(linearList, next)
				}
				linNext := intern(n.stepCall(sim, sym), -1)
				hierNext := intern(sim, s)
				callT[pendingCall{lin, s}] = callTarget{Linear: linNext, Hier: hierNext}
				if !linearSeen[linNext] {
					linearSeen[linNext] = true
					linearList = append(linearList, linNext)
				}
				if !hierSeen[hierNext] {
					hierSeen[hierNext] = true
					hierList = append(hierList, hierNext)
				}
			}
		}
	}

	// Assemble the deterministic automaton.
	b := NewDNWABuilder(n.alpha, len(states))
	b.SetStart(start)
	for id, st := range states {
		if st.sym >= 0 {
			continue // hierarchical markers are never accepting
		}
		for q := range st.sim.R {
			if n.accept[q] {
				b.SetAccept(id)
				break
			}
		}
	}
	for k, v := range internT {
		b.Internal(k.from, n.alpha.Symbol(k.sym), v)
	}
	for k, v := range callT {
		b.Call(k.from, n.alpha.Symbol(k.sym), v.Linear, v.Hier)
	}
	for k, v := range returnT {
		b.Return(k.lin, k.hier, n.alpha.Symbol(k.sym), v)
	}
	return b.Build()
}

// Complement returns a deterministic NWA accepting NW(Σ) \ L(n), obtained by
// determinizing and flipping the final states (Section 3.2).
func (n *NNWA) Complement() *DNWA { return n.Determinize().Complement() }

// UnionN returns a nondeterministic NWA accepting L(a) ∪ L(b): the disjoint
// union of the two automata.
func UnionN(a, b *NNWA) *NNWA {
	if !a.alpha.Equal(b.alpha) {
		panic("nwa: union of automata over different alphabets")
	}
	u := NewNNWA(a.alpha, a.num+b.num)
	off := a.num
	for q := range a.starts {
		u.AddStart(q)
	}
	for q := range b.starts {
		u.AddStart(q + off)
	}
	for q := range a.accept {
		u.AddAccept(q)
	}
	for q := range b.accept {
		u.AddAccept(q + off)
	}
	copyTransitions := func(src *NNWA, shift int) {
		for k, targets := range src.callR {
			for _, t := range targets {
				u.AddCall(k.state+shift, src.alpha.Symbol(k.sym), t.Linear+shift, t.Hier+shift)
			}
		}
		for k, targets := range src.internR {
			for _, t := range targets {
				u.AddInternal(k.state+shift, src.alpha.Symbol(k.sym), t+shift)
			}
		}
		for k, targets := range src.returnR {
			for _, t := range targets {
				u.AddReturn(k.lin+shift, k.hier+shift, src.alpha.Symbol(k.sym), t+shift)
			}
		}
	}
	copyTransitions(a, 0)
	copyTransitions(b, off)
	return u
}
