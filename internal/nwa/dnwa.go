// Package nwa implements nested word automata (NWAs), the primary
// contribution of "Marrying Words and Trees" (Alur, PODS 2007), Section 3.
//
// The package provides:
//
//   - deterministic NWAs (type DNWA) with linear-time membership,
//   - nondeterministic NWAs (type NNWA) with polynomial membership,
//     determinization, emptiness, inclusion and equivalence,
//   - boolean and word/tree closure constructions,
//   - the restricted classes studied in the paper: weak automata
//     (Theorem 1), flat automata (Theorem 2), bottom-up automata
//     (Theorem 4), and joinless / top-down automata (Theorems 6–8),
//     together with the conversion constructions of those theorems.
//
// States are dense integers 0..NumStates-1.  Transition functions are kept
// in maps keyed by (state, symbol) — or (state, state, symbol) for return
// transitions — with an implicit absorbing dead state completing partial
// automata, so that very large constructed automata (for example the
// s^s-state bottom-up automata of Theorem 4) only pay for the transitions
// they actually define.
package nwa

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// callKey / internalKey index call and internal transitions; returnKey
// indexes return transitions by (linear state, hierarchical state, symbol).
type callKey struct {
	state int
	sym   int
}

type returnKey struct {
	lin  int
	hier int
	sym  int
}

// callTarget is the pair (linear successor, hierarchical successor) produced
// by a call transition.
type callTarget struct {
	Linear int
	Hier   int
}

// DNWA is a deterministic nested word automaton
// (Q, q0, F, δc, δi, δr) as in Section 3.1.  The automaton is complete:
// transitions not present in the maps go to the dead state, a non-accepting
// absorbing state included in NumStates.
type DNWA struct {
	alpha   *alphabet.Alphabet
	num     int // number of states, including the dead state
	start   int
	dead    int
	accept  []bool
	callT   map[callKey]callTarget
	internT map[callKey]int
	returnT map[returnKey]int
}

// DNWABuilder assembles a deterministic NWA.
type DNWABuilder struct {
	a *DNWA
}

// NewDNWABuilder creates a builder for a DNWA over the given alphabet with
// numStates user states (a dead state is appended automatically).  The start
// state defaults to 0.
func NewDNWABuilder(alpha *alphabet.Alphabet, numStates int) *DNWABuilder {
	d := &DNWA{
		alpha:   alpha,
		num:     numStates + 1,
		start:   0,
		dead:    numStates,
		accept:  make([]bool, numStates+1),
		callT:   make(map[callKey]callTarget),
		internT: make(map[callKey]int),
		returnT: make(map[returnKey]int),
	}
	return &DNWABuilder{a: d}
}

// SetStart sets the initial state q0.
func (b *DNWABuilder) SetStart(q int) *DNWABuilder { b.a.start = q; return b }

// SetAccept marks states as final.
func (b *DNWABuilder) SetAccept(states ...int) *DNWABuilder {
	for _, q := range states {
		b.a.accept[q] = true
	}
	return b
}

// Call sets δc(from, sym) = (linear, hier).
func (b *DNWABuilder) Call(from int, sym string, linear, hier int) *DNWABuilder {
	b.a.checkState(from, linear, hier)
	b.a.callT[callKey{from, b.a.alpha.MustIndex(sym)}] = callTarget{Linear: linear, Hier: hier}
	return b
}

// Internal sets δi(from, sym) = to.
func (b *DNWABuilder) Internal(from int, sym string, to int) *DNWABuilder {
	b.a.checkState(from, to)
	b.a.internT[callKey{from, b.a.alpha.MustIndex(sym)}] = to
	return b
}

// Return sets δr(lin, hier, sym) = to.
func (b *DNWABuilder) Return(lin, hier int, sym string, to int) *DNWABuilder {
	b.a.checkState(lin, hier, to)
	b.a.returnT[returnKey{lin, hier, b.a.alpha.MustIndex(sym)}] = to
	return b
}

// Build returns the completed automaton.
func (b *DNWABuilder) Build() *DNWA { return b.a }

func (d *DNWA) checkState(states ...int) {
	for _, q := range states {
		if q < 0 || q >= d.num {
			panic(fmt.Sprintf("nwa: state %d out of range [0,%d)", q, d.num))
		}
	}
}

// Alphabet returns the automaton's alphabet.
func (d *DNWA) Alphabet() *alphabet.Alphabet { return d.alpha }

// NumStates returns the number of states including the dead state.
func (d *DNWA) NumStates() int { return d.num }

// Start returns the initial state q0.
func (d *DNWA) Start() int { return d.start }

// Dead returns the absorbing dead state.
func (d *DNWA) Dead() int { return d.dead }

// IsAccepting reports whether q ∈ F.
func (d *DNWA) IsAccepting(q int) bool { return q >= 0 && q < d.num && d.accept[q] }

// AcceptingStates returns the sorted list of final states.
func (d *DNWA) AcceptingStates() []int {
	var out []int
	for q, a := range d.accept {
		if a {
			out = append(out, q)
		}
	}
	return out
}

// StepCall returns δc(q, sym) = (linear, hier); unknown symbols and missing
// transitions go to the dead state.
func (d *DNWA) StepCall(q int, sym string) (linear, hier int) {
	s, ok := d.alpha.Index(sym)
	if !ok {
		return d.dead, d.dead
	}
	if t, ok := d.callT[callKey{q, s}]; ok {
		return t.Linear, t.Hier
	}
	return d.dead, d.dead
}

// StepInternal returns δi(q, sym).
func (d *DNWA) StepInternal(q int, sym string) int {
	s, ok := d.alpha.Index(sym)
	if !ok {
		return d.dead
	}
	if t, ok := d.internT[callKey{q, s}]; ok {
		return t
	}
	return d.dead
}

// StepReturn returns δr(lin, hier, sym).
func (d *DNWA) StepReturn(lin, hier int, sym string) int {
	s, ok := d.alpha.Index(sym)
	if !ok {
		return d.dead
	}
	if t, ok := d.returnT[returnKey{lin, hier, s}]; ok {
		return t
	}
	return d.dead
}

// Run is the unique run of the automaton over the nested word: the sequence
// of linear states q0, q1, ..., qℓ (Section 3.1).  The hierarchical states
// are available via RunWithHierarchy.
func (d *DNWA) Run(n *nestedword.NestedWord) []int {
	states, _ := d.RunWithHierarchy(n)
	return states
}

// RunWithHierarchy returns the linear state sequence of the unique run and,
// for each position, the hierarchical state labelling its incoming or
// outgoing hierarchical edge (-1 for internals).  For a call position the
// entry is the state propagated along the outgoing hierarchical edge; for a
// return position it is the state on the incoming hierarchical edge (q0 for
// pending returns).
func (d *DNWA) RunWithHierarchy(n *nestedword.NestedWord) (linear []int, hier []int) {
	l := n.Len()
	linear = make([]int, l+1)
	hier = make([]int, l)
	linear[0] = d.start
	// stack holds the states labelling the currently pending hierarchical
	// edges; its height is bounded by the depth of the word.
	var stack []int
	for i := 0; i < l; i++ {
		p := n.At(i)
		q := linear[i]
		switch p.Kind {
		case nestedword.Internal:
			linear[i+1] = d.StepInternal(q, p.Symbol)
			hier[i] = -1
		case nestedword.Call:
			lin, h := d.StepCall(q, p.Symbol)
			linear[i+1] = lin
			hier[i] = h
			stack = append(stack, h)
		case nestedword.Return:
			var h int
			if len(stack) == 0 {
				// Pending return: the hierarchical edge comes from −∞ and is
				// labelled with the initial state (Section 3.1).
				h = d.start
			} else {
				h = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
			hier[i] = h
			linear[i+1] = d.StepReturn(q, h, p.Symbol)
		}
	}
	return linear, hier
}

// Accepts reports whether the automaton accepts the nested word: the last
// linear state of the unique run is final.  Time is linear in the length of
// the word and space is proportional to its depth.
func (d *DNWA) Accepts(n *nestedword.NestedWord) bool {
	l := n.Len()
	q := d.start
	var stack []int
	for i := 0; i < l; i++ {
		p := n.At(i)
		switch p.Kind {
		case nestedword.Internal:
			q = d.StepInternal(q, p.Symbol)
		case nestedword.Call:
			lin, h := d.StepCall(q, p.Symbol)
			stack = append(stack, h)
			q = lin
		case nestedword.Return:
			h := d.start
			if len(stack) > 0 {
				h = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
			q = d.StepReturn(q, h, p.Symbol)
		}
	}
	return d.accept[q]
}

// CallTransitions returns a copy of the call-transition map in an
// iteration-friendly form: for each defined (state, symbol) the pair of
// targets.  It is used by conversion constructions in this package and by
// the treeauto embeddings.
func (d *DNWA) CallTransitions() map[callKey]callTarget {
	out := make(map[callKey]callTarget, len(d.callT))
	for k, v := range d.callT {
		out[k] = v
	}
	return out
}

// EachCall calls f for every defined call transition δc(state, sym) =
// (linear, hier), with sym given as an alphabet index.  Transitions not
// visited go to the dead state.  It is the iteration hook used by
// query.Compile to build dense transition tables.
func (d *DNWA) EachCall(f func(state, sym, linear, hier int)) {
	for k, t := range d.callT {
		f(k.state, k.sym, t.Linear, t.Hier)
	}
}

// EachInternal calls f for every defined internal transition
// δi(state, sym) = to, with sym given as an alphabet index.
func (d *DNWA) EachInternal(f func(state, sym, to int)) {
	for k, t := range d.internT {
		f(k.state, k.sym, t)
	}
}

// EachReturn calls f for every defined return transition
// δr(lin, hier, sym) = to, with sym given as an alphabet index.
func (d *DNWA) EachReturn(f func(lin, hier, sym, to int)) {
	for k, t := range d.returnT {
		f(k.lin, k.hier, k.sym, t)
	}
}

// NumReturnTransitions returns the number of explicitly defined return
// transitions (the rest go to the dead state).  query.Compile uses it to
// choose between the dense and sparse compiled forms.
func (d *DNWA) NumReturnTransitions() int { return len(d.returnT) }

// ToNondeterministic converts the deterministic automaton to an equivalent
// nondeterministic one.
func (d *DNWA) ToNondeterministic() *NNWA {
	n := NewNNWA(d.alpha, d.num)
	n.AddStart(d.start)
	for q := 0; q < d.num; q++ {
		if d.accept[q] {
			n.AddAccept(q)
		}
	}
	for s := 0; s < d.alpha.Size(); s++ {
		sym := d.alpha.Symbol(s)
		for q := 0; q < d.num; q++ {
			lin, hier := d.StepCall(q, sym)
			n.AddCall(q, sym, lin, hier)
			n.AddInternal(q, sym, d.StepInternal(q, sym))
		}
		for lin := 0; lin < d.num; lin++ {
			for hier := 0; hier < d.num; hier++ {
				n.AddReturn(lin, hier, sym, d.StepReturn(lin, hier, sym))
			}
		}
	}
	return n
}

// Complement returns a deterministic NWA accepting the complement language
// NW(Σ) \ L(d): deterministic automata are complemented by flipping the
// final states (Section 3.2, closure under complementation).
func (d *DNWA) Complement() *DNWA {
	c := &DNWA{
		alpha:   d.alpha,
		num:     d.num,
		start:   d.start,
		dead:    d.dead,
		accept:  make([]bool, d.num),
		callT:   d.callT,
		internT: d.internT,
		returnT: d.returnT,
	}
	for q := 0; q < d.num; q++ {
		c.accept[q] = !d.accept[q]
	}
	return c
}

// product builds the synchronous product of two deterministic NWAs over the
// same alphabet, with acceptance combined by the given boolean function.
func product(a, b *DNWA, combine func(bool, bool) bool) *DNWA {
	if !a.alpha.Equal(b.alpha) {
		panic("nwa: product of automata over different alphabets")
	}
	nb := b.num
	pair := func(qa, qb int) int { return qa*nb + qb }
	p := &DNWA{
		alpha:   a.alpha,
		num:     a.num * b.num,
		start:   pair(a.start, b.start),
		dead:    pair(a.dead, b.dead),
		accept:  make([]bool, a.num*b.num),
		callT:   make(map[callKey]callTarget),
		internT: make(map[callKey]int),
		returnT: make(map[returnKey]int),
	}
	for qa := 0; qa < a.num; qa++ {
		for qb := 0; qb < b.num; qb++ {
			p.accept[pair(qa, qb)] = combine(a.accept[qa], b.accept[qb])
		}
	}
	for s := 0; s < a.alpha.Size(); s++ {
		sym := a.alpha.Symbol(s)
		for qa := 0; qa < a.num; qa++ {
			for qb := 0; qb < b.num; qb++ {
				q := pair(qa, qb)
				la, ha := a.StepCall(qa, sym)
				lb, hb := b.StepCall(qb, sym)
				p.callT[callKey{q, s}] = callTarget{Linear: pair(la, lb), Hier: pair(ha, hb)}
				p.internT[callKey{q, s}] = pair(a.StepInternal(qa, sym), b.StepInternal(qb, sym))
			}
		}
		// Return transitions: only pairs of (linear, hierarchical) states
		// that can actually co-occur are strictly needed, but enumerating
		// all pairs keeps the construction simple and matches the textbook
		// product.
		for la := 0; la < a.num; la++ {
			for lb := 0; lb < b.num; lb++ {
				for ha := 0; ha < a.num; ha++ {
					for hb := 0; hb < b.num; hb++ {
						p.returnT[returnKey{pair(la, lb), pair(ha, hb), s}] =
							pair(a.StepReturn(la, ha, sym), b.StepReturn(lb, hb, sym))
					}
				}
			}
		}
	}
	return p
}

// Intersect returns a deterministic NWA for L(a) ∩ L(b).
func Intersect(a, b *DNWA) *DNWA {
	return product(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a deterministic NWA for L(a) ∪ L(b).
func Union(a, b *DNWA) *DNWA {
	return product(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a deterministic NWA for L(a) \ L(b).
func Difference(a, b *DNWA) *DNWA {
	return product(a, b, func(x, y bool) bool { return x && !y })
}

// IsEmpty reports whether L(d) = ∅ using the summary-based reachability
// check described in Section 3.2 (cubic in the number of states).
func (d *DNWA) IsEmpty() bool { return isEmpty(d) }

// Equivalent reports whether two deterministic NWAs over the same alphabet
// accept the same language.  The two symmetric differences are explored as
// virtual products, so only reachable product states are visited.
func Equivalent(a, b *DNWA) bool { return Subset(a, b) && Subset(b, a) }

// Subset reports whether L(a) ⊆ L(b).
func Subset(a, b *DNWA) bool {
	if !a.alpha.Equal(b.alpha) {
		panic("nwa: inclusion check over different alphabets")
	}
	return isEmpty(&differenceAutom{a: a, b: b})
}

// Counterexample returns a nested word in L(a) \ L(b), or ok=false when
// L(a) ⊆ L(b).
func Counterexample(a, b *DNWA) (*nestedword.NestedWord, bool) {
	if !a.alpha.Equal(b.alpha) {
		panic("nwa: inclusion check over different alphabets")
	}
	return findAccepted(&differenceAutom{a: a, b: b})
}
