package nwa

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// matchedSymbols builds a deterministic NWA over {a,b} accepting exactly the
// well-matched nested words in which every matched call/return pair carries
// the same symbol.  It exercises information flow across hierarchical edges:
// the call pushes its symbol and the nesting flag, the return checks them.
func matchedSymbols() *DNWA {
	const (
		topOK    = 0 // at top level, everything consistent so far (accepting)
		insideOK = 1 // inside at least one open call
		pushTopA = 2 // pushed at a top-level a-call
		pushTopB = 3
		pushInsA = 4 // pushed at a nested a-call
		pushInsB = 5
	)
	b := NewDNWABuilder(testAlpha, 6)
	b.SetStart(topOK).SetAccept(topOK)
	for _, sym := range []string{"a", "b"} {
		b.Internal(topOK, sym, topOK)
		b.Internal(insideOK, sym, insideOK)
	}
	b.Call(topOK, "a", insideOK, pushTopA)
	b.Call(topOK, "b", insideOK, pushTopB)
	b.Call(insideOK, "a", insideOK, pushInsA)
	b.Call(insideOK, "b", insideOK, pushInsB)
	// Returns: the symbol must match the pushed symbol, and the pushed flag
	// restores the nesting level.  Everything else falls into the implicit
	// dead state.
	b.Return(insideOK, pushTopA, "a", topOK)
	b.Return(insideOK, pushTopB, "b", topOK)
	b.Return(insideOK, pushInsA, "a", insideOK)
	b.Return(insideOK, pushInsB, "b", insideOK)
	return b.Build()
}

// matchedSymbolsPredicate is the reference semantics for matchedSymbols.
func matchedSymbolsPredicate(n *nestedword.NestedWord) bool {
	if !n.IsWellMatched() {
		return false
	}
	for i := 0; i < n.Len(); i++ {
		if n.KindAt(i) == nestedword.Call {
			j, _ := n.ReturnSuccessor(i)
			if n.SymbolAt(j) != n.SymbolAt(i) {
				return false
			}
		}
	}
	return true
}

// evenAs builds a flat deterministic NWA accepting nested words with an even
// number of a-labelled positions (of any kind).
func evenAs() *DNWA {
	b := NewDNWABuilder(testAlpha, 2)
	b.SetStart(0).SetAccept(0)
	b.Internal(0, "a", 1).Internal(1, "a", 0).Internal(0, "b", 0).Internal(1, "b", 1)
	b.Call(0, "a", 1, 0).Call(1, "a", 0, 0).Call(0, "b", 0, 0).Call(1, "b", 1, 0)
	for lin := 0; lin < 3; lin++ {
		for hier := 0; hier < 3; hier++ {
			b.Return(lin, hier, "a", flipState(lin))
			b.Return(lin, hier, "b", lin)
		}
	}
	return b.Build()
}

func flipState(q int) int {
	if q == 0 {
		return 1
	}
	if q == 1 {
		return 0
	}
	return q
}

func evenAsPredicate(n *nestedword.NestedWord) bool {
	count := 0
	for i := 0; i < n.Len(); i++ {
		if n.SymbolAt(i) == "a" {
			count++
		}
	}
	return count%2 == 0
}

func TestMatchedSymbolsAccepts(t *testing.T) {
	d := matchedSymbols()
	cases := map[string]bool{
		"":                  true,
		"a b":               true,
		"<a a>":             true,
		"<a b a>":           true,
		"<a <b b> a>":       true,
		"<a b>":             false,
		"<a a> b>":          false,
		"<a <b a> b>":       false,
		"<a":                false,
		"a>":                false,
		"<a <a a> a> b":     true,
		"<b <a a> <b b> b>": true,
	}
	for in, want := range cases {
		n := nestedword.MustParse(in)
		if got := d.Accepts(n); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestMatchedSymbolsAgainstPredicateRandom(t *testing.T) {
	d := matchedSymbols()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		n := randomNestedWord(rng, 20)
		if got, want := d.Accepts(n), matchedSymbolsPredicate(n); got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestEvenAsIsFlatAndCorrect(t *testing.T) {
	d := evenAs()
	if !d.IsFlat() {
		t.Errorf("evenAs should be flat")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := randomNestedWord(rng, 15)
		if got, want := d.Accepts(n), evenAsPredicate(n); got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestRunShape(t *testing.T) {
	d := matchedSymbols()
	n := nestedword.MustParse("<a <b b> a>")
	linear, hier := d.RunWithHierarchy(n)
	if len(linear) != n.Len()+1 {
		t.Fatalf("linear run length = %d, want %d", len(linear), n.Len()+1)
	}
	if len(hier) != n.Len() {
		t.Fatalf("hier labels length = %d, want %d", len(hier), n.Len())
	}
	if linear[0] != d.Start() {
		t.Errorf("run must start in the initial state")
	}
	if d.IsAccepting(linear[n.Len()]) != d.Accepts(n) {
		t.Errorf("final run state inconsistent with Accepts")
	}
	// Internal positions have no hierarchical label.
	if hier[1] == -1 {
		t.Errorf("call position should have a hierarchical label")
	}
	run := d.Run(n)
	for i := range run {
		if run[i] != linear[i] {
			t.Errorf("Run and RunWithHierarchy disagree at %d", i)
		}
	}
}

func TestPendingReturnUsesInitialState(t *testing.T) {
	// Build an automaton that accepts exactly the single pending return "a>"
	// by distinguishing the hierarchical initial state at returns.
	b := NewDNWABuilder(testAlpha, 2)
	b.SetStart(0).SetAccept(1)
	b.Return(0, 0, "a", 1)
	d := b.Build()
	if !d.Accepts(nestedword.MustParse("a>")) {
		t.Errorf("pending return should use the initial state on the hierarchical edge")
	}
	if d.Accepts(nestedword.MustParse("<a a>")) {
		t.Errorf("matched return pushes the dead hierarchical state here and must not accept")
	}
}

func TestComplementDNWA(t *testing.T) {
	d := matchedSymbols()
	c := d.Complement()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		n := randomNestedWord(rng, 15)
		if d.Accepts(n) == c.Accepts(n) {
			t.Fatalf("complement must disagree with the original on %v", n)
		}
	}
}

func TestBooleanProducts(t *testing.T) {
	a, b := matchedSymbols(), evenAs()
	inter := Intersect(a, b)
	union := Union(a, b)
	diff := Difference(a, b)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := randomNestedWord(rng, 12)
		ia, ib := a.Accepts(n), b.Accepts(n)
		if inter.Accepts(n) != (ia && ib) {
			t.Fatalf("Intersect wrong on %v", n)
		}
		if union.Accepts(n) != (ia || ib) {
			t.Fatalf("Union wrong on %v", n)
		}
		if diff.Accepts(n) != (ia && !ib) {
			t.Fatalf("Difference wrong on %v", n)
		}
	}
}

func TestProductPanicsOnAlphabetMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("product over different alphabets should panic")
		}
	}()
	other := NewDNWABuilder(alphabet.New("x"), 1).Build()
	Intersect(matchedSymbols(), other)
}

func TestIsEmptyAndSomeWord(t *testing.T) {
	// An automaton whose accepting state is unreachable.
	b := NewDNWABuilder(testAlpha, 3)
	b.SetStart(0).SetAccept(2)
	b.Internal(0, "a", 1).Internal(1, "a", 0)
	empty := b.Build()
	if !empty.IsEmpty() {
		t.Errorf("unreachable accepting state should give an empty language")
	}
	if _, ok := empty.SomeWord(); ok {
		t.Errorf("SomeWord on an empty language should fail")
	}

	d := matchedSymbols()
	if d.IsEmpty() {
		t.Errorf("matchedSymbols is not empty")
	}
	w, ok := d.SomeWord()
	if !ok {
		t.Fatalf("SomeWord should produce a witness")
	}
	if !d.Accepts(w) {
		t.Errorf("SomeWord witness %v is not accepted", w)
	}
}

func TestSomeWordNeedsHierarchy(t *testing.T) {
	// Intersecting matchedSymbols with "even number of a's" still has
	// witnesses; the witness must satisfy both predicates.
	inter := Intersect(matchedSymbols(), evenAs())
	w, ok := inter.SomeWord()
	if !ok {
		t.Fatalf("intersection should be non-empty")
	}
	if !matchedSymbolsPredicate(w) || !evenAsPredicate(w) {
		t.Errorf("witness %v violates the intersection predicates", w)
	}
}

func TestEquivalenceAndSubset(t *testing.T) {
	d := matchedSymbols()
	if !Equivalent(d, d) {
		t.Errorf("an automaton must be equivalent to itself")
	}
	if Equivalent(d, d.Complement()) {
		t.Errorf("an automaton must not be equivalent to its complement")
	}
	inter := Intersect(d, evenAs())
	if !Subset(inter, d) || !Subset(inter, evenAs()) {
		t.Errorf("an intersection must be included in both factors")
	}
	if Subset(d, inter) {
		t.Errorf("matchedSymbols is not included in the intersection")
	}
	if _, ok := Counterexample(inter, d); ok {
		t.Errorf("no counterexample should exist for a valid inclusion")
	}
	if ce, ok := Counterexample(d, inter); !ok {
		t.Errorf("a counterexample should exist")
	} else if !d.Accepts(ce) || inter.Accepts(ce) {
		t.Errorf("counterexample %v does not separate the languages", ce)
	}
}

func TestEquivalentPanicsOnAlphabetMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("inclusion over different alphabets should panic")
		}
	}()
	other := NewDNWABuilder(alphabet.New("x"), 1).Build()
	Subset(matchedSymbols(), other)
}

func TestAcceptingStatesAndDead(t *testing.T) {
	d := matchedSymbols()
	acc := d.AcceptingStates()
	if len(acc) != 1 || acc[0] != 0 {
		t.Errorf("AcceptingStates = %v, want [0]", acc)
	}
	if d.IsAccepting(d.Dead()) {
		t.Errorf("the dead state must not be accepting")
	}
	if d.NumStates() != 7 {
		t.Errorf("NumStates = %d, want 7 (6 + dead)", d.NumStates())
	}
	// Unknown symbols drive every step function to the dead state.
	if lin, hier := d.StepCall(0, "z"); lin != d.Dead() || hier != d.Dead() {
		t.Errorf("StepCall on unknown symbol should go to the dead state")
	}
	if d.StepInternal(0, "z") != d.Dead() || d.StepReturn(0, 0, "z") != d.Dead() {
		t.Errorf("unknown symbols should go to the dead state")
	}
}

func TestBuilderPanicsOnBadState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range state should panic")
		}
	}()
	NewDNWABuilder(testAlpha, 2).Internal(0, "a", 10)
}

func TestDNWAToNondeterministic(t *testing.T) {
	d := matchedSymbols()
	n := d.ToNondeterministic()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		w := randomNestedWord(rng, 10)
		if d.Accepts(w) != n.Accepts(w) {
			t.Fatalf("ToNondeterministic disagrees on %v", w)
		}
	}
}

func TestCallTransitionsCopy(t *testing.T) {
	d := matchedSymbols()
	m := d.CallTransitions()
	if len(m) == 0 {
		t.Fatalf("matchedSymbols has call transitions")
	}
	for k := range m {
		m[k] = callTarget{Linear: 0, Hier: 0}
	}
	// Mutating the copy must not affect the automaton.
	lin, hier := d.StepCall(0, "a")
	if lin != 1 || hier != 2 {
		t.Errorf("CallTransitions must return a copy")
	}
}
