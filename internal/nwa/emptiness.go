package nwa

import (
	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// autom is the nondeterministic view of a nested word automaton shared by
// the analysis algorithms (emptiness, witness generation, inclusion).  Both
// DNWA and NNWA implement it, as do the virtual product automata used for
// language inclusion so that products never have to be materialized.
type autom interface {
	Alphabet() *alphabet.Alphabet
	NumStates() int
	StartStates() []int
	IsAccepting(q int) bool
	CallSuccessors(q int, sym string) []callTarget
	InternalSuccessors(q int, sym string) []int
	ReturnSuccessors(lin, hier int, sym string) []int
}

// The emptiness check follows Section 3.2: it computes summaries of runs
// over well-matched nested words (pairs (c, q) such that some well-matched
// word takes context state c to q), then closes the set of reachable states
// under summaries, pending-return steps, and pending-call steps, exploiting
// the fact that in any nested word all pending returns precede all pending
// calls.  Contexts are created lazily, so only the reachable part of the
// automaton is ever touched; the worst case is cubic in the number of
// states, matching the bound stated in the paper.
//
// Every derived fact records how it was derived so that a witness nested
// word can be reconstructed when the language is non-empty.

type summaryReason struct {
	kind    string // "base", "internal", "callreturn"
	prev    statePair
	sym     string
	callSym string
	inner   statePair
	retSym  string
}

type reachReason struct {
	kind string // "start", "phaseA", "summary", "pendingreturn", "pendingcall"
	prev int
	pair statePair
	sym  string
}

// callEdgeInfo records that the summary outer exists and that a call
// transition on callSym from outer.to has hierarchical target hier; the map
// key under which the edge is stored is the call's linear target (the inner
// context).
type callEdgeInfo struct {
	outer   statePair
	callSym string
	hier    int
}

type workItem struct {
	kind string // "summary", "reachA", "reachB"
	pair statePair
	q    int
}

type analysis struct {
	a               autom
	syms            []string
	starts          []int
	summaries       map[statePair]summaryReason
	summariesByFrom map[int][]statePair
	contexts        map[int]bool
	callEdges       map[int][]callEdgeInfo
	reachA          map[int]reachReason
	reachB          map[int]reachReason
	worklist        []workItem
}

func analyze(a autom) *analysis {
	an := &analysis{
		a:               a,
		syms:            a.Alphabet().Symbols(),
		starts:          a.StartStates(),
		summaries:       make(map[statePair]summaryReason),
		summariesByFrom: make(map[int][]statePair),
		contexts:        make(map[int]bool),
		callEdges:       make(map[int][]callEdgeInfo),
		reachA:          make(map[int]reachReason),
		reachB:          make(map[int]reachReason),
	}
	for _, q := range an.starts {
		an.addReachA(q, reachReason{kind: "start"})
	}
	an.run()
	return an
}

func (an *analysis) addSummary(p statePair, r summaryReason) {
	if _, ok := an.summaries[p]; ok {
		return
	}
	an.summaries[p] = r
	an.summariesByFrom[p.from] = append(an.summariesByFrom[p.from], p)
	an.worklist = append(an.worklist, workItem{kind: "summary", pair: p})
	// Reach sets are closed under summaries from reachable contexts.
	if _, ok := an.reachA[p.from]; ok {
		an.addReachA(p.to, reachReason{kind: "summary", prev: p.from, pair: p})
	}
	if _, ok := an.reachB[p.from]; ok {
		an.addReachB(p.to, reachReason{kind: "summary", prev: p.from, pair: p})
	}
}

func (an *analysis) addContext(c int) {
	if an.contexts[c] {
		return
	}
	an.contexts[c] = true
	an.addSummary(statePair{c, c}, summaryReason{kind: "base"})
}

func (an *analysis) addReachA(q int, r reachReason) {
	if _, ok := an.reachA[q]; ok {
		return
	}
	an.reachA[q] = r
	an.addContext(q)
	an.worklist = append(an.worklist, workItem{kind: "reachA", q: q})
}

func (an *analysis) addReachB(q int, r reachReason) {
	if _, ok := an.reachB[q]; ok {
		return
	}
	an.reachB[q] = r
	an.addContext(q)
	an.worklist = append(an.worklist, workItem{kind: "reachB", q: q})
}

func (an *analysis) run() {
	for len(an.worklist) > 0 {
		item := an.worklist[len(an.worklist)-1]
		an.worklist = an.worklist[:len(an.worklist)-1]
		switch item.kind {
		case "summary":
			an.processSummary(item.pair)
		case "reachA":
			an.processReachA(item.q)
		case "reachB":
			an.processReachB(item.q)
		}
	}
}

func (an *analysis) processSummary(p statePair) {
	a := an.a
	c, q := p.from, p.to

	// Internal transitions extend summaries.
	for _, sym := range an.syms {
		for _, to := range a.InternalSuccessors(q, sym) {
			an.addSummary(statePair{c, to}, summaryReason{kind: "internal", prev: p, sym: sym})
		}
	}

	// A call transition from the end of the summary opens an inner context;
	// combining with an inner summary and a return transition closes it.
	for _, sym := range an.syms {
		for _, t := range a.CallSuccessors(q, sym) {
			an.addContext(t.Linear)
			edge := callEdgeInfo{outer: p, callSym: sym, hier: t.Hier}
			an.callEdges[t.Linear] = append(an.callEdges[t.Linear], edge)
			for _, inner := range an.summariesByFrom[t.Linear] {
				an.closeCallReturn(edge, inner)
			}
		}
	}

	// This summary may be the inner part of call edges targeting its
	// context.
	for _, edge := range an.callEdges[c] {
		an.closeCallReturn(edge, p)
	}
}

// closeCallReturn applies every return transition that closes the given call
// edge around the given inner summary.
func (an *analysis) closeCallReturn(edge callEdgeInfo, inner statePair) {
	for _, retSym := range an.syms {
		for _, to := range an.a.ReturnSuccessors(inner.to, edge.hier, retSym) {
			an.addSummary(statePair{edge.outer.from, to}, summaryReason{
				kind:    "callreturn",
				prev:    edge.outer,
				callSym: edge.callSym,
				inner:   inner,
				retSym:  retSym,
			})
		}
	}
}

func (an *analysis) processReachA(q int) {
	// Closure under summaries from q.
	for _, p := range an.summariesByFrom[q] {
		an.addReachA(p.to, reachReason{kind: "summary", prev: q, pair: p})
	}
	// Pending returns: the hierarchical edge is labelled with an initial
	// state.
	for _, sym := range an.syms {
		for _, q0 := range an.starts {
			for _, to := range an.a.ReturnSuccessors(q, q0, sym) {
				an.addReachA(to, reachReason{kind: "pendingreturn", prev: q, sym: sym})
			}
		}
	}
	// Everything reachable in phase A is reachable in phase B.
	an.addReachB(q, reachReason{kind: "phaseA", prev: q})
}

func (an *analysis) processReachB(q int) {
	for _, p := range an.summariesByFrom[q] {
		an.addReachB(p.to, reachReason{kind: "summary", prev: q, pair: p})
	}
	// Pending calls: only the linear successor matters.
	for _, sym := range an.syms {
		for _, t := range an.a.CallSuccessors(q, sym) {
			an.addReachB(t.Linear, reachReason{kind: "pendingcall", prev: q, sym: sym})
		}
	}
}

// witnessSummary reconstructs a well-matched nested word realizing the
// summary pair p.
func (an *analysis) witnessSummary(p statePair) *nestedword.NestedWord {
	r := an.summaries[p]
	switch r.kind {
	case "internal":
		return nestedword.Concat(an.witnessSummary(r.prev), nestedword.FromWord(r.sym))
	case "callreturn":
		outer := an.witnessSummary(r.prev)
		inner := an.witnessSummary(r.inner)
		call := nestedword.New(nestedword.Position{Symbol: r.callSym, Kind: nestedword.Call})
		ret := nestedword.New(nestedword.Position{Symbol: r.retSym, Kind: nestedword.Return})
		return nestedword.Concat(outer, call, inner, ret)
	default: // "base"
		return nestedword.Empty()
	}
}

// witnessReach reconstructs a nested word that takes the automaton from an
// initial state to q, following the phase A / phase B derivations.
func (an *analysis) witnessReach(q int, phaseB bool) *nestedword.NestedWord {
	var r reachReason
	if phaseB {
		r = an.reachB[q]
	} else {
		r = an.reachA[q]
	}
	switch r.kind {
	case "start":
		return nestedword.Empty()
	case "phaseA":
		return an.witnessReach(r.prev, false)
	case "summary":
		return nestedword.Concat(an.witnessReach(r.prev, phaseB), an.witnessSummary(r.pair))
	case "pendingreturn":
		return nestedword.Concat(an.witnessReach(r.prev, phaseB),
			nestedword.New(nestedword.Position{Symbol: r.sym, Kind: nestedword.Return}))
	case "pendingcall":
		return nestedword.Concat(an.witnessReach(r.prev, phaseB),
			nestedword.New(nestedword.Position{Symbol: r.sym, Kind: nestedword.Call}))
	default:
		return nestedword.Empty()
	}
}

// findAccepted returns some nested word accepted by the automaton, or
// ok=false when the language is empty.
func findAccepted(a autom) (*nestedword.NestedWord, bool) {
	an := analyze(a)
	for q := range an.reachB {
		if a.IsAccepting(q) {
			return an.witnessReach(q, true), true
		}
	}
	return nil, false
}

// isEmpty reports whether the automaton accepts no nested word.
func isEmpty(a autom) bool {
	_, ok := findAccepted(a)
	return !ok
}

// IsEmpty reports whether L(n) = ∅.
func (n *NNWA) IsEmpty() bool { return isEmpty(n) }

// SomeWord returns a nested word accepted by the automaton, or ok=false when
// the language is empty.
func (n *NNWA) SomeWord() (*nestedword.NestedWord, bool) { return findAccepted(n) }

// SomeWord returns a nested word accepted by the automaton, or ok=false when
// the language is empty.
func (d *DNWA) SomeWord() (*nestedword.NestedWord, bool) { return findAccepted(d) }

// StartStates returns the singleton initial-state set of the deterministic
// automaton, satisfying the autom interface.
func (d *DNWA) StartStates() []int { return []int{d.start} }

// CallSuccessors returns the single call successor pair as a slice.
func (d *DNWA) CallSuccessors(q int, sym string) []callTarget {
	lin, hier := d.StepCall(q, sym)
	return []callTarget{{Linear: lin, Hier: hier}}
}

// InternalSuccessors returns the single internal successor as a slice.
func (d *DNWA) InternalSuccessors(q int, sym string) []int {
	return []int{d.StepInternal(q, sym)}
}

// ReturnSuccessors returns the single return successor as a slice.
func (d *DNWA) ReturnSuccessors(lin, hier int, sym string) []int {
	return []int{d.StepReturn(lin, hier, sym)}
}

// differenceAutom is the virtual product automaton for L(a) \ L(b) of two
// deterministic automata; it implements autom without materializing the
// product, so inclusion and equivalence checks only explore reachable
// product states.
type differenceAutom struct {
	a, b *DNWA
}

func (d *differenceAutom) Alphabet() *alphabet.Alphabet { return d.a.alpha }
func (d *differenceAutom) NumStates() int               { return d.a.num * d.b.num }
func (d *differenceAutom) StartStates() []int {
	return []int{d.a.start*d.b.num + d.b.start}
}
func (d *differenceAutom) IsAccepting(q int) bool {
	qa, qb := q/d.b.num, q%d.b.num
	return d.a.IsAccepting(qa) && !d.b.IsAccepting(qb)
}
func (d *differenceAutom) CallSuccessors(q int, sym string) []callTarget {
	qa, qb := q/d.b.num, q%d.b.num
	la, ha := d.a.StepCall(qa, sym)
	lb, hb := d.b.StepCall(qb, sym)
	return []callTarget{{Linear: la*d.b.num + lb, Hier: ha*d.b.num + hb}}
}
func (d *differenceAutom) InternalSuccessors(q int, sym string) []int {
	qa, qb := q/d.b.num, q%d.b.num
	return []int{d.a.StepInternal(qa, sym)*d.b.num + d.b.StepInternal(qb, sym)}
}
func (d *differenceAutom) ReturnSuccessors(lin, hier int, sym string) []int {
	la, lb := lin/d.b.num, lin%d.b.num
	ha, hb := hier/d.b.num, hier%d.b.num
	return []int{d.a.StepReturn(la, ha, sym)*d.b.num + d.b.StepReturn(lb, hb, sym)}
}
