package nwa

import (
	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/word"
)

// Flat nested word automata (Section 3.3, Theorem 2): an NWA is flat if the
// hierarchical component of its call-transition function always propagates
// the initial state, δ^h_c(q, a) = q0, so no information crosses the
// hierarchical edges.  Flat NWAs are exactly deterministic word automata
// over the tagged alphabet Σ̂: Theorem 2 states that a nested word language
// is accepted by a flat NWA with s states iff the corresponding tagged word
// language is accepted by a DFA with s states.

// IsFlat reports whether the deterministic automaton is flat: for every
// state q and symbol a, δ^h_c(q, a) = q0.  The implicit dead state added by
// the builder is ignored: it is absorbing, so what it propagates along
// hierarchical edges never influences acceptance.
func (d *DNWA) IsFlat() bool {
	for q := 0; q < d.num; q++ {
		if q == d.dead {
			continue
		}
		for s := 0; s < d.alpha.Size(); s++ {
			lin, hier := d.StepCall(q, d.alpha.Symbol(s))
			// Undefined call transitions send both components to the dead
			// state; since the linear run dies anyway, the hierarchical
			// component is irrelevant there.
			if hier != d.start && !(lin == d.dead && hier == d.dead) {
				return false
			}
		}
	}
	return true
}

// TaggedCall renders a symbol of Σ as the call letter ⟨a of the tagged
// alphabet Σ̂ used by the word-automaton view of flat NWAs.
func TaggedCall(sym string) string { return "<" + sym }

// TaggedInternal renders a symbol of Σ as its internal letter in the tagged
// alphabet Σ̂ (the symbol itself).
func TaggedInternal(sym string) string { return sym }

// TaggedReturn renders a symbol of Σ as the return letter a⟩ of the tagged
// alphabet Σ̂.
func TaggedReturn(sym string) string { return sym + ">" }

// TaggedAlphabet returns the tagged alphabet Σ̂ = {⟨a, a, a⟩ : a ∈ Σ} in the
// string encoding used by FlatToDFA / FlatFromDFA.
func TaggedAlphabet(alpha *alphabet.Alphabet) *alphabet.Alphabet {
	syms := make([]string, 0, 3*alpha.Size())
	for _, a := range alpha.Symbols() {
		syms = append(syms, TaggedCall(a), TaggedInternal(a), TaggedReturn(a))
	}
	return alphabet.New(syms...)
}

// TaggedWord encodes a nested word as a word over the tagged alphabet in the
// string encoding of TaggedAlphabet (nw_w of Section 2.2).
func TaggedWord(n *nestedword.NestedWord) []string {
	out := make([]string, n.Len())
	for i := 0; i < n.Len(); i++ {
		p := n.At(i)
		switch p.Kind {
		case nestedword.Call:
			out[i] = TaggedCall(p.Symbol)
		case nestedword.Return:
			out[i] = TaggedReturn(p.Symbol)
		default:
			out[i] = TaggedInternal(p.Symbol)
		}
	}
	return out
}

// NestedFromTagged decodes a word over the tagged alphabet back into a
// nested word (w_nw of Section 2.2).  Symbols that are not in the tagged
// string encoding are treated as internals.
func NestedFromTagged(tagged []string) *nestedword.NestedWord {
	ps := make([]nestedword.Position, len(tagged))
	for i, t := range tagged {
		switch {
		case len(t) > 1 && t[0] == '<':
			ps[i] = nestedword.Position{Symbol: t[1:], Kind: nestedword.Call}
		case len(t) > 1 && t[len(t)-1] == '>':
			ps[i] = nestedword.Position{Symbol: t[:len(t)-1], Kind: nestedword.Return}
		default:
			ps[i] = nestedword.Position{Symbol: t, Kind: nestedword.Internal}
		}
	}
	return nestedword.New(ps...)
}

// FlatFromDFA interprets a deterministic word automaton over the tagged
// alphabet Σ̂ as a flat NWA over Σ with the same number of states
// (Theorem 2, right-to-left): δc(q, a) = (δ(q, ⟨a), q0), δi(q, a) = δ(q, a),
// δr(q, q', a) = δ(q, a⟩).
func FlatFromDFA(dfa *word.DFA, alpha *alphabet.Alphabet) *DNWA {
	n := dfa.NumStates()
	b := NewDNWABuilder(alpha, n)
	b.SetStart(dfa.Start())
	for q := 0; q < n; q++ {
		if dfa.IsAccepting(q) {
			b.SetAccept(q)
		}
		for _, sym := range alpha.Symbols() {
			if to, ok := dfa.Step(q, TaggedCall(sym)); ok {
				b.Call(q, sym, to, dfa.Start())
			}
			if to, ok := dfa.Step(q, TaggedInternal(sym)); ok {
				b.Internal(q, sym, to)
			}
			if to, ok := dfa.Step(q, TaggedReturn(sym)); ok {
				for hier := 0; hier <= n; hier++ {
					b.Return(q, hier, sym, to)
				}
			}
		}
	}
	return b.Build()
}

// FlatToDFA converts a flat NWA into the equivalent deterministic word
// automaton over the tagged alphabet (Theorem 2, left-to-right).  The
// automaton need not literally satisfy IsFlat: the conversion simply ignores
// the hierarchical components, so it is only language-preserving for flat
// automata.
func FlatToDFA(d *DNWA) *word.DFA {
	tagged := TaggedAlphabet(d.alpha)
	b := word.NewDFABuilder(tagged, d.num)
	b.SetStart(d.start)
	for q := 0; q < d.num; q++ {
		if d.accept[q] {
			b.SetAccept(q)
		}
		for _, sym := range d.alpha.Symbols() {
			lin, _ := d.StepCall(q, sym)
			b.AddTransition(q, TaggedCall(sym), lin)
			b.AddTransition(q, TaggedInternal(sym), d.StepInternal(q, sym))
			b.AddTransition(q, TaggedReturn(sym), d.StepReturn(q, d.start, sym))
		}
	}
	return b.Build()
}

// FlatFromWordDFAOverPlainAlphabet lifts a DFA over Σ (not Σ̂) to a flat NWA
// that runs the DFA on the underlying linear sequence, ignoring the
// call/return tags entirely.  It is used by query compilation: the
// linear-order queries of the paper's introduction constrain only the linear
// order of symbols.
func FlatFromWordDFAOverPlainAlphabet(dfa *word.DFA, alpha *alphabet.Alphabet) *DNWA {
	n := dfa.NumStates()
	b := NewDNWABuilder(alpha, n)
	b.SetStart(dfa.Start())
	for q := 0; q < n; q++ {
		if dfa.IsAccepting(q) {
			b.SetAccept(q)
		}
		for _, sym := range alpha.Symbols() {
			to, ok := dfa.Step(q, sym)
			if !ok {
				continue
			}
			b.Call(q, sym, to, dfa.Start())
			b.Internal(q, sym, to)
			for hier := 0; hier <= n; hier++ {
				b.Return(q, hier, sym, to)
			}
		}
	}
	return b.Build()
}
