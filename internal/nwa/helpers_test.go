package nwa

import (
	"math/rand"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// Test helpers shared by the nwa package tests: random automata and random
// nested words.

var testAlpha = alphabet.New("a", "b")

// randomDNWA builds a random complete deterministic NWA with n user states
// over {a, b}.
func randomDNWA(rng *rand.Rand, n int) *DNWA {
	b := NewDNWABuilder(testAlpha, n)
	b.SetStart(rng.Intn(n))
	for q := 0; q < n; q++ {
		if rng.Intn(2) == 0 {
			b.SetAccept(q)
		}
		for _, sym := range testAlpha.Symbols() {
			b.Internal(q, sym, rng.Intn(n))
			b.Call(q, sym, rng.Intn(n), rng.Intn(n))
		}
	}
	for lin := 0; lin < n; lin++ {
		for hier := 0; hier < n; hier++ {
			for _, sym := range testAlpha.Symbols() {
				b.Return(lin, hier, sym, rng.Intn(n))
			}
		}
	}
	return b.Build()
}

// randomNNWA builds a random nondeterministic NWA with n states over {a, b}.
func randomNNWA(rng *rand.Rand, n int) *NNWA {
	a := NewNNWA(testAlpha, n)
	a.AddStart(rng.Intn(n))
	if rng.Intn(2) == 0 {
		a.AddStart(rng.Intn(n))
	}
	a.AddAccept(rng.Intn(n))
	edges := 2 + rng.Intn(4*n)
	for i := 0; i < edges; i++ {
		sym := testAlpha.Symbol(rng.Intn(testAlpha.Size()))
		switch rng.Intn(3) {
		case 0:
			a.AddInternal(rng.Intn(n), sym, rng.Intn(n))
		case 1:
			a.AddCall(rng.Intn(n), sym, rng.Intn(n), rng.Intn(n))
		default:
			a.AddReturn(rng.Intn(n), rng.Intn(n), sym, rng.Intn(n))
		}
	}
	return a
}

// randomNestedWord builds a random nested word of length up to maxLen over
// {a, b}, with arbitrary (possibly pending) structure.
func randomNestedWord(rng *rand.Rand, maxLen int) *nestedword.NestedWord {
	l := rng.Intn(maxLen + 1)
	kinds := []nestedword.Kind{nestedword.Internal, nestedword.Call, nestedword.Return}
	ps := make([]nestedword.Position, l)
	for i := range ps {
		ps[i] = nestedword.Position{
			Symbol: testAlpha.Symbol(rng.Intn(testAlpha.Size())),
			Kind:   kinds[rng.Intn(len(kinds))],
		}
	}
	return nestedword.New(ps...)
}

// randomWellMatched builds a random well-matched nested word with roughly
// the given number of positions over {a, b}.
func randomWellMatched(rng *rand.Rand, size int) *nestedword.NestedWord {
	var build func(budget int) []nestedword.Position
	build = func(budget int) []nestedword.Position {
		var ps []nestedword.Position
		for budget > 0 {
			sym := testAlpha.Symbol(rng.Intn(testAlpha.Size()))
			if budget >= 2 && rng.Intn(3) == 0 {
				inner := build(rng.Intn(budget - 1))
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Call})
				ps = append(ps, inner...)
				retSym := testAlpha.Symbol(rng.Intn(testAlpha.Size()))
				ps = append(ps, nestedword.Position{Symbol: retSym, Kind: nestedword.Return})
				budget -= 2 + len(inner)
			} else {
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Internal})
				budget--
			}
		}
		return ps
	}
	return nestedword.New(build(size)...)
}

// randomNoPendingCalls builds a random nested word with no pending calls
// (pending returns are allowed): a sequence of pending returns and
// well-matched segments.
func randomNoPendingCalls(rng *rand.Rand, size int) *nestedword.NestedWord {
	var parts []*nestedword.NestedWord
	budget := size
	for budget > 0 {
		if rng.Intn(4) == 0 {
			sym := testAlpha.Symbol(rng.Intn(testAlpha.Size()))
			parts = append(parts, nestedword.New(nestedword.Position{Symbol: sym, Kind: nestedword.Return}))
			budget--
		} else {
			chunk := 1 + rng.Intn(budget)
			parts = append(parts, randomWellMatched(rng, chunk))
			budget -= chunk
		}
	}
	return nestedword.Concat(parts...)
}
