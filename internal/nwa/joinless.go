package nwa

import (
	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// Joinless nested word automata (Section 3.5).  A joinless automaton never
// joins the information flowing along the linear and the hierarchical edges
// at a return: its states are partitioned into linear states Ql and
// hierarchical states Qh, and
//
//   - δc ⊆ (Qh × Σ × Qh × Qh) ∪ (Ql × Σ × Q × Q),
//   - δi ⊆ (Qh × Σ × Qh) ∪ (Ql × Σ × Q),
//   - δr ⊆ (Qh × Σ × Qh) ∪ (Ql × Σ × Q).
//
// At a return, either the automaton is in a linear state, the hierarchical
// edge carries an initial state, and a return transition of the current
// state fires; or the automaton is in an accepting hierarchical state and
// the next state is determined by a return transition of the state on the
// hierarchical edge.
//
// Flat automata are joinless automata with Ql = Q; top-down automata are
// joinless automata with Ql = ∅ and correspond exactly to top-down tree
// automata on tree words (Lemma 2).  Deterministic joinless automata are
// strictly weaker than NWAs (Theorem 6), but nondeterministic joinless
// automata accept all regular languages of nested words (Theorem 7).
type JNWA struct {
	alpha *alphabet.Alphabet
	num   int
	// hier[q] reports whether q ∈ Qh; otherwise q ∈ Ql.
	hier    []bool
	starts  map[int]bool
	accept  map[int]bool
	callR   map[callKey][]callTarget
	internR map[callKey][]int
	// returnR is keyed by (source state, symbol): joinless return
	// transitions do not read the other incoming edge.
	returnR map[callKey][]int
}

// NewJNWA creates an empty joinless automaton with numStates states, all of
// them linear; use MarkHierarchical to move states into Qh.
func NewJNWA(alpha *alphabet.Alphabet, numStates int) *JNWA {
	return &JNWA{
		alpha:   alpha,
		num:     numStates,
		hier:    make([]bool, numStates),
		starts:  make(map[int]bool),
		accept:  make(map[int]bool),
		callR:   make(map[callKey][]callTarget),
		internR: make(map[callKey][]int),
		returnR: make(map[callKey][]int),
	}
}

// Alphabet returns the automaton's alphabet.
func (j *JNWA) Alphabet() *alphabet.Alphabet { return j.alpha }

// NumStates returns the number of states.
func (j *JNWA) NumStates() int { return j.num }

// AddState appends a fresh linear state and returns its index.
func (j *JNWA) AddState() int {
	q := j.num
	j.num++
	j.hier = append(j.hier, false)
	return q
}

// AddHierarchicalState appends a fresh hierarchical state and returns its
// index.
func (j *JNWA) AddHierarchicalState() int {
	q := j.AddState()
	j.hier[q] = true
	return q
}

// MarkHierarchical moves states into Qh.
func (j *JNWA) MarkHierarchical(states ...int) *JNWA {
	for _, q := range states {
		j.hier[q] = true
	}
	return j
}

// IsHierarchical reports whether q ∈ Qh.
func (j *JNWA) IsHierarchical(q int) bool { return j.hier[q] }

// AddStart marks states as initial.
func (j *JNWA) AddStart(states ...int) *JNWA {
	for _, q := range states {
		j.starts[q] = true
	}
	return j
}

// AddAccept marks states as final.
func (j *JNWA) AddAccept(states ...int) *JNWA {
	for _, q := range states {
		j.accept[q] = true
	}
	return j
}

// IsAccepting reports whether q ∈ F.
func (j *JNWA) IsAccepting(q int) bool { return j.accept[q] }

// StartStates returns the initial states, sorted.
func (j *JNWA) StartStates() []int { return sortedStates(j.starts) }

// AddCall adds the call transition (from, sym, linear, hier).  It enforces
// the joinless typing discipline: calls from hierarchical states must target
// hierarchical states on both edges.
func (j *JNWA) AddCall(from int, sym string, linear, hierTarget int) *JNWA {
	if j.hier[from] && (!j.hier[linear] || !j.hier[hierTarget]) {
		panic("nwa: joinless call from a hierarchical state must target hierarchical states")
	}
	k := callKey{from, j.alpha.MustIndex(sym)}
	j.callR[k] = appendCallTarget(j.callR[k], callTarget{linear, hierTarget})
	return j
}

// AddInternal adds the internal transition (from, sym, to).
func (j *JNWA) AddInternal(from int, sym string, to int) *JNWA {
	if j.hier[from] && !j.hier[to] {
		panic("nwa: joinless internal transition from a hierarchical state must target a hierarchical state")
	}
	k := callKey{from, j.alpha.MustIndex(sym)}
	j.internR[k] = appendInt(j.internR[k], to)
	return j
}

// AddReturn adds the return transition (from, sym, to).  Joinless return
// transitions have a single source state: the current state when it is
// linear, or the state on the hierarchical edge when the current state is
// hierarchical.
func (j *JNWA) AddReturn(from int, sym string, to int) *JNWA {
	if j.hier[from] && !j.hier[to] {
		panic("nwa: joinless return transition from a hierarchical state must target a hierarchical state")
	}
	k := callKey{from, j.alpha.MustIndex(sym)}
	j.returnR[k] = appendInt(j.returnR[k], to)
	return j
}

// IsDeterministic reports whether the automaton has a single initial state
// and at most one transition per (state, symbol).
func (j *JNWA) IsDeterministic() bool {
	if len(j.starts) != 1 {
		return false
	}
	for _, targets := range j.callR {
		if len(targets) > 1 {
			return false
		}
	}
	for _, targets := range j.internR {
		if len(targets) > 1 {
			return false
		}
	}
	for _, targets := range j.returnR {
		if len(targets) > 1 {
			return false
		}
	}
	return true
}

// IsTopDown reports whether the automaton is top-down: Ql is empty, so every
// state is hierarchical (Section 3.5).
func (j *JNWA) IsTopDown() bool {
	for q := 0; q < j.num; q++ {
		if !j.hier[q] {
			return false
		}
	}
	return true
}

// IsFlatJoinless reports whether the automaton has only linear states
// (Ql = Q), the joinless presentation of flat automata.
func (j *JNWA) IsFlatJoinless() bool {
	for q := 0; q < j.num; q++ {
		if j.hier[q] {
			return false
		}
	}
	return true
}

// ToNNWA converts the joinless automaton to an equivalent general
// nondeterministic NWA over the same state set, so that membership,
// emptiness, and equivalence reuse the NNWA algorithms.  The joinless return
// rules become ordinary return transitions:
//
//   - a linear-mode return (q ∈ Ql, symbol a, successor q') requires the
//     hierarchical edge to carry an initial state, so it becomes the
//     transitions (q, q0, a, q') for every q0 ∈ Q0;
//   - a hierarchical-mode return fires when the current state is an
//     accepting hierarchical state qf and consumes a return transition of
//     the state qh on the hierarchical edge, so it becomes (qf, qh, a, q')
//     for every qf ∈ Qh ∩ F and every joinless transition (qh, a, q') with
//     qh ∈ Qh.
func (j *JNWA) ToNNWA() *NNWA {
	n := NewNNWA(j.alpha, j.num)
	n.AddStart(j.StartStates()...)
	for q := range j.accept {
		n.AddAccept(q)
	}
	for k, targets := range j.callR {
		for _, t := range targets {
			n.AddCall(k.state, j.alpha.Symbol(k.sym), t.Linear, t.Hier)
		}
	}
	for k, targets := range j.internR {
		for _, t := range targets {
			n.AddInternal(k.state, j.alpha.Symbol(k.sym), t)
		}
	}
	starts := j.StartStates()
	var acceptingHier []int
	for q := 0; q < j.num; q++ {
		if j.hier[q] && j.accept[q] {
			acceptingHier = append(acceptingHier, q)
		}
	}
	for k, targets := range j.returnR {
		sym := j.alpha.Symbol(k.sym)
		for _, t := range targets {
			if !j.hier[k.state] {
				// Linear-mode rule: the current state is k.state and the
				// hierarchical edge must carry an initial state.
				for _, q0 := range starts {
					n.AddReturn(k.state, q0, sym, t)
				}
			}
			// Hierarchical-mode rule: k.state is the state on the
			// hierarchical edge (of either kind) and the current state must
			// be an accepting hierarchical state.
			for _, qf := range acceptingHier {
				n.AddReturn(qf, k.state, sym, t)
			}
		}
	}
	return n
}

// Accepts reports whether the joinless automaton accepts the nested word.
func (j *JNWA) Accepts(n *nestedword.NestedWord) bool { return j.ToNNWA().Accepts(n) }

// IsEmpty reports whether the automaton accepts no nested word.
func (j *JNWA) IsEmpty() bool { return j.ToNNWA().IsEmpty() }
