package nwa

import (
	"sort"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// NNWA is a nondeterministic nested word automaton (Section 3.2): a finite
// set Q of states, initial states Q0 ⊆ Q, final states F ⊆ Q, a
// call-transition relation δc ⊆ Q×Σ×Q×Q, an internal-transition relation
// δi ⊆ Q×Σ×Q, and a return-transition relation δr ⊆ Q×Q×Σ×Q.
type NNWA struct {
	alpha  *alphabet.Alphabet
	num    int
	starts map[int]bool
	accept map[int]bool
	// callR[(q,s)] is the set of (linear, hier) successor pairs.
	callR map[callKey][]callTarget
	// internR[(q,s)] is the set of linear successors.
	internR map[callKey][]int
	// returnR[(lin,hier,s)] is the set of successors.
	returnR map[returnKey][]int
}

// NewNNWA creates an empty nondeterministic NWA over the given alphabet with
// numStates states.
func NewNNWA(alpha *alphabet.Alphabet, numStates int) *NNWA {
	return &NNWA{
		alpha:   alpha,
		num:     numStates,
		starts:  make(map[int]bool),
		accept:  make(map[int]bool),
		callR:   make(map[callKey][]callTarget),
		internR: make(map[callKey][]int),
		returnR: make(map[returnKey][]int),
	}
}

// Alphabet returns the automaton's alphabet.
func (n *NNWA) Alphabet() *alphabet.Alphabet { return n.alpha }

// NumStates returns the number of states.
func (n *NNWA) NumStates() int { return n.num }

// AddState appends a fresh state and returns its index.
func (n *NNWA) AddState() int {
	q := n.num
	n.num++
	return q
}

// AddStart marks states as initial.
func (n *NNWA) AddStart(states ...int) *NNWA {
	for _, q := range states {
		n.starts[q] = true
	}
	return n
}

// AddAccept marks states as final.
func (n *NNWA) AddAccept(states ...int) *NNWA {
	for _, q := range states {
		n.accept[q] = true
	}
	return n
}

// AddCall adds the call transition (from, sym, linear, hier) to δc.
func (n *NNWA) AddCall(from int, sym string, linear, hier int) *NNWA {
	k := callKey{from, n.alpha.MustIndex(sym)}
	n.callR[k] = appendCallTarget(n.callR[k], callTarget{linear, hier})
	return n
}

// AddInternal adds the internal transition (from, sym, to) to δi.
func (n *NNWA) AddInternal(from int, sym string, to int) *NNWA {
	k := callKey{from, n.alpha.MustIndex(sym)}
	n.internR[k] = appendInt(n.internR[k], to)
	return n
}

// AddReturn adds the return transition (lin, hier, sym, to) to δr.
func (n *NNWA) AddReturn(lin, hier int, sym string, to int) *NNWA {
	k := returnKey{lin, hier, n.alpha.MustIndex(sym)}
	n.returnR[k] = appendInt(n.returnR[k], to)
	return n
}

func appendCallTarget(list []callTarget, t callTarget) []callTarget {
	for _, existing := range list {
		if existing == t {
			return list
		}
	}
	return append(list, t)
}

func appendInt(list []int, v int) []int {
	for _, existing := range list {
		if existing == v {
			return list
		}
	}
	return append(list, v)
}

// StartStates returns the initial states, sorted.
func (n *NNWA) StartStates() []int { return sortedStates(n.starts) }

// AcceptingStates returns the final states, sorted.
func (n *NNWA) AcceptingStates() []int { return sortedStates(n.accept) }

// IsAccepting reports whether q ∈ F.
func (n *NNWA) IsAccepting(q int) bool { return n.accept[q] }

// CallSuccessors returns the (linear, hier) successor pairs of δc(q, sym).
func (n *NNWA) CallSuccessors(q int, sym string) []callTarget {
	s, ok := n.alpha.Index(sym)
	if !ok {
		return nil
	}
	return n.callR[callKey{q, s}]
}

// InternalSuccessors returns the successors of δi(q, sym).
func (n *NNWA) InternalSuccessors(q int, sym string) []int {
	s, ok := n.alpha.Index(sym)
	if !ok {
		return nil
	}
	return n.internR[callKey{q, s}]
}

// ReturnSuccessors returns the successors of δr(lin, hier, sym).
func (n *NNWA) ReturnSuccessors(lin, hier int, sym string) []int {
	s, ok := n.alpha.Index(sym)
	if !ok {
		return nil
	}
	return n.returnR[returnKey{lin, hier, s}]
}

// EachCall calls f for every call transition (state, sym, linear, hier) in
// δc, with sym given as an alphabet index.  Like the DNWA iterators it is the
// hook query.CompileN uses to build indexed adjacency tables.
func (n *NNWA) EachCall(f func(state, sym, linear, hier int)) {
	for k, targets := range n.callR {
		for _, t := range targets {
			f(k.state, k.sym, t.Linear, t.Hier)
		}
	}
}

// EachInternal calls f for every internal transition (state, sym, to) in δi,
// with sym given as an alphabet index.
func (n *NNWA) EachInternal(f func(state, sym, to int)) {
	for k, targets := range n.internR {
		for _, t := range targets {
			f(k.state, k.sym, t)
		}
	}
}

// EachReturn calls f for every return transition (lin, hier, sym, to) in δr,
// with sym given as an alphabet index.
func (n *NNWA) EachReturn(f func(lin, hier, sym, to int)) {
	for k, targets := range n.returnR {
		for _, t := range targets {
			f(k.lin, k.hier, k.sym, t)
		}
	}
}

// NumReturnTransitions returns the number of return transitions in δr.
func (n *NNWA) NumReturnTransitions() int {
	total := 0
	for _, targets := range n.returnR {
		total += len(targets)
	}
	return total
}

func sortedStates(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for q, v := range m {
		if v {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}

// statePair is a pair of states used by the membership simulation and the
// determinization: (from, to) records that some run takes the automaton from
// `from` to `to` over a stretch of the input.
type statePair struct {
	from int
	to   int
}

// simulationState is the subset-construction state used by both Accepts and
// Determinize: S is the set of summary pairs (q, q') such that the automaton
// has a run from q to q' over the portion of the input read since the last
// pending call (or since the beginning of the word when no call is pending),
// and R is the set of states reachable from an initial state over the whole
// prefix read so far.
type simulationState struct {
	S map[statePair]bool
	R map[int]bool
}

func (n *NNWA) initialSimulation() simulationState {
	sim := simulationState{S: make(map[statePair]bool), R: make(map[int]bool)}
	for q := 0; q < n.num; q++ {
		sim.S[statePair{q, q}] = true
	}
	for q := range n.starts {
		sim.R[q] = true
	}
	return sim
}

// stepInternal advances the simulation over an internal position.
func (n *NNWA) stepInternal(sim simulationState, sym string) simulationState {
	next := simulationState{S: make(map[statePair]bool), R: make(map[int]bool)}
	for p := range sim.S {
		for _, to := range n.InternalSuccessors(p.to, sym) {
			next.S[statePair{p.from, to}] = true
		}
	}
	for q := range sim.R {
		for _, to := range n.InternalSuccessors(q, sym) {
			next.R[to] = true
		}
	}
	return next
}

// stepCall advances the simulation over a call position.  The returned
// simulation state is the linear successor; the previous simulation state
// itself (together with the call symbol) is what a determinized automaton
// propagates along the hierarchical edge, so callers keep it on a stack.
func (n *NNWA) stepCall(sim simulationState, sym string) simulationState {
	next := simulationState{S: make(map[statePair]bool), R: make(map[int]bool)}
	// The new context starts just after this call, so the summary component
	// resets to the identity.
	for q := 0; q < n.num; q++ {
		next.S[statePair{q, q}] = true
	}
	for q := range sim.R {
		for _, t := range n.CallSuccessors(q, sym) {
			next.R[t.Linear] = true
		}
	}
	return next
}

// stepReturnMatched advances the simulation over a return whose matching
// call was read with simulation state below (the state pushed at the call)
// and call symbol callSym.
func (n *NNWA) stepReturnMatched(sim, below simulationState, callSym, sym string) simulationState {
	next := simulationState{S: make(map[statePair]bool), R: make(map[int]bool)}
	for p := range below.S {
		for _, t := range n.CallSuccessors(p.to, callSym) {
			for inner := range sim.S {
				if inner.from != t.Linear {
					continue
				}
				for _, to := range n.ReturnSuccessors(inner.to, t.Hier, sym) {
					next.S[statePair{p.from, to}] = true
				}
			}
		}
	}
	for q := range below.R {
		for _, t := range n.CallSuccessors(q, callSym) {
			for inner := range sim.S {
				if inner.from != t.Linear {
					continue
				}
				for _, to := range n.ReturnSuccessors(inner.to, t.Hier, sym) {
					next.R[to] = true
				}
			}
		}
	}
	return next
}

// stepReturnPending advances the simulation over a pending return: the
// hierarchical edge comes from −∞ and is labelled with an initial state.
func (n *NNWA) stepReturnPending(sim simulationState, sym string) simulationState {
	next := simulationState{S: make(map[statePair]bool), R: make(map[int]bool)}
	for p := range sim.S {
		for q0 := range n.starts {
			for _, to := range n.ReturnSuccessors(p.to, q0, sym) {
				next.S[statePair{p.from, to}] = true
			}
		}
	}
	for q := range sim.R {
		for q0 := range n.starts {
			for _, to := range n.ReturnSuccessors(q, q0, sym) {
				next.R[to] = true
			}
		}
	}
	return next
}

// stackEntry is what the simulation pushes at a call.
type stackEntry struct {
	sim simulationState
	sym string
}

// Accepts reports whether some run of the automaton over the nested word
// ends in a final state.  The simulation tracks sets of state pairs, so the
// running time is O(|A|² · |Q|³ worst case) per position — the dynamic
// programming mentioned in Section 3.2 — and the space is proportional to
// the depth of the word.
func (n *NNWA) Accepts(nw *nestedword.NestedWord) bool {
	sim := n.initialSimulation()
	var stack []stackEntry
	for i := 0; i < nw.Len(); i++ {
		p := nw.At(i)
		switch p.Kind {
		case nestedword.Internal:
			sim = n.stepInternal(sim, p.Symbol)
		case nestedword.Call:
			stack = append(stack, stackEntry{sim: sim, sym: p.Symbol})
			sim = n.stepCall(sim, p.Symbol)
		case nestedword.Return:
			if len(stack) == 0 {
				sim = n.stepReturnPending(sim, p.Symbol)
			} else {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				sim = n.stepReturnMatched(sim, top.sim, top.sym, p.Symbol)
			}
		}
	}
	for q := range sim.R {
		if n.accept[q] {
			return true
		}
	}
	return false
}

// AcceptsWitness returns, along with acceptance, one accepting run's final
// state when the word is accepted.
func (n *NNWA) AcceptsWitness(nw *nestedword.NestedWord) (int, bool) {
	sim := n.initialSimulation()
	var stack []stackEntry
	for i := 0; i < nw.Len(); i++ {
		p := nw.At(i)
		switch p.Kind {
		case nestedword.Internal:
			sim = n.stepInternal(sim, p.Symbol)
		case nestedword.Call:
			stack = append(stack, stackEntry{sim: sim, sym: p.Symbol})
			sim = n.stepCall(sim, p.Symbol)
		case nestedword.Return:
			if len(stack) == 0 {
				sim = n.stepReturnPending(sim, p.Symbol)
			} else {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				sim = n.stepReturnMatched(sim, top.sim, top.sym, p.Symbol)
			}
		}
	}
	for q := range sim.R {
		if n.accept[q] {
			return q, true
		}
	}
	return -1, false
}
