package nwa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
)

// naiveAccepts is an exponential reference implementation of NNWA
// membership: it enumerates all runs explicitly, keeping the stack of
// hierarchical states.  Only usable on small words and automata; the tests
// use it to cross-validate the polynomial simulation.
func naiveAccepts(a *NNWA, n *nestedword.NestedWord) bool {
	var rec func(pos int, state int, stack []int) bool
	rec = func(pos int, state int, stack []int) bool {
		if pos == n.Len() {
			return a.IsAccepting(state)
		}
		p := n.At(pos)
		switch p.Kind {
		case nestedword.Internal:
			for _, to := range a.InternalSuccessors(state, p.Symbol) {
				if rec(pos+1, to, stack) {
					return true
				}
			}
		case nestedword.Call:
			for _, t := range a.CallSuccessors(state, p.Symbol) {
				if rec(pos+1, t.Linear, append(append([]int(nil), stack...), t.Hier)) {
					return true
				}
			}
		case nestedword.Return:
			if len(stack) == 0 {
				for _, q0 := range a.StartStates() {
					for _, to := range a.ReturnSuccessors(state, q0, p.Symbol) {
						if rec(pos+1, to, stack) {
							return true
						}
					}
				}
			} else {
				hier := stack[len(stack)-1]
				rest := stack[:len(stack)-1]
				for _, to := range a.ReturnSuccessors(state, hier, p.Symbol) {
					if rec(pos+1, to, rest) {
						return true
					}
				}
			}
		}
		return false
	}
	for _, q0 := range a.StartStates() {
		if rec(0, q0, nil) {
			return true
		}
	}
	return false
}

// someCallSomeReturnMismatch builds a nondeterministic NWA accepting the
// nested words that contain at least one matched call/return pair with
// different symbols.
func someCallSomeReturnMismatch() *NNWA {
	// States: 0 = searching, 1 = inside the guessed pair, 2 = found
	// (accepting, absorbing), 3 = marker pushed at a guessed a-call,
	// 4 = marker pushed at a guessed b-call.
	a := NewNNWA(testAlpha, 5)
	a.AddStart(0)
	a.AddAccept(2)
	for _, sym := range []string{"a", "b"} {
		// Searching: skip anything.
		a.AddInternal(0, sym, 0)
		a.AddCall(0, sym, 0, 0)
		for hier := 0; hier < 5; hier++ {
			a.AddReturn(0, hier, sym, 0)
		}
		// Inside the guessed pair we stay in state 1 and skip structure,
		// taking care to pop nested pairs back into state 1.
		a.AddInternal(1, sym, 1)
		a.AddCall(1, sym, 1, 1)
		for hier := 0; hier < 5; hier++ {
			a.AddReturn(1, hier, sym, 1)
		}
		// Found: absorb.
		a.AddInternal(2, sym, 2)
		a.AddCall(2, sym, 2, 2)
		for hier := 0; hier < 5; hier++ {
			a.AddReturn(2, hier, sym, 2)
		}
	}
	// Guess an a-labelled call whose matching return is b-labelled.
	a.AddCall(0, "a", 1, 3)
	a.AddReturn(1, 3, "b", 2)
	// Guess a b-labelled call whose matching return is a-labelled.
	a.AddCall(0, "b", 1, 4)
	a.AddReturn(1, 4, "a", 2)
	return a
}

func mismatchPredicate(n *nestedword.NestedWord) bool {
	for i := 0; i < n.Len(); i++ {
		if n.KindAt(i) == nestedword.Call {
			if j, _ := n.ReturnSuccessor(i); j != nestedword.Pending && n.SymbolAt(j) != n.SymbolAt(i) {
				return true
			}
		}
	}
	return false
}

func TestNNWAMismatchGadget(t *testing.T) {
	a := someCallSomeReturnMismatch()
	cases := map[string]bool{
		"":            false,
		"<a a>":       false,
		"<a b>":       true,
		"<a <b a> a>": true,
		"<a <b b> a>": false,
		"a b a":       false,
		"<a b":        false,
		"b> <a b>":    true,
	}
	for in, want := range cases {
		n := nestedword.MustParse(in)
		if got := a.Accepts(n); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestNNWAMismatchAgainstPredicate(t *testing.T) {
	a := someCallSomeReturnMismatch()
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 300; i++ {
		n := randomNestedWord(rng, 14)
		if got, want := a.Accepts(n), mismatchPredicate(n); got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestNNWASimulationAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		a := randomNNWA(rng, 1+rng.Intn(4))
		for i := 0; i < 20; i++ {
			n := randomNestedWord(rng, 8)
			if got, want := a.Accepts(n), naiveAccepts(a, n); got != want {
				t.Fatalf("trial %d: simulation=%v naive=%v on %v", trial, got, want, n)
			}
		}
	}
}

func TestAcceptsWitness(t *testing.T) {
	a := someCallSomeReturnMismatch()
	n := nestedword.MustParse("<a b>")
	q, ok := a.AcceptsWitness(n)
	if !ok || !a.IsAccepting(q) {
		t.Errorf("AcceptsWitness = (%d,%v), want an accepting state", q, ok)
	}
	if _, ok := a.AcceptsWitness(nestedword.MustParse("<a a>")); ok {
		t.Errorf("AcceptsWitness should fail on rejected words")
	}
}

func TestNNWAAddStateAndAccessors(t *testing.T) {
	a := NewNNWA(testAlpha, 1)
	q := a.AddState()
	if q != 1 || a.NumStates() != 2 {
		t.Errorf("AddState numbering broken")
	}
	a.AddStart(0).AddAccept(1)
	if got := a.StartStates(); len(got) != 1 || got[0] != 0 {
		t.Errorf("StartStates = %v", got)
	}
	if got := a.AcceptingStates(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AcceptingStates = %v", got)
	}
	a.AddInternal(0, "a", 1)
	a.AddInternal(0, "a", 1) // duplicates are collapsed
	if got := a.InternalSuccessors(0, "a"); len(got) != 1 {
		t.Errorf("duplicate transitions should be collapsed: %v", got)
	}
	if got := a.InternalSuccessors(0, "z"); got != nil {
		t.Errorf("unknown symbols have no successors")
	}
	if got := a.CallSuccessors(0, "z"); got != nil {
		t.Errorf("unknown symbols have no call successors")
	}
	if got := a.ReturnSuccessors(0, 0, "z"); got != nil {
		t.Errorf("unknown symbols have no return successors")
	}
	if a.Alphabet() != testAlpha {
		t.Errorf("Alphabet accessor broken")
	}
}

func TestNNWAEmptinessAndWitness(t *testing.T) {
	a := someCallSomeReturnMismatch()
	if a.IsEmpty() {
		t.Fatalf("mismatch gadget is not empty")
	}
	w, ok := a.SomeWord()
	if !ok || !a.Accepts(w) {
		t.Errorf("SomeWord witness %v not accepted", w)
	}
	if !mismatchPredicate(w) {
		t.Errorf("witness %v should contain a mismatching pair", w)
	}

	empty := NewNNWA(testAlpha, 2)
	empty.AddStart(0)
	empty.AddAccept(1)
	empty.AddInternal(0, "a", 0)
	if !empty.IsEmpty() {
		t.Errorf("no path to the accepting state: language must be empty")
	}
}

func TestQuickEmptinessAgreesWithSampling(t *testing.T) {
	// If the analysis says the language is non-empty, the witness must be
	// accepted; if it says empty, random sampling must not find any accepted
	// word.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomNNWA(rng, 1+rng.Intn(4))
		if w, ok := a.SomeWord(); ok {
			return a.Accepts(w)
		}
		for i := 0; i < 40; i++ {
			if a.Accepts(randomNestedWord(rng, 10)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDeterminizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		a := randomNNWA(rng, 1+rng.Intn(4))
		d := a.Determinize()
		for i := 0; i < 30; i++ {
			n := randomNestedWord(rng, 10)
			if got, want := d.Accepts(n), a.Accepts(n); got != want {
				t.Fatalf("trial %d: determinized=%v nondet=%v on %v", trial, got, want, n)
			}
		}
	}
}

func TestDeterminizeMismatchGadget(t *testing.T) {
	a := someCallSomeReturnMismatch()
	d := a.Determinize()
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 300; i++ {
		n := randomNestedWord(rng, 12)
		if d.Accepts(n) != mismatchPredicate(n) {
			t.Fatalf("determinized automaton wrong on %v", n)
		}
	}
	if d.NumStates() > 1<<(4*4) {
		t.Errorf("determinization exceeded the 2^(s²) bound: %d states", d.NumStates())
	}
}

func TestComplementNNWA(t *testing.T) {
	a := someCallSomeReturnMismatch()
	c := a.Complement()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		n := randomNestedWord(rng, 10)
		if a.Accepts(n) == c.Accepts(n) {
			t.Fatalf("complement must disagree with the original on %v", n)
		}
	}
}

func TestUnionN(t *testing.T) {
	a := someCallSomeReturnMismatch()
	b := evenAs().ToNondeterministic()
	u := UnionN(a, b)
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 200; i++ {
		n := randomNestedWord(rng, 10)
		if u.Accepts(n) != (a.Accepts(n) || b.Accepts(n)) {
			t.Fatalf("UnionN wrong on %v", n)
		}
	}
}

func TestUnionNPanicsOnAlphabetMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("UnionN over different alphabets should panic")
		}
	}()
	other := NewNNWA(alphabet.New("x"), 1)
	UnionN(someCallSomeReturnMismatch(), other)
}
