package nwa

// ToJoinless: the conversion of Theorem 7.  Given a nondeterministic NWA A
// with s states, it builds a nondeterministic joinless NWA B with O(s²·|Σ|)
// states such that L(B) = L(A) on all nested words without pending calls
// (in particular on all well-matched words, which is the class on which the
// paper compares nested word automata with tree automata), and
// L(A) ⊆ L(B) in general.
//
// The construction follows the proof idea of Theorem 7 — linear states for
// the top-level spine and hierarchical "obligation" states (q, q̂) meaning
// "A is currently in q and must be in q̂ just before the return that closes
// the current matched call" — with two corrections needed to make the
// sketch sound:
//
//  1. linear-mode return transitions are derived only from A's
//     pending-return behaviour (transitions whose hierarchical state is
//     initial), and the states pushed on hierarchical edges are never
//     initial states, so the linear-mode return rule can only fire at
//     genuinely pending returns;
//  2. at a call, a linear state guesses explicitly whether the call is
//     matched (spawning an obligation state for the inside and an edge
//     state that resumes the spine after the matching return) or pending
//     (staying linear and pushing a dead state so that the guess is
//     falsified if a matching return does appear).
//
// The one behaviour the joinless model cannot express exactly is a matched
// guess at a call that turns out to be pending: the obligation state then
// survives to the end of the word and the joinless acceptance condition
// (which must double as the obligation check at returns) may accept
// spuriously.  Words without pending calls never exercise that case, which
// is why the equivalence above is stated for that class; DESIGN.md discusses
// the gap.

// joinlessLayout maps A's states into B's state blocks.
type joinlessLayout struct {
	s     int // number of A states
	sigma int // alphabet size
}

func (l joinlessLayout) linear(q int) int           { return q }
func (l joinlessLayout) obligation(x, want int) int { return l.s + x*l.s + want }
func (l joinlessLayout) topEdge(q2, symIdx int) int { return l.s + l.s*l.s + q2*l.sigma + symIdx }
func (l joinlessLayout) obligationEdge(x2, want, symIdx int) int {
	return l.s + l.s*l.s + l.s*l.sigma + (x2*l.s+want)*l.sigma + symIdx
}
func (l joinlessLayout) dead() int  { return l.s + l.s*l.s + l.s*l.sigma + l.s*l.s*l.sigma }
func (l joinlessLayout) total() int { return l.dead() + 1 }

// ToJoinless converts the nondeterministic NWA to a nondeterministic
// joinless NWA (see the package comment above for the exact guarantee).
func (a *NNWA) ToJoinless() *JNWA {
	lay := joinlessLayout{s: a.num, sigma: a.alpha.Size()}
	j := NewJNWA(a.alpha, lay.total())

	// Block typing: obligation states, obligation edges and the dead state
	// are hierarchical; linear copies and top edges are linear.
	for x := 0; x < lay.s; x++ {
		for want := 0; want < lay.s; want++ {
			j.MarkHierarchical(lay.obligation(x, want))
		}
	}
	for x2 := 0; x2 < lay.s; x2++ {
		for want := 0; want < lay.s; want++ {
			for s := 0; s < lay.sigma; s++ {
				j.MarkHierarchical(lay.obligationEdge(x2, want, s))
			}
		}
	}
	j.MarkHierarchical(lay.dead())

	j.AddStart(a.StartStates()...)
	for q := 0; q < a.num; q++ {
		if a.accept[q] {
			j.AddAccept(lay.linear(q))
		}
		j.AddAccept(lay.obligation(q, q))
	}

	starts := a.StartStates()
	isStart := make(map[int]bool, len(starts))
	for _, q := range starts {
		isStart[q] = true
	}

	// returnsByHier[qh] lists A's return transitions (q1, qh, ρ, q2) grouped
	// by their hierarchical state, used to enumerate matched guesses.
	type retInfo struct {
		q1, q2, symIdx int
	}
	returnsByHier := make(map[int][]retInfo)
	for k, targets := range a.returnR {
		for _, t := range targets {
			returnsByHier[k.hier] = append(returnsByHier[k.hier], retInfo{q1: k.lin, q2: t, symIdx: k.sym})
		}
	}

	// Internal transitions.
	for k, targets := range a.internR {
		sym := a.alpha.Symbol(k.sym)
		for _, to := range targets {
			// Linear copies simulate A directly.
			j.AddInternal(lay.linear(k.state), sym, lay.linear(to))
			// Obligation copies carry the obligation along.
			for want := 0; want < lay.s; want++ {
				j.AddInternal(lay.obligation(k.state, want), sym, lay.obligation(to, want))
			}
		}
	}

	// Pending returns on the top-level spine: only A's behaviour with an
	// initial hierarchical state is copied.
	for k, targets := range a.returnR {
		if !isStart[k.hier] {
			continue
		}
		sym := a.alpha.Symbol(k.sym)
		for _, to := range targets {
			j.AddReturn(lay.linear(k.lin), sym, lay.linear(to))
		}
	}

	// Call transitions.
	for k, targets := range a.callR {
		sym := a.alpha.Symbol(k.sym)
		for _, t := range targets {
			// Pending guess from a linear copy: stay linear, push the dead
			// state so a matching return falsifies the guess.
			j.AddCall(lay.linear(k.state), sym, lay.linear(t.Linear), lay.dead())
			// Matched guess: additionally pick the return transition that
			// will close the pair.
			for _, ret := range returnsByHier[t.Hier] {
				// From a linear copy: the inside is handled by an obligation
				// copy and the spine resumes as a linear copy after the
				// return.
				j.AddCall(lay.linear(k.state), sym,
					lay.obligation(t.Linear, ret.q1), lay.topEdge(ret.q2, ret.symIdx))
				// From an obligation copy: the obligation is carried across
				// the pair by the edge state.
				for want := 0; want < lay.s; want++ {
					j.AddCall(lay.obligation(k.state, want), sym,
						lay.obligation(t.Linear, ret.q1), lay.obligationEdge(ret.q2, want, ret.symIdx))
				}
			}
		}
	}

	// Edge states fire exactly once, at the matching return, on the guessed
	// return symbol.
	for q2 := 0; q2 < lay.s; q2++ {
		for s := 0; s < lay.sigma; s++ {
			sym := a.alpha.Symbol(s)
			j.AddReturn(lay.topEdge(q2, s), sym, lay.linear(q2))
			for want := 0; want < lay.s; want++ {
				j.AddReturn(lay.obligationEdge(q2, want, s), sym, lay.obligation(q2, want))
			}
		}
	}

	return j
}

// JoinlessStateBound returns the O(s²·|Σ|) state count of the automaton
// produced by ToJoinless for an NWA with s states over an alphabet of the
// given size, reported by experiment E8.
func JoinlessStateBound(s, sigma int) int {
	return joinlessLayout{s: s, sigma: sigma}.total()
}
