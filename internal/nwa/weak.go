package nwa

// Weak nested word automata (Section 3.2, Theorem 1): an NWA is weak if the
// hierarchical component of its call-transition function simply propagates
// the current state, δ^h_c(q, a) = q.  Weak automata capture all regular
// languages of nested words: any NWA with s states has an equivalent weak
// NWA whose states pair A's state with the symbol labelling the call-parent
// of the current position.
//
// Implementation note.  The paper's construction uses s·|Σ| states, choosing
// an arbitrary symbol a0 for positions whose call-parent is the virtual
// position 0 (top level).  That conflation is harmless on well-matched
// words, but on a word with *pending returns* the constructed automaton
// would apply δ^h_c(q0, a0) where the original automaton uses the initial
// state q0 itself, which can differ.  To be correct on all of NW(Σ) we keep
// an explicit "top level" marker in addition to the |Σ| symbols, giving
// s·(|Σ|+1) states; on well-matched words the two constructions coincide.

// IsWeak reports whether the deterministic automaton is weak: for every
// state q and symbol a, δ^h_c(q, a) = q.
func (d *DNWA) IsWeak() bool {
	for q := 0; q < d.num; q++ {
		for s := 0; s < d.alpha.Size(); s++ {
			_, hier := d.StepCall(q, d.alpha.Symbol(s))
			if hier != q {
				return false
			}
		}
	}
	return true
}

// ToWeak implements the construction of Theorem 1: given an NWA A it builds
// a weak NWA B with s·(|Σ|+1) states (see the package note above) such that
// L(B) = L(A).
func (d *DNWA) ToWeak() *DNWA {
	sigma := d.alpha.Size()
	// Symbol component: 0..sigma-1 are alphabet symbols (the call-parent's
	// label); `top` marks positions whose call-parent is the virtual
	// position 0.
	top := sigma
	comps := sigma + 1
	enc := func(q, a int) int { return q*comps + a }

	b := NewDNWABuilder(d.alpha, d.num*comps)
	b.SetStart(enc(d.start, top))
	for q := 0; q < d.num; q++ {
		if d.accept[q] {
			for a := 0; a <= sigma; a++ {
				b.SetAccept(enc(q, a))
			}
		}
	}
	for q := 0; q < d.num; q++ {
		for a := 0; a <= sigma; a++ {
			from := enc(q, a)
			for s := 0; s < sigma; s++ {
				sym := d.alpha.Symbol(s)
				// δ'_i((q,a), b) = (δ_i(q,b), a): internal moves keep the
				// call-parent.
				b.Internal(from, sym, enc(d.StepInternal(q, sym), a))
				// δ'_c((q,a), b) = ((δ^l_c(q,b), b), (q,a)): the linear
				// successor's call-parent is the call just read, and the
				// hierarchical edge carries the current state unchanged,
				// which is what makes B weak.
				lin, _ := d.StepCall(q, sym)
				b.Call(from, sym, enc(lin, s), from)
			}
		}
	}
	// Return transitions.  The current linear state (q, a) tells us the
	// symbol a of the matched call (its call-parent); the hierarchical state
	// (q', b) is A's state just before that call, so δ^h_c(q', a) recovers
	// the hierarchical state A would have propagated.  When a = top the
	// return is pending and A uses its initial state as the hierarchical
	// state.
	for q := 0; q < d.num; q++ {
		for a := 0; a <= sigma; a++ {
			lin := enc(q, a)
			for qp := 0; qp < d.num; qp++ {
				for bcomp := 0; bcomp <= sigma; bcomp++ {
					hier := enc(qp, bcomp)
					for c := 0; c < sigma; c++ {
						cSym := d.alpha.Symbol(c)
						var hierOfA int
						if a == top {
							// Pending return: A's hierarchical state is q0.
							hierOfA = d.start
						} else {
							_, hierOfA = d.StepCall(qp, d.alpha.Symbol(a))
						}
						b.Return(lin, hier, cSym, enc(d.StepReturn(q, hierOfA, cSym), bcomp))
					}
				}
			}
		}
	}
	return b.Build()
}
