// Package pda implements nondeterministic pushdown word automata accepting
// by empty stack, the "words" baseline of Section 4 of "Marrying Words and
// Trees" (Alur, PODS 2007).
//
// Following the paper's presentation of pushdown nested word automata, the
// stack is updated only by ε-moves: push transitions (q, q', γ) and pop
// transitions (q, γ, q') change the configuration without reading input,
// while read transitions (q, a, q') consume one input symbol and leave the
// stack unchanged.  A word is accepted if some run from an initial
// configuration (q0, ⊥) consumes the whole word and ends with an empty
// stack.
//
// The emptiness check computes the "stackless summaries" described in
// Section 4.4: the relation R(q, q') holds when some word takes the
// automaton from (q, ε) to (q', ε) without ever inspecting the stack below
// the starting level.
package pda

import (
	"sort"

	"repro/internal/alphabet"
)

// Bottom is the reserved bottom-of-stack symbol ⊥.
const Bottom = "⊥"

// PDA is a nondeterministic pushdown word automaton accepting by empty
// stack.
type PDA struct {
	alpha  *alphabet.Alphabet
	num    int
	starts map[int]bool
	// read[(q, symIdx)] lists successor states.
	read map[[2]int][]int
	// push[q] lists (successor, stack symbol) pairs.
	push map[int][]pushTarget
	// pop[(q, stack symbol)] lists successor states.
	pop map[popKey][]int
	// stack symbols seen (for diagnostics).
	gamma map[string]bool
}

type popKey struct {
	state int
	gamma string
}

// pushTarget is the target of a push ε-transition: the successor state and
// the symbol pushed.
type pushTarget struct {
	state int
	gamma string
}

// New creates an empty PDA over the given alphabet with numStates states.
func New(alpha *alphabet.Alphabet, numStates int) *PDA {
	return &PDA{
		alpha:  alpha,
		num:    numStates,
		starts: make(map[int]bool),
		read:   make(map[[2]int][]int),
		push:   make(map[int][]pushTarget),
		pop:    make(map[popKey][]int),
		gamma:  map[string]bool{Bottom: true},
	}
}

// Alphabet returns the input alphabet.
func (p *PDA) Alphabet() *alphabet.Alphabet { return p.alpha }

// NumStates returns the number of states.
func (p *PDA) NumStates() int { return p.num }

// AddState appends a fresh state and returns its index.
func (p *PDA) AddState() int {
	q := p.num
	p.num++
	return q
}

// AddStart marks states as initial.
func (p *PDA) AddStart(states ...int) *PDA {
	for _, q := range states {
		p.starts[q] = true
	}
	return p
}

// AddRead adds the input transition (from, sym, to); the stack is unchanged.
func (p *PDA) AddRead(from int, sym string, to int) *PDA {
	k := [2]int{from, p.alpha.MustIndex(sym)}
	p.read[k] = append(p.read[k], to)
	return p
}

// AddPush adds the ε-transition (from → to, push gamma).  Pushing ⊥ is not
// allowed, matching the paper's definition.
func (p *PDA) AddPush(from, to int, gamma string) *PDA {
	if gamma == Bottom {
		panic("pda: pushing the bottom symbol is not allowed")
	}
	p.gamma[gamma] = true
	p.push[from] = append(p.push[from], pushTarget{state: to, gamma: gamma})
	return p
}

// AddPop adds the ε-transition (from, gamma → to), popping gamma.
func (p *PDA) AddPop(from int, gamma string, to int) *PDA {
	p.gamma[gamma] = true
	k := popKey{from, gamma}
	p.pop[k] = append(p.pop[k], to)
	return p
}

// StartStates returns the initial states, sorted.
func (p *PDA) StartStates() []int {
	out := make([]int, 0, len(p.starts))
	for q := range p.starts {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// config is a state plus a stack (top at the end of the slice), encoded as a
// string key for memoization.
type config struct {
	state int
	stack string // each stack symbol terminated by '\x00'
}

func pushStack(stack, gamma string) string { return stack + gamma + "\x00" }

func topStack(stack string) (gamma string, rest string, ok bool) {
	if stack == "" {
		return "", "", false
	}
	// Find the start of the last symbol (the byte after the previous
	// terminator).
	i := len(stack) - 1 // points at the final '\x00'
	j := i - 1
	for j >= 0 && stack[j] != '\x00' {
		j--
	}
	return stack[j+1 : i], stack[:j+1], true
}

// Accepts reports whether the automaton accepts the word by empty stack.
// maxStack bounds the stack height explored (the default used by Accepts is
// len(word) + number of states + 2, which suffices for automata whose pushes
// are driven by the input, including every automaton constructed in this
// repository).
func (p *PDA) Accepts(word []string) bool {
	return p.AcceptsWithin(word, len(word)+p.num+2)
}

// AcceptsWithin is Accepts with an explicit bound on the stack height.
func (p *PDA) AcceptsWithin(word []string, maxStack int) bool {
	syms := make([]int, len(word))
	for i, w := range word {
		s, ok := p.alpha.Index(w)
		if !ok {
			return false
		}
		syms[i] = s
	}
	// Breadth-first over (position, config), with ε-closure at each step.
	type item struct {
		pos int
		cfg config
	}
	seen := make(map[item]bool)
	var queue []item
	enqueue := func(pos int, c config) {
		it := item{pos, c}
		if !seen[it] {
			seen[it] = true
			queue = append(queue, it)
		}
	}
	for q := range p.starts {
		enqueue(0, config{state: q, stack: pushStack("", Bottom)})
	}
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// ε-moves.
		for _, pg := range p.push[it.cfg.state] {
			if stackHeight(it.cfg.stack) < maxStack {
				enqueue(it.pos, config{state: pg.state, stack: pushStack(it.cfg.stack, pg.gamma)})
			}
		}
		if gamma, rest, ok := topStack(it.cfg.stack); ok {
			for _, to := range p.pop[popKey{it.cfg.state, gamma}] {
				enqueue(it.pos, config{state: to, stack: rest})
			}
		}
		if it.pos == len(word) {
			if it.cfg.stack == "" {
				return true
			}
			continue
		}
		// Input move.
		for _, to := range p.read[[2]int{it.cfg.state, syms[it.pos]}] {
			enqueue(it.pos+1, config{state: to, stack: it.cfg.stack})
		}
	}
	return false
}

func stackHeight(stack string) int {
	h := 0
	for i := 0; i < len(stack); i++ {
		if stack[i] == '\x00' {
			h++
		}
	}
	return h
}

// Summaries returns the stackless-summary relation R ⊆ Q×Q of Section 4.4:
// R(q, q') holds when some word takes the automaton from (q, ε) to (q', ε)
// without popping below the starting stack level.
func (p *PDA) Summaries() map[[2]int]bool {
	r := make(map[[2]int]bool)
	var worklist [][2]int
	add := func(q, q2 int) {
		k := [2]int{q, q2}
		if !r[k] {
			r[k] = true
			worklist = append(worklist, k)
		}
	}
	for q := 0; q < p.num; q++ {
		add(q, q)
	}
	for len(worklist) > 0 {
		pr := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		q, q2 := pr[0], pr[1]
		// Extend by a read transition.
		for k, tos := range p.read {
			if k[0] != q2 {
				continue
			}
			for _, to := range tos {
				add(q, to)
			}
		}
		// Push-pop rule: q1 --push γ--> q ... q2 --pop γ--> q3.
		for q1 := 0; q1 < p.num; q1++ {
			for _, pg := range p.push[q1] {
				if pg.state != q {
					continue
				}
				for _, q3 := range p.pop[popKey{q2, pg.gamma}] {
					add(q1, q3)
				}
			}
		}
		// Concatenation with existing summaries on both sides.
		for other := range r {
			if other[0] == q2 {
				add(q, other[1])
			}
			if other[1] == q {
				add(other[0], q2)
			}
		}
	}
	return r
}

// IsEmpty reports whether the automaton accepts no word: L(A) is non-empty
// iff R(q0, qf) holds for some initial q0 and some qf from which ⊥ can be
// popped.
func (p *PDA) IsEmpty() bool {
	r := p.Summaries()
	for q0 := range p.starts {
		for qf := 0; qf < p.num; qf++ {
			if !r[[2]int{q0, qf}] {
				continue
			}
			if len(p.pop[popKey{qf, Bottom}]) > 0 {
				return false
			}
		}
	}
	return true
}

// PushTransition is an exported view of a push ε-transition.
type PushTransition struct {
	From  int
	To    int
	Gamma string
}

// PopTransition is an exported view of a pop ε-transition.
type PopTransition struct {
	From  int
	Gamma string
	To    int
}

// Reads returns the successors of the read transition (q, sym); it returns
// nil when sym is not in the input alphabet.
func (p *PDA) Reads(q int, sym string) []int {
	s, ok := p.alpha.Index(sym)
	if !ok {
		return nil
	}
	return append([]int(nil), p.read[[2]int{q, s}]...)
}

// Pushes returns all push ε-transitions.
func (p *PDA) Pushes() []PushTransition {
	var out []PushTransition
	for from, targets := range p.push {
		for _, t := range targets {
			out = append(out, PushTransition{From: from, To: t.state, Gamma: t.gamma})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Gamma < out[j].Gamma
	})
	return out
}

// Pops returns all pop ε-transitions.
func (p *PDA) Pops() []PopTransition {
	var out []PopTransition
	for k, targets := range p.pop {
		for _, to := range targets {
			out = append(out, PopTransition{From: k.state, Gamma: k.gamma, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Gamma < out[j].Gamma
	})
	return out
}

// AddPopBottom adds the ε-transition (from, ⊥ → to): popping the bottom
// symbol is how automata accept by empty stack.
func (p *PDA) AddPopBottom(from, to int) *PDA {
	p.pop[popKey{from, Bottom}] = append(p.pop[popKey{from, Bottom}], to)
	return p
}
