package pda

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
)

var ab = alphabet.New("a", "b")

// anbn builds a PDA accepting { a^n b^n : n ≥ 0 } by empty stack.
func anbn() *PDA {
	p := New(ab, 5)
	const (
		readA  = 0 // reading a's
		pushed = 1 // intermediate state after reading an a, before pushing
		readB  = 2 // reading b's
		popped = 3 // intermediate state after reading a b, before popping
		done   = 4 // ⊥ popped; no further input possible
	)
	p.AddStart(readA)
	p.AddRead(readA, "a", pushed)
	p.AddPush(pushed, readA, "X")
	p.AddRead(readA, "b", popped)
	p.AddRead(readB, "b", popped)
	p.AddPop(popped, "X", readB)
	p.AddPopBottom(readA, done)
	p.AddPopBottom(readB, done)
	return p
}

func w(s string) []string {
	out := make([]string, 0, len(s))
	for _, r := range s {
		out = append(out, string(r))
	}
	return out
}

func TestAnBn(t *testing.T) {
	p := anbn()
	cases := map[string]bool{
		"":       true,
		"ab":     true,
		"aabb":   true,
		"aaabbb": true,
		"a":      false,
		"b":      false,
		"abb":    false,
		"aab":    false,
		"ba":     false,
		"abab":   false,
	}
	for in, want := range cases {
		if got := p.Accepts(w(in)); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
	if p.Accepts([]string{"z"}) {
		t.Errorf("symbols outside the alphabet must be rejected")
	}
}

func TestEqualCountsPDA(t *testing.T) {
	// Equal numbers of a's and b's, in any order.
	p := New(ab, 4)
	const (
		ready  = 0
		afterA = 1
		afterB = 2
		done   = 3
	)
	p.AddStart(ready)
	p.AddRead(ready, "a", afterA)
	p.AddRead(ready, "b", afterB)
	p.AddPush(afterA, ready, "A")
	p.AddPop(afterA, "B", ready)
	p.AddPush(afterB, ready, "B")
	p.AddPop(afterB, "A", ready)
	p.AddPopBottom(ready, done)

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		l := rng.Intn(14)
		word := make([]string, l)
		count := 0
		for j := range word {
			if rng.Intn(2) == 0 {
				word[j] = "a"
				count++
			} else {
				word[j] = "b"
				count--
			}
		}
		if got, want := p.Accepts(word), count == 0; got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", word, got, want)
		}
	}
}

func TestEmptiness(t *testing.T) {
	if anbn().IsEmpty() {
		t.Errorf("a^n b^n is not empty")
	}
	// An automaton that can never empty its stack.
	p := New(ab, 2)
	p.AddStart(0)
	p.AddRead(0, "a", 1)
	p.AddPush(1, 0, "X")
	if !p.IsEmpty() {
		t.Errorf("no pop transitions: the language must be empty")
	}
	// Reachability matters: the ⊥-popping state is unreachable.
	q := New(ab, 3)
	q.AddStart(0)
	q.AddRead(0, "a", 0)
	q.AddPopBottom(2, 2)
	if !q.IsEmpty() {
		t.Errorf("the pop-⊥ state is unreachable, so the language must be empty")
	}
	// And non-emptiness via a push-pop round trip.
	r := New(ab, 4)
	r.AddStart(0)
	r.AddPush(0, 1, "X")
	r.AddRead(1, "a", 2)
	r.AddPop(2, "X", 3)
	r.AddPopBottom(3, 3)
	if r.IsEmpty() {
		t.Errorf("the word \"a\" is accepted, so the language is not empty")
	}
}

func TestSummariesBasic(t *testing.T) {
	p := anbn()
	r := p.Summaries()
	// Reflexivity.
	for q := 0; q < p.NumStates(); q++ {
		if !r[[2]int{q, q}] {
			t.Errorf("summaries must be reflexive at %d", q)
		}
	}
	// Reading "ab" with a balanced push/pop yields a summary from the start
	// state back to a state that can pop ⊥.
	if !r[[2]int{0, 2}] {
		t.Errorf("expected a summary from state 0 to state 2 (via a balanced a/b block)")
	}
}

func TestAccessors(t *testing.T) {
	p := anbn()
	if p.Alphabet() != ab || p.NumStates() != 5 {
		t.Errorf("accessors broken")
	}
	if got := p.StartStates(); len(got) != 1 || got[0] != 0 {
		t.Errorf("StartStates = %v", got)
	}
	if got := p.Reads(0, "a"); len(got) != 1 || got[0] != 1 {
		t.Errorf("Reads = %v", got)
	}
	if got := p.Reads(0, "z"); got != nil {
		t.Errorf("Reads of unknown symbols should be nil")
	}
	if len(p.Pushes()) != 1 || len(p.Pops()) != 3 {
		t.Errorf("Pushes/Pops accessors broken: %v %v", p.Pushes(), p.Pops())
	}
	q := p.AddState()
	if q != 5 || p.NumStates() != 6 {
		t.Errorf("AddState broken")
	}
}

func TestAddPushBottomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("pushing ⊥ should panic")
		}
	}()
	New(ab, 1).AddPush(0, 0, Bottom)
}
