package pnwa

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/pda"
	"repro/internal/sat"
)

// AddPopBottom adds the ε-transition (from, ⊥ → to): popping the bottom
// symbol is how runs reach an empty stack.
func (p *PNWA) AddPopBottom(from, to int) *PNWA {
	p.pop[popKey{from, Bottom}] = append(p.pop[popKey{from, Bottom}], to)
	return p
}

// FromPDA implements Lemma 4: a pushdown word automaton over the tagged
// alphabet Σ̂ (with symbols "<a", "a", "a>") is a special case of a pushdown
// nested word automaton over Σ in which all states are linear.  Calls,
// internals and returns replay the PDA's read transitions on the
// corresponding tagged letter; hierarchical edges always carry an initial
// state so that the joinless linear-mode return rule applies at matched
// returns, and the stack behaviour is copied verbatim.
func FromPDA(machine *pda.PDA, alpha *alphabet.Alphabet) *PNWA {
	p := New(alpha, machine.NumStates())
	starts := machine.StartStates()
	p.AddStart(starts...)
	if len(starts) == 0 {
		return p
	}
	q0 := starts[0]
	for q := 0; q < machine.NumStates(); q++ {
		for _, sym := range alpha.Symbols() {
			for _, to := range machine.Reads(q, "<"+sym) {
				p.AddCall(q, sym, to, q0)
			}
			for _, to := range machine.Reads(q, sym) {
				p.AddInternal(q, sym, to)
			}
			for _, to := range machine.Reads(q, sym+">") {
				p.AddReturn(q, sym, to)
			}
		}
	}
	for _, tr := range machine.Pushes() {
		p.AddPush(tr.From, tr.To, tr.Gamma)
	}
	for _, tr := range machine.Pops() {
		if tr.Gamma == pda.Bottom {
			p.AddPopBottom(tr.From, tr.To)
			continue
		}
		p.AddPop(tr.From, tr.Gamma, tr.To)
	}
	return p
}

// EqualCounts builds the pushdown nested word automaton of Theorem 9 for the
// language of nested words over {a, b} with equally many a-labelled and
// b-labelled positions (of any kind: calls, internals, and returns all
// count).  The language is a context-free word language over the tagged
// alphabet but not a context-free tree language; the automaton below uses a
// single counter encoded on the stack (a surplus of "A" or of "B" symbols)
// and only linear states, so it is also the Lemma 4 image of the obvious
// pushdown word automaton.
func EqualCounts() *PNWA {
	alpha := alphabet.New("a", "b")
	p := New(alpha, 4)
	const (
		ready  = 0 // between positions; the stack encodes the current surplus
		afterA = 1 // an a-labelled position has just been read
		afterB = 2 // a b-labelled position has just been read
		done   = 3 // ⊥ has been popped
	)
	p.AddStart(ready)
	// Every position kind counts, and hierarchical edges carry the initial
	// state so matched returns use the linear-mode rule.
	p.AddInternal(ready, "a", afterA)
	p.AddInternal(ready, "b", afterB)
	p.AddCall(ready, "a", afterA, ready)
	p.AddCall(ready, "b", afterB, ready)
	p.AddReturn(ready, "a", afterA)
	p.AddReturn(ready, "b", afterB)
	// Counter updates: after an a, either push an A (surplus of a's grows)
	// or pop a B (surplus of b's shrinks); symmetrically for b.  Exactly one
	// ε-move happens before the next position because input transitions are
	// only defined from the ready state.
	p.AddPush(afterA, ready, "A")
	p.AddPop(afterA, "B", ready)
	p.AddPush(afterB, ready, "B")
	p.AddPop(afterB, "A", ready)
	// Accept by empty stack: the counter must be balanced so that only ⊥
	// remains.
	p.AddPopBottom(ready, done)
	return p
}

// EqualCountsPredicate is the reference semantics of EqualCounts.
func EqualCountsPredicate(n *nestedword.NestedWord) bool {
	a, b := 0, 0
	for i := 0; i < n.Len(); i++ {
		switch n.SymbolAt(i) {
		case "a":
			a++
		case "b":
			b++
		}
	}
	return a == b
}

// CNFMembershipInstance is the Theorem 10 reduction from CNF satisfiability
// to pushdown-NWA membership: for a formula φ with v variables and s
// clauses, the automaton A_φ and the nested word (⟨a a^v a⟩)^s satisfy
//
//	φ is satisfiable  ⟺  the word is in L(A_φ).
//
// The automaton first guesses a truth assignment by pushing one bit per
// variable; every call copies the configuration (and therefore the whole
// assignment) onto the hierarchical edge; the branch inside the c-th block
// pops the assignment while checking that clause c is satisfied and must end
// with an empty stack (the leaf-acceptance condition); the spine resumes
// after each block from the hierarchical edge, whose stack is the untouched
// assignment, and drains its stack after the last block.
type CNFMembershipInstance struct {
	Formula   *sat.Formula
	Automaton *PNWA
	Word      *nestedword.NestedWord
}

// NewCNFMembershipInstance builds the reduction for the given formula.
func NewCNFMembershipInstance(f *sat.Formula) *CNFMembershipInstance {
	alpha := alphabet.New("a")
	v := f.NumVars
	s := f.NumClauses()

	// State layout.  Linear states: the guessing chain guess(0..v) — with
	// guess(v) doubling as spine(0) — the spine states spine(c) counting how
	// many clause blocks have been completed, the per-block edge states
	// blockDone(c), the drain state, and the final done state.  Hierarchical
	// states (the clause-checking branches): check(c, j), sat(c, j), and
	// read(c, k).
	guess := func(i int) int { return i }
	spine := func(c int) int { return v + c } // spine(0) == guess(v)
	blockDone := func(c int) int { return v + s + 1 + c }
	drain := v + 2*s + 1
	done := drain + 1
	hierBase := done + 1
	perClause := 3 * (v + 1)
	check := func(c, j int) int { return hierBase + c*perClause + j }
	satTrack := func(c, j int) int { return hierBase + c*perClause + (v + 1) + j }
	read := func(c, k int) int { return hierBase + c*perClause + 2*(v+1) + k }
	total := hierBase + s*perClause

	p := New(alpha, total)
	for c := 0; c < s; c++ {
		for j := 0; j <= v; j++ {
			p.MarkHierarchical(check(c, j), satTrack(c, j), read(c, j))
		}
	}
	p.AddStart(guess(0))

	// Phase 1: guess the assignment with v ε-pushes.  Variables are pushed
	// in decreasing index order so that variable 1 ends on top and the
	// clause checkers pop variable 1 first.
	for i := 0; i < v; i++ {
		variable := v - i
		p.AddPush(guess(i), guess(i+1), bitSymbol(variable, true))
		p.AddPush(guess(i), guess(i+1), bitSymbol(variable, false))
	}

	for c := 0; c < s; c++ {
		clause := f.Clauses[c]
		// The c-th block's call: the branch checks clause c, the edge keeps
		// the assignment for the rest of the spine.  The spine counts blocks
		// so that the c-th block is forced to check the c-th clause.
		p.AddCall(spine(c), "a", check(c, 0), blockDone(c))
		// The branch first pops the whole assignment (ε-moves), switching to
		// the satisfied track as soon as a literal of clause c is satisfied.
		for j := 0; j < v; j++ {
			variable := j + 1
			for _, val := range []bool{true, false} {
				target := check(c, j+1)
				if clauseHasLiteral(clause, variable, val) {
					target = satTrack(c, j+1)
				}
				p.AddPop(check(c, j), bitSymbol(variable, val), target)
				p.AddPop(satTrack(c, j), bitSymbol(variable, val), satTrack(c, j+1))
			}
		}
		// Only a satisfied branch may pop ⊥ and start consuming the block's
		// v internal positions; an unsatisfied branch keeps a non-empty
		// stack and therefore can never be an accepting leaf.
		p.AddPopBottom(satTrack(c, v), read(c, 0))
		for k := 0; k < v; k++ {
			p.AddInternal(read(c, k), "a", read(c, k+1))
		}
		// The block's return resumes the spine from the hierarchical edge.
		p.AddReturn(blockDone(c), "a", spine(c+1))
	}

	// After the last block the spine drains its copy of the assignment and
	// pops ⊥ so the end configuration is empty.
	for variable := 1; variable <= v; variable++ {
		for _, val := range []bool{true, false} {
			p.AddPop(spine(s), bitSymbol(variable, val), drain)
			p.AddPop(drain, bitSymbol(variable, val), drain)
		}
	}
	p.AddPopBottom(spine(s), done)
	p.AddPopBottom(drain, done)

	return &CNFMembershipInstance{Formula: f, Automaton: p, Word: CNFWord(v, s)}
}

func bitSymbol(variable int, value bool) string {
	if value {
		return fmt.Sprintf("1@%d", variable)
	}
	return fmt.Sprintf("0@%d", variable)
}

func clauseHasLiteral(c sat.Clause, variable int, value bool) bool {
	for _, l := range c {
		if l.Var() == variable && l.Positive() == value {
			return true
		}
	}
	return false
}

// CNFWord builds the nested word (⟨a a^v a⟩)^s of the Theorem 10 reduction.
func CNFWord(v, s int) *nestedword.NestedWord {
	var ps []nestedword.Position
	for c := 0; c < s; c++ {
		ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Call})
		for i := 0; i < v; i++ {
			ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Internal})
		}
		ps = append(ps, nestedword.Position{Symbol: "a", Kind: nestedword.Return})
	}
	return nestedword.New(ps...)
}

// Satisfiable answers the reduction's question through pushdown-NWA
// membership: it reports whether the reduction word is accepted by the
// reduction automaton, which holds iff the formula is satisfiable
// (Theorem 10).
func (inst *CNFMembershipInstance) Satisfiable() bool {
	// The stack never grows beyond the ⊥ + one bit per variable.
	return inst.Automaton.AcceptsWithin(inst.Word, inst.Formula.NumVars+2)
}
