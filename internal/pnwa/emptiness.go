package pnwa

import (
	"sort"
	"strconv"
	"strings"
)

// Emptiness for pushdown nested word automata (Section 4.4, Theorem 11).
//
// The algorithm saturates the summary relation R ⊆ Q × 2^Qh × Q:
// R(q, U, q') holds iff there is a nested word and a run over it whose start
// configuration is (q, ε), whose end configuration is (q', ε), and each of
// whose leaf configurations is (u, ε) for some u ∈ U.  The language is
// non-empty iff R(q0, U, qf) holds for an initial q0, a set U ⊆ F, and a
// state qf ∈ F, where F is the set of states from which ⊥ can be popped.
//
// The derivation rules implemented below are exactly the seven rules listed
// in the paper: internal transitions, linear calls, linear returns,
// hierarchical call-returns, push-pop, linear concatenation, and
// hierarchical concatenation.  The relation can be exponentially large in
// the number of hierarchical states — emptiness is Exptime-complete — so
// the saturation is a worklist algorithm over canonicalized (q, U, q')
// triples.

// stateSet is a canonical (sorted, deduplicated) set of hierarchical states.
type stateSet []int

func newStateSet(states ...int) stateSet {
	if len(states) == 0 {
		return nil
	}
	out := append(stateSet(nil), states...)
	sort.Ints(out)
	dedup := out[:1]
	for _, q := range out[1:] {
		if q != dedup[len(dedup)-1] {
			dedup = append(dedup, q)
		}
	}
	return dedup
}

func (s stateSet) union(t stateSet) stateSet {
	return newStateSet(append(append([]int(nil), s...), t...)...)
}

func (s stateSet) remove(q int) stateSet {
	out := make(stateSet, 0, len(s))
	for _, v := range s {
		if v != q {
			out = append(out, v)
		}
	}
	return out
}

func (s stateSet) contains(q int) bool {
	for _, v := range s {
		if v == q {
			return true
		}
	}
	return false
}

func (s stateSet) key() string {
	parts := make([]string, len(s))
	for i, q := range s {
		parts[i] = strconv.Itoa(q)
	}
	return strings.Join(parts, ",")
}

// summary is a triple (q, U, q').
type summary struct {
	from int
	set  stateSet
	to   int
}

func (s summary) key() string {
	return strconv.Itoa(s.from) + "|" + s.set.key() + "|" + strconv.Itoa(s.to)
}

// saturate computes the summary relation R.
func (p *PNWA) saturate() map[string]summary {
	r := make(map[string]summary)
	var worklist []summary
	add := func(s summary) {
		k := s.key()
		if _, ok := r[k]; ok {
			return
		}
		r[k] = s
		worklist = append(worklist, s)
	}

	syms := p.alpha.Symbols()

	// Base rules: internal transitions, linear calls, linear returns,
	// hierarchical call-returns.
	for k, tos := range p.internR {
		_ = k
		for _, to := range tos {
			add(summary{from: k.state, set: nil, to: to})
		}
	}
	for k, targets := range p.callR {
		for _, t := range targets {
			// Hierarchical call-returns: whenever the linear target is
			// hierarchical, the pair ⟨a b⟩ with an empty inside is
			// summarized by combining with a return transition of the
			// hierarchical-edge target (the source state may be linear or
			// hierarchical).
			if p.hier[t.Linear] {
				for si := range syms {
					for _, to := range p.returnR[callKey{t.Hier, si}] {
						add(summary{from: k.state, set: newStateSet(t.Linear), to: to})
					}
				}
			}
			// Linear calls: as in the paper's rule, a call from a linear
			// state that propagates an initial state along the hierarchical
			// edge moves to the linear successor.  (The restriction to
			// initial hierarchical targets keeps the concatenation rules
			// sound when a pending call later gets matched by a pending
			// return of a concatenated summary.)
			if !p.hier[k.state] && p.starts[t.Hier] {
				add(summary{from: k.state, set: nil, to: t.Linear})
			}
		}
	}
	for k, tos := range p.returnR {
		if p.hier[k.state] {
			continue
		}
		for _, to := range tos {
			add(summary{from: k.state, set: nil, to: to})
		}
	}

	// Hierarchical states can also take call transitions whose matching
	// return closes around a *non-empty* inside; those summaries arise from
	// combining the base hierarchical call-return rule with hierarchical
	// concatenation, so no extra base rule is needed here.

	for len(worklist) > 0 {
		s := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]

		// Push-pop rule.
		for q1 := 0; q1 < p.num; q1++ {
			for _, pg := range p.push[q1] {
				if pg.state != s.from {
					continue
				}
				pops := p.pop[popKey{s.to, pg.gamma}]
				if len(pops) == 0 {
					continue
				}
				// Every leaf state must be able to pop γ; enumerate the
				// possible images.
				images := p.leafPopImages(s.set, pg.gamma)
				for _, q2 := range pops {
					for _, img := range images {
						add(summary{from: q1, set: img, to: q2})
					}
				}
			}
		}

		// Linear concatenation with every existing summary, on both sides.
		for _, other := range snapshot(r) {
			if other.from == s.to {
				add(summary{from: s.from, set: s.set.union(other.set), to: other.to})
			}
			if other.to == s.from {
				add(summary{from: other.from, set: other.set.union(s.set), to: s.to})
			}
			// Hierarchical concatenation: extend a leaf of `other` with `s`,
			// and a leaf of `s` with `other`.
			if other.set.contains(s.from) {
				add(summary{
					from: other.from,
					set:  other.set.remove(s.from).union(s.set).union(newStateSet(s.to)),
					to:   other.to,
				})
			}
			if s.set.contains(other.from) {
				add(summary{
					from: s.from,
					set:  s.set.remove(other.from).union(other.set).union(newStateSet(other.to)),
					to:   s.to,
				})
			}
		}
	}
	return r
}

// leafPopImages enumerates the possible leaf-state sets after every state in
// set pops gamma (one choice of pop successor per leaf state).  The empty
// set has exactly one image: the empty set.
func (p *PNWA) leafPopImages(set stateSet, gamma string) []stateSet {
	images := []stateSet{nil}
	for _, u := range set {
		succ := p.pop[popKey{u, gamma}]
		if len(succ) == 0 {
			return nil
		}
		var next []stateSet
		for _, img := range images {
			for _, u2 := range succ {
				next = append(next, img.union(newStateSet(u2)))
			}
		}
		images = next
	}
	return images
}

func snapshot(r map[string]summary) []summary {
	out := make([]summary, 0, len(r))
	for _, s := range r {
		out = append(out, s)
	}
	return out
}

// IsEmpty reports whether the automaton accepts no nested word.
func (p *PNWA) IsEmpty() bool {
	r := p.saturate()
	popBottom := make(map[int]bool)
	for _, q := range p.PoppableBottom() {
		popBottom[q] = true
	}
	for _, s := range r {
		if !p.starts[s.from] || !popBottom[s.to] {
			continue
		}
		ok := true
		for _, u := range s.set {
			if !popBottom[u] {
				ok = false
				break
			}
		}
		if ok {
			return false
		}
	}
	return true
}

// SummaryCount returns the number of summaries computed by the emptiness
// saturation; it is reported by experiment E16 as a proxy for the cost of
// the Exptime procedure.
func (p *PNWA) SummaryCount() int { return len(p.saturate()) }
