package pnwa

import (
	"repro/internal/nestedword"
)

// Membership for pushdown nested word automata (Section 4.3, Theorem 10).
// The problem is NP-complete; this implementation performs a memoized search
// over the nested structure of the input word, with a configurable bound on
// the stack height explored (the NP upper-bound argument shows polynomially
// long ε-sequences suffice; the default bound is generous for every
// automaton constructed in this repository, whose pushes are driven by the
// input).

// config is a state together with a stack, the top being the last
// '\x00'-terminated chunk of the string.
type config struct {
	state int
	stack string
}

func pushStack(stack, gamma string) string { return stack + gamma + "\x00" }

func topStack(stack string) (gamma string, rest string, ok bool) {
	if stack == "" {
		return "", "", false
	}
	i := len(stack) - 1
	j := i - 1
	for j >= 0 && stack[j] != '\x00' {
		j--
	}
	return stack[j+1 : i], stack[:j+1], true
}

func stackHeight(stack string) int {
	h := 0
	for i := 0; i < len(stack); i++ {
		if stack[i] == '\x00' {
			h++
		}
	}
	return h
}

// Accepts reports whether the automaton accepts the nested word, using a
// stack-height bound of len(word) + number of stack symbols + 4.
func (p *PNWA) Accepts(n *nestedword.NestedWord) bool {
	return p.AcceptsWithin(n, n.Len()+len(p.gamma)+4)
}

// AcceptsWithin is Accepts with an explicit bound on the stack height
// explored during the search.
func (p *PNWA) AcceptsWithin(n *nestedword.NestedWord, maxStack int) bool {
	m := &matcher{p: p, n: n, maxStack: maxStack, memo: make(map[segKey]map[config]bool)}
	for _, q0 := range p.StartStates() {
		start := config{state: q0, stack: pushStack("", Bottom)}
		for end := range m.segment(0, n.Len(), start) {
			for final := range m.epsClosure(end) {
				if final.stack == "" {
					return true
				}
			}
		}
	}
	return false
}

type segKey struct {
	lo, hi int
	cfg    config
}

type matcher struct {
	p        *PNWA
	n        *nestedword.NestedWord
	maxStack int
	memo     map[segKey]map[config]bool
}

// epsClosure returns all configurations reachable from c by push/pop
// ε-moves, including c itself.
func (m *matcher) epsClosure(c config) map[config]bool {
	out := map[config]bool{c: true}
	stack := []config{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stackHeight(cur.stack) < m.maxStack {
			for _, pg := range m.p.push[cur.state] {
				next := config{state: pg.state, stack: pushStack(cur.stack, pg.gamma)}
				if !out[next] {
					out[next] = true
					stack = append(stack, next)
				}
			}
		}
		if gamma, rest, ok := topStack(cur.stack); ok {
			for _, to := range m.p.pop[popKey{cur.state, gamma}] {
				next := config{state: to, stack: rest}
				if !out[next] {
					out[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return out
}

// segment returns the set of configurations reachable immediately after
// processing positions lo..hi-1, starting from cfg (the configuration
// reached immediately after position lo-1, before any ε-moves of position
// lo).  Matched call/return pairs are processed as units so that the
// configuration copied onto the hierarchical edge is available at the
// matching return; the requirement that leaf configurations have empty
// stacks is enforced during the recursion, so the returned configurations
// all belong to potentially accepting runs.
func (m *matcher) segment(lo, hi int, cfg config) map[config]bool {
	key := segKey{lo, hi, cfg}
	if cached, ok := m.memo[key]; ok {
		return cached
	}
	// Mark as in progress with an empty result to cut (impossible) cycles.
	result := make(map[config]bool)
	m.memo[key] = result

	current := map[config]bool{cfg: true}
	pos := lo
	for pos < hi {
		pposKind := m.n.KindAt(pos)
		next := make(map[config]bool)
		switch pposKind {
		case nestedword.Internal:
			sym := m.n.SymbolAt(pos)
			for c := range current {
				for cc := range m.epsClosure(c) {
					for _, to := range m.p.internR[callKey{cc.state, m.symIdx(sym)}] {
						next[config{state: to, stack: cc.stack}] = true
					}
				}
			}
			pos++
		case nestedword.Call:
			retPos, _ := m.n.ReturnSuccessor(pos)
			if retPos == nestedword.Pending || retPos >= hi {
				// Pending call (within this segment): only the linear branch
				// continues; the hierarchical edge dangles without
				// constraints.
				sym := m.n.SymbolAt(pos)
				for c := range current {
					for cc := range m.epsClosure(c) {
						for _, t := range m.p.callR[callKey{cc.state, m.symIdx(sym)}] {
							next[config{state: t.Linear, stack: cc.stack}] = true
						}
					}
				}
				pos++
			} else {
				// Matched pair: process the inside recursively, then the
				// return using the configuration on the hierarchical edge.
				callSym := m.n.SymbolAt(pos)
				retSym := m.n.SymbolAt(retPos)
				for c := range current {
					for cc := range m.epsClosure(c) {
						for _, t := range m.p.callR[callKey{cc.state, m.symIdx(callSym)}] {
							linCfg := config{state: t.Linear, stack: cc.stack}
							edgeCfg := config{state: t.Hier, stack: cc.stack}
							for innerEnd := range m.segment(pos+1, retPos, linCfg) {
								for pre := range m.epsClosure(innerEnd) {
									m.applyReturn(pre, edgeCfg, retSym, next)
								}
							}
						}
					}
				}
				pos = retPos + 1
			}
		case nestedword.Return:
			// Pending return: the hierarchical edge carries the default
			// configuration (q0, ⊥).
			sym := m.n.SymbolAt(pos)
			for c := range current {
				for cc := range m.epsClosure(c) {
					for _, q0 := range m.p.StartStates() {
						def := config{state: q0, stack: pushStack("", Bottom)}
						m.applyReturn(cc, def, sym, next)
					}
				}
			}
			pos++
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	for c := range current {
		result[c] = true
	}
	m.memo[key] = result
	return result
}

// applyReturn adds to out the configurations produced by reading a return
// labelled sym when the configuration just before the return is pre and the
// configuration on the hierarchical edge is edge.
func (m *matcher) applyReturn(pre, edge config, sym string, out map[config]bool) {
	si := m.symIdx(sym)
	if si < 0 {
		return
	}
	if !m.p.hier[pre.state] {
		// Linear mode: the hierarchical edge must carry an initial state and
		// the return transition applies to the current configuration.
		if m.p.starts[edge.state] {
			for _, to := range m.p.returnR[callKey{pre.state, si}] {
				out[config{state: to, stack: pre.stack}] = true
			}
		}
		return
	}
	// Hierarchical mode: pre is a leaf configuration; accepting runs require
	// its stack to be empty, and the continuation applies a return
	// transition to the configuration on the hierarchical edge.
	if pre.stack != "" {
		return
	}
	for _, to := range m.p.returnR[callKey{edge.state, si}] {
		out[config{state: to, stack: edge.stack}] = true
	}
}

func (m *matcher) symIdx(sym string) int {
	i, ok := m.p.alpha.Index(sym)
	if !ok {
		return -1
	}
	return i
}
