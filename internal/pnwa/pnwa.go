// Package pnwa implements pushdown nested word automata, the model
// introduced in Section 4 of "Marrying Words and Trees" (Alur, PODS 2007).
//
// A pushdown nested word automaton adds a stack to the finite-state control
// of a nondeterministic joinless NWA.  States are partitioned into linear
// and hierarchical states; the stack is updated only by ε push/pop moves; at
// a call the current configuration (state and stack) is forked to the linear
// successor and onto the hierarchical edge, each with its own copy of the
// stack; acceptance is by empty stack at the end configuration and at every
// leaf configuration.
//
// The package provides:
//
//   - membership (Theorem 10: NP-complete; implemented as a memoized search
//     over the nested structure of the input),
//   - emptiness by saturation of the summaries R(q, U, q') of Section 4.4
//     (Theorem 11: Exptime-complete),
//   - the embedding of pushdown word automata (Lemma 4),
//   - the NP-hardness reduction of Theorem 10 from CNF satisfiability, and
//   - the "equal number of a's and b's" automaton used by Theorem 9 to
//     separate pushdown nested word automata from pushdown tree automata.
package pnwa

import (
	"sort"

	"repro/internal/alphabet"
)

// Bottom is the reserved bottom-of-stack symbol ⊥.
const Bottom = "⊥"

type callKey struct {
	state int
	sym   int
}

type callTarget struct {
	Linear int
	Hier   int
}

type popKey struct {
	state int
	gamma string
}

type pushTarget struct {
	state int
	gamma string
}

// PNWA is a pushdown nested word automaton.
type PNWA struct {
	alpha  *alphabet.Alphabet
	num    int
	hier   []bool
	starts map[int]bool
	// Input transitions (stack untouched).
	callR   map[callKey][]callTarget
	internR map[callKey][]int
	returnR map[callKey][]int
	// ε stack transitions.
	push map[int][]pushTarget
	pop  map[popKey][]int
	// Stack alphabet actually used (excluding ⊥).
	gamma map[string]bool
}

// New creates an empty pushdown NWA with numStates states, all linear; use
// MarkHierarchical to move states into Qh.
func New(alpha *alphabet.Alphabet, numStates int) *PNWA {
	return &PNWA{
		alpha:   alpha,
		num:     numStates,
		hier:    make([]bool, numStates),
		starts:  make(map[int]bool),
		callR:   make(map[callKey][]callTarget),
		internR: make(map[callKey][]int),
		returnR: make(map[callKey][]int),
		push:    make(map[int][]pushTarget),
		pop:     make(map[popKey][]int),
		gamma:   make(map[string]bool),
	}
}

// Alphabet returns the input alphabet.
func (p *PNWA) Alphabet() *alphabet.Alphabet { return p.alpha }

// NumStates returns the number of states.
func (p *PNWA) NumStates() int { return p.num }

// AddState appends a fresh linear state.
func (p *PNWA) AddState() int {
	q := p.num
	p.num++
	p.hier = append(p.hier, false)
	return q
}

// AddHierarchicalState appends a fresh hierarchical state.
func (p *PNWA) AddHierarchicalState() int {
	q := p.AddState()
	p.hier[q] = true
	return q
}

// MarkHierarchical moves states into Qh.
func (p *PNWA) MarkHierarchical(states ...int) *PNWA {
	for _, q := range states {
		p.hier[q] = true
	}
	return p
}

// IsHierarchical reports whether q ∈ Qh.
func (p *PNWA) IsHierarchical(q int) bool { return p.hier[q] }

// AddStart marks states as initial.
func (p *PNWA) AddStart(states ...int) *PNWA {
	for _, q := range states {
		p.starts[q] = true
	}
	return p
}

// StartStates returns the initial states, sorted.
func (p *PNWA) StartStates() []int {
	out := make([]int, 0, len(p.starts))
	for q := range p.starts {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// AddCall adds the call transition (from, sym, linear, hier).  Calls from
// hierarchical states must target hierarchical states on both edges.
func (p *PNWA) AddCall(from int, sym string, linear, hierTarget int) *PNWA {
	if p.hier[from] && (!p.hier[linear] || !p.hier[hierTarget]) {
		panic("pnwa: call from a hierarchical state must target hierarchical states")
	}
	k := callKey{from, p.alpha.MustIndex(sym)}
	p.callR[k] = append(p.callR[k], callTarget{linear, hierTarget})
	return p
}

// AddInternal adds the internal transition (from, sym, to).
func (p *PNWA) AddInternal(from int, sym string, to int) *PNWA {
	if p.hier[from] && !p.hier[to] {
		panic("pnwa: internal transition from a hierarchical state must target a hierarchical state")
	}
	k := callKey{from, p.alpha.MustIndex(sym)}
	p.internR[k] = append(p.internR[k], to)
	return p
}

// AddReturn adds the return transition (from, sym, to).  As in joinless
// automata, the transition has a single source: the current state when it is
// linear, or the state on the hierarchical edge otherwise.
func (p *PNWA) AddReturn(from int, sym string, to int) *PNWA {
	if p.hier[from] && !p.hier[to] {
		panic("pnwa: return transition from a hierarchical state must target a hierarchical state")
	}
	k := callKey{from, p.alpha.MustIndex(sym)}
	p.returnR[k] = append(p.returnR[k], to)
	return p
}

// AddPush adds the ε-transition (from → to, push gamma); pushing ⊥ is not
// allowed.
func (p *PNWA) AddPush(from, to int, gamma string) *PNWA {
	if gamma == Bottom {
		panic("pnwa: pushing the bottom symbol is not allowed")
	}
	p.gamma[gamma] = true
	p.push[from] = append(p.push[from], pushTarget{state: to, gamma: gamma})
	return p
}

// AddPop adds the ε-transition (from, gamma → to), popping gamma.
func (p *PNWA) AddPop(from int, gamma string, to int) *PNWA {
	p.gamma[gamma] = true
	p.pop[popKey{from, gamma}] = append(p.pop[popKey{from, gamma}], to)
	return p
}

// PoppableBottom returns the set F of states from which ⊥ can be popped,
// used by the emptiness check of Section 4.4.
func (p *PNWA) PoppableBottom() []int {
	var out []int
	for q := 0; q < p.num; q++ {
		if len(p.pop[popKey{q, Bottom}]) > 0 {
			out = append(out, q)
		}
	}
	return out
}
