package pnwa

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/pda"
	"repro/internal/sat"
)

var ab = alphabet.New("a", "b")

func randomNested(rng *rand.Rand, maxLen int) *nestedword.NestedWord {
	l := rng.Intn(maxLen + 1)
	kinds := []nestedword.Kind{nestedword.Internal, nestedword.Call, nestedword.Return}
	ps := make([]nestedword.Position, l)
	for i := range ps {
		ps[i] = nestedword.Position{
			Symbol: []string{"a", "b"}[rng.Intn(2)],
			Kind:   kinds[rng.Intn(3)],
		}
	}
	return nestedword.New(ps...)
}

func TestEqualCountsAutomaton(t *testing.T) {
	p := EqualCounts()
	cases := map[string]bool{
		"":            true,
		"a b":         true,
		"a a b b":     true,
		"<a b>":       true,
		"<a <b b> a>": true,
		"a":           false,
		"<a a>":       false,
		"<a b b>":     false,
		"b> <a":       true,
		"<a <a b> b>": true,
	}
	for in, want := range cases {
		n := nestedword.MustParse(in)
		if got := p.Accepts(n); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestEqualCountsAgainstPredicate(t *testing.T) {
	p := EqualCounts()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := randomNested(rng, 12)
		if got, want := p.Accepts(n), EqualCountsPredicate(n); got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestEqualCountsIsNotEmpty(t *testing.T) {
	p := EqualCounts()
	if p.IsEmpty() {
		t.Errorf("the equal-counts language contains the empty word")
	}
	if p.SummaryCount() == 0 {
		t.Errorf("the saturation should derive at least one summary")
	}
}

func TestTypedConstructionPanics(t *testing.T) {
	p := New(ab, 2)
	p.MarkHierarchical(0)
	defer func() {
		if recover() == nil {
			t.Errorf("a call from a hierarchical state to a linear state should panic")
		}
	}()
	p.AddCall(0, "a", 1, 1)
}

func TestStateHelpers(t *testing.T) {
	p := New(ab, 0)
	lin := p.AddState()
	hier := p.AddHierarchicalState()
	if p.IsHierarchical(lin) || !p.IsHierarchical(hier) {
		t.Errorf("state kinds broken")
	}
	p.AddStart(lin)
	if got := p.StartStates(); len(got) != 1 || got[0] != lin {
		t.Errorf("StartStates = %v", got)
	}
	if p.Alphabet() != ab || p.NumStates() != 2 {
		t.Errorf("accessors broken")
	}
	p.AddPopBottom(lin, lin)
	if got := p.PoppableBottom(); len(got) != 1 || got[0] != lin {
		t.Errorf("PoppableBottom = %v", got)
	}
}

func TestPushBottomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("pushing ⊥ should panic")
		}
	}()
	New(ab, 1).AddPush(0, 0, Bottom)
}

// dyckPDA accepts the tagged words of well-matched nested words over {a}
// whose calls and returns are balanced; used to exercise the Lemma 4
// embedding.
func dyckPDA() *pda.PDA {
	tagged := alphabet.New("<a", "a", "a>")
	p := pda.New(tagged, 4)
	const (
		ready     = 0
		afterOpen = 1
		afterShut = 2
		done      = 3
	)
	p.AddStart(ready)
	p.AddRead(ready, "<a", afterOpen)
	p.AddPush(afterOpen, ready, "X")
	p.AddRead(ready, "a", ready)
	p.AddRead(ready, "a>", afterShut)
	p.AddPop(afterShut, "X", ready)
	p.AddPopBottom(ready, done)
	return p
}

func TestFromPDALemma4(t *testing.T) {
	machine := dyckPDA()
	alphaA := alphabet.New("a")
	p := FromPDA(machine, alphaA)
	cases := map[string]bool{
		"":            true,
		"<a a>":       true,
		"<a <a a> a>": true,
		"<a a":        false, // the pending call is never balanced
		"<a":          false,
		"a>":          false,
		"a a":         true,
		"<a a> a>":    false,
	}
	for in, want := range cases {
		n := nestedword.MustParse(in)
		if got := p.Accepts(n); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
		// Lemma 4: the pushdown NWA agrees with the PDA on the tagged word.
		tagged := make([]string, n.Len())
		for i := 0; i < n.Len(); i++ {
			switch n.KindAt(i) {
			case nestedword.Call:
				tagged[i] = "<" + n.SymbolAt(i)
			case nestedword.Return:
				tagged[i] = n.SymbolAt(i) + ">"
			default:
				tagged[i] = n.SymbolAt(i)
			}
		}
		if machine.Accepts(tagged) != p.Accepts(n) {
			t.Errorf("PDA and pushdown NWA disagree on %q", in)
		}
	}
	if p.IsEmpty() {
		t.Errorf("the embedded Dyck language is not empty")
	}
}

func TestCNFReductionAgainstDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		numVars := 1 + rng.Intn(5)
		numClauses := 1 + rng.Intn(6)
		f := sat.Random3CNF(rng, numVars, numClauses)
		inst := NewCNFMembershipInstance(f)
		if got, want := inst.Satisfiable(), f.Satisfiable(); got != want {
			t.Fatalf("trial %d: reduction=%v DPLL=%v for %v", trial, got, want, f)
		}
	}
}

func TestCNFReductionKnownInstances(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2): satisfiable? x2 must be false (clause
	// 3), then clause 1 forces x1, clause 2 forces ¬x1 → unsatisfiable.
	unsat := sat.New(2, sat.Clause{1, 2}, sat.Clause{-1, 2}, sat.Clause{-2})
	if NewCNFMembershipInstance(unsat).Satisfiable() {
		t.Errorf("reduction should reject the unsatisfiable instance")
	}
	// (x1 ∨ ¬x2) ∧ (x2): satisfiable with x1 = x2 = true.
	satf := sat.New(2, sat.Clause{1, -2}, sat.Clause{2})
	if !NewCNFMembershipInstance(satf).Satisfiable() {
		t.Errorf("reduction should accept the satisfiable instance")
	}
}

func TestCNFWordShape(t *testing.T) {
	w := CNFWord(3, 2)
	if w.Len() != 2*(3+2) {
		t.Fatalf("word length = %d, want 10", w.Len())
	}
	if !w.IsWellMatched() || w.Depth() != 1 {
		t.Errorf("the reduction word is a sequence of flat blocks")
	}
	inst := NewCNFMembershipInstance(sat.New(3, sat.Clause{1}, sat.Clause{-2}))
	if !inst.Word.Equal(CNFWord(3, 2)) {
		t.Errorf("instance word should match CNFWord(v, s)")
	}
}

func TestCNFReductionWordRejectedWhenMalformed(t *testing.T) {
	// The reduction is about the exact word (⟨a a^v a⟩)^s.  Words with more
	// blocks than clauses, or with blocks of the wrong width, are rejected
	// because the spine counts blocks and each branch consumes exactly v
	// internal positions.
	f := sat.New(2, sat.Clause{1}, sat.Clause{2})
	inst := NewCNFMembershipInstance(f)
	if !inst.Satisfiable() {
		t.Fatalf("the instance is satisfiable")
	}
	extraBlock := CNFWord(f.NumVars, f.NumClauses()+1)
	if inst.Automaton.AcceptsWithin(extraBlock, f.NumVars+2) {
		t.Errorf("a word with an extra block should not be accepted")
	}
	wideBlocks := CNFWord(f.NumVars+1, f.NumClauses())
	if inst.Automaton.AcceptsWithin(wideBlocks, f.NumVars+3) {
		t.Errorf("a word with over-wide blocks should not be accepted")
	}
}
