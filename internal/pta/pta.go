// Package pta implements top-down pushdown tree automata, the "trees"
// baseline of Section 4 of "Marrying Words and Trees" (Alur, PODS 2007).
//
// A pushdown tree automaton runs top-down over an ordered tree (nodes of
// arity 0, 1, or 2 suffice for every example in the paper, including the
// stem-plus-full-binary-tree family of Figure 2).  Configurations pair a
// state with a stack; the stack is updated only by ε push/pop moves; at a
// node the configuration is copied to every child, each with its own copy of
// the stack; the tree is accepted when every leaf configuration can reach an
// empty stack.
//
// The emptiness check computes the summaries R(q, U) described in Section
// 4.4: R(q, U) holds when some tree has a run from (q, ε) whose leaf
// configurations all have empty stacks and states in U.  As the paper notes,
// a push can be matched by pops along multiple branches, which is what makes
// the procedure (and the problem) exponential.
package pta

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/tree"
)

// Bottom is the reserved bottom-of-stack symbol ⊥.
const Bottom = "⊥"

type popKey struct {
	state int
	gamma string
}

type pushTarget struct {
	state int
	gamma string
}

// PTA is a nondeterministic top-down pushdown tree automaton.
type PTA struct {
	alpha  *alphabet.Alphabet
	num    int
	starts map[int]bool
	// leaf[(q, sym)] — state q may finish on a sym-labelled leaf, moving to
	// the listed states (whose configurations must then empty their stacks).
	leaf map[[2]int][]int
	// unary[(q, sym)] — successors for the single child.
	unary map[[2]int][]int
	// binary[(q, sym)] — (left, right) successor pairs.
	binary map[[2]int][][2]int
	push   map[int][]pushTarget
	pop    map[popKey][]int
}

// New creates an empty PTA over the given alphabet with numStates states.
func New(alpha *alphabet.Alphabet, numStates int) *PTA {
	return &PTA{
		alpha:  alpha,
		num:    numStates,
		starts: make(map[int]bool),
		leaf:   make(map[[2]int][]int),
		unary:  make(map[[2]int][]int),
		binary: make(map[[2]int][][2]int),
		push:   make(map[int][]pushTarget),
		pop:    make(map[popKey][]int),
	}
}

// Alphabet returns the automaton's alphabet.
func (p *PTA) Alphabet() *alphabet.Alphabet { return p.alpha }

// NumStates returns the number of states.
func (p *PTA) NumStates() int { return p.num }

// AddStart marks states as initial.
func (p *PTA) AddStart(states ...int) *PTA {
	for _, q := range states {
		p.starts[q] = true
	}
	return p
}

// AddLeaf adds the leaf transition (q, sym → q'): a sym-labelled leaf read
// in state q moves to q', whose configuration must then empty its stack.
func (p *PTA) AddLeaf(q int, sym string, to int) *PTA {
	k := [2]int{q, p.alpha.MustIndex(sym)}
	p.leaf[k] = append(p.leaf[k], to)
	return p
}

// AddUnary adds the transition (q, sym → child) for nodes with one child.
func (p *PTA) AddUnary(q int, sym string, child int) *PTA {
	k := [2]int{q, p.alpha.MustIndex(sym)}
	p.unary[k] = append(p.unary[k], child)
	return p
}

// AddBinary adds the transition (q, sym → left, right) for nodes with two
// children.
func (p *PTA) AddBinary(q int, sym string, left, right int) *PTA {
	k := [2]int{q, p.alpha.MustIndex(sym)}
	p.binary[k] = append(p.binary[k], [2]int{left, right})
	return p
}

// AddPush adds the ε-transition (from → to, push gamma).
func (p *PTA) AddPush(from, to int, gamma string) *PTA {
	if gamma == Bottom {
		panic("pta: pushing the bottom symbol is not allowed")
	}
	p.push[from] = append(p.push[from], pushTarget{state: to, gamma: gamma})
	return p
}

// AddPop adds the ε-transition (from, gamma → to).
func (p *PTA) AddPop(from int, gamma string, to int) *PTA {
	p.pop[popKey{from, gamma}] = append(p.pop[popKey{from, gamma}], to)
	return p
}

// AddPopBottom adds the ε-transition (from, ⊥ → to).
func (p *PTA) AddPopBottom(from, to int) *PTA {
	p.pop[popKey{from, Bottom}] = append(p.pop[popKey{from, Bottom}], to)
	return p
}

// config pairs a state with a stack string (symbols are '\x00'-terminated).
type config struct {
	state int
	stack string
}

func pushStack(stack, gamma string) string { return stack + gamma + "\x00" }

func topStack(stack string) (gamma string, rest string, ok bool) {
	if stack == "" {
		return "", "", false
	}
	i := len(stack) - 1
	j := i - 1
	for j >= 0 && stack[j] != '\x00' {
		j--
	}
	return stack[j+1 : i], stack[:j+1], true
}

func stackHeight(stack string) int {
	h := 0
	for i := 0; i < len(stack); i++ {
		if stack[i] == '\x00' {
			h++
		}
	}
	return h
}

// Accepts reports whether the automaton accepts the (non-empty) tree,
// exploring stacks up to height size(t) + 2.
func (p *PTA) Accepts(t *tree.Tree) bool {
	if t == nil {
		return false
	}
	return p.AcceptsWithin(t, t.Size()+2)
}

// AcceptsWithin is Accepts with an explicit bound on the stack height.
func (p *PTA) AcceptsWithin(t *tree.Tree, maxStack int) bool {
	m := &matcher{p: p, maxStack: maxStack, memo: make(map[string]bool)}
	for q := range p.starts {
		if m.node(t, config{state: q, stack: pushStack("", Bottom)}) {
			return true
		}
	}
	return false
}

type matcher struct {
	p        *PTA
	maxStack int
	memo     map[string]bool
}

func (m *matcher) epsClosure(c config) map[config]bool {
	out := map[config]bool{c: true}
	stack := []config{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stackHeight(cur.stack) < m.maxStack {
			for _, pg := range m.p.push[cur.state] {
				next := config{state: pg.state, stack: pushStack(cur.stack, pg.gamma)}
				if !out[next] {
					out[next] = true
					stack = append(stack, next)
				}
			}
		}
		if gamma, rest, ok := topStack(cur.stack); ok {
			for _, to := range m.p.pop[popKey{cur.state, gamma}] {
				next := config{state: to, stack: rest}
				if !out[next] {
					out[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return out
}

// node reports whether the subtree rooted at t has an accepting run starting
// from cfg (all leaf configurations reach an empty stack).
func (m *matcher) node(t *tree.Tree, cfg config) bool {
	key := treeKey(t) + "|" + strconv.Itoa(cfg.state) + "|" + cfg.stack
	if v, ok := m.memo[key]; ok {
		return v
	}
	m.memo[key] = false // cycles are impossible; this is a plain cache seed
	si, ok := m.p.alpha.Index(t.Label)
	result := false
	if ok {
		for c := range m.epsClosure(cfg) {
			switch len(t.Children) {
			case 0:
				for _, to := range m.p.leaf[[2]int{c.state, si}] {
					if m.canEmpty(config{state: to, stack: c.stack}) {
						result = true
					}
				}
			case 1:
				for _, child := range m.p.unary[[2]int{c.state, si}] {
					if m.node(t.Children[0], config{state: child, stack: c.stack}) {
						result = true
					}
				}
			case 2:
				for _, lr := range m.p.binary[[2]int{c.state, si}] {
					if m.node(t.Children[0], config{state: lr[0], stack: c.stack}) &&
						m.node(t.Children[1], config{state: lr[1], stack: c.stack}) {
						result = true
					}
				}
			}
			if result {
				break
			}
		}
	}
	m.memo[key] = result
	return result
}

// canEmpty reports whether the configuration can reach an empty stack by
// ε-moves alone.
func (m *matcher) canEmpty(c config) bool {
	for cc := range m.epsClosure(c) {
		if cc.stack == "" {
			return true
		}
	}
	return false
}

// treeKey is a structural key for memoization (trees are immutable in the
// matcher's usage).
func treeKey(t *tree.Tree) string {
	var b strings.Builder
	var walk func(*tree.Tree)
	walk = func(u *tree.Tree) {
		if u == nil {
			return
		}
		b.WriteString(u.Label)
		b.WriteByte('(')
		for _, c := range u.Children {
			walk(c)
			b.WriteByte(',')
		}
		b.WriteByte(')')
	}
	walk(t)
	return b.String()
}

// stateSet is a canonical set of states.
type stateSet []int

func newStateSet(states ...int) stateSet {
	if len(states) == 0 {
		return nil
	}
	out := append(stateSet(nil), states...)
	sort.Ints(out)
	dedup := out[:1]
	for _, q := range out[1:] {
		if q != dedup[len(dedup)-1] {
			dedup = append(dedup, q)
		}
	}
	return dedup
}

func (s stateSet) union(t stateSet) stateSet {
	return newStateSet(append(append([]int(nil), s...), t...)...)
}

func (s stateSet) key() string {
	parts := make([]string, len(s))
	for i, q := range s {
		parts[i] = strconv.Itoa(q)
	}
	return strings.Join(parts, ",")
}

type summary struct {
	from int
	set  stateSet
}

func (s summary) key() string { return strconv.Itoa(s.from) + "|" + s.set.key() }

// saturate computes the relation R(q, U) of Section 4.4: some tree has a run
// from (q, ε) whose leaf configurations are (u, ε) with u ∈ U.
func (p *PTA) saturate() map[string]summary {
	r := make(map[string]summary)
	var worklist []summary
	add := func(s summary) {
		k := s.key()
		if _, ok := r[k]; ok {
			return
		}
		r[k] = s
		worklist = append(worklist, s)
	}
	for k, tos := range p.leaf {
		for _, to := range tos {
			add(summary{from: k[0], set: newStateSet(to)})
		}
	}
	for len(worklist) > 0 {
		s := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		// Unary rule.
		for k, children := range p.unary {
			for _, child := range children {
				if child == s.from {
					add(summary{from: k[0], set: s.set})
				}
			}
		}
		// Binary rule: combine with every known summary for the sibling.
		for k, pairs := range p.binary {
			for _, lr := range pairs {
				for _, other := range snapshot(r) {
					if lr[0] == s.from && lr[1] == other.from {
						add(summary{from: k[0], set: s.set.union(other.set)})
					}
					if lr[0] == other.from && lr[1] == s.from {
						add(summary{from: k[0], set: other.set.union(s.set)})
					}
				}
			}
		}
		// Push-pop rule.
		for q1 := 0; q1 < p.num; q1++ {
			for _, pg := range p.push[q1] {
				if pg.state != s.from {
					continue
				}
				for _, img := range p.leafPopImages(s.set, pg.gamma) {
					add(summary{from: q1, set: img})
				}
			}
		}
	}
	return r
}

func (p *PTA) leafPopImages(set stateSet, gamma string) []stateSet {
	images := []stateSet{nil}
	for _, u := range set {
		succ := p.pop[popKey{u, gamma}]
		if len(succ) == 0 {
			return nil
		}
		var next []stateSet
		for _, img := range images {
			for _, u2 := range succ {
				next = append(next, img.union(newStateSet(u2)))
			}
		}
		images = next
	}
	return images
}

func snapshot(r map[string]summary) []summary {
	out := make([]summary, 0, len(r))
	for _, s := range r {
		out = append(out, s)
	}
	return out
}

// IsEmpty reports whether the automaton accepts no tree: the language is
// non-empty iff R(q0, U) holds for an initial q0 and a set U of states from
// which ⊥ can be popped.
func (p *PTA) IsEmpty() bool {
	popBottom := make(map[int]bool)
	for q := 0; q < p.num; q++ {
		if len(p.pop[popKey{q, Bottom}]) > 0 {
			popBottom[q] = true
		}
	}
	for _, s := range p.saturate() {
		if !p.starts[s.from] {
			continue
		}
		ok := true
		for _, u := range s.set {
			if !popBottom[u] {
				ok = false
				break
			}
		}
		if ok {
			return false
		}
	}
	return true
}

// SummaryCount returns the number of summaries computed by the emptiness
// saturation.
func (p *PTA) SummaryCount() int { return len(p.saturate()) }
