package pta

import (
	"testing"

	"repro/internal/alphabet"
	"repro/internal/tree"
)

var cde = alphabet.New("c", "d", "e")

// stemCounter accepts the unary trees c^n(d^n(e)) for n ≥ 0: push one X per
// c-node, pop one X per d-node, the e-leaf pops ⊥.  It is a pushdown tree
// automaton for a context-free tree language that no finite-state tree
// automaton accepts (Lemma 5's flavour of example).
func stemCounter() *PTA {
	p := New(cde, 5)
	const (
		readC  = 0
		pushed = 1
		readD  = 2
		popped = 3
		leaf   = 4
	)
	p.AddStart(readC)
	p.AddUnary(readC, "c", pushed)
	p.AddPush(pushed, readC, "X")
	p.AddUnary(readC, "d", popped)
	p.AddUnary(readD, "d", popped)
	p.AddPop(popped, "X", readD)
	p.AddLeaf(readC, "e", leaf)
	p.AddLeaf(readD, "e", leaf)
	p.AddPopBottom(leaf, leaf)
	return p
}

// stem builds the unary tree c^nc (d^nd (e)).
func stem(nc, nd int) *tree.Tree {
	t := tree.Leaf("e")
	for i := 0; i < nd; i++ {
		t = tree.New("d", t)
	}
	for i := 0; i < nc; i++ {
		t = tree.New("c", t)
	}
	return t
}

func TestStemCounterAccepts(t *testing.T) {
	p := stemCounter()
	for n := 0; n <= 5; n++ {
		if !p.Accepts(stem(n, n)) {
			t.Errorf("c^%d d^%d e should be accepted", n, n)
		}
	}
	reject := [][2]int{{1, 0}, {0, 1}, {2, 1}, {1, 2}, {3, 5}}
	for _, nm := range reject {
		if p.Accepts(stem(nm[0], nm[1])) {
			t.Errorf("c^%d d^%d e should be rejected", nm[0], nm[1])
		}
	}
	if p.Accepts(nil) {
		t.Errorf("the empty tree is never accepted")
	}
	if p.Accepts(tree.Leaf("z")) {
		t.Errorf("labels outside the alphabet are rejected")
	}
}

func TestBinaryForkCopiesStack(t *testing.T) {
	// Each child of a binary node receives its own copy of the stack: the
	// automaton below pushes one X at the root and requires both children to
	// pop it before their leaves.
	alpha := alphabet.New("r", "l")
	p := New(alpha, 4)
	const (
		root    = 0
		pushed  = 1
		child   = 2
		leafEnd = 3
	)
	p.AddStart(root)
	p.AddPush(root, pushed, "X")
	p.AddBinary(pushed, "r", child, child)
	p.AddPop(child, "X", leafEnd)
	p.AddLeaf(leafEnd, "l", leafEnd)
	p.AddPopBottom(leafEnd, leafEnd)

	good := tree.New("r", tree.Leaf("l"), tree.Leaf("l"))
	if !p.Accepts(good) {
		t.Errorf("both children can pop their own copy of X")
	}
	// A deeper right child cannot pop X twice, so the tree is rejected.
	bad := tree.New("r", tree.Leaf("l"), tree.New("r", tree.Leaf("l"), tree.Leaf("l")))
	if p.Accepts(bad) {
		t.Errorf("the nested r-node has no applicable transition and must be rejected")
	}
}

func TestEmptinessPTA(t *testing.T) {
	p := stemCounter()
	if p.IsEmpty() {
		t.Errorf("the stem-counter language is not empty")
	}
	if p.SummaryCount() == 0 {
		t.Errorf("saturation should derive summaries")
	}
	// An automaton whose only leaf transition leaves a non-poppable stack.
	q := New(cde, 3)
	q.AddStart(0)
	q.AddPush(0, 1, "X")
	q.AddLeaf(1, "e", 2)
	if !q.IsEmpty() {
		t.Errorf("no pop transitions: every leaf keeps X and ⊥, so the language is empty")
	}
	q.AddPop(2, "X", 2)
	q.AddPopBottom(2, 2)
	if q.IsEmpty() {
		t.Errorf("after adding pops the single-leaf tree e is accepted")
	}
}

func TestAccessorsAndPanics(t *testing.T) {
	p := stemCounter()
	if p.Alphabet() != cde || p.NumStates() != 5 {
		t.Errorf("accessors broken")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("pushing ⊥ should panic")
		}
	}()
	p.AddPush(0, 0, Bottom)
}
