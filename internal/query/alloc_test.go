package query

import (
	"fmt"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/nwa"
)

// bigNNWA builds a 64-state nondeterministic automaton — one full bitset
// word — with call, internal, and return transitions out of every state, so
// a step exercises Gather, the return stitch, and the frame free list.
func bigNNWA() *nwa.NNWA {
	alpha := alphabet.New("a", "b")
	const n = 64
	a := nwa.NewNNWA(alpha, n)
	a.AddStart(0)
	a.AddAccept(n - 1)
	for q := 0; q < n; q++ {
		a.AddInternal(q, "a", (q+1)%n)
		a.AddInternal(q, "b", q)
		a.AddCall(q, "a", (q+3)%n, q)
		a.AddReturn((q+3)%n, q, "b", (q+1)%n)
	}
	return a
}

// TestBitsetRunnerZeroAlloc pins the claim the //nwvet:hotpath annotations
// on the bitset runner make: once the frame free list has grown to the
// working depth, stepping the 64-state state-set simulation — calls,
// internals, matched and pending returns — allocates nothing.
func TestBitsetRunnerZeroAlloc(t *testing.T) {
	c := CompileN(bigNNWA())
	r := c.NewRunner()
	run := func() {
		r.Reset()
		for depth := 0; depth < 8; depth++ {
			r.StepCall(0)
			r.StepInternal(0)
			r.StepInternal(1)
		}
		for depth := 0; depth < 8; depth++ {
			r.StepReturn(1)
		}
		r.StepReturn(1) // pending return on a drained stack
		_ = r.Accepting()
	}
	run() // grow the stack and free list to the working depth
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("bitset NNWA runner: %v allocs/op, want 0", allocs)
	}
}

// TestDNWARunnerZeroAlloc is the deterministic counterpart: a compiled DNWA
// runner steps with zero allocations once its stack has grown.
func TestDNWARunnerZeroAlloc(t *testing.T) {
	c := Compile(WellFormed(alphabet.New("a", "b")))
	r := c.NewRunner()
	run := func() {
		r.Reset()
		for depth := 0; depth < 16; depth++ {
			r.StepCall(0)
			r.StepInternal(1)
		}
		for depth := 0; depth < 16; depth++ {
			r.StepReturn(0)
		}
		_ = r.Accepting()
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("compiled DNWA runner: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkVetBundle tracks the cost of the artifact verifier on the CLI
// standard set, so vet stays cheap enough to run at every fleet boot.
func BenchmarkVetBundle(b *testing.B) {
	alpha := alphabet.New("a", "b")
	names, queries := StandardSet(alpha, []string{"a", "b"}, []string{"a", "b"})
	bdl := NewBundle(alpha)
	for i, q := range queries {
		if err := bdl.Add(names[i], q); err != nil {
			b.Fatal(err)
		}
	}
	data := bdl.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := VetBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors() != 0 {
			b.Fatal(fmt.Errorf("standard set does not vet clean:\n%s", rep))
		}
	}
}
