package query

import (
	"sort"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// This file is the compiled half of the package: it turns the map-backed
// automata of the nwa package into immutable, index-addressed tables that the
// engine's hot loop can step through without hashing a single string.
//
// Symbol IDs.  A compiled automaton over an alphabet Σ uses the dense symbol
// IDs 0..|Σ|-1 of the alphabet package, plus one extra dedicated ID |Σ| — the
// out-of-alphabet ID returned by SymID for labels the queries have never
// heard of.  Every transition table has |Σ|+1 columns and the out-of-alphabet
// column is entirely dead (respectively empty), so an unknown label is
// handled by exactly the same indexed load as a known one: no branch, no
// warning path, no special case.  Tokenizers intern labels to these IDs once
// at the edge (docstream.NewInterningTokenizer), so N fanned-out queries pay
// one map lookup per event in total instead of one per event per query.
//
// Dense vs sparse.  Call and internal transitions always live in flat dense
// slices indexed by state*numSymbols+sym: their size is linear in the number
// of states.  Return transitions are indexed by (lin*numStates+hier) — a
// table quadratic in the number of states — so they are stored densely only
// while numStates²·numSymbols stays at or below denseReturnLimit entries;
// above the threshold the defined transitions are kept in a key-sorted
// sparse table probed by binary search, and absent keys fall back to the
// dead state exactly as the dense form's prefilled entries do.

// Runner is the streaming face of a compiled query: one Step call per
// document event, with the symbol already interned to a compiled ID
// (SymID / docstream interning).  A Runner owns its stack of hierarchical
// data, so the caller only dispatches on the event kind.  Runners are not
// safe for concurrent use; create one per concurrent pass.
type Runner interface {
	// StepCall consumes an element-open event.
	StepCall(sym int)
	// StepInternal consumes a text event.
	StepInternal(sym int)
	// StepReturn consumes an element-close event.  On an empty stack the
	// event is a pending return: the hierarchical edge comes from −∞ and is
	// labelled with the initial state(s), as in Section 3.1.
	StepReturn(sym int)
	// Accepting reports whether the stream consumed so far, viewed as a
	// complete nested word, is accepted.
	Accepting() bool
	// Reset returns the runner to the start of a new document, keeping its
	// allocations.
	Reset()
}

// Query is what the engine registers: any compiled automaton — deterministic
// or nondeterministic — that can mint fresh runners over a fixed alphabet.
type Query interface {
	// Alphabet returns the alphabet the compiled symbol IDs refer to.
	Alphabet() *alphabet.Alphabet
	// NewRunner returns a fresh runner positioned at the document start.
	NewRunner() Runner
}

// denseReturnLimit is the largest dense return table Compile and CompileN
// will allocate, in entries (int32 each, so the default caps the table at
// 16 MiB).  Automata whose numStates²·(|Σ|+1) exceeds it get the sparse
// sorted-lookup form instead.  A variable rather than a constant so tests
// can force the sparse path on small automata.
var denseReturnLimit = 1 << 22

// sparseTable maps packed transition keys to targets via binary search over
// a sorted key slice — the compiled fallback for return tables too large to
// store densely.
type sparseTable struct {
	keys []uint64
	vals []int32
}

func (t *sparseTable) lookup(key uint64) (int32, bool) {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
	if i < len(t.keys) && t.keys[i] == key {
		return t.vals[i], true
	}
	return 0, false
}

// Compiled is an immutable compiled deterministic NWA.  It implements Query;
// its runners step with two or three indexed loads per event and no
// allocation beyond amortized stack growth.
type Compiled struct {
	alpha  *alphabet.Alphabet
	num    int // states, including the dead state
	syms   int // alphabet size + 1 (the out-of-alphabet column)
	start  int32
	dead   int32
	accept []bool

	callLin  []int32 // num*syms, dead-completed
	callHier []int32 // num*syms
	internT  []int32 // num*syms

	dense   bool
	returnT []int32     // dense form: num*num*syms, index (lin*num+hier)*syms+sym
	sparseR sparseTable // sparse form: defined return transitions only

	// fmtVersion is the container version this automaton was decoded from
	// (0 for a freshly compiled one).  Marshal re-emits it, so a decoded
	// container round-trips byte-identically across format versions.
	fmtVersion uint32
}

// Compile flattens a deterministic NWA into its compiled form.  The source
// automaton is not retained; compiled automata are immutable and safe for
// concurrent use.
func Compile(d *nwa.DNWA) *Compiled {
	alpha := d.Alphabet()
	num := d.NumStates()
	syms := alpha.Size() + 1
	c := &Compiled{
		alpha:  alpha,
		num:    num,
		syms:   syms,
		start:  int32(d.Start()),
		dead:   int32(d.Dead()),
		accept: make([]bool, num),
	}
	for q := 0; q < num; q++ {
		c.accept[q] = d.IsAccepting(q)
	}
	c.callLin = filled(num*syms, c.dead)
	c.callHier = filled(num*syms, c.dead)
	c.internT = filled(num*syms, c.dead)
	d.EachCall(func(state, sym, linear, hier int) {
		i := state*syms + sym
		c.callLin[i] = int32(linear)
		c.callHier[i] = int32(hier)
	})
	d.EachInternal(func(state, sym, to int) {
		c.internT[state*syms+sym] = int32(to)
	})
	if size := num * num * syms; size <= denseReturnLimit {
		c.dense = true
		c.returnT = filled(size, c.dead)
		d.EachReturn(func(lin, hier, sym, to int) {
			c.returnT[(lin*num+hier)*syms+sym] = int32(to)
		})
	} else {
		entries := make([]sparseEntry, 0, d.NumReturnTransitions())
		d.EachReturn(func(lin, hier, sym, to int) {
			entries = append(entries, sparseEntry{c.returnKey(int32(lin), int32(hier), sym), int32(to)})
		})
		c.sparseR = buildSparse(entries)
	}
	return c
}

type sparseEntry struct {
	key uint64
	val int32
}

func buildSparse(entries []sparseEntry) sparseTable {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	t := sparseTable{
		keys: make([]uint64, len(entries)),
		vals: make([]int32, len(entries)),
	}
	for i, e := range entries {
		t.keys[i] = e.key
		t.vals[i] = e.val
	}
	return t
}

func filled(n int, v int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func (c *Compiled) returnKey(lin, hier int32, sym int) uint64 {
	return uint64((int(lin)*c.num+int(hier))*c.syms + sym)
}

// Alphabet returns the alphabet the compiled symbol IDs refer to.
func (c *Compiled) Alphabet() *alphabet.Alphabet { return c.alpha }

// NumStates returns the number of states, including the dead state.
func (c *Compiled) NumStates() int { return c.num }

// Dense reports whether the return table is stored densely (it is sparse
// above the size threshold described in the package documentation).
func (c *Compiled) Dense() bool { return c.dense }

// OutOfAlphabet returns the dedicated symbol ID assigned to labels outside
// the alphabet; it equals Alphabet().Size().
func (c *Compiled) OutOfAlphabet() int { return c.syms - 1 }

// SymID interns a label: its alphabet index, or the out-of-alphabet ID.
func (c *Compiled) SymID(label string) int {
	if i, ok := c.alpha.Index(label); ok {
		return i
	}
	return c.syms - 1
}

// clampSym folds any ID outside the compiled range onto the out-of-alphabet
// column, so a Runner fed a stray ID behaves like one fed an unknown label.
func clampSym(sym, syms int) int {
	if uint(sym) >= uint(syms) {
		return syms - 1
	}
	return sym
}

func (c *Compiled) stepReturn(lin, hier int32, sym int) int32 {
	if c.dense {
		return c.returnT[(int(lin)*c.num+int(hier))*c.syms+sym]
	}
	if v, ok := c.sparseR.lookup(c.returnKey(lin, hier, sym)); ok {
		return v
	}
	return c.dead
}

// NewRunner returns a fresh deterministic runner.
func (c *Compiled) NewRunner() Runner {
	return &dnwaRunner{c: c, state: c.start}
}

// Accepts runs the compiled automaton over a nested word, interning each
// symbol on the fly.  It is the batch counterpart of NewRunner and agrees
// with the source DNWA's Accepts on every word.
func (c *Compiled) Accepts(n *nestedword.NestedWord) bool {
	r := c.NewRunner()
	return RunWord(r, c.alpha, n)
}

// dnwaRunner is the compiled deterministic runner: a linear state plus one
// hierarchical state per open element.  Every step is a slice load (or a
// binary search in the sparse form); nothing allocates once the stack has
// grown to the document depth.
type dnwaRunner struct {
	c     *Compiled
	state int32
	stack []int32
}

//nwvet:hotpath
func (r *dnwaRunner) StepCall(sym int) {
	c := r.c
	i := int(r.state)*c.syms + clampSym(sym, c.syms)
	r.stack = append(r.stack, c.callHier[i])
	r.state = c.callLin[i]
}

//nwvet:hotpath
func (r *dnwaRunner) StepInternal(sym int) {
	c := r.c
	r.state = c.internT[int(r.state)*c.syms+clampSym(sym, c.syms)]
}

//nwvet:hotpath
func (r *dnwaRunner) StepReturn(sym int) {
	hier := r.c.start
	if n := len(r.stack); n > 0 {
		hier = r.stack[n-1]
		r.stack = r.stack[:n-1]
	}
	r.state = r.c.stepReturn(r.state, hier, clampSym(sym, r.c.syms))
}

//nwvet:hotpath
func (r *dnwaRunner) Accepting() bool { return r.c.accept[r.state] }

func (r *dnwaRunner) Reset() {
	r.state = r.c.start
	r.stack = r.stack[:0]
}

// RunWord drives a runner over a whole nested word, interning every symbol
// against alpha, and reports acceptance.  The runner is reset first, so it
// can be reused across calls.
func RunWord(r Runner, alpha *alphabet.Alphabet, n *nestedword.NestedWord) bool {
	r.Reset()
	ooa := alpha.Size()
	for i := 0; i < n.Len(); i++ {
		sym, ok := alpha.Index(n.SymbolAt(i))
		if !ok {
			sym = ooa
		}
		switch n.KindAt(i) {
		case nestedword.Call:
			r.StepCall(sym)
		case nestedword.Return:
			r.StepReturn(sym)
		default:
			r.StepInternal(sym)
		}
	}
	return r.Accepting()
}
