package query

import (
	"math/rand"
	"testing"

	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// randomWords yields a mix of arbitrary nested words (with pending calls and
// returns) and well-matched documents, and reports how many were pending.
func randomWords(rng *rand.Rand, trials int, labels []string) ([]*nestedword.NestedWord, int) {
	words := make([]*nestedword.NestedWord, trials)
	pending := 0
	for i := range words {
		if i%3 == 0 {
			words[i] = generator.RandomDocument(rng, 2+rng.Intn(50), 6, labels)
		} else {
			words[i] = generator.RandomNestedWord(rng, rng.Intn(50), labels)
		}
		if !words[i].IsWellMatched() {
			pending++
		}
	}
	return words, pending
}

func randomNNWA(rng *rand.Rand, states int) *nwa.NNWA {
	a := nwa.NewNNWA(generator.AB, states)
	a.AddStart(rng.Intn(states))
	a.AddAccept(rng.Intn(states))
	edges := 4 + rng.Intn(6*states)
	for i := 0; i < edges; i++ {
		sym := []string{"a", "b"}[rng.Intn(2)]
		switch rng.Intn(3) {
		case 0:
			a.AddInternal(rng.Intn(states), sym, rng.Intn(states))
		case 1:
			a.AddCall(rng.Intn(states), sym, rng.Intn(states), rng.Intn(states))
		default:
			a.AddReturn(rng.Intn(states), rng.Intn(states), sym, rng.Intn(states))
		}
	}
	return a
}

// TestCompiledDNWADifferential checks that the compiled deterministic runner
// agrees with the source DNWA on random words, including words with pending
// calls and returns, for both the dense and the sparse return form.
func TestCompiledDNWADifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	alpha := generator.AB
	queries := []*nwa.DNWA{
		WellFormed(alpha),
		PathQuery(alpha, "a", "b"),
		LinearOrder(alpha, "a", "b", "a"),
		nwa.Intersect(WellFormed(alpha), ContainsLabel(alpha, "b")),
	}
	words, pending := randomWords(rng, 400, []string{"a", "b"})
	if pending == 0 {
		t.Fatal("no words with pending calls/returns were generated")
	}
	defer func(old int) { denseReturnLimit = old }(denseReturnLimit)
	for _, limit := range []int{denseReturnLimit, 1} {
		denseReturnLimit = limit
		for qi, d := range queries {
			c := Compile(d)
			if want := limit > 1; c.Dense() != want {
				t.Fatalf("limit %d: Dense() = %v, want %v", limit, c.Dense(), want)
			}
			r := c.NewRunner()
			for wi, w := range words {
				if got, want := RunWord(r, alpha, w), d.Accepts(w); got != want {
					t.Fatalf("query %d (dense=%v), word %d: compiled %v, DNWA %v on %v",
						qi, c.Dense(), wi, got, want, w)
				}
			}
		}
	}
}

// TestCompiledNNWADifferential is the ISSUE's differential criterion: 1200
// random nested words — including words with pending calls and returns — fed
// to the bitset state-set runner, the []bool matrix reference runner, and
// Determinize+DNWA, with identical verdicts required (and cross-checked
// against NNWA.Accepts).
func TestCompiledNNWADifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	labels := []string{"a", "b"}
	const automata = 8
	const wordsPer = 150 // 8 × 150 = 1200 words total
	totalPending := 0
	for ai := 0; ai < automata; ai++ {
		a := randomNNWA(rng, 2+rng.Intn(3))
		c := CompileN(a)
		det := Compile(a.Determinize())
		runner := c.NewRunner()
		matrix := c.NewReferenceRunner()
		detRunner := det.NewRunner()
		words, pending := randomWords(rng, wordsPer, labels)
		totalPending += pending
		for wi, w := range words {
			got := RunWord(runner, generator.AB, w)
			want := RunWord(detRunner, generator.AB, w)
			if got != want {
				t.Fatalf("automaton %d, word %d: bitset runner %v, Determinize+DNWA %v on %v",
					ai, wi, got, want, w)
			}
			if ref := RunWord(matrix, generator.AB, w); got != ref {
				t.Fatalf("automaton %d, word %d: bitset runner %v, matrix runner %v on %v",
					ai, wi, got, ref, w)
			}
			if ref := a.Accepts(w); got != ref {
				t.Fatalf("automaton %d, word %d: bitset runner %v, NNWA.Accepts %v on %v",
					ai, wi, got, ref, w)
			}
		}
	}
	if totalPending == 0 {
		t.Fatal("no words with pending calls/returns were generated")
	}
}

// TestBitsetRunnerEdgeWidths pins the bitset runner against the matrix
// reference on automata whose state counts straddle the 64-bit word
// boundaries of the packed rows: 1, 63, 64, 65, and 128 states.
func TestBitsetRunnerEdgeWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	labels := []string{"a", "b"}
	for _, states := range []int{1, 63, 64, 65, 128} {
		a := randomNNWA(rng, states)
		// Extra transitions so the larger automata keep non-trivial sets.
		for i := 0; i < 4*states; i++ {
			sym := []string{"a", "b"}[rng.Intn(2)]
			a.AddReturn(rng.Intn(states), rng.Intn(states), sym, rng.Intn(states))
			a.AddInternal(rng.Intn(states), sym, rng.Intn(states))
		}
		c := CompileN(a)
		bitsetRunner := c.NewRunner()
		matrix := c.NewReferenceRunner()
		words, _ := randomWords(rng, 80, labels)
		for wi, w := range words {
			got := RunWord(bitsetRunner, generator.AB, w)
			want := RunWord(matrix, generator.AB, w)
			if got != want {
				t.Fatalf("states %d, word %d: bitset %v, matrix %v on %v", states, wi, got, want, w)
			}
		}
	}
}

// TestMatrixRunnerFlag checks the unexported differential-testing flag: with
// useMatrixRunner set, NewRunner (and therefore the whole engine/serve
// stack) runs on the []bool reference implementation, and both settings
// agree on every verdict.
func TestMatrixRunnerFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	a := randomNNWA(rng, 5)
	c := CompileN(a)
	defer func() { useMatrixRunner = false }()
	useMatrixRunner = true
	if _, ok := c.NewRunner().(*nnwaMatrixRunner); !ok {
		t.Fatal("useMatrixRunner should route NewRunner to the matrix implementation")
	}
	flagged := c.NewRunner()
	useMatrixRunner = false
	if _, ok := c.NewRunner().(*nnwaBitsetRunner); !ok {
		t.Fatal("NewRunner should default to the bitset implementation")
	}
	plain := c.NewRunner()
	words, _ := randomWords(rng, 120, []string{"a", "b"})
	for wi, w := range words {
		if got, want := RunWord(plain, generator.AB, w), RunWord(flagged, generator.AB, w); got != want {
			t.Fatalf("word %d: bitset %v, flagged matrix %v on %v", wi, got, want, w)
		}
	}
}

// TestCompiledNNWASparseMatchesDense forces the sparse return form on the
// nondeterministic side and checks it against the dense form.
func TestCompiledNNWASparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	labels := []string{"a", "b"}
	defer func(old int) { denseReturnLimit = old }(denseReturnLimit)
	for ai := 0; ai < 5; ai++ {
		a := randomNNWA(rng, 3)
		dense := CompileN(a)
		denseReturnLimit = 1
		sparse := CompileN(a)
		denseReturnLimit = 1 << 22
		if dense.Dense() == sparse.Dense() {
			t.Fatalf("expected one dense and one sparse compilation, got %v and %v",
				dense.Dense(), sparse.Dense())
		}
		words, _ := randomWords(rng, 100, labels)
		for wi, w := range words {
			if d, s := dense.Accepts(w), sparse.Accepts(w); d != s {
				t.Fatalf("automaton %d, word %d: dense %v, sparse %v", ai, wi, d, s)
			}
		}
	}
}

// TestRunnerOutOfAlphabet checks that the dedicated out-of-alphabet symbol
// ID behaves exactly like an unknown label on the source automaton: the
// deterministic runner drops to the dead state, the nondeterministic one to
// the empty set.
func TestRunnerOutOfAlphabet(t *testing.T) {
	alpha := generator.AB
	d := WellFormed(alpha)
	c := Compile(d)
	if c.OutOfAlphabet() != alpha.Size() {
		t.Fatalf("OutOfAlphabet() = %d, want %d", c.OutOfAlphabet(), alpha.Size())
	}
	if c.SymID("zzz") != c.OutOfAlphabet() {
		t.Fatalf("SymID of an unknown label should be the out-of-alphabet ID")
	}
	r := c.NewRunner()
	r.Reset()
	r.StepInternal(c.OutOfAlphabet())
	if r.Accepting() {
		t.Fatal("deterministic runner should be dead after an out-of-alphabet event")
	}
	// Stray IDs outside the compiled range clamp onto the same column.
	r.Reset()
	r.StepInternal(-7)
	if r.Accepting() {
		t.Fatal("negative symbol IDs should clamp to out-of-alphabet")
	}

	n := CompileN(WellFormed(alpha).ToNondeterministic())
	rn := n.NewRunner()
	rn.StepCall(n.OutOfAlphabet())
	rn.StepReturn(0)
	if rn.Accepting() {
		t.Fatal("nondeterministic runner should be empty after an out-of-alphabet call")
	}
}

// TestCompiledRunnerReset checks that runners are reusable across documents.
func TestCompiledRunnerReset(t *testing.T) {
	alpha := generator.AB
	c := Compile(PathQuery(alpha, "a", "b"))
	r := c.NewRunner()
	inside := nestedword.MustParse("<a <b b> a>")
	outside := nestedword.MustParse("<b <a a> b>")
	for i := 0; i < 3; i++ {
		if !RunWord(r, alpha, inside) {
			t.Fatalf("pass %d: //a//b should accept %v", i, inside)
		}
		if RunWord(r, alpha, outside) {
			t.Fatalf("pass %d: //a//b should reject %v", i, outside)
		}
	}
}
