package query

import (
	"sort"

	"repro/internal/alphabet"
	"repro/internal/bitset"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// CompiledN is an immutable compiled nondeterministic NWA.  Its transition
// relations are stored twice, for two different access patterns:
//
//   - prefix-offset adjacency (CSR) tables indexed by state*numSymbols+sym —
//     the relational analogue of the Compiled dense slices, with the
//     quadratic return index subject to the same dense/sparse threshold —
//     used wherever individual successors must be enumerated (the return
//     stitch, the reference runner);
//   - per-symbol successor bitmasks: for every (sym, state) pair one
//     bitset row of ⌈num/64⌉ uint64 words holding the internal successors
//     (intMask) and the linear call successors (callMask), so advancing a
//     whole state set through a symbol is a word-parallel Gather instead of
//     a per-successor branch.
//
// CompiledN implements Query, so the engine fans its runners out next to
// deterministic ones; the runners simulate the automaton on line with the
// subset-of-pairs construction of Section 3.2, keeping one summary set per
// stack frame.  NewRunner returns the bitset runner; the older []bool
// matrix runner is kept behind NewReferenceRunner (and the package-level
// useMatrixRunner flag) as the differential-testing oracle and the E24
// baseline.
type CompiledN struct {
	alpha  *alphabet.Alphabet
	num    int
	syms   int // alphabet size + 1 (the out-of-alphabet column)
	starts []int32
	accept []bool

	// Call and internal adjacency, indexed q*syms+sym.
	callOff  []int32
	callLin  []int32
	callHier []int32
	intOff   []int32
	intTo    []int32

	// Return adjacency over the quadratic index (lin*num+hier)*syms+sym:
	// dense prefix offsets below the threshold, sorted key spans above it.
	dense   bool
	retOff  []int32
	retTo   []int32
	retKeys []uint64 // sparse: sorted packed keys
	retSpan []int32  // sparse: len(retKeys)+1 prefix offsets into retTo

	// Bitset layout: w words per row; per-symbol successor masks are flat
	// num-row tables sliced at (sym*num+q)*w, so one symbol's table is
	// contiguous and Gather walks it in order.
	w         int
	startRow  bitset.Row
	acceptRow bitset.Row
	intMask   []uint64 // syms*num rows: internal successors of q on sym
	callMask  []uint64 // syms*num rows: linear call successors of q on sym

	// fmtVersion is the container version this automaton was decoded from
	// (0 for a freshly compiled one); Marshal re-emits it.
	fmtVersion uint32
}

// useMatrixRunner routes NewRunner to the []bool matrix runner instead of
// the bitset runner.  Unexported and toggled only by this package's own
// sequential tests (it is a plain global, so it must never be flipped while
// runners are being minted concurrently): it pins the routing that every
// NewRunner caller — engine sessions and serve pools included — would take
// if the reference implementation had to be swapped back in.  Callers that
// explicitly want the baseline use NewReferenceRunner instead.
var useMatrixRunner = false

// CompileN flattens a nondeterministic NWA into its compiled form.  Like
// Compile, the result is immutable and safe for concurrent use.
func CompileN(n *nwa.NNWA) *CompiledN {
	alpha := n.Alphabet()
	num := n.NumStates()
	syms := alpha.Size() + 1
	c := &CompiledN{
		alpha:  alpha,
		num:    num,
		syms:   syms,
		accept: make([]bool, num),
	}
	for _, q := range n.StartStates() {
		c.starts = append(c.starts, int32(q))
	}
	for q := 0; q < num; q++ {
		c.accept[q] = n.IsAccepting(q)
	}

	// Call adjacency.
	callCount := make([]int32, num*syms)
	n.EachCall(func(state, sym, _, _ int) { callCount[state*syms+sym]++ })
	c.callOff = prefixSums(callCount)
	c.callLin = make([]int32, c.callOff[len(c.callOff)-1])
	c.callHier = make([]int32, len(c.callLin))
	fill := make([]int32, num*syms)
	n.EachCall(func(state, sym, linear, hier int) {
		i := state*syms + sym
		at := c.callOff[i] + fill[i]
		fill[i]++
		c.callLin[at] = int32(linear)
		c.callHier[at] = int32(hier)
	})

	// Internal adjacency.
	intCount := make([]int32, num*syms)
	n.EachInternal(func(state, sym, _ int) { intCount[state*syms+sym]++ })
	c.intOff = prefixSums(intCount)
	c.intTo = make([]int32, c.intOff[len(c.intOff)-1])
	for i := range fill {
		fill[i] = 0
	}
	n.EachInternal(func(state, sym, to int) {
		i := state*syms + sym
		c.intTo[c.intOff[i]+fill[i]] = int32(to)
		fill[i]++
	})

	// Return adjacency.
	if size := num * num * syms; size <= denseReturnLimit {
		c.dense = true
		retCount := make([]int32, size)
		n.EachReturn(func(lin, hier, sym, _ int) {
			retCount[(lin*num+hier)*syms+sym]++
		})
		c.retOff = prefixSums(retCount)
		c.retTo = make([]int32, c.retOff[len(c.retOff)-1])
		retFill := make([]int32, size)
		n.EachReturn(func(lin, hier, sym, to int) {
			i := (lin*num+hier)*syms + sym
			c.retTo[c.retOff[i]+retFill[i]] = int32(to)
			retFill[i]++
		})
	} else {
		entries := make([]sparseEntry, 0, n.NumReturnTransitions())
		n.EachReturn(func(lin, hier, sym, to int) {
			key := uint64((lin*num+hier)*syms + sym)
			entries = append(entries, sparseEntry{key, int32(to)})
		})
		c.retKeys, c.retSpan, c.retTo = buildReturnSpans(entries)
	}

	// Per-symbol successor bitmasks, precomputed once so every runner's
	// internal and call steps are pure Gather sweeps.
	c.w = bitset.Words(num)
	c.startRow = packStateRow(num, c.starts)
	c.acceptRow = packAcceptRow(c.accept)
	c.intMask = make([]uint64, syms*num*c.w)
	c.callMask = make([]uint64, syms*num*c.w)
	n.EachInternal(func(state, sym, to int) {
		c.maskRow(c.intMask, sym, state).Set(to)
	})
	n.EachCall(func(state, sym, linear, _ int) {
		c.maskRow(c.callMask, sym, state).Set(linear)
	})
	return c
}

// maskRow slices one state's successor row out of a per-symbol mask table.
func (c *CompiledN) maskRow(table []uint64, sym, q int) bitset.Row {
	return bitset.Slab(table, sym*c.num+q, c.w)
}

// symTable slices one symbol's whole num-row mask table, in the flat layout
// bitset.Gather expects.
func (c *CompiledN) symTable(table []uint64, sym int) []uint64 {
	return table[sym*c.num*c.w : (sym+1)*c.num*c.w]
}

func prefixSums(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}

// buildReturnSpans sorts sparse return entries and packs them into the
// deduplicated keys / prefix-span / targets triple of the CompiledN sparse
// form.  Shared by CompileN and the product union builder.
func buildReturnSpans(entries []sparseEntry) (keys []uint64, span, to []int32) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	to = make([]int32, len(entries))
	for i, e := range entries {
		if len(keys) == 0 || keys[len(keys)-1] != e.key {
			keys = append(keys, e.key)
			span = append(span, int32(i))
		}
		to[i] = e.val
	}
	span = append(span, int32(len(entries)))
	return keys, span, to
}

// packStateRow packs a list of state IDs into a fresh bitset row over num
// states — the start-row construction shared by CompileN, the serialized
// decode path, and the product union builder.
func packStateRow(num int, states []int32) bitset.Row {
	r := bitset.New(num)
	for _, q := range states {
		r.Set(int(q))
	}
	return r
}

// packAcceptRow packs a []bool accept vector into a fresh bitset row — the
// accept-row construction shared with packStateRow's call sites.
func packAcceptRow(accept []bool) bitset.Row {
	r := bitset.New(len(accept))
	for q, ok := range accept {
		if ok {
			r.Set(q)
		}
	}
	return r
}

// eachReturn enumerates every return transition with its target — the
// relational analogue of EachReturn on the source automaton, reconstructed
// from whichever adjacency form the table is stored in.  The product union
// builder re-keys these edges into the concatenated state space.
func (c *CompiledN) eachReturn(f func(lin, hier int32, sym int, to int32)) {
	if c.dense {
		for idx := 0; idx < c.num*c.num*c.syms; idx++ {
			for _, to := range c.retTo[c.retOff[idx]:c.retOff[idx+1]] {
				rest := idx / c.syms
				f(int32(rest/c.num), int32(rest%c.num), idx%c.syms, to)
			}
		}
		return
	}
	for i, key := range c.retKeys {
		idx := int(key)
		rest := idx / c.syms
		for _, to := range c.retTo[c.retSpan[i]:c.retSpan[i+1]] {
			f(int32(rest/c.num), int32(rest%c.num), idx%c.syms, to)
		}
	}
}

// Alphabet returns the alphabet the compiled symbol IDs refer to.
func (c *CompiledN) Alphabet() *alphabet.Alphabet { return c.alpha }

// NumStates returns the number of states.
func (c *CompiledN) NumStates() int { return c.num }

// Dense reports whether the return adjacency is indexed densely.
func (c *CompiledN) Dense() bool { return c.dense }

// OutOfAlphabet returns the dedicated out-of-alphabet symbol ID.
func (c *CompiledN) OutOfAlphabet() int { return c.syms - 1 }

func (c *CompiledN) callSucc(q, sym int) (lin, hier []int32) {
	i := q*c.syms + sym
	return c.callLin[c.callOff[i]:c.callOff[i+1]], c.callHier[c.callOff[i]:c.callOff[i+1]]
}

func (c *CompiledN) internalSucc(q, sym int) []int32 {
	i := q*c.syms + sym
	return c.intTo[c.intOff[i]:c.intOff[i+1]]
}

func (c *CompiledN) returnSucc(lin, hier int32, sym int) []int32 {
	idx := (int(lin)*c.num+int(hier))*c.syms + sym
	if c.dense {
		return c.retTo[c.retOff[idx]:c.retOff[idx+1]]
	}
	key := uint64(idx)
	i := sort.Search(len(c.retKeys), func(i int) bool { return c.retKeys[i] >= key })
	if i < len(c.retKeys) && c.retKeys[i] == key {
		return c.retTo[c.retSpan[i]:c.retSpan[i+1]]
	}
	return nil
}

// NewRunner returns a fresh nondeterministic state-set runner — the bitset
// implementation, unless the package-internal differential-testing flag
// redirects to the reference matrix runner.
func (c *CompiledN) NewRunner() Runner {
	if useMatrixRunner {
		return c.NewReferenceRunner()
	}
	return c.newBitsetRunner()
}

// newBitsetRunner mints the concrete bitset runner; split from NewRunner so
// the product layer's joint runner can hold it without the interface hop.
func (c *CompiledN) newBitsetRunner() *nnwaBitsetRunner {
	r := &nnwaBitsetRunner{c: c, w: c.w}
	r.S = make([]uint64, c.num*c.w)
	r.R = bitset.New(c.num)
	r.T = make([]uint64, c.num*c.w)
	r.sel = bitset.New(c.num)
	r.Reset()
	return r
}

// NewReferenceRunner returns the []bool matrix implementation of the
// state-set runner.  It computes exactly the same summary and reachable
// sets as NewRunner one boolean at a time; it exists as the oracle for the
// differential tests and fuzz targets and as the baseline side of
// experiment E24, not for production use.
func (c *CompiledN) NewReferenceRunner() Runner {
	r := &nnwaMatrixRunner{c: c}
	r.S = make([]bool, c.num*c.num)
	r.R = make([]bool, c.num)
	r.Reset()
	return r
}

// Accepts runs the compiled automaton over a nested word, interning each
// symbol on the fly; it agrees with the source NNWA's Accepts.
func (c *CompiledN) Accepts(n *nestedword.NestedWord) bool {
	return RunWord(c.NewRunner(), c.alpha, n)
}

// --- bitset state-set runner -------------------------------------------
//
// The runner keeps the Section 3.2 subset-of-pairs simulation in packed
// rows: S is num rows of w = ⌈num/64⌉ uint64 words (row `from` holding the
// set of states q′ with a summary run from → q′ since the innermost pending
// call) and R is one w-word row (the states reachable from a start state
// over the whole prefix).  Each step is then a composition
//
//	S′[from] = ⋃_{mid ∈ S[from]} rows[mid]
//
// where rows is a precomputed per-symbol mask table (internal step) or a
// per-event table T stitched from the call/return adjacency (return step) —
// one bitset.Gather per live row, 64 states per OR.

// nnwaBitsetFrame is what the runner keeps per open element: the packed
// summary and reachable sets as they stood just before the call, plus the
// call symbol — the data the subset-of-pairs determinization propagates
// along a hierarchical edge.
type nnwaBitsetFrame struct {
	S   []uint64   // num rows × w words of summary pairs
	R   bitset.Row // reachable set
	sym int        // interned call symbol
}

// nnwaBitsetRunner is the production nondeterministic runner.  Memory is
// O(num·⌈num/64⌉ words · depth) — 64× fewer bits than the matrix form's
// num² bools per frame — and popped frames are recycled through a free
// list, so steady-state streaming does not allocate per element.
type nnwaBitsetRunner struct {
	c     *CompiledN
	w     int
	S     []uint64
	R     bitset.Row
	T     []uint64   // scratch: per-mid composed rows for the return stitch
	sel   bitset.Row // scratch: union of live mids for the return stitch
	stack []nnwaBitsetFrame
	free  []nnwaBitsetFrame
}

// fresh returns zeroed S and R buffers, reusing a recycled frame when one
// is available.
func (r *nnwaBitsetRunner) fresh() ([]uint64, bitset.Row) {
	if n := len(r.free); n > 0 {
		f := r.free[n-1]
		r.free = r.free[:n-1]
		clearWords(f.S)
		f.R.Zero()
		return f.S, f.R
	}
	return make([]uint64, r.c.num*r.w), bitset.New(r.c.num)
}

func (r *nnwaBitsetRunner) recycle(S []uint64, R bitset.Row) {
	r.free = append(r.free, nnwaBitsetFrame{S: S, R: R})
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// row slices row i of a num×w matrix.
func (r *nnwaBitsetRunner) row(m []uint64, i int) bitset.Row {
	return bitset.Slab(m, i, r.w)
}

// compose sets dst[from] = ⋃_{mid ∈ src[from]} rows[mid] for every from,
// skipping empty source rows.
func (r *nnwaBitsetRunner) compose(dst, src, rows []uint64) {
	for from := 0; from < r.c.num; from++ {
		srow := r.row(src, from)
		if !srow.Any() {
			continue
		}
		bitset.Gather(r.row(dst, from), srow, rows, r.w)
	}
}

//nwvet:hotpath
func (r *nnwaBitsetRunner) StepCall(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	below := nnwaBitsetFrame{S: r.S, R: r.R, sym: sym}
	r.stack = append(r.stack, below)
	S, R := r.fresh()
	// A new context opens: the summary resets to the identity and the
	// reachable set advances through the linear call successors.
	for q := 0; q < c.num; q++ {
		r.row(S, q).Set(q)
	}
	bitset.Gather(R, below.R, c.symTable(c.callMask, sym), r.w)
	r.S, r.R = S, R
}

//nwvet:hotpath
func (r *nnwaBitsetRunner) StepInternal(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	S, R := r.fresh()
	table := c.symTable(c.intMask, sym)
	r.compose(S, r.S, table)
	bitset.Gather(R, r.R, table, r.w)
	r.recycle(r.S, r.R)
	r.S, r.R = S, R
}

// stitch fills the scratch table T with the per-mid return rows for this
// event: T[mid] is the set of states some run reaches after the return when
// the pre-call stretch ended in mid.  Only the mids live in sel (the union
// of the source rows and reachable set) are built.  For a matched return
// the row composes call edge, inner summary, and return edge; for a pending
// return the hierarchical edge is labelled with the initial states, as in
// Section 3.1.
func (r *nnwaBitsetRunner) stitch(sel bitset.Row, matched bool, callSym, sym int) {
	c := r.c
	clearWords(r.T)
	for mid := sel.NextSet(0); mid >= 0; mid = sel.NextSet(mid + 1) {
		trow := r.row(r.T, mid)
		if matched {
			lins, hiers := c.callSucc(mid, callSym)
			for i, lin := range lins {
				hier := hiers[i]
				inner := r.row(r.S, int(lin))
				for to2 := inner.NextSet(0); to2 >= 0; to2 = inner.NextSet(to2 + 1) {
					for _, to := range c.returnSucc(int32(to2), hier, sym) {
						trow.Set(int(to))
					}
				}
			}
		} else {
			for _, q0 := range c.starts {
				for _, to := range c.returnSucc(int32(mid), q0, sym) {
					trow.Set(int(to))
				}
			}
		}
	}
}

//nwvet:hotpath
func (r *nnwaBitsetRunner) StepReturn(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	S, R := r.fresh()
	if n := len(r.stack); n == 0 {
		// Pending return: stitch from the current sets directly.
		r.liveMids(r.S, r.R)
		r.stitch(r.sel, false, 0, sym)
		r.compose(S, r.S, r.T)
		bitset.Gather(R, r.R, r.T, r.w)
	} else {
		below := r.stack[n-1]
		r.stack = r.stack[:n-1]
		// Matched return: stitch the context below the call to the summary
		// inside it through the call and return relations, then compose the
		// frame's sets through the stitched rows.
		r.liveMids(below.S, below.R)
		r.stitch(r.sel, true, below.sym, sym)
		r.compose(S, below.S, r.T)
		bitset.Gather(R, below.R, r.T, r.w)
		r.recycle(below.S, below.R)
	}
	r.recycle(r.S, r.R)
	r.S, r.R = S, R
}

// liveMids collects into sel the union of every row of S plus R — the mids
// the return stitch can actually reach, so stitch skips dead states.
func (r *nnwaBitsetRunner) liveMids(S []uint64, R bitset.Row) {
	r.sel.Zero()
	for q := 0; q < r.c.num; q++ {
		r.sel.Or(r.row(S, q))
	}
	r.sel.Or(R)
}

//nwvet:hotpath
func (r *nnwaBitsetRunner) Accepting() bool {
	return r.R.Intersects(r.c.acceptRow)
}

func (r *nnwaBitsetRunner) Reset() {
	for n := len(r.stack); n > 0; n = len(r.stack) {
		f := r.stack[n-1]
		r.stack = r.stack[:n-1]
		r.recycle(f.S, f.R)
	}
	clearWords(r.S)
	r.R.Zero()
	for q := 0; q < r.c.num; q++ {
		r.row(r.S, q).Set(q)
	}
	r.R.Or(r.c.startRow)
}

// --- reference []bool matrix runner ------------------------------------

// nnwaMatrixFrame is the matrix runner's per-open-element snapshot: the
// summary and reachable sets as they stood just before the call, plus the
// call symbol.
type nnwaMatrixFrame struct {
	S   []bool // num×num summary pairs
	R   []bool // reachable set
	sym int    // interned call symbol
}

// nnwaMatrixRunner simulates a nondeterministic NWA on line with unpacked
// []bool sets.  S holds the summary pairs (q, q′) — some run moves the
// automaton from q to q′ across the stretch since the innermost pending
// call — and R the states reachable from an initial state over the whole
// prefix; each stack frame snapshots both sets at its call.  The memory is
// O(numStates² · depth), still bounded by the document depth, and popped
// frames are recycled through a free list.  It is the reference
// implementation the bitset runner is differentially tested against.
type nnwaMatrixRunner struct {
	c     *CompiledN
	S     []bool
	R     []bool
	stack []nnwaMatrixFrame
	free  []nnwaMatrixFrame
}

// fresh returns zeroed S and R buffers, reusing a recycled frame when one is
// available.
func (r *nnwaMatrixRunner) fresh() ([]bool, []bool) {
	if n := len(r.free); n > 0 {
		f := r.free[n-1]
		r.free = r.free[:n-1]
		clearBools(f.S)
		clearBools(f.R)
		return f.S, f.R
	}
	return make([]bool, r.c.num*r.c.num), make([]bool, r.c.num)
}

func (r *nnwaMatrixRunner) recycle(S, R []bool) {
	r.free = append(r.free, nnwaMatrixFrame{S: S, R: R})
}

func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

func (r *nnwaMatrixRunner) StepCall(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	below := nnwaMatrixFrame{S: r.S, R: r.R, sym: sym}
	r.stack = append(r.stack, below)
	S, R := r.fresh()
	// A new context opens: the summary resets to the identity and the
	// reachable set advances through the linear call successors.
	for q := 0; q < c.num; q++ {
		S[q*c.num+q] = true
	}
	for q := 0; q < c.num; q++ {
		if !below.R[q] {
			continue
		}
		lins, _ := c.callSucc(q, sym)
		for _, lin := range lins {
			R[lin] = true
		}
	}
	r.S, r.R = S, R
}

func (r *nnwaMatrixRunner) StepInternal(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	S, R := r.fresh()
	num := c.num
	for from := 0; from < num; from++ {
		row := r.S[from*num : (from+1)*num]
		for mid, ok := range row {
			if !ok {
				continue
			}
			for _, to := range c.internalSucc(mid, sym) {
				S[from*num+int(to)] = true
			}
		}
	}
	for q := 0; q < num; q++ {
		if !r.R[q] {
			continue
		}
		for _, to := range c.internalSucc(q, sym) {
			R[to] = true
		}
	}
	r.recycle(r.S, r.R)
	r.S, r.R = S, R
}

func (r *nnwaMatrixRunner) StepReturn(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	num := c.num
	S, R := r.fresh()
	if n := len(r.stack); n == 0 {
		// Pending return: the hierarchical edge is labelled with an initial
		// state.
		for from := 0; from < num; from++ {
			row := r.S[from*num : (from+1)*num]
			for mid, ok := range row {
				if !ok {
					continue
				}
				for _, q0 := range c.starts {
					for _, to := range c.returnSucc(int32(mid), q0, sym) {
						S[from*num+int(to)] = true
					}
				}
			}
		}
		for q := 0; q < num; q++ {
			if !r.R[q] {
				continue
			}
			for _, q0 := range c.starts {
				for _, to := range c.returnSucc(int32(q), q0, sym) {
					R[to] = true
				}
			}
		}
	} else {
		below := r.stack[n-1]
		r.stack = r.stack[:n-1]
		// Matched return: stitch the context below the call to the summary
		// inside it through the call and return relations.
		for from := 0; from < num; from++ {
			row := below.S[from*num : (from+1)*num]
			for mid, ok := range row {
				if !ok {
					continue
				}
				lins, hiers := c.callSucc(mid, below.sym)
				for i, lin := range lins {
					inner := r.S[int(lin)*num : (int(lin)+1)*num]
					for to2, ok2 := range inner {
						if !ok2 {
							continue
						}
						for _, to := range c.returnSucc(int32(to2), hiers[i], sym) {
							S[from*num+int(to)] = true
						}
					}
				}
			}
		}
		for q := 0; q < num; q++ {
			if !below.R[q] {
				continue
			}
			lins, hiers := c.callSucc(q, below.sym)
			for i, lin := range lins {
				inner := r.S[int(lin)*num : (int(lin)+1)*num]
				for to2, ok2 := range inner {
					if !ok2 {
						continue
					}
					for _, to := range c.returnSucc(int32(to2), hiers[i], sym) {
						R[to] = true
					}
				}
			}
		}
		r.recycle(below.S, below.R)
	}
	r.recycle(r.S, r.R)
	r.S, r.R = S, R
}

func (r *nnwaMatrixRunner) Accepting() bool {
	for q := 0; q < r.c.num; q++ {
		if r.R[q] && r.c.accept[q] {
			return true
		}
	}
	return false
}

func (r *nnwaMatrixRunner) Reset() {
	for n := len(r.stack); n > 0; n = len(r.stack) {
		f := r.stack[n-1]
		r.stack = r.stack[:n-1]
		r.recycle(f.S, f.R)
	}
	clearBools(r.S)
	clearBools(r.R)
	for q := 0; q < r.c.num; q++ {
		r.S[q*r.c.num+q] = true
	}
	for _, q := range r.c.starts {
		r.R[q] = true
	}
}
