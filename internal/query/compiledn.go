package query

import (
	"sort"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// CompiledN is an immutable compiled nondeterministic NWA.  Its transition
// relations are stored as prefix-offset adjacency (CSR) tables indexed by
// state*numSymbols+sym — the relational analogue of the Compiled dense
// slices — with the quadratic return index subject to the same dense/sparse
// threshold.  CompiledN implements Query, so the engine fans its runners out
// next to deterministic ones; the runners simulate the automaton on line
// with the subset-of-pairs construction of Section 3.2, keeping one summary
// set per stack frame.
type CompiledN struct {
	alpha  *alphabet.Alphabet
	num    int
	syms   int // alphabet size + 1 (the out-of-alphabet column)
	starts []int32
	accept []bool

	// Call and internal adjacency, indexed q*syms+sym.
	callOff  []int32
	callLin  []int32
	callHier []int32
	intOff   []int32
	intTo    []int32

	// Return adjacency over the quadratic index (lin*num+hier)*syms+sym:
	// dense prefix offsets below the threshold, sorted key spans above it.
	dense   bool
	retOff  []int32
	retTo   []int32
	retKeys []uint64 // sparse: sorted packed keys
	retSpan []int32  // sparse: len(retKeys)+1 prefix offsets into retTo
}

// CompileN flattens a nondeterministic NWA into its compiled form.  Like
// Compile, the result is immutable and safe for concurrent use.
func CompileN(n *nwa.NNWA) *CompiledN {
	alpha := n.Alphabet()
	num := n.NumStates()
	syms := alpha.Size() + 1
	c := &CompiledN{
		alpha:  alpha,
		num:    num,
		syms:   syms,
		accept: make([]bool, num),
	}
	for _, q := range n.StartStates() {
		c.starts = append(c.starts, int32(q))
	}
	for q := 0; q < num; q++ {
		c.accept[q] = n.IsAccepting(q)
	}

	// Call adjacency.
	callCount := make([]int32, num*syms)
	n.EachCall(func(state, sym, _, _ int) { callCount[state*syms+sym]++ })
	c.callOff = prefixSums(callCount)
	c.callLin = make([]int32, c.callOff[len(c.callOff)-1])
	c.callHier = make([]int32, len(c.callLin))
	fill := make([]int32, num*syms)
	n.EachCall(func(state, sym, linear, hier int) {
		i := state*syms + sym
		at := c.callOff[i] + fill[i]
		fill[i]++
		c.callLin[at] = int32(linear)
		c.callHier[at] = int32(hier)
	})

	// Internal adjacency.
	intCount := make([]int32, num*syms)
	n.EachInternal(func(state, sym, _ int) { intCount[state*syms+sym]++ })
	c.intOff = prefixSums(intCount)
	c.intTo = make([]int32, c.intOff[len(c.intOff)-1])
	for i := range fill {
		fill[i] = 0
	}
	n.EachInternal(func(state, sym, to int) {
		i := state*syms + sym
		c.intTo[c.intOff[i]+fill[i]] = int32(to)
		fill[i]++
	})

	// Return adjacency.
	if size := num * num * syms; size <= denseReturnLimit {
		c.dense = true
		retCount := make([]int32, size)
		n.EachReturn(func(lin, hier, sym, _ int) {
			retCount[(lin*num+hier)*syms+sym]++
		})
		c.retOff = prefixSums(retCount)
		c.retTo = make([]int32, c.retOff[len(c.retOff)-1])
		retFill := make([]int32, size)
		n.EachReturn(func(lin, hier, sym, to int) {
			i := (lin*num+hier)*syms + sym
			c.retTo[c.retOff[i]+retFill[i]] = int32(to)
			retFill[i]++
		})
	} else {
		entries := make([]sparseEntry, 0, n.NumReturnTransitions())
		n.EachReturn(func(lin, hier, sym, to int) {
			key := uint64((lin*num+hier)*syms + sym)
			entries = append(entries, sparseEntry{key, int32(to)})
		})
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
		c.retTo = make([]int32, len(entries))
		for i, e := range entries {
			if len(c.retKeys) == 0 || c.retKeys[len(c.retKeys)-1] != e.key {
				c.retKeys = append(c.retKeys, e.key)
				c.retSpan = append(c.retSpan, int32(i))
			}
			c.retTo[i] = e.val
		}
		c.retSpan = append(c.retSpan, int32(len(entries)))
	}
	return c
}

func prefixSums(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}

// Alphabet returns the alphabet the compiled symbol IDs refer to.
func (c *CompiledN) Alphabet() *alphabet.Alphabet { return c.alpha }

// NumStates returns the number of states.
func (c *CompiledN) NumStates() int { return c.num }

// Dense reports whether the return adjacency is indexed densely.
func (c *CompiledN) Dense() bool { return c.dense }

// OutOfAlphabet returns the dedicated out-of-alphabet symbol ID.
func (c *CompiledN) OutOfAlphabet() int { return c.syms - 1 }

func (c *CompiledN) callSucc(q, sym int) (lin, hier []int32) {
	i := q*c.syms + sym
	return c.callLin[c.callOff[i]:c.callOff[i+1]], c.callHier[c.callOff[i]:c.callOff[i+1]]
}

func (c *CompiledN) internalSucc(q, sym int) []int32 {
	i := q*c.syms + sym
	return c.intTo[c.intOff[i]:c.intOff[i+1]]
}

func (c *CompiledN) returnSucc(lin, hier int32, sym int) []int32 {
	idx := (int(lin)*c.num+int(hier))*c.syms + sym
	if c.dense {
		return c.retTo[c.retOff[idx]:c.retOff[idx+1]]
	}
	key := uint64(idx)
	i := sort.Search(len(c.retKeys), func(i int) bool { return c.retKeys[i] >= key })
	if i < len(c.retKeys) && c.retKeys[i] == key {
		return c.retTo[c.retSpan[i]:c.retSpan[i+1]]
	}
	return nil
}

// NewRunner returns a fresh nondeterministic state-set runner.
func (c *CompiledN) NewRunner() Runner {
	r := &nnwaRunner{c: c}
	r.S = make([]bool, c.num*c.num)
	r.R = make([]bool, c.num)
	r.Reset()
	return r
}

// Accepts runs the compiled automaton over a nested word, interning each
// symbol on the fly; it agrees with the source NNWA's Accepts.
func (c *CompiledN) Accepts(n *nestedword.NestedWord) bool {
	return RunWord(c.NewRunner(), c.alpha, n)
}

// nnwaFrame is what the state-set runner keeps per open element: the summary
// and reachable sets as they stood just before the call, plus the call
// symbol — exactly the data the subset-of-pairs determinization propagates
// along a hierarchical edge.
type nnwaFrame struct {
	S   []bool // num×num summary pairs
	R   []bool // reachable set
	sym int    // interned call symbol
}

// nnwaRunner simulates a nondeterministic NWA on line.  S holds the summary
// pairs (q, q′) — some run moves the automaton from q to q′ across the
// stretch since the innermost pending call — and R the states reachable from
// an initial state over the whole prefix; each stack frame snapshots both
// sets at its call.  The memory is O(numStates² · depth), still bounded by
// the document depth, and popped frames are recycled through a free list so
// steady-state streaming does not allocate per element.
type nnwaRunner struct {
	c     *CompiledN
	S     []bool
	R     []bool
	stack []nnwaFrame
	free  []nnwaFrame
}

// fresh returns zeroed S and R buffers, reusing a recycled frame when one is
// available.
func (r *nnwaRunner) fresh() ([]bool, []bool) {
	if n := len(r.free); n > 0 {
		f := r.free[n-1]
		r.free = r.free[:n-1]
		clearBools(f.S)
		clearBools(f.R)
		return f.S, f.R
	}
	return make([]bool, r.c.num*r.c.num), make([]bool, r.c.num)
}

func (r *nnwaRunner) recycle(S, R []bool) {
	r.free = append(r.free, nnwaFrame{S: S, R: R})
}

func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

func (r *nnwaRunner) StepCall(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	below := nnwaFrame{S: r.S, R: r.R, sym: sym}
	r.stack = append(r.stack, below)
	S, R := r.fresh()
	// A new context opens: the summary resets to the identity and the
	// reachable set advances through the linear call successors.
	for q := 0; q < c.num; q++ {
		S[q*c.num+q] = true
	}
	for q := 0; q < c.num; q++ {
		if !below.R[q] {
			continue
		}
		lins, _ := c.callSucc(q, sym)
		for _, lin := range lins {
			R[lin] = true
		}
	}
	r.S, r.R = S, R
}

func (r *nnwaRunner) StepInternal(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	S, R := r.fresh()
	num := c.num
	for from := 0; from < num; from++ {
		row := r.S[from*num : (from+1)*num]
		for mid, ok := range row {
			if !ok {
				continue
			}
			for _, to := range c.internalSucc(mid, sym) {
				S[from*num+int(to)] = true
			}
		}
	}
	for q := 0; q < num; q++ {
		if !r.R[q] {
			continue
		}
		for _, to := range c.internalSucc(q, sym) {
			R[to] = true
		}
	}
	r.recycle(r.S, r.R)
	r.S, r.R = S, R
}

func (r *nnwaRunner) StepReturn(sym int) {
	c := r.c
	sym = clampSym(sym, c.syms)
	num := c.num
	S, R := r.fresh()
	if n := len(r.stack); n == 0 {
		// Pending return: the hierarchical edge is labelled with an initial
		// state.
		for from := 0; from < num; from++ {
			row := r.S[from*num : (from+1)*num]
			for mid, ok := range row {
				if !ok {
					continue
				}
				for _, q0 := range c.starts {
					for _, to := range c.returnSucc(int32(mid), q0, sym) {
						S[from*num+int(to)] = true
					}
				}
			}
		}
		for q := 0; q < num; q++ {
			if !r.R[q] {
				continue
			}
			for _, q0 := range c.starts {
				for _, to := range c.returnSucc(int32(q), q0, sym) {
					R[to] = true
				}
			}
		}
	} else {
		below := r.stack[n-1]
		r.stack = r.stack[:n-1]
		// Matched return: stitch the context below the call to the summary
		// inside it through the call and return relations.
		for from := 0; from < num; from++ {
			row := below.S[from*num : (from+1)*num]
			for mid, ok := range row {
				if !ok {
					continue
				}
				lins, hiers := c.callSucc(mid, below.sym)
				for i, lin := range lins {
					inner := r.S[int(lin)*num : (int(lin)+1)*num]
					for to2, ok2 := range inner {
						if !ok2 {
							continue
						}
						for _, to := range c.returnSucc(int32(to2), hiers[i], sym) {
							S[from*num+int(to)] = true
						}
					}
				}
			}
		}
		for q := 0; q < num; q++ {
			if !below.R[q] {
				continue
			}
			lins, hiers := c.callSucc(q, below.sym)
			for i, lin := range lins {
				inner := r.S[int(lin)*num : (int(lin)+1)*num]
				for to2, ok2 := range inner {
					if !ok2 {
						continue
					}
					for _, to := range c.returnSucc(int32(to2), hiers[i], sym) {
						R[to] = true
					}
				}
			}
		}
		r.recycle(below.S, below.R)
	}
	r.recycle(r.S, r.R)
	r.S, r.R = S, R
}

func (r *nnwaRunner) Accepting() bool {
	for q := 0; q < r.c.num; q++ {
		if r.R[q] && r.c.accept[q] {
			return true
		}
	}
	return false
}

func (r *nnwaRunner) Reset() {
	for n := len(r.stack); n > 0; n = len(r.stack) {
		f := r.stack[n-1]
		r.stack = r.stack[:n-1]
		r.recycle(f.S, f.R)
	}
	clearBools(r.S)
	clearBools(r.R)
	for q := 0; q < r.c.num; q++ {
		r.S[q*r.c.num+q] = true
	}
	for _, q := range r.c.starts {
		r.R[q] = true
	}
}
