package query

import "encoding/hex"

// QueryDesc is the machine-readable description of one compiled query in a
// bundle: its bundle name, its runner kind ("dnwa" for deterministic
// compiled tables, "nnwa" for the nondeterministic state-set runner,
// "product-member" for a query answered by a shared product automaton), and
// its state count.  A product member carries no states of its own — its
// group does — so States is 0 and Group points (1-based) at the
// BundleDesc.Groups entry that answers it.
type QueryDesc struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	States int    `json:"states"`
	Group  int    `json:"group,omitempty"`
}

// GroupDesc is the machine-readable description of one product-compiled
// cluster: the member names in mask-bit order, the shared automaton's kind
// ("product-dnwa" or "product-nnwa") and state count, and the width in
// uint64 words of each accept-bitmask row the verdict demux reads.
type GroupDesc struct {
	Queries   []string `json:"queries"`
	Kind      string   `json:"kind"`
	States    int      `json:"states"`
	MaskWords int      `json:"mask_words"`
}

// BundleDesc is the machine-readable description of a loaded query bundle.
// It is the one schema shared by ops tooling (`nwtool bundle -json`) and
// the serving front-end (the `bundle` object of `GET /v1/status`), so a
// dashboard comparing what is on disk against what a server actually
// loaded compares like with like.  Groups is empty for an unplanned bundle.
type BundleDesc struct {
	Alphabet     []string    `json:"alphabet"`
	AlphabetSize int         `json:"alphabet_size"`
	Queries      []QueryDesc `json:"queries"`
	Groups       []GroupDesc `json:"groups,omitempty"`

	// ContentHash is the hex content hash of the container the bundle was
	// decoded from (empty for a bundle built in memory), and HashVerified
	// says whether it is a verified VersionHashed header hash rather than
	// the plain checksum of an unhashed v1 container.  It is the same value
	// GET /v1/bundle serves as the ETag, so a dashboard can tell whether a
	// server is running the artifact the compile host published.
	ContentHash  string `json:"content_hash,omitempty"`
	HashVerified bool   `json:"hash_verified,omitempty"`
}

// Describe summarizes a loaded bundle: shared alphabet, per query the name,
// kind, and state count, and — for a planned bundle — the product groups
// with their member lists.
func Describe(b *Bundle) BundleDesc {
	d := BundleDesc{
		Alphabet:     b.Alphabet().Symbols(),
		AlphabetSize: b.Alphabet().Size(),
		Queries:      make([]QueryDesc, 0, b.Len()),
	}
	if sum, verified, ok := b.ContentHash(); ok {
		d.ContentHash = hex.EncodeToString(sum[:])
		d.HashVerified = verified
	}
	groupOf := map[int]int{} // bundle index → 1-based group number
	for gi, g := range b.Groups() {
		gd := GroupDesc{
			Kind:      "product-dnwa",
			States:    g.Product.NumStates(),
			MaskWords: g.Product.maskW,
		}
		if !g.Product.Deterministic() {
			gd.Kind = "product-nnwa"
		}
		for _, idx := range g.Indices {
			gd.Queries = append(gd.Queries, b.Name(int(idx)))
			groupOf[int(idx)] = gi + 1
		}
		d.Groups = append(d.Groups, gd)
	}
	for i := 0; i < b.Len(); i++ {
		q := QueryDesc{Name: b.Name(i), Kind: "dnwa"}
		switch c := b.Query(i).(type) {
		case *Compiled:
			q.States = c.NumStates()
		case *CompiledN:
			q.Kind, q.States = "nnwa", c.NumStates()
		case nil:
			q.Kind, q.Group = "product-member", groupOf[i]
		}
		d.Queries = append(d.Queries, q)
	}
	return d
}
