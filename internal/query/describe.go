package query

// QueryDesc is the machine-readable description of one compiled query in a
// bundle: its bundle name, its runner kind ("dnwa" for deterministic
// compiled tables, "nnwa" for the nondeterministic state-set runner), and
// its state count.
type QueryDesc struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	States int    `json:"states"`
}

// BundleDesc is the machine-readable description of a loaded query bundle.
// It is the one schema shared by ops tooling (`nwtool bundle -json`) and
// the serving front-end (the `bundle` object of `GET /v1/status`), so a
// dashboard comparing what is on disk against what a server actually
// loaded compares like with like.
type BundleDesc struct {
	Alphabet     []string    `json:"alphabet"`
	AlphabetSize int         `json:"alphabet_size"`
	Queries      []QueryDesc `json:"queries"`
}

// Describe summarizes a loaded bundle: shared alphabet, and per query the
// name, kind, and state count.
func Describe(b *Bundle) BundleDesc {
	d := BundleDesc{
		Alphabet:     b.Alphabet().Symbols(),
		AlphabetSize: b.Alphabet().Size(),
		Queries:      make([]QueryDesc, 0, b.Len()),
	}
	for i := 0; i < b.Len(); i++ {
		q := QueryDesc{Name: b.Name(i), Kind: "dnwa"}
		switch c := b.Query(i).(type) {
		case *Compiled:
			q.States = c.NumStates()
		case *CompiledN:
			q.Kind, q.States = "nnwa", c.NumStates()
		}
		d.Queries = append(d.Queries, q)
	}
	return d
}
