// Compilation from the DSL AST to the query package's compiled automata.
// Every construct lowers onto the existing constructors (LinearOrder,
// PathQuery, WellFormed, boolean closure) except the within predicate,
// which needs a genuinely nondeterministic automaton: guessing the witness
// scope is what nondeterminism is for, and the matching-return scope
// boundary is what separates nested-word automata from word automata.
package dsl

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/nwa"
	"repro/internal/query"
)

// Compile compiles a parsed expression against the document alphabet into
// the same compiled form every other query source produces — *query.Compiled
// for deterministic results, *query.CompiledN when the top level is a
// nondeterministic within — so the result registers with the engine and
// serializes into NWQ1 bundles unchanged.  Every label the expression
// mentions must be in alpha: compiled symbol IDs only exist for alphabet
// members, and a silently-absent label would make the query trivially false.
func Compile(e Expr, alpha *alphabet.Alphabet) (query.Query, error) {
	var missing []string
	for _, l := range Labels(e) {
		if _, ok := alpha.Index(l); !ok {
			missing = append(missing, l)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("dsl: query %q uses labels not in the alphabet: %v", e.String(), missing)
	}
	if w, ok := e.(Within); ok && w.Order != nil {
		// Top-level within: keep the nondeterministic automaton — k+5
		// states against the determinized form's subset blow-up.
		return query.CompileN(withinNNWA(alpha, w.Scope, w.Order)), nil
	}
	return query.Compile(lower(e, alpha)), nil
}

// Queries compiles several expressions under their canonical display names
// — the DSL counterpart of query.StandardSet, and like it the single
// definition both the bundle compiler (nwtool) and the in-process tools
// (nwquery, nwserve) share, so a bundle-booted server and an in-process one
// answer identically for the same -dsl string.
func Queries(alpha *alphabet.Alphabet, exprs []Expr) (names []string, queries []query.Query, err error) {
	for _, e := range exprs {
		q, err := Compile(e, alpha)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, e.String())
		queries = append(queries, q)
	}
	return names, queries, nil
}

// lower builds the deterministic automaton for an expression.  Labels have
// been validated against alpha by Compile.
func lower(e Expr, alpha *alphabet.Alphabet) *nwa.DNWA {
	switch e := e.(type) {
	case WellFormed:
		return query.WellFormed(alpha)
	case Contains:
		return query.ContainsLabel(alpha, e.Label)
	case Order:
		return query.LinearOrder(alpha, e.Labels...)
	case Path:
		return query.PathQuery(alpha, e.Labels...)
	case NoAfter:
		// "no x after y" = there is no y ... x subsequence.
		return query.Not(query.LinearOrder(alpha, e.Trigger, e.Forbidden))
	case Within:
		if e.Order != nil {
			return withinDNWA(alpha, e.Scope, e.Order)
		}
		// "within s: no x after y" = no s-scope contains y ... x.
		return query.Not(withinDNWA(alpha, e.Scope, []string{e.Trigger, e.Forbidden}))
	case And:
		return query.And(lower(e.L, alpha), lower(e.R, alpha))
	case Or:
		return query.Or(lower(e.L, alpha), lower(e.R, alpha))
	case Not:
		return query.Not(lower(e.X, alpha))
	}
	panic(fmt.Sprintf("dsl: unknown expression type %T", e))
}

// withinNNWA builds the existential scope-order automaton: some scope
// element's span (its own call/return positions excluded) contains the
// pattern labels in left-to-right order, at positions of any kind.
//
// The automaton guesses the witness scope nondeterministically.  A search
// state loops outside; on a scope-labelled call it may enter match state
// m_0, pushing a witness marker.  Inside, every position advances the match
// by one when it carries the next expected label (inner calls and returns
// push/pop a dummy marker so the scope's own frame stays identifiable), and
// the witness marker's return from the fully-matched state m_k reaches a
// sticky accept.  A document that ends inside a fully-matched but unclosed
// witness scope also accepts: m_k is itself accepting, consistent with the
// tokenizer's tolerance for unmatched calls.
//
// States: search = 0, m_i = 1+i (i = 0..k), accept = k+2, witness marker =
// k+3, dummy marker = k+4 — k+5 states total, independent of the document.
// withinDNWA is the deterministic form of the same language, used under
// boolean operators where composition needs DNWAs.  Determinizing the
// nondeterministic automaton works but pays the generic subset blow-up
// (hundreds of states); this direct construction stays at k+5 states on the
// strength of two observations.  First, acceptance is equivalent to "some
// scope's match progress reaches k while the scope is open": once that
// happens the scope either closes (witness found) or the document ends
// inside it, and both accept.  Second, greedy subsequence progress is
// monotone in how early matching started — if two scopes are open, the
// outer one opened earlier, saw a superset of the inner one's interior, and
// advance(i, sym) preserves i1 >= i2 — so the outermost open scope always
// carries the maximal progress and is the only one worth tracking: it
// reaches k first, and it closes last.
//
// States: noScope = 0 (start; doubles as the marker for frames opened
// outside any scope and as the pending-return hierarchical state), p_q =
// 1+q (q = 0..k-1: outermost open scope has progress q), found = k+1
// (sticky accept), scopeTop = k+2 (marker for the outermost scope's own
// frame), inside = k+3 (marker for frames opened inside it), foundM = k+4
// (marker for frames opened after accepting).
func withinDNWA(alpha *alphabet.Alphabet, scope string, pattern []string) *nwa.DNWA {
	k := len(pattern)
	const noScope = 0
	p := func(q int) int { return 1 + q }
	found := k + 1
	scopeTop := k + 2
	inside := k + 3
	foundM := k + 4
	b := nwa.NewDNWABuilder(alpha, k+5)
	b.SetStart(noScope).SetAccept(found)
	// state after the outermost scope's progress q sees one position
	// labelled sym.
	after := func(q int, sym string) int {
		if sym == pattern[q] {
			if q+1 == k {
				return found
			}
			return p(q + 1)
		}
		return p(q)
	}
	for s := 0; s < alpha.Size(); s++ {
		sym := alpha.Symbol(s)
		b.Internal(noScope, sym, noScope)
		if sym == scope {
			b.Call(noScope, sym, p(0), scopeTop)
		} else {
			b.Call(noScope, sym, noScope, noScope)
		}
		b.Return(noScope, noScope, sym, noScope)
		for q := 0; q < k; q++ {
			b.Internal(p(q), sym, after(q, sym))
			b.Call(p(q), sym, after(q, sym), inside)
			b.Return(p(q), inside, sym, after(q, sym))
			// The scope's own closing return is excluded from its progress;
			// below full progress the scope simply failed.
			b.Return(p(q), scopeTop, sym, noScope)
		}
		b.Internal(found, sym, found)
		b.Call(found, sym, found, foundM)
		for _, hier := range []int{foundM, inside, scopeTop, noScope} {
			b.Return(found, hier, sym, found)
		}
	}
	return b.Build()
}

func withinNNWA(alpha *alphabet.Alphabet, scope string, pattern []string) *nwa.NNWA {
	k := len(pattern)
	const search = 0
	m := func(i int) int { return 1 + i }
	acc := k + 2
	witness := k + 3
	dummy := k + 4
	n := nwa.NewNNWA(alpha, k+5)
	n.AddStart(search)
	n.AddAccept(acc, m(k))
	// advance is the match progress after seeing one position labelled sym.
	advance := func(i int, sym string) int {
		if i < k && sym == pattern[i] {
			return i + 1
		}
		return i
	}
	for s := 0; s < alpha.Size(); s++ {
		sym := alpha.Symbol(s)
		// Search: loop, and guess the witness on scope calls.  The search
		// state doubles as the hierarchical marker for frames opened while
		// searching — and, being the start state, as the marker the
		// simulation supplies for the document's own pending returns.
		n.AddInternal(search, sym, search)
		n.AddCall(search, sym, search, search)
		if sym == scope {
			n.AddCall(search, sym, m(0), witness)
		}
		n.AddReturn(search, search, sym, search)
		// Match states: every position inside the span advances on the
		// expected label; the span's own closing return is excluded by
		// routing it through the witness marker instead.
		for i := 0; i <= k; i++ {
			n.AddInternal(m(i), sym, m(advance(i, sym)))
			n.AddCall(m(i), sym, m(advance(i, sym)), dummy)
			n.AddReturn(m(i), dummy, sym, m(advance(i, sym)))
		}
		n.AddReturn(m(k), witness, sym, acc)
		// Accept is sticky through any suffix, including returns of frames
		// opened before the witness (marker search) or after it (dummy).
		n.AddInternal(acc, sym, acc)
		n.AddCall(acc, sym, acc, dummy)
		n.AddReturn(acc, dummy, sym, acc)
		n.AddReturn(acc, search, sym, acc)
	}
	return n
}
