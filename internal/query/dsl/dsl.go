// Package dsl is the textual query language over nested-word documents: a
// small surface of paths with nesting predicates that parses to an AST and
// compiles to the same compiled automata (query.Compile / query.CompileN)
// every other query source produces, so DSL-authored queries run in the
// engine, serialize into NWQ1 bundles, and serve over HTTP unchanged.
//
// # Grammar
//
//	query  := or
//	or     := and { "or" and }
//	and    := unary { "and" unary }
//	unary  := "not" unary | "(" query ")" | atom
//	atom   := "well-formed"
//	        | "contains" LABEL
//	        | "no" LABEL "after" LABEL
//	        | "within" LABEL ":" pred
//	        | PATH                              (e.g. //book//title)
//	        | LABEL "before" LABEL { "before" LABEL }
//	pred   := "no" LABEL "after" LABEL
//	        | LABEL "before" LABEL { "before" LABEL }
//
// Several queries can be written in one string separated by ";" (see
// ParseList).  LABEL is any word that is not a keyword and not punctuation;
// PATH is a word starting with "//" whose "//"-separated segments are the
// path's labels.  Keywords (and, or, not, no, within, before, after,
// contains, well-formed) are reserved and cannot be labels.
//
// # Semantics
//
//	well-formed             the document is well matched with equal
//	                        open/close labels (query.WellFormed)
//	contains x              some position carries label x
//	a before b before c     the labels occur in that left-to-right order,
//	                        at positions of any kind (query.LinearOrder)
//	//a//b                  a root-to-node descendant chain a, ..., b
//	                        (query.PathQuery)
//	no x after y            once y has occurred, x never occurs later —
//	                        sugar for not (y before x)
//	within s: a before b    some s-element's span (its own call/return
//	                        positions excluded) contains a and then b, in
//	                        order — a genuinely nested-word predicate: the
//	                        scope is delimited by the matching return, which
//	                        no word automaton over the linear order can see
//	within s: no x after y  no s-element's span has y and then x — sugar
//	                        for not (within s: y before x)
//
// Boolean combinations compose via the closure constructions of the nwa
// package (intersection, union, complement on deterministic automata;
// within-scopes determinize first).  A bare "within s: <order>" at the top
// level stays nondeterministic and compiles with query.CompileN.
//
// Compilation is a query-set-load-time operation, like query.Compile: parse
// and compile once, then serve the compiled automaton.  Nothing in the
// serving hot path (engine, serve, server) imports this package — the
// nwvet dsl-confinement check enforces that.
package dsl

import (
	"strings"
)

// Expr is a parsed DSL query.  String returns the canonical spelling, which
// re-parses to an equal expression and doubles as the query's display name.
type Expr interface {
	String() string
	// addLabels appends the expression's labels in first-occurrence order.
	addLabels(seen map[string]bool, out *[]string)
}

// WellFormed is the atom "well-formed".
type WellFormed struct{}

// Contains is "contains Label".
type Contains struct{ Label string }

// Order is "l1 before l2 before ... before lk" (k >= 2).
type Order struct{ Labels []string }

// Path is "//l1//l2//...//lk".
type Path struct{ Labels []string }

// NoAfter is "no Forbidden after Trigger".
type NoAfter struct{ Forbidden, Trigger string }

// Within is "within Scope: <pred>" — exactly one of Order (the order
// predicate's labels, len >= 1) or the NoAfter pair is set.
type Within struct {
	Scope     string
	Order     []string // order predicate, nil for the no-after form
	Forbidden string   // no-after predicate ...
	Trigger   string   // ... "no Forbidden after Trigger"
}

// And is the conjunction "L and R".
type And struct{ L, R Expr }

// Or is the disjunction "L or R".
type Or struct{ L, R Expr }

// Not is the negation "not X".
type Not struct{ X Expr }

// String returns the canonical spelling of the atom.
func (WellFormed) String() string { return "well-formed" }

// String returns the canonical spelling of the atom.
func (e Contains) String() string { return "contains " + e.Label }

// String returns the canonical spelling of the atom.
func (e Order) String() string { return strings.Join(e.Labels, " before ") }

// String returns the canonical spelling of the atom.
func (e Path) String() string { return "//" + strings.Join(e.Labels, "//") }

// String returns the canonical spelling of the atom.
func (e NoAfter) String() string { return "no " + e.Forbidden + " after " + e.Trigger }

// String returns the canonical spelling of the atom.
func (e Within) String() string {
	if e.Order != nil {
		return "within " + e.Scope + ": " + strings.Join(e.Order, " before ")
	}
	return "within " + e.Scope + ": no " + e.Forbidden + " after " + e.Trigger
}

// paren wraps sub-expressions whose top-level operator binds looser than the
// context, keeping String canonical and re-parseable with minimal noise.
func paren(e Expr, loose func(Expr) bool) string {
	if loose(e) {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func isOr(e Expr) bool  { return isKind[Or](e) }
func isAnd(e Expr) bool { return isKind[And](e) }

func isKind[T any](e Expr) bool { _, ok := e.(T); return ok }

// String parenthesizes operands that bind looser than "and".
func (e And) String() string {
	return paren(e.L, isOr) + " and " + paren(e.R, isOr)
}

// String never parenthesizes: "or" is the loosest operator.
func (e Or) String() string { return e.L.String() + " or " + e.R.String() }

// String parenthesizes any compound operand: "not" binds tightest.
func (e Not) String() string {
	return "not " + paren(e.X, func(x Expr) bool { return isOr(x) || isAnd(x) })
}

func (WellFormed) addLabels(map[string]bool, *[]string) {}

func addLabel(l string, seen map[string]bool, out *[]string) {
	if !seen[l] {
		seen[l] = true
		*out = append(*out, l)
	}
}

func (e Contains) addLabels(seen map[string]bool, out *[]string) { addLabel(e.Label, seen, out) }

func (e Order) addLabels(seen map[string]bool, out *[]string) {
	for _, l := range e.Labels {
		addLabel(l, seen, out)
	}
}

func (e Path) addLabels(seen map[string]bool, out *[]string) {
	for _, l := range e.Labels {
		addLabel(l, seen, out)
	}
}

func (e NoAfter) addLabels(seen map[string]bool, out *[]string) {
	addLabel(e.Trigger, seen, out)
	addLabel(e.Forbidden, seen, out)
}

func (e Within) addLabels(seen map[string]bool, out *[]string) {
	addLabel(e.Scope, seen, out)
	for _, l := range e.Order {
		addLabel(l, seen, out)
	}
	if e.Order == nil {
		addLabel(e.Trigger, seen, out)
		addLabel(e.Forbidden, seen, out)
	}
}

func (e And) addLabels(seen map[string]bool, out *[]string) {
	e.L.addLabels(seen, out)
	e.R.addLabels(seen, out)
}

func (e Or) addLabels(seen map[string]bool, out *[]string) {
	e.L.addLabels(seen, out)
	e.R.addLabels(seen, out)
}

func (e Not) addLabels(seen map[string]bool, out *[]string) { e.X.addLabels(seen, out) }

// Labels returns the document labels an expression mentions, in
// first-occurrence order — the alphabet contribution of the query, the way
// SplitLabels(-order)+SplitLabels(-path) contribute labels for the flag
// spelling.  Order matters: alphabet order determines compiled symbol IDs.
func Labels(exprs ...Expr) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range exprs {
		e.addLabels(seen, &out)
	}
	return out
}
