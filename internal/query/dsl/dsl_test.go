package dsl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/nestedword"
)

// TestParseString pins the canonical spelling and its re-parse stability.
func TestParseString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"well-formed", "well-formed"},
		{"contains title", "contains title"},
		{"title before author", "title before author"},
		{"a before b before c", "a before b before c"},
		{"//book//title", "//book//title"},
		{"no write after close", "no write after close"},
		{"within book: title before author", "within book: title before author"},
		{"within book: title", "within book: title"},
		{"within file: no write after close", "within file: no write after close"},
		{"not well-formed", "not well-formed"},
		{"well-formed and contains a", "well-formed and contains a"},
		{"contains a or contains b and well-formed", "contains a or contains b and well-formed"},
		{"(contains a or contains b) and well-formed", "(contains a or contains b) and well-formed"},
		{"not (contains a and contains b)", "not (contains a and contains b)"},
		{"  within   book :  title   before  author ", "within book: title before author"},
		{"not(contains a)or well-formed", "not contains a or well-formed"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// The canonical spelling must re-parse to itself.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", e.String(), err)
			continue
		}
		if e2.String() != e.String() {
			t.Errorf("re-Parse(%q).String() = %q, not stable", e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "before", "contains", "contains and", "a before", "a",
		"within book title", "within: title", "within book:",
		"no x", "no x before y", "(contains a", "contains a)",
		"//", "//a//", "////", "//and//b", "well-formed contains a",
		"within before: a", "contains //a//b",
	}
	for _, in := range bad {
		if e, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, e)
		}
	}
}

func TestParseList(t *testing.T) {
	exprs, err := ParseList(" well-formed ; ; within book: title before author;")
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 2 || exprs[0].String() != "well-formed" || exprs[1].String() != "within book: title before author" {
		t.Fatalf("ParseList = %v", exprs)
	}
	if _, err := ParseList("well-formed; bogus before"); err == nil {
		t.Fatal("ParseList with a bad entry: want error")
	}
}

func TestCompileMissingLabel(t *testing.T) {
	alpha := alphabet.New("a", "b")
	e, err := Parse("contains c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(e, alpha); err == nil || !strings.Contains(err.Error(), "c") {
		t.Fatalf("Compile with missing label: err = %v, want mention of c", err)
	}
}

// accepter is satisfied by both *query.Compiled and *query.CompiledN.
type accepter interface {
	Accepts(*nestedword.NestedWord) bool
}

// oracle evaluates an expression by brute force directly over the nested
// word, independently of any automaton construction.  Documents must be
// over the query alphabet: labels outside it intern to the out-of-alphabet
// symbol ID and uniformly reject, a property pinned by the interning tests,
// not by this oracle.
func oracle(e Expr, n *nestedword.NestedWord) bool {
	switch e := e.(type) {
	case WellFormed:
		if !n.IsWellMatched() {
			return false
		}
		// Equal open/close labels on every matched pair.
		var stack []string
		for i := 0; i < n.Len(); i++ {
			switch n.KindAt(i) {
			case nestedword.Call:
				stack = append(stack, n.SymbolAt(i))
			case nestedword.Return:
				if len(stack) == 0 || stack[len(stack)-1] != n.SymbolAt(i) {
					return false
				}
				stack = stack[:len(stack)-1]
			}
		}
		return len(stack) == 0
	case Contains:
		for i := 0; i < n.Len(); i++ {
			if n.SymbolAt(i) == e.Label {
				return true
			}
		}
		return false
	case Order:
		return subsequence(n, 0, n.Len(), e.Labels)
	case Path:
		// Some root-to-node descendant chain matches. Track, per open
		// element, the best progress achievable at that depth.
		progress := []int{0} // progress[d] = labels matched among open elements
		best := 0
		for i := 0; i < n.Len(); i++ {
			switch n.KindAt(i) {
			case nestedword.Call:
				p := progress[len(progress)-1]
				if p < len(e.Labels) && n.SymbolAt(i) == e.Labels[p] {
					p++
				}
				if p > best {
					best = p
				}
				progress = append(progress, p)
			case nestedword.Return:
				// PathQuery defines return transitions only for its own
				// hierarchical markers, so a pending return (whose
				// hierarchical state is the start state) is dead: the
				// compiled query rejects the document outright.
				if len(progress) == 1 {
					return false
				}
				progress = progress[:len(progress)-1]
			}
		}
		return best == len(e.Labels)
	case NoAfter:
		return !subsequence(n, 0, n.Len(), []string{e.Trigger, e.Forbidden})
	case Within:
		pattern := e.Order
		if pattern == nil {
			pattern = []string{e.Trigger, e.Forbidden}
		}
		found := false
		forEachScope(n, e.Scope, func(lo, hi int) {
			if subsequence(n, lo, hi, pattern) {
				found = true
			}
		})
		if e.Order == nil {
			return !found
		}
		return found
	case And:
		return oracle(e.L, n) && oracle(e.R, n)
	case Or:
		return oracle(e.L, n) || oracle(e.R, n)
	case Not:
		return !oracle(e.X, n)
	}
	panic("unknown expr")
}

// subsequence reports whether positions lo..hi-1 contain the labels as a
// subsequence (any position kind).
func subsequence(n *nestedword.NestedWord, lo, hi int, labels []string) bool {
	j := 0
	for i := lo; i < hi && j < len(labels); i++ {
		if n.SymbolAt(i) == labels[j] {
			j++
		}
	}
	return j == len(labels)
}

// forEachScope calls f(lo, hi) for every scope-labelled call position, with
// lo..hi-1 the positions strictly inside its span (hi excludes the matching
// return; an unclosed call's span runs to the end of the word).
func forEachScope(n *nestedword.NestedWord, scope string, f func(lo, hi int)) {
	type open struct {
		pos     int
		matches bool
	}
	var stack []open
	for i := 0; i < n.Len(); i++ {
		switch n.KindAt(i) {
		case nestedword.Call:
			stack = append(stack, open{pos: i, matches: n.SymbolAt(i) == scope})
		case nestedword.Return:
			if len(stack) > 0 {
				o := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if o.matches {
					f(o.pos+1, i)
				}
			}
		}
	}
	for _, o := range stack {
		if o.matches {
			f(o.pos+1, n.Len())
		}
	}
}

// corpus builds a deterministic mix of hand-written and seeded-random
// documents over the test alphabet, including non-well-formed ones.
func corpus(t *testing.T) []*nestedword.NestedWord {
	t.Helper()
	docs := []string{
		"",
		"<book> <title> a </title> <author> b </author> </book>",
		"<book> <author> b </author> <title> a </title> </book>",
		"<lib> <book> <title> a </title> </book> <book> <author> b </author> </book> </lib>",
		"<book> <book> <title> a </title> </book> <author> b </author> </book>",
		"<file> open close write </file>",
		"<file> open write close </file>",
		"<file> open close </file> <file> write </file>",
		"<book> <title>", // unmatched calls
		"</book> a b",    // unmatched return
		"<a> open </b>",  // mismatched labels
		"a b title author close write open",
	}
	var out []*nestedword.NestedWord
	for _, d := range docs {
		n, err := docstream.Parse(d)
		if err != nil {
			t.Fatalf("parse %q: %v", d, err)
		}
		out = append(out, n)
	}
	labels := []string{"book", "title", "author", "lib", "file", "a", "b", "open", "close", "write"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		var ps []nestedword.Position
		depth := 0
		for j, m := 0, 3+rng.Intn(20); j < m; j++ {
			sym := labels[rng.Intn(len(labels))]
			switch k := rng.Intn(3); {
			case k == 0:
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Call})
				depth++
			case k == 1 && (depth > 0 || rng.Intn(4) == 0):
				// Mostly matched returns, occasionally pending ones.
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Return})
				if depth > 0 {
					depth--
				}
			default:
				ps = append(ps, nestedword.Position{Symbol: sym, Kind: nestedword.Internal})
			}
		}
		out = append(out, nestedword.New(ps...))
	}
	return out
}

// TestCompileAgainstOracle is the semantic pin: every DSL construct,
// compiled through the real pipeline, must agree with the brute-force
// evaluator on every corpus document.
func TestCompileAgainstOracle(t *testing.T) {
	alpha := alphabet.New("book", "title", "author", "lib", "file", "a", "b", "open", "close", "write")
	queries := []string{
		"well-formed",
		"contains title",
		"contains b",
		"title before author",
		"author before title",
		"a before b before a",
		"//book//title",
		"//lib//book//author",
		"//book//book",
		"no write after close",
		"no close after close",
		"within book: title before author",
		"within book: title",
		"within book: author before title",
		"within file: no write after close",
		"within lib: book before book",
		"well-formed and title before author",
		"not well-formed",
		"(contains a or contains b) and not well-formed",
		"not (within book: title before author)",
		"within book: title before author and well-formed",
		"no a after b or within file: open before close",
	}
	docs := corpus(t)
	for _, qs := range queries {
		e, err := Parse(qs)
		if err != nil {
			t.Fatalf("Parse(%q): %v", qs, err)
		}
		q, err := Compile(e, alpha)
		if err != nil {
			t.Fatalf("Compile(%q): %v", qs, err)
		}
		acc, ok := q.(accepter)
		if !ok {
			t.Fatalf("Compile(%q) returned %T without Accepts", qs, q)
		}
		for i, d := range docs {
			got := acc.Accepts(d)
			want := oracle(e, d)
			if got != want {
				t.Errorf("query %q doc %d %q: compiled=%v oracle=%v", qs, i, docstream.Render(d), got, want)
			}
		}
	}
}

// TestWithinConstructionsAgree pins the nondeterministic within automaton
// (the query.CompileN top-level path) against the direct deterministic
// construction (the form used under boolean operators) on the whole corpus
// — the two are independent constructions of the same language, so their
// agreement is a real differential, not a tautology.
func TestWithinConstructionsAgree(t *testing.T) {
	alpha := alphabet.New("book", "title", "author", "lib", "file", "a", "b", "open", "close", "write")
	docs := corpus(t)
	for _, qs := range []string{
		"within book: title before author",
		"within book: title",
		"within lib: book before book",
		"within file: open before close",
		"within book: book before book",
	} {
		e, err := Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		w := e.(Within)
		nn := withinNNWA(alpha, w.Scope, w.Order)
		det := withinDNWA(alpha, w.Scope, w.Order)
		for i, d := range docs {
			if nn.Accepts(d) != det.Accepts(d) {
				t.Errorf("%q doc %d %q: NNWA=%v direct DNWA=%v", qs, i, docstream.Render(d), nn.Accepts(d), det.Accepts(d))
			}
		}
	}
}

// TestWithinDeterminizeAgrees additionally checks the generic subset
// determinization against both hand constructions, on a deliberately tiny
// alphabet — the generic construction's state count explodes with alphabet
// size, and its correctness is already pinned in the nwa package.
func TestWithinDeterminizeAgrees(t *testing.T) {
	alpha := alphabet.New("book", "title", "author")
	nn := withinNNWA(alpha, "book", []string{"title", "author"})
	gen := nn.Determinize()
	direct := withinDNWA(alpha, "book", []string{"title", "author"})
	rng := rand.New(rand.NewSource(11))
	labels := []string{"book", "title", "author"}
	for i := 0; i < 200; i++ {
		var ps []nestedword.Position
		for j, m := 0, rng.Intn(14); j < m; j++ {
			kind := []nestedword.Kind{nestedword.Call, nestedword.Internal, nestedword.Return}[rng.Intn(3)]
			ps = append(ps, nestedword.Position{Symbol: labels[rng.Intn(3)], Kind: kind})
		}
		d := nestedword.New(ps...)
		if gen.Accepts(d) != direct.Accepts(d) {
			t.Errorf("doc %d %q: determinized=%v direct=%v", i, docstream.Render(d), gen.Accepts(d), direct.Accepts(d))
		}
	}
}
