package dsl

import (
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/query"
)

// nodeCount bounds compilation work: boolean operators compile to automaton
// products, so state counts multiply with expression size.
func nodeCount(e Expr) int {
	switch e := e.(type) {
	case And:
		return 1 + nodeCount(e.L) + nodeCount(e.R)
	case Or:
		return 1 + nodeCount(e.L) + nodeCount(e.R)
	case Not:
		return 1 + nodeCount(e.X)
	}
	return 1
}

// FuzzDSLParse: parsing never panics; every successful parse has a stable
// canonical spelling; and every small parsed query compiles against its own
// label set and survives the bundle Marshal/Unmarshal round trip — the same
// path `nwtool compile -dsl` feeds and the serving daemons load.
func FuzzDSLParse(f *testing.F) {
	f.Add("within book: title before author")
	f.Add("no write after close and well-formed")
	f.Add("not (contains a or //x//y) and b before c")
	f.Add("within f: no a after b; contains c")
	f.Add("((((a before b))))")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 512 {
			return
		}
		e, err := Parse(in)
		if err != nil {
			return
		}
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, in, err)
		}
		if s2 := e2.String(); s2 != s {
			t.Fatalf("canonical form not stable: %q re-parses to %q", s, s2)
		}

		labels := Labels(e)
		if nodeCount(e) > 6 || len(labels) > 8 {
			return
		}
		alpha := alphabet.New(labels...)
		q, err := Compile(e, alpha)
		if err != nil {
			t.Fatalf("Compile(%q) over its own labels: %v", s, err)
		}
		b := query.NewBundle(alpha)
		if err := b.Add(s, q); err != nil {
			t.Fatalf("bundle Add(%q): %v", s, err)
		}
		rt, err := query.UnmarshalBundle(b.Marshal())
		if err != nil {
			t.Fatalf("bundle round trip of %q: %v", s, err)
		}
		if rt.Len() != 1 || rt.Name(0) != s {
			t.Fatalf("bundle round trip of %q: %d queries, name %q", s, rt.Len(), rt.Name(0))
		}
	})
}

func TestFuzzSeedsCoverKeywords(t *testing.T) {
	// Make sure the corpus exercises each atom form, so the fuzzer starts
	// from inputs that reach the compiler.
	for _, in := range []string{
		"well-formed", "contains a", "a before b", "//a//b",
		"no a after b", "within s: a", "within s: no a after b",
	} {
		if _, err := Parse(in); err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
	}
	if _, err := Parse(strings.Repeat("(", 200) + "contains a" + strings.Repeat(")", 200)); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
}
