// The DSL lexer and recursive-descent parser.  Errors carry the byte offset
// of the offending token so CLI users can find typos in long query strings.
package dsl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// keywords are reserved words that cannot be used as labels.
var keywords = map[string]bool{
	"and": true, "or": true, "not": true, "no": true,
	"within": true, "before": true, "after": true,
	"contains": true, "well-formed": true,
}

type tokKind int

const (
	tokEOF    tokKind = iota
	tokWord           // label or keyword
	tokPath           // //a//b
	tokLParen         // (
	tokRParen         // )
	tokColon          // :
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in the input
}

func (t token) describe() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the query string into tokens.  '(' ')' ':' are punctuation even
// when glued to a word ("within book:" lexes as within, book, ':').
func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		r, w := utf8.DecodeRuneInString(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += w
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i += w
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i += w
		case r == ':':
			toks = append(toks, token{tokColon, ":", i})
			i += w
		default:
			start := i
			for i < len(s) {
				r, w := utf8.DecodeRuneInString(s[i:])
				if unicode.IsSpace(r) || r == '(' || r == ')' || r == ':' {
					break
				}
				i += w
			}
			word := s[start:i]
			kind := tokWord
			if strings.HasPrefix(word, "//") {
				kind = tokPath
			}
			toks = append(toks, token{kind, word, start})
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks
}

// parser is a cursor over the token slice.
type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("dsl: at offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

// label consumes one word token that is a valid label.
func (p *parser) label(what string) (string, error) {
	t := p.next()
	if t.kind != tokWord {
		return "", p.errf(t, "expected %s, got %s", what, t.describe())
	}
	if keywords[t.text] {
		return "", p.errf(t, "%q is a keyword and cannot be a label", t.text)
	}
	return t.text, nil
}

// Parse parses a single DSL query.
func Parse(s string) (Expr, error) {
	p := &parser{toks: lex(s)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected %s after complete query", t.describe())
	}
	return e, nil
}

// ParseList parses a ";"-separated list of DSL queries, skipping empty
// entries — the spelling the -dsl CLI flags accept.
func ParseList(s string) ([]Expr, error) {
	var exprs []Expr
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		e, err := Parse(part)
		if err != nil {
			return nil, fmt.Errorf("%w (in query %q)", err, strings.TrimSpace(part))
		}
		exprs = append(exprs, e)
	}
	return exprs, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "and" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch t := p.peek(); {
	case t.kind == tokWord && t.text == "not":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case t.kind == tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if c := p.next(); c.kind != tokRParen {
			return nil, p.errf(c, "expected ), got %s", c.describe())
		}
		return e, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokPath:
		p.next()
		return parsePath(p, t)
	case t.kind != tokWord:
		return nil, p.errf(t, "expected a query, got %s", t.describe())
	case t.text == "well-formed":
		p.next()
		return WellFormed{}, nil
	case t.text == "contains":
		p.next()
		l, err := p.label("a label after contains")
		if err != nil {
			return nil, err
		}
		return Contains{Label: l}, nil
	case t.text == "no":
		p.next()
		return p.parseNoAfter()
	case t.text == "within":
		p.next()
		scope, err := p.label("a scope label after within")
		if err != nil {
			return nil, err
		}
		if c := p.next(); c.kind != tokColon {
			return nil, p.errf(c, "expected : after the within scope, got %s", c.describe())
		}
		return p.parsePred(scope)
	default:
		return p.parseOrder()
	}
}

func parsePath(p *parser, t token) (Expr, error) {
	var labels []string
	for _, seg := range strings.Split(strings.TrimPrefix(t.text, "//"), "//") {
		if seg == "" {
			return nil, p.errf(t, "empty path segment in %q", t.text)
		}
		if keywords[seg] {
			return nil, p.errf(t, "%q is a keyword and cannot be a path label", seg)
		}
		labels = append(labels, seg)
	}
	return Path{Labels: labels}, nil
}

// parseNoAfter parses "no X after Y" with the leading "no" already consumed.
func (p *parser) parseNoAfter() (Expr, error) {
	forbidden, err := p.label("a label after no")
	if err != nil {
		return nil, err
	}
	if a := p.next(); a.kind != tokWord || a.text != "after" {
		return nil, p.errf(a, "expected after, got %s", a.describe())
	}
	trigger, err := p.label("a label after after")
	if err != nil {
		return nil, err
	}
	return NoAfter{Forbidden: forbidden, Trigger: trigger}, nil
}

// parseOrder parses "a before b [before c ...]" — at the top level a bare
// label must be followed by at least one before (use contains for a single
// label).
func (p *parser) parseOrder() (Expr, error) {
	first, labels, err := p.parseOrderLabels()
	if err != nil {
		return nil, err
	}
	if len(labels) < 2 {
		return nil, p.errf(p.peek(), "expected before after label %q (use \"contains %s\" for a single label)", first, first)
	}
	return Order{Labels: labels}, nil
}

// parseOrderLabels parses "a [before b ...]" and returns the first label
// separately for error messages.
func (p *parser) parseOrderLabels() (string, []string, error) {
	first, err := p.label("a query keyword or a label")
	if err != nil {
		return "", nil, err
	}
	labels := []string{first}
	for p.peek().kind == tokWord && p.peek().text == "before" {
		p.next()
		l, err := p.label("a label after before")
		if err != nil {
			return "", nil, err
		}
		labels = append(labels, l)
	}
	return first, labels, nil
}

// parsePred parses the predicate of a within atom.  Unlike the top level, a
// single-label order predicate is allowed: "within book: title" means some
// book element's span contains a title position.
func (p *parser) parsePred(scope string) (Expr, error) {
	if t := p.peek(); t.kind == tokWord && t.text == "no" {
		p.next()
		na, err := p.parseNoAfter()
		if err != nil {
			return nil, err
		}
		n := na.(NoAfter)
		return Within{Scope: scope, Forbidden: n.Forbidden, Trigger: n.Trigger}, nil
	}
	_, labels, err := p.parseOrderLabels()
	if err != nil {
		return nil, err
	}
	return Within{Scope: scope, Order: labels}, nil
}
