// Package format implements the versioned, little-endian on-disk container
// behind the query package's serialized compiled query sets: a fixed header
// (magic, version, object kind, flags), a section directory up front (one
// tag/offset/length triple per section, every offset 8-byte aligned), and
// the raw section payloads.  The layout is deliberately position-independent
// and alignment-friendly so a reader can point int32/uint64 table slices
// directly into an mmap'd byte region — the zero-copy load path a fleet of
// front-ends uses to share one compiled query set instead of recompiling per
// process.
//
// The package knows nothing about automata: it moves tagged byte sections,
// typed little-endian slices, and string lists.  What the sections mean —
// transition tables, alphabets, bitset mask slabs — is the query package's
// business (see internal/query/qset.go for the section registry and the
// documented file layout).
//
// Every decoding entry point validates bounds before allocating, and all
// allocation sizes are bounded by the input length, so arbitrary bytes fail
// cleanly (an error, never a panic or an attacker-sized allocation).
//
// Two header versions exist (the byte-level reference is docs/FORMAT.md):
// version 1 is the original 24-byte header, and version 2 appends a SHA-256
// content hash over the rest of the container — the cache key and integrity
// check that lets a fleet verify a bundle fetched from an untrusted cache
// before mapping it.  NewReader verifies the hash of every version-2
// container it opens and fails closed with ErrHashMismatch on any flipped
// bit; version-1 containers still load but report themselves unhashed.  The
// detached ed25519 signature envelope over the content hash lives in
// sign.go.
package format

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// Magic is the four-byte file signature opening every container.
const Magic = "NWQ1"

// Container header versions.  Readers accept both and reject anything else,
// so the format cannot drift silently; writers emit Version1 only for blobs
// embedded inside an outer hashed container (the outer hash covers them).
const (
	// Version1 is the original unhashed 24-byte header.
	Version1 = 1
	// VersionHashed is the 56-byte header carrying a SHA-256 content hash
	// over every other byte of the container.
	VersionHashed = 2
)

// ErrHashMismatch is reported (wrapped) when a version-2 container's bytes
// do not hash to the content hash its header declares — a torn write, a
// corrupted cache entry, or a flipped bit in an mmap'd file.  Loads fail
// closed: no table of a mismatching container is ever handed out.
var ErrHashMismatch = errors.New("format: content hash mismatch")

// Object kinds: what the container as a whole serializes.  The kind is part
// of the header, so a loader knows how to interpret the sections before
// touching any of them.
const (
	// KindDNWA marks a serialized compiled deterministic NWA.
	KindDNWA = 1
	// KindNNWA marks a serialized compiled nondeterministic NWA.
	KindNNWA = 2
	// KindBundle marks a named multi-query set with one shared alphabet.
	KindBundle = 3
	// KindProduct marks a product-compiled query cluster: one shared
	// automaton plus the per-query accept bitmask it demuxes verdicts from.
	KindProduct = 4
)

// HashSize is the length in bytes of the content hash (SHA-256).  Callers
// outside this package type hashes as [format.HashSize]byte so the choice of
// hash function stays confined here.
const HashSize = sha256.Size

const (
	headerSize   = 24 // magic + version + kind + flags + count + reserved
	hashOffset   = 24 // where the VersionHashed header stores its SHA-256
	headerSizeV2 = hashOffset + HashSize
	dirEntrySize = 24 // tag + pad + offset + length
)

// headerLen returns the header length of the given version.  Both lengths
// are multiples of 8, so the directory (and with it every aligned section
// offset) starts aligned under either header.
func headerLen(version uint32) int {
	if version == VersionHashed {
		return headerSizeV2
	}
	return headerSize
}

// contentSum hashes a container's bytes with the hash field itself zeroed —
// the quantity a VersionHashed header stores.  The zeroed field keeps the
// definition circular-free while still covering the magic, version, kind,
// flags, directory, payloads, and padding: any other flipped bit changes
// the sum.
func contentSum(data []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(data[:hashOffset])
	var zero [sha256.Size]byte
	h.Write(zero[:])
	h.Write(data[headerSizeV2:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// Checksum returns the plain SHA-256 of the raw bytes — the fallback cache
// key for version-1 containers, which carry no verifiable content hash of
// their own.
func Checksum(data []byte) [sha256.Size]byte { return sha256.Sum256(data) }

// ContentHash identifies a serialized container for caching and signing:
// for a version-2 container it returns the header's content hash with
// verified=true (the bytes are re-hashed and must match, so the value is
// trustworthy), and for a version-1 container the plain checksum of the
// bytes with verified=false.  Bytes that do not parse as a container at all
// are an error.
func ContentHash(data []byte) (sum [sha256.Size]byte, verified bool, err error) {
	r, err := NewReader(data)
	if err != nil {
		return sum, false, err
	}
	if h, ok := r.ContentHash(); ok {
		return h, true, nil
	}
	return Checksum(data), false, nil
}

// section is one pending payload inside a Writer.
type section struct {
	tag  uint32
	data []byte
}

// Writer accumulates tagged sections and serializes them behind the fixed
// header and directory.  Sections are emitted in Add order; repeated tags
// are allowed (the bundle encoding stores one section per query).
type Writer struct {
	kind    uint32
	version uint32
	flags   uint32
	secs    []section
}

// NewWriter starts a container of the given object kind.  The header
// defaults to Version1; top-level artifacts call SetVersion(VersionHashed)
// so Finish stamps the content hash, while blobs embedded inside a hashed
// container stay at Version1 (the outer hash covers their bytes).
func NewWriter(kind uint32) *Writer { return &Writer{kind: kind, version: Version1} }

// SetVersion selects the header version Finish emits (Version1 or
// VersionHashed).
func (w *Writer) SetVersion(v uint32) { w.version = v }

// SetFlags stores the 32 header flag bits (kind-specific).
func (w *Writer) SetFlags(f uint32) { w.flags = f }

// Bytes appends a raw byte section.  The slice is retained until Finish.
func (w *Writer) Bytes(tag uint32, b []byte) {
	w.secs = append(w.secs, section{tag, b})
}

// Int32s appends a section holding the values in little-endian order.
func (w *Writer) Int32s(tag uint32, v []int32) {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	w.Bytes(tag, b)
}

// Uint64s appends a section holding the values in little-endian order.
func (w *Writer) Uint64s(tag uint32, v []uint64) {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], x)
	}
	w.Bytes(tag, b)
}

// Strings appends a section holding a string list: a uvarint count followed
// by one uvarint-length-prefixed byte string per entry.
func (w *Writer) Strings(tag uint32, v []string) {
	b := binary.AppendUvarint(nil, uint64(len(v)))
	for _, s := range v {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	w.Bytes(tag, b)
}

func align8(n int) int { return (n + 7) &^ 7 }

// Finish lays the container out: header, directory, then every section at
// an 8-byte-aligned offset.  The result is self-contained and deterministic
// for a given Add sequence.  A VersionHashed writer additionally stamps the
// SHA-256 content hash into the header as the final step, so the emitted
// bytes always verify.
func (w *Writer) Finish() []byte {
	hdr := headerLen(w.version)
	off := hdr + dirEntrySize*len(w.secs) // a multiple of 8 by construction
	offs := make([]int, len(w.secs))
	total := off
	for i, s := range w.secs {
		total = align8(total)
		offs[i] = total
		total += len(s.data)
	}
	out := make([]byte, align8(total))
	copy(out[0:4], Magic)
	binary.LittleEndian.PutUint32(out[4:], w.version)
	binary.LittleEndian.PutUint32(out[8:], w.kind)
	binary.LittleEndian.PutUint32(out[12:], w.flags)
	binary.LittleEndian.PutUint32(out[16:], uint32(len(w.secs)))
	for i, s := range w.secs {
		e := out[hdr+dirEntrySize*i:]
		binary.LittleEndian.PutUint32(e, s.tag)
		binary.LittleEndian.PutUint64(e[8:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		copy(out[offs[i]:], s.data)
	}
	if w.version == VersionHashed {
		sum := contentSum(out)
		copy(out[hashOffset:headerSizeV2], sum[:])
	}
	return out
}

// Section is one decoded directory entry: its tag and the payload bytes,
// which alias the container data (no copy).
type Section struct {
	Tag  uint32
	Data []byte
}

// Reader parses a container header and directory and hands out section
// payloads as subslices of the input — the input may be an mmap'd region,
// and nothing here copies it.
type Reader struct {
	kind    uint32
	version uint32
	flags   uint32
	hash    [sha256.Size]byte // meaningful only when version == VersionHashed
	secs    []Section
}

// NewReader validates the header and the directory (magic, version, every
// offset/length in bounds and 8-byte aligned) without touching any payload
// — except that a VersionHashed container's bytes are re-hashed against the
// header's content hash first, so a corrupted container is rejected with
// ErrHashMismatch before a single section is handed out.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("format: %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("format: bad magic %q", data[0:4])
	}
	r := &Reader{
		version: binary.LittleEndian.Uint32(data[4:]),
		kind:    binary.LittleEndian.Uint32(data[8:]),
		flags:   binary.LittleEndian.Uint32(data[12:]),
	}
	switch r.version {
	case Version1:
	case VersionHashed:
		if len(data) < headerSizeV2 {
			return nil, fmt.Errorf("format: %d bytes is shorter than the %d-byte hashed header", len(data), headerSizeV2)
		}
		copy(r.hash[:], data[hashOffset:headerSizeV2])
		if sum := contentSum(data); sum != r.hash {
			return nil, fmt.Errorf("%w: header declares %x, container hashes to %x", ErrHashMismatch, r.hash, sum)
		}
	default:
		return nil, fmt.Errorf("format: unsupported version %d (want %d or %d)", r.version, Version1, VersionHashed)
	}
	hdr := headerLen(r.version)
	count := binary.LittleEndian.Uint32(data[16:])
	if uint64(count) > uint64(len(data)-hdr)/dirEntrySize {
		return nil, fmt.Errorf("format: directory claims %d sections, input holds at most %d",
			count, (len(data)-hdr)/dirEntrySize)
	}
	r.secs = make([]Section, count)
	for i := range r.secs {
		e := data[hdr+dirEntrySize*i:]
		tag := binary.LittleEndian.Uint32(e)
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 {
			return nil, fmt.Errorf("format: section %d (tag %d) at unaligned offset %d", i, tag, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("format: section %d (tag %d) [%d,+%d) exceeds the %d input bytes",
				i, tag, off, length, len(data))
		}
		r.secs[i] = Section{Tag: tag, Data: data[off : off+length : off+length]}
	}
	return r, nil
}

// Kind returns the object kind from the header.
func (r *Reader) Kind() uint32 { return r.kind }

// Version reports the container format version (Version1 or VersionHashed).
func (r *Reader) Version() uint32 { return r.version }

// ContentHash returns the verified content hash from a VersionHashed
// header. ok is false for Version1 containers, which carry no hash.
func (r *Reader) ContentHash() ([sha256.Size]byte, bool) {
	return r.hash, r.version == VersionHashed
}

// Flags returns the header flag bits.
func (r *Reader) Flags() uint32 { return r.flags }

// Section returns the payload of the first section carrying the tag.
func (r *Reader) Section(tag uint32) ([]byte, bool) {
	for _, s := range r.secs {
		if s.Tag == tag {
			return s.Data, true
		}
	}
	return nil, false
}

// Sections returns the payloads of every section carrying the tag, in
// directory order.
func (r *Reader) Sections(tag uint32) [][]byte {
	var out [][]byte
	for _, s := range r.secs {
		if s.Tag == tag {
			out = append(out, s.Data)
		}
	}
	return out
}

// hostLittleEndian reports whether reinterpreting byte sections as typed
// slices yields little-endian semantics — true on every platform the module
// targets; the decoders fall back to an explicit copy elsewhere.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// Int32s decodes a section as little-endian int32 values.  With zeroCopy the
// returned slice aliases b when the platform and alignment allow it (the
// mmap fast path); otherwise — and always without zeroCopy — the values are
// copied out.
func Int32s(b []byte, zeroCopy bool) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("format: int32 section length %d is not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// Uint64s decodes a section as little-endian uint64 values, aliasing b under
// the same conditions as Int32s.
func Uint64s(b []byte, zeroCopy bool) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("format: uint64 section length %d is not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out, nil
}

// Strings decodes a string-list section written by Writer.Strings.  Every
// length is validated against the remaining input before any allocation, so
// a corrupt count cannot trigger an oversized make.
func Strings(b []byte) ([]string, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("format: string list has no count")
	}
	b = b[sz:]
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("format: string list claims %d entries in %d bytes", n, len(b))
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(b)
		if sz <= 0 || l > uint64(len(b)-sz) {
			return nil, fmt.Errorf("format: string %d overruns its section", i)
		}
		b = b[sz:]
		out = append(out, string(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("format: %d trailing bytes after string list", len(b))
	}
	return out, nil
}
