package format

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestWriterReaderRoundTrip checks tags, order, repeated tags, typed
// sections, and 8-byte section alignment through a full write/read cycle.
func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(KindBundle)
	w.SetFlags(5)
	w.Int32s(1, []int32{-1, 0, 7, 1 << 30})
	w.Uint64s(2, []uint64{0, ^uint64(0), 42})
	w.Strings(3, []string{"", "a", "nested words"})
	w.Bytes(4, []byte{9})     // length 1: the next section must still align
	w.Bytes(4, []byte("two")) // repeated tag
	data := w.Finish()

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindBundle || r.Flags() != 5 {
		t.Fatalf("kind/flags = %d/%d", r.Kind(), r.Flags())
	}
	for _, zeroCopy := range []bool{false, true} {
		sec, ok := r.Section(1)
		if !ok {
			t.Fatal("section 1 missing")
		}
		v, err := Int32s(sec, zeroCopy)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 4 || v[0] != -1 || v[3] != 1<<30 {
			t.Fatalf("int32s (zeroCopy=%v) = %v", zeroCopy, v)
		}
		sec, _ = r.Section(2)
		u, err := Uint64s(sec, zeroCopy)
		if err != nil {
			t.Fatal(err)
		}
		if len(u) != 3 || u[1] != ^uint64(0) {
			t.Fatalf("uint64s (zeroCopy=%v) = %v", zeroCopy, u)
		}
	}
	sec, _ := r.Section(3)
	s, err := Strings(sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[2] != "nested words" {
		t.Fatalf("strings = %v", s)
	}
	blobs := r.Sections(4)
	if len(blobs) != 2 || !bytes.Equal(blobs[0], []byte{9}) || !bytes.Equal(blobs[1], []byte("two")) {
		t.Fatalf("repeated sections = %v", blobs)
	}
	if _, ok := r.Section(99); ok {
		t.Fatal("nonexistent tag found")
	}
}

// TestZeroCopyAliasing pins that the zero-copy views really alias the input
// when aligned, and that the copying mode really does not.
func TestZeroCopyAliasing(t *testing.T) {
	w := NewWriter(KindDNWA)
	w.Int32s(1, []int32{1, 2, 3})
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	sec, _ := r.Section(1)
	view, err := Int32s(sec, true)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := Int32s(sec, false)
	if err != nil {
		t.Fatal(err)
	}
	sec[0] = 0xFF // mutate the backing bytes
	if view[0] != 0xFF {
		t.Error("zero-copy view did not alias the input")
	}
	if copied[0] != 1 {
		t.Error("copying mode aliased the input")
	}
}

// TestReaderRejectsCorruptHeaders feeds malformed containers to NewReader
// and the typed decoders: every one must error, never panic.
func TestReaderRejectsCorruptHeaders(t *testing.T) {
	w := NewWriter(KindDNWA)
	w.Int32s(1, []int32{1, 2, 3})
	valid := w.Finish()

	mutate := func(f func([]byte)) []byte {
		b := bytes.Clone(valid)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":             {},
		"short header":      valid[:10],
		"bad magic":         mutate(func(b []byte) { b[0] = 'x' }),
		"bad version":       mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 9) }),
		"huge count":        mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 1<<30) }),
		"offset overrun":    mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[32:], 1<<40) }),
		"length overrun":    mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[40:], 1<<40) }),
		"unaligned offset":  mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[32:], 49) }),
		"truncated payload": valid[:len(valid)-8],
	}
	for name, b := range cases {
		if _, err := NewReader(b); err == nil {
			t.Errorf("%s: NewReader succeeded", name)
		}
	}
	if _, err := Int32s([]byte{1, 2, 3}, false); err == nil {
		t.Error("Int32s accepted a length not divisible by 4")
	}
	if _, err := Uint64s([]byte{1, 2, 3, 4}, false); err == nil {
		t.Error("Uint64s accepted a length not divisible by 8")
	}
	if _, err := Strings([]byte{}); err == nil {
		t.Error("Strings accepted an empty section")
	}
	if _, err := Strings([]byte{200}); err == nil {
		t.Error("Strings accepted a truncated count")
	}
	if _, err := Strings(binary.AppendUvarint(nil, 1<<40)); err == nil {
		t.Error("Strings accepted an oversized count")
	}
}
