//go:build !unix

package format

import (
	"fmt"
	"os"
)

// Map reads path into memory on platforms without a usable mmap syscall;
// the returned close function is a no-op.  The zero-copy table views still
// apply — they alias the read buffer instead of a mapped region.
func Map(path string) ([]byte, func() error, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("format: %s is empty", path)
	}
	return b, func() error { return nil }, nil
}
