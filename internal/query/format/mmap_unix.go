//go:build unix

package format

import (
	"fmt"
	"os"
	"syscall"
)

// Map opens path for reading and maps it read-only, returning the mapped
// bytes and a close function that unmaps them.  Any number of processes can
// Map the same compiled query set: the pages are shared, so a fleet of
// front-ends pays for one resident copy of the tables.  When the file system
// refuses mmap the data is read into memory instead and the close function
// is a no-op.
func Map(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("format: %s is empty", path)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("format: %s is too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, fmt.Errorf("format: mmap %s: %w", path, err)
		}
		return b, func() error { return nil }, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
