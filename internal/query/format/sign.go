// sign.go implements detached ed25519 signatures over VersionHashed
// containers. The signature does not cover the raw container bytes
// directly: it signs the 32-byte content hash from the v2 header, which
// NewReader has already verified against the bytes. That keeps signing
// and verification O(1) once the hash is known — a server that has
// already opened a bundle can verify a signature against the in-memory
// hash without re-reading the file — while remaining exactly as strong,
// since the hash binds every byte of the container.
//
// Three tiny framed files ride along with the container:
//
//	NWS1 — detached signature envelope (Envelope, 144 bytes)
//	NWK1 — private key seed (32 bytes of ed25519 seed material)
//	NWP1 — public key (32 bytes)
//
// All are fixed-size little-endian structures like the container itself,
// so a corrupted or truncated envelope fails parsing with a typed error
// instead of producing a bogus verification result.
package format

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadSignature is wrapped by Verify and VerifyHash when a structurally
// valid envelope fails cryptographic verification — wrong key, tampered
// container, or corrupted signature bytes.
var ErrBadSignature = errors.New("format: signature verification failed")

// Signature envelope layout (144 bytes, little-endian):
//
//	offset  size  field
//	0       4     magic "NWS1"
//	4       4     envelope version (1)
//	8       4     algorithm (1 = ed25519 over the container content hash)
//	12      4     reserved (0)
//	16      32    signer public key
//	48      32    content hash of the signed container
//	80      64    ed25519 signature over the 32-byte content hash
const (
	sigMagic   = "NWS1"
	sigVersion = 1
	sigAlgEd   = 1

	sigPubOff  = 16
	sigHashOff = sigPubOff + ed25519.PublicKeySize
	sigSigOff  = sigHashOff + HashSize
	sigSize    = sigSigOff + ed25519.SignatureSize
)

// Key file layouts (36 bytes): 4-byte magic then 32 bytes of key material.
// NWK1 holds an ed25519 seed (from which the private key is derived),
// NWP1 holds a public key.
const (
	privMagic   = "NWK1"
	pubMagic    = "NWP1"
	keyFileSize = 4 + 32
)

// Envelope is a parsed detached signature.
type Envelope struct {
	PublicKey []byte         // 32-byte ed25519 public key
	Hash      [HashSize]byte // content hash the signature covers
	Sig       []byte         // 64-byte ed25519 signature
}

// GenerateKey creates a fresh ed25519 keypair and returns the framed
// private (NWK1) and public (NWP1) key files.
func GenerateKey() (priv, pub []byte, err error) {
	public, private, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("format: generating key: %w", err)
	}
	priv = make([]byte, 0, keyFileSize)
	priv = append(priv, privMagic...)
	priv = append(priv, private.Seed()...)
	pub = make([]byte, 0, keyFileSize)
	pub = append(pub, pubMagic...)
	pub = append(pub, public...)
	return priv, pub, nil
}

// ParsePrivateKey parses an NWK1 key file into an ed25519 private key.
func ParsePrivateKey(data []byte) (ed25519.PrivateKey, error) {
	if len(data) != keyFileSize || string(data[:4]) != privMagic {
		return nil, fmt.Errorf("format: not a %s private key file", privMagic)
	}
	return ed25519.NewKeyFromSeed(data[4:]), nil
}

// ParsePublicKey parses an NWP1 key file into an ed25519 public key.
// A bare 32-byte key (no frame) is also accepted, so servers can be
// handed raw key material.
func ParsePublicKey(data []byte) (ed25519.PublicKey, error) {
	if len(data) == ed25519.PublicKeySize {
		return ed25519.PublicKey(append([]byte(nil), data...)), nil
	}
	if len(data) != keyFileSize || string(data[:4]) != pubMagic {
		return nil, fmt.Errorf("format: not a %s public key file", pubMagic)
	}
	return ed25519.PublicKey(append([]byte(nil), data[4:]...)), nil
}

// Sign produces a detached NWS1 envelope over a VersionHashed container.
// Version1 containers carry no content hash and cannot be signed —
// re-marshal them first.
func Sign(priv ed25519.PrivateKey, container []byte) ([]byte, error) {
	r, err := NewReader(container)
	if err != nil {
		return nil, err
	}
	hash, ok := r.ContentHash()
	if !ok {
		return nil, fmt.Errorf("format: cannot sign a version %d container (no content hash; re-marshal as version %d)", r.Version(), VersionHashed)
	}
	sig := ed25519.Sign(priv, hash[:])
	env := make([]byte, sigSize)
	copy(env, sigMagic)
	binary.LittleEndian.PutUint32(env[4:], sigVersion)
	binary.LittleEndian.PutUint32(env[8:], sigAlgEd)
	copy(env[sigPubOff:], priv.Public().(ed25519.PublicKey))
	copy(env[sigHashOff:], hash[:])
	copy(env[sigSigOff:], sig)
	return env, nil
}

// ParseEnvelope validates the framing of a detached signature. It does
// not verify the signature — use Verify or VerifyHash for that.
func ParseEnvelope(data []byte) (*Envelope, error) {
	if len(data) != sigSize {
		return nil, fmt.Errorf("format: signature envelope is %d bytes, want %d", len(data), sigSize)
	}
	if string(data[:4]) != sigMagic {
		return nil, fmt.Errorf("format: bad signature magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != sigVersion {
		return nil, fmt.Errorf("format: unsupported signature envelope version %d", v)
	}
	if a := binary.LittleEndian.Uint32(data[8:]); a != sigAlgEd {
		return nil, fmt.Errorf("format: unsupported signature algorithm %d", a)
	}
	// The reserved field must be zero so envelopes stay canonical: two
	// distinct byte strings never verify as the same signature.
	if r := binary.LittleEndian.Uint32(data[12:]); r != 0 {
		return nil, fmt.Errorf("format: signature envelope reserved field is %d, want 0", r)
	}
	e := &Envelope{
		PublicKey: append([]byte(nil), data[sigPubOff:sigPubOff+ed25519.PublicKeySize]...),
		Sig:       append([]byte(nil), data[sigSigOff:sigSize]...),
	}
	copy(e.Hash[:], data[sigHashOff:sigSigOff])
	return e, nil
}

// VerifyHash checks a detached envelope against a known content hash.
// pub is an NWP1 key file or bare 32-byte key. The envelope's embedded
// public key must match pub — an attacker must not get to choose the
// verification key — and its embedded hash must match the container's.
func VerifyHash(pub []byte, envelope []byte, hash [HashSize]byte) error {
	key, err := ParsePublicKey(pub)
	if err != nil {
		return err
	}
	env, err := ParseEnvelope(envelope)
	if err != nil {
		return err
	}
	if !key.Equal(ed25519.PublicKey(env.PublicKey)) {
		return fmt.Errorf("%w: envelope signed by a different key", ErrBadSignature)
	}
	if env.Hash != hash {
		return fmt.Errorf("%w: envelope covers hash %x, container hashes to %x", ErrBadSignature, env.Hash, hash)
	}
	if !ed25519.Verify(key, env.Hash[:], env.Sig) {
		return ErrBadSignature
	}
	return nil
}

// Verify checks a detached envelope against a container. The container's
// own content hash is verified first (NewReader), then the signature over
// it. Version1 containers cannot be verified and return an error.
func Verify(pub []byte, envelope []byte, container []byte) error {
	r, err := NewReader(container)
	if err != nil {
		return err
	}
	hash, ok := r.ContentHash()
	if !ok {
		return fmt.Errorf("format: cannot verify a version %d container (no content hash)", r.Version())
	}
	return VerifyHash(pub, envelope, hash)
}
