package format

import (
	"bytes"
	"errors"
	"testing"
)

// signedContainer builds a small VersionHashed container with a couple of
// sections — enough structure for the hash to cover header, directory,
// payloads, and padding.
func signedContainer(t testing.TB) []byte {
	t.Helper()
	w := NewWriter(KindBundle)
	w.SetVersion(VersionHashed)
	w.Uint64s(1, []uint64{7, 11, 13})
	w.Bytes(2, []byte("payload bytes"))
	w.Strings(3, []string{"a", "b"})
	return w.Finish()
}

// TestSignVerifyRoundTrip pins the full sign/verify loop: a generated key
// signs a hashed container, the envelope parses, and Verify/VerifyHash
// both accept it.
func TestSignVerifyRoundTrip(t *testing.T) {
	privFile, pubFile, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	priv, err := ParsePrivateKey(privFile)
	if err != nil {
		t.Fatal(err)
	}
	data := signedContainer(t)
	sig, err := Sign(priv, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pubFile, sig, data); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	env, err := ParseEnvelope(sig)
	if err != nil {
		t.Fatal(err)
	}
	sum, verified, err := ContentHash(data)
	if err != nil || !verified {
		t.Fatalf("ContentHash: %v verified=%v", err, verified)
	}
	if env.Hash != sum {
		t.Error("envelope hash differs from the container's content hash")
	}
	if err := VerifyHash(pubFile, sig, sum); err != nil {
		t.Fatalf("VerifyHash: %v", err)
	}
	// The bare 32-byte public key (no NWP1 frame) must also verify.
	if err := Verify(pubFile[4:], sig, data); err != nil {
		t.Fatalf("Verify with bare key: %v", err)
	}
}

// TestVerifyRejections pins every way verification must fail: wrong key,
// corrupted signature bytes, corrupted hash field, tampered container,
// malformed envelopes, malformed keys, and unsigned v1 containers.
func TestVerifyRejections(t *testing.T) {
	privFile, pubFile, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := ParsePrivateKey(privFile)
	data := signedContainer(t)
	sig, err := Sign(priv, data)
	if err != nil {
		t.Fatal(err)
	}

	_, otherPub, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(otherPub, sig, data); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong key: got %v, want ErrBadSignature", err)
	}

	// Flip one bit in every byte of the envelope: each mutation must fail
	// verification (magic/version/alg break parsing, key/hash/sig bytes
	// break the cryptographic check) and never panic.
	for i := range sig {
		mut := bytes.Clone(sig)
		mut[i] ^= 1
		if err := Verify(pubFile, mut, data); err == nil {
			t.Fatalf("envelope with byte %d flipped verified", i)
		}
	}

	// Tampering with the container flips its content hash, so NewReader
	// inside Verify rejects it before any signature math.
	mut := bytes.Clone(data)
	mut[len(mut)-1] ^= 1
	if err := Verify(pubFile, sig, mut); !errors.Is(err, ErrHashMismatch) {
		t.Errorf("tampered container: got %v, want ErrHashMismatch", err)
	}

	for _, bad := range [][]byte{nil, {}, sig[:sigSize-1], append(bytes.Clone(sig), 0)} {
		if err := Verify(pubFile, bad, data); err == nil {
			t.Errorf("%d-byte envelope verified", len(bad))
		}
	}

	// A v1 container has no hash: Sign and Verify must both refuse.
	w := NewWriter(KindBundle)
	w.Uint64s(1, []uint64{1})
	v1 := w.Finish()
	if _, err := Sign(priv, v1); err == nil {
		t.Error("Sign accepted an unhashed v1 container")
	}
	if err := Verify(pubFile, sig, v1); err == nil {
		t.Error("Verify accepted an unhashed v1 container")
	}

	if _, err := ParsePrivateKey(pubFile); err == nil {
		t.Error("ParsePrivateKey accepted a public key file")
	}
	if _, err := ParsePublicKey(privFile); err == nil {
		t.Error("ParsePublicKey accepted a private key file")
	}
	if _, err := ParsePublicKey(pubFile[:10]); err == nil {
		t.Error("ParsePublicKey accepted a truncated key file")
	}
}

// FuzzSignatureEnvelope feeds arbitrary bytes through the envelope parser
// and both verification entry points: malformed envelopes must fail with
// an error, never panic, and no mutation of a valid envelope may verify
// under the original key unless it is byte-identical to the original.
func FuzzSignatureEnvelope(f *testing.F) {
	privFile, pubFile, err := GenerateKey()
	if err != nil {
		f.Fatal(err)
	}
	priv, _ := ParsePrivateKey(privFile)
	data := signedContainer(f)
	sig, err := Sign(priv, data)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sig)
	f.Add([]byte("NWS1"))
	f.Add([]byte{})
	f.Add(bytes.Clone(sig[:80]))
	mut := bytes.Clone(sig)
	mut[100] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, envelope []byte) {
		if len(envelope) > 1<<16 {
			envelope = envelope[:1<<16]
		}
		env, err := ParseEnvelope(envelope)
		if err == nil && env == nil {
			t.Fatal("ParseEnvelope returned neither envelope nor error")
		}
		verr := Verify(pubFile, envelope, data)
		if verr == nil && !bytes.Equal(envelope, sig) {
			t.Fatal("a forged envelope verified")
		}
		sum, _, _ := ContentHash(data)
		if err := VerifyHash(pubFile, envelope, sum); err == nil && !bytes.Equal(envelope, sig) {
			t.Fatal("a forged envelope passed VerifyHash")
		}
	})
}
