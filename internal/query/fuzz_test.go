package query

import (
	"math/rand"
	"sync"
	"testing"
)

// fuzzAut is one cached fuzz subject: a random NNWA compiled both ways plus
// its determinized DNWA, so every fuzz iteration reuses the (comparatively
// expensive) Determinize call.
type fuzzAut struct {
	c   *CompiledN
	det *Compiled
}

var (
	fuzzMu   sync.Mutex
	fuzzAuts = map[uint8]*fuzzAut{}
)

// fuzzAutomaton derives a small random NNWA from the seed byte, with the
// occasional extra start and accept state so the subset simulation starts
// and finishes on non-singleton sets.
func fuzzAutomaton(seed uint8) *fuzzAut {
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	if a, ok := fuzzAuts[seed]; ok {
		return a
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	// 2–3 states keeps Determinize (2^(s²) worst case) fast for every seed,
	// so no single fuzz exec can stall the 10-second CI smoke run.
	states := 2 + rng.Intn(2)
	n := randomNNWA(rng, states)
	if rng.Intn(2) == 0 {
		n.AddStart(rng.Intn(states))
	}
	if rng.Intn(2) == 0 {
		n.AddAccept(rng.Intn(states))
	}
	a := &fuzzAut{c: CompileN(n), det: Compile(n.Determinize())}
	fuzzAuts[seed] = a
	return a
}

// FuzzNNWARunnerDifferential is the ISSUE's differential fuzz target: an
// arbitrary byte string decodes to an arbitrary nested word — each byte
// picks an event kind (call / internal / return) and a symbol (two
// in-alphabet labels plus the out-of-alphabet ID), so well-matched words,
// pending calls, and pending returns all occur — and the bitset state-set
// runner, the []bool matrix reference runner, and Determinize+DNWA must
// report the same verdict after every prefix.
func FuzzNNWARunnerDifferential(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(7), []byte{0, 0, 4, 2, 2, 5})   // nested calls, matched and pending
	f.Add(uint8(42), []byte{2, 5, 8, 1, 0, 2})  // pending returns first
	f.Add(uint8(255), []byte{6, 7, 8, 6, 7, 8}) // out-of-alphabet symbols
	f.Fuzz(func(t *testing.T, seed uint8, word []byte) {
		if len(word) > 4096 {
			word = word[:4096] // bound stack depth and per-input runtime
		}
		aut := fuzzAutomaton(seed)
		bit := aut.c.NewRunner()
		matrix := aut.c.NewReferenceRunner()
		det := aut.det.NewRunner()
		for pos, b := range word {
			kind := int(b) % 3
			sym := int(b/3) % 3 // 0,1 are in-alphabet; 2 is the out-of-alphabet ID
			for _, r := range []Runner{bit, matrix, det} {
				switch kind {
				case 0:
					r.StepCall(sym)
				case 1:
					r.StepInternal(sym)
				default:
					r.StepReturn(sym)
				}
			}
			bv, mv, dv := bit.Accepting(), matrix.Accepting(), det.Accepting()
			if bv != mv || bv != dv {
				t.Fatalf("seed %d, prefix %d (kind %d, sym %d): bitset %v, matrix %v, Determinize+DNWA %v",
					seed, pos+1, kind, sym, bv, mv, dv)
			}
		}
	})
}
