// Package plan decides how a compiled query bundle is executed: which
// queries are product-compiled into one shared automaton and which stay
// fanned out to their own runners.
//
// Nested-word automata are closed under product with multiplicative state
// cost (the source paper's Section 3.2), so a cluster of structurally
// similar queries can be answered by a single automaton whose states carry a
// per-query accept bitmask — per-event cost then stops scaling with the
// cluster size.  The same multiplicative bound is the hazard: a bad cluster
// multiplies to an enormous state space.  The planner therefore works under
// a state budget.  Queries are grouped by compiled form (deterministic
// products and joint nondeterministic unions cannot mix), chunked into
// clusters of at most ClusterSize in bundle order, and each cluster is
// product-compiled; a cluster whose product exceeds StateBudget falls back
// to per-query fan-out, verdicts unchanged (TestPlannerBudgetFallback pins
// this).  Experiment E28 measures where the crossover sits; see
// docs/COMPILATION.md for the pipeline this package sits in the middle of.
package plan

import (
	"errors"
	"fmt"

	"repro/internal/query"
)

// DefaultStateBudget is the product state cap used when Options leaves
// StateBudget zero: small enough that a pathological cluster degrades to
// fan-out instead of a giant table, large enough for the clusters E28 shows
// winning.
const DefaultStateBudget = 4096

// DefaultClusterSize is the cluster width used when Options leaves
// ClusterSize zero — the "≥8 structurally similar queries" region where E28
// shows the product beating fan-out, without betting the whole bundle on
// one product.
const DefaultClusterSize = 8

// Options tunes the planner.  The zero value means the defaults.
type Options struct {
	// StateBudget caps each product's state count; a cluster whose product
	// would exceed it is fanned out instead.  Zero means
	// DefaultStateBudget; negative means no product compilation at all
	// (plan everything as fan-out).
	StateBudget int
	// ClusterSize is the maximum number of queries per product cluster.
	// Zero means DefaultClusterSize; values below 2 disable clustering,
	// since a one-query product answers nothing a plain runner doesn't.
	ClusterSize int
}

// Decision reports what the planner did: the clusters that were
// product-compiled (bundle indices, in mask-bit order), the indices left
// fanned out, and the total product state count.
type Decision struct {
	Groups [][]int // product-compiled clusters, one index list each
	Solo   []int   // indices answered by their own runner
	States int     // summed state count of all compiled products
}

// Bundle plans a compiled bundle: structurally compatible queries are
// chunked into clusters and product-compiled, over-budget clusters fall
// back to fan-out, and the result is a planned bundle with identical names,
// order, and verdicts.  The input bundle is not modified and must itself be
// unplanned.
func Bundle(b *query.Bundle, opts Options) (*query.Bundle, Decision, error) {
	if len(b.Groups()) != 0 {
		return nil, Decision{}, fmt.Errorf("plan: bundle is already planned (%d groups)", len(b.Groups()))
	}
	if opts.StateBudget == 0 {
		opts.StateBudget = DefaultStateBudget
	}
	if opts.ClusterSize == 0 {
		opts.ClusterSize = DefaultClusterSize
	}

	var dec Decision
	var clusters [][]int
	var products []*query.CompiledProduct
	solo := func(indices ...int) { dec.Solo = append(dec.Solo, indices...) }

	// Partition by compiled form, keeping bundle order within each class so
	// DSL-emitted runs of similar queries land in the same cluster.
	var det, ndet []int
	for i := 0; i < b.Len(); i++ {
		switch b.Query(i).(type) {
		case *query.Compiled:
			det = append(det, i)
		case *query.CompiledN:
			ndet = append(ndet, i)
		default:
			solo(i)
		}
	}

	for _, class := range [][]int{det, ndet} {
		for len(class) > 0 {
			n := opts.ClusterSize
			if n > len(class) {
				n = len(class)
			}
			cluster := class[:n]
			class = class[n:]
			if n < 2 || opts.StateBudget < 0 {
				solo(cluster...)
				continue
			}
			members := make([]query.Query, n)
			for j, idx := range cluster {
				members[j] = b.Query(idx)
			}
			p, err := query.CompileProduct(members, opts.StateBudget)
			switch {
			case errors.Is(err, query.ErrStateBudget):
				// The multiplicative blow-up case: this cluster is cheaper
				// fanned out than materialized.
				solo(cluster...)
			case err != nil:
				return nil, Decision{}, fmt.Errorf("plan: cluster %v: %w", cluster, err)
			default:
				clusters = append(clusters, cluster)
				products = append(products, p)
				dec.Groups = append(dec.Groups, cluster)
				dec.States += p.NumStates()
			}
		}
	}

	planned, err := query.NewPlannedBundle(b, clusters, products)
	if err != nil {
		return nil, Decision{}, fmt.Errorf("plan: %w", err)
	}
	return planned, dec, nil
}
