package plan

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/query"
)

// buildBundle compiles a mixed bundle: n deterministic ContainsLabel-style
// queries followed by m nondeterministic ones, all over the {a,b} alphabet.
func buildBundle(t *testing.T, det, ndet int) *query.Bundle {
	t.Helper()
	alpha := generator.AB
	b := query.NewBundle(alpha)
	labels := []string{"a", "b"}
	for i := 0; i < det; i++ {
		q := query.Compile(query.LinearOrder(alpha, labels[i%2], labels[(i+1)%2]))
		if err := b.Add(detName(i), q); err != nil {
			t.Fatalf("Add det %d: %v", i, err)
		}
	}
	for i := 0; i < ndet; i++ {
		q := query.CompileN(query.PathQuery(alpha, labels[i%2], labels[(i+1)%2]).ToNondeterministic())
		if err := b.Add(ndetName(i), q); err != nil {
			t.Fatalf("Add ndet %d: %v", i, err)
		}
	}
	return b
}

func detName(i int) string  { return "det-" + string(rune('a'+i)) }
func ndetName(i int) string { return "ndet-" + string(rune('a'+i)) }

// verdictsAgree runs every query of the planned bundle — products and solo
// alike — against the unplanned per-query oracle on random words.
func verdictsAgree(t *testing.T, src, planned *query.Bundle) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	words := make([]*nestedword.NestedWord, 150)
	for i := range words {
		if i%3 == 0 {
			words[i] = generator.RandomNestedWord(rng, rng.Intn(40), []string{"a", "b", "zz"})
		} else {
			words[i] = generator.RandomDocument(rng, 2+rng.Intn(40), 5, []string{"a", "b"})
		}
	}
	alpha := src.Alphabet()
	got := make([]bool, planned.Len())
	for wi, w := range words {
		for i := range got {
			got[i] = false
		}
		for i := 0; i < planned.Len(); i++ {
			if q := planned.Query(i); q != nil {
				got[i] = query.RunWord(q.NewRunner(), alpha, w)
			}
		}
		for _, g := range planned.Groups() {
			pr := g.Product.NewProductRunner()
			row := bitset.New(g.Product.QueryCount())
			runProductWord(pr, alpha, w, row)
			for j, idx := range g.Indices {
				got[idx] = row.Has(j)
			}
		}
		for i := 0; i < src.Len(); i++ {
			want := query.RunWord(src.Query(i).NewRunner(), alpha, w)
			if got[i] != want {
				t.Fatalf("word %d, query %q: planned %v, fan-out %v on %v",
					wi, src.Name(i), got[i], want, w)
			}
		}
	}
}

func runProductWord(r query.ProductRunner, alpha interface {
	Index(string) (int, bool)
	Size() int
}, n *nestedword.NestedWord, dst bitset.Row) {
	r.Reset()
	for i := 0; i < n.Len(); i++ {
		sym, ok := alpha.Index(n.SymbolAt(i))
		if !ok {
			sym = alpha.Size()
		}
		switch n.KindAt(i) {
		case nestedword.Call:
			r.StepCall(sym)
		case nestedword.Return:
			r.StepReturn(sym)
		default:
			r.StepInternal(sym)
		}
	}
	r.Verdicts(dst)
}

func TestPlannerClustersByForm(t *testing.T) {
	src := buildBundle(t, 5, 3)
	planned, dec, err := Bundle(src, Options{})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	// 5 deterministic + 3 nondeterministic queries at cluster size 8: one
	// product per form class, nothing solo.
	if len(dec.Groups) != 2 || len(dec.Solo) != 0 {
		t.Fatalf("decision = %+v, want 2 groups and 0 solo", dec)
	}
	if got := len(planned.Groups()); got != 2 {
		t.Fatalf("planned bundle has %d groups, want 2", got)
	}
	if dec.States <= 0 {
		t.Fatalf("decision reports %d product states", dec.States)
	}
	if planned.Len() != src.Len() {
		t.Fatalf("planned bundle holds %d names, want %d", planned.Len(), src.Len())
	}
	for gi, g := range planned.Groups() {
		if det := g.Product.Deterministic(); det != (gi == 0) {
			t.Errorf("group %d: Deterministic = %v (clusters should be det then ndet)", gi, det)
		}
	}
	verdictsAgree(t, src, planned)
}

func TestPlannerClusterSizeChunks(t *testing.T) {
	src := buildBundle(t, 5, 0)
	planned, dec, err := Bundle(src, Options{ClusterSize: 2})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	// 5 queries at cluster size 2: two products of 2 and one singleton left
	// solo (a one-query product answers nothing a plain runner doesn't).
	if len(dec.Groups) != 2 || len(dec.Solo) != 1 {
		t.Fatalf("decision = %+v, want 2 groups and 1 solo", dec)
	}
	verdictsAgree(t, src, planned)
}

// TestPlannerBudgetFallback is the satellite criterion: a cluster whose
// product exceeds the state budget degrades to per-query fan-out — no
// error, no product group, identical verdicts.
func TestPlannerBudgetFallback(t *testing.T) {
	src := buildBundle(t, 6, 2)
	planned, dec, err := Bundle(src, Options{StateBudget: 2})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if len(dec.Groups) != 0 {
		t.Fatalf("budget 2 still produced %d product groups", len(dec.Groups))
	}
	if len(dec.Solo) != src.Len() {
		t.Fatalf("budget 2 left %d of %d queries solo", len(dec.Solo), src.Len())
	}
	if dec.States != 0 {
		t.Fatalf("budget 2 reports %d product states", dec.States)
	}
	if got := len(planned.Groups()); got != 0 {
		t.Fatalf("planned bundle has %d groups, want 0", got)
	}
	for i := 0; i < planned.Len(); i++ {
		if planned.Query(i) == nil {
			t.Fatalf("fallback left query %q without a runner", planned.Name(i))
		}
	}
	verdictsAgree(t, src, planned)
}

func TestPlannerDisabled(t *testing.T) {
	src := buildBundle(t, 4, 0)
	// Negative budget: plan everything as fan-out.
	planned, dec, err := Bundle(src, Options{StateBudget: -1})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if len(dec.Groups) != 0 || len(dec.Solo) != 4 {
		t.Fatalf("decision = %+v, want all solo", dec)
	}
	// Cluster size 1: likewise.
	_, dec, err = Bundle(src, Options{ClusterSize: 1})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if len(dec.Groups) != 0 || len(dec.Solo) != 4 {
		t.Fatalf("cluster size 1 decision = %+v, want all solo", dec)
	}
	_ = planned
}

func TestPlannerRejectsPlannedInput(t *testing.T) {
	src := buildBundle(t, 4, 0)
	planned, _, err := Bundle(src, Options{})
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if _, _, err := Bundle(planned, Options{}); err == nil {
		t.Fatal("planning an already-planned bundle did not fail")
	}
}
