package query

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/query/format"
)

// plannedGoldenBundle product-compiles the golden bundle's two deterministic
// queries into one group, leaving the nondeterministic query solo.
func plannedGoldenBundle(t *testing.T) *Bundle {
	t.Helper()
	src := goldenBundle(t)
	p, err := CompileProduct([]Query{src.Query(0), src.Query(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := NewPlannedBundle(src, [][]int{{0, 1}}, []*CompiledProduct{p})
	if err != nil {
		t.Fatal(err)
	}
	return planned
}

// checkProductAgreement replays random words through a product runner and the
// member queries, failing on any demuxed verdict divergence.
func checkProductAgreement(t *testing.T, label string, p *CompiledProduct, members []Query, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(321))
	words, _ := randomWords(rng, trials, []string{"a", "b", "zz"})
	alpha := p.Alphabet()
	r := p.NewProductRunner()
	row := bitset.New(p.QueryCount())
	for wi, w := range words {
		runProductWord(r, alpha, w, row)
		for j, m := range members {
			if want := RunWord(m.NewRunner(), alpha, w); row.Has(j) != want {
				t.Fatalf("%s: word %d, member %d: product %v, member %v on %v",
					label, wi, j, row.Has(j), want, w)
			}
		}
	}
}

// TestProductMarshalRoundTrip round-trips both product shapes through
// Marshal/UnmarshalProduct: byte-identical re-encoding, preserved shape, and
// verdict agreement against the original members.
func TestProductMarshalRoundTrip(t *testing.T) {
	members, _ := detProductMembers()
	det, err := CompileProduct(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := CompileProduct([]Query{CompileN(goldenNNWA()), CompileN(goldenNNWA())}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		p       *CompiledProduct
		members []Query
	}{
		{"det", det, members},
		{"joint", joint, []Query{CompileN(goldenNNWA()), CompileN(goldenNNWA())}},
	} {
		data := tc.p.Marshal()
		dec, err := UnmarshalProduct(data)
		if err != nil {
			t.Fatalf("%s: UnmarshalProduct: %v", tc.name, err)
		}
		if dec.QueryCount() != tc.p.QueryCount() || dec.NumStates() != tc.p.NumStates() ||
			dec.Deterministic() != tc.p.Deterministic() {
			t.Fatalf("%s: decoded shape %d/%d/%v, want %d/%d/%v", tc.name,
				dec.QueryCount(), dec.NumStates(), dec.Deterministic(),
				tc.p.QueryCount(), tc.p.NumStates(), tc.p.Deterministic())
		}
		if !dec.Alphabet().Equal(tc.p.Alphabet()) {
			t.Fatalf("%s: decoded alphabet %v", tc.name, dec.Alphabet())
		}
		if again := dec.Marshal(); !bytes.Equal(again, data) {
			t.Fatalf("%s: decode→re-encode changed the bytes", tc.name)
		}
		checkProductAgreement(t, tc.name, dec, tc.members, 200)
	}
}

// TestPlannedBundleRoundTrip round-trips a planned bundle — one product
// group plus a solo query — through Marshal and both load paths.
func TestPlannedBundleRoundTrip(t *testing.T) {
	planned := plannedGoldenBundle(t)
	src := goldenBundle(t)
	data := planned.Marshal()

	for _, load := range []struct {
		name string
		fn   func([]byte) (*Bundle, error)
	}{
		{"UnmarshalBundle", UnmarshalBundle},
		{"LoadBundleMapped", LoadBundleMapped},
	} {
		dec, err := load.fn(data)
		if err != nil {
			t.Fatalf("%s: %v", load.name, err)
		}
		if dec.Len() != src.Len() {
			t.Fatalf("%s: %d names, want %d", load.name, dec.Len(), src.Len())
		}
		groups := dec.Groups()
		if len(groups) != 1 {
			t.Fatalf("%s: %d groups, want 1", load.name, len(groups))
		}
		g := groups[0]
		if len(g.Indices) != 2 || g.Indices[0] != 0 || g.Indices[1] != 1 {
			t.Fatalf("%s: group indices %v, want [0 1]", load.name, g.Indices)
		}
		// Grouped names have no solo query; the solo one keeps its runner.
		if dec.Query(0) != nil || dec.Query(1) != nil {
			t.Fatalf("%s: grouped queries still have solo runners", load.name)
		}
		if dec.Query(2) == nil {
			t.Fatalf("%s: solo query lost its runner", load.name)
		}
		checkProductAgreement(t, load.name, g.Product, []Query{src.Query(0), src.Query(1)}, 150)
		checkQueryAgreement(t, load.name+" solo", src.Query(2), dec.Query(2), 120)
		if again := dec.Marshal(); !bytes.Equal(again, data) {
			t.Fatalf("%s: decode→re-encode changed the bytes", load.name)
		}
	}
}

// TestNewPlannedBundleErrors pins the planned-bundle construction
// invariants.
func TestNewPlannedBundleErrors(t *testing.T) {
	src := goldenBundle(t)
	p, err := CompileProduct([]Query{src.Query(0), src.Query(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		clusters [][]int
		products []*CompiledProduct
	}{
		{"length mismatch", [][]int{{0, 1}}, nil},
		{"nil product", [][]int{{0, 1}}, []*CompiledProduct{nil}},
		{"count mismatch", [][]int{{0}}, []*CompiledProduct{p}},
		{"index out of range", [][]int{{0, 9}}, []*CompiledProduct{p}},
		{"duplicate index", [][]int{{0, 0}}, []*CompiledProduct{p}},
	}
	for _, tc := range cases {
		if _, err := NewPlannedBundle(src, tc.clusters, tc.products); err == nil {
			t.Errorf("%s: NewPlannedBundle succeeded", tc.name)
		}
	}
	planned := plannedGoldenBundle(t)
	if _, err := NewPlannedBundle(planned, nil, nil); err == nil {
		t.Error("planning an already-planned bundle succeeded")
	}
}

// TestPlannedBundleDecodeErrors corrupts a valid planned marshal in targeted
// ways: every mutation must fail cleanly.
func TestPlannedBundleDecodeErrors(t *testing.T) {
	data := plannedGoldenBundle(t).Marshal()
	for i := 0; i < len(data); i += 11 {
		if _, err := UnmarshalBundle(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	// A planned container is still a bundle: the per-query loaders reject it.
	if _, err := UnmarshalProduct(data); err == nil {
		t.Error("UnmarshalProduct accepted a planned bundle container")
	}
	// A bare product container is not a bundle.
	members, _ := detProductMembers()
	p, err := CompileProduct(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBundle(p.Marshal()); err == nil {
		t.Error("UnmarshalBundle accepted a bare product container")
	}
	// A bare product blob has no alphabet section of its own.
	if _, err := UnmarshalProduct(p.encode(false, nil, format.VersionHashed)); err == nil {
		t.Error("UnmarshalProduct accepted a product with no alphabet")
	}
}
