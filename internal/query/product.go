package query

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/bitset"
)

// This file is the product-compilation layer: it turns a cluster of compiled
// queries over one shared alphabet into a single automaton that answers all
// of them in one pass, so per-event cost stops scaling with the number of
// registered queries (the ROADMAP's "biggest remaining lever on per-event
// cost at high query counts").
//
// Two shapes exist, matching the two compiled forms:
//
//   - Deterministic clusters (*Compiled members) use the classic product of
//     Section 3.2: a product state is a tuple of member states, transitions
//     go componentwise, and only the tuples actually reachable through the
//     call/internal/return closure are materialized.  The per-event cost of
//     the product runner is that of ONE deterministic runner — two or three
//     indexed loads — regardless of how many members the cluster has.
//   - Nondeterministic clusters (*CompiledN members) use the disjoint union
//     stepped jointly: the members' state spaces are concatenated into one
//     CompiledN whose bitset runner advances every member's state set in the
//     same word-parallel Gather sweeps, amortizing the per-event loop and
//     the per-element stack bookkeeping across the cluster.  Blocks are
//     disjoint — no transition crosses a member boundary — so the union run
//     restricted to member j's block is exactly member j's own run, pending
//     returns included (the Section 3.1 stitch pairs a block state only
//     with that block's own initial states, because cross-block (lin, hier)
//     pairs have no return transitions).
//
// Either way, acceptance is a per-query bitmask (a bitset.Row over member
// indices per product state for the deterministic product; one
// accepting-state row per member for the joint union), and a ProductRunner
// demuxes that mask back into the member verdicts.  Products carry the
// multiplicative state cost the paper proves closure under (Section 3.2),
// which is exactly why CompileProduct takes a state budget: a cluster whose
// reachable product outgrows the budget is rejected with ErrStateBudget, and
// the planner (internal/query/plan) falls back to per-query fan-out for it.

// ErrStateBudget is reported by CompileProduct when the product's state
// space would exceed the caller's budget.  Callers — the planner above all —
// treat it as "fan this cluster out per query" rather than as a failure.
var ErrStateBudget = errors.New("query: product exceeds the state budget")

// ProductRunner is the streaming face of a product-compiled cluster: the
// same three Step calls as Runner, but acceptance is a bitmask over the
// cluster's member queries instead of a single verdict.  Like Runner, a
// ProductRunner owns its hierarchical stack and is not safe for concurrent
// use.
type ProductRunner interface {
	// StepCall consumes an element-open event.
	StepCall(sym int)
	// StepInternal consumes a text event.
	StepInternal(sym int)
	// StepReturn consumes an element-close event.  On an empty stack the
	// event is a pending return for every member at once, per Section 3.1.
	StepReturn(sym int)
	// Verdicts overwrites dst — a row of at least QueryCount bits — with
	// the per-member verdicts for the stream consumed so far, viewed as a
	// complete nested word: bit j is member j's verdict.
	Verdicts(dst bitset.Row)
	// Reset returns the runner to the start of a new document, keeping its
	// allocations.
	Reset()
}

// CompiledProduct is an immutable product-compiled query cluster: one
// automaton whose accept structure is a per-query bitmask, answering
// QueryCount member queries at once.  Build one with CompileProduct, or let
// the planner (internal/query/plan) cluster a whole bundle; the engine
// dispatches one ProductRunner per cluster and demuxes the verdict mask back
// to the member names.
type CompiledProduct struct {
	inner Query // *Compiled (deterministic product) or *CompiledN (joint union)
	nq    int   // member query count

	// mask is the accept bitmask slab, maskW words per row.  For a
	// deterministic product it has one row per product state, maskW =
	// bitset.Words(nq): bit j of row q means member j accepts in product
	// state q.  For a joint union it has one row per member, maskW =
	// inner.w: row j holds member j's accepting states within the union
	// state space.
	mask  []uint64
	maskW int

	// fmtVersion is the container version this product was decoded from
	// (0 for a freshly compiled one); Marshal re-emits it.
	fmtVersion uint32
}

// Alphabet returns the shared alphabet the cluster was compiled over.
func (p *CompiledProduct) Alphabet() *alphabet.Alphabet { return p.inner.Alphabet() }

// QueryCount returns the number of member queries the product answers.
func (p *CompiledProduct) QueryCount() int { return p.nq }

// NumStates returns the state count of the shared automaton: reachable
// tuples for a deterministic product, the summed member states for a joint
// union.
func (p *CompiledProduct) NumStates() int {
	switch c := p.inner.(type) {
	case *Compiled:
		return c.num
	case *CompiledN:
		return c.num
	}
	return 0
}

// Deterministic reports whether the product is a deterministic tuple product
// (as opposed to a jointly-stepped nondeterministic union).
func (p *CompiledProduct) Deterministic() bool {
	_, ok := p.inner.(*Compiled)
	return ok
}

// NewProductRunner returns a fresh runner positioned at the document start.
func (p *CompiledProduct) NewProductRunner() ProductRunner {
	switch c := p.inner.(type) {
	case *Compiled:
		return &detProductRunner{p: p, c: c, state: c.start}
	case *CompiledN:
		return &jointProductRunner{p: p, r: c.newBitsetRunner()}
	}
	return nil
}

// CompileProduct compiles a cluster of member queries over one shared
// alphabet into a single CompiledProduct.  All members must be the same
// compiled form: *Compiled members yield the deterministic tuple product,
// *CompiledN members the jointly-stepped union.  budget caps the product's
// state count (≤ 0 means the serialization limit); exceeding it returns
// ErrStateBudget, the signal the planner downgrades on.  Member verdicts are
// preserved exactly: bit j of the runner's verdict mask always equals what
// members[j]'s own runner would report on the same stream.
func CompileProduct(members []Query, budget int) (*CompiledProduct, error) {
	if len(members) == 0 {
		return nil, errors.New("query: product of zero queries")
	}
	if len(members) > maxStates {
		return nil, fmt.Errorf("query: product of %d queries exceeds %d", len(members), maxStates)
	}
	if budget <= 0 || budget > maxStates {
		budget = maxStates
	}
	alpha := members[0].Alphabet()
	for i, m := range members[1:] {
		if !alpha.Equal(m.Alphabet()) {
			return nil, fmt.Errorf("query: product member %d uses alphabet %v, member 0 uses %v",
				i+1, m.Alphabet(), alpha)
		}
	}
	switch members[0].(type) {
	case *Compiled:
		ms := make([]*Compiled, len(members))
		for i, m := range members {
			c, ok := m.(*Compiled)
			if !ok {
				return nil, fmt.Errorf("query: product members mix compiled forms (member 0 is %T, member %d is %T)",
					members[0], i, m)
			}
			ms[i] = c
		}
		return compileDetProduct(ms, budget)
	case *CompiledN:
		ms := make([]*CompiledN, len(members))
		for i, m := range members {
			c, ok := m.(*CompiledN)
			if !ok {
				return nil, fmt.Errorf("query: product members mix compiled forms (member 0 is %T, member %d is %T)",
					members[0], i, m)
			}
			ms[i] = c
		}
		return compileJointProduct(ms, budget)
	}
	return nil, fmt.Errorf("query: cannot product-compile %T", members[0])
}

// --- deterministic tuple product ----------------------------------------

// detBuilder is the working state of the deterministic product construction:
// an interning table from packed member-state tuples to product state IDs,
// the list of tuples discovered so far, and the subset of them that can
// appear as hierarchical data on a return edge.
type detBuilder struct {
	ms     []*Compiled
	k      int // member count
	syms   int
	budget int
	err    error

	ids    map[string]int32
	tuples []int32 // flat: tuple of state id at [id*k : (id+1)*k]
	key    []byte  // scratch: packed little-endian tuple key
	isHier []bool
	hiers  []int32 // hier-capable ids in discovery order (start tuple first)

	lin, hier, tmp []int32 // scratch tuples
}

func (b *detBuilder) count() int { return len(b.tuples) / b.k }

func (b *detBuilder) tuple(id int32) []int32 {
	return b.tuples[int(id)*b.k : (int(id)+1)*b.k]
}

// intern returns the product state ID of a tuple, discovering it if new.  On
// budget overflow it records ErrStateBudget and returns 0; the caller's loop
// terminates via the err field.
func (b *detBuilder) intern(t []int32) int32 {
	if b.err != nil {
		return 0
	}
	b.key = b.key[:0]
	for _, q := range t {
		b.key = binary.LittleEndian.AppendUint32(b.key, uint32(q))
	}
	if id, ok := b.ids[string(b.key)]; ok {
		return id
	}
	if b.count() >= b.budget {
		b.err = ErrStateBudget
		return 0
	}
	id := int32(b.count())
	b.ids[string(b.key)] = id
	b.tuples = append(b.tuples, t...)
	b.isHier = append(b.isHier, false)
	return id
}

// markHier records that a tuple can appear as hierarchical data on a return
// edge (a call's hier target, or the start tuple standing in for −∞ on
// pending returns, Section 3.1).
func (b *detBuilder) markHier(id int32) {
	if b.err != nil || b.isHier[id] {
		return
	}
	b.isHier[id] = true
	b.hiers = append(b.hiers, id)
}

// pairRet interns the componentwise return targets of one (lin, hier) state
// pair across every symbol.
func (b *detBuilder) pairRet(d, h int32) {
	dt, ht := b.tuple(d), b.tuple(h)
	for sym := 0; sym < b.syms; sym++ {
		for j, m := range b.ms {
			b.tmp[j] = m.stepReturn(dt[j], ht[j], sym)
		}
		b.intern(b.tmp)
	}
}

// compileDetProduct runs the reachable-product construction: a worklist
// fixpoint that expands call and internal transitions componentwise per
// discovered tuple, and pairs every discovered tuple with every
// hier-capable tuple for the return relation (new states are paired with
// all known hiers, new hiers with all processed states, so each pair is
// covered exactly once).  A second pass rebuilds the componentwise targets
// into the dense/sparse Compiled tables and packs the per-state accept
// bitmask.
func compileDetProduct(ms []*Compiled, budget int) (*CompiledProduct, error) {
	k := len(ms)
	syms := ms[0].syms
	b := &detBuilder{
		ms:     ms,
		k:      k,
		syms:   syms,
		budget: budget,
		ids:    make(map[string]int32),
		lin:    make([]int32, k),
		hier:   make([]int32, k),
		tmp:    make([]int32, k),
	}

	// Seed: the start tuple (ID 0, hier-capable for pending returns) and
	// the all-dead tuple (the product's dead state; every componentwise
	// step out of it stays in it because member tables are dead-completed).
	for j, m := range ms {
		b.tmp[j] = m.start
	}
	startID := b.intern(b.tmp)
	b.markHier(startID)
	for j, m := range ms {
		b.tmp[j] = m.dead
	}
	deadID := b.intern(b.tmp)

	// Fixpoint: ps states have had their calls/internals expanded and been
	// paired (as lin) with hiers[0:current]; ph hiers have been paired with
	// states [0, ps).  Both inner loops grow the other's frontier, so the
	// outer loop runs until neither has work left.
	ps, ph := 0, 0
	for b.err == nil && (ps < b.count() || ph < len(b.hiers)) {
		for ps < b.count() && b.err == nil {
			d := int32(ps)
			ps++
			dt := b.tuple(d)
			for sym := 0; sym < syms; sym++ {
				for j, m := range ms {
					i := int(dt[j])*syms + sym
					b.lin[j] = m.callLin[i]
					b.hier[j] = m.callHier[i]
					b.tmp[j] = m.internT[i]
				}
				b.intern(b.lin)
				b.markHier(b.intern(b.hier))
				b.intern(b.tmp)
			}
			for hi := 0; hi < ph; hi++ {
				b.pairRet(d, b.hiers[hi])
			}
		}
		for ph < len(b.hiers) && b.err == nil {
			h := b.hiers[ph]
			ph++
			for d := 0; d < ps; d++ {
				b.pairRet(int32(d), h)
			}
		}
	}
	if b.err != nil {
		return nil, b.err
	}

	// Second pass: materialize the tables over the now-fixed state space.
	// Every componentwise target below was already interned by the fixpoint,
	// so intern only looks up.
	num := b.count()
	c := &Compiled{
		alpha:  ms[0].alpha,
		num:    num,
		syms:   syms,
		start:  startID,
		dead:   deadID,
		accept: make([]bool, num),
	}
	maskW := bitset.Words(k)
	mask := make([]uint64, num*maskW)
	for q := 0; q < num; q++ {
		t := b.tuple(int32(q))
		row := bitset.Slab(mask, q, maskW)
		for j, m := range ms {
			if m.accept[t[j]] {
				row.Set(j)
				c.accept[q] = true
			}
		}
	}
	c.callLin = make([]int32, num*syms)
	c.callHier = make([]int32, num*syms)
	c.internT = make([]int32, num*syms)
	for q := 0; q < num; q++ {
		t := b.tuple(int32(q))
		for sym := 0; sym < syms; sym++ {
			for j, m := range ms {
				i := int(t[j])*syms + sym
				b.lin[j] = m.callLin[i]
				b.hier[j] = m.callHier[i]
				b.tmp[j] = m.internT[i]
			}
			i := q*syms + sym
			c.callLin[i] = b.intern(b.lin)
			c.callHier[i] = b.intern(b.hier)
			c.internT[i] = b.intern(b.tmp)
		}
	}
	// Return table: only (lin ∈ states, hier ∈ hier-capable) pairs can occur
	// at run time (the runner's hier is either a pushed call target or the
	// start state), so all other rows stay at the dead prefill.
	if size := num * num * syms; size <= denseReturnLimit {
		c.dense = true
		c.returnT = filled(size, c.dead)
		for q := 0; q < num; q++ {
			for _, h := range b.hiers {
				ht := b.tuple(h)
				t := b.tuple(int32(q))
				for sym := 0; sym < syms; sym++ {
					for j, m := range ms {
						b.tmp[j] = m.stepReturn(t[j], ht[j], sym)
					}
					c.returnT[(q*num+int(h))*syms+sym] = b.intern(b.tmp)
				}
			}
		}
	} else {
		var entries []sparseEntry
		for q := 0; q < num; q++ {
			for _, h := range b.hiers {
				ht := b.tuple(h)
				t := b.tuple(int32(q))
				for sym := 0; sym < syms; sym++ {
					for j, m := range ms {
						b.tmp[j] = m.stepReturn(t[j], ht[j], sym)
					}
					if to := b.intern(b.tmp); to != deadID {
						entries = append(entries, sparseEntry{c.returnKey(int32(q), h, sym), to})
					}
				}
			}
		}
		c.sparseR = buildSparse(entries)
	}
	if b.err != nil {
		// Unreachable unless the fixpoint missed a pair; surface rather
		// than ship a table with dangling targets.
		return nil, b.err
	}
	return &CompiledProduct{inner: c, nq: k, mask: mask, maskW: maskW}, nil
}

// --- jointly-stepped nondeterministic union ------------------------------

// compileJointProduct concatenates the members' state spaces into one
// CompiledN — member j's states shifted by the block base — and packs each
// member's accepting states into one bitmask row, so a single bitset runner
// answers all members and Verdicts is one Intersects per member.
func compileJointProduct(ms []*CompiledN, budget int) (*CompiledProduct, error) {
	k := len(ms)
	syms := ms[0].syms
	num := 0
	bases := make([]int32, k)
	for j, m := range ms {
		bases[j] = int32(num)
		num += m.num
	}
	if num > budget {
		return nil, ErrStateBudget
	}

	u := &CompiledN{
		alpha:  ms[0].alpha,
		num:    num,
		syms:   syms,
		accept: make([]bool, num),
	}
	for j, m := range ms {
		base := bases[j]
		for _, q := range m.starts {
			u.starts = append(u.starts, base+q)
		}
		copy(u.accept[base:], m.accept)
	}

	// Call and internal adjacency: member CSR spans concatenate directly,
	// because the union index (base+q)*syms+sym enumerates in exactly the
	// member-major, state-major, symbol-major order we iterate in.
	u.callOff = make([]int32, num*syms+1)
	u.intOff = make([]int32, num*syms+1)
	i := 0
	for j, m := range ms {
		base := bases[j]
		for q := 0; q < m.num; q++ {
			for sym := 0; sym < syms; sym++ {
				lins, hiers := m.callSucc(q, sym)
				for t := range lins {
					u.callLin = append(u.callLin, base+lins[t])
					u.callHier = append(u.callHier, base+hiers[t])
				}
				for _, to := range m.internalSucc(q, sym) {
					u.intTo = append(u.intTo, base+to)
				}
				i++
				u.callOff[i] = int32(len(u.callLin))
				u.intOff[i] = int32(len(u.intTo))
			}
		}
	}

	// Return adjacency over the union's quadratic index.  Cross-block
	// (lin, hier) pairs simply have no entries, which is what makes the
	// union's pending-return stitch (over all union starts) coincide with
	// each member's own stitch.
	if size := num * num * syms; size <= denseReturnLimit {
		u.dense = true
		retCount := make([]int32, size)
		for j, m := range ms {
			base := int(bases[j])
			m.eachReturn(func(lin, hier int32, sym int, _ int32) {
				retCount[((int(lin)+base)*num+int(hier)+base)*syms+sym]++
			})
		}
		u.retOff = prefixSums(retCount)
		u.retTo = make([]int32, u.retOff[len(u.retOff)-1])
		retFill := make([]int32, size)
		for j, m := range ms {
			base := int(bases[j])
			m.eachReturn(func(lin, hier int32, sym int, to int32) {
				idx := ((int(lin)+base)*num + int(hier) + base) * syms
				idx += sym
				u.retTo[u.retOff[idx]+retFill[idx]] = int32(base) + to
				retFill[idx]++
			})
		}
	} else {
		var entries []sparseEntry
		for j, m := range ms {
			base := int(bases[j])
			m.eachReturn(func(lin, hier int32, sym int, to int32) {
				key := uint64(((int(lin)+base)*num + int(hier) + base) * syms)
				key += uint64(sym)
				entries = append(entries, sparseEntry{key, int32(base) + to})
			})
		}
		u.retKeys, u.retSpan, u.retTo = buildReturnSpans(entries)
	}

	// Bitset layout: the per-symbol successor masks, the start/accept rows,
	// and the per-member accept-mask slab all share the union width.
	u.w = bitset.Words(num)
	u.startRow = packStateRow(num, u.starts)
	u.acceptRow = packAcceptRow(u.accept)
	u.intMask = make([]uint64, syms*num*u.w)
	u.callMask = make([]uint64, syms*num*u.w)
	mask := make([]uint64, k*u.w)
	for j, m := range ms {
		base := int(bases[j])
		row := bitset.Slab(mask, j, u.w)
		for q := 0; q < m.num; q++ {
			if m.accept[q] {
				row.Set(base + q)
			}
			for sym := 0; sym < syms; sym++ {
				for _, to := range m.internalSucc(q, sym) {
					u.maskRow(u.intMask, sym, base+q).Set(base + int(to))
				}
				lins, _ := m.callSucc(q, sym)
				for _, lin := range lins {
					u.maskRow(u.callMask, sym, base+q).Set(base + int(lin))
				}
			}
		}
	}
	return &CompiledProduct{inner: u, nq: k, mask: mask, maskW: u.w}, nil
}

// --- runners -------------------------------------------------------------

// detProductRunner steps the deterministic product exactly like the
// single-query dnwaRunner — two or three indexed loads per event — and reads
// all member verdicts off the current state's accept-mask row.
type detProductRunner struct {
	p     *CompiledProduct
	c     *Compiled
	state int32
	stack []int32
}

//nwvet:hotpath
func (r *detProductRunner) StepCall(sym int) {
	c := r.c
	i := int(r.state)*c.syms + clampSym(sym, c.syms)
	r.stack = append(r.stack, c.callHier[i])
	r.state = c.callLin[i]
}

//nwvet:hotpath
func (r *detProductRunner) StepInternal(sym int) {
	c := r.c
	r.state = c.internT[int(r.state)*c.syms+clampSym(sym, c.syms)]
}

//nwvet:hotpath
func (r *detProductRunner) StepReturn(sym int) {
	hier := r.c.start
	if n := len(r.stack); n > 0 {
		hier = r.stack[n-1]
		r.stack = r.stack[:n-1]
	}
	r.state = r.c.stepReturn(r.state, hier, clampSym(sym, r.c.syms))
}

//nwvet:hotpath
func (r *detProductRunner) Verdicts(dst bitset.Row) {
	dst.Zero()
	dst.Or(bitset.Slab(r.p.mask, int(r.state), r.p.maskW))
}

func (r *detProductRunner) Reset() {
	r.state = r.c.start
	r.stack = r.stack[:0]
}

// jointProductRunner drives one bitset state-set runner over the member
// union; verdict j is "does the reachable set meet member j's accepting
// states" — one Intersects sweep per member.
type jointProductRunner struct {
	p *CompiledProduct
	r *nnwaBitsetRunner
}

//nwvet:hotpath
func (j *jointProductRunner) StepCall(sym int) { j.r.StepCall(sym) }

//nwvet:hotpath
func (j *jointProductRunner) StepInternal(sym int) { j.r.StepInternal(sym) }

//nwvet:hotpath
func (j *jointProductRunner) StepReturn(sym int) { j.r.StepReturn(sym) }

//nwvet:hotpath
func (j *jointProductRunner) Verdicts(dst bitset.Row) {
	dst.Zero()
	for q := 0; q < j.p.nq; q++ {
		if j.r.R.Intersects(bitset.Slab(j.p.mask, q, j.p.maskW)) {
			dst.Set(q)
		}
	}
}

func (j *jointProductRunner) Reset() { j.r.Reset() }
