package query

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitset"
)

// fuzzProduct is one cached product-fuzz subject: the member subset selected
// by a mask byte, product-compiled, next to the members' own runners.
type fuzzProduct struct {
	p       *CompiledProduct
	members []Query
}

var (
	fuzzProdMu   sync.Mutex
	fuzzProds    = map[uint16]*fuzzProduct{}
	fuzzFamilies [2][]Query
	fuzzFamOnce  sync.Once
)

// fuzzFamily returns the fixed query families the mask byte selects from:
// family 0 is the deterministic mix from detProductMembers, family 1 a trio
// of random nondeterministic automata.
func fuzzFamily(which int) []Query {
	fuzzFamOnce.Do(func() {
		det, _ := detProductMembers()
		fuzzFamilies[0] = det
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 3; i++ {
			fuzzFamilies[1] = append(fuzzFamilies[1], CompileN(randomNNWA(rng, 2+rng.Intn(3))))
		}
	})
	return fuzzFamilies[which%2]
}

// fuzzProductFor compiles (and caches) the product of the family members
// whose bits are set in mask.  Returns nil when fewer than one member is
// selected.
func fuzzProductFor(which int, mask uint8) *fuzzProduct {
	key := uint16(which%2)<<8 | uint16(mask)
	fuzzProdMu.Lock()
	defer fuzzProdMu.Unlock()
	if p, ok := fuzzProds[key]; ok {
		return p
	}
	family := fuzzFamily(which)
	var members []Query
	for j, q := range family {
		if mask&(1<<j) != 0 {
			members = append(members, q)
		}
	}
	if len(members) == 0 {
		fuzzProds[key] = nil
		return nil
	}
	p, err := CompileProduct(members, 0)
	if err != nil {
		panic(err) // fixed family under the default budget: cannot happen
	}
	fp := &fuzzProduct{p: p, members: members}
	fuzzProds[key] = fp
	return fp
}

// FuzzProductDifferential drives a product runner and its members' own
// runners through the same arbitrary word — decoded from bytes exactly like
// FuzzNNWARunnerDifferential, so pending calls/returns and out-of-alphabet
// symbols all occur — and demands identical demuxed verdicts after every
// prefix.  The mask byte picks which family members join the product, so the
// subset structure of the accept bitmask is fuzzed too.
func FuzzProductDifferential(f *testing.F) {
	f.Add(uint8(0), uint8(0b11111), []byte{})
	f.Add(uint8(0), uint8(0b101), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(0b111), []byte{0, 0, 4, 2, 2, 5})
	f.Add(uint8(1), uint8(0b11), []byte{2, 5, 8, 1, 0, 2})
	f.Add(uint8(0), uint8(0b10010), []byte{6, 7, 8, 6, 7, 8})
	f.Fuzz(func(t *testing.T, which, mask uint8, word []byte) {
		if len(word) > 4096 {
			word = word[:4096] // bound stack depth and per-input runtime
		}
		fp := fuzzProductFor(int(which), mask)
		if fp == nil {
			t.Skip("empty member subset")
		}
		pr := fp.p.NewProductRunner()
		runners := make([]Runner, len(fp.members))
		for j, m := range fp.members {
			runners[j] = m.NewRunner()
		}
		row := bitset.New(fp.p.QueryCount())
		for pos, b := range word {
			kind := int(b) % 3
			sym := int(b/3) % 3 // 0,1 are in-alphabet; 2 is the out-of-alphabet ID
			switch kind {
			case 0:
				pr.StepCall(sym)
			case 1:
				pr.StepInternal(sym)
			default:
				pr.StepReturn(sym)
			}
			for _, r := range runners {
				switch kind {
				case 0:
					r.StepCall(sym)
				case 1:
					r.StepInternal(sym)
				default:
					r.StepReturn(sym)
				}
			}
			pr.Verdicts(row)
			for j, r := range runners {
				if row.Has(j) != r.Accepting() {
					t.Fatalf("family %d, mask %08b, prefix %d: product member %d = %v, own runner = %v",
						which%2, mask, pos+1, j, row.Has(j), r.Accepting())
				}
			}
		}
	})
}
