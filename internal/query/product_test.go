package query

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/bitset"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

// runProductWord drives a product runner over a whole nested word, interning
// each symbol against alpha, and leaves the member verdicts in dst — the
// ProductRunner counterpart of RunWord.
func runProductWord(r ProductRunner, alpha *alphabet.Alphabet, n *nestedword.NestedWord, dst bitset.Row) {
	r.Reset()
	ooa := alpha.Size()
	for i := 0; i < n.Len(); i++ {
		sym, ok := alpha.Index(n.SymbolAt(i))
		if !ok {
			sym = ooa
		}
		switch n.KindAt(i) {
		case nestedword.Call:
			r.StepCall(sym)
		case nestedword.Return:
			r.StepReturn(sym)
		default:
			r.StepInternal(sym)
		}
	}
	r.Verdicts(dst)
}

// detProductMembers is the deterministic cluster the differentials run on:
// structurally similar but distinct queries over the shared {a,b} alphabet.
func detProductMembers() ([]Query, []*nwa.DNWA) {
	alpha := generator.AB
	sources := []*nwa.DNWA{
		WellFormed(alpha),
		PathQuery(alpha, "a", "b"),
		LinearOrder(alpha, "a", "b", "a"),
		ContainsLabel(alpha, "b"),
		nwa.Intersect(WellFormed(alpha), ContainsLabel(alpha, "a")),
	}
	members := make([]Query, len(sources))
	for i, d := range sources {
		members[i] = Compile(d)
	}
	return members, sources
}

// TestProductDNWADifferential is the ISSUE's correctness criterion for the
// deterministic product: 1200 random nested words — pending calls/returns
// and out-of-alphabet labels included — where every verdict bit of the
// product runner must equal both the member's own fanned-out runner and the
// serial source-automaton oracle, for the dense and sparse return forms.
func TestProductDNWADifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	alpha := generator.AB
	// "zz" is not in the compiled alphabet, so a third of the event stream
	// exercises the out-of-alphabet column.
	words, pending := randomWords(rng, 1200, []string{"a", "b", "zz"})
	if pending == 0 {
		t.Fatal("no words with pending calls/returns were generated")
	}
	defer func(old int) { denseReturnLimit = old }(denseReturnLimit)
	for _, limit := range []int{denseReturnLimit, 1} {
		denseReturnLimit = limit
		members, sources := detProductMembers()
		p, err := CompileProduct(members, 0)
		if err != nil {
			t.Fatalf("limit %d: CompileProduct: %v", limit, err)
		}
		if !p.Deterministic() {
			t.Fatalf("limit %d: product of Compiled members is not Deterministic", limit)
		}
		if p.QueryCount() != len(members) {
			t.Fatalf("limit %d: QueryCount = %d, want %d", limit, p.QueryCount(), len(members))
		}
		inner := p.inner.(*Compiled)
		if want := limit > 1; inner.Dense() != want {
			t.Fatalf("limit %d: product Dense() = %v, want %v", limit, inner.Dense(), want)
		}
		pr := p.NewProductRunner()
		verdicts := bitset.New(p.QueryCount())
		fan := make([]Runner, len(members))
		for j, m := range members {
			fan[j] = m.NewRunner()
		}
		for wi, w := range words {
			runProductWord(pr, alpha, w, verdicts)
			for j := range members {
				got := verdicts.Has(j)
				if want := RunWord(fan[j], alpha, w); got != want {
					t.Fatalf("limit %d, word %d, member %d: product %v, fan-out runner %v on %v",
						limit, wi, j, got, want, w)
				}
				if want := sources[j].Accepts(w); got != want {
					t.Fatalf("limit %d, word %d, member %d: product %v, serial DNWA %v on %v",
						limit, wi, j, got, want, w)
				}
			}
		}
	}
}

// TestProductNNWADifferential mirrors the deterministic differential for the
// jointly-stepped union: clusters of random nondeterministic automata whose
// joint runner must agree bit-for-bit with each member's own bitset runner
// and with the source NNWA oracle — 1200 words across the clusters, pending
// calls/returns and out-of-alphabet labels included, dense and sparse.
func TestProductNNWADifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	alpha := generator.AB
	defer func(old int) { denseReturnLimit = old }(denseReturnLimit)
	for _, limit := range []int{denseReturnLimit, 1} {
		denseReturnLimit = limit
		totalPending := 0
		for cluster := 0; cluster < 4; cluster++ {
			k := 2 + cluster // cluster sizes 2..5
			sources := make([]*nwa.NNWA, k)
			members := make([]Query, k)
			for j := range sources {
				sources[j] = randomNNWA(rng, 2+rng.Intn(3))
				members[j] = CompileN(sources[j])
			}
			p, err := CompileProduct(members, 0)
			if err != nil {
				t.Fatalf("limit %d, cluster %d: CompileProduct: %v", limit, cluster, err)
			}
			if p.Deterministic() {
				t.Fatalf("limit %d, cluster %d: product of CompiledN members claims Deterministic", limit, cluster)
			}
			pr := p.NewProductRunner()
			verdicts := bitset.New(k)
			fan := make([]Runner, k)
			for j, m := range members {
				fan[j] = m.NewRunner()
			}
			words, pending := randomWords(rng, 300, []string{"a", "b", "zz"})
			totalPending += pending
			for wi, w := range words {
				runProductWord(pr, alpha, w, verdicts)
				for j := range members {
					got := verdicts.Has(j)
					if want := RunWord(fan[j], alpha, w); got != want {
						t.Fatalf("limit %d, cluster %d, word %d, member %d: joint %v, fan-out %v on %v",
							limit, cluster, wi, j, got, want, w)
					}
					if want := sources[j].Accepts(w); got != want {
						t.Fatalf("limit %d, cluster %d, word %d, member %d: joint %v, serial NNWA %v on %v",
							limit, cluster, wi, j, got, want, w)
					}
				}
			}
		}
		if totalPending == 0 {
			t.Fatal("no words with pending calls/returns were generated")
		}
	}
}

// TestCompileProductErrors pins the rejection paths: empty cluster, mixed
// compiled forms, mismatched alphabets, and — the planner's fallback signal
// — a state budget smaller than the reachable product.
func TestCompileProductErrors(t *testing.T) {
	alpha := generator.AB
	det := Compile(WellFormed(alpha))
	ndet := CompileN(PathQuery(alpha, "a", "b").ToNondeterministic())
	other := Compile(WellFormed(alphabet.New("x", "y")))

	if _, err := CompileProduct(nil, 0); err == nil {
		t.Error("CompileProduct(nil) did not fail")
	}
	if _, err := CompileProduct([]Query{det, ndet}, 0); err == nil {
		t.Error("mixed Compiled/CompiledN cluster did not fail")
	}
	if _, err := CompileProduct([]Query{ndet, det}, 0); err == nil {
		t.Error("mixed CompiledN/Compiled cluster did not fail")
	}
	if _, err := CompileProduct([]Query{det, other}, 0); err == nil {
		t.Error("mismatched alphabets did not fail")
	}
	if _, err := CompileProduct([]Query{det, det}, 1); !errors.Is(err, ErrStateBudget) {
		t.Errorf("tiny deterministic budget: err = %v, want ErrStateBudget", err)
	}
	if _, err := CompileProduct([]Query{ndet, ndet}, 1); !errors.Is(err, ErrStateBudget) {
		t.Errorf("tiny joint budget: err = %v, want ErrStateBudget", err)
	}
	if p, err := CompileProduct([]Query{det}, 0); err != nil || p.QueryCount() != 1 {
		t.Errorf("singleton cluster: p, err = %v, %v", p, err)
	}
}

// TestProductSingleMemberMatchesQuery sanity-checks the degenerate product:
// a one-member cluster's verdict bit equals the member's own verdict on a
// spread of documents.
func TestProductSingleMemberMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	alpha := generator.AB
	member := Compile(PathQuery(alpha, "a", "b"))
	p, err := CompileProduct([]Query{member}, 0)
	if err != nil {
		t.Fatalf("CompileProduct: %v", err)
	}
	pr := p.NewProductRunner()
	verdicts := bitset.New(1)
	r := member.NewRunner()
	words, _ := randomWords(rng, 200, []string{"a", "b"})
	for wi, w := range words {
		runProductWord(pr, alpha, w, verdicts)
		if got, want := verdicts.Has(0), RunWord(r, alpha, w); got != want {
			t.Fatalf("word %d: product %v, member %v on %v", wi, got, want, w)
		}
	}
}
