package query

import (
	"fmt"
	"sort"

	"repro/internal/alphabet"
	"repro/internal/bitset"
	"repro/internal/query/format"
)

// This file serializes the compiled automata: compiled tables are immutable
// and deterministic, so once a query set is compiled it can be written to
// disk as a versioned little-endian artifact and booted by any number of
// front-end processes without recompiling — the "compiled-query persistence"
// direction of the roadmap.  The container layout (header, section
// directory, 8-byte-aligned payloads) lives in the format subpackage; this
// file owns the section registry and the semantic validation.
//
// Three object kinds exist:
//
//   - a Compiled DNWA (format.KindDNWA): meta, alphabet, accept bytes, the
//     dense call/internal tables, and either the dense return table or the
//     sorted sparse key/value pair;
//   - a CompiledN NNWA (format.KindNNWA): meta, alphabet, starts, accept
//     bytes, the CSR call/internal/return adjacency, and the per-symbol
//     successor bitmask slabs;
//   - a Bundle (format.KindBundle): one shared alphabet, the query names,
//     and one embedded per-query blob (a full KindDNWA/KindNNWA container
//     minus its alphabet section) per query.
//
// Unmarshal* copy every table out of the input; LoadQueryMapped /
// LoadBundleMapped point the int32/uint64 table slices directly into the
// provided byte region via checked reinterpretation, and OpenBundle maps a
// file read-only (mmap where available) and loads zero-copy — the cold-boot
// path experiment E25 measures against parse+compile.
//
// Every decode path validates the tables before a runner can touch them —
// lengths against num/syms, targets against the state range, offsets
// monotonic, sparse keys strictly ascending, mask bits beyond the state
// range clear — so arbitrary bytes fail with an error rather than a panic,
// and no allocation is sized by attacker-controlled fields beyond the input
// length.

// Section tags of the serialized compiled-query containers.  Tags are
// stable; new sections may be added in later versions but existing ones
// never change meaning.
const (
	secMeta     = 1  // uint64s: kind-specific dimensions and flags
	secAlphabet = 2  // string list: alphabet symbols in index order
	secAccept   = 3  // bytes: one 0/1 byte per state
	secCallLin  = 4  // int32s: linear call targets
	secCallHier = 5  // int32s: hierarchical call targets
	secInternal = 6  // int32s: internal targets (DNWA dense table)
	secReturnT  = 7  // int32s: DNWA dense return table
	secRetKeys  = 8  // uint64s: sparse return keys, strictly ascending
	secRetVals  = 9  // int32s: DNWA sparse return values
	secStarts   = 10 // int32s: NNWA start states
	secCallOff  = 11 // int32s: NNWA call CSR prefix offsets
	secIntOff   = 12 // int32s: NNWA internal CSR prefix offsets
	secIntTo    = 13 // int32s: NNWA internal CSR targets
	secRetOff   = 14 // int32s: NNWA dense return CSR prefix offsets
	secRetTo    = 15 // int32s: NNWA return CSR targets
	secRetSpan  = 16 // int32s: NNWA sparse return key spans
	secIntMask  = 17 // uint64s: NNWA per-symbol internal successor slab
	secCallMask = 18 // uint64s: NNWA per-symbol call successor slab
	secNames    = 19 // string list: bundle query names
	secQuery    = 20 // bytes: one embedded query container per bundle query
)

// Decode limits: far beyond any automaton this repository compiles, but
// small enough that no validation product overflows and no runner index
// computation wraps.
const (
	maxStates  = 1 << 22
	maxSymbols = 1 << 20
)

// mul returns a*b, reporting overflow or a negative operand as !ok.
func mul(a, b int) (int, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b {
		return 0, false
	}
	return p, true
}

func boolBytes(v []bool) []byte {
	b := make([]byte, len(v))
	for i, x := range v {
		if x {
			b[i] = 1
		}
	}
	return b
}

// Marshal serializes the compiled automaton, alphabet included, into a
// standalone KindDNWA container.
func (c *Compiled) Marshal() []byte { return c.encode(true) }

func (c *Compiled) encode(includeAlpha bool) []byte {
	w := format.NewWriter(format.KindDNWA)
	dense := uint64(0)
	if c.dense {
		dense = 1
	}
	w.Uint64s(secMeta, []uint64{uint64(c.num), uint64(c.syms), uint64(c.start), uint64(c.dead), dense})
	if includeAlpha {
		w.Strings(secAlphabet, c.alpha.Symbols())
	}
	w.Bytes(secAccept, boolBytes(c.accept))
	w.Int32s(secCallLin, c.callLin)
	w.Int32s(secCallHier, c.callHier)
	w.Int32s(secInternal, c.internT)
	if c.dense {
		w.Int32s(secReturnT, c.returnT)
	} else {
		w.Uint64s(secRetKeys, c.sparseR.keys)
		w.Int32s(secRetVals, c.sparseR.vals)
	}
	return w.Finish()
}

// Marshal serializes the compiled automaton, alphabet included, into a
// standalone KindNNWA container.
func (c *CompiledN) Marshal() []byte { return c.encode(true) }

func (c *CompiledN) encode(includeAlpha bool) []byte {
	w := format.NewWriter(format.KindNNWA)
	dense := uint64(0)
	if c.dense {
		dense = 1
	}
	w.Uint64s(secMeta, []uint64{uint64(c.num), uint64(c.syms), dense})
	if includeAlpha {
		w.Strings(secAlphabet, c.alpha.Symbols())
	}
	w.Int32s(secStarts, c.starts)
	w.Bytes(secAccept, boolBytes(c.accept))
	w.Int32s(secCallOff, c.callOff)
	w.Int32s(secCallLin, c.callLin)
	w.Int32s(secCallHier, c.callHier)
	w.Int32s(secIntOff, c.intOff)
	w.Int32s(secIntTo, c.intTo)
	if c.dense {
		w.Int32s(secRetOff, c.retOff)
	} else {
		w.Uint64s(secRetKeys, c.retKeys)
		w.Int32s(secRetSpan, c.retSpan)
	}
	w.Int32s(secRetTo, c.retTo)
	w.Uint64s(secIntMask, c.intMask)
	w.Uint64s(secCallMask, c.callMask)
	return w.Finish()
}

// decodeState holds what a single query decode needs: the parsed container,
// the alphabet (shared by a bundle, or read from the blob's own section),
// and whether table slices may alias the input bytes.
type decodeState struct {
	r        *format.Reader
	alpha    *alphabet.Alphabet
	zeroCopy bool
}

func (d *decodeState) section(tag uint32, what string) ([]byte, error) {
	b, ok := d.r.Section(tag)
	if !ok {
		return nil, fmt.Errorf("query: serialized automaton is missing its %s section", what)
	}
	return b, nil
}

func (d *decodeState) int32s(tag uint32, what string) ([]int32, error) {
	b, err := d.section(tag, what)
	if err != nil {
		return nil, err
	}
	v, err := format.Int32s(b, d.zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("query: %s section: %w", what, err)
	}
	return v, nil
}

func (d *decodeState) uint64s(tag uint32, what string) ([]uint64, error) {
	b, err := d.section(tag, what)
	if err != nil {
		return nil, err
	}
	v, err := format.Uint64s(b, d.zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("query: %s section: %w", what, err)
	}
	return v, nil
}

// resolveAlphabet returns the shared alphabet, or reads the blob's own
// alphabet section, and checks it against the serialized symbol count.
func (d *decodeState) resolveAlphabet(syms int) error {
	if d.alpha == nil {
		b, err := d.section(secAlphabet, "alphabet")
		if err != nil {
			return err
		}
		symbols, err := format.Strings(b)
		if err != nil {
			return fmt.Errorf("query: alphabet section: %w", err)
		}
		d.alpha = alphabet.New(symbols...)
		if d.alpha.Size() != len(symbols) {
			return fmt.Errorf("query: serialized alphabet repeats a symbol (%d listed, %d distinct)",
				len(symbols), d.alpha.Size())
		}
	}
	if d.alpha.Size()+1 != syms {
		return fmt.Errorf("query: automaton compiled over %d symbols, alphabet has %d",
			syms-1, d.alpha.Size())
	}
	return nil
}

// decodeAccept reads the per-state accept bytes (always copied — []bool
// cannot alias arbitrary bytes safely).
func (d *decodeState) decodeAccept(num int) ([]bool, error) {
	b, err := d.section(secAccept, "accept")
	if err != nil {
		return nil, err
	}
	if len(b) != num {
		return nil, fmt.Errorf("query: accept section holds %d states, automaton has %d", len(b), num)
	}
	accept := make([]bool, num)
	for i, x := range b {
		if x > 1 {
			return nil, fmt.Errorf("query: accept byte %d is %d, want 0 or 1", i, x)
		}
		accept[i] = x == 1
	}
	return accept, nil
}

// checkTargets verifies every entry of a target table lies in [0, num).
func checkTargets(what string, t []int32, num int) error {
	for i, v := range t {
		if v < 0 || int(v) >= num {
			return fmt.Errorf("query: %s[%d] = %d outside the %d states", what, i, v, num)
		}
	}
	return nil
}

// checkOffsets verifies a CSR prefix-offset table: the right length,
// starting at zero, monotone, and ending exactly at the target count.
func checkOffsets(what string, off []int32, cells, targets int) error {
	if len(off) != cells+1 {
		return fmt.Errorf("query: %s has %d offsets, want %d", what, len(off), cells+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("query: %s starts at %d, want 0", what, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("query: %s decreases at %d (%d < %d)", what, i, off[i], off[i-1])
		}
	}
	if int(off[len(off)-1]) != targets {
		return fmt.Errorf("query: %s ends at %d, targets hold %d entries", what, off[len(off)-1], targets)
	}
	return nil
}

// checkAscending verifies sparse return keys are strictly ascending (the
// binary-search invariant).
func checkAscending(keys []uint64) error {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("query: sparse return keys not strictly ascending at %d", i)
		}
	}
	return nil
}

// decodeCompiled rebuilds a Compiled from a KindDNWA container.
func decodeCompiled(d *decodeState) (*Compiled, error) {
	if d.r.Kind() != format.KindDNWA {
		return nil, fmt.Errorf("query: container kind %d is not a compiled DNWA", d.r.Kind())
	}
	meta, err := d.uint64s(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	if len(meta) < 5 {
		return nil, fmt.Errorf("query: DNWA meta section holds %d values, want 5", len(meta))
	}
	num, syms := int(meta[0]), int(meta[1])
	if num < 1 || num > maxStates {
		return nil, fmt.Errorf("query: %d states outside [1, %d]", meta[0], maxStates)
	}
	if syms < 1 || syms > maxSymbols {
		return nil, fmt.Errorf("query: %d symbol columns outside [1, %d]", meta[1], maxSymbols)
	}
	if meta[2] >= uint64(num) || meta[3] >= uint64(num) {
		return nil, fmt.Errorf("query: start %d / dead %d outside the %d states", meta[2], meta[3], num)
	}
	c := &Compiled{
		num:   num,
		syms:  syms,
		start: int32(meta[2]),
		dead:  int32(meta[3]),
		dense: meta[4] == 1,
	}
	if err := d.resolveAlphabet(syms); err != nil {
		return nil, err
	}
	c.alpha = d.alpha
	if c.accept, err = d.decodeAccept(num); err != nil {
		return nil, err
	}
	cells, ok := mul(num, syms)
	if !ok {
		return nil, fmt.Errorf("query: %d×%d transition cells overflow", num, syms)
	}
	for _, t := range []struct {
		tag  uint32
		what string
		dst  *[]int32
	}{
		{secCallLin, "call linear", &c.callLin},
		{secCallHier, "call hierarchical", &c.callHier},
		{secInternal, "internal", &c.internT},
	} {
		v, err := d.int32s(t.tag, t.what)
		if err != nil {
			return nil, err
		}
		if len(v) != cells {
			return nil, fmt.Errorf("query: %s table holds %d cells, want %d", t.what, len(v), cells)
		}
		if err := checkTargets(t.what, v, num); err != nil {
			return nil, err
		}
		*t.dst = v
	}
	if c.dense {
		retCells, ok := mul(num, cells)
		if !ok {
			return nil, fmt.Errorf("query: dense return table for %d states overflows", num)
		}
		v, err := d.int32s(secReturnT, "dense return")
		if err != nil {
			return nil, err
		}
		if len(v) != retCells {
			return nil, fmt.Errorf("query: dense return table holds %d cells, want %d", len(v), retCells)
		}
		if err := checkTargets("dense return", v, num); err != nil {
			return nil, err
		}
		c.returnT = v
	} else {
		keys, err := d.uint64s(secRetKeys, "sparse return keys")
		if err != nil {
			return nil, err
		}
		vals, err := d.int32s(secRetVals, "sparse return values")
		if err != nil {
			return nil, err
		}
		if len(keys) != len(vals) {
			return nil, fmt.Errorf("query: %d sparse return keys vs %d values", len(keys), len(vals))
		}
		if err := checkAscending(keys); err != nil {
			return nil, err
		}
		if err := checkTargets("sparse return", vals, num); err != nil {
			return nil, err
		}
		c.sparseR = sparseTable{keys: keys, vals: vals}
	}
	return c, nil
}

// decodeCompiledN rebuilds a CompiledN from a KindNNWA container.
func decodeCompiledN(d *decodeState) (*CompiledN, error) {
	if d.r.Kind() != format.KindNNWA {
		return nil, fmt.Errorf("query: container kind %d is not a compiled NNWA", d.r.Kind())
	}
	meta, err := d.uint64s(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	if len(meta) < 3 {
		return nil, fmt.Errorf("query: NNWA meta section holds %d values, want 3", len(meta))
	}
	num, syms := int(meta[0]), int(meta[1])
	if num < 1 || num > maxStates {
		return nil, fmt.Errorf("query: %d states outside [1, %d]", meta[0], maxStates)
	}
	if syms < 1 || syms > maxSymbols {
		return nil, fmt.Errorf("query: %d symbol columns outside [1, %d]", meta[1], maxSymbols)
	}
	c := &CompiledN{num: num, syms: syms, dense: meta[2] == 1, w: bitset.Words(num)}
	if err := d.resolveAlphabet(syms); err != nil {
		return nil, err
	}
	c.alpha = d.alpha
	if c.accept, err = d.decodeAccept(num); err != nil {
		return nil, err
	}
	if c.starts, err = d.int32s(secStarts, "start states"); err != nil {
		return nil, err
	}
	if err := checkTargets("start states", c.starts, num); err != nil {
		return nil, err
	}
	cells, ok := mul(num, syms)
	if !ok {
		return nil, fmt.Errorf("query: %d×%d transition cells overflow", num, syms)
	}

	// Call and internal CSR adjacency.
	if c.callLin, err = d.int32s(secCallLin, "call linear"); err != nil {
		return nil, err
	}
	if c.callHier, err = d.int32s(secCallHier, "call hierarchical"); err != nil {
		return nil, err
	}
	if len(c.callHier) != len(c.callLin) {
		return nil, fmt.Errorf("query: %d call linear targets vs %d hierarchical", len(c.callLin), len(c.callHier))
	}
	if c.callOff, err = d.int32s(secCallOff, "call offsets"); err != nil {
		return nil, err
	}
	if err := checkOffsets("call offsets", c.callOff, cells, len(c.callLin)); err != nil {
		return nil, err
	}
	if err := checkTargets("call linear", c.callLin, num); err != nil {
		return nil, err
	}
	if err := checkTargets("call hierarchical", c.callHier, num); err != nil {
		return nil, err
	}
	if c.intTo, err = d.int32s(secIntTo, "internal targets"); err != nil {
		return nil, err
	}
	if c.intOff, err = d.int32s(secIntOff, "internal offsets"); err != nil {
		return nil, err
	}
	if err := checkOffsets("internal offsets", c.intOff, cells, len(c.intTo)); err != nil {
		return nil, err
	}
	if err := checkTargets("internal targets", c.intTo, num); err != nil {
		return nil, err
	}

	// Return adjacency, dense prefix offsets or sorted key spans.
	if c.retTo, err = d.int32s(secRetTo, "return targets"); err != nil {
		return nil, err
	}
	if err := checkTargets("return targets", c.retTo, num); err != nil {
		return nil, err
	}
	if c.dense {
		retCells, ok := mul(num, cells)
		if !ok {
			return nil, fmt.Errorf("query: dense return index for %d states overflows", num)
		}
		if c.retOff, err = d.int32s(secRetOff, "return offsets"); err != nil {
			return nil, err
		}
		if err := checkOffsets("return offsets", c.retOff, retCells, len(c.retTo)); err != nil {
			return nil, err
		}
	} else {
		if c.retKeys, err = d.uint64s(secRetKeys, "sparse return keys"); err != nil {
			return nil, err
		}
		if err := checkAscending(c.retKeys); err != nil {
			return nil, err
		}
		if c.retSpan, err = d.int32s(secRetSpan, "sparse return spans"); err != nil {
			return nil, err
		}
		if err := checkOffsets("sparse return spans", c.retSpan, len(c.retKeys), len(c.retTo)); err != nil {
			return nil, err
		}
	}

	// Per-symbol successor mask slabs, plus the derived start/accept rows.
	slab, ok := mul(cells, c.w)
	if !ok {
		return nil, fmt.Errorf("query: %d×%d mask slab overflows", cells, c.w)
	}
	for _, t := range []struct {
		tag  uint32
		what string
		dst  *[]uint64
	}{
		{secIntMask, "internal mask", &c.intMask},
		{secCallMask, "call mask", &c.callMask},
	} {
		v, err := d.uint64s(t.tag, t.what)
		if err != nil {
			return nil, err
		}
		if len(v) != slab {
			return nil, fmt.Errorf("query: %s slab holds %d words, want %d", t.what, len(v), slab)
		}
		if err := checkMaskBits(t.what, v, num, c.w); err != nil {
			return nil, err
		}
		*t.dst = v
	}
	c.startRow = bitset.New(num)
	for _, q := range c.starts {
		c.startRow.Set(int(q))
	}
	c.acceptRow = bitset.New(num)
	for q := 0; q < num; q++ {
		if c.accept[q] {
			c.acceptRow.Set(q)
		}
	}
	return c, nil
}

// checkMaskBits rejects mask slabs with bits set beyond the state range:
// a phantom high bit would make NextSet yield a state ≥ num and index the
// adjacency tables out of range.
func checkMaskBits(what string, slab []uint64, num, w int) error {
	rem := uint(num) & 63
	if rem == 0 {
		return nil
	}
	high := ^uint64(0) << rem
	for row := 0; row < len(slab)/w; row++ {
		if slab[row*w+w-1]&high != 0 {
			return fmt.Errorf("query: %s row %d sets bits beyond the %d states", what, row, num)
		}
	}
	return nil
}

// decodeQuery dispatches on the container kind.
func decodeQuery(data []byte, alpha *alphabet.Alphabet, zeroCopy bool) (Query, error) {
	r, err := format.NewReader(data)
	if err != nil {
		return nil, err
	}
	d := &decodeState{r: r, alpha: alpha, zeroCopy: zeroCopy}
	switch r.Kind() {
	case format.KindDNWA:
		return decodeCompiled(d)
	case format.KindNNWA:
		return decodeCompiledN(d)
	default:
		return nil, fmt.Errorf("query: container kind %d is not a compiled query", r.Kind())
	}
}

// UnmarshalCompiled decodes a standalone serialized compiled DNWA, copying
// every table out of data (data may be reused or mutated afterwards).
func UnmarshalCompiled(data []byte) (*Compiled, error) {
	q, err := decodeQuery(data, nil, false)
	if err != nil {
		return nil, err
	}
	c, ok := q.(*Compiled)
	if !ok {
		return nil, fmt.Errorf("query: container holds a nondeterministic automaton, want a compiled DNWA")
	}
	return c, nil
}

// UnmarshalCompiledN decodes a standalone serialized compiled NNWA, copying
// every table out of data.
func UnmarshalCompiledN(data []byte) (*CompiledN, error) {
	q, err := decodeQuery(data, nil, false)
	if err != nil {
		return nil, err
	}
	c, ok := q.(*CompiledN)
	if !ok {
		return nil, fmt.Errorf("query: container holds a deterministic automaton, want a compiled NNWA")
	}
	return c, nil
}

// UnmarshalQuery decodes either serialized compiled form, copying every
// table out of data.
func UnmarshalQuery(data []byte) (Query, error) { return decodeQuery(data, nil, false) }

// LoadQueryMapped decodes either serialized compiled form zero-copy: the
// transition tables and mask slabs alias data directly (checked
// reinterpretation of the little-endian sections), so data must stay valid
// and unmodified — typically an mmap'd read-only region — for as long as
// the query is in use.
func LoadQueryMapped(data []byte) (Query, error) { return decodeQuery(data, nil, true) }

// Bundle is a named, ordered set of compiled queries over one shared
// alphabet — the serializable unit a fleet of front-ends boots from.  Build
// one with NewBundle/Add and Marshal it, or load one with UnmarshalBundle,
// LoadBundleMapped, or OpenBundle and hand it to engine.RegisterBundle (or
// serve.NewPoolFromBundle).
type Bundle struct {
	alpha   *alphabet.Alphabet
	names   []string
	queries []Query
	close   func() error
}

// NewBundle starts an empty bundle over the given alphabet.
func NewBundle(alpha *alphabet.Alphabet) *Bundle { return &Bundle{alpha: alpha} }

// Add appends a compiled query under a display name.  The name must be new
// and the query's alphabet must equal the bundle's (the same invariant
// engine.RegisterQuery enforces, checked here so a bundle cannot be
// serialized in an unbootable state).  Only the serializable compiled forms
// — *Compiled and *CompiledN — are accepted.
func (b *Bundle) Add(name string, q Query) error {
	switch q.(type) {
	case *Compiled, *CompiledN:
	default:
		return fmt.Errorf("query: bundle cannot serialize %T (want *Compiled or *CompiledN)", q)
	}
	for _, n := range b.names {
		if n == name {
			return fmt.Errorf("query: bundle already holds a query named %q", name)
		}
	}
	if !b.alpha.Equal(q.Alphabet()) {
		return fmt.Errorf("query: query %q uses alphabet %v, bundle is over %v", name, q.Alphabet(), b.alpha)
	}
	b.names = append(b.names, name)
	b.queries = append(b.queries, q)
	return nil
}

// Len returns the number of queries in the bundle.
func (b *Bundle) Len() int { return len(b.queries) }

// Alphabet returns the bundle's shared alphabet.
func (b *Bundle) Alphabet() *alphabet.Alphabet { return b.alpha }

// Names returns the query names in index order (a copy).
func (b *Bundle) Names() []string { return append([]string(nil), b.names...) }

// Name returns the i-th query's display name.
func (b *Bundle) Name(i int) string { return b.names[i] }

// Query returns the i-th compiled query.
func (b *Bundle) Query(i int) Query { return b.queries[i] }

// Marshal serializes the bundle: the shared alphabet once, the names, and
// one embedded container per query (each without its own alphabet section).
func (b *Bundle) Marshal() []byte {
	w := format.NewWriter(format.KindBundle)
	w.Strings(secAlphabet, b.alpha.Symbols())
	w.Strings(secNames, b.names)
	for _, q := range b.queries {
		switch c := q.(type) {
		case *Compiled:
			w.Bytes(secQuery, c.encode(false))
		case *CompiledN:
			w.Bytes(secQuery, c.encode(false))
		}
	}
	return w.Finish()
}

// Close releases the mapped region backing a bundle from OpenBundle; after
// Close no query of the bundle may be used.  Bundles built in memory or
// loaded with UnmarshalBundle have nothing to release.
func (b *Bundle) Close() error {
	if b.close == nil {
		return nil
	}
	c := b.close
	b.close = nil
	return c()
}

// decodeBundle rebuilds a bundle from a KindBundle container.
func decodeBundle(data []byte, zeroCopy bool) (*Bundle, error) {
	r, err := format.NewReader(data)
	if err != nil {
		return nil, err
	}
	if r.Kind() != format.KindBundle {
		return nil, fmt.Errorf("query: container kind %d is not a bundle", r.Kind())
	}
	alphaSec, ok := r.Section(secAlphabet)
	if !ok {
		return nil, fmt.Errorf("query: bundle is missing its alphabet section")
	}
	symbols, err := format.Strings(alphaSec)
	if err != nil {
		return nil, fmt.Errorf("query: bundle alphabet: %w", err)
	}
	alpha := alphabet.New(symbols...)
	if alpha.Size() != len(symbols) {
		return nil, fmt.Errorf("query: bundle alphabet repeats a symbol (%d listed, %d distinct)",
			len(symbols), alpha.Size())
	}
	namesSec, ok := r.Section(secNames)
	if !ok {
		return nil, fmt.Errorf("query: bundle is missing its names section")
	}
	names, err := format.Strings(namesSec)
	if err != nil {
		return nil, fmt.Errorf("query: bundle names: %w", err)
	}
	if dup := firstDuplicate(names); dup != "" {
		return nil, fmt.Errorf("query: bundle names repeat %q", dup)
	}
	blobs := r.Sections(secQuery)
	if len(blobs) != len(names) {
		return nil, fmt.Errorf("query: bundle names %d queries but embeds %d", len(names), len(blobs))
	}
	b := &Bundle{alpha: alpha, names: names}
	for i, blob := range blobs {
		q, err := decodeQuery(blob, alpha, zeroCopy)
		if err != nil {
			return nil, fmt.Errorf("query: bundle query %q: %w", names[i], err)
		}
		b.queries = append(b.queries, q)
	}
	return b, nil
}

func firstDuplicate(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return sorted[i]
		}
	}
	return ""
}

// UnmarshalBundle decodes a serialized bundle, copying every table out of
// data.
func UnmarshalBundle(data []byte) (*Bundle, error) { return decodeBundle(data, false) }

// LoadBundleMapped decodes a serialized bundle zero-copy: every query's
// tables alias data directly, so data must stay valid and unmodified for
// the bundle's lifetime (see LoadQueryMapped).
func LoadBundleMapped(data []byte) (*Bundle, error) { return decodeBundle(data, true) }

// OpenBundle maps the file read-only (mmap where the platform provides it,
// a plain read otherwise) and loads the bundle zero-copy: the transition
// tables of every query point straight into the mapped region, so N
// processes opening one bundle share a single resident copy of the compiled
// tables.  Call Close on the bundle to release the mapping.
func OpenBundle(path string) (*Bundle, error) {
	data, closeFn, err := format.Map(path)
	if err != nil {
		return nil, err
	}
	b, err := LoadBundleMapped(data)
	if err != nil {
		closeFn()
		return nil, err
	}
	b.close = closeFn
	return b, nil
}
