package query

import (
	"fmt"
	"sort"

	"repro/internal/alphabet"
	"repro/internal/bitset"
	"repro/internal/query/format"
)

// This file serializes the compiled automata: compiled tables are immutable
// and deterministic, so once a query set is compiled it can be written to
// disk as a versioned little-endian artifact and booted by any number of
// front-end processes without recompiling — the "compiled-query persistence"
// direction of the roadmap.  The container layout (header, section
// directory, 8-byte-aligned payloads) lives in the format subpackage; this
// file owns the section registry and the semantic validation.
//
// Three object kinds exist:
//
//   - a Compiled DNWA (format.KindDNWA): meta, alphabet, accept bytes, the
//     dense call/internal tables, and either the dense return table or the
//     sorted sparse key/value pair;
//   - a CompiledN NNWA (format.KindNNWA): meta, alphabet, starts, accept
//     bytes, the CSR call/internal/return adjacency, and the per-symbol
//     successor bitmask slabs;
//   - a Bundle (format.KindBundle): one shared alphabet, the query names,
//     and one embedded per-query blob (a full KindDNWA/KindNNWA container
//     minus its alphabet section) per query.
//
// Unmarshal* copy every table out of the input; LoadQueryMapped /
// LoadBundleMapped point the int32/uint64 table slices directly into the
// provided byte region via checked reinterpretation, and OpenBundle maps a
// file read-only (mmap where available) and loads zero-copy — the cold-boot
// path experiment E25 measures against parse+compile.
//
// Every decode path validates the tables before a runner can touch them —
// lengths against num/syms, targets against the state range, offsets
// monotonic, sparse keys strictly ascending, mask bits beyond the state
// range clear — so arbitrary bytes fail with an error rather than a panic,
// and no allocation is sized by attacker-controlled fields beyond the input
// length.

// Section tags of the serialized compiled-query containers.  Tags are
// stable; new sections may be added in later versions but existing ones
// never change meaning.
const (
	secMeta     = 1  // uint64s: kind-specific dimensions and flags
	secAlphabet = 2  // string list: alphabet symbols in index order
	secAccept   = 3  // bytes: one 0/1 byte per state
	secCallLin  = 4  // int32s: linear call targets
	secCallHier = 5  // int32s: hierarchical call targets
	secInternal = 6  // int32s: internal targets (DNWA dense table)
	secReturnT  = 7  // int32s: DNWA dense return table
	secRetKeys  = 8  // uint64s: sparse return keys, strictly ascending
	secRetVals  = 9  // int32s: DNWA sparse return values
	secStarts   = 10 // int32s: NNWA start states
	secCallOff  = 11 // int32s: NNWA call CSR prefix offsets
	secIntOff   = 12 // int32s: NNWA internal CSR prefix offsets
	secIntTo    = 13 // int32s: NNWA internal CSR targets
	secRetOff   = 14 // int32s: NNWA dense return CSR prefix offsets
	secRetTo    = 15 // int32s: NNWA return CSR targets
	secRetSpan  = 16 // int32s: NNWA sparse return key spans
	secIntMask  = 17 // uint64s: NNWA per-symbol internal successor slab
	secCallMask = 18 // uint64s: NNWA per-symbol call successor slab
	secNames    = 19 // string list: bundle query names
	secQuery    = 20 // bytes: one embedded query container per bundle query

	// Product-compiled cluster sections (format.KindProduct, PR 9).
	secAcceptMask = 21 // uint64s: per-query accept bitmask slab
	secGroupIdx   = 22 // int32s: bundle indices the product's mask bits demux to
	secSolo       = 23 // int32s: bundle indices served by fanned-out secQuery blobs
	secProduct    = 24 // bytes: one embedded KindProduct container per cluster
)

// Decode limits: far beyond any automaton this repository compiles, but
// small enough that no validation product overflows and no runner index
// computation wraps.
const (
	maxStates  = 1 << 22
	maxSymbols = 1 << 20
)

// mul returns a*b, reporting overflow or a negative operand as !ok.
func mul(a, b int) (int, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b {
		return 0, false
	}
	return p, true
}

func boolBytes(v []bool) []byte {
	b := make([]byte, len(v))
	for i, x := range v {
		if x {
			b[i] = 1
		}
	}
	return b
}

// marshalVersion maps a decoded-from container version to the version
// Marshal should emit: a freshly built object (0) serializes as
// VersionHashed so every new artifact carries a content hash, while a
// decoded object re-emits the version it came from so golden v1 bytes
// round-trip byte-identically.
func marshalVersion(v uint32) uint32 {
	if v == 0 {
		return format.VersionHashed
	}
	return v
}

// Marshal serializes the compiled automaton, alphabet included, into a
// standalone KindDNWA container (hashed, unless decoded from a v1 one).
func (c *Compiled) Marshal() []byte { return c.encode(true, marshalVersion(c.fmtVersion)) }

func (c *Compiled) encode(includeAlpha bool, version uint32) []byte {
	w := format.NewWriter(format.KindDNWA)
	w.SetVersion(version)
	dense := uint64(0)
	if c.dense {
		dense = 1
	}
	w.Uint64s(secMeta, []uint64{uint64(c.num), uint64(c.syms), uint64(c.start), uint64(c.dead), dense})
	if includeAlpha {
		w.Strings(secAlphabet, c.alpha.Symbols())
	}
	w.Bytes(secAccept, boolBytes(c.accept))
	w.Int32s(secCallLin, c.callLin)
	w.Int32s(secCallHier, c.callHier)
	w.Int32s(secInternal, c.internT)
	if c.dense {
		w.Int32s(secReturnT, c.returnT)
	} else {
		w.Uint64s(secRetKeys, c.sparseR.keys)
		w.Int32s(secRetVals, c.sparseR.vals)
	}
	return w.Finish()
}

// Marshal serializes the compiled automaton, alphabet included, into a
// standalone KindNNWA container (hashed, unless decoded from a v1 one).
func (c *CompiledN) Marshal() []byte { return c.encode(true, marshalVersion(c.fmtVersion)) }

func (c *CompiledN) encode(includeAlpha bool, version uint32) []byte {
	w := format.NewWriter(format.KindNNWA)
	w.SetVersion(version)
	dense := uint64(0)
	if c.dense {
		dense = 1
	}
	w.Uint64s(secMeta, []uint64{uint64(c.num), uint64(c.syms), dense})
	if includeAlpha {
		w.Strings(secAlphabet, c.alpha.Symbols())
	}
	w.Int32s(secStarts, c.starts)
	w.Bytes(secAccept, boolBytes(c.accept))
	w.Int32s(secCallOff, c.callOff)
	w.Int32s(secCallLin, c.callLin)
	w.Int32s(secCallHier, c.callHier)
	w.Int32s(secIntOff, c.intOff)
	w.Int32s(secIntTo, c.intTo)
	if c.dense {
		w.Int32s(secRetOff, c.retOff)
	} else {
		w.Uint64s(secRetKeys, c.retKeys)
		w.Int32s(secRetSpan, c.retSpan)
	}
	w.Int32s(secRetTo, c.retTo)
	w.Uint64s(secIntMask, c.intMask)
	w.Uint64s(secCallMask, c.callMask)
	return w.Finish()
}

// decodeState holds what a single query decode needs: the parsed container,
// the alphabet (shared by a bundle, or read from the blob's own section),
// and whether table slices may alias the input bytes.
type decodeState struct {
	r        *format.Reader
	alpha    *alphabet.Alphabet
	zeroCopy bool
}

func (d *decodeState) section(tag uint32, what string) ([]byte, error) {
	b, ok := d.r.Section(tag)
	if !ok {
		return nil, fmt.Errorf("query: serialized automaton is missing its %s section", what)
	}
	return b, nil
}

func (d *decodeState) int32s(tag uint32, what string) ([]int32, error) {
	b, err := d.section(tag, what)
	if err != nil {
		return nil, err
	}
	v, err := format.Int32s(b, d.zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("query: %s section: %w", what, err)
	}
	return v, nil
}

func (d *decodeState) uint64s(tag uint32, what string) ([]uint64, error) {
	b, err := d.section(tag, what)
	if err != nil {
		return nil, err
	}
	v, err := format.Uint64s(b, d.zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("query: %s section: %w", what, err)
	}
	return v, nil
}

// loadAlphabet reads the container's own alphabet section when no shared
// alphabet was supplied.  Product containers call it before decoding their
// embedded automaton (whose symbol count is not yet known); resolveAlphabet
// adds the size check once it is.
func (d *decodeState) loadAlphabet() error {
	if d.alpha != nil {
		return nil
	}
	b, err := d.section(secAlphabet, "alphabet")
	if err != nil {
		return err
	}
	symbols, err := format.Strings(b)
	if err != nil {
		return fmt.Errorf("query: alphabet section: %w", err)
	}
	d.alpha = alphabet.New(symbols...)
	if d.alpha.Size() != len(symbols) {
		return fmt.Errorf("query: serialized alphabet repeats a symbol (%d listed, %d distinct)",
			len(symbols), d.alpha.Size())
	}
	return nil
}

// resolveAlphabet returns the shared alphabet, or reads the blob's own
// alphabet section, and checks it against the serialized symbol count.
func (d *decodeState) resolveAlphabet(syms int) error {
	if err := d.loadAlphabet(); err != nil {
		return err
	}
	if d.alpha.Size()+1 != syms {
		return fmt.Errorf("query: automaton compiled over %d symbols, alphabet has %d",
			syms-1, d.alpha.Size())
	}
	return nil
}

// decodeAccept reads the per-state accept bytes (always copied — []bool
// cannot alias arbitrary bytes safely).
func (d *decodeState) decodeAccept(num int) ([]bool, error) {
	b, err := d.section(secAccept, "accept")
	if err != nil {
		return nil, err
	}
	if len(b) != num {
		return nil, fmt.Errorf("query: accept section holds %d states, automaton has %d", len(b), num)
	}
	accept := make([]bool, num)
	for i, x := range b {
		if x > 1 {
			return nil, fmt.Errorf("query: accept byte %d is %d, want 0 or 1", i, x)
		}
		accept[i] = x == 1
	}
	return accept, nil
}

// checkTargets verifies every entry of a target table lies in [0, num).
func checkTargets(what string, t []int32, num int) error {
	for i, v := range t {
		if v < 0 || int(v) >= num {
			return fmt.Errorf("query: %s[%d] = %d outside the %d states", what, i, v, num)
		}
	}
	return nil
}

// checkOffsets verifies a CSR prefix-offset table: the right length,
// starting at zero, monotone, and ending exactly at the target count.
func checkOffsets(what string, off []int32, cells, targets int) error {
	if len(off) != cells+1 {
		return fmt.Errorf("query: %s has %d offsets, want %d", what, len(off), cells+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("query: %s starts at %d, want 0", what, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("query: %s decreases at %d (%d < %d)", what, i, off[i], off[i-1])
		}
	}
	if int(off[len(off)-1]) != targets {
		return fmt.Errorf("query: %s ends at %d, targets hold %d entries", what, off[len(off)-1], targets)
	}
	return nil
}

// checkAscending verifies sparse return keys are strictly ascending (the
// binary-search invariant).
func checkAscending(keys []uint64) error {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("query: sparse return keys not strictly ascending at %d", i)
		}
	}
	return nil
}

// decodeCompiled rebuilds a Compiled from a KindDNWA container.
func decodeCompiled(d *decodeState) (*Compiled, error) {
	if d.r.Kind() != format.KindDNWA {
		return nil, fmt.Errorf("query: container kind %d is not a compiled DNWA", d.r.Kind())
	}
	meta, err := d.uint64s(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	if len(meta) < 5 {
		return nil, fmt.Errorf("query: DNWA meta section holds %d values, want 5", len(meta))
	}
	num, syms := int(meta[0]), int(meta[1])
	if num < 1 || num > maxStates {
		return nil, fmt.Errorf("query: %d states outside [1, %d]", meta[0], maxStates)
	}
	if syms < 1 || syms > maxSymbols {
		return nil, fmt.Errorf("query: %d symbol columns outside [1, %d]", meta[1], maxSymbols)
	}
	if meta[2] >= uint64(num) || meta[3] >= uint64(num) {
		return nil, fmt.Errorf("query: start %d / dead %d outside the %d states", meta[2], meta[3], num)
	}
	c := &Compiled{
		num:        num,
		syms:       syms,
		start:      int32(meta[2]),
		dead:       int32(meta[3]),
		dense:      meta[4] == 1,
		fmtVersion: d.r.Version(),
	}
	if err := d.resolveAlphabet(syms); err != nil {
		return nil, err
	}
	c.alpha = d.alpha
	if c.accept, err = d.decodeAccept(num); err != nil {
		return nil, err
	}
	cells, ok := mul(num, syms)
	if !ok {
		return nil, fmt.Errorf("query: %d×%d transition cells overflow", num, syms)
	}
	for _, t := range []struct {
		tag  uint32
		what string
		dst  *[]int32
	}{
		{secCallLin, "call linear", &c.callLin},
		{secCallHier, "call hierarchical", &c.callHier},
		{secInternal, "internal", &c.internT},
	} {
		v, err := d.int32s(t.tag, t.what)
		if err != nil {
			return nil, err
		}
		if len(v) != cells {
			return nil, fmt.Errorf("query: %s table holds %d cells, want %d", t.what, len(v), cells)
		}
		if err := checkTargets(t.what, v, num); err != nil {
			return nil, err
		}
		*t.dst = v
	}
	if c.dense {
		retCells, ok := mul(num, cells)
		if !ok {
			return nil, fmt.Errorf("query: dense return table for %d states overflows", num)
		}
		v, err := d.int32s(secReturnT, "dense return")
		if err != nil {
			return nil, err
		}
		if len(v) != retCells {
			return nil, fmt.Errorf("query: dense return table holds %d cells, want %d", len(v), retCells)
		}
		if err := checkTargets("dense return", v, num); err != nil {
			return nil, err
		}
		c.returnT = v
	} else {
		keys, err := d.uint64s(secRetKeys, "sparse return keys")
		if err != nil {
			return nil, err
		}
		vals, err := d.int32s(secRetVals, "sparse return values")
		if err != nil {
			return nil, err
		}
		if len(keys) != len(vals) {
			return nil, fmt.Errorf("query: %d sparse return keys vs %d values", len(keys), len(vals))
		}
		if err := checkAscending(keys); err != nil {
			return nil, err
		}
		if err := checkTargets("sparse return", vals, num); err != nil {
			return nil, err
		}
		c.sparseR = sparseTable{keys: keys, vals: vals}
	}
	return c, nil
}

// decodeCompiledN rebuilds a CompiledN from a KindNNWA container.
func decodeCompiledN(d *decodeState) (*CompiledN, error) {
	if d.r.Kind() != format.KindNNWA {
		return nil, fmt.Errorf("query: container kind %d is not a compiled NNWA", d.r.Kind())
	}
	meta, err := d.uint64s(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	if len(meta) < 3 {
		return nil, fmt.Errorf("query: NNWA meta section holds %d values, want 3", len(meta))
	}
	num, syms := int(meta[0]), int(meta[1])
	if num < 1 || num > maxStates {
		return nil, fmt.Errorf("query: %d states outside [1, %d]", meta[0], maxStates)
	}
	if syms < 1 || syms > maxSymbols {
		return nil, fmt.Errorf("query: %d symbol columns outside [1, %d]", meta[1], maxSymbols)
	}
	c := &CompiledN{num: num, syms: syms, dense: meta[2] == 1, w: bitset.Words(num), fmtVersion: d.r.Version()}
	if err := d.resolveAlphabet(syms); err != nil {
		return nil, err
	}
	c.alpha = d.alpha
	if c.accept, err = d.decodeAccept(num); err != nil {
		return nil, err
	}
	if c.starts, err = d.int32s(secStarts, "start states"); err != nil {
		return nil, err
	}
	if err := checkTargets("start states", c.starts, num); err != nil {
		return nil, err
	}
	cells, ok := mul(num, syms)
	if !ok {
		return nil, fmt.Errorf("query: %d×%d transition cells overflow", num, syms)
	}

	// Call and internal CSR adjacency.
	if c.callLin, err = d.int32s(secCallLin, "call linear"); err != nil {
		return nil, err
	}
	if c.callHier, err = d.int32s(secCallHier, "call hierarchical"); err != nil {
		return nil, err
	}
	if len(c.callHier) != len(c.callLin) {
		return nil, fmt.Errorf("query: %d call linear targets vs %d hierarchical", len(c.callLin), len(c.callHier))
	}
	if c.callOff, err = d.int32s(secCallOff, "call offsets"); err != nil {
		return nil, err
	}
	if err := checkOffsets("call offsets", c.callOff, cells, len(c.callLin)); err != nil {
		return nil, err
	}
	if err := checkTargets("call linear", c.callLin, num); err != nil {
		return nil, err
	}
	if err := checkTargets("call hierarchical", c.callHier, num); err != nil {
		return nil, err
	}
	if c.intTo, err = d.int32s(secIntTo, "internal targets"); err != nil {
		return nil, err
	}
	if c.intOff, err = d.int32s(secIntOff, "internal offsets"); err != nil {
		return nil, err
	}
	if err := checkOffsets("internal offsets", c.intOff, cells, len(c.intTo)); err != nil {
		return nil, err
	}
	if err := checkTargets("internal targets", c.intTo, num); err != nil {
		return nil, err
	}

	// Return adjacency, dense prefix offsets or sorted key spans.
	if c.retTo, err = d.int32s(secRetTo, "return targets"); err != nil {
		return nil, err
	}
	if err := checkTargets("return targets", c.retTo, num); err != nil {
		return nil, err
	}
	if c.dense {
		retCells, ok := mul(num, cells)
		if !ok {
			return nil, fmt.Errorf("query: dense return index for %d states overflows", num)
		}
		if c.retOff, err = d.int32s(secRetOff, "return offsets"); err != nil {
			return nil, err
		}
		if err := checkOffsets("return offsets", c.retOff, retCells, len(c.retTo)); err != nil {
			return nil, err
		}
	} else {
		if c.retKeys, err = d.uint64s(secRetKeys, "sparse return keys"); err != nil {
			return nil, err
		}
		if err := checkAscending(c.retKeys); err != nil {
			return nil, err
		}
		if c.retSpan, err = d.int32s(secRetSpan, "sparse return spans"); err != nil {
			return nil, err
		}
		if err := checkOffsets("sparse return spans", c.retSpan, len(c.retKeys), len(c.retTo)); err != nil {
			return nil, err
		}
	}

	// Per-symbol successor mask slabs, plus the derived start/accept rows.
	slab, ok := mul(cells, c.w)
	if !ok {
		return nil, fmt.Errorf("query: %d×%d mask slab overflows", cells, c.w)
	}
	for _, t := range []struct {
		tag  uint32
		what string
		dst  *[]uint64
	}{
		{secIntMask, "internal mask", &c.intMask},
		{secCallMask, "call mask", &c.callMask},
	} {
		v, err := d.uint64s(t.tag, t.what)
		if err != nil {
			return nil, err
		}
		if len(v) != slab {
			return nil, fmt.Errorf("query: %s slab holds %d words, want %d", t.what, len(v), slab)
		}
		if err := checkMaskBits(t.what, v, num, c.w); err != nil {
			return nil, err
		}
		*t.dst = v
	}
	c.startRow = packStateRow(num, c.starts)
	c.acceptRow = packAcceptRow(c.accept)
	return c, nil
}

// checkMaskBits rejects mask slabs with bits set beyond the state range:
// a phantom high bit would make NextSet yield a state ≥ num and index the
// adjacency tables out of range.
func checkMaskBits(what string, slab []uint64, num, w int) error {
	rem := uint(num) & 63
	if rem == 0 {
		return nil
	}
	high := ^uint64(0) << rem
	for row := 0; row < len(slab)/w; row++ {
		if slab[row*w+w-1]&high != 0 {
			return fmt.Errorf("query: %s row %d sets bits beyond the %d states", what, row, num)
		}
	}
	return nil
}

// decodeQuery dispatches on the container kind.
func decodeQuery(data []byte, alpha *alphabet.Alphabet, zeroCopy bool) (Query, error) {
	r, err := format.NewReader(data)
	if err != nil {
		return nil, err
	}
	d := &decodeState{r: r, alpha: alpha, zeroCopy: zeroCopy}
	switch r.Kind() {
	case format.KindDNWA:
		return decodeCompiled(d)
	case format.KindNNWA:
		return decodeCompiledN(d)
	default:
		return nil, fmt.Errorf("query: container kind %d is not a compiled query", r.Kind())
	}
}

// UnmarshalCompiled decodes a standalone serialized compiled DNWA, copying
// every table out of data (data may be reused or mutated afterwards).
func UnmarshalCompiled(data []byte) (*Compiled, error) {
	q, err := decodeQuery(data, nil, false)
	if err != nil {
		return nil, err
	}
	c, ok := q.(*Compiled)
	if !ok {
		return nil, fmt.Errorf("query: container holds a nondeterministic automaton, want a compiled DNWA")
	}
	return c, nil
}

// UnmarshalCompiledN decodes a standalone serialized compiled NNWA, copying
// every table out of data.
func UnmarshalCompiledN(data []byte) (*CompiledN, error) {
	q, err := decodeQuery(data, nil, false)
	if err != nil {
		return nil, err
	}
	c, ok := q.(*CompiledN)
	if !ok {
		return nil, fmt.Errorf("query: container holds a deterministic automaton, want a compiled NNWA")
	}
	return c, nil
}

// UnmarshalQuery decodes either serialized compiled form, copying every
// table out of data.
func UnmarshalQuery(data []byte) (Query, error) { return decodeQuery(data, nil, false) }

// LoadQueryMapped decodes either serialized compiled form zero-copy: the
// transition tables and mask slabs alias data directly (checked
// reinterpretation of the little-endian sections), so data must stay valid
// and unmodified — typically an mmap'd read-only region — for as long as
// the query is in use.
func LoadQueryMapped(data []byte) (Query, error) { return decodeQuery(data, nil, true) }

// Marshal serializes the product cluster, alphabet included, into a
// standalone KindProduct container: meta ({query count, joint-mode flag}),
// the accept bitmask slab, and the shared automaton as an embedded
// KindDNWA/KindNNWA blob.
func (p *CompiledProduct) Marshal() []byte {
	return p.encode(true, nil, marshalVersion(p.fmtVersion))
}

func (p *CompiledProduct) encode(includeAlpha bool, groupIdx []int32, version uint32) []byte {
	w := format.NewWriter(format.KindProduct)
	w.SetVersion(version)
	mode := uint64(0)
	if !p.Deterministic() {
		mode = 1
	}
	w.Uint64s(secMeta, []uint64{uint64(p.nq), mode})
	if includeAlpha {
		w.Strings(secAlphabet, p.Alphabet().Symbols())
	}
	if groupIdx != nil {
		w.Int32s(secGroupIdx, groupIdx)
	}
	w.Uint64s(secAcceptMask, p.mask)
	switch c := p.inner.(type) {
	case *Compiled:
		w.Bytes(secQuery, c.encode(false, format.Version1))
	case *CompiledN:
		w.Bytes(secQuery, c.encode(false, format.Version1))
	}
	return w.Finish()
}

// decodeProduct rebuilds a CompiledProduct from a KindProduct container,
// returning the demux indices of its group-index section when present (a
// bundle-embedded product names the bundle slots its mask bits answer).
// Beyond the embedded automaton's own validation, the accept mask must have
// exactly the width the mode implies and no bits beyond the query count
// (deterministic) or state count (joint) — the "mask width == query count"
// guarantee nwtool vet relies on.
func decodeProduct(d *decodeState) (*CompiledProduct, []int32, error) {
	if d.r.Kind() != format.KindProduct {
		return nil, nil, fmt.Errorf("query: container kind %d is not a product cluster", d.r.Kind())
	}
	meta, err := d.uint64s(secMeta, "meta")
	if err != nil {
		return nil, nil, err
	}
	if len(meta) < 2 {
		return nil, nil, fmt.Errorf("query: product meta section holds %d values, want 2", len(meta))
	}
	nq, mode := int(meta[0]), meta[1]
	if nq < 1 || nq > maxStates {
		return nil, nil, fmt.Errorf("query: product over %d queries outside [1, %d]", meta[0], maxStates)
	}
	if mode > 1 {
		return nil, nil, fmt.Errorf("query: product mode %d is neither deterministic (0) nor joint (1)", mode)
	}
	if err := d.loadAlphabet(); err != nil {
		return nil, nil, err
	}
	var groupIdx []int32
	if _, ok := d.r.Section(secGroupIdx); ok {
		if groupIdx, err = d.int32s(secGroupIdx, "group index"); err != nil {
			return nil, nil, err
		}
		if len(groupIdx) != nq {
			return nil, nil, fmt.Errorf("query: product answers %d queries but demuxes to %d bundle slots",
				nq, len(groupIdx))
		}
	}
	blob, err := d.section(secQuery, "embedded automaton")
	if err != nil {
		return nil, nil, err
	}
	inner, err := decodeQuery(blob, d.alpha, d.zeroCopy)
	if err != nil {
		return nil, nil, fmt.Errorf("query: product automaton: %w", err)
	}
	mask, err := d.uint64s(secAcceptMask, "accept mask")
	if err != nil {
		return nil, nil, err
	}
	p := &CompiledProduct{inner: inner, nq: nq, mask: mask, fmtVersion: d.r.Version()}
	switch c := inner.(type) {
	case *Compiled:
		if mode != 0 {
			return nil, nil, fmt.Errorf("query: joint-mode product embeds a deterministic automaton")
		}
		p.maskW = bitset.Words(nq)
		want, ok := mul(c.num, p.maskW)
		if !ok || len(mask) != want {
			return nil, nil, fmt.Errorf("query: product accept mask holds %d words, want %d (%d states × %d)",
				len(mask), want, c.num, p.maskW)
		}
		if err := checkMaskBits("accept mask", mask, nq, p.maskW); err != nil {
			return nil, nil, err
		}
	case *CompiledN:
		if mode != 1 {
			return nil, nil, fmt.Errorf("query: deterministic-mode product embeds a nondeterministic automaton")
		}
		p.maskW = c.w
		want, ok := mul(nq, p.maskW)
		if !ok || len(mask) != want {
			return nil, nil, fmt.Errorf("query: product accept mask holds %d words, want %d (%d queries × %d)",
				len(mask), want, nq, p.maskW)
		}
		if err := checkMaskBits("accept mask", mask, c.num, p.maskW); err != nil {
			return nil, nil, err
		}
	}
	return p, groupIdx, nil
}

// UnmarshalProduct decodes a standalone serialized product cluster, copying
// every table out of data.
func UnmarshalProduct(data []byte) (*CompiledProduct, error) {
	r, err := format.NewReader(data)
	if err != nil {
		return nil, err
	}
	p, _, err := decodeProduct(&decodeState{r: r})
	return p, err
}

// Bundle is a named, ordered set of compiled queries over one shared
// alphabet — the serializable unit a fleet of front-ends boots from.  Build
// one with NewBundle/Add and Marshal it, or load one with UnmarshalBundle,
// LoadBundleMapped, or OpenBundle and hand it to engine.RegisterBundle (or
// serve.NewPoolFromBundle).
//
// A bundle may additionally be planned (plan.Bundle or NewPlannedBundle):
// some queries then live inside product-compiled clusters instead of the
// per-query slice — Query returns nil at those indices and Groups says
// which product answers them — while names, order, and verdict semantics
// stay exactly those of the unplanned bundle.
type Bundle struct {
	alpha   *alphabet.Alphabet
	names   []string
	queries []Query // nil at indices covered by a product group
	groups  []ProductGroup
	close   func() error

	// Identity of the container this bundle was decoded from, for serving
	// and cache keying: raw aliases the decode input (the mapped region for
	// OpenBundle), hash is the verified content hash for a VersionHashed
	// container or the plain checksum of the bytes for a Version1 one, and
	// hashed says which.  All three are zero for a bundle built in memory.
	raw        []byte
	hash       [format.HashSize]byte
	hashed     bool
	fmtVersion uint32
}

// ProductGroup is one planned cluster of a bundle: a product-compiled
// automaton plus the bundle indices its mask bits demux to (Indices[j] is
// the bundle slot answered by verdict bit j).
type ProductGroup struct {
	Indices []int32
	Product *CompiledProduct
}

// NewBundle starts an empty bundle over the given alphabet.
func NewBundle(alpha *alphabet.Alphabet) *Bundle { return &Bundle{alpha: alpha} }

// Add appends a compiled query under a display name.  The name must be new
// and the query's alphabet must equal the bundle's (the same invariant
// engine.RegisterQuery enforces, checked here so a bundle cannot be
// serialized in an unbootable state).  Only the serializable compiled forms
// — *Compiled and *CompiledN — are accepted.
func (b *Bundle) Add(name string, q Query) error {
	switch q.(type) {
	case *Compiled, *CompiledN:
	default:
		return fmt.Errorf("query: bundle cannot serialize %T (want *Compiled or *CompiledN)", q)
	}
	for _, n := range b.names {
		if n == name {
			return fmt.Errorf("query: bundle already holds a query named %q", name)
		}
	}
	if !b.alpha.Equal(q.Alphabet()) {
		return fmt.Errorf("query: query %q uses alphabet %v, bundle is over %v", name, q.Alphabet(), b.alpha)
	}
	b.names = append(b.names, name)
	b.queries = append(b.queries, q)
	return nil
}

// Len returns the number of queries in the bundle.
func (b *Bundle) Len() int { return len(b.queries) }

// Alphabet returns the bundle's shared alphabet.
func (b *Bundle) Alphabet() *alphabet.Alphabet { return b.alpha }

// Names returns the query names in index order (a copy).
func (b *Bundle) Names() []string { return append([]string(nil), b.names...) }

// Name returns the i-th query's display name.
func (b *Bundle) Name(i int) string { return b.names[i] }

// Query returns the i-th compiled query, or nil when index i is answered by
// a product group of a planned bundle (see Groups).
func (b *Bundle) Query(i int) Query { return b.queries[i] }

// Groups returns the product-compiled clusters of a planned bundle (empty
// for an unplanned one).  The returned slice is shared; treat it as
// read-only.
func (b *Bundle) Groups() []ProductGroup { return b.groups }

// Raw returns the serialized container this bundle was decoded from, or
// nil for a bundle built in memory.  The slice aliases the decode input —
// for OpenBundle that is the mapped region, invalid after Close — so
// treat it as read-only and copy it before the bundle goes away.
func (b *Bundle) Raw() []byte { return b.raw }

// ContentHash identifies the container this bundle was decoded from:
// the header's verified content hash with verified=true for a
// VersionHashed container, the plain checksum of the bytes with
// verified=false for a Version1 one.  ok is false for a bundle built in
// memory, which has no serialized identity yet (Marshal it first).
func (b *Bundle) ContentHash() (sum [format.HashSize]byte, verified, ok bool) {
	return b.hash, b.hashed, b.raw != nil
}

// Verify checks a detached NWS1 signature envelope against the container
// this bundle was decoded from.  The bundle must come from a
// VersionHashed container (the hash the signature covers is already
// verified against the bytes at decode time); pub is an NWP1 key file or
// bare 32-byte ed25519 key.
func (b *Bundle) Verify(pub, envelope []byte) error {
	if b.raw == nil {
		return fmt.Errorf("query: bundle was built in memory, nothing to verify")
	}
	if !b.hashed {
		return fmt.Errorf("query: version %d bundle carries no content hash to verify", b.fmtVersion)
	}
	return format.VerifyHash(pub, envelope, b.hash)
}

// NewPlannedBundle assembles a planned bundle over the same alphabet,
// names, and order as src: each cluster (a list of src query indices,
// paired positionally with its product) is answered by the product's
// verdict mask, every other query stays fanned out.  Clusters must
// partition a subset of src's indices — in range, disjoint, sized to the
// product's query count — and every product must share src's alphabet; src
// itself must be unplanned.
func NewPlannedBundle(src *Bundle, clusters [][]int, products []*CompiledProduct) (*Bundle, error) {
	if len(src.groups) != 0 {
		return nil, fmt.Errorf("query: bundle is already planned (%d groups)", len(src.groups))
	}
	if len(clusters) != len(products) {
		return nil, fmt.Errorf("query: %d clusters paired with %d products", len(clusters), len(products))
	}
	b := &Bundle{
		alpha:   src.alpha,
		names:   append([]string(nil), src.names...),
		queries: append([]Query(nil), src.queries...),
	}
	grouped := make([]bool, len(b.queries))
	for gi, cluster := range clusters {
		p := products[gi]
		if p == nil {
			return nil, fmt.Errorf("query: cluster %d has no product", gi)
		}
		if p.QueryCount() != len(cluster) {
			return nil, fmt.Errorf("query: cluster %d holds %d queries, product answers %d",
				gi, len(cluster), p.QueryCount())
		}
		if !b.alpha.Equal(p.Alphabet()) {
			return nil, fmt.Errorf("query: cluster %d product uses alphabet %v, bundle is over %v",
				gi, p.Alphabet(), b.alpha)
		}
		g := ProductGroup{Indices: make([]int32, len(cluster)), Product: p}
		for j, idx := range cluster {
			if idx < 0 || idx >= len(b.queries) {
				return nil, fmt.Errorf("query: cluster %d index %d outside the %d queries", gi, idx, len(b.queries))
			}
			if grouped[idx] {
				return nil, fmt.Errorf("query: query %q appears in two clusters", b.names[idx])
			}
			grouped[idx] = true
			g.Indices[j] = int32(idx)
			b.queries[idx] = nil
		}
		b.groups = append(b.groups, g)
	}
	return b, nil
}

// Marshal serializes the bundle: the shared alphabet once, the names, and
// one embedded container per query (each without its own alphabet section).
// A planned bundle writes its solo-index section, one embedded container
// per solo query (paired positionally with the solo indices), and one
// embedded KindProduct container per cluster, each carrying its demux
// indices; an unplanned bundle's layout is byte-identical to what it was
// before planning existed.
// Embedded blobs always stay at Version1: the outer container's content
// hash covers their bytes, so a per-blob hash would add 32 bytes per query
// for no extra integrity.
func (b *Bundle) Marshal() []byte {
	w := format.NewWriter(format.KindBundle)
	w.SetVersion(marshalVersion(b.fmtVersion))
	w.Strings(secAlphabet, b.alpha.Symbols())
	w.Strings(secNames, b.names)
	var solo []int32
	for i, q := range b.queries {
		if q != nil && len(b.groups) > 0 {
			solo = append(solo, int32(i))
		}
		switch c := q.(type) {
		case *Compiled:
			w.Bytes(secQuery, c.encode(false, format.Version1))
		case *CompiledN:
			w.Bytes(secQuery, c.encode(false, format.Version1))
		}
	}
	if len(b.groups) > 0 {
		w.Int32s(secSolo, solo)
		for _, g := range b.groups {
			w.Bytes(secProduct, g.Product.encode(false, g.Indices, format.Version1))
		}
	}
	return w.Finish()
}

// Close releases the mapped region backing a bundle from OpenBundle; after
// Close no query of the bundle may be used.  Bundles built in memory or
// loaded with UnmarshalBundle have nothing to release.
func (b *Bundle) Close() error {
	if b.close == nil {
		return nil
	}
	c := b.close
	b.close = nil
	return c()
}

// decodeBundle rebuilds a bundle from a KindBundle container.
func decodeBundle(data []byte, zeroCopy bool) (*Bundle, error) {
	r, err := format.NewReader(data)
	if err != nil {
		return nil, err
	}
	if r.Kind() != format.KindBundle {
		return nil, fmt.Errorf("query: container kind %d is not a bundle", r.Kind())
	}
	alphaSec, ok := r.Section(secAlphabet)
	if !ok {
		return nil, fmt.Errorf("query: bundle is missing its alphabet section")
	}
	symbols, err := format.Strings(alphaSec)
	if err != nil {
		return nil, fmt.Errorf("query: bundle alphabet: %w", err)
	}
	alpha := alphabet.New(symbols...)
	if alpha.Size() != len(symbols) {
		return nil, fmt.Errorf("query: bundle alphabet repeats a symbol (%d listed, %d distinct)",
			len(symbols), alpha.Size())
	}
	namesSec, ok := r.Section(secNames)
	if !ok {
		return nil, fmt.Errorf("query: bundle is missing its names section")
	}
	names, err := format.Strings(namesSec)
	if err != nil {
		return nil, fmt.Errorf("query: bundle names: %w", err)
	}
	if dup := firstDuplicate(names); dup != "" {
		return nil, fmt.Errorf("query: bundle names repeat %q", dup)
	}
	blobs := r.Sections(secQuery)
	b := &Bundle{alpha: alpha, names: names, raw: data, fmtVersion: r.Version()}
	if h, ok := r.ContentHash(); ok {
		b.hash, b.hashed = h, true
	} else {
		b.hash = format.Checksum(data)
	}
	soloSec, planned := r.Section(secSolo)
	if !planned {
		// Unplanned layout: one embedded query per name, in order.
		if len(blobs) != len(names) {
			return nil, fmt.Errorf("query: bundle names %d queries but embeds %d", len(names), len(blobs))
		}
		for i, blob := range blobs {
			q, err := decodeQuery(blob, alpha, zeroCopy)
			if err != nil {
				return nil, fmt.Errorf("query: bundle query %q: %w", names[i], err)
			}
			b.queries = append(b.queries, q)
		}
		return b, nil
	}

	// Planned layout: the solo-index section pairs positionally with the
	// embedded query blobs, product containers carry their own demux
	// indices, and together they must cover every name exactly once — the
	// demux-table total nwtool vet re-checks.
	solo, err := format.Int32s(soloSec, false)
	if err != nil {
		return nil, fmt.Errorf("query: bundle solo indices: %w", err)
	}
	if len(blobs) != len(solo) {
		return nil, fmt.Errorf("query: bundle lists %d solo queries but embeds %d", len(solo), len(blobs))
	}
	b.queries = make([]Query, len(names))
	covered := make([]bool, len(names))
	claim := func(idx int32, what string) error {
		if idx < 0 || int(idx) >= len(names) {
			return fmt.Errorf("query: bundle %s index %d outside the %d queries", what, idx, len(names))
		}
		if covered[idx] {
			return fmt.Errorf("query: bundle covers query %q twice", names[idx])
		}
		covered[idx] = true
		return nil
	}
	for i, blob := range blobs {
		if err := claim(solo[i], "solo"); err != nil {
			return nil, err
		}
		q, err := decodeQuery(blob, alpha, zeroCopy)
		if err != nil {
			return nil, fmt.Errorf("query: bundle query %q: %w", names[solo[i]], err)
		}
		b.queries[solo[i]] = q
	}
	for gi, blob := range r.Sections(secProduct) {
		pr, err := format.NewReader(blob)
		if err != nil {
			return nil, fmt.Errorf("query: bundle product %d: %w", gi, err)
		}
		p, idx, err := decodeProduct(&decodeState{r: pr, alpha: alpha, zeroCopy: zeroCopy})
		if err != nil {
			return nil, fmt.Errorf("query: bundle product %d: %w", gi, err)
		}
		if idx == nil {
			return nil, fmt.Errorf("query: bundle product %d has no demux indices", gi)
		}
		for _, i := range idx {
			if err := claim(i, "product"); err != nil {
				return nil, err
			}
		}
		b.groups = append(b.groups, ProductGroup{Indices: idx, Product: p})
	}
	for i, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("query: bundle covers neither solo nor product for query %q", names[i])
		}
	}
	return b, nil
}

func firstDuplicate(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return sorted[i]
		}
	}
	return ""
}

// UnmarshalBundle decodes a serialized bundle, copying every table out of
// data.
func UnmarshalBundle(data []byte) (*Bundle, error) { return decodeBundle(data, false) }

// LoadBundleMapped decodes a serialized bundle zero-copy: every query's
// tables alias data directly, so data must stay valid and unmodified for
// the bundle's lifetime (see LoadQueryMapped).
func LoadBundleMapped(data []byte) (*Bundle, error) { return decodeBundle(data, true) }

// OpenBundle maps the file read-only (mmap where the platform provides it,
// a plain read otherwise) and loads the bundle zero-copy: the transition
// tables of every query point straight into the mapped region, so N
// processes opening one bundle share a single resident copy of the compiled
// tables.  Call Close on the bundle to release the mapping.
func OpenBundle(path string) (*Bundle, error) {
	data, closeFn, err := format.Map(path)
	if err != nil {
		return nil, err
	}
	b, err := LoadBundleMapped(data)
	if err != nil {
		closeFn()
		return nil, err
	}
	b.close = closeFn
	return b, nil
}
