package query

import (
	"bytes"
	"testing"
)

// exerciseDecoded drives a decoded query hard enough to hit every table:
// calls, internals, matched and pending returns, in-range and out-of-range
// symbol IDs, plus Accepting and Reset.  A decoder bug that let an invalid
// table through shows up here as a panic or slice overrun.
func exerciseDecoded(q Query) {
	r := q.NewRunner()
	syms := q.Alphabet().Size() + 1
	for _, sym := range []int{0, syms - 1, syms, -1, 1 << 20} {
		r.StepCall(sym)
		r.StepInternal(sym)
		r.StepReturn(sym)
	}
	r.StepReturn(0) // pending return on a drained stack
	r.Accepting()
	r.Reset()
	r.Accepting()
}

// FuzzUnmarshalCompiled is the serialization fuzz target: arbitrary bytes
// must make every decoder fail cleanly — an error, never a panic and never
// an allocation sized beyond the input — and any input that does decode
// must re-marshal into bytes that decode again (valid marshals round-trip).
// The copy and zero-copy paths are both exercised.
func FuzzUnmarshalCompiled(f *testing.F) {
	alpha := goldenAlphabet()
	seeds := [][]byte{
		// Marshal emits VersionHashed containers; the explicit Version1
		// encodes keep the unhashed decode path in the corpus too.
		Compile(PathQuery(alpha, "a", "b")).Marshal(),
		Compile(PathQuery(alpha, "a", "b")).encode(true, 1),
		Compile(WellFormed(alpha)).Marshal(),
		CompileN(goldenNNWA()).Marshal(),
		CompileN(goldenNNWA()).encode(true, 1),
		{},
		[]byte("NWQ1"),
	}
	b := NewBundle(alpha)
	if err := b.Add("wf", Compile(WellFormed(alpha))); err != nil {
		f.Fatal(err)
	}
	if err := b.Add("nn", CompileN(goldenNNWA())); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, b.Marshal())
	for _, s := range seeds {
		f.Add(s)
		if len(s) > 40 {
			f.Add(s[:40])         // truncated header/directory
			f.Add(s[:len(s)-3])   // truncated payload
			mut := bytes.Clone(s) // corrupted payload
			mut[len(mut)/2] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			data = data[:1<<18]
		}
		if q, err := UnmarshalQuery(data); err == nil {
			exerciseDecoded(q)
			var again []byte
			switch c := q.(type) {
			case *Compiled:
				again = c.Marshal()
			case *CompiledN:
				again = c.Marshal()
			}
			if _, err := UnmarshalQuery(again); err != nil {
				t.Fatalf("decoded query failed to round-trip: %v", err)
			}
		}
		// The zero-copy path must accept and reject exactly the same inputs;
		// decode from a private copy so table aliasing cannot leak into the
		// next iteration.
		if q, err := LoadQueryMapped(bytes.Clone(data)); err == nil {
			exerciseDecoded(q)
		}
		if bdl, err := UnmarshalBundle(data); err == nil {
			for i := 0; i < bdl.Len(); i++ {
				exerciseDecoded(bdl.Query(i))
			}
			if _, err := UnmarshalBundle(rebuildBundleRaw(bdl).Marshal()); err != nil {
				t.Fatalf("decoded bundle failed to round-trip: %v", err)
			}
		}
		if bdl, err := LoadBundleMapped(bytes.Clone(data)); err == nil {
			for i := 0; i < bdl.Len(); i++ {
				exerciseDecoded(bdl.Query(i))
			}
		}
	})
}

// rebuildBundleRaw is rebuildBundle without the testing.T plumbing, for the
// fuzz path where Add cannot fail on a just-decoded bundle.
func rebuildBundleRaw(b *Bundle) *Bundle {
	out := NewBundle(b.Alphabet())
	for i, name := range b.Names() {
		if err := out.Add(name, b.Query(i)); err != nil {
			panic(err)
		}
	}
	return out
}
