package query

import (
	"bytes"
	"encoding/binary"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/nwa"
	"repro/internal/query/format"
)

// updateGolden rewrites the committed fixtures under testdata/ from the
// current encoder: go test ./internal/query -run TestGoldenFixtures -update
var updateGolden = flag.Bool("update", false, "rewrite the golden fixtures under testdata/")

// goldenAlphabet is the fixtures' shared two-symbol alphabet.
func goldenAlphabet() *alphabet.Alphabet { return alphabet.New("a", "b") }

// goldenNNWA builds the fixtures' nondeterministic automaton.  Every
// (state, symbol) adjacency bucket holds at most one transition, so the
// compiled CSR layout — and therefore the marshaled bytes — are identical
// on every run and Go version, which is what lets the fixture bytes be
// committed.
func goldenNNWA() *nwa.NNWA {
	a := nwa.NewNNWA(goldenAlphabet(), 4)
	a.AddStart(0)
	a.AddStart(2)
	a.AddAccept(3)
	a.AddInternal(0, "a", 1)
	a.AddInternal(1, "b", 2)
	a.AddInternal(2, "a", 3)
	a.AddCall(0, "a", 1, 2)
	a.AddCall(2, "b", 3, 0)
	a.AddReturn(1, 2, "a", 3)
	a.AddReturn(3, 0, "b", 3)
	a.AddReturn(0, 0, "a", 1)
	return a
}

// goldenBundle builds the fixtures' three-query bundle: two deterministic
// queries and the nondeterministic automaton over one shared alphabet.
func goldenBundle(t *testing.T) *Bundle {
	t.Helper()
	alpha := goldenAlphabet()
	b := NewBundle(alpha)
	for _, add := range []struct {
		name string
		q    Query
	}{
		{"well-formed", Compile(WellFormed(alpha))},
		{"//a//b", Compile(PathQuery(alpha, "a", "b"))},
		{"nondet", CompileN(goldenNNWA())},
	} {
		if err := b.Add(add.name, add.q); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// checkQueryAgreement replays random words (with pending calls/returns and
// out-of-alphabet labels) through both queries and fails on any verdict
// divergence.
func checkQueryAgreement(t *testing.T, label string, want, got Query, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(777))
	words, pending := randomWords(rng, trials, []string{"a", "b", "x"})
	if pending == 0 {
		t.Fatal("no words with pending calls/returns were generated")
	}
	alpha := want.Alphabet()
	wr, gr := want.NewRunner(), got.NewRunner()
	for wi, w := range words {
		if wv, gv := RunWord(wr, alpha, w), RunWord(gr, alpha, w); wv != gv {
			t.Fatalf("%s: word %d: original %v, decoded %v on %v", label, wi, wv, gv, w)
		}
	}
}

// TestMarshalRoundTripCompiled round-trips compiled DNWAs — dense and
// sparse return forms — through Marshal/UnmarshalCompiled and the
// zero-copy LoadQueryMapped path, checking byte-identical re-encoding and
// verdict agreement.
func TestMarshalRoundTripCompiled(t *testing.T) {
	alpha := goldenAlphabet()
	defer func(old int) { denseReturnLimit = old }(denseReturnLimit)
	for _, limit := range []int{denseReturnLimit, 1} {
		denseReturnLimit = limit
		for _, d := range []*nwa.DNWA{
			WellFormed(alpha),
			PathQuery(alpha, "a", "b"),
			LinearOrder(alpha, "a", "b", "a"),
		} {
			c := Compile(d)
			data := c.Marshal()
			dec, err := UnmarshalCompiled(data)
			if err != nil {
				t.Fatalf("UnmarshalCompiled (dense=%v): %v", c.Dense(), err)
			}
			if dec.Dense() != c.Dense() || dec.NumStates() != c.NumStates() {
				t.Fatalf("decoded shape %v/%d, want %v/%d", dec.Dense(), dec.NumStates(), c.Dense(), c.NumStates())
			}
			if !dec.Alphabet().Equal(alpha) {
				t.Fatalf("decoded alphabet %v, want %v", dec.Alphabet(), alpha)
			}
			if again := dec.Marshal(); !bytes.Equal(again, data) {
				t.Fatalf("decode→re-encode changed the bytes (dense=%v): %d vs %d", c.Dense(), len(again), len(data))
			}
			checkQueryAgreement(t, "copied", c, dec, 200)

			mapped, err := LoadQueryMapped(data)
			if err != nil {
				t.Fatalf("LoadQueryMapped: %v", err)
			}
			checkQueryAgreement(t, "mapped", c, mapped, 200)
		}
	}
}

// TestMarshalRoundTripCompiledN does the same for compiled NNWAs, over
// random automata in both return forms.
func TestMarshalRoundTripCompiledN(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	defer func(old int) { denseReturnLimit = old }(denseReturnLimit)
	for _, limit := range []int{denseReturnLimit, 1} {
		denseReturnLimit = limit
		for trial := 0; trial < 6; trial++ {
			c := CompileN(randomNNWA(rng, 2+rng.Intn(6)))
			data := c.Marshal()
			dec, err := UnmarshalCompiledN(data)
			if err != nil {
				t.Fatalf("UnmarshalCompiledN (dense=%v): %v", c.Dense(), err)
			}
			if again := dec.Marshal(); !bytes.Equal(again, data) {
				t.Fatalf("decode→re-encode changed the bytes (dense=%v)", c.Dense())
			}
			checkQueryAgreement(t, "copied", c, dec, 120)

			mapped, err := LoadQueryMapped(data)
			if err != nil {
				t.Fatalf("LoadQueryMapped: %v", err)
			}
			checkQueryAgreement(t, "mapped", c, mapped, 120)
			// The mapped runner's reference oracle must agree too.
			mc := mapped.(*CompiledN)
			checkQueryAgreement(t, "mapped reference runner", c, referenceQuery{mc}, 60)
		}
	}
}

// referenceQuery adapts a CompiledN so checkQueryAgreement exercises the
// []bool matrix runner of a decoded automaton.
type referenceQuery struct{ c *CompiledN }

func (r referenceQuery) Alphabet() *alphabet.Alphabet { return r.c.Alphabet() }
func (r referenceQuery) NewRunner() Runner            { return r.c.NewReferenceRunner() }

// TestBundleRoundTrip round-trips a mixed bundle through Marshal and both
// load paths, and checks the bundle-level invariants.
func TestBundleRoundTrip(t *testing.T) {
	b := goldenBundle(t)
	data := b.Marshal()

	for _, load := range []struct {
		name string
		fn   func([]byte) (*Bundle, error)
	}{
		{"UnmarshalBundle", UnmarshalBundle},
		{"LoadBundleMapped", LoadBundleMapped},
	} {
		dec, err := load.fn(data)
		if err != nil {
			t.Fatalf("%s: %v", load.name, err)
		}
		if dec.Len() != b.Len() {
			t.Fatalf("%s: %d queries, want %d", load.name, dec.Len(), b.Len())
		}
		for i, name := range b.Names() {
			if dec.Name(i) != name {
				t.Fatalf("%s: query %d named %q, want %q", load.name, i, dec.Name(i), name)
			}
			checkQueryAgreement(t, load.name+" "+name, b.Query(i), dec.Query(i), 120)
		}
		if !dec.Alphabet().Equal(b.Alphabet()) {
			t.Fatalf("%s: alphabet %v, want %v", load.name, dec.Alphabet(), b.Alphabet())
		}
		if again := rebuildBundle(t, dec).Marshal(); !bytes.Equal(again, data) {
			t.Fatalf("%s: decode→re-encode changed the bytes", load.name)
		}
	}
}

// rebuildBundle re-wraps a decoded bundle's queries so Marshal re-encodes
// them (decoded bundles are directly marshalable too; this guards the Add
// path at the same time).
func rebuildBundle(t *testing.T, b *Bundle) *Bundle {
	t.Helper()
	out := NewBundle(b.Alphabet())
	for i, name := range b.Names() {
		if err := out.Add(name, b.Query(i)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestBundleAddErrors pins the bundle construction invariants: duplicate
// names, alphabet mismatches, and unserializable query implementations are
// rejected.
func TestBundleAddErrors(t *testing.T) {
	alpha := goldenAlphabet()
	b := NewBundle(alpha)
	if err := b.Add("q", Compile(WellFormed(alpha))); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("q", Compile(WellFormed(alpha))); err == nil {
		t.Error("duplicate name accepted")
	}
	other := alphabet.New("x", "y")
	if err := b.Add("mismatch", Compile(WellFormed(other))); err == nil {
		t.Error("alphabet mismatch accepted")
	}
	if err := b.Add("alien", referenceQuery{CompileN(goldenNNWA())}); err == nil {
		t.Error("unserializable query implementation accepted")
	}
}

// TestOpenBundle exercises the mmap-backed file path end to end.
func TestOpenBundle(t *testing.T) {
	b := goldenBundle(t)
	path := filepath.Join(t.TempDir(), "queries.nwq")
	if err := os.WriteFile(path, b.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	dec, err := OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range b.Names() {
		checkQueryAgreement(t, "mmap "+name, b.Query(i), dec.Query(i), 120)
	}
	if err := dec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := dec.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := OpenBundle(filepath.Join(t.TempDir(), "missing.nwq")); err == nil {
		t.Error("OpenBundle on a missing file succeeded")
	}
}

// TestUnmarshalErrors feeds truncations and targeted corruptions of a valid
// marshal to the decoders: every one must fail with an error (never a
// panic), and a valid prefix must never silently decode.
func TestUnmarshalErrors(t *testing.T) {
	c := Compile(PathQuery(goldenAlphabet(), "a", "b"))
	data := c.Marshal()
	for i := 0; i < len(data); i += 7 {
		if _, err := UnmarshalQuery(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), data...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":   corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version": corrupt(func(b []byte) { b[4] = 99 }),
		"bad kind":    corrupt(func(b []byte) { b[8] = 77 }),
	}
	for name, b := range cases {
		if _, err := UnmarshalQuery(b); err == nil {
			t.Errorf("%s decoded successfully", name)
		}
	}
	// A bundle decoder must reject a non-bundle container and vice versa.
	if _, err := UnmarshalBundle(data); err == nil {
		t.Error("UnmarshalBundle accepted a bare query container")
	}
	if _, err := UnmarshalQuery(goldenBundle(t).Marshal()); err == nil {
		t.Error("UnmarshalQuery accepted a bundle container")
	}
	if _, err := UnmarshalCompiledN(data); err == nil {
		t.Error("UnmarshalCompiledN accepted a DNWA container")
	}
	if _, err := UnmarshalCompiled(CompileN(goldenNNWA()).Marshal()); err == nil {
		t.Error("UnmarshalCompiled accepted an NNWA container")
	}
}

// TestGoldenFixtures round-trips the committed fixtures: each must decode,
// re-encode byte-identically (the format cannot drift silently), and agree
// with a freshly built copy of the same object on random words.  Run with
// -update to regenerate the fixtures after a deliberate format change —
// which must also bump the format version (see format.Version1/VersionHashed
// and the byte-level reference in docs/FORMAT.md).
func TestGoldenFixtures(t *testing.T) {
	fixtures := []struct {
		file   string
		build  func() []byte
		verify func(t *testing.T, data []byte)
	}{
		{
			file:  "golden_dnwa.nwq",
			build: func() []byte { return Compile(PathQuery(goldenAlphabet(), "a", "b")).Marshal() },
			verify: func(t *testing.T, data []byte) {
				dec, err := UnmarshalCompiled(data)
				if err != nil {
					t.Fatal(err)
				}
				if again := dec.Marshal(); !bytes.Equal(again, data) {
					t.Fatal("golden DNWA re-encodes differently")
				}
				checkQueryAgreement(t, "golden dnwa", Compile(PathQuery(goldenAlphabet(), "a", "b")), dec, 200)
			},
		},
		{
			file:  "golden_nnwa.nwq",
			build: func() []byte { return CompileN(goldenNNWA()).Marshal() },
			verify: func(t *testing.T, data []byte) {
				dec, err := UnmarshalCompiledN(data)
				if err != nil {
					t.Fatal(err)
				}
				if again := dec.Marshal(); !bytes.Equal(again, data) {
					t.Fatal("golden NNWA re-encodes differently")
				}
				checkQueryAgreement(t, "golden nnwa", CompileN(goldenNNWA()), dec, 200)
			},
		},
		{
			file:  "golden_bundle.nwq",
			build: func() []byte { return goldenBundle(t).Marshal() },
			verify: func(t *testing.T, data []byte) {
				dec, err := UnmarshalBundle(data)
				if err != nil {
					t.Fatal(err)
				}
				if again := rebuildBundle(t, dec).Marshal(); !bytes.Equal(again, data) {
					t.Fatal("golden bundle re-encodes differently")
				}
				fresh := goldenBundle(t)
				for i, name := range fresh.Names() {
					checkQueryAgreement(t, "golden bundle "+name, fresh.Query(i), dec.Query(i), 120)
				}
			},
		},
	}
	for _, fx := range fixtures {
		t.Run(fx.file, func(t *testing.T) {
			path := filepath.Join("testdata", fx.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, fx.build(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if v := binary.LittleEndian.Uint32(data[4:]); v != format.VersionHashed {
				t.Fatalf("golden fixture is version %d, want %d", v, format.VersionHashed)
			}
			fx.verify(t, data)
		})
	}
}

// TestGoldenFixturesV1 pins backward compatibility: the committed
// version-1 fixtures (the exact bytes PR 5 shipped, never regenerated)
// must still decode, report themselves unhashed, and — because Marshal
// re-emits the version an object was decoded from — re-encode
// byte-identically.
func TestGoldenFixturesV1(t *testing.T) {
	remarshal := map[string]func(t *testing.T, data []byte) []byte{
		"golden_dnwa_v1.nwq": func(t *testing.T, data []byte) []byte {
			dec, err := UnmarshalCompiled(data)
			if err != nil {
				t.Fatal(err)
			}
			return dec.Marshal()
		},
		"golden_nnwa_v1.nwq": func(t *testing.T, data []byte) []byte {
			dec, err := UnmarshalCompiledN(data)
			if err != nil {
				t.Fatal(err)
			}
			return dec.Marshal()
		},
		"golden_bundle_v1.nwq": func(t *testing.T, data []byte) []byte {
			dec, err := UnmarshalBundle(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, verified, ok := dec.ContentHash(); !ok || verified {
				t.Errorf("v1 bundle ContentHash reports ok=%v verified=%v, want ok unverified", ok, verified)
			}
			return dec.Marshal()
		},
	}
	for file, re := range remarshal {
		t.Run(file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", file))
			if err != nil {
				t.Fatal(err)
			}
			if v := binary.LittleEndian.Uint32(data[4:]); v != format.Version1 {
				t.Fatalf("fixture is version %d, want %d", v, format.Version1)
			}
			if again := re(t, data); !bytes.Equal(again, data) {
				t.Fatal("v1 fixture re-encodes differently")
			}
		})
	}
}
