// Package query builds document queries as nested word automata and
// compiles them for streaming evaluation, following the paper's motivation:
// queries that mix the linear order of a document with its hierarchical
// structure are awkward for tree automata but natural for nested word
// automata.
//
// # Query constructors
//
// The package provides three families of queries over documents (well-matched
// nested words whose calls/returns are element tags and whose internals are
// text tokens):
//
//   - linear-order queries Σ* p1 Σ* ... pn Σ* from the paper's introduction:
//     the given labels occur in the document in that left-to-right order,
//     regardless of nesting;
//   - hierarchical path queries: some root-to-node chain of elements matches
//     the given label sequence (a descendant-axis XPath skeleton);
//   - well-formedness and matched-tag validation.
//
// All constructors build DNWAs, so they compose under the boolean operations
// of the nwa package and run in a single streaming pass.
//
// # Compiled queries: map-backed vs table-backed automata
//
// The nwa package keeps transitions in maps keyed by (state, symbol-string)
// — the right representation for the paper's constructions, where very large
// automata (the s^s-state bottom-up conversions, determinizations) only pay
// for the transitions they define.  It is the wrong representation for the
// serving hot path: experiment E21 showed the per-event map lookups of
// DNWA.Step* dominating multi-query fan-out throughput.
//
// Compile (for DNWAs) and CompileN (for NNWAs) therefore flatten an
// automaton once, ahead of the stream, into an immutable compiled form whose
// call/internal/return transitions live in flat dense slices indexed by
// state*numSymbols+sym.  Because the return index is quadratic in the number
// of states, its table is dense only while numStates²·numSymbols stays under
// a threshold (denseReturnLimit, 2²² entries ≈ 16 MiB of int32); larger
// automata fall back to a key-sorted sparse table probed by binary search.
// Symbols are interned integer IDs with one dedicated out-of-alphabet ID, so
// unknown document labels take the same indexed path as known ones (see
// compiled.go and docstream.NewInterningTokenizer).  Experiment E22 measures
// the compiled path against the map-backed one.
//
// Both compiled forms implement Query — mint a Runner per concurrent pass —
// which is what the engine package registers and fans out: deterministic
// runners step one state, nondeterministic ones run the subset-of-pairs
// simulation with one summary set per stack frame.
package query

import (
	"strings"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/word"
)

// LinearOrder compiles the introduction's query: the pattern labels occur in
// the document (at positions of any kind) in the given left-to-right order.
// The automaton is flat and has O(len(patterns)) states — the succinctness
// contrast with bottom-up tree automata is experiment E10.
func LinearOrder(alpha *alphabet.Alphabet, patterns ...string) *nwa.DNWA {
	dfa := word.CompileRegexDFA(word.LinearOrderQuery(patterns...), alpha)
	return nwa.FlatFromWordDFAOverPlainAlphabet(dfa, alpha)
}

// WellFormed compiles the query "the document is well matched and every
// element's closing tag carries the same label as its opening tag".
func WellFormed(alpha *alphabet.Alphabet) *nwa.DNWA {
	// States: 0 = at top level (accepting), 1 = inside at least one element;
	// hierarchical markers: one per symbol and nesting flag.
	sigma := alpha.Size()
	const topOK, insideOK = 0, 1
	markerTop := func(s int) int { return 2 + s }
	markerIn := func(s int) int { return 2 + sigma + s }
	b := nwa.NewDNWABuilder(alpha, 2+2*sigma)
	b.SetStart(topOK).SetAccept(topOK)
	for s := 0; s < sigma; s++ {
		sym := alpha.Symbol(s)
		b.Internal(topOK, sym, topOK)
		b.Internal(insideOK, sym, insideOK)
		b.Call(topOK, sym, insideOK, markerTop(s))
		b.Call(insideOK, sym, insideOK, markerIn(s))
		b.Return(insideOK, markerTop(s), sym, topOK)
		b.Return(insideOK, markerIn(s), sym, insideOK)
	}
	return b.Build()
}

// PathQuery compiles the query "some chain of nested elements labelled
// labels[0], labels[1], ..., labels[k-1] (each a descendant of the previous,
// not necessarily an immediate child) occurs in the document".  It is the
// descendant-axis skeleton of an XPath query //l1//l2//...//lk.
//
// The automaton tracks how many prefix labels are currently matched by open
// elements; the hierarchical edge remembers the progress at the time of each
// call so the progress is restored when the element closes.  It needs
// O(k·|Σ|·k) transitions and k+2-ish states, independent of the document.
func PathQuery(alpha *alphabet.Alphabet, labels ...string) *nwa.DNWA {
	k := len(labels)
	// Linear states: progress 0..k-1, and "found" = k (absorbing, accepting).
	// Hierarchical markers: one per progress value (what the progress was
	// just before the call), plus one "found" marker.
	progress := func(i int) int { return i }
	found := k
	marker := func(i int) int { return k + 1 + i }
	b := nwa.NewDNWABuilder(alpha, 2*k+2)
	b.SetStart(progress(0)).SetAccept(found)
	for s := 0; s < alpha.Size(); s++ {
		sym := alpha.Symbol(s)
		for i := 0; i < k; i++ {
			// Text never changes the progress.
			b.Internal(progress(i), sym, progress(i))
			// Opening an element: advance the progress when the label is the
			// next one we are waiting for; remember the pre-call progress on
			// the hierarchical edge.
			next := i
			if sym == labels[i] {
				next = i + 1
			}
			if next == k {
				b.Call(progress(i), sym, found, marker(i))
			} else {
				b.Call(progress(i), sym, progress(next), marker(i))
			}
			// Closing an element restores the progress recorded on the edge.
			for j := 0; j < k; j++ {
				b.Return(progress(i), marker(j), sym, progress(j))
			}
		}
		// Found is absorbing.
		b.Internal(found, sym, found)
		b.Call(found, sym, found, marker(k))
		for j := 0; j <= k; j++ {
			b.Return(found, marker(j), sym, found)
		}
	}
	return b.Build()
}

// ContainsLabel compiles the query "some position carries the given label".
func ContainsLabel(alpha *alphabet.Alphabet, label string) *nwa.DNWA {
	return LinearOrder(alpha, label)
}

// Evaluate runs a compiled query over a document.
func Evaluate(q *nwa.DNWA, doc *nestedword.NestedWord) bool { return q.Accepts(doc) }

// EvaluateAll runs several compiled queries over a document in one pass
// each and reports the individual verdicts.
func EvaluateAll(queries []*nwa.DNWA, doc *nestedword.NestedWord) []bool {
	out := make([]bool, len(queries))
	for i, q := range queries {
		out[i] = q.Accepts(doc)
	}
	return out
}

// SplitLabels parses the comma-separated label lists of the CLI flags
// (-labels/-order/-path), trimming whitespace and dropping empty entries.
// nwtool compile and nwquery/nwserve must split identically — the alphabet
// order determines the compiled symbol IDs — so the one implementation
// lives here next to StandardSet.
func SplitLabels(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

// StandardSet compiles the query set the command-line tools share: the
// well-formedness check always, plus a linear-order query and a
// hierarchical path query when their label lists are non-empty, each under
// the display name the tools print.  nwtool compile serializes exactly this
// set into a bundle, and nwquery/nwserve build the same set in process, so
// a bundle-booted server and an in-process one answer identically for the
// same flags.
func StandardSet(alpha *alphabet.Alphabet, order, path []string) (names []string, queries []Query) {
	names = append(names, "well-formed")
	queries = append(queries, Compile(WellFormed(alpha)))
	if len(order) > 0 {
		names = append(names, "order "+strings.Join(order, ","))
		queries = append(queries, Compile(LinearOrder(alpha, order...)))
	}
	if len(path) > 0 {
		names = append(names, "path //"+strings.Join(path, "//"))
		queries = append(queries, Compile(PathQuery(alpha, path...)))
	}
	return names, queries
}

// And, Or, and Not compose compiled queries using the closure constructions
// of Section 3.2.
func And(a, b *nwa.DNWA) *nwa.DNWA { return nwa.Intersect(a, b) }

// Or returns the union query.
func Or(a, b *nwa.DNWA) *nwa.DNWA { return nwa.Union(a, b) }

// Not returns the complement query.
func Not(a *nwa.DNWA) *nwa.DNWA { return a.Complement() }
