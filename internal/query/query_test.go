package query

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/nwa"
)

var docAlpha = alphabet.New("lib", "book", "title", "t1", "t2", "x")

func doc(s string) *nestedword.NestedWord { return nestedword.MustParse(s) }

func TestLinearOrderQuery(t *testing.T) {
	q := LinearOrder(docAlpha, "t1", "t2")
	cases := map[string]bool{
		"<lib <book t1 book> <book t2 book> lib>":               true,
		"<lib <book t2 book> <book t1 book> lib>":               false,
		"<lib <book t1 t2 book> lib>":                           true,
		"<lib <book <title t1 title> book> <book t2 book> lib>": true,
		"<lib x lib>": false,
		"t1 t2":       true,
		"t2 t1":       false,
	}
	for in, want := range cases {
		if got := Evaluate(q, doc(in)); got != want {
			t.Errorf("LinearOrder(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestWellFormed(t *testing.T) {
	q := WellFormed(docAlpha)
	cases := map[string]bool{
		"<lib <book book> lib>": true,
		"<lib <book lib> book>": false,
		"<lib <book book>":      false,
		"book> <lib lib>":       false,
		"x t1 t2":               true,
		"":                      true,
	}
	for in, want := range cases {
		if got := Evaluate(q, doc(in)); got != want {
			t.Errorf("WellFormed(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestWellFormedAgainstPredicate(t *testing.T) {
	q := WellFormed(alphabet.New("a", "b"))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		n := generator.RandomNestedWord(rng, 14, []string{"a", "b"})
		want := n.IsWellMatched()
		if want {
			for j := 0; j < n.Len(); j++ {
				if n.KindAt(j) == nestedword.Call {
					r, _ := n.ReturnSuccessor(j)
					if n.SymbolAt(r) != n.SymbolAt(j) {
						want = false
						break
					}
				}
			}
		}
		if got := q.Accepts(n); got != want {
			t.Fatalf("WellFormed(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestPathQuery(t *testing.T) {
	q := PathQuery(docAlpha, "lib", "book", "title")
	cases := map[string]bool{
		"<lib <book <title t1 title> book> lib>":          true,
		"<lib <book t1 book> lib>":                        false,
		"<lib <title <book book> title> lib>":             false,
		"<lib <x <book <x <title title> x> book> x> lib>": true,
		"<book <title title> book>":                       false,
		"<lib <book book> <book <title title> book> lib>": true,
	}
	for in, want := range cases {
		if got := Evaluate(q, doc(in)); got != want {
			t.Errorf("PathQuery(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestPathQuerySiblingScopes(t *testing.T) {
	// A closed element's contribution to the chain must not leak to its
	// siblings: lib > book closes before title opens, so lib//book//title
	// must NOT match.
	q := PathQuery(docAlpha, "lib", "book", "title")
	if Evaluate(q, doc("<lib <book book> <title title> lib>")) {
		t.Errorf("the chain must be nested, not merely in document order")
	}
}

func TestContainsLabelAndCombinators(t *testing.T) {
	hasT1 := ContainsLabel(docAlpha, "t1")
	hasT2 := ContainsLabel(docAlpha, "t2")
	both := And(hasT1, hasT2)
	either := Or(hasT1, hasT2)
	neither := Not(either)
	cases := []struct {
		in                             string
		wantBoth, wantEither, wantNone bool
	}{
		{"<lib t1 t2 lib>", true, true, false},
		{"<lib t1 lib>", false, true, false},
		{"<lib x lib>", false, false, true},
	}
	for _, c := range cases {
		d := doc(c.in)
		if Evaluate(both, d) != c.wantBoth || Evaluate(either, d) != c.wantEither || Evaluate(neither, d) != c.wantNone {
			t.Errorf("combinators wrong on %q", c.in)
		}
	}
	verdicts := EvaluateAll([]*nwa.DNWA{hasT1, hasT2}, doc("<lib t1 lib>"))
	if !verdicts[0] || verdicts[1] {
		t.Errorf("EvaluateAll = %v, want [true false]", verdicts)
	}
}
