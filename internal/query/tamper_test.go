package query

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/query/format"
)

// TestTamperedBundleFailsClosed is the integrity table test the hashed
// format exists for: flip one bit in EVERY byte of the committed golden
// v2 bundle — header, hash field, directory, every section payload,
// padding — and each mutation must make every load path fail with an
// error, never a panic and never a silently different bundle.  Bytes
// covered by the content hash must specifically report ErrHashMismatch;
// flips inside the stored hash field itself are equally fatal (the
// declared hash no longer matches the re-computed one); flips in the
// magic or version fail before hashing with their own typed errors.
func TestTamperedBundleFailsClosed(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_bundle.nwq"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != format.VersionHashed {
		t.Fatalf("fixture is version %d, want %d (regenerate with -update)", v, format.VersionHashed)
	}
	if _, err := UnmarshalBundle(data); err != nil {
		t.Fatalf("pristine fixture does not load: %v", err)
	}

	const (
		magicEnd   = 4
		versionEnd = 8
		hashStart  = 24
		hashEnd    = 56
	)
	mut := make([]byte, len(data))
	for i := range data {
		copy(mut, data)
		mut[i] ^= 1

		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d flipped: load panicked: %v", i, r)
				}
			}()
			_, err = UnmarshalBundle(mut)
			return err
		}()
		if err == nil {
			t.Fatalf("byte %d flipped: bundle still loaded", i)
		}
		switch {
		case i < magicEnd:
			if errors.Is(err, format.ErrHashMismatch) {
				t.Fatalf("byte %d (magic) flipped: got ErrHashMismatch before the magic check: %v", i, err)
			}
		case i < versionEnd:
			// A flipped version bit either lands on an unsupported version
			// (its own error) or is caught by the hash — both fail closed.
		default:
			// Kind, flags, count, the hash field itself, the directory, and
			// every payload byte are all covered: ErrHashMismatch, always.
			if !errors.Is(err, format.ErrHashMismatch) {
				t.Fatalf("byte %d flipped: got %v, want ErrHashMismatch", i, err)
			}
		}

		// The zero-copy path — what OpenBundle's mmap uses — must reject
		// identically: a flipped bit in a mapped file fails closed.
		if _, err := LoadBundleMapped(mut); err == nil {
			t.Fatalf("byte %d flipped: zero-copy load still succeeded", i)
		}
	}
}

// TestTamperedStandaloneQueries runs the same flip-every-byte check over
// the golden standalone DNWA and NNWA fixtures through UnmarshalQuery.
func TestTamperedStandaloneQueries(t *testing.T) {
	for _, file := range []string{"golden_dnwa.nwq", "golden_nnwa.nwq"} {
		t.Run(file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", file))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := UnmarshalQuery(data); err != nil {
				t.Fatalf("pristine fixture does not load: %v", err)
			}
			mut := make([]byte, len(data))
			for i := range data {
				copy(mut, data)
				mut[i] ^= 1
				if _, err := UnmarshalQuery(mut); err == nil {
					t.Fatalf("byte %d flipped: query still loaded", i)
				}
				if i >= 8 {
					if _, err := UnmarshalQuery(mut); !errors.Is(err, format.ErrHashMismatch) {
						t.Fatalf("byte %d flipped: want ErrHashMismatch", i)
					}
				}
			}
		})
	}
}

// TestTamperedFileOnDisk pins the OpenBundle path end to end: a flipped
// bit in the file a server would mmap is refused at open, with
// ErrHashMismatch, and the file never maps.
func TestTamperedFileOnDisk(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_bundle.nwq"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tampered.nwq")
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x10
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBundle(path); !errors.Is(err, format.ErrHashMismatch) {
		t.Fatalf("OpenBundle on a tampered file: got %v, want ErrHashMismatch", err)
	}
}
