package query

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/nwa"
	"repro/internal/query/format"
)

// This file is the automaton-level static analyzer behind `nwtool vet`: a
// compiled artifact is checked before anything maps it, against invariants in
// three rings.
//
//  1. Structural: the table shapes and target ranges the decode path also
//     enforces, re-checked here so in-memory bundles (never serialized) get
//     the same guarantees.
//  2. Cross-representation: CompiledN stores its transitions twice — CSR
//     adjacency and per-symbol bitmask slabs — and the runners mix both, so
//     the two copies must agree bit for bit.  Decoding checks each copy in
//     isolation; only vet cross-checks them, which makes this the one
//     corruption a valid-looking container can smuggle past Unmarshal.
//  3. Semantic: reachability and coaccessibility over the compiled tables,
//     computed by the emptiness machinery of internal/nwa (Section 3.2), so
//     unreachable states, useless transitions, and empty-language queries
//     are reported with exact counts before a fleet boots the bundle.
//
// Structural and cross-representation violations are errors (the artifact is
// rejected); semantic findings are warnings (the artifact works, but carries
// dead weight).

// Vet issue levels.
const (
	// VetError marks a structural or cross-representation violation; the
	// artifact must not be served.
	VetError = "error"
	// VetWarning marks a semantic finding — dead states or transitions; the
	// artifact is safe but bloated.
	VetWarning = "warning"
)

// vetCoaccessLimit caps the automaton size for the coaccessibility pass,
// whose projected-edge construction enumerates the quadratic return index.
// Larger automata skip the pass (noted in the stats) rather than stall the
// vet.
const vetCoaccessLimit = 256

// VetIssue is one finding of the artifact verifier.
type VetIssue struct {
	// Query is the display name of the query the issue is in ("" for
	// container-level issues).
	Query string
	// Level is VetError or VetWarning.
	Level string
	// Msg describes the violation.
	Msg string
}

// VetQueryStats summarizes the semantic analysis of one query.
type VetQueryStats struct {
	// Name is the query's display name in the bundle ("query" standalone).
	Name string
	// Form is "dnwa" or "nnwa", prefixed with "product-" when the automaton
	// is the shared interior of a product-compiled cluster.
	Form string
	// States is the exact state count, dead sink included for DNWAs.
	States int
	// Reachable counts states some nested word reaches linearly.
	Reachable int
	// Unreachable lists the states that are neither linearly reachable nor
	// used as hierarchical targets of reachable calls, in ascending order.
	Unreachable []int
	// DeadTransitions counts defined transitions that can never fire
	// because their source (or return-edge hierarchical component) is
	// unreachable.
	DeadTransitions int
	// NonCoaccessible counts reachable states from which no accepting state
	// can be reached (designated dead sinks excluded); -1 when the
	// automaton exceeds vetCoaccessLimit and the pass was skipped.
	NonCoaccessible int
}

// VetContainer describes the serialized container a report was vetted
// from (zero-valued when VetBundle ran on an in-memory bundle).
type VetContainer struct {
	// Version is the container header version (format.Version1 or
	// format.VersionHashed).
	Version uint32
	// Kind is the container object kind (format.KindDNWA … KindProduct).
	Kind uint32
	// ContentHash is the hex content hash: the verified header hash of a
	// VersionHashed container, or the plain checksum of a v1 one.
	ContentHash string
	// HashVerified is true when ContentHash is the verified header hash.
	HashVerified bool
}

// VetReport is the full result of vetting one artifact.
type VetReport struct {
	// Container describes the serialized artifact (zero for in-memory).
	Container VetContainer
	// Queries holds per-query statistics in bundle order.
	Queries []VetQueryStats
	// Issues holds every finding, container-level first.
	Issues []VetIssue
}

func (r *VetReport) add(query, level, msg string) {
	r.Issues = append(r.Issues, VetIssue{Query: query, Level: level, Msg: msg})
}

// Errors counts VetError issues.
func (r *VetReport) Errors() int { return r.count(VetError) }

// Warnings counts VetWarning issues.
func (r *VetReport) Warnings() int { return r.count(VetWarning) }

func (r *VetReport) count(level string) int {
	n := 0
	for _, i := range r.Issues {
		if i.Level == level {
			n++
		}
	}
	return n
}

// String renders the report in the line-per-finding format documented in
// docs/ANALYZERS.md: one stats line per query, one line per issue, and a
// closing tally.
func (r *VetReport) String() string {
	var b strings.Builder
	if r.Container.Version != 0 {
		verified := "unverified checksum"
		if r.Container.HashVerified {
			verified = "verified"
		}
		fmt.Fprintf(&b, "container: version %d, kind %d, content hash %s (%s)\n",
			r.Container.Version, r.Container.Kind, r.Container.ContentHash, verified)
	}
	for _, s := range r.Queries {
		fmt.Fprintf(&b, "query %q: %s, %d states, %d reachable, %d unreachable, %d dead transitions",
			s.Name, s.Form, s.States, s.Reachable, len(s.Unreachable), s.DeadTransitions)
		if s.NonCoaccessible < 0 {
			fmt.Fprintf(&b, ", coaccessibility skipped (>%d states)", vetCoaccessLimit)
		} else {
			fmt.Fprintf(&b, ", %d non-coaccessible", s.NonCoaccessible)
		}
		b.WriteByte('\n')
	}
	for _, i := range r.Issues {
		b.WriteString(i.Level)
		b.WriteString(": ")
		if i.Query != "" {
			fmt.Fprintf(&b, "query %q: ", i.Query)
		}
		b.WriteString(i.Msg)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "vet: %d errors, %d warnings\n", r.Errors(), r.Warnings())
	return b.String()
}

// VetBytes verifies a serialized artifact — a bundle or a standalone
// compiled query container.  A container that does not decode is rejected
// with an error; a container that decodes is vetted and the findings
// returned in the report (structural errors included), never panicking on
// any input.
func VetBytes(data []byte) (*VetReport, error) {
	r, err := format.NewReader(data)
	if err != nil {
		return nil, err
	}
	container := VetContainer{Version: r.Version(), Kind: r.Kind()}
	if h, ok := r.ContentHash(); ok {
		container.ContentHash, container.HashVerified = hex.EncodeToString(h[:]), true
	} else {
		sum := format.Checksum(data)
		container.ContentHash = hex.EncodeToString(sum[:])
	}
	var rep *VetReport
	switch r.Kind() {
	case format.KindBundle:
		b, err := UnmarshalBundle(data)
		if err != nil {
			return nil, err
		}
		rep = VetBundle(b)
	case format.KindDNWA, format.KindNNWA:
		q, err := UnmarshalQuery(data)
		if err != nil {
			return nil, err
		}
		rep = &VetReport{}
		vetQuery(rep, "query", q)
	case format.KindProduct:
		p, err := UnmarshalProduct(data)
		if err != nil {
			return nil, err
		}
		rep = &VetReport{}
		vetProduct(rep, "product", p, -1)
	default:
		return nil, fmt.Errorf("query: container kind %d is not a vettable artifact", r.Kind())
	}
	rep.Container = container
	if !container.HashVerified {
		rep.add("", VetWarning, fmt.Sprintf(
			"container is unhashed version %d — re-marshal to version %d so fleets can verify it before mapping",
			r.Version(), format.VersionHashed))
	}
	return rep, nil
}

// VetBundle verifies an in-memory bundle: per-query structural and
// cross-representation checks, alphabet agreement across the bundle, the
// reachability/coaccessibility analysis, and — for a planned bundle — the
// product-group demux invariants (every name covered exactly once, mask
// width matching the group's query count).
func VetBundle(b *Bundle) *VetReport {
	rep := &VetReport{}
	if b.Len() == 0 {
		rep.add("", VetWarning, "bundle holds no queries")
	}
	grouped := make([]int, b.Len()) // 0 = solo, g+1 = covered by group g
	for gi, g := range b.Groups() {
		gname := fmt.Sprintf("group %d", gi+1)
		sound := true
		for _, idx := range g.Indices {
			if idx < 0 || int(idx) >= b.Len() {
				rep.add(gname, VetError, fmt.Sprintf("demux index %d outside the %d bundle queries", idx, b.Len()))
				sound = false
				continue
			}
			if prev := grouped[idx]; prev != 0 {
				rep.add(gname, VetError, fmt.Sprintf("query %q is already demuxed by group %d", b.Name(int(idx)), prev))
				sound = false
				continue
			}
			grouped[idx] = gi + 1
			if b.Query(int(idx)) != nil {
				rep.add(gname, VetError, fmt.Sprintf("query %q has both a solo runner and a product demux slot", b.Name(int(idx))))
			}
		}
		if g.Product == nil {
			rep.add(gname, VetError, "group has no product automaton")
			continue
		}
		if !b.Alphabet().Equal(g.Product.Alphabet()) {
			rep.add(gname, VetError, fmt.Sprintf("product alphabet %v disagrees with the bundle alphabet %v",
				g.Product.Alphabet().Symbols(), b.Alphabet().Symbols()))
			continue
		}
		if sound {
			vetProduct(rep, gname, g.Product, len(g.Indices))
		}
	}
	for i := 0; i < b.Len(); i++ {
		name := b.Name(i)
		q := b.Query(i)
		if q == nil {
			if grouped[i] == 0 {
				rep.add(name, VetError, "query is covered by neither a solo runner nor a product group")
			}
			continue
		}
		if !b.Alphabet().Equal(q.Alphabet()) {
			rep.add(name, VetError, fmt.Sprintf("query alphabet %v disagrees with the bundle alphabet %v",
				q.Alphabet().Symbols(), b.Alphabet().Symbols()))
			continue
		}
		vetQuery(rep, name, q)
	}
	return rep
}

// vetProduct verifies a product-compiled cluster: the accept-bitmask slab
// dimensions and bit ranges, the cross-representation agreement between the
// mask and the shared automaton's accept table, and — through vetQuery — the
// structural and semantic invariants of the automaton itself, reported under
// the "product-dnwa"/"product-nnwa" forms.  wantMembers is the demux width
// the containing group expects (-1 for a standalone artifact).
func vetProduct(rep *VetReport, name string, p *CompiledProduct, wantMembers int) {
	bad := func(msg string, args ...any) {
		rep.add(name, VetError, fmt.Sprintf(msg, args...))
	}
	if p.nq < 1 || p.nq > maxStates {
		bad("product answers %d queries, outside [1, %d]", p.nq, maxStates)
		return
	}
	if wantMembers >= 0 && p.nq != wantMembers {
		bad("product answers %d queries, its group demuxes %d", p.nq, wantMembers)
		return
	}
	switch c := p.inner.(type) {
	case *Compiled:
		if p.maskW != bitset.Words(p.nq) {
			bad("mask rows hold %d words, %d queries need %d", p.maskW, p.nq, bitset.Words(p.nq))
			return
		}
		cells, ok := mul(c.num, p.maskW)
		if !ok || len(p.mask) != cells {
			bad("accept mask holds %d words, want %d×%d", len(p.mask), c.num, p.maskW)
			return
		}
		if err := checkMaskBits("accept mask", p.mask, p.nq, p.maskW); err != nil {
			bad("%v", err)
			return
		}
		// Cross-representation: the shared automaton accepts exactly where
		// some member does, i.e. where the state's mask row is non-empty.
		for s := 0; s < c.num; s++ {
			if c.accept[s] != bitset.Slab(p.mask, s, p.maskW).Any() {
				bad("state %d acceptance disagrees with its accept-mask row", s)
				return
			}
		}
	case *CompiledN:
		if p.maskW != c.w {
			bad("mask rows hold %d words, the union's %d states need %d", p.maskW, c.num, c.w)
			return
		}
		cells, ok := mul(p.nq, p.maskW)
		if !ok || len(p.mask) != cells {
			bad("accept mask holds %d words, want %d×%d", len(p.mask), p.nq, p.maskW)
			return
		}
		if err := checkMaskBits("accept mask", p.mask, c.num, p.maskW); err != nil {
			bad("%v", err)
			return
		}
		// Cross-representation: the union's accept row is exactly the union
		// of the per-member verdict rows.
		union := bitset.New(c.num)
		for q := 0; q < p.nq; q++ {
			union.Or(bitset.Slab(p.mask, q, p.maskW))
		}
		if !union.Equal(c.acceptRow) {
			bad("the union of the member verdict rows disagrees with the accept row")
			return
		}
	default:
		bad("cannot vet a %T product interior", p.inner)
		return
	}
	before := len(rep.Queries)
	vetQuery(rep, name, p.inner)
	for i := before; i < len(rep.Queries); i++ {
		rep.Queries[i].Form = "product-" + rep.Queries[i].Form
	}
}

// vetQuery dispatches one compiled query through the structural and semantic
// checks; unknown Query implementations are rejected (only the serializable
// compiled forms have vettable tables).
func vetQuery(rep *VetReport, name string, q Query) {
	switch c := q.(type) {
	case *Compiled:
		if c.vetStructure(rep, name) {
			vetSemantics(rep, name, "dnwa", dnwaGraph{c}, int(c.dead), c.countDeadTransitions)
		}
	case *CompiledN:
		if c.vetStructure(rep, name) {
			vetSemantics(rep, name, "nnwa", nnwaGraph{c}, -1, c.countDeadTransitions)
		}
	default:
		rep.add(name, VetError, fmt.Sprintf("cannot vet a %T (want *Compiled or *CompiledN)", q))
	}
}

// --- structural checks ---------------------------------------------------

// vetStructure re-verifies the Compiled table invariants the decoder
// enforces, plus the determinism/totality property the decoder cannot see:
// the designated dead state must be a sink, or the compiled automaton
// silently resurrects rejected runs.  (An *accepting* sink is legal — that
// is what a complemented query looks like — and draws a warning, not an
// error.)  It reports whether the tables are sound enough for the semantic
// pass to index them.
func (c *Compiled) vetStructure(rep *VetReport, name string) bool {
	bad := func(msg string, args ...any) bool {
		rep.add(name, VetError, fmt.Sprintf(msg, args...))
		return false
	}
	if c.num < 1 || c.num > maxStates {
		return bad("%d states outside [1, %d]", c.num, maxStates)
	}
	if c.syms < 1 || c.syms > maxSymbols {
		return bad("%d symbol columns outside [1, %d]", c.syms, maxSymbols)
	}
	if c.alpha.Size()+1 != c.syms {
		return bad("automaton compiled over %d symbols, alphabet has %d", c.syms-1, c.alpha.Size())
	}
	if int(c.start) >= c.num || int(c.dead) >= c.num || c.start < 0 || c.dead < 0 {
		return bad("start %d / dead %d outside the %d states", c.start, c.dead, c.num)
	}
	if len(c.accept) != c.num {
		return bad("accept table holds %d states, automaton has %d", len(c.accept), c.num)
	}
	cells, ok := mul(c.num, c.syms)
	if !ok {
		return bad("%d×%d transition cells overflow", c.num, c.syms)
	}
	for _, t := range []struct {
		what string
		tab  []int32
	}{
		{"call linear", c.callLin},
		{"call hierarchical", c.callHier},
		{"internal", c.internT},
	} {
		if len(t.tab) != cells {
			return bad("%s table holds %d cells, want %d", t.what, len(t.tab), cells)
		}
		if err := checkTargets(t.what, t.tab, c.num); err != nil {
			return bad("%v", err)
		}
	}
	if c.dense {
		retCells, ok := mul(c.num, cells)
		if !ok || len(c.returnT) != retCells {
			return bad("dense return table holds %d cells, want %d×%d×%d", len(c.returnT), c.num, c.num, c.syms)
		}
		if err := checkTargets("dense return", c.returnT, c.num); err != nil {
			return bad("%v", err)
		}
	} else {
		if len(c.sparseR.keys) != len(c.sparseR.vals) {
			return bad("%d sparse return keys vs %d values", len(c.sparseR.keys), len(c.sparseR.vals))
		}
		if err := checkAscending(c.sparseR.keys); err != nil {
			return bad("%v", err)
		}
		if err := checkTargets("sparse return", c.sparseR.vals, c.num); err != nil {
			return bad("%v", err)
		}
	}
	// Determinism/totality of the sink: every transition out of dead must
	// land in dead.  Acceptance at the sink is legal — a complemented
	// query (the DSL's "no x after y", or any "not") accepts exactly
	// where the original automaton died, out-of-alphabet symbols
	// included, which keeps the complement law not(Q) ≡ !Q exact — but
	// it is worth surfacing, because on a never-negated query it usually
	// means a corrupted accept mask.
	dead := int(c.dead)
	if c.accept[dead] {
		rep.add(name, VetWarning, fmt.Sprintf("dead state %d is accepting (complemented query, or a corrupted accept mask)", dead))
	}
	for sym := 0; sym < c.syms; sym++ {
		i := dead*c.syms + sym
		if c.callLin[i] != c.dead || c.internT[i] != c.dead {
			rep.add(name, VetError, fmt.Sprintf("dead state %d has an outgoing transition on symbol %d (not a sink)", dead, sym))
			break
		}
	}
	c.eachReturnEdge(func(lin, hier, sym, to int) {
		if lin == dead && to != dead {
			rep.add(name, VetError, fmt.Sprintf("dead state %d returns to live state %d (not a sink)", dead, to))
		}
	})
	return true
}

// eachReturnEdge enumerates the defined (non-dead-target) return transitions
// of either return representation.
func (c *Compiled) eachReturnEdge(f func(lin, hier, sym, to int)) {
	if c.dense {
		for lin := 0; lin < c.num; lin++ {
			for hier := 0; hier < c.num; hier++ {
				base := (lin*c.num + hier) * c.syms
				for sym := 0; sym < c.syms; sym++ {
					if to := c.returnT[base+sym]; to != c.dead {
						f(lin, hier, sym, int(to))
					}
				}
			}
		}
		return
	}
	for i, key := range c.sparseR.keys {
		if to := c.sparseR.vals[i]; to != c.dead {
			idx := int(key)
			sym := idx % c.syms
			lh := idx / c.syms
			f(lh/c.num, lh%c.num, sym, int(to))
		}
	}
}

// vetStructure re-verifies the CompiledN invariants the decoder enforces and
// adds the cross-representation check the decoder cannot make: the
// per-symbol bitmask slabs must agree, row by row and bit by bit, with the
// CSR adjacency, because the bitset runner steps through the masks while the
// return stitch enumerates the CSR — a disagreement makes the two halves of
// one runner simulate different automata.
func (c *CompiledN) vetStructure(rep *VetReport, name string) bool {
	bad := func(msg string, args ...any) bool {
		rep.add(name, VetError, fmt.Sprintf(msg, args...))
		return false
	}
	if c.num < 1 || c.num > maxStates {
		return bad("%d states outside [1, %d]", c.num, maxStates)
	}
	if c.syms < 1 || c.syms > maxSymbols {
		return bad("%d symbol columns outside [1, %d]", c.syms, maxSymbols)
	}
	if c.alpha.Size()+1 != c.syms {
		return bad("automaton compiled over %d symbols, alphabet has %d", c.syms-1, c.alpha.Size())
	}
	if len(c.accept) != c.num {
		return bad("accept table holds %d states, automaton has %d", len(c.accept), c.num)
	}
	if err := checkTargets("start states", c.starts, c.num); err != nil {
		return bad("%v", err)
	}
	cells, ok := mul(c.num, c.syms)
	if !ok {
		return bad("%d×%d transition cells overflow", c.num, c.syms)
	}
	if len(c.callHier) != len(c.callLin) {
		return bad("%d call linear targets vs %d hierarchical", len(c.callLin), len(c.callHier))
	}
	if err := checkOffsets("call offsets", c.callOff, cells, len(c.callLin)); err != nil {
		return bad("%v", err)
	}
	if err := checkTargets("call linear", c.callLin, c.num); err != nil {
		return bad("%v", err)
	}
	if err := checkTargets("call hierarchical", c.callHier, c.num); err != nil {
		return bad("%v", err)
	}
	if err := checkOffsets("internal offsets", c.intOff, cells, len(c.intTo)); err != nil {
		return bad("%v", err)
	}
	if err := checkTargets("internal targets", c.intTo, c.num); err != nil {
		return bad("%v", err)
	}
	if err := checkTargets("return targets", c.retTo, c.num); err != nil {
		return bad("%v", err)
	}
	if c.dense {
		retCells, ok := mul(c.num, cells)
		if !ok {
			return bad("dense return index for %d states overflows", c.num)
		}
		if err := checkOffsets("return offsets", c.retOff, retCells, len(c.retTo)); err != nil {
			return bad("%v", err)
		}
	} else {
		if err := checkAscending(c.retKeys); err != nil {
			return bad("%v", err)
		}
		if err := checkOffsets("sparse return spans", c.retSpan, len(c.retKeys), len(c.retTo)); err != nil {
			return bad("%v", err)
		}
	}
	if c.w != bitset.Words(c.num) {
		return bad("mask rows hold %d words, %d states need %d", c.w, c.num, bitset.Words(c.num))
	}
	slab, ok := mul(cells, c.w)
	if !ok || len(c.intMask) != slab || len(c.callMask) != slab {
		return bad("mask slabs hold %d/%d words, want %d", len(c.intMask), len(c.callMask), slab)
	}
	if err := checkMaskBits("internal mask", c.intMask, c.num, c.w); err != nil {
		return bad("%v", err)
	}
	if err := checkMaskBits("call mask", c.callMask, c.num, c.w); err != nil {
		return bad("%v", err)
	}
	// Start/accept rows must mirror the starts slice and accept table.
	wantStart := bitset.New(c.num)
	for _, q := range c.starts {
		wantStart.Set(int(q))
	}
	wantAccept := bitset.New(c.num)
	for q := 0; q < c.num; q++ {
		if c.accept[q] {
			wantAccept.Set(q)
		}
	}
	if !c.startRow.Equal(wantStart) {
		rep.add(name, VetError, "start row disagrees with the start state list")
	}
	if !c.acceptRow.Equal(wantAccept) {
		rep.add(name, VetError, "accept row disagrees with the accept table")
	}
	return c.vetMaskConsistency(rep, name)
}

// vetMaskConsistency cross-checks the bitmask slabs against the CSR
// adjacency: for every (symbol, state) the internal mask row must hold
// exactly the internal CSR successors and the call mask row exactly the
// linear call successors.
func (c *CompiledN) vetMaskConsistency(rep *VetReport, name string) bool {
	ok := true
	row := bitset.New(c.num)
	check := func(what string, mask []uint64, succ func(q, sym int) []int32) {
		for sym := 0; sym < c.syms; sym++ {
			for q := 0; q < c.num; q++ {
				row.Zero()
				for _, to := range succ(q, sym) {
					row.Set(int(to))
				}
				if !row.Equal(c.maskRow(mask, sym, q)) {
					rep.add(name, VetError, fmt.Sprintf(
						"%s mask row (sym %d, state %d) disagrees with the CSR adjacency", what, sym, q))
					ok = false
				}
			}
		}
	}
	check("internal", c.intMask, func(q, sym int) []int32 { return c.internalSucc(q, sym) })
	check("call", c.callMask, func(q, sym int) []int32 {
		lin, _ := c.callSucc(q, sym)
		return lin
	})
	return ok
}

// --- semantic analysis ---------------------------------------------------

// dnwaGraph exposes a Compiled's defined transitions (dead-sink targets
// excluded) as a StateGraph for the reachability analysis.
type dnwaGraph struct{ c *Compiled }

func (g dnwaGraph) NumStates() int         { return g.c.num }
func (g dnwaGraph) NumSymbols() int        { return g.c.syms }
func (g dnwaGraph) StartStates() []int     { return []int{int(g.c.start)} }
func (g dnwaGraph) IsAccepting(q int) bool { return g.c.accept[q] }

func (g dnwaGraph) EachCallEdge(q, sym int, f func(linear, hier int)) {
	i := q*g.c.syms + sym
	if lin := g.c.callLin[i]; lin != g.c.dead || g.c.callHier[i] != g.c.dead {
		f(int(lin), int(g.c.callHier[i]))
	}
}

func (g dnwaGraph) EachInternalEdge(q, sym int, f func(to int)) {
	if to := g.c.internT[q*g.c.syms+sym]; to != g.c.dead {
		f(int(to))
	}
}

func (g dnwaGraph) EachReturnEdge(lin, hier, sym int, f func(to int)) {
	if to := g.c.stepReturn(int32(lin), int32(hier), sym); to != g.c.dead {
		f(int(to))
	}
}

// nnwaGraph exposes a CompiledN's CSR adjacency as a StateGraph.
type nnwaGraph struct{ c *CompiledN }

func (g nnwaGraph) NumStates() int  { return g.c.num }
func (g nnwaGraph) NumSymbols() int { return g.c.syms }
func (g nnwaGraph) StartStates() []int {
	out := make([]int, len(g.c.starts))
	for i, q := range g.c.starts {
		out[i] = int(q)
	}
	return out
}
func (g nnwaGraph) IsAccepting(q int) bool { return g.c.accept[q] }

func (g nnwaGraph) EachCallEdge(q, sym int, f func(linear, hier int)) {
	lins, hiers := g.c.callSucc(q, sym)
	for i, lin := range lins {
		f(int(lin), int(hiers[i]))
	}
}

func (g nnwaGraph) EachInternalEdge(q, sym int, f func(to int)) {
	for _, to := range g.c.internalSucc(q, sym) {
		f(int(to))
	}
}

func (g nnwaGraph) EachReturnEdge(lin, hier, sym int, f func(to int)) {
	for _, to := range g.c.returnSucc(int32(lin), int32(hier), sym) {
		f(int(to))
	}
}

// liveSets runs the reachability analysis and derives the hierarchical
// usage and return-edge eligibility sets shared by both compiled forms:
// hierOK[h] is true when a return edge with hierarchical component h can
// fire — h is the hierarchical target of a call from a reachable state, or
// an initial state (pending returns, Section 3.1).
func liveSets(g nwa.StateGraph) (reach, hier, hierOK []bool) {
	reach = nwa.ReachableStates(g)
	hier = nwa.HierarchicalTargets(g, reach)
	hierOK = make([]bool, len(hier))
	copy(hierOK, hier)
	for _, q := range g.StartStates() {
		if q >= 0 && q < len(hierOK) {
			hierOK[q] = true
		}
	}
	return reach, hier, hierOK
}

// vetSemantics runs the reachability/coaccessibility analysis of one query
// and appends its stats and warnings.  deadState is the designated DNWA sink
// (excluded from the dead-weight warnings; -1 for NNWAs), and deadTrans
// counts the defined transitions that cannot fire given the live sets.
func vetSemantics(rep *VetReport, name, form string, g nwa.StateGraph, deadState int, deadTrans func(reach, hierOK []bool) int) {
	reach, hier, hierOK := liveSets(g)
	stats := VetQueryStats{Name: name, Form: form, States: g.NumStates(), NonCoaccessible: -1}
	for q, r := range reach {
		if r {
			stats.Reachable++
		} else if !hier[q] && q != deadState {
			stats.Unreachable = append(stats.Unreachable, q)
		}
	}
	sort.Ints(stats.Unreachable)
	for _, q := range stats.Unreachable {
		rep.add(name, VetWarning, fmt.Sprintf("state %d is unreachable", q))
	}
	stats.DeadTransitions = deadTrans(reach, hierOK)
	if stats.DeadTransitions > 0 {
		rep.add(name, VetWarning, fmt.Sprintf("%d dead transitions can never fire", stats.DeadTransitions))
	}
	if g.NumStates() <= vetCoaccessLimit {
		co := nwa.CoaccessibleStates(g, hierOK)
		stats.NonCoaccessible = 0
		empty := true
		for q, r := range reach {
			if !r || q == deadState {
				continue
			}
			if !co[q] {
				stats.NonCoaccessible++
				rep.add(name, VetWarning, fmt.Sprintf("state %d cannot reach an accepting state", q))
			} else {
				empty = false
			}
		}
		if empty {
			rep.add(name, VetWarning, "query accepts no document (no reachable state is coaccessible)")
		}
	}
	rep.Queries = append(rep.Queries, stats)
}

// countDeadTransitions counts the defined DNWA transitions that cannot fire:
// call and internal cells out of unreachable states, and return edges whose
// linear source is unreachable or whose hierarchical component no reachable
// call (and no pending return) supplies.
func (c *Compiled) countDeadTransitions(reach, hierOK []bool) int {
	dead := 0
	for q := 0; q < c.num; q++ {
		if reach[q] {
			continue
		}
		for sym := 0; sym < c.syms; sym++ {
			i := q*c.syms + sym
			if c.callLin[i] != c.dead || c.callHier[i] != c.dead {
				dead++
			}
			if c.internT[i] != c.dead {
				dead++
			}
		}
	}
	c.eachReturnEdge(func(lin, hier, sym, to int) {
		if !reach[lin] || !hierOK[hier] {
			dead++
		}
	})
	return dead
}

// countDeadTransitions counts the CSR entries of a CompiledN that cannot
// fire, under the same definition as the Compiled form.
func (c *CompiledN) countDeadTransitions(reach, hierOK []bool) int {
	dead := 0
	for q := 0; q < c.num; q++ {
		if reach[q] {
			continue
		}
		for sym := 0; sym < c.syms; sym++ {
			i := q*c.syms + sym
			dead += int(c.callOff[i+1] - c.callOff[i])
			dead += int(c.intOff[i+1] - c.intOff[i])
		}
	}
	c.eachReturnIndex(func(lin, hier, sym, n int) {
		if !reach[lin] || !hierOK[hier] {
			dead += n
		}
	})
	return dead
}

// eachReturnIndex enumerates the populated return index cells of either
// return representation, with the number of targets per cell.
func (c *CompiledN) eachReturnIndex(f func(lin, hier, sym, n int)) {
	decompose := func(idx int) (lin, hier, sym int) {
		sym = idx % c.syms
		lh := idx / c.syms
		return lh / c.num, lh % c.num, sym
	}
	if c.dense {
		for i := 0; i+1 < len(c.retOff); i++ {
			if n := int(c.retOff[i+1] - c.retOff[i]); n > 0 {
				lin, hier, sym := decompose(i)
				f(lin, hier, sym, n)
			}
		}
		return
	}
	for i, key := range c.retKeys {
		if n := int(c.retSpan[i+1] - c.retSpan[i]); n > 0 {
			lin, hier, sym := decompose(int(key))
			f(lin, hier, sym, n)
		}
	}
}
