package query

import (
	"bytes"
	"testing"
)

// FuzzBundleVet is the artifact-verifier fuzz target, mirroring
// FuzzUnmarshalCompiled one layer up: arbitrary bytes and mutated-but-valid
// marshals pushed through VetBytes must either fail with an error or come
// back as a renderable report — never a panic — and an input that vets
// without errors must also decode, since vet gates what a fleet maps.
func FuzzBundleVet(f *testing.F) {
	alpha := goldenAlphabet()
	seeds := [][]byte{
		// Marshal emits VersionHashed containers; the explicit Version1
		// encodes keep the unhashed-container vet path in the corpus.
		Compile(PathQuery(alpha, "a", "b")).Marshal(),
		Compile(PathQuery(alpha, "a", "b")).encode(true, 1),
		Compile(WellFormed(alpha)).Marshal(),
		CompileN(goldenNNWA()).Marshal(),
		CompileN(goldenNNWA()).encode(true, 1),
		CompileN(unreachableNNWA()).Marshal(),
		{},
		[]byte("NWQ1"),
	}
	b := NewBundle(alpha)
	if err := b.Add("wf", Compile(WellFormed(alpha))); err != nil {
		f.Fatal(err)
	}
	if err := b.Add("nn", CompileN(goldenNNWA())); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, b.Marshal())
	// A mask/CSR disagreement: the corruption only vet can see.
	tampered := CompileN(goldenNNWA())
	tampered.maskRow(tampered.intMask, 0, 0).Unset(1)
	seeds = append(seeds, tampered.Marshal())
	for _, s := range seeds {
		f.Add(s)
		if len(s) > 40 {
			f.Add(s[:40])
			f.Add(s[:len(s)-3])
			mut := bytes.Clone(s)
			mut[len(mut)/2] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			data = data[:1<<18]
		}
		rep, err := VetBytes(data)
		if err != nil {
			if rep != nil {
				t.Fatal("VetBytes returned both a report and an error")
			}
			return
		}
		_ = rep.String() // the report must always render
		if rep.Errors() == 0 {
			if _, err := UnmarshalQuery(data); err != nil {
				if _, err := UnmarshalBundle(data); err != nil {
					t.Fatalf("input vets clean but does not decode: %v", err)
				}
			}
		}
	})
}
