package query

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/nwa"
)

// unreachableNNWA extends the golden automaton with two states the start
// states can never reach (state 4 is no call's hierarchical target either),
// one dead internal transition between them, and one dead return whose
// hierarchical component nothing supplies.
func unreachableNNWA() *nwa.NNWA {
	a := nwa.NewNNWA(goldenAlphabet(), 6)
	a.AddStart(0)
	a.AddStart(2)
	a.AddAccept(3)
	a.AddInternal(0, "a", 1)
	a.AddInternal(1, "b", 2)
	a.AddInternal(2, "a", 3)
	a.AddCall(0, "a", 1, 2)
	a.AddCall(2, "b", 3, 0)
	a.AddReturn(1, 2, "a", 3)
	a.AddReturn(3, 0, "b", 3)
	a.AddInternal(4, "a", 5)
	a.AddReturn(1, 5, "a", 3)
	return a
}

func TestVetGoldenFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.nwq"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden fixtures under testdata/")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VetBytes(data)
		if err != nil {
			t.Fatalf("%s: VetBytes: %v", f, err)
		}
		if n := rep.Errors(); n != 0 {
			t.Errorf("%s: %d vet errors:\n%s", f, n, rep)
		}
	}
}

func TestVetBundleClean(t *testing.T) {
	rep := VetBundle(goldenBundle(t))
	if rep.Errors() != 0 || rep.Warnings() != 0 {
		t.Errorf("golden bundle should vet clean, got:\n%s", rep)
	}
	if len(rep.Queries) != 3 {
		t.Fatalf("got stats for %d queries, want 3", len(rep.Queries))
	}
	for _, s := range rep.Queries {
		if len(s.Unreachable) != 0 || s.DeadTransitions != 0 {
			t.Errorf("query %q: %d unreachable states, %d dead transitions; want none",
				s.Name, len(s.Unreachable), s.DeadTransitions)
		}
	}
}

func TestVetReportsUnreachableStates(t *testing.T) {
	b := NewBundle(goldenAlphabet())
	if err := b.Add("partial", CompileN(unreachableNNWA())); err != nil {
		t.Fatal(err)
	}
	rep, err := VetBytes(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		t.Fatalf("unreachable states are warnings, got errors:\n%s", rep)
	}
	if len(rep.Queries) != 1 {
		t.Fatalf("got stats for %d queries, want 1", len(rep.Queries))
	}
	s := rep.Queries[0]
	if s.States != 6 || s.Reachable != 4 {
		t.Errorf("stats = %d states / %d reachable, want 6 / 4", s.States, s.Reachable)
	}
	if len(s.Unreachable) != 2 || s.Unreachable[0] != 4 || s.Unreachable[1] != 5 {
		t.Errorf("Unreachable = %v, want [4 5]", s.Unreachable)
	}
	// The internal transition 4→5 and the return over the unsupplied
	// hierarchical component 5 can never fire.
	if s.DeadTransitions != 2 {
		t.Errorf("DeadTransitions = %d, want 2", s.DeadTransitions)
	}
	text := rep.String()
	for _, want := range []string{"state 4 is unreachable", "state 5 is unreachable", "2 dead transitions"} {
		if !strings.Contains(text, want) {
			t.Errorf("report does not mention %q:\n%s", want, text)
		}
	}
}

func TestVetRejectsCorruptedBundle(t *testing.T) {
	data := goldenBundle(t).Marshal()

	truncated := data[:len(data)/2]
	if _, err := VetBytes(truncated); err == nil {
		t.Error("truncated bundle was not rejected")
	}

	smashed := append([]byte(nil), data...)
	smashed[0] ^= 0xff
	if _, err := VetBytes(smashed); err == nil {
		t.Error("bundle with a corrupted magic was not rejected")
	}
}

func TestVetCatchesMaskCSRDisagreement(t *testing.T) {
	// Clear one legitimately-set internal mask bit, so both representations
	// stay individually valid — every decode check passes — and only the
	// cross-representation vet can see the disagreement.
	c := CompileN(goldenNNWA())
	row := c.maskRow(c.intMask, 0, 0) // internal (state 0, "a") → {1}
	if !row.Has(1) {
		t.Fatal("fixture changed: internal mask (sym a, state 0) no longer holds state 1")
	}
	row.Unset(1)

	b := NewBundle(goldenAlphabet())
	if err := b.Add("tampered", c); err != nil {
		t.Fatal(err)
	}
	data := b.Marshal()
	if _, err := UnmarshalBundle(data); err != nil {
		t.Fatalf("tampered bundle should still decode (the point of the vet check): %v", err)
	}
	rep, err := VetBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() == 0 {
		t.Fatalf("mask/CSR disagreement was not flagged:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "internal mask row (sym 0, state 0) disagrees") {
		t.Errorf("unexpected error wording:\n%s", rep)
	}
}

func TestVetEmptyLanguageWarning(t *testing.T) {
	// An automaton whose only accepting state is unreachable accepts
	// nothing; vet must say so rather than just count the dead state.
	a := nwa.NewNNWA(goldenAlphabet(), 3)
	a.AddStart(0)
	a.AddAccept(2)
	a.AddInternal(0, "a", 1)
	a.AddInternal(1, "b", 0)
	b := NewBundle(goldenAlphabet())
	if err := b.Add("empty", CompileN(a)); err != nil {
		t.Fatal(err)
	}
	rep := VetBundle(b)
	if rep.Errors() != 0 {
		t.Fatalf("empty language is a warning, got errors:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "accepts no document") {
		t.Errorf("missing empty-language warning:\n%s", rep)
	}
}

func TestVetComplementedQueryWarns(t *testing.T) {
	// Complement flips every accept bit, the designated dead sink's
	// included — that is what keeps not(Q) ≡ !Q exact on out-of-alphabet
	// documents.  Vet must therefore treat an accepting dead state as a
	// warning, never an error: the DSL's "no x after y" is exactly this
	// shape and has to remain servable.
	alpha := goldenAlphabet()
	b := NewBundle(alpha)
	if err := b.Add("no b after a", Compile(Not(LinearOrder(alpha, "a", "b")))); err != nil {
		t.Fatal(err)
	}
	rep := VetBundle(b)
	if rep.Errors() != 0 {
		t.Fatalf("complemented query must vet without errors, got:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "is accepting") {
		t.Errorf("missing accepting-dead-state warning:\n%s", rep)
	}
}

// TestVetPlannedBundleClean pins the happy path for product groups: a
// planner-shaped bundle vets with zero errors, and the group's automaton is
// reported under the product- form.
func TestVetPlannedBundleClean(t *testing.T) {
	rep := VetBundle(plannedGoldenBundle(t))
	if rep.Errors() != 0 {
		t.Errorf("planned golden bundle should vet without errors, got:\n%s", rep)
	}
	var forms []string
	for _, s := range rep.Queries {
		forms = append(forms, s.Form)
	}
	if len(forms) != 2 || forms[0] != "product-dnwa" || forms[1] != "nnwa" {
		t.Errorf("forms = %v, want [product-dnwa nnwa]", forms)
	}

	// The standalone product artifact path through VetBytes.
	members, _ := detProductMembers()
	p, err := CompileProduct(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = VetBytes(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		t.Errorf("standalone product should vet without errors, got:\n%s", rep)
	}
	if len(rep.Queries) != 1 || rep.Queries[0].Form != "product-dnwa" {
		t.Errorf("stats = %+v, want one product-dnwa entry", rep.Queries)
	}
}

// TestVetCatchesProductMaskDisagreement corrupts the accept bitmask of an
// in-memory product so both representations stay individually valid: only
// the cross-representation vet can see the automaton accepting where no
// member's mask bit is set.
func TestVetCatchesProductMaskDisagreement(t *testing.T) {
	planned := plannedGoldenBundle(t)
	p := planned.Groups()[0].Product
	c := p.inner.(*Compiled)
	var hit int = -1
	for s := 0; s < c.num; s++ {
		if c.accept[s] && bitset.Slab(p.mask, s, p.maskW).Any() {
			hit = s
			break
		}
	}
	if hit < 0 {
		t.Fatal("fixture changed: the product has no accepting state")
	}
	row := bitset.Slab(p.mask, hit, p.maskW)
	row.ForEach(func(j int) { row.Unset(j) })
	rep := VetBundle(planned)
	if rep.Errors() == 0 {
		t.Fatalf("cleared accept-mask row was not caught:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "accept-mask row") {
		t.Errorf("report does not name the mask disagreement:\n%s", rep)
	}
}

// TestVetCatchesGroupDemuxViolations builds planned bundles with broken
// demux tables directly (the constructors refuse them) and checks each is
// reported.
func TestVetCatchesGroupDemuxViolations(t *testing.T) {
	fresh := func() (*Bundle, *CompiledProduct) {
		b := plannedGoldenBundle(t)
		return b, b.Groups()[0].Product
	}

	// An index outside the bundle.
	b, _ := fresh()
	b.groups[0].Indices[1] = 9
	if rep := VetBundle(b); rep.Errors() == 0 {
		t.Error("out-of-range demux index was not caught")
	}

	// The same query demuxed twice.
	b, _ = fresh()
	b.groups[0].Indices[1] = 0
	if rep := VetBundle(b); rep.Errors() == 0 {
		t.Error("duplicate demux index was not caught")
	}

	// A grouped query that also kept its solo runner.
	b, _ = fresh()
	b.queries[0] = Compile(WellFormed(goldenAlphabet()))
	if rep := VetBundle(b); rep.Errors() == 0 {
		t.Error("solo runner on a grouped query was not caught")
	}

	// A name covered by nothing at all.
	b, _ = fresh()
	b.groups = nil
	if rep := VetBundle(b); rep.Errors() == 0 {
		t.Error("uncovered query was not caught")
	}

	// A group whose product demuxes a different number of queries.
	b, p := fresh()
	b.groups[0].Indices = b.groups[0].Indices[:1]
	b.queries[1] = Compile(PathQuery(goldenAlphabet(), "a", "b"))
	_ = p
	if rep := VetBundle(b); rep.Errors() == 0 {
		t.Error("demux width mismatch was not caught")
	}
}
