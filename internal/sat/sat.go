// Package sat provides CNF formulas and a small DPLL satisfiability solver.
//
// It exists to cross-check the NP-hardness reduction of Theorem 10 of
// "Marrying Words and Trees": satisfiability of a CNF formula is reduced to
// membership of the nested word (⟨a a^v a⟩)^s in the language of a pushdown
// nested word automaton (see the pnwa package).  The solver answers the same
// question directly so the reduction can be validated on random instances.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Literal is a CNF literal: a 1-based variable index, negative for negated
// occurrences (the DIMACS convention).
type Literal int

// Var returns the 1-based variable index of the literal.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is positive.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New creates a formula with the given number of variables and clauses.
// It panics if a clause mentions a variable outside 1..numVars, which
// indicates a construction bug.
func New(numVars int, clauses ...Clause) *Formula {
	for _, c := range clauses {
		for _, l := range c {
			if l == 0 || l.Var() > numVars {
				panic(fmt.Sprintf("sat: literal %d out of range for %d variables", l, numVars))
			}
		}
	}
	return &Formula{NumVars: numVars, Clauses: clauses}
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Eval evaluates the formula under a complete assignment (assignment[i] is
// the value of variable i+1).
func (f *Formula) Eval(assignment []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := assignment[l.Var()-1]
			if v == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the formula in a compact human-readable form.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]string, len(c))
		for j, l := range c {
			if l.Positive() {
				lits[j] = fmt.Sprintf("x%d", l.Var())
			} else {
				lits[j] = fmt.Sprintf("¬x%d", l.Var())
			}
		}
		parts[i] = "(" + strings.Join(lits, "∨") + ")"
	}
	return strings.Join(parts, "∧")
}

// Solve decides satisfiability with DPLL (unit propagation + splitting) and
// returns a satisfying assignment when one exists.
func (f *Formula) Solve() ([]bool, bool) {
	assignment := make([]int8, f.NumVars) // 0 unassigned, 1 true, -1 false
	if !dpll(f, assignment) {
		return nil, false
	}
	out := make([]bool, f.NumVars)
	for i, v := range assignment {
		out[i] = v >= 0 // unassigned variables default to true
	}
	return out, true
}

// Satisfiable reports whether the formula has a satisfying assignment.
func (f *Formula) Satisfiable() bool {
	_, ok := f.Solve()
	return ok
}

func dpll(f *Formula, assignment []int8) bool {
	// Unit propagation.
	for {
		unitFound := false
		for _, c := range f.Clauses {
			satisfied := false
			unassigned := 0
			var lastLit Literal
			for _, l := range c {
				switch value(assignment, l) {
				case 1:
					satisfied = true
				case 0:
					unassigned++
					lastLit = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				assign(assignment, lastLit)
				unitFound = true
			}
		}
		if !unitFound {
			break
		}
	}
	// Pick an unassigned variable to split on.
	split := -1
	for i, v := range assignment {
		if v == 0 {
			split = i
			break
		}
	}
	if split == -1 {
		// Complete assignment: verify (propagation guarantees no falsified
		// clause remains, but the check is cheap and guards against bugs).
		full := make([]bool, len(assignment))
		for i, v := range assignment {
			full[i] = v > 0
		}
		return f.Eval(full)
	}
	for _, try := range []int8{1, -1} {
		next := make([]int8, len(assignment))
		copy(next, assignment)
		next[split] = try
		if dpll(f, next) {
			copy(assignment, next)
			return true
		}
	}
	return false
}

func value(assignment []int8, l Literal) int8 {
	v := assignment[l.Var()-1]
	if v == 0 {
		return 0
	}
	if (v > 0) == l.Positive() {
		return 1
	}
	return -1
}

func assign(assignment []int8, l Literal) {
	if l.Positive() {
		assignment[l.Var()-1] = 1
	} else {
		assignment[l.Var()-1] = -1
	}
}

// Random3CNF generates a random 3-CNF formula with the given number of
// variables and clauses, using the supplied random source.  Clauses use
// three distinct variables when numVars ≥ 3.
func Random3CNF(rng *rand.Rand, numVars, numClauses int) *Formula {
	clauses := make([]Clause, numClauses)
	for i := range clauses {
		vars := rng.Perm(numVars)
		k := 3
		if numVars < 3 {
			k = numVars
		}
		clause := make(Clause, 0, k)
		for j := 0; j < k; j++ {
			lit := Literal(vars[j] + 1)
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			clause = append(clause, lit)
		}
		clauses[i] = clause
	}
	return New(numVars, clauses...)
}
