package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLiteralHelpers(t *testing.T) {
	if Literal(3).Var() != 3 || Literal(-3).Var() != 3 {
		t.Errorf("Var broken")
	}
	if !Literal(3).Positive() || Literal(-3).Positive() {
		t.Errorf("Positive broken")
	}
}

func TestEvalAndString(t *testing.T) {
	f := New(2, Clause{1, -2}, Clause{2})
	if !f.Eval([]bool{true, true}) {
		t.Errorf("x1=1,x2=1 should satisfy (x1∨¬x2)∧(x2)")
	}
	if f.Eval([]bool{false, false}) {
		t.Errorf("x1=0,x2=0 should falsify the second clause")
	}
	if f.NumClauses() != 2 {
		t.Errorf("NumClauses broken")
	}
	if f.String() != "(x1∨¬x2)∧(x2)" {
		t.Errorf("String = %q", f.String())
	}
}

func TestNewPanicsOnBadLiteral(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range literal should panic")
		}
	}()
	New(1, Clause{2})
}

func TestSolveSimpleSat(t *testing.T) {
	f := New(3, Clause{1, 2}, Clause{-1, 3}, Clause{-2, -3})
	model, ok := f.Solve()
	if !ok {
		t.Fatalf("formula is satisfiable")
	}
	if !f.Eval(model) {
		t.Errorf("returned model %v does not satisfy the formula", model)
	}
	if !f.Satisfiable() {
		t.Errorf("Satisfiable should agree with Solve")
	}
}

func TestSolveUnsat(t *testing.T) {
	// (x1)(¬x1) is unsatisfiable; also the classic 2-variable full cube.
	if New(1, Clause{1}, Clause{-1}).Satisfiable() {
		t.Errorf("(x1)∧(¬x1) is unsatisfiable")
	}
	f := New(2, Clause{1, 2}, Clause{1, -2}, Clause{-1, 2}, Clause{-1, -2})
	if f.Satisfiable() {
		t.Errorf("the full 2-variable cube of clauses is unsatisfiable")
	}
}

func TestEmptyFormulaAndEmptyClause(t *testing.T) {
	if !New(2).Satisfiable() {
		t.Errorf("a formula with no clauses is trivially satisfiable")
	}
	if New(2, Clause{}).Satisfiable() {
		t.Errorf("a formula containing the empty clause is unsatisfiable")
	}
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		numVars := 1 + rng.Intn(6)
		f := Random3CNF(rng, numVars, 1+rng.Intn(12))
		want := bruteForce(f)
		if got := f.Satisfiable(); got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v for %v", trial, got, want, f)
		}
	}
}

func TestQuickSolveModelSatisfies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formula := Random3CNF(rng, 2+rng.Intn(6), 1+rng.Intn(10))
		model, ok := formula.Solve()
		if !ok {
			return !bruteForce(formula)
		}
		return formula.Eval(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := Random3CNF(rng, 5, 10)
	if f.NumVars != 5 || f.NumClauses() != 10 {
		t.Fatalf("unexpected shape: %d vars, %d clauses", f.NumVars, f.NumClauses())
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Errorf("clause %v should have 3 literals", c)
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Errorf("clause %v repeats a variable", c)
			}
			seen[l.Var()] = true
		}
	}
	small := Random3CNF(rng, 2, 3)
	for _, c := range small.Clauses {
		if len(c) != 2 {
			t.Errorf("with 2 variables clauses should have 2 literals, got %v", c)
		}
	}
}

func bruteForce(f *Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		assignment := make([]bool, n)
		for i := 0; i < n; i++ {
			assignment[i] = mask&(1<<i) != 0
		}
		if f.Eval(assignment) {
			return true
		}
	}
	return false
}
