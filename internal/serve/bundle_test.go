package serve

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/query"
)

// bundleNNWA builds a random nondeterministic automaton over the engine
// test alphabet {a,b,c}.
func bundleNNWA(rng *rand.Rand, alpha *alphabet.Alphabet, states int) *nwa.NNWA {
	labels := alpha.Symbols()
	a := nwa.NewNNWA(alpha, states)
	a.AddStart(rng.Intn(states))
	a.AddStart(rng.Intn(states))
	a.AddAccept(rng.Intn(states))
	edges := 6 + rng.Intn(8*states)
	for i := 0; i < edges; i++ {
		sym := labels[rng.Intn(len(labels))]
		switch rng.Intn(3) {
		case 0:
			a.AddInternal(rng.Intn(states), sym, rng.Intn(states))
		case 1:
			a.AddCall(rng.Intn(states), sym, rng.Intn(states), rng.Intn(states))
		default:
			a.AddReturn(rng.Intn(states), rng.Intn(states), sym, rng.Intn(states))
		}
	}
	return a
}

// bundleTestSet builds the differential query set — deterministic and
// nondeterministic side by side — and the bundle serializing it.
func bundleTestSet(t *testing.T, rng *rand.Rand) (names []string, queries []query.Query, bundle *query.Bundle) {
	t.Helper()
	alpha := alphabet.New("a", "b", "c")
	names = []string{"well-formed", "//a//b", "order a,b,c", "nondet-1", "nondet-2"}
	queries = []query.Query{
		query.Compile(query.WellFormed(alpha)),
		query.Compile(query.PathQuery(alpha, "a", "b")),
		query.Compile(query.LinearOrder(alpha, "a", "b", "c")),
		query.CompileN(bundleNNWA(rng, alpha, 3+rng.Intn(4))),
		query.CompileN(bundleNNWA(rng, alpha, 3+rng.Intn(4))),
	}
	bundle = query.NewBundle(alpha)
	for i, q := range queries {
		if err := bundle.Add(names[i], q); err != nil {
			t.Fatal(err)
		}
	}
	return names, queries, bundle
}

// TestBundleMatchesFreshCompilation is the serialization acceptance test:
// over 1200 random documents — streaming-generator documents and
// adversarial streams with pending calls/returns and out-of-alphabet
// labels — a bundle written to disk and loaded back (through the mmap path)
// must produce verdicts identical to the freshly compiled query set, both
// through a bare engine and through a serve.Pool booted from the bundle.
func TestBundleMatchesFreshCompilation(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	names, queries, bundle := bundleTestSet(t, rng)

	fresh := engine.New()
	for i, q := range queries {
		fresh.MustRegisterQuery(names[i], q)
	}

	// Serialize to disk and load back through the zero-copy mmap path.
	path := filepath.Join(t.TempDir(), "queries.nwq")
	if err := os.WriteFile(path, bundle.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	loadedBundle, err := query.OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loadedBundle.Close()

	loaded := engine.New()
	if indices, err := loaded.RegisterBundle(loadedBundle); err != nil {
		t.Fatal(err)
	} else if len(indices) != len(names) {
		t.Fatalf("RegisterBundle returned %d indices, want %d", len(indices), len(names))
	}
	for i, name := range loaded.Names() {
		if name != names[i] {
			t.Fatalf("bundle-loaded engine query %d named %q, want %q", i, name, names[i])
		}
	}

	pool, err := NewPoolFromBundle(loadedBundle, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if got := pool.Engine().Len(); got != len(names) {
		t.Fatalf("pool engine has %d queries, want %d", got, len(names))
	}

	const docs = 1200
	pending := 0
	for d := 0; d < docs; d++ {
		var events []docstream.Event
		if d%2 == 0 {
			stream := generator.NewDocumentStream(int64(d), 20+rng.Intn(200), 8, []string{"a", "b", "c"})
			for {
				e, err := stream.Next()
				if err != nil {
					break
				}
				events = append(events, e)
			}
		} else {
			events = randomEvents(rng, 10+rng.Intn(150))
		}
		depth := 0
		for _, e := range events {
			switch e.Kind {
			case nestedword.Call:
				depth++
			case nestedword.Return:
				depth--
			}
		}
		if depth != 0 {
			pending++
		}

		want, err := fresh.RunEvents(events)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.RunEvents(events)
		if err != nil {
			t.Fatal(err)
		}
		fut, err := pool.SubmitEvents(context.Background(), fmt.Sprintf("doc-%d", d), events)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for q := range names {
			if got.Verdicts[q] != want.Verdicts[q] {
				t.Fatalf("doc %d, query %q: bundle engine %v, fresh %v",
					d, names[q], got.Verdicts[q], want.Verdicts[q])
			}
			if res.Engine.Verdicts[q] != want.Verdicts[q] {
				t.Fatalf("doc %d, query %q: bundle pool %v, fresh %v",
					d, names[q], res.Engine.Verdicts[q], want.Verdicts[q])
			}
		}
	}
	if pending == 0 {
		t.Fatal("no documents with pending calls/returns were generated")
	}
}

// TestNewPoolFromBundleErrors pins the boot error paths.
func TestNewPoolFromBundleErrors(t *testing.T) {
	if _, err := NewPoolFromBundle(nil); err == nil {
		t.Error("nil bundle accepted")
	}
	if _, err := NewPoolFromBundle(query.NewBundle(alphabet.New("a"))); err == nil {
		t.Error("empty bundle accepted")
	}
}
