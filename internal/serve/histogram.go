package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts documents whose submit-to-result latency d satisfies
// 2^i ns ≤ d < 2^(i+1) ns, so the histogram spans 1 ns up to ~1.2 min
// (bucket 35 additionally absorbs everything slower).  Power-of-two edges
// keep observation to one bits.Len64 plus one atomic add — cheap enough
// for the shard worker loop — at the cost of quantiles being upper bounds
// within a factor of two, which is plenty for p50/p99 dashboards.
const histBuckets = 36

// histogram is a fixed-bucket, lock-free latency histogram.  All methods
// are safe for concurrent use; Snapshot may run while workers observe.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// observe records one latency sample.
func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns)) // 0 for 0 ns, else floor(log2)+1
	if i > 0 {
		i--
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// LatencyBucket is one bucket of the latency histogram snapshot: the count
// of samples at or below the bucket's upper bound (cumulative, the way
// Prometheus histogram `le` buckets are defined).
type LatencyBucket struct {
	UpperBound time.Duration
	Count      int64
}

// LatencyStats is a snapshot of the pool's per-document latency histogram,
// measured from successful submission to result completion (queue wait
// included).  The quantiles are upper bounds accurate to within the 2×
// bucket width; Max is exact.
type LatencyStats struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Buckets []LatencyBucket // cumulative counts, ascending upper bounds
}

// snapshot freezes the histogram into a LatencyStats, computing quantiles
// from the bucket counts.  Buckets above the highest non-empty one are
// dropped so exports stay small.
func (h *histogram) snapshot() LatencyStats {
	var counts [histBuckets]int64
	total := int64(0)
	top := -1
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			top = i
		}
	}
	st := LatencyStats{
		Count: total,
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if total == 0 {
		return st
	}
	quantile := func(q float64) time.Duration {
		want := int64(q * float64(total))
		if want < 1 {
			want = 1
		}
		cum := int64(0)
		for i := 0; i <= top; i++ {
			cum += counts[i]
			if cum >= want {
				return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
			}
		}
		return st.Max
	}
	st.P50 = quantile(0.50)
	st.P90 = quantile(0.90)
	st.P99 = quantile(0.99)
	cum := int64(0)
	for i := 0; i <= top; i++ {
		cum += counts[i]
		st.Buckets = append(st.Buckets, LatencyBucket{
			UpperBound: time.Duration(uint64(1) << uint(i+1)),
			Count:      cum,
		})
	}
	return st
}
