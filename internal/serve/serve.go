// Package serve is the multi-document serving layer on top of the engine
// package: where an engine.Engine answers N registered queries over one
// document in one pass, a serve.Pool answers them over a stream of many
// documents concurrently, one engine session per shard.
//
// A Pool owns a fixed set of shards (default runtime.GOMAXPROCS(0)), each a
// worker goroutine that has checked one engine.Session out of the shared
// engine for its lifetime and holds one reusable interning tokenizer, so the
// steady state serves documents with no per-document allocation beyond the
// submission bookkeeping.  Incoming documents are routed to shards by the
// FNV-1a hash of their ID — all submissions of one document ID serialize on
// one shard, keeping per-document ordering — or round-robined under
// AffinityNone for maximal balance when IDs are skewed.
//
// Backpressure is a bounded queue per shard: Submit blocks once the target
// shard's queue is full, which throttles the producer (typically a
// tokenizer-side loop) to the speed of the automaton workers instead of
// buffering without bound.  Submission respects context cancellation while
// blocked, and each document's context is checked again at dequeue time and
// periodically mid-pass, so a cancelled request stops consuming its shard.
//
// Results come back through a Future (Wait/Done) and, when the pool was
// built WithOnResult, through a callback invoked on the shard worker —
// aggregation loops need no per-document future bookkeeping.  Close drains
// gracefully: it rejects new submissions, lets every queued document finish,
// and waits for the workers to exit.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/query"
)

// ErrClosed is returned by Submit variants after Close has begun.  A
// network front-end maps it to 503 Service Unavailable with a Retry-After
// hint: the process is going away (or swapping pools) and the client
// should try again elsewhere.
var ErrClosed = errors.New("serve: pool closed")

// ErrQueueFull is returned by the TrySubmit variants when the target
// shard's bounded queue is full.  Unlike ErrClosed this is a transient
// overload signal — a network front-end maps it to 429 Too Many Requests
// so load sheds at the edge instead of accumulating blocked handlers.
var ErrQueueFull = errors.New("serve: shard queue full")

// Affinity selects how documents are routed to shards.
type Affinity int

const (
	// AffinityHash routes each document by the FNV-1a hash of its ID, so
	// repeated submissions of one ID always serialize on the same shard.
	AffinityHash Affinity = iota
	// AffinityNone ignores IDs and round-robins documents across shards —
	// the best balance when IDs are few or skewed.
	AffinityNone
)

// String names the affinity the way the -affinity CLI flags spell it.
func (a Affinity) String() string {
	if a == AffinityNone {
		return "none"
	}
	return "hash"
}

// ParseAffinity converts a CLI spelling ("hash" or "none") to an Affinity.
func ParseAffinity(s string) (Affinity, error) {
	switch s {
	case "hash":
		return AffinityHash, nil
	case "none":
		return AffinityNone, nil
	}
	return 0, fmt.Errorf("serve: unknown affinity %q (want \"hash\" or \"none\")", s)
}

// Result is the outcome of serving one document: the engine's per-query
// verdict set, or the error that aborted the pass (tokenization failure,
// context cancellation).  Exactly one of Engine and Err is non-nil.
type Result struct {
	ID     string
	Shard  int
	Engine *engine.Result
	Err    error
}

// Future resolves to the Result of one submitted document.
type Future struct {
	done chan struct{}
	res  Result
}

// Done returns a channel closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the document has been served or ctx is cancelled.  When
// the document itself failed, the Result carries the error both ways: in
// Result.Err and as Wait's error.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	select {
	case <-f.done:
		return f.res, f.res.Err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// ShardStats is one shard's live counters: the instantaneous queue depth
// (documents waiting in the bounded queue right now) next to the shard's
// lifetime totals.  Queue depth against capacity is the backpressure
// signal an operator watches — a shard pinned at capacity is the one
// throttling producers.
type ShardStats struct {
	Shard      int   // shard index
	QueueDepth int   // documents queued at snapshot time
	QueueCap   int   // the bounded queue's capacity
	Served     int64 // documents this shard completed, successfully or not
	Failed     int64 // documents whose Result carries an error
	Events     int64 // events consumed by this shard's successful passes
}

// Stats is a snapshot of the pool's aggregate counters, its per-shard
// breakdown, and the per-document latency histogram.
type Stats struct {
	Served   int64 // documents completed, successfully or not
	Failed   int64 // documents whose Result carries an error
	Canceled int64 // subset of Failed: context cancellation or deadline
	Rejected int64 // TrySubmit attempts refused with ErrQueueFull
	Events   int64 // events consumed by successful passes

	Shards  []ShardStats // one entry per shard, in shard order
	Latency LatencyStats // submit-to-result latency, queue wait included
}

// Option configures a Pool.
type Option func(*Pool)

// WithShards sets the number of shards (default runtime.GOMAXPROCS(0)).
// Each shard is one worker goroutine owning one engine session.
func WithShards(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.numShards = n
		}
	}
}

// WithQueueDepth bounds each shard's submission queue (default 64).  A full
// queue blocks Submit — the backpressure that keeps a fast producer from
// buffering unboundedly ahead of the automaton workers.
func WithQueueDepth(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.depth = n
		}
	}
}

// WithAffinity selects the document-to-shard routing (default AffinityHash).
func WithAffinity(a Affinity) Option {
	return func(p *Pool) { p.affinity = a }
}

// WithOnResult installs a callback invoked on the shard worker for every
// completed document, before the document's Future resolves.  It must be
// safe for concurrent calls from different shards.
func WithOnResult(fn func(Result)) Option {
	return func(p *Pool) { p.onResult = fn }
}

// job is one queued document.
type job struct {
	id    string
	ctx   context.Context
	rd    io.Reader          // tokenized on the shard's reusable tokenizer...
	src   engine.EventSource // ...or already an event source (exactly one set)
	fut   *Future
	start time.Time // submission time, for the latency histogram
}

// shardCounters is one shard's lifetime totals, owned by the shard worker
// (written there, read by Stats).
type shardCounters struct {
	served atomic.Int64
	failed atomic.Int64
	events atomic.Int64
}

// Pool serves many documents concurrently against one engine's registered
// query set.  Build it with NewPool, submit documents from any number of
// goroutines, and Close it to drain.
type Pool struct {
	eng       *engine.Engine
	numShards int
	depth     int
	affinity  Affinity
	onResult  func(Result)

	shards []chan job
	rr     atomic.Uint64 // round-robin cursor for AffinityNone

	mu     sync.RWMutex // guards the fields below against concurrent Submit/Close
	closed bool         // guarded by mu
	wg     sync.WaitGroup

	served   atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	rejected atomic.Int64
	events   atomic.Int64

	perShard []shardCounters
	hist     histogram
}

// NewPool starts the shard workers for the engine's registered query set.
// The engine must not have further queries registered while the pool is
// live (sessions are checked out for the workers' lifetime).
func NewPool(eng *engine.Engine, opts ...Option) (*Pool, error) {
	if eng == nil {
		return nil, errors.New("serve: nil engine")
	}
	if eng.Len() == 0 {
		return nil, errors.New("serve: engine has no registered queries")
	}
	p := &Pool{
		eng:       eng,
		numShards: runtime.GOMAXPROCS(0),
		depth:     64,
		affinity:  AffinityHash,
	}
	for _, o := range opts {
		o(p)
	}
	p.shards = make([]chan job, p.numShards)
	p.perShard = make([]shardCounters, p.numShards)
	for i := range p.shards {
		p.shards[i] = make(chan job, p.depth)
		p.wg.Add(1)
		go p.worker(i)
	}
	return p, nil
}

// NewPoolFromBundle boots a pool straight from a loaded query bundle: a
// fresh engine is built, every bundle query is registered under its bundle
// name, and the shard workers start against it.  Combined with
// query.OpenBundle this is the serving cold-start path that skips per-
// process compilation entirely — the tables may alias a read-only mapped
// region shared across processes.  Use Engine to reach the underlying
// engine (verdict names, alphabet) for result aggregation.
func NewPoolFromBundle(b *query.Bundle, opts ...Option) (*Pool, error) {
	if b == nil {
		return nil, errors.New("serve: nil bundle")
	}
	eng := engine.New()
	if _, err := eng.RegisterBundle(b); err != nil {
		return nil, err
	}
	return NewPool(eng, opts...)
}

// Engine returns the engine the pool serves against.
func (p *Pool) Engine() *engine.Engine { return p.eng }

// Shards returns the number of shards the pool was built with.
func (p *Pool) Shards() int { return p.numShards }

// QueueCap returns the bounded queue depth each shard was built with.
func (p *Pool) QueueCap() int { return p.depth }

// Affinity returns the document-to-shard routing the pool was built with.
func (p *Pool) Affinity() Affinity { return p.affinity }

// Stats snapshots the aggregate counters, the per-shard breakdown, and the
// latency histogram.  It may be called while the pool is serving; the
// counters are loaded independently, so a snapshot taken mid-flight is
// consistent only to within in-progress documents.
func (p *Pool) Stats() Stats {
	st := Stats{
		Served:   p.served.Load(),
		Failed:   p.failed.Load(),
		Canceled: p.canceled.Load(),
		Rejected: p.rejected.Load(),
		Events:   p.events.Load(),
		Shards:   make([]ShardStats, len(p.shards)),
		Latency:  p.hist.snapshot(),
	}
	for i := range p.shards {
		st.Shards[i] = ShardStats{
			Shard:      i,
			QueueDepth: len(p.shards[i]),
			QueueCap:   p.depth,
			Served:     p.perShard[i].served.Load(),
			Failed:     p.perShard[i].failed.Load(),
			Events:     p.perShard[i].events.Load(),
		}
	}
	return st
}

// Submit queues a document read from r — tokenized on the target shard's
// reusable interning tokenizer — and returns its Future.  It blocks while
// the shard's queue is full (backpressure) unless ctx is cancelled first,
// and fails with ErrClosed once Close has begun.
func (p *Pool) Submit(ctx context.Context, id string, r io.Reader) (*Future, error) {
	return p.enqueue(job{id: id, ctx: ctx, rd: r}, true)
}

// TrySubmit is Submit without the blocking backpressure: when the target
// shard's queue is full it fails immediately with ErrQueueFull instead of
// waiting for a slot.  A network front-end uses it to shed load at the
// edge — ErrQueueFull maps to 429 Too Many Requests, ErrClosed to 503
// Service Unavailable — rather than accumulate blocked handlers.
func (p *Pool) TrySubmit(ctx context.Context, id string, r io.Reader) (*Future, error) {
	return p.enqueue(job{id: id, ctx: ctx, rd: r}, false)
}

// SubmitSource queues a document already available as an event source.
// Events carrying a pre-interned Sym must have been interned against the
// engine's alphabet (see engine.Session.Feed).
func (p *Pool) SubmitSource(ctx context.Context, id string, src engine.EventSource) (*Future, error) {
	if src == nil {
		return nil, errors.New("serve: nil event source")
	}
	return p.enqueue(job{id: id, ctx: ctx, src: src}, true)
}

// TrySubmitSource is SubmitSource with TrySubmit's fail-fast semantics:
// ErrQueueFull instead of blocking when the target shard's queue is full.
// The network front-end submits adapter-wrapped request bodies through it.
func (p *Pool) TrySubmitSource(ctx context.Context, id string, src engine.EventSource) (*Future, error) {
	if src == nil {
		return nil, errors.New("serve: nil event source")
	}
	return p.enqueue(job{id: id, ctx: ctx, src: src}, false)
}

// SubmitEvents queues an in-memory event slice as a document.
func (p *Pool) SubmitEvents(ctx context.Context, id string, events []docstream.Event) (*Future, error) {
	return p.enqueue(job{id: id, ctx: ctx, src: engine.Events(events)}, true)
}

// TrySubmitEvents is SubmitEvents with TrySubmit's fail-fast semantics:
// ErrQueueFull instead of blocking when the target shard's queue is full.
func (p *Pool) TrySubmitEvents(ctx context.Context, id string, events []docstream.Event) (*Future, error) {
	return p.enqueue(job{id: id, ctx: ctx, src: engine.Events(events)}, false)
}

func (p *Pool) route(id string) int {
	if p.affinity == AffinityNone || len(p.shards) == 1 {
		return int((p.rr.Add(1) - 1) % uint64(len(p.shards)))
	}
	h := fnv.New64a()
	io.WriteString(h, id)
	return int(h.Sum64() % uint64(len(p.shards)))
}

func (p *Pool) enqueue(j job, wait bool) (*Future, error) {
	j.fut = &Future{done: make(chan struct{})}
	if j.ctx == nil {
		j.ctx = context.Background()
	}
	j.start = time.Now()
	// The read lock is held across the (possibly blocking) send so Close
	// cannot close the shard channel out from under it; Close's write lock
	// waits for in-flight submissions, and the workers keep draining, so a
	// blocked send always completes or gives up via ctx.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	shard := p.shards[p.route(j.id)]
	if !wait {
		select {
		case shard <- j:
			return j.fut, nil
		default:
			p.rejected.Add(1)
			return nil, ErrQueueFull
		}
	}
	select {
	case shard <- j:
		return j.fut, nil
	case <-j.ctx.Done():
		return nil, j.ctx.Err()
	}
}

// Close drains the pool gracefully: new submissions fail with ErrClosed,
// every already-queued document is served to completion, and Close returns
// once all shard workers have exited and released their sessions.  It is
// safe to call more than once.
func (p *Pool) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, sh := range p.shards {
			close(sh)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

// Shutdown is Close bounded by a context: it initiates the same graceful
// drain but gives up waiting when ctx is cancelled, returning ctx.Err()
// while the workers keep draining in the background.
func (p *Pool) Shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ctxSource aborts a pass when its context is cancelled, checking once per
// checkInterval events so the hot loop stays branch-cheap.
type ctxSource struct {
	ctx context.Context
	src engine.EventSource
	n   int
}

const checkInterval = 1024

func (c *ctxSource) Next() (docstream.Event, error) {
	if c.n%checkInterval == 0 {
		if err := c.ctx.Err(); err != nil {
			return docstream.Event{}, err
		}
	}
	c.n++
	return c.src.Next()
}

// worker is one shard: it checks a session out of the engine once, reuses
// one interning tokenizer, and serves its queue until Close.
func (p *Pool) worker(shard int) {
	defer p.wg.Done()
	ses := p.eng.Acquire()
	defer p.eng.Release(ses)
	// One tokenizer per shard, Reset per document: after the first document
	// the tokenizer's buffered reader is reused, so reader-submitted
	// documents tokenize allocation-free too.
	var tok *docstream.Tokenizer
	if alpha := p.eng.Alphabet(); alpha != nil {
		tok = docstream.NewInterningTokenizer(nil, alpha)
	} else {
		tok = docstream.NewTokenizer(nil)
	}
	counters := &p.perShard[shard]
	for j := range p.shards[shard] {
		res := Result{ID: j.id, Shard: shard}
		if err := j.ctx.Err(); err != nil {
			// Cancelled while queued: report without touching the session.
			res.Err = err
		} else {
			src := j.src
			if j.rd != nil {
				tok.Reset(j.rd)
				src = tok
			}
			ses.Reset()
			r, err := ses.Run(&ctxSource{ctx: j.ctx, src: src})
			res.Engine, res.Err = r, err
		}
		p.served.Add(1)
		counters.served.Add(1)
		if res.Err != nil {
			p.failed.Add(1)
			counters.failed.Add(1)
			if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
				p.canceled.Add(1)
			}
		} else {
			p.events.Add(int64(res.Engine.Events))
			counters.events.Add(int64(res.Engine.Events))
		}
		p.hist.observe(time.Since(j.start))
		if p.onResult != nil {
			p.onResult(res)
		}
		j.fut.res = res
		close(j.fut.done)
	}
}
