package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/nestedword"
	"repro/internal/nwa"
	"repro/internal/query"
)

// testEngine builds an engine with a mixed query set — deterministic and
// nondeterministic, path, order, and validation — over the {a,b,c} alphabet.
func testEngine(t testing.TB) *engine.Engine {
	t.Helper()
	alpha := alphabet.New("a", "b", "c")
	eng := engine.New()
	eng.MustRegister("well-formed", query.WellFormed(alpha))
	eng.MustRegister("//a//b", query.PathQuery(alpha, "a", "b"))
	eng.MustRegister("order a,b,c", query.LinearOrder(alpha, "a", "b", "c"))
	eng.MustRegister("contains c", query.ContainsLabel(alpha, "c"))
	eng.MustRegister("//c//b//a", query.PathQuery(alpha, "c", "b", "a"))
	return eng
}

// randomEvents builds a random event stream that is deliberately not always
// well matched: returns may be pending, calls may stay open, and labels may
// fall outside the engine alphabet.
func randomEvents(rng *rand.Rand, size int) []docstream.Event {
	labels := []string{"a", "b", "c", "zzz-out-of-alphabet"}
	events := make([]docstream.Event, size)
	for i := range events {
		label := labels[rng.Intn(len(labels))]
		switch rng.Intn(3) {
		case 0:
			events[i] = docstream.Event{Kind: nestedword.Call, Label: label}
		case 1:
			events[i] = docstream.Event{Kind: nestedword.Return, Label: label}
		default:
			events[i] = docstream.Event{Kind: nestedword.Internal, Label: label}
		}
	}
	return events
}

// TestPoolMatchesSerialEngine is the differential acceptance test: on 1200
// random documents — streaming-generator documents and adversarial streams
// with pending calls/returns and out-of-alphabet labels — the pool's verdict
// sets must be identical to serial engine evaluation, for both affinities
// and several shard counts.
func TestPoolMatchesSerialEngine(t *testing.T) {
	eng := testEngine(t)
	rng := rand.New(rand.NewSource(23))
	const docs = 1200
	corpus := make([][]docstream.Event, docs)
	for i := range corpus {
		if i%2 == 0 {
			stream := generator.NewDocumentStream(int64(i), 40+rng.Intn(400), 12, []string{"a", "b", "c"})
			for {
				e, err := stream.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				corpus[i] = append(corpus[i], e)
			}
		} else {
			corpus[i] = randomEvents(rng, 20+rng.Intn(200))
		}
	}

	serial := make([]*engine.Result, docs)
	for i, events := range corpus {
		r, err := eng.RunEvents(events)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}

	for _, affinity := range []Affinity{AffinityHash, AffinityNone} {
		for _, shards := range []int{1, 3, 8} {
			pool, err := NewPool(eng, WithShards(shards), WithAffinity(affinity), WithQueueDepth(4))
			if err != nil {
				t.Fatal(err)
			}
			futures := make([]*Future, docs)
			for i, events := range corpus {
				futures[i], err = pool.SubmitEvents(context.Background(), fmt.Sprintf("doc-%d", i), events)
				if err != nil {
					t.Fatal(err)
				}
			}
			for i, f := range futures {
				res, err := f.Wait(context.Background())
				if err != nil {
					t.Fatalf("affinity=%v shards=%d doc %d: %v", affinity, shards, i, err)
				}
				if got, want := res.Engine.Verdicts, serial[i].Verdicts; len(got) != len(want) {
					t.Fatalf("doc %d: %d verdicts, want %d", i, len(got), len(want))
				} else {
					for q := range want {
						if got[q] != want[q] {
							t.Errorf("affinity=%v shards=%d doc %d query %d: pool %v, serial %v",
								affinity, shards, i, q, got[q], want[q])
						}
					}
				}
				if res.Engine.Events != serial[i].Events || res.Engine.MaxDepth != serial[i].MaxDepth {
					t.Errorf("doc %d: pool events/depth %d/%d, serial %d/%d",
						i, res.Engine.Events, res.Engine.MaxDepth, serial[i].Events, serial[i].MaxDepth)
				}
			}
			st := pool.Stats()
			if st.Served != docs || st.Failed != 0 {
				t.Errorf("stats: served %d failed %d, want %d/0", st.Served, st.Failed, docs)
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPoolServesNNWAQuery threads the nondeterministic bitset state-set
// runner through the whole serving stack: a CompileN'd NNWA registered next
// to a compiled DNWA for the same language ("contains label a"), served
// through a sharded pool, must agree with the deterministic query and with
// serial engine evaluation on every document — including adversarial
// streams with pending calls/returns and out-of-alphabet labels.
func TestPoolServesNNWAQuery(t *testing.T) {
	alpha := alphabet.New("a", "b", "c")
	// State 0 = "a not seen", 1 = "a seen"; the linear state carries the
	// flag across calls, so the hierarchical state is irrelevant and the
	// automaton accepts any word with an a-labelled position of any kind.
	seen := func(q int, sym string) int {
		if q == 1 || sym == "a" {
			return 1
		}
		return 0
	}
	n := nwa.NewNNWA(alpha, 2)
	n.AddStart(0).AddAccept(1)
	for q := 0; q < 2; q++ {
		for _, sym := range []string{"a", "b", "c"} {
			n.AddInternal(q, sym, seen(q, sym))
			n.AddCall(q, sym, seen(q, sym), q)
			for h := 0; h < 2; h++ {
				n.AddReturn(q, h, sym, seen(q, sym))
			}
		}
	}
	eng := engine.New()
	eng.MustRegisterQuery("contains a (nnwa)", query.CompileN(n))
	eng.MustRegister("contains a (dnwa)", query.ContainsLabel(alpha, "a"))

	pool, err := NewPool(eng, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(606))
	for d := 0; d < 150; d++ {
		var events []docstream.Event
		if d%2 == 0 {
			stream := generator.NewDocumentStream(int64(d), 20+rng.Intn(200), 8, []string{"a", "b", "c"})
			for {
				e, err := stream.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				events = append(events, e)
			}
		} else {
			events = randomEvents(rng, 10+rng.Intn(150))
		}
		serial, err := eng.RunEvents(events)
		if err != nil {
			t.Fatal(err)
		}
		fut, err := pool.SubmitEvents(context.Background(), fmt.Sprintf("doc-%d", d), events)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		nv, err := res.Engine.Verdict(eng, "contains a (nnwa)")
		if err != nil {
			t.Fatal(err)
		}
		dv, err := res.Engine.Verdict(eng, "contains a (dnwa)")
		if err != nil {
			t.Fatal(err)
		}
		if nv != dv {
			t.Fatalf("doc %d: NNWA verdict %v, DNWA verdict %v", d, nv, dv)
		}
		for q := range serial.Verdicts {
			if res.Engine.Verdicts[q] != serial.Verdicts[q] {
				t.Fatalf("doc %d query %d: pool %v, serial %v", d, q, res.Engine.Verdicts[q], serial.Verdicts[q])
			}
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolReaderSubmission drives the per-shard reusable tokenizer path and
// checks it against the engine's own reader path.
func TestPoolReaderSubmission(t *testing.T) {
	eng := testEngine(t)
	docs := []string{
		"<a> <b> c </b> </a>",
		"<c> <b> <a> text </a> </b> </c>",
		"a b c a b c",
		"<a> dangling",
		"</b> stray close",
		"<a><b><c> deep </c></b></a> <unknown> x </unknown>",
	}
	serial := make([]*engine.Result, len(docs))
	for i, d := range docs {
		r, err := eng.RunReader(strings.NewReader(d))
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	pool, err := NewPool(eng, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Several rounds so every shard's tokenizer is Reset and reused.
	for round := 0; round < 50; round++ {
		for i, d := range docs {
			f, err := pool.Submit(context.Background(), fmt.Sprintf("r%d-d%d", round, i), strings.NewReader(d))
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for q := range serial[i].Verdicts {
				if res.Engine.Verdicts[q] != serial[i].Verdicts[q] {
					t.Fatalf("round %d doc %d query %d: pool %v, serial %v",
						round, i, q, res.Engine.Verdicts[q], serial[i].Verdicts[q])
				}
			}
		}
	}
}

// TestPoolTokenizeError checks that a malformed document fails its own
// future without poisoning the shard for later documents.
func TestPoolTokenizeError(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	bad, err := pool.Submit(context.Background(), "bad", strings.NewReader("<a> <unterminated"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := bad.Wait(context.Background()); err == nil || res.Err == nil {
		t.Fatalf("malformed document: want error, got %+v", res)
	}
	good, err := pool.Submit(context.Background(), "good", strings.NewReader("<a> c </a>"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := good.Wait(context.Background())
	if err != nil {
		t.Fatalf("document after a failed one: %v", err)
	}
	if res.Engine.Events != 3 {
		t.Fatalf("events = %d, want 3", res.Engine.Events)
	}
}

// TestPoolContextCancellation covers both cancellation points: a document
// cancelled while queued resolves its future with the context error, and a
// Submit blocked on a full queue honours its context.
func TestPoolContextCancellation(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(1), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	f, err := pool.SubmitEvents(cancelled, "pre-cancelled", nil)
	if err != nil {
		// The queue had room, so the send raced the cancellation; either
		// outcome is allowed, but an accepted job must fail at the worker.
		if !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
	} else if res, _ := f.Wait(context.Background()); !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("queued-then-cancelled document: got %+v, want context.Canceled", res)
	}

	// Fill the single shard's queue with slow documents, then watch a
	// blocked Submit give up when its context is cancelled.
	block := make(chan struct{})
	slowSrc := func() engine.EventSource { return &blockingSource{release: block} }
	for i := 0; i < 2; i++ { // one being served + one queued = queue full
		if _, err := pool.SubmitSource(context.Background(), fmt.Sprintf("slow-%d", i), slowSrc()); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	if _, err := pool.SubmitSource(ctx, "blocked", slowSrc()); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked submit: %v", err)
	}
	close(block)
}

// blockingSource blocks its first Next until released, then ends the stream.
type blockingSource struct {
	release <-chan struct{}
	done    bool
}

func (b *blockingSource) Next() (docstream.Event, error) {
	if !b.done {
		<-b.release
		b.done = true
	}
	return docstream.Event{}, io.EOF
}

// TestPoolCloseDrains submits a batch, closes, and checks that every queued
// document was served, later submissions fail, and Close is idempotent.
func TestPoolCloseDrains(t *testing.T) {
	eng := testEngine(t)
	var delivered atomic.Int64
	pool, err := NewPool(eng, WithShards(3), WithOnResult(func(Result) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	const docs = 200
	for i := 0; i < docs; i++ {
		if _, err := pool.SubmitEvents(context.Background(), fmt.Sprintf("d%d", i), randomEvents(rand.New(rand.NewSource(int64(i))), 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != docs {
		t.Fatalf("callback delivered %d results, want %d", got, docs)
	}
	if st := pool.Stats(); st.Served != docs {
		t.Fatalf("served %d, want %d", st.Served, docs)
	}
	if _, err := pool.SubmitEvents(context.Background(), "late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := pool.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after close: %v", err)
	}
}

// TestPoolHashAffinitySticksToShard checks that one document ID always
// lands on one shard under AffinityHash, and that AffinityNone spreads a
// single ID across shards.
func TestPoolHashAffinitySticksToShard(t *testing.T) {
	eng := testEngine(t)
	run := func(a Affinity) map[int]bool {
		var mu sync.Mutex
		shards := map[int]bool{}
		pool, err := NewPool(eng, WithShards(4), WithAffinity(a),
			WithOnResult(func(r Result) {
				mu.Lock()
				shards[r.Shard] = true
				mu.Unlock()
			}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, err := pool.SubmitEvents(context.Background(), "same-id", nil); err != nil {
				t.Fatal(err)
			}
		}
		pool.Close()
		return shards
	}
	if got := run(AffinityHash); len(got) != 1 {
		t.Errorf("AffinityHash: one ID hit %d shards, want 1", len(got))
	}
	if got := run(AffinityNone); len(got) != 4 {
		t.Errorf("AffinityNone: 64 submissions hit %d of 4 shards", len(got))
	}
}

// TestPoolConcurrentSubmitters hammers one pool from many goroutines under
// the race detector.
func TestPoolConcurrentSubmitters(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(4), WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const submitters, perSubmitter = 8, 50
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perSubmitter; i++ {
				f, err := pool.SubmitEvents(context.Background(), fmt.Sprintf("g%d-%d", g, i), randomEvents(rng, 30))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := pool.Stats(); st.Served != submitters*perSubmitter {
		t.Errorf("served %d, want %d", st.Served, submitters*perSubmitter)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParseAffinity covers the CLI spelling round-trip.
func TestParseAffinity(t *testing.T) {
	for _, a := range []Affinity{AffinityHash, AffinityNone} {
		got, err := ParseAffinity(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAffinity(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAffinity("bogus"); err == nil {
		t.Error("ParseAffinity(bogus): want error")
	}
}

// TestNewPoolRejectsEmptyEngine checks the constructor's error paths.
func TestNewPoolRejectsEmptyEngine(t *testing.T) {
	if _, err := NewPool(nil); err == nil {
		t.Error("nil engine: want error")
	}
	if _, err := NewPool(engine.New()); err == nil {
		t.Error("empty engine: want error")
	}
}
