package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestTrySubmitQueueFull pins the two submit-error paths an HTTP front-end
// maps to distinct status codes: a full shard queue fails TrySubmit with
// ErrQueueFull (429) while a closed pool fails every submit variant with
// ErrClosed (503), and the rejection is counted in Stats.
func TestTrySubmitQueueFull(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(1), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}

	// Block the single worker, then fill the depth-1 queue: the next
	// TrySubmit has no slot to take.
	block := make(chan struct{})
	var futures []*Future
	for i := 0; i < 2; i++ { // one being served + one queued = queue full
		f, err := pool.SubmitSource(context.Background(), fmt.Sprintf("slow-%d", i), &blockingSource{release: block})
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	if _, err := pool.TrySubmit(context.Background(), "overflow", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on a full queue: %v, want ErrQueueFull", err)
	}
	if _, err := pool.TrySubmitEvents(context.Background(), "overflow-events", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmitEvents on a full queue: %v, want ErrQueueFull", err)
	}
	if got := pool.Stats().Rejected; got != 2 {
		t.Fatalf("Stats().Rejected = %d, want 2", got)
	}

	close(block)
	for _, f := range futures {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	// After Close every variant reports ErrClosed, never ErrQueueFull.
	if _, err := pool.TrySubmit(context.Background(), "late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after close: %v, want ErrClosed", err)
	}
	if _, err := pool.TrySubmitEvents(context.Background(), "late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmitEvents after close: %v, want ErrClosed", err)
	}
	if _, err := pool.Submit(context.Background(), "late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close: %v, want ErrClosed", err)
	}
	if st := pool.Stats(); st.Rejected != 2 {
		t.Fatalf("Stats().Rejected after close = %d, want 2 (ErrClosed is not a rejection)", st.Rejected)
	}
}

// TestTrySubmitServes checks that the fail-fast variants serve normally when
// the queue has room — same verdicts as the blocking path.
func TestTrySubmitServes(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(2), WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		events := randomEvents(rng, 50)
		want, err := eng.RunEvents(events)
		if err != nil {
			t.Fatal(err)
		}
		f, err := pool.TrySubmitEvents(context.Background(), fmt.Sprintf("doc-%d", i), events)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for q := range want.Verdicts {
			if res.Engine.Verdicts[q] != want.Verdicts[q] {
				t.Fatalf("doc %d query %d: try-submitted %v, serial %v", i, q, res.Engine.Verdicts[q], want.Verdicts[q])
			}
		}
	}
}

// TestStatsShardsAndLatency drives a corpus through the pool and checks the
// per-shard breakdown sums to the aggregate counters, queue metadata is
// reported, and the latency histogram saw every document with ordered
// quantiles.
func TestStatsShardsAndLatency(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(3), WithQueueDepth(16), WithAffinity(AffinityNone))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const docs = 90
	var futures []*Future
	for i := 0; i < docs; i++ {
		f, err := pool.SubmitEvents(context.Background(), fmt.Sprintf("doc-%d", i), randomEvents(rng, 100))
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	for _, f := range futures {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Served != docs {
		t.Fatalf("served %d, want %d", st.Served, docs)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("%d shard entries, want 3", len(st.Shards))
	}
	var served, events int64
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard entry %d labelled %d", i, sh.Shard)
		}
		if sh.QueueCap != 16 {
			t.Errorf("shard %d queue cap %d, want 16", i, sh.QueueCap)
		}
		if sh.QueueDepth < 0 || sh.QueueDepth > sh.QueueCap {
			t.Errorf("shard %d queue depth %d out of range", i, sh.QueueDepth)
		}
		served += sh.Served
		events += sh.Events
	}
	if served != st.Served || events != st.Events {
		t.Errorf("per-shard sums served=%d events=%d, aggregate %d/%d", served, events, st.Served, st.Events)
	}
	// Round-robin over 3 shards: every shard saw exactly a third.
	for i, sh := range st.Shards {
		if sh.Served != docs/3 {
			t.Errorf("shard %d served %d, want %d under round-robin", i, sh.Served, docs/3)
		}
	}
	lat := st.Latency
	if lat.Count != docs {
		t.Fatalf("latency count %d, want %d", lat.Count, docs)
	}
	if lat.P50 <= 0 || lat.P50 > lat.P90 || lat.P90 > lat.P99 || lat.Max <= 0 {
		t.Errorf("latency quantiles out of order: p50=%v p90=%v p99=%v max=%v", lat.P50, lat.P90, lat.P99, lat.Max)
	}
	if lat.P99 > 2*lat.Max {
		t.Errorf("p99 %v beyond twice the maximum %v", lat.P99, lat.Max)
	}
	if len(lat.Buckets) == 0 {
		t.Fatal("latency histogram has no buckets")
	}
	last := int64(-1)
	for _, b := range lat.Buckets {
		if b.Count < last {
			t.Errorf("bucket counts not cumulative: %v", lat.Buckets)
		}
		last = b.Count
	}
	if lat.Buckets[len(lat.Buckets)-1].Count != docs {
		t.Errorf("final cumulative bucket %d, want %d", lat.Buckets[len(lat.Buckets)-1].Count, docs)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsCanceledCounter submits a pre-cancelled document and checks it is
// classified under Canceled as well as Failed.
func TestStatsCanceledCounter(t *testing.T) {
	eng := testEngine(t)
	pool, err := NewPool(eng, WithShards(1), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Block the worker so the cancelled document is observed at dequeue.
	block := make(chan struct{})
	blocker, err := pool.SubmitSource(context.Background(), "blocker", &blockingSource{release: block})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f, err := pool.SubmitEvents(ctx, "doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(block)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if res, _ := f.Wait(context.Background()); !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("doomed document: %+v, want context.Canceled", res)
	}
	deadline := time.Now().Add(time.Second)
	for {
		st := pool.Stats()
		if st.Canceled == 1 && st.Failed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never recorded the cancellation: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHistogramQuantiles pins the bucket arithmetic directly: known samples
// land in the right power-of-two buckets and the quantile upper bounds
// bracket the true values within the 2x bucket width.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 99; i++ {
		h.observe(100 * time.Nanosecond) // bucket [64, 128)
	}
	h.observe(time.Millisecond)
	st := h.snapshot()
	if st.Count != 100 {
		t.Fatalf("count %d, want 100", st.Count)
	}
	if st.Max != time.Millisecond {
		t.Errorf("max %v, want 1ms", st.Max)
	}
	if st.P50 != 128*time.Nanosecond {
		t.Errorf("p50 %v, want the 128ns bucket bound", st.P50)
	}
	if st.P99 != 128*time.Nanosecond {
		t.Errorf("p99 %v, want the 128ns bucket bound (99 of 100 samples)", st.P99)
	}
	if want := time.Duration(1 << 20); st.Buckets[len(st.Buckets)-1].UpperBound != want {
		t.Errorf("top bucket bound %v, want %v", st.Buckets[len(st.Buckets)-1].UpperBound, want)
	}
	if st.Sum != 99*100*time.Nanosecond+time.Millisecond {
		t.Errorf("sum %v", st.Sum)
	}

	var zero histogram
	if st := zero.snapshot(); st.Count != 0 || st.P99 != 0 || len(st.Buckets) != 0 {
		t.Errorf("empty histogram snapshot: %+v", st)
	}
}
