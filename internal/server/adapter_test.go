package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adapter"
	"repro/internal/alphabet"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/query/dsl"
	"repro/internal/serve"
)

// writeAdapterBundle compiles a query set over the labels the adapter
// corpus uses — including DSL queries, one of them a top-level within whose
// nondeterministic automaton must survive the bundle round trip — and
// writes it the way `nwtool compile -dsl` would.
func writeAdapterBundle(t testing.TB) string {
	t.Helper()
	alpha := alphabet.New("library", "book", "title", "author",
		"object", "array", "main", "open", "close", "read", "write")
	names, queries := query.StandardSet(alpha, []string{"title", "author"}, []string{"library", "book"})
	exprs, err := dsl.ParseList(
		"within book: title before author; contains title; no write after close; //object//array")
	if err != nil {
		t.Fatal(err)
	}
	dslNames, dslQueries, err := dsl.Queries(alpha, exprs)
	if err != nil {
		t.Fatal(err)
	}
	names = append(names, dslNames...)
	queries = append(queries, dslQueries...)
	b := query.NewBundle(alpha)
	for i, q := range queries {
		if err := b.Add(names[i], q); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "adapter.nwq")
	if err := os.WriteFile(path, b.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// formatDoc is one corpus entry: real bytes in a named adapter format.
type formatDoc struct {
	format string
	body   string
}

// adapterCorpus builds a deterministic mixed-format corpus: XML with varying
// element order and depth (so the order, path, and within verdicts differ
// across documents), JSON values, and enter/exit traces.
func adapterCorpus(rng *rand.Rand, docs int) []formatDoc {
	var out []formatDoc
	for i := 0; i < docs; i++ {
		switch i % 3 {
		case 0:
			var sb strings.Builder
			sb.WriteString("<library>")
			for b, nb := 0, 1+rng.Intn(3); b < nb; b++ {
				sb.WriteString("<book>")
				if rng.Intn(2) == 0 {
					sb.WriteString("<title>t</title><author>a</author>")
				} else {
					sb.WriteString("<author>a</author><title>t</title>")
				}
				if rng.Intn(3) == 0 {
					sb.WriteString("<book><title>inner</title></book>")
				}
				sb.WriteString("</book>")
			}
			sb.WriteString("</library>")
			out = append(out, formatDoc{"xml", sb.String()})
		case 1:
			out = append(out, formatDoc{"json", fmt.Sprintf(
				`{"library": [{"title": "t", "n": %d}, [%d, true, null]]}`,
				rng.Intn(10), rng.Intn(10))})
		case 2:
			var sb strings.Builder
			sb.WriteString("enter main\n")
			for _, op := range []string{"open", "read", "write", "close"} {
				if rng.Intn(2) == 0 {
					sb.WriteString("enter " + op + "\nexit\n")
				} else {
					sb.WriteString(op + " 1\n")
				}
			}
			sb.WriteString("exit main\n")
			out = append(out, formatDoc{"trace", sb.String()})
		}
	}
	return out
}

// adapterSerialVerdicts evaluates the corpus serially through the adapters
// on an engine booted from the bundle — the ground truth the pool and the
// HTTP paths must match.
func adapterSerialVerdicts(t testing.TB, bundlePath string, corpus []formatDoc) ([]map[string]bool, []string) {
	t.Helper()
	b, err := query.OpenBundle(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	eng := engine.New()
	if _, err := eng.RegisterBundle(b); err != nil {
		t.Fatal(err)
	}
	names := eng.Names()
	out := make([]map[string]bool, len(corpus))
	for i, d := range corpus {
		src, err := adapter.New(d.format, strings.NewReader(d.body), eng.Alphabet())
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.Run(src)
		if err != nil {
			t.Fatalf("doc %d (%s): %v", i, d.format, err)
		}
		out[i] = make(map[string]bool, len(names))
		for q, name := range names {
			out[i][name] = r.Verdicts[q]
		}
	}
	return out, names
}

// TestAdapterPoolAgreesWithSerial: the sharded pool, fed each document
// through SubmitSource with the matching adapter, reports exactly the
// serial verdicts.
func TestAdapterPoolAgreesWithSerial(t *testing.T) {
	bundlePath := writeAdapterBundle(t)
	corpus := adapterCorpus(rand.New(rand.NewSource(23)), 60)
	want, names := adapterSerialVerdicts(t, bundlePath, corpus)

	b, err := query.OpenBundle(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	eng := engine.New()
	if _, err := eng.RegisterBundle(b); err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPool(eng, serve.WithShards(4), serve.WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*serve.Future, len(corpus))
	for i, d := range corpus {
		src, err := adapter.New(d.format, strings.NewReader(d.body), pool.Engine().Alphabet())
		if err != nil {
			t.Fatal(err)
		}
		futs[i], err = pool.SubmitSource(context.Background(), fmt.Sprintf("doc-%d", i), src)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, fut := range futs {
		res, err := fut.Wait(context.Background())
		if err != nil || res.Err != nil {
			t.Fatalf("doc %d: wait %v, result %v", i, err, res.Err)
		}
		for q, name := range names {
			if res.Engine.Verdicts[q] != want[i][name] {
				t.Errorf("doc %d (%s) query %q: pool %v, serial %v",
					i, corpus[i].format, name, res.Engine.Verdicts[q], want[i][name])
			}
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdapterHTTPAgreesWithSerial: POST /v1/documents?format=... and the
// batch endpoint's per-line "format" field both report the serial verdicts
// for every corpus document.
func TestAdapterHTTPAgreesWithSerial(t *testing.T) {
	bundlePath := writeAdapterBundle(t)
	corpus := adapterCorpus(rand.New(rand.NewSource(29)), 45)
	want, _ := adapterSerialVerdicts(t, bundlePath, corpus)
	_, ts := testServer(t, Config{BundlePath: bundlePath, Shards: 3, QueueDepth: 8})

	for i, d := range corpus {
		resp, err := ts.Client().Post(
			fmt.Sprintf("%s/v1/documents?id=doc-%d&format=%s", ts.URL, i, d.format),
			"application/octet-stream", strings.NewReader(d.body))
		if err != nil {
			t.Fatal(err)
		}
		var res DocumentResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("doc %d: status %d, decode %v", i, resp.StatusCode, err)
		}
		if len(res.Verdicts) != len(want[i]) {
			t.Fatalf("doc %d: %d verdicts, want %d", i, len(res.Verdicts), len(want[i]))
		}
		for name, v := range want[i] {
			if res.Verdicts[name] != v {
				t.Errorf("doc %d (%s) query %q: http %v, serial %v", i, d.format, name, res.Verdicts[name], v)
			}
		}
	}

	// The batch endpoint, with per-line formats mixed in one request.
	var req strings.Builder
	enc := json.NewEncoder(&req)
	for i, d := range corpus {
		if err := enc.Encode(batchLine{ID: fmt.Sprintf("doc-%d", i), Doc: d.body, Format: d.format}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(req.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var res batchResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.Error != "" {
			t.Fatalf("batch line %d: %s", n, res.Error)
		}
		if res.ID != fmt.Sprintf("doc-%d", n) {
			t.Fatalf("batch line %d out of order: id %q", n, res.ID)
		}
		for name, v := range want[n] {
			if res.Verdicts[name] != v {
				t.Errorf("batch doc %d query %q: http %v, serial %v", n, name, res.Verdicts[name], v)
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(corpus) {
		t.Fatalf("batch returned %d lines, want %d", n, len(corpus))
	}

	// An unknown format is a client error, not a decode attempt.
	resp, err = ts.Client().Post(ts.URL+"/v1/documents?format=yaml", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp.StatusCode)
	}
}
