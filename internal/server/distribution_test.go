package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/bundlecache"
	"repro/internal/query"
	"repro/internal/query/format"
	"repro/internal/serve"
)

// signBundleFile signs the bundle at path with a fresh keypair, writes the
// detached envelope next to it (path.sig, the layout `nwtool sign` emits),
// and returns the keypair files.
func signBundleFile(t testing.TB, path string) (privFile, pubFile []byte) {
	t.Helper()
	privFile, pubFile, err := format.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	priv, err := format.ParsePrivateKey(privFile)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := format.Sign(priv, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".sig", sig, 0o644); err != nil {
		t.Fatal(err)
	}
	return privFile, pubFile
}

// provisionedServer boots a host-B style Server that owns no bundle file of
// its own: every load resolves through a bundlecache.Source against peerURL.
func provisionedServer(t testing.TB, peerURL, cacheDir string, pub []byte) (*Server, *httptest.Server, *bundlecache.Cache) {
	t.Helper()
	cache, err := bundlecache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	src := bundlecache.NewSource(peerURL, cache, bundlecache.Options{PublicKey: pub})
	srv, err := New(Config{Source: src.Fetch, PublicKey: pub, Shards: 2, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, cache
}

// TestFleetSelfProvisioning is the distribution acceptance test, two hosts
// end to end: host A compiles and signs a bundle and serves it; host B
// starts with an empty cache and nothing but A's URL and public key,
// self-provisions over GET /v1/bundle, and must then produce verdicts over
// HTTP and by direct pool submission identical to serial evaluation of the
// artifact A published — 1200 documents.  Then A goes away and B restarts
// offline from its warm cache alone.
func TestFleetSelfProvisioning(t *testing.T) {
	// Host A: compile, sign, serve.
	bundle := writeTestBundle(t)
	_, pubFile := signBundleFile(t, bundle)
	_, tsA := testServer(t, Config{BundlePath: bundle, Shards: 2, QueueDepth: 32})

	// Host B: empty cache, A's URL, A's public key. Boot = cold fetch.
	cacheDir := t.TempDir()
	hostB, tsB, _ := provisionedServer(t, tsA.URL+"/v1/bundle", cacheDir, pubFile)

	info, err := hostB.BundleInfo()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.Path, cacheDir) {
		t.Fatalf("host B serves from %q, want a cache entry under %q", info.Path, cacheDir)
	}
	if !info.Bundle.HashVerified {
		t.Fatal("host B's bundle is not hash-verified")
	}

	// Ground truth is serial evaluation of the artifact A published.
	rng := rand.New(rand.NewSource(47))
	const docs = 1200
	corpus := testCorpus(rng, docs)
	want, names := serialVerdicts(t, bundle, corpus)

	// Path 1: HTTP against host B.
	client := tsB.Client()
	for i, doc := range corpus {
		code, res, body := postDocument(t, client, tsB.URL, fmt.Sprintf("doc-%d", i), doc)
		if code != http.StatusOK {
			t.Fatalf("doc %d: status %d, body %s", i, code, body)
		}
		for _, name := range names {
			if res.Verdicts[name] != want[i][name] {
				t.Errorf("doc %d query %q: host B %v, serial %v", i, name, res.Verdicts[name], want[i][name])
			}
		}
	}

	// Path 2: direct pool submission from B's provisioned cache entry.
	b, err := query.OpenBundle(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pool, err := serve.NewPoolFromBundle(b, serve.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	poolNames := pool.Engine().Names()
	futs := make([]*serve.Future, docs)
	for i, doc := range corpus {
		if futs[i], err = pool.Submit(context.Background(), fmt.Sprintf("doc-%d", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range futs {
		res, err := f.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for q, name := range poolNames {
			if res.Engine.Verdicts[q] != want[i][name] {
				t.Errorf("pool doc %d query %q: pool %v, serial %v", i, name, res.Engine.Verdicts[q], want[i][name])
			}
		}
	}

	// Host A disappears; host B restarts.  The warm cache — entry plus its
	// verified signature sibling — must boot it offline, and the signature
	// check still runs against the pinned key at load.
	tsA.Close()
	hostB2, tsB2, _ := provisionedServer(t, tsA.URL+"/v1/bundle", cacheDir, pubFile)
	info2, err := hostB2.BundleInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Path != info.Path {
		t.Fatalf("warm restart serves %q, want the cached entry %q", info2.Path, info.Path)
	}
	for i, doc := range corpus[:25] {
		code, res, body := postDocument(t, tsB2.Client(), tsB2.URL, fmt.Sprintf("re-%d", i), doc)
		if code != http.StatusOK {
			t.Fatalf("offline doc %d: status %d, body %s", i, code, body)
		}
		for _, name := range names {
			if res.Verdicts[name] != want[i][name] {
				t.Errorf("offline doc %d query %q: got %v, serial %v", i, name, res.Verdicts[name], want[i][name])
			}
		}
	}
}

// TestDistributionRefusesToSwap pins verify-before-swap at fleet scope:
// a tampered cache entry and a badly signed republish must both fail the
// reload with a diagnosable error while the old generation keeps serving.
func TestDistributionRefusesToSwap(t *testing.T) {
	t.Run("tampered cache entry", func(t *testing.T) {
		bundle := writeTestBundle(t)
		_, tsA := testServer(t, Config{BundlePath: bundle, Shards: 2})
		hostB, tsB, cache := provisionedServer(t, tsA.URL+"/v1/bundle", t.TempDir(), nil)
		gen := hostB.generation()

		// Peer gone, and the cached entry rots on disk.
		tsA.Close()
		latest, ok := cache.Latest()
		if !ok {
			t.Fatal("cache has no latest entry after boot")
		}
		entry, err := cache.Get(latest)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(entry)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 1
		if err := os.WriteFile(entry, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Reload must fail — a rotten entry is not a warm cache — and the
		// failure must carry the hash mismatch, not a generic fetch error.
		if _, err := hostB.Reload(); !errors.Is(err, format.ErrHashMismatch) {
			t.Fatalf("Reload over a tampered cache entry = %v, want ErrHashMismatch", err)
		}
		if got := hostB.generation(); got != gen {
			t.Fatalf("generation moved %d -> %d on a failed reload", gen, got)
		}
		if code, _, body := postDocument(t, tsB.Client(), tsB.URL, "after", "<a></a>"); code != http.StatusOK {
			t.Fatalf("old generation stopped serving: status %d, body %s", code, body)
		}
	})

	t.Run("bad signature", func(t *testing.T) {
		// Host A publishes signed bundles; host B pins A's key.
		bundle := writeTestBundle(t)
		_, pubFile := signBundleFile(t, bundle)
		srvA, tsA := testServer(t, Config{BundlePath: bundle, Shards: 2})
		hostB, tsB, _ := provisionedServer(t, tsA.URL+"/v1/bundle", t.TempDir(), pubFile)
		gen := hostB.generation()

		// A is compromised: it republishes a different bundle signed by a
		// key that is not the one B pinned.  A itself (no pinned key) loads
		// and serves it happily.
		alpha := alphabet.New("a", "b", "c")
		rogue := query.NewBundle(alpha)
		if err := rogue.Add("wf", query.Compile(query.WellFormed(alpha))); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(bundle, rogue.Marshal(), 0o644); err != nil {
			t.Fatal(err)
		}
		signBundleFile(t, bundle) // fresh keypair: wrong key from B's view
		if _, err := srvA.Reload(); err != nil {
			t.Fatalf("host A reload: %v", err)
		}

		// B's reload fetches the republish, sees a signature by the wrong
		// key, and must refuse before anything reaches its cache or pools.
		if _, err := hostB.Reload(); !errors.Is(err, format.ErrBadSignature) {
			t.Fatalf("Reload of a wrongly signed bundle = %v, want ErrBadSignature", err)
		}
		if got := hostB.generation(); got != gen {
			t.Fatalf("generation moved %d -> %d on a failed reload", gen, got)
		}
		// The old generation still serves — with the old query set.
		code, res, body := postDocument(t, tsB.Client(), tsB.URL, "after", "<a></a>")
		if code != http.StatusOK {
			t.Fatalf("old generation stopped serving: status %d, body %s", code, body)
		}
		if _, ok := res.Verdicts["order(a<b)"]; !ok && len(res.Verdicts) < 2 {
			t.Fatalf("old generation lost its query set: verdicts %v", res.Verdicts)
		}
	})
}
