package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzHTTPDocument throws arbitrary bytes at POST /v1/documents and checks
// the front-end's contract holds for every input: no panic, a status from
// the documented set, and a body that parses as JSON — a verdict set on
// 200, an error envelope otherwise.
func FuzzHTTPDocument(f *testing.F) {
	bundle := writeTestBundle(f)
	srv, err := New(Config{BundlePath: bundle, Shards: 2, QueueDepth: 8, MaxBodyBytes: 1 << 16})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()
	f.Cleanup(func() { srv.Close() })

	f.Add("<a><b>text</b></a>", "doc-1")
	f.Add("<a unterminated", "")
	f.Add("", "empty")
	f.Add("</>", "weird")
	f.Add("<a>"+strings.Repeat("deep ", 100)+"</a>", "wide")
	f.Add("\x00\xff<\x80>", "binary")

	f.Fuzz(func(t *testing.T, doc, id string) {
		req := httptest.NewRequest("POST", "/v1/documents", strings.NewReader(doc))
		if id != "" {
			q := req.URL.Query()
			q.Set("id", id)
			req.URL.RawQuery = q.Encode()
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK:
			var res DocumentResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatalf("200 with unparseable body %q: %v", rec.Body.String(), err)
			}
			if len(res.Verdicts) != 3 {
				t.Fatalf("200 with %d verdicts, want 3", len(res.Verdicts))
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d with non-envelope body %q", rec.Code, rec.Body.String())
			}
		default:
			t.Fatalf("undocumented status %d for doc %q", rec.Code, doc)
		}
	})
}
