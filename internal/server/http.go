package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/adapter"
	"repro/internal/serve"
)

// DocumentResult is the JSON verdict for one served document: which shard
// ran it, how many events the pass consumed, the maximum nesting depth
// observed, and every registered query's verdict by bundle name.
type DocumentResult struct {
	ID       string          `json:"id"`
	Shard    int             `json:"shard"`
	Events   int             `json:"events"`
	MaxDepth int             `json:"max_depth"`
	Verdicts map[string]bool `json:"verdicts"`
}

// errorBody is the JSON error envelope for every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Status is the GET /v1/status document: the active bundle generation's
// identity (the same schema `nwtool bundle -json` prints), the pool shape,
// and a snapshot of the serving counters.
type Status struct {
	BundleInfo    BundleInfo  `json:"bundle_info"`
	Shards        int         `json:"shards"`
	QueueCap      int         `json:"queue_cap"`
	Affinity      string      `json:"affinity"`
	UptimeSec     float64     `json:"uptime_sec"`
	Reloads       int64       `json:"reloads"`
	EventsPerSec  float64     `json:"events_per_sec"`
	Served        int64       `json:"served"`
	Failed        int64       `json:"failed"`
	Canceled      int64       `json:"canceled"`
	Rejected      int64       `json:"rejected"`
	Events        int64       `json:"events"`
	ShardStats    []ShardJSON `json:"shard_stats"`
	LatencyP50Sec float64     `json:"latency_p50_sec"`
	LatencyP90Sec float64     `json:"latency_p90_sec"`
	LatencyP99Sec float64     `json:"latency_p99_sec"`
	LatencyMaxSec float64     `json:"latency_max_sec"`
}

// ShardJSON is one shard's row in the Status document.
type ShardJSON struct {
	Shard      int   `json:"shard"`
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Served     int64 `json:"served"`
	Failed     int64 `json:"failed"`
	Events     int64 `json:"events"`
}

// Handler returns the Server's route table, ready to mount on an
// http.Server (or httptest).  Routes:
//
//	POST /v1/documents[?id=ID][&format=xml|json|trace]
//	                            serve one document (body = document text;
//	                            format routes the body through the matching
//	                            internal/adapter event source instead of the
//	                            native tokenizer)
//	POST /v1/batch              serve an NDJSON stream of documents (a line's
//	                            optional "format" field works like ?format=)
//	POST /v1/reload             swap in a freshly opened bundle
//	GET  /v1/bundle             the active generation's raw NWQ1 container
//	                            (ETag = content hash, If-None-Match → 304) —
//	                            how peers self-provision (docs/DISTRIBUTION.md)
//	GET  /v1/bundle.sig         the generation's detached NWS1 signature
//	                            envelope (404 when the bundle is unsigned)
//	GET  /v1/status             bundle identity + serving counters (JSON)
//	GET  /metrics               Prometheus text exposition
//	GET  /debug/vars            expvar JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/documents", s.handleDocument)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("GET /v1/bundle", s.handleBundle)
	mux.HandleFunc("GET /v1/bundle.sig", s.handleBundleSig)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// writeJSON writes one JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps a serving error to its HTTP status and JSON envelope.
// The two serve sentinels get their contract codes — ErrQueueFull is 429
// (transient overload, shed at the edge), ErrClosed and a closed Server
// are 503 (going away, retry elsewhere) — both with Retry-After.  An
// oversized body is 413, everything else (tokenizer errors, malformed
// batch lines) is 400.
func writeError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, serve.ErrClosed), errors.Is(err, ErrServerClosed):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.As(err, &maxErr):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// result converts one pool Result into the wire schema using the
// generation's verdict-name table.
func (st *poolState) result(res serve.Result) DocumentResult {
	out := DocumentResult{
		ID:       res.ID,
		Shard:    res.Shard,
		Events:   res.Engine.Events,
		MaxDepth: res.Engine.MaxDepth,
		Verdicts: make(map[string]bool, len(st.names)),
	}
	for i, name := range st.names {
		out.Verdicts[name] = res.Engine.Verdicts[i]
	}
	return out
}

// handleDocument serves POST /v1/documents: the request body is one
// document in the XML-like syntax — or, with ?format=xml|json|trace, in
// that real input format, decoded through the matching internal/adapter
// event source interned against the active generation's alphabet — the
// optional ?id= names it for shard affinity, and the response is its
// DocumentResult.  Submission is fail-fast (TrySubmit/TrySubmitSource): a
// full shard queue answers 429 immediately instead of parking the handler
// goroutine — per-request backpressure belongs to the batch endpoint.
func (s *Server) handleDocument(w http.ResponseWriter, r *http.Request) {
	st, err := s.acquire()
	if err != nil {
		writeError(w, err)
		return
	}
	defer st.release()

	id := r.URL.Query().Get("id")
	if id == "" {
		id = fmt.Sprintf("doc-%d", s.nextID.Add(1))
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var fut *serve.Future
	if format := r.URL.Query().Get("format"); format != "" {
		// The adapter wraps the request body; the shard worker drives it
		// while this handler blocks on the future, so the body is read
		// from exactly one goroutine at a time.
		src, err := adapter.New(format, body, st.pool.Engine().Alphabet())
		if err != nil {
			writeError(w, err)
			return
		}
		fut, err = st.pool.TrySubmitSource(r.Context(), id, src)
		if err != nil {
			writeError(w, err)
			return
		}
	} else {
		fut, err = st.pool.TrySubmit(r.Context(), id, body)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st.result(res))
}

// batchLine is one NDJSON request line for POST /v1/batch.  Format, when
// non-empty, decodes Doc through the named internal/adapter event source
// (xml, json, trace) instead of the native tokenizer.
type batchLine struct {
	ID     string `json:"id"`
	Doc    string `json:"doc"`
	Format string `json:"format,omitempty"`
}

// batchResult is one NDJSON response line: a DocumentResult on success, or
// the input ID with an error string when that document failed.  Lines come
// back in input order regardless of which shards ran them.
type batchResult struct {
	DocumentResult
	Error string `json:"error,omitempty"`
}

// handleBatch serves POST /v1/batch: the request body is NDJSON, one
// {"id","doc"} object per line, and the response is NDJSON with one
// batchResult per input line, in input order.  Submission uses the
// blocking path — the pool's bounded queues throttle the body read, so a
// fast client is slowed to the automaton workers' speed instead of
// queueing unboundedly.  Per-document failures become error lines; the
// stream keeps going.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	st, err := s.acquire()
	if err != nil {
		writeError(w, err)
		return
	}
	defer st.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)

	// HTTP/1 closes the unread part of the request body at the first
	// response flush, which would truncate a batch whose lines are still
	// arriving while early verdicts stream out; full-duplex mode keeps the
	// body readable.  (HTTP/2 is full duplex already; an unsupported
	// ResponseWriter just stays half duplex.)
	_ = http.NewResponseController(w).EnableFullDuplex()

	// Pipeline: the reader goroutine submits with backpressure and hands
	// futures down a bounded channel; this goroutine resolves them in
	// order and streams response lines.  Total in-flight work is bounded
	// by the pool queues plus the channel.
	type pending struct {
		id  string
		fut *serve.Future
		err error
	}
	futs := make(chan pending, 2*st.pool.Shards())
	go func() {
		defer close(futs)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
		n := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			n++
			var in batchLine
			if err := json.Unmarshal([]byte(line), &in); err != nil {
				futs <- pending{id: fmt.Sprintf("line-%d", n), err: fmt.Errorf("malformed batch line: %w", err)}
				continue
			}
			if in.ID == "" {
				in.ID = fmt.Sprintf("doc-%d", s.nextID.Add(1))
			}
			var fut *serve.Future
			var err error
			if in.Format != "" {
				var src adapter.Source
				src, err = adapter.New(in.Format, strings.NewReader(in.Doc), st.pool.Engine().Alphabet())
				if err == nil {
					fut, err = st.pool.SubmitSource(r.Context(), in.ID, src)
				}
			} else {
				fut, err = st.pool.Submit(r.Context(), in.ID, strings.NewReader(in.Doc))
			}
			futs <- pending{id: in.ID, fut: fut, err: err}
		}
		if err := sc.Err(); err != nil {
			futs <- pending{id: "body", err: err}
		}
	}()

	flusher, _ := w.(http.Flusher)
	for p := range futs {
		line := batchResult{DocumentResult: DocumentResult{ID: p.id}}
		switch {
		case p.err != nil:
			line.Error = p.err.Error()
		default:
			if res, err := p.fut.Wait(r.Context()); err != nil {
				line.Error = err.Error()
			} else {
				line.DocumentResult = st.result(res)
			}
		}
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleReload serves POST /v1/reload: re-open the bundle path, boot a new
// pool, swap.  The response is the new generation's BundleInfo.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	info, err := s.Reload()
	if err != nil {
		if errors.Is(err, ErrServerClosed) {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleBundle serves GET /v1/bundle: the active generation's raw NWQ1
// container bytes, so a peer booted with -queryset-url self-provisions
// from this server.  The ETag is the container's quoted hex content hash —
// the same value the bundlecache keys entries by — and a matching
// If-None-Match answers 304 with no body, so a fleet's periodic refresh
// is one conditional request per worker.  The bytes are written while
// holding a generation reference, so the mapped region cannot be unmapped
// mid-response even if a reload swaps generations.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	st, err := s.acquire()
	if err != nil {
		writeError(w, err)
		return
	}
	defer st.release()
	if st.raw == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "bundle has no serialized form"})
		return
	}
	if st.etag != "" {
		w.Header().Set("ETag", st.etag)
		for _, match := range strings.Split(r.Header.Get("If-None-Match"), ",") {
			if strings.TrimSpace(match) == st.etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(st.raw)))
	w.Write(st.raw)
}

// handleBundleSig serves GET /v1/bundle.sig: the detached NWS1 signature
// envelope that shipped next to the active bundle, or 404 when it was
// loaded unsigned.
func (s *Server) handleBundleSig(w http.ResponseWriter, r *http.Request) {
	st, err := s.acquire()
	if err != nil {
		writeError(w, err)
		return
	}
	defer st.release()
	if len(st.sig) == 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "bundle is unsigned"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(st.sig)))
	w.Write(st.sig)
}

// status assembles the Status document from the active generation.
func (s *Server) status() (Status, error) {
	st, err := s.acquire()
	if err != nil {
		return Status{}, err
	}
	defer st.release()
	stats := st.pool.Stats()
	out := Status{
		BundleInfo:    st.info,
		Shards:        st.pool.Shards(),
		QueueCap:      st.pool.QueueCap(),
		Affinity:      st.pool.Affinity().String(),
		UptimeSec:     time.Since(s.start).Seconds(),
		Reloads:       s.reloads.Load(),
		EventsPerSec:  s.rates.observe(time.Now(), stats.Events),
		Served:        stats.Served,
		Failed:        stats.Failed,
		Canceled:      stats.Canceled,
		Rejected:      stats.Rejected,
		Events:        stats.Events,
		LatencyP50Sec: stats.Latency.P50.Seconds(),
		LatencyP90Sec: stats.Latency.P90.Seconds(),
		LatencyP99Sec: stats.Latency.P99.Seconds(),
		LatencyMaxSec: stats.Latency.Max.Seconds(),
	}
	for _, sh := range stats.Shards {
		out.ShardStats = append(out.ShardStats, ShardJSON{
			Shard:      sh.Shard,
			QueueDepth: sh.QueueDepth,
			QueueCap:   sh.QueueCap,
			Served:     sh.Served,
			Failed:     sh.Failed,
			Events:     sh.Events,
		})
	}
	return out, nil
}

// handleStatus serves GET /v1/status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.status()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
