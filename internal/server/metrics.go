package server

import (
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format, rendered directly from a Stats snapshot — no client library, no
// registry, just the counters the pool already keeps.  Counters are per
// bundle generation (a reload resets them); nwserved_bundle_generation
// rising tells a scraper why.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, err := s.acquire()
	if err != nil {
		writeError(w, err)
		return
	}
	defer st.release()

	stats := st.pool.Stats()
	rate := s.rates.observe(time.Now(), stats.Events)

	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("nwserved_documents_served_total", "Documents completed, successfully or not.", stats.Served)
	counter("nwserved_documents_failed_total", "Documents whose result carries an error.", stats.Failed)
	counter("nwserved_documents_canceled_total", "Failed documents whose error was context cancellation.", stats.Canceled)
	counter("nwserved_documents_rejected_total", "Fail-fast submissions refused with a full shard queue.", stats.Rejected)
	counter("nwserved_events_total", "Events consumed by successful passes.", stats.Events)
	counter("nwserved_reloads_total", "Completed bundle reloads.", s.reloads.Load())
	gauge("nwserved_bundle_generation", "Active bundle generation (rises on every reload).", float64(st.info.Generation))
	gauge("nwserved_events_per_second", "Event throughput between the last two scrapes.", rate)
	gauge("nwserved_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	fmt.Fprintf(&b, "# HELP nwserved_shard_queue_depth Documents waiting in the shard's bounded queue.\n# TYPE nwserved_shard_queue_depth gauge\n")
	for _, sh := range stats.Shards {
		fmt.Fprintf(&b, "nwserved_shard_queue_depth{shard=\"%d\"} %d\n", sh.Shard, sh.QueueDepth)
	}
	fmt.Fprintf(&b, "# HELP nwserved_shard_queue_capacity The shard queue's bound.\n# TYPE nwserved_shard_queue_capacity gauge\n")
	for _, sh := range stats.Shards {
		fmt.Fprintf(&b, "nwserved_shard_queue_capacity{shard=\"%d\"} %d\n", sh.Shard, sh.QueueCap)
	}
	fmt.Fprintf(&b, "# HELP nwserved_shard_documents_served_total Documents completed by the shard.\n# TYPE nwserved_shard_documents_served_total counter\n")
	for _, sh := range stats.Shards {
		fmt.Fprintf(&b, "nwserved_shard_documents_served_total{shard=\"%d\"} %d\n", sh.Shard, sh.Served)
	}
	fmt.Fprintf(&b, "# HELP nwserved_shard_events_total Events consumed by the shard's successful passes.\n# TYPE nwserved_shard_events_total counter\n")
	for _, sh := range stats.Shards {
		fmt.Fprintf(&b, "nwserved_shard_events_total{shard=\"%d\"} %d\n", sh.Shard, sh.Events)
	}

	lat := stats.Latency
	fmt.Fprintf(&b, "# HELP nwserved_document_latency_seconds Submit-to-result latency, queue wait included.\n# TYPE nwserved_document_latency_seconds histogram\n")
	for _, bk := range lat.Buckets {
		fmt.Fprintf(&b, "nwserved_document_latency_seconds_bucket{le=\"%s\"} %d\n",
			formatFloat(bk.UpperBound.Seconds()), bk.Count)
	}
	fmt.Fprintf(&b, "nwserved_document_latency_seconds_bucket{le=\"+Inf\"} %d\n", lat.Count)
	fmt.Fprintf(&b, "nwserved_document_latency_seconds_sum %s\n", formatFloat(lat.Sum.Seconds()))
	fmt.Fprintf(&b, "nwserved_document_latency_seconds_count %d\n", lat.Count)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// formatFloat renders a float the way Prometheus text exposition expects:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PublishExpvar publishes the server's status document under the given
// expvar name (conventionally "nwserved"), making it part of GET
// /debug/vars.  expvar panics on duplicate names, so this is meant to be
// called once per process by the daemon — tests that build many Servers
// skip it and scrape /v1/status instead.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		st, err := s.status()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return st
	}))
}
