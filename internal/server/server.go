// Package server is the HTTP front-end over the serve package: a Server
// owns a serve.Pool booted from a serialized query bundle and exposes it to
// network clients — POST /v1/documents for single documents, POST /v1/batch
// for NDJSON streams, GET /v1/status and GET /metrics for observability —
// with zero-downtime bundle reloads.
//
// Reload is RCU-style: the active bundle+pool pair lives behind a
// refcounted poolState.  Request handlers acquire a reference for the
// duration of one document, a reload builds the replacement pool entirely
// off to the side (open the bundle, register it on a fresh engine, start
// the shard workers) and swaps the pointer under a mutex, and the old
// generation is closed only when its last in-flight document releases it —
// in-flight documents finish on the pool they were submitted to, new
// arrivals land on the new one, and no request ever observes a torn swap.
// SIGHUP and POST /v1/reload both trigger the same path.
//
// Error mapping follows the serve package's sentinels: a full shard queue
// (serve.ErrQueueFull) is transient overload and maps to 429 Too Many
// Requests, a closing pool or shutting-down server (serve.ErrClosed) maps
// to 503 Service Unavailable, and both carry Retry-After so well-behaved
// clients back off instead of hammering.
package server

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/serve"
)

// ErrServerClosed is returned by operations on a Server after Close.
var ErrServerClosed = errors.New("server: closed")

// Config describes how the Server boots its pools.  Every reload reuses
// the same configuration — only the bundle contents change.
type Config struct {
	// BundlePath is the serialized query bundle (nwtool compile output)
	// the server boots from and re-opens on every reload.
	BundlePath string
	// Source, when set, resolves the bundle path afresh for every load —
	// the hook bundlecache.Source plugs in so a reload re-fetches from the
	// configured peer URL and returns the verified cache entry's path.
	// BundlePath is then only informational (Source's path is opened).
	Source func() (string, error)
	// PublicKey, when set, requires every loaded bundle to carry a valid
	// detached signature (the sibling <path>.sig NWS1 envelope) by this
	// ed25519 key (NWP1 key file or bare 32 bytes).  A missing or invalid
	// signature fails the load — at boot that refuses to start, on reload
	// the old generation keeps serving (verify-before-swap).
	PublicKey []byte
	// Shards is the pool's shard count; 0 means the serve default
	// (runtime.GOMAXPROCS(0)).
	Shards int
	// QueueDepth bounds each shard's submission queue; 0 means the serve
	// default (64).
	QueueDepth int
	// Affinity selects document-to-shard routing (default AffinityHash).
	Affinity serve.Affinity
	// MaxBodyBytes caps a single document body; 0 means 8 MiB.
	MaxBodyBytes int64
}

const defaultMaxBody = 8 << 20

// BundleInfo identifies the active bundle generation: where it came from,
// which reload loaded it, when, and the same machine-readable description
// `nwtool bundle -json` prints for the file on disk — so an operator can
// diff what is loaded against what is deployed.
type BundleInfo struct {
	Path       string           `json:"path"`
	Generation int64            `json:"generation"`
	LoadedAt   time.Time        `json:"loaded_at"`
	Bundle     query.BundleDesc `json:"bundle"`
}

// poolState is one bundle generation: the mapped bundle, the pool serving
// it, and a reference count.  The count starts at 1 (the Server's own
// reference); each in-flight document holds one more.  When the count hits
// zero — the Server dropped it in a swap or Close AND the last in-flight
// document finished — the pool is drained and the bundle unmapped, in that
// order, so no worker ever touches an unmapped table.
type poolState struct {
	pool   *serve.Pool
	info   BundleInfo
	names  []string // engine verdict names, in Result.Verdicts order
	refs   atomic.Int64
	bundle *query.Bundle

	// Distribution state for GET /v1/bundle: the generation's raw container
	// bytes (aliasing the bundle's mapped region, valid while a reference
	// is held), the quoted hex content hash served as the ETag, and the
	// detached signature envelope when one was loaded.
	raw  []byte
	etag string
	sig  []byte
}

// release drops one reference, closing the generation when it was the last.
func (st *poolState) release() {
	if st.refs.Add(-1) == 0 {
		st.pool.Close()
		st.bundle.Close()
	}
}

// Server is the reloadable serving front-end.  Build it with New, mount
// Handler on an http.Server, call Reload on SIGHUP, and Close on shutdown.
type Server struct {
	cfg   Config
	start time.Time

	// reloadMu serializes Reload calls so two concurrent reloads cannot
	// interleave their swap and leak a generation.  It is never held
	// together with mu's critical sections except at the swap itself.
	reloadMu sync.Mutex

	mu     sync.Mutex
	cur    *poolState // guarded by mu
	gen    int64      // guarded by mu — generation counter, rises on every swap
	closed bool       // guarded by mu

	nextID  atomic.Int64 // fallback document IDs when the client sends none
	reloads atomic.Int64
	rates   rateTracker
}

// New opens the configured bundle, boots generation 1's pool, and returns
// the Server ready to serve.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	s := &Server{cfg: cfg, start: time.Now()}
	st, err := s.load(1)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cur = st
	s.gen = 1
	s.mu.Unlock()
	return s, nil
}

// load builds one complete generation from the configured bundle path: the
// bundle is opened (its content hash verified by the format layer), its
// signature checked when a public key is configured, registered on a fresh
// engine, and the shard workers started — all before any swap, so a bad,
// tampered, or unsigned bundle fails the reload and leaves the old
// generation serving (verify-before-swap).
func (s *Server) load(gen int64) (*poolState, error) {
	path := s.cfg.BundlePath
	if s.cfg.Source != nil {
		var err error
		if path, err = s.cfg.Source(); err != nil {
			return nil, fmt.Errorf("server: resolve bundle: %w", err)
		}
	}
	b, err := query.OpenBundle(path)
	if err != nil {
		return nil, fmt.Errorf("server: open bundle: %w", err)
	}
	sig, err := os.ReadFile(path + ".sig")
	if err != nil && !os.IsNotExist(err) {
		b.Close()
		return nil, fmt.Errorf("server: read bundle signature: %w", err)
	}
	if len(s.cfg.PublicKey) > 0 {
		if sig == nil {
			b.Close()
			return nil, fmt.Errorf("server: bundle %s has no detached signature (%s.sig) and a public key is configured", path, path)
		}
		if err := b.Verify(s.cfg.PublicKey, sig); err != nil {
			b.Close()
			return nil, fmt.Errorf("server: verify bundle signature: %w", err)
		}
	}
	opts := []serve.Option{serve.WithAffinity(s.cfg.Affinity)}
	if s.cfg.Shards > 0 {
		opts = append(opts, serve.WithShards(s.cfg.Shards))
	}
	if s.cfg.QueueDepth > 0 {
		opts = append(opts, serve.WithQueueDepth(s.cfg.QueueDepth))
	}
	pool, err := serve.NewPoolFromBundle(b, opts...)
	if err != nil {
		b.Close()
		return nil, fmt.Errorf("server: boot pool: %w", err)
	}
	st := &poolState{
		pool:   pool,
		bundle: b,
		names:  pool.Engine().Names(),
		raw:    b.Raw(),
		sig:    sig,
		info: BundleInfo{
			Path:       path,
			Generation: gen,
			LoadedAt:   time.Now(),
			Bundle:     query.Describe(b),
		},
	}
	if sum, _, ok := b.ContentHash(); ok {
		st.etag = `"` + hex.EncodeToString(sum[:]) + `"`
	}
	st.refs.Store(1)
	return st, nil
}

// acquire takes a reference on the current generation for one document.
// The increment happens under the same mutex as the swap, so a handler can
// never resurrect a generation whose count already reached zero.
func (s *Server) acquire() (*poolState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.cur == nil {
		return nil, ErrServerClosed
	}
	s.cur.refs.Add(1)
	return s.cur, nil
}

// Reload opens the configured bundle path again, boots a fresh pool from
// it, and atomically swaps it in.  In-flight documents finish on the old
// pool, which is drained and closed once the last of them releases it.  On
// any error the old generation keeps serving untouched.
func (s *Server) Reload() (BundleInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	next, err := s.load(s.generation() + 1)
	if err != nil {
		return BundleInfo{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		next.release()
		return BundleInfo{}, ErrServerClosed
	}
	old := s.cur
	s.cur = next
	s.gen = next.info.Generation
	s.mu.Unlock()

	s.reloads.Add(1)
	if old != nil {
		old.release()
	}
	return next.info, nil
}

// generation reports the current generation counter.
func (s *Server) generation() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Close drops the Server's own reference on the active generation and
// rejects all further work.  The generation's pool drains gracefully once
// in-flight documents release their references.  Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	old := s.cur
	s.cur = nil
	s.mu.Unlock()
	if old != nil {
		old.release()
	}
	return nil
}

// BundleInfo reports the active bundle generation's identity.
func (s *Server) BundleInfo() (BundleInfo, error) {
	st, err := s.acquire()
	if err != nil {
		return BundleInfo{}, err
	}
	defer st.release()
	return st.info, nil
}

// Stats snapshots the active generation's pool counters.  Counters are per
// generation: a reload starts them fresh, the way a restarted process
// would, and the generation number in Status tells scrapers when that
// happened.
func (s *Server) Stats() (serve.Stats, error) {
	st, err := s.acquire()
	if err != nil {
		return serve.Stats{}, err
	}
	defer st.release()
	return st.pool.Stats(), nil
}

// rateTracker derives an events-per-second rate from successive cumulative
// counter observations — the instantaneous rate between the last two
// scrapes of /v1/status or /metrics.
type rateTracker struct {
	mu    sync.Mutex
	last  time.Time // guarded by mu
	lastN int64     // guarded by mu
	rate  float64   // guarded by mu
}

// observe feeds one cumulative sample and returns the current rate.  The
// first sample (and any sample after the counter went backwards, i.e. a
// reload reset) re-bases the tracker and reports the previous rate.
func (r *rateTracker) observe(now time.Time, n int64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.last.IsZero() && n >= r.lastN {
		if dt := now.Sub(r.last).Seconds(); dt > 0 {
			r.rate = float64(n-r.lastN) / dt
		}
	}
	r.last = now
	r.lastN = n
	return r.rate
}
